// Package repro's root benchmark harness regenerates every table and
// figure of the paper (see DESIGN.md's per-experiment index). Each
// benchmark prints the reproduced numbers next to the paper's via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// experiment runner:
//
//	BenchmarkTableI / BenchmarkTableII     — the worked examples
//	BenchmarkNodePerApp                    — the in-text third scenario
//	BenchmarkFig2 / BenchmarkFig3          — allocation scenario sets
//	BenchmarkTableIII                      — model vs simulated hardware
//	BenchmarkProducerConsumer              — the Fig. 1 agent experiment
//	BenchmarkBlockingOptions               — thread-control options 1-3
//	BenchmarkOversubscription              — shared vs partitioned cores
//	BenchmarkLibraryDelegation             — fast core shifting
//	BenchmarkCalibration                   — Section III.B fitting
//	BenchmarkNonWorkerThreads              — Section IV master threads
//	BenchmarkDistributed                   — Section V cluster schemes
//	BenchmarkHeterogeneousRuntimes         — OCR-like + TBB-like mix
//	BenchmarkAblation*                     — design-choice ablations
package repro

import (
	"fmt"
	"testing"

	"repro/internal/agent"
	"repro/internal/arena"
	"repro/internal/calibrate"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/osched"
	"repro/internal/roofline"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

// modelGFLOPS evaluates a scenario's analytic model once per iteration
// and reports the result.
func modelGFLOPS(b *testing.B, s *core.Scenario, paper float64) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		r, err := s.RunModel()
		if err != nil {
			b.Fatal(err)
		}
		total = r.TotalGFLOPS
	}
	b.ReportMetric(total, "model-GFLOPS")
	b.ReportMetric(paper, "paper-GFLOPS")
}

// BenchmarkTableI regenerates Table I: uneven allocation (1,1,1,5) on
// the 4x8 model machine. Paper: 254 GFLOPS.
func BenchmarkTableI(b *testing.B) {
	modelGFLOPS(b, core.TableIScenario(), 254)
}

// BenchmarkTableII regenerates Table II: even allocation (2,2,2,2).
// Paper: 140 GFLOPS.
func BenchmarkTableII(b *testing.B) {
	modelGFLOPS(b, core.TableIIScenario(), 140)
}

// BenchmarkNodePerApp regenerates the in-text scenario: one node per
// application. Paper: 128 GFLOPS.
func BenchmarkNodePerApp(b *testing.B) {
	modelGFLOPS(b, core.NodePerAppScenario(), 128)
}

// BenchmarkFig2 regenerates all three Fig. 2 allocation scenarios.
func BenchmarkFig2(b *testing.B) {
	paper := []float64{254, 140, 128}
	names := []string{"uneven", "even", "node-per-app"}
	for i, s := range core.Fig2Scenarios() {
		b.Run(names[i], func(b *testing.B) { modelGFLOPS(b, s, paper[i]) })
	}
}

// BenchmarkFig3 regenerates the NUMA-bad ranking reversal. Paper: ~138
// (even) vs 150 (node per app).
func BenchmarkFig3(b *testing.B) {
	even, npa := core.Fig3Scenarios()
	b.Run("even", func(b *testing.B) { modelGFLOPS(b, even, 138) })
	b.Run("node-per-app", func(b *testing.B) { modelGFLOPS(b, npa, 150) })
}

// BenchmarkTableIII regenerates Table III: the analytic model versus
// the synthetic benchmark on the (simulated) Skylake machine, for all
// five scenarios. One iteration simulates 0.25 s of machine time.
func BenchmarkTableIII(b *testing.B) {
	for _, row := range core.TableIIIScenarios() {
		row := row
		b.Run(row.Name, func(b *testing.B) {
			var model, sim float64
			for i := 0; i < b.N; i++ {
				row.Scenario.Sim.Duration = 0.25
				cmp, err := row.Scenario.Run(row.Name)
				if err != nil {
					b.Fatal(err)
				}
				model, sim = cmp.Model.TotalGFLOPS, cmp.Sim.TotalGFLOPS
			}
			b.ReportMetric(model, "model-GFLOPS")
			b.ReportMetric(sim, "sim-GFLOPS")
			b.ReportMetric(row.PaperModel, "paper-model")
			b.ReportMetric(row.PaperReal, "paper-real")
		})
	}
}

// BenchmarkProducerConsumer regenerates the Fig. 1 experiment: the
// producer-consumer pipeline with and without the coordinating agent,
// reporting runtime and mean intermediate-data size.
func BenchmarkProducerConsumer(b *testing.B) {
	run := func(coordinated bool) (seconds, meanDepth float64) {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		prod := taskrt.New(o, taskrt.Config{Name: "producer", BindMode: taskrt.BindNode})
		cons := taskrt.New(o, taskrt.Config{Name: "consumer", BindMode: taskrt.BindNode})
		p := &workload.Pipeline{
			Producer: prod, Consumer: cons,
			TasksPerIter:      16,
			ProducerTaskGFlop: 0.02,
			ConsumerTaskGFlop: 0.08,
			Iterations:        40,
			ItemSizeGB:        1,
		}
		if coordinated {
			pol := &agent.Align{Pipeline: p, ProducerClient: 0, ConsumerClient: 1, MinLead: 1, MaxLead: 4}
			agent.New(o, agent.Config{Period: 5 * des.Millisecond}, pol, prod, cons).Start()
		}
		var doneAt des.Time
		p.Start(func() { doneAt = eng.Now(); eng.Halt() })
		eng.RunUntil(600)
		return float64(doneAt), p.MeanQueueDepth()
	}
	for _, mode := range []struct {
		name        string
		coordinated bool
	}{{"uncoordinated", false}, {"agent-coordinated", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var sec, depth float64
			for i := 0; i < b.N; i++ {
				sec, depth = run(mode.coordinated)
			}
			b.ReportMetric(sec, "sim-seconds")
			b.ReportMetric(depth, "mean-intermediate-items")
		})
	}
}

// BenchmarkBlockingOptions measures the three thread-control options'
// reaction latency: simulated time from issuing a "halve the threads"
// command until the target is reached.
func BenchmarkBlockingOptions(b *testing.B) {
	type setup struct {
		name  string
		bind  taskrt.BindMode
		apply func(rt *taskrt.Runtime, m *machine.Machine)
	}
	setups := []setup{
		{"option1-total", taskrt.BindNode, func(rt *taskrt.Runtime, m *machine.Machine) {
			rt.SetTotalThreads(m.TotalCores() / 2)
		}},
		{"option2-cores", taskrt.BindCore, func(rt *taskrt.Runtime, m *machine.Machine) {
			var cores []machine.CoreID
			for c := 0; c < m.TotalCores()/2; c++ {
				cores = append(cores, machine.CoreID(c))
			}
			_ = rt.BlockCores(cores)
		}},
		{"option3-pernode", taskrt.BindNode, func(rt *taskrt.Runtime, m *machine.Machine) {
			counts := make([]int, m.NumNodes())
			for j := range counts {
				counts[j] = m.Nodes[j].Cores / 2
			}
			_ = rt.SetNodeThreads(counts)
		}},
	}
	for _, s := range setups {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var latency float64
			for i := 0; i < b.N; i++ {
				m := machine.PaperModel()
				eng := des.NewEngine(1)
				o := osched.New(eng, osched.Config{Machine: m})
				o.Start()
				rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: s.bind})
				w := &workload.Continuous{RT: rt, TaskGFlop: 0.05, AI: 0.5}
				w.Start()
				eng.RunUntil(0.2)
				start := eng.Now()
				s.apply(rt, m)
				// Run until the suspension target is reached.
				for eng.Now() < 5 {
					if rt.Stats().Suspended >= m.TotalCores()/2 {
						break
					}
					eng.RunUntil(eng.Now() + des.Millisecond)
				}
				latency = float64(eng.Now() - start)
			}
			b.ReportMetric(latency*1e3, "reaction-ms")
		})
	}
}

// BenchmarkOversubscription compares two applications sharing all
// cores (each with a full worker set, the paper's over-subscribed
// default) against agent-imposed fair splits using option 1 (total
// thread counts) and option 3 (per-node counts).
//
// The option-1 result reproduces the paper's Section III warning:
// because the runtime blocks whichever threads go inactive first, the
// surviving threads cluster on a subset of the NUMA nodes, leaving
// other nodes idle — "allocating cores by specifying the total number
// of worker threads could be very inefficient". Option 3 keeps every
// node populated.
func BenchmarkOversubscription(b *testing.B) {
	run := func(policy agent.Policy) float64 {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		a1 := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNode})
		a2 := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNode})
		w1 := &workload.Continuous{RT: a1, TaskGFlop: 0.05, AI: 0}
		w2 := &workload.Continuous{RT: a2, TaskGFlop: 0.05, AI: 0}
		w1.Start()
		w2.Start()
		if policy != nil {
			agent.New(o, agent.Config{Period: 5 * des.Millisecond}, policy, a1, a2).Start()
		}
		eng.RunUntil(1)
		return (a1.Stats().GFlopDone + a2.Stats().GFlopDone) / 1
	}
	for _, mode := range []struct {
		name   string
		policy agent.Policy
	}{
		{"oversubscribed", nil},
		{"fair-share-option1-total", agent.FairShare{}},
		{"fair-share-option3-pernode", agent.FairShare{PerNode: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				gflops = run(mode.policy)
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkLibraryDelegation regenerates the tight-integration
// scenario: static split vs agent core shifting per library call.
func BenchmarkLibraryDelegation(b *testing.B) {
	run := func(boost bool) float64 {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		main := taskrt.New(o, taskrt.Config{Name: "main", BindMode: taskrt.BindNode})
		lib := taskrt.New(o, taskrt.Config{Name: "lib", BindMode: taskrt.BindNode})
		ag := agent.New(o, agent.Config{}, agent.Static{}, main, lib)
		main.SetTotalThreads(16)
		lib.SetTotalThreads(16)
		d := &workload.Delegation{
			Main: main, Library: lib,
			PhaseGFlop: 2.0,
			LibTasks:   64, LibTaskGFlop: 0.1,
			Calls: 5,
		}
		if boost {
			d.OnCallStart = func(int) { ag.Boost(1) }
			d.OnCallEnd = func(int) { ag.Restore() }
		}
		var doneAt des.Time
		d.Start(func() { doneAt = eng.Now(); eng.Halt() })
		eng.RunUntil(600)
		return float64(doneAt)
	}
	for _, mode := range []struct {
		name  string
		boost bool
	}{{"static-split", false}, {"core-shifting", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				sec = run(mode.boost)
			}
			b.ReportMetric(sec, "sim-seconds")
		})
	}
}

// BenchmarkCalibration regenerates the Section III.B methodology: fit
// machine parameters from the even-allocation run and report them
// (paper: 100 GB/s, 0.29 GFLOPS per thread).
func BenchmarkCalibration(b *testing.B) {
	truth := machine.SkylakeQuad()
	apps := []roofline.App{
		{Name: "m1", AI: 1.0 / 32}, {Name: "m2", AI: 1.0 / 32}, {Name: "m3", AI: 1.0 / 32},
		{Name: "c", AI: 1},
	}
	counts := []int{5, 5, 5, 5}
	measured := roofline.MustEvaluate(truth, apps, roofline.MustPerNodeCounts(truth, counts)).AppGFLOPS
	var est calibrate.Estimate
	var err error
	for i := 0; i < b.N; i++ {
		est, err = calibrate.FitEvenAllocation(truth, apps, counts, measured)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(est.PeakGFLOPS, "fitted-GFLOPS-per-thread")
	b.ReportMetric(est.NodeBandwidth, "fitted-GBps")
}

// BenchmarkNonWorkerThreads regenerates the Section IV discussion: a
// TBB-like master thread and I/O threads beside the worker pool. It
// reports the master's share of the executed jobs.
func BenchmarkNonWorkerThreads(b *testing.B) {
	var masterShare, total float64
	for i := 0; i < b.N; i++ {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		rt := arena.New(o, arena.Config{Name: "tbb", Workers: 8})
		rt.NewIOThread("io", 10*des.Millisecond, 0.001)
		rt.NewMaster("main", []arena.Step{
			{Kind: arena.StepSerial, GFlop: 0.02},
			{Kind: arena.StepParallel, Node: 0, Tasks: 32, GFlop: 0.02},
		}, true)
		eng.RunUntil(1)
		st := rt.Stats()
		total = float64(st.TasksExecuted)
		// The master's GFlop shows up in the process but not in any
		// RML worker; approximate its share via busy time.
		masterShare = st.BusySeconds
	}
	b.ReportMetric(total, "jobs-executed")
	b.ReportMetric(masterShare, "process-busy-seconds")
}

// BenchmarkDistributed regenerates Section V: makespans of static/
// barrier, static/loose, and dynamic distribution with one slow node.
func BenchmarkDistributed(b *testing.B) {
	run := func(dist cluster.DistMode, sync cluster.SyncMode, slow bool) float64 {
		c := cluster.New(cluster.Config{
			Nodes:      4,
			Machine:    machine.PaperModel(),
			OS:         osched.Config{ContextSwitchCost: -1, MigrationPenalty: -1, LoadBalancePeriod: -1},
			NetLatency: 50 * des.Microsecond,
			Seed:       1,
		})
		j := cluster.NewJob(c, cluster.JobConfig{
			TotalChunks:   32,
			TasksPerChunk: 32,
			TaskGFlop:     0.05,
			Dist:          dist,
			Sync:          sync,
			RuntimeConfig: taskrt.Config{BindMode: taskrt.BindCore},
		})
		if slow {
			j.Runtime(0).SetTotalThreads(8)
		}
		j.Run(nil)
		c.Eng.RunUntil(600)
		_, at := j.Done()
		return float64(at)
	}
	cases := []struct {
		name string
		dist cluster.DistMode
		sync cluster.SyncMode
	}{
		{"static-barrier", cluster.Static, cluster.Barrier},
		{"static-loose", cluster.Static, cluster.Loose},
		{"dynamic", cluster.Dynamic, cluster.Loose},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var fast, slow float64
			for i := 0; i < b.N; i++ {
				fast = run(c.dist, c.sync, false)
				slow = run(c.dist, c.sync, true)
			}
			b.ReportMetric(fast, "makespan-s")
			b.ReportMetric(slow, "makespan-slow-node-s")
			b.ReportMetric(slow/fast, "slowdown-x")
		})
	}
}

// BenchmarkHeterogeneousRuntimes regenerates the future-work scenario:
// an OCR-like and a TBB-like runtime sharing one machine under one
// roofline-driven agent.
func BenchmarkHeterogeneousRuntimes(b *testing.B) {
	var ocrG, tbbG float64
	for i := 0; i < b.N; i++ {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		ocr := taskrt.New(o, taskrt.Config{Name: "ocr", BindMode: taskrt.BindNode, Scheduler: taskrt.NUMAAware})
		(&workload.Continuous{RT: ocr, TaskGFlop: 0.05, AI: 0.5}).Start()
		tbb := arena.New(o, arena.Config{Name: "tbb"})
		var feed func(n machine.NodeID)
		feed = func(n machine.NodeID) { tbb.Arena(n).Submit(0.05, 10, func() { feed(n) }) }
		for n := 0; n < m.NumNodes(); n++ {
			for k := 0; k < 16; k++ {
				feed(machine.NodeID(n))
			}
		}
		pol := &agent.RooflineOptimal{
			Specs:     []agent.AppSpec{{AI: 0.5}, {AI: 10}},
			Objective: roofline.MinAppGFLOPS,
		}
		agent.New(o, agent.Config{Period: 10 * des.Millisecond}, pol, ocr, tbb).Start()
		eng.RunUntil(1)
		ocrG = ocr.Stats().GFlopDone
		tbbG = tbb.Stats().GFlopDone
	}
	b.ReportMetric(ocrG, "ocr-GFLOPS")
	b.ReportMetric(tbbG, "tbb-GFLOPS")
	b.ReportMetric(ocrG+tbbG, "total-GFLOPS")
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationBandwidthSplit compares the paper's baseline+
// proportional bandwidth split against a pure proportional split on
// Table I: without the baseline guarantee the compute-bound app is
// starved and the total drops.
func BenchmarkAblationBandwidthSplit(b *testing.B) {
	m := machine.PaperModel()
	apps := []roofline.App{{AI: 0.5}, {AI: 0.5}, {AI: 0.5}, {AI: 10}}
	al := roofline.MustPerNodeCounts(m, []int{1, 1, 1, 5})
	var withBase, noBase float64
	for i := 0; i < b.N; i++ {
		r1 := roofline.MustEvaluate(m, apps, al)
		r2, err := roofline.EvaluateOpts(m, apps, al, roofline.Options{NoBaseline: true})
		if err != nil {
			b.Fatal(err)
		}
		withBase, noBase = r1.TotalGFLOPS, r2.TotalGFLOPS
	}
	b.ReportMetric(withBase, "baseline+proportional-GFLOPS")
	b.ReportMetric(noBase, "pure-proportional-GFLOPS")
}

// BenchmarkAblationRemoteFirst compares remote-first vs local-first
// memory service on the Table III NUMA-bad scenario: local-first
// starves the NUMA-bad application's remote threads.
func BenchmarkAblationRemoteFirst(b *testing.B) {
	m := machine.SkylakeQuad()
	apps := []roofline.App{
		{AI: 1.0 / 32}, {AI: 1.0 / 32}, {AI: 1.0 / 32},
		{AI: 1.0 / 16, Placement: roofline.NUMABad, HomeNode: 0},
	}
	al := roofline.MustPerNodeCounts(m, []int{5, 5, 5, 5})
	var remoteFirst, localFirst float64
	for i := 0; i < b.N; i++ {
		r1 := roofline.MustEvaluate(m, apps, al)
		r2, err := roofline.EvaluateOpts(m, apps, al, roofline.Options{LocalFirst: true})
		if err != nil {
			b.Fatal(err)
		}
		remoteFirst, localFirst = r1.AppGFLOPS[3], r2.AppGFLOPS[3]
	}
	b.ReportMetric(remoteFirst, "remote-first-badapp-GFLOPS")
	b.ReportMetric(localFirst, "local-first-badapp-GFLOPS")
}

// BenchmarkAblationScheduler compares the NUMA-aware task scheduler
// against the NUMA-oblivious FIFO on a workload with per-node data.
func BenchmarkAblationScheduler(b *testing.B) {
	run := func(kind taskrt.SchedulerKind) float64 {
		m := machine.SkylakeQuad()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore, Scheduler: kind})
		blocks := make([]*taskrt.DataBlock, m.NumNodes())
		for n := range blocks {
			blocks[n] = &taskrt.DataBlock{Name: "blk", Node: machine.NodeID(n)}
		}
		i := 0
		var feed func()
		feed = func() {
			t := rt.NewTask("t", 0.003, 1.0/32, blocks[i%len(blocks)])
			i++
			t.OnComplete = feed
			rt.Submit(t)
		}
		for k := 0; k < 2*m.TotalCores(); k++ {
			feed()
		}
		eng.RunUntil(1)
		return rt.Stats().GFlopDone
	}
	for _, kind := range []taskrt.SchedulerKind{taskrt.NUMAAware, taskrt.FIFO} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				gflops = run(kind)
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkAblationAgentPeriod sweeps the agent's control period in the
// producer-consumer experiment: too slow and the queue grows, too fast
// and commands churn.
func BenchmarkAblationAgentPeriod(b *testing.B) {
	run := func(period des.Time) (float64, float64) {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		prod := taskrt.New(o, taskrt.Config{Name: "p", BindMode: taskrt.BindNode})
		cons := taskrt.New(o, taskrt.Config{Name: "c", BindMode: taskrt.BindNode})
		p := &workload.Pipeline{
			Producer: prod, Consumer: cons,
			TasksPerIter: 16, ProducerTaskGFlop: 0.02, ConsumerTaskGFlop: 0.08,
			Iterations: 40, ItemSizeGB: 1,
		}
		pol := &agent.Align{Pipeline: p, ProducerClient: 0, ConsumerClient: 1, MinLead: 1, MaxLead: 4}
		agent.New(o, agent.Config{Period: period}, pol, prod, cons).Start()
		var doneAt des.Time
		p.Start(func() { doneAt = eng.Now(); eng.Halt() })
		eng.RunUntil(600)
		return float64(doneAt), p.MeanQueueDepth()
	}
	for _, period := range []des.Time{2 * des.Millisecond, 10 * des.Millisecond, 50 * des.Millisecond} {
		period := period
		b.Run(metricsName(period), func(b *testing.B) {
			var sec, depth float64
			for i := 0; i < b.N; i++ {
				sec, depth = run(period)
			}
			b.ReportMetric(sec, "sim-seconds")
			b.ReportMetric(depth, "mean-intermediate-items")
		})
	}
}

func metricsName(p des.Time) string {
	switch p {
	case 2 * des.Millisecond:
		return "period-2ms"
	case 10 * des.Millisecond:
		return "period-10ms"
	default:
		return "period-50ms"
	}
}

// BenchmarkAblationOption1vs3 compares thread-control options 1 and 3
// for a NUMA-aware application: option 1 (total count, arbitrary
// threads blocked) can leave nodes unevenly populated, while option 3
// keeps the allocation balanced across nodes — the paper's Section III
// motivation.
func BenchmarkAblationOption1vs3(b *testing.B) {
	run := func(option3 bool) float64 {
		m := machine.SkylakeQuad()
		eng := des.NewEngine(3)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindNode, Scheduler: taskrt.NUMAAware})
		blocks := make([]*taskrt.DataBlock, m.NumNodes())
		for n := range blocks {
			blocks[n] = &taskrt.DataBlock{Name: "blk", Node: machine.NodeID(n)}
		}
		i := 0
		var feed func()
		feed = func() {
			t := rt.NewTask("t", 0.003, 1.0/32, blocks[i%len(blocks)])
			i++
			t.OnComplete = feed
			rt.Submit(t)
		}
		for k := 0; k < 2*m.TotalCores(); k++ {
			feed()
		}
		eng.RunUntil(0.1)
		if option3 {
			_ = rt.SetNodeThreads([]int{10, 10, 10, 10})
		} else {
			rt.SetTotalThreads(40)
		}
		eng.RunUntil(1.1)
		return rt.Stats().GFlopDone
	}
	for _, mode := range []struct {
		name    string
		option3 bool
	}{{"option1-total-40", false}, {"option3-10-per-node", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				gflops = run(mode.option3)
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkAblationBalancedOption1 regenerates the fix the paper
// proposes for option 1 ("spread the blocked threads evenly across the
// NUMA nodes"): the same total thread budget applied naively vs
// balanced, on the two-application fair-share scenario where naive
// option 1 leaves half the machine idle.
func BenchmarkAblationBalancedOption1(b *testing.B) {
	run := func(balanced bool) float64 {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		a1 := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNode})
		a2 := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNode})
		(&workload.Continuous{RT: a1, TaskGFlop: 0.05, AI: 0}).Start()
		(&workload.Continuous{RT: a2, TaskGFlop: 0.05, AI: 0}).Start()
		eng.RunUntil(0.05) // let the over-subscribed default run briefly
		if balanced {
			a1.SetTotalThreadsBalanced(16)
			a2.SetTotalThreadsBalanced(16)
		} else {
			a1.SetTotalThreads(16)
			a2.SetTotalThreads(16)
		}
		eng.RunUntil(1.05)
		return a1.Stats().GFlopDone + a2.Stats().GFlopDone
	}
	for _, mode := range []struct {
		name     string
		balanced bool
	}{{"naive-option1", false}, {"balanced-option1", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				gflops = run(mode.balanced)
			}
			b.ReportMetric(gflops, "GFLOP-in-1s")
		})
	}
}

// BenchmarkDataMigration regenerates the paper's Section III.A wish
// ("the application should be able to move the data to a different
// NUMA node"): a NUMA-bad application pinned to node 3 with data on
// node 0, static vs migrating the block to node 3 first.
func BenchmarkDataMigration(b *testing.B) {
	run := func(migrate bool) float64 {
		m := machine.SkylakeQuad()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		rt := taskrt.New(o, taskrt.Config{
			Name: "app", BindMode: taskrt.BindCore, Scheduler: taskrt.NUMAAware,
			Cores: m.CoresOfNode(3),
		})
		blk := &taskrt.DataBlock{Name: "data", Node: 0, SizeGB: 1}
		var feed func()
		feed = func() {
			t := rt.NewTask("t", 0.003, 1.0/16, blk).PreferNode(3)
			t.OnComplete = feed
			rt.Submit(t)
		}
		for i := 0; i < 40; i++ {
			feed()
		}
		if migrate {
			if _, err := rt.MigrateBlock(blk, 3, nil); err != nil {
				b.Fatal(err)
			}
		}
		eng.RunUntil(1)
		return rt.Stats().GFlopDone
	}
	for _, mode := range []struct {
		name    string
		migrate bool
	}{{"static-cross-node", false}, {"migrate-to-local", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				gflops = run(mode.migrate)
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkAdaptiveAgent compares the oracle roofline policy (told
// every application's AI) with the adaptive one that estimates AI from
// OS-level observation, on the Table I application mix.
func BenchmarkAdaptiveAgent(b *testing.B) {
	run := func(pol agent.Policy) float64 {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		ais := []float64{0.5, 0.5, 0.5, 10}
		var total func() float64
		var rts []*taskrt.Runtime
		var clients []agent.Client
		for _, ai := range ais {
			rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindNode})
			(&workload.Continuous{RT: rt, TaskGFlop: 0.02, AI: ai}).Start()
			rts = append(rts, rt)
			clients = append(clients, rt)
		}
		total = func() float64 {
			s := 0.0
			for _, rt := range rts {
				s += rt.Stats().GFlopDone
			}
			return s
		}
		agent.New(o, agent.Config{Period: 10 * des.Millisecond}, pol, clients...).Start()
		eng.RunUntil(2)
		return total() / 2
	}
	cases := []struct {
		name string
		pol  func() agent.Policy
	}{
		{"oracle", func() agent.Policy {
			return &agent.RooflineOptimal{Specs: []agent.AppSpec{{AI: 0.5}, {AI: 0.5}, {AI: 0.5}, {AI: 10}}}
		}},
		{"adaptive", func() agent.Policy { return &agent.AdaptiveRoofline{Warmup: 5} }},
		{"fair-share", func() agent.Policy { return agent.FairShare{PerNode: true} }},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				gflops = run(c.pol())
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkPriorities regenerates the Section IV lever: a busy
// non-worker (background) thread with normal vs lowered priority, and
// its impact on a co-located worker's throughput. (With strict
// priorities the lowered thread only runs when the core is otherwise
// idle.)
func BenchmarkPriorities(b *testing.B) {
	run := func(lowered bool) (worker, background float64) {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		p := o.NewProcess("app")
		w := p.NewThread("worker", osched.RunnerFunc(func(*osched.Thread) osched.Work {
			return osched.Work{Kind: osched.WorkCompute, GFlop: 1e9, AI: 0}
		}), osched.SingleCore(m, 0))
		bg := p.NewThread("background", osched.RunnerFunc(func(*osched.Thread) osched.Work {
			return osched.Work{Kind: osched.WorkCompute, GFlop: 1e9, AI: 0}
		}), osched.SingleCore(m, 0))
		w.SetPriority(1)
		if !lowered {
			bg.SetPriority(1)
		}
		eng.RunUntil(1)
		return w.GFlopDone(), bg.GFlopDone()
	}
	for _, mode := range []struct {
		name    string
		lowered bool
	}{{"equal-priority", false}, {"background-lowered", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var wk, bg float64
			for i := 0; i < b.N; i++ {
				wk, bg = run(mode.lowered)
			}
			b.ReportMetric(wk, "worker-GFLOPS")
			b.ReportMetric(bg, "background-GFLOPS")
		})
	}
}

// BenchmarkDynamicNodeSharing regenerates the Section V "dynamic
// variant": every cluster node hosts the distributed job plus a bursty
// co-located application; per-node work-conserving agents shift cores
// into the job during the co-app's idle phases.
func BenchmarkDynamicNodeSharing(b *testing.B) {
	run := func(dynamic bool) float64 {
		c := cluster.New(cluster.Config{
			Nodes:      4,
			Machine:    machine.PaperModel(),
			OS:         osched.Config{ContextSwitchCost: -1, MigrationPenalty: -1, LoadBalancePeriod: -1},
			NetLatency: 50 * des.Microsecond,
			Seed:       1,
		})
		j := cluster.NewJob(c, cluster.JobConfig{
			TotalChunks:   32,
			TasksPerChunk: 128,
			TaskGFlop:     0.0125,
			Dist:          cluster.Dynamic,
			Sync:          cluster.Loose,
			RuntimeConfig: taskrt.Config{BindMode: taskrt.BindCore},
		})
		for n := 0; n < c.Nodes(); n++ {
			co := taskrt.New(c.Node(n).OS, taskrt.Config{Name: "coapp", BindMode: taskrt.BindNode})
			submitted := 0
			c.Eng.Ticker(50*des.Millisecond, func(des.Time) {
				if submitted >= 5 {
					return
				}
				submitted++
				for i := 0; i < 32; i++ {
					co.Submit(co.NewTask("burst", 0.02, 0, nil))
				}
			})
			if dynamic {
				agent.New(c.Node(n).OS, agent.Config{Period: 5 * des.Millisecond},
					agent.WorkConserving{}, j.Runtime(n), co).Start()
			} else {
				j.Runtime(n).SetTotalThreads(16)
				co.SetTotalThreads(16)
			}
		}
		j.Run(nil)
		c.Eng.RunUntil(60)
		_, at := j.Done()
		return float64(at)
	}
	for _, mode := range []struct {
		name    string
		dynamic bool
	}{{"static-split", false}, {"work-conserving-agent", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				sec = run(mode.dynamic)
			}
			b.ReportMetric(sec, "job-makespan-s")
		})
	}
}

// BenchmarkOpenMPScheduling regenerates the Section IV observation
// about codes that assume equal thread progress: a static parallel-for
// loop collapses when an agent takes half the team's threads, while a
// dynamic one redistributes the iterations.
func BenchmarkOpenMPScheduling(b *testing.B) {
	run := func(sched omp.Schedule, blocked int) float64 {
		m := machine.PaperModel()
		eng := des.NewEngine(1)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		rt := omp.New(o, omp.Config{Name: "omp"})
		rt.BlockThreads(blocked)
		var doneAt des.Time
		rt.ParallelFor(320, sched, 1, 0.01, 0, func() { doneAt = eng.Now() })
		eng.RunUntil(10)
		return float64(doneAt)
	}
	cases := []struct {
		name    string
		sched   omp.Schedule
		blocked int
	}{
		{"static-full-team", omp.Static, 0},
		{"dynamic-full-team", omp.Dynamic, 0},
		{"static-half-team", omp.Static, 16},
		{"dynamic-half-team", omp.Dynamic, 16},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				sec = run(c.sched, c.blocked)
			}
			b.ReportMetric(sec, "loop-seconds")
		})
	}
}

// BenchmarkAblationRemoteEfficiency sweeps the simulator's
// remote-access efficiency factor on the Table III cross-node scenario,
// showing how far real-hardware remote-access losses (which the
// analytic model ignores) can push the measured value below the model's
// 13.98.
func BenchmarkAblationRemoteEfficiency(b *testing.B) {
	for _, eff := range []float64{1.0, 0.92, 0.8, 0.6} {
		eff := eff
		name := fmt.Sprintf("efficiency-%.2f", eff)
		b.Run(name, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				rows := core.TableIIIScenarios()
				s := rows[3].Scenario // NUMA-bad cross-node, even
				s.Sim.Duration = 0.25
				s.Sim.RemoteEfficiency = eff
				r, err := s.RunSim()
				if err != nil {
					b.Fatal(err)
				}
				sim = r.TotalGFLOPS
			}
			b.ReportMetric(sim, "sim-GFLOPS")
			b.ReportMetric(13.98, "model-GFLOPS")
		})
	}
}
