package taskrt

import (
	"fmt"

	"repro/internal/machine"
)

// migrationAI converts a copy volume into (GFlop, AI) so the copy task
// moves exactly SizeGB of data: bytes = GFlop / AI. The tiny intensity
// makes the copy bandwidth-bound, so its duration is the volume divided
// by whatever bandwidth the machine grants — saturating the inter-node
// link like a real page migration.
const migrationAI = 1e-3

// MigrateBlock schedules a migration of the data block to dst: a copy
// task that runs on a worker of dst and streams the block's SizeGB from
// its current node (remote traffic over the link), then retargets the
// block. onDone (may be nil) fires after the flip. Tasks that start
// during the copy still read the old location; tasks submitted after
// onDone read the new one.
//
// This implements the paper's Section III.A wish: "in the ideal case,
// the application should be able to move the data to a different NUMA
// node. This would easily be possible in OCR, where the runtime system
// is also in charge of managing the data."
//
// The runtime must use the NUMA-aware scheduler (the placement hint is
// what routes the copy to dst) and the block must have a positive
// SizeGB. The returned task is already submitted.
func (rt *Runtime) MigrateBlock(b *DataBlock, dst machine.NodeID, onDone func()) (*Task, error) {
	if b == nil {
		return nil, fmt.Errorf("taskrt: nil data block")
	}
	if b.SizeGB <= 0 {
		return nil, fmt.Errorf("taskrt: block %q has no size; cannot cost the migration", b.Name)
	}
	m := rt.os.Machine()
	if int(dst) < 0 || int(dst) >= m.NumNodes() {
		return nil, fmt.Errorf("taskrt: destination node %d out of range", dst)
	}
	if rt.cfg.Scheduler != NUMAAware {
		return nil, fmt.Errorf("taskrt: MigrateBlock requires the NUMA-aware scheduler")
	}
	if b.Node == dst {
		// Already there: complete immediately via a trivial task so the
		// caller still gets asynchronous completion semantics.
		t := rt.NewTask(fmt.Sprintf("migrate-%s-noop", b.Name), 1e-9, 0, nil)
		t.OnComplete = onDone
		rt.Submit(t)
		return t, nil
	}
	src := b.Node
	// The copy reads the source node's memory from a worker on dst.
	copySrc := &DataBlock{Name: b.Name + "-src", Node: src, SizeGB: b.SizeGB}
	t := rt.NewTask(fmt.Sprintf("migrate-%s-%d-to-%d", b.Name, src, dst),
		b.SizeGB*migrationAI, migrationAI, copySrc)
	t.PreferNode(dst)
	t.OnComplete = func() {
		b.Node = dst
		if onDone != nil {
			onDone()
		}
	}
	rt.Submit(t)
	return t, nil
}
