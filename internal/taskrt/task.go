// Package taskrt implements an OCR-Vx-like task-based runtime system on
// top of the simulated operating system in internal/osched.
//
// Applications express work as fine-grained tasks with dependencies;
// the runtime schedules ready tasks onto a pool of worker threads. Like
// the runtime described in the paper, it can dynamically suspend and
// resume workers in three ways (Section II):
//
//  1. a total thread count (idle threads block first, threads finishing
//     a task block next, tasks are never preempted),
//  2. explicit blocking of workers bound to individual cores, and
//  3. per-NUMA-node thread counts for workers bound to NUMA nodes.
//
// Data blocks carry a NUMA placement, so schedulers can be NUMA-aware
// (run a task near its data) or NUMA-oblivious (global FIFO), and the
// runtime reports execution statistics to an external agent.
package taskrt

import (
	"fmt"

	"repro/internal/machine"
)

// DataBlock is a runtime-managed datum with an explicit NUMA placement,
// like an OCR data block. Tasks reading a block generate memory traffic
// against its node.
type DataBlock struct {
	// Name labels the block.
	Name string
	// Node is the NUMA node holding the block.
	Node machine.NodeID
	// SizeGB is informational (intermediate-data accounting).
	SizeGB float64
}

// TaskState tracks a task through its lifecycle.
type TaskState int

const (
	// TaskCreated tasks are built but not yet submitted.
	TaskCreated TaskState = iota
	// TaskWaiting tasks are submitted with unmet dependencies.
	TaskWaiting
	// TaskReady tasks sit in a scheduler queue.
	TaskReady
	// TaskRunning tasks occupy a worker.
	TaskRunning
	// TaskDone tasks have completed.
	TaskDone
)

// String names the state.
func (s TaskState) String() string {
	switch s {
	case TaskCreated:
		return "created"
	case TaskWaiting:
		return "waiting"
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	default:
		return fmt.Sprintf("taskstate(%d)", int(s))
	}
}

// Task is one unit of work.
type Task struct {
	// Name labels the task.
	Name string
	// GFlop is the compute volume.
	GFlop float64
	// AI is the arithmetic intensity (FLOP/byte); <= 0 means
	// compute-only (no memory traffic).
	AI float64
	// Data is the block the task reads/writes; nil means the task
	// accesses the executing core's local node.
	Data *DataBlock
	// OnComplete runs when the task finishes (may submit more tasks).
	OnComplete func()

	rt        *Runtime
	state     TaskState
	remaining int // unmet dependencies
	succs     []*Task
	submitted bool
	execCore  machine.CoreID
	executed  bool
	prefer    machine.NodeID
	hasPrefer bool
}

// PreferNode hints the NUMA-aware scheduler to run the task on a
// worker of the given node, overriding the data block's node. FIFO and
// work-stealing schedulers ignore the hint. Returns the task for
// chaining.
func (t *Task) PreferNode(n machine.NodeID) *Task {
	t.prefer = n
	t.hasPrefer = true
	return t
}

// queueNode returns the node the scheduler should home the task on.
func (t *Task) queueNode() machine.NodeID {
	if t.hasPrefer {
		return t.prefer
	}
	return t.memNode()
}

// ExecutedOn returns the core that ran the task, once it is done.
func (t *Task) ExecutedOn() (machine.CoreID, bool) { return t.execCore, t.executed }

// State returns the task's lifecycle state.
func (t *Task) State() TaskState { return t.state }

// memNode returns the node the task's memory traffic targets.
func (t *Task) memNode() machine.NodeID {
	if t.Data == nil {
		return -1 // osched.LocalNode
	}
	return t.Data.Node
}

// DependsOn registers dependencies: t cannot start before all deps
// complete. It panics if t or a dependency was already submitted (which
// would race with scheduling), or if the edge would close a dependency
// cycle — a cycle can never run and would deadlock the whole graph
// silently at runtime, so it is rejected at construction.
func (t *Task) DependsOn(deps ...*Task) *Task {
	if t.submitted {
		panic("taskrt: DependsOn after Submit")
	}
	for _, d := range deps {
		if d == nil {
			panic("taskrt: nil dependency")
		}
		if d.state == TaskDone {
			continue // already satisfied
		}
		if d == t || reaches(t, d) {
			panic(fmt.Sprintf("taskrt: dependency cycle: %q -> %q", t.Name, d.Name))
		}
		d.succs = append(d.succs, t)
		t.remaining++
	}
	return t
}

// reaches reports whether target is reachable from t along successor
// edges — if so, an edge target->t would close a cycle. Graphs are
// walked at construction time only; the cost is bounded by the edges
// added so far.
func reaches(t, target *Task) bool {
	if t == target {
		return true
	}
	for _, s := range t.succs {
		if reaches(s, target) {
			return true
		}
	}
	return false
}
