package taskrt

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
)

func TestEventGatesTask(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app"})
	e := rt.NewEvent()
	done := false
	task := rt.NewTask("t", 0.01, 0, nil)
	task.OnComplete = func() { done = true }
	task.DependsOnEvents(e)
	rt.Submit(task)
	eng.RunUntil(0.2)
	if done {
		t.Fatal("task ran before event satisfied")
	}
	if task.State() != TaskWaiting {
		t.Fatalf("state = %v, want waiting", task.State())
	}
	eng.Schedule(0.3, e.Satisfy)
	eng.RunUntil(0.5)
	if !done {
		t.Error("task did not run after Satisfy")
	}
	if !e.Satisfied() {
		t.Error("event not marked satisfied")
	}
}

func TestSatisfiedEventIsNoDependency(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app"})
	e := rt.NewEvent()
	e.Satisfy()
	done := false
	task := rt.NewTask("t", 0.01, 0, nil)
	task.OnComplete = func() { done = true }
	task.DependsOnEvents(e) // already satisfied: no-op
	rt.Submit(task)
	eng.RunUntil(0.2)
	if !done {
		t.Error("task gated by an already-satisfied event")
	}
}

func TestEventMixedWithTaskDeps(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app"})
	e := rt.NewEvent()
	dep := rt.NewTask("dep", 0.01, 0, nil)
	done := false
	task := rt.NewTask("t", 0.01, 0, nil)
	task.OnComplete = func() { done = true }
	task.DependsOn(dep)
	task.DependsOnEvents(e)
	rt.Submit(task)
	rt.Submit(dep)
	eng.RunUntil(0.2)
	if done {
		t.Fatal("task ran with unsatisfied event")
	}
	e.Satisfy()
	eng.RunUntil(0.4)
	if !done {
		t.Error("task did not run after both deps met")
	}
}

func TestEventPanics(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "app"})
	rt2 := New(o, Config{Name: "other"})
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	e := rt.NewEvent()
	e.Satisfy()
	expectPanic("double satisfy", e.Satisfy)
	expectPanic("nil event", func() { rt.NewTask("t", 1, 0, nil).DependsOnEvents(nil) })
	expectPanic("foreign event", func() { rt.NewTask("t", 1, 0, nil).DependsOnEvents(rt2.NewEvent()) })
	task := rt.NewTask("t", 1, 0, nil)
	rt.Submit(task)
	expectPanic("events after submit", func() { task.DependsOnEvents(rt.NewEvent()) })
}

func TestLatch(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app"})
	l := rt.NewLatch(2)
	l.Up() // count 3
	done := false
	task := rt.NewTask("t", 0.01, 0, nil)
	task.OnComplete = func() { done = true }
	task.DependsOnEvents(l.Event())
	rt.Submit(task)
	l.Down()
	l.Down()
	eng.RunUntil(0.1)
	if done {
		t.Fatal("latch fired early")
	}
	l.Down()
	eng.RunUntil(0.3)
	if !done {
		t.Error("latch never released the task")
	}
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("down after fire", l.Down)
	expectPanic("up after fire", l.Up)
	expectPanic("zero latch", func() { rt.NewLatch(0) })
}

func TestMigrateBlock(t *testing.T) {
	m := machine.SkylakeQuad()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: taskBindCore(), Scheduler: NUMAAware})
	blk := &DataBlock{Name: "data", Node: 0, SizeGB: 2}
	var migratedAt des.Time
	task, err := rt.MigrateBlock(blk, 3, func() { migratedAt = eng.Now() })
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2)
	if task.State() != TaskDone {
		t.Fatal("migration task never completed")
	}
	if blk.Node != 3 {
		t.Errorf("block on node %d after migration, want 3", blk.Node)
	}
	// 2 GB over a 10 GB/s link: >= 0.2 s.
	if migratedAt < 0.19 {
		t.Errorf("migration finished at %v, faster than the link allows (>= 0.2 s)", migratedAt)
	}
	// The copy ran on the destination node (remote read over the link).
	core, ok := task.ExecutedOn()
	if !ok || m.NodeOfCore(core) != 3 {
		t.Errorf("copy executed on node %d, want 3", m.NodeOfCore(core))
	}
}

func taskBindCore() BindMode { return BindCore }

func TestMigrateBlockNoop(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore, Scheduler: NUMAAware})
	blk := &DataBlock{Name: "data", Node: 2, SizeGB: 1}
	done := false
	if _, err := rt.MigrateBlock(blk, 2, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(0.1)
	if !done || blk.Node != 2 {
		t.Error("no-op migration should still complete")
	}
}

func TestMigrateBlockErrors(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	fifo := New(o, Config{Name: "fifo", BindMode: BindCore})
	numa := New(o, Config{Name: "numa", BindMode: BindCore, Scheduler: NUMAAware})
	blk := &DataBlock{Name: "d", Node: 0, SizeGB: 1}
	if _, err := fifo.MigrateBlock(blk, 1, nil); err == nil {
		t.Error("expected error for non-NUMA-aware scheduler")
	}
	if _, err := numa.MigrateBlock(nil, 1, nil); err == nil {
		t.Error("expected error for nil block")
	}
	if _, err := numa.MigrateBlock(&DataBlock{Node: 0}, 1, nil); err == nil {
		t.Error("expected error for zero-size block")
	}
	if _, err := numa.MigrateBlock(blk, 99, nil); err == nil {
		t.Error("expected error for bad destination")
	}
}

func TestMigrationImprovesNUMABadApp(t *testing.T) {
	// A NUMA-bad app pinned to node 3 with its data on node 0 is
	// link-bound; migrating the block to node 3 restores local speed.
	run := func(migrate bool) float64 {
		m := machine.SkylakeQuad()
		eng, o := newSim(m)
		rt := New(o, Config{
			Name: "app", BindMode: BindCore, Scheduler: NUMAAware,
			Cores: m.CoresOfNode(3),
		})
		blk := &DataBlock{Name: "data", Node: 0, SizeGB: 1}
		stop := false
		var feed func()
		feed = func() {
			if stop {
				return
			}
			task := rt.NewTask("t", 0.003, 1.0/16, blk)
			task.PreferNode(3) // execute on the pinned node
			task.OnComplete = feed
			rt.Submit(task)
		}
		for i := 0; i < 40; i++ {
			feed()
		}
		if migrate {
			if _, err := rt.MigrateBlock(blk, 3, nil); err != nil {
				t.Fatal(err)
			}
		}
		eng.RunUntil(1)
		stop = true
		return rt.Stats().GFlopDone
	}
	static := run(false)
	migrated := run(true)
	if migrated < static*1.5 {
		t.Errorf("migration should clearly help: %.3f vs %.3f GFLOPS", migrated, static)
	}
}

func TestSetTotalThreadsBalanced(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindNode})
	var feed func()
	feed = func() {
		task := rt.NewTask("t", 0.01, 0, nil)
		task.OnComplete = feed
		rt.Submit(task)
	}
	for i := 0; i < 64; i++ {
		feed()
	}
	rt.SetTotalThreadsBalanced(16)
	eng.RunUntil(1)
	st := rt.Stats()
	if st.Suspended != 16 {
		t.Fatalf("suspended = %d, want 16", st.Suspended)
	}
	// Active threads spread 4 per node: all four nodes busy.
	loads := o.CoreLoads()
	nodeBusy := make([]float64, 4)
	for c, l := range loads {
		nodeBusy[m.NodeOfCore(machine.CoreID(c))] += l
	}
	for j, busy := range nodeBusy {
		if math.Abs(busy-4) > 0.5 {
			t.Errorf("node %d busy %.2f core-seconds, want ~4 (balanced)", j, busy)
		}
	}
}

func TestSetTotalThreadsBalancedUnboundFallback(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindNone})
	rt.SetTotalThreadsBalanced(8)
	eng.RunUntil(0.1)
	if st := rt.Stats(); st.Suspended != 24 {
		t.Errorf("fallback suspended = %d, want 24", st.Suspended)
	}
}

func TestSetTotalThreadsBalancedOverAsk(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindNode, Workers: 8})
	rt.SetTotalThreadsBalanced(100) // more than available: all active
	eng.RunUntil(0.05)
	if st := rt.Stats(); st.Suspended != 0 {
		t.Errorf("suspended = %d, want 0", st.Suspended)
	}
}
