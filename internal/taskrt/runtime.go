package taskrt

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/osched"
)

// BindMode selects how worker threads are pinned, mirroring the paper's
// option 1 note: "threads may be bound (using affinity) to individual
// cores, to all cores in a NUMA node or unbound".
type BindMode int

const (
	// BindNone leaves workers unbound (any core).
	BindNone BindMode = iota
	// BindNode pins each worker to all cores of one NUMA node.
	BindNode
	// BindCore pins each worker to one core.
	BindCore
)

// String names the bind mode.
func (b BindMode) String() string {
	switch b {
	case BindNone:
		return "unbound"
	case BindNode:
		return "node-bound"
	case BindCore:
		return "core-bound"
	default:
		return "bind(?)"
	}
}

// Config configures a runtime instance.
type Config struct {
	// Name labels the runtime's OS process.
	Name string
	// BindMode pins workers (default BindNone).
	BindMode BindMode
	// Scheduler selects the ready-queue policy (default FIFO).
	Scheduler SchedulerKind
	// Workers is the worker-thread count; 0 means one per core (the
	// paper's default: "each application starts with as many threads
	// as there are CPU cores").
	Workers int
	// FirstCore offsets BindCore pinning: worker i is pinned to core
	// FirstCore+i. It lets several runtimes statically partition the
	// machine's cores. Ignored for other bind modes.
	FirstCore machine.CoreID
	// Cores, when non-empty with BindCore, pins worker i to Cores[i]
	// (overriding Workers and FirstCore). It supports arbitrary,
	// non-contiguous core partitions.
	Cores []machine.CoreID
	// NoRemoteSteal makes the NUMA-aware scheduler strictly local:
	// workers never take tasks homed on other nodes, trading
	// utilization for locality (tasks wait for their own node's
	// workers). Ignored by the other schedulers.
	NoRemoteSteal bool
}

// blockControl selects which thread-control option is active.
type blockControl int

const (
	controlNone blockControl = iota
	controlTotal
	controlPerNode
)

type worker struct {
	rt     *Runtime
	id     int
	node   machine.NodeID // -1 when unbound
	core   machine.CoreID // valid for BindCore
	thread *osched.Thread

	idle        bool // parked waiting for work
	suspended   bool // parked by thread control
	coreBlocked bool // option 2 explicit request
	cur         *Task
}

// Runtime is one task-based runtime instance (one application).
type Runtime struct {
	os      *osched.OS
	cfg     Config
	proc    *osched.Process
	sched   scheduler
	workers []*worker
	byNode  map[machine.NodeID][]*worker

	control       blockControl
	targetTotal   int
	targetPerNode []int

	outstanding   int
	tasksExecuted uint64
	onAllDone     []func()
	tracer        Tracer
}

// Tracer receives task lifecycle callbacks for observability. Start
// times are when a worker picked the task up (execution begins within
// the same scheduling quantum).
type Tracer interface {
	// TaskStart fires when a worker takes the task.
	TaskStart(runtime, task string, workerID int, core machine.CoreID, at float64)
	// TaskEnd fires at task completion.
	TaskEnd(runtime, task string, workerID int, at float64)
}

// SetTracer installs a tracer (nil disables tracing).
func (rt *Runtime) SetTracer(tr Tracer) { rt.tracer = tr }

// New creates a runtime with its worker threads on the simulated OS.
func New(os *osched.OS, cfg Config) *Runtime {
	m := os.Machine()
	if cfg.BindMode == BindCore && len(cfg.Cores) > 0 {
		cfg.Workers = len(cfg.Cores)
		for _, c := range cfg.Cores {
			if int(c) < 0 || int(c) >= m.TotalCores() {
				panic(fmt.Sprintf("taskrt: pinned core %d out of range", c))
			}
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = m.TotalCores()
	}
	if cfg.BindMode == BindCore && len(cfg.Cores) == 0 && int(cfg.FirstCore)+cfg.Workers > m.TotalCores() {
		panic(fmt.Sprintf("taskrt: %d core-bound workers from core %d exceed %d cores",
			cfg.Workers, cfg.FirstCore, m.TotalCores()))
	}
	rt := &Runtime{
		os:     os,
		cfg:    cfg,
		proc:   os.NewProcess(cfg.Name),
		byNode: map[machine.NodeID][]*worker{},
	}
	switch cfg.Scheduler {
	case WorkStealing:
		rt.sched = newStealScheduler(os.Engine().Rand())
	case NUMAAware:
		rt.sched = newNUMAScheduler(m, cfg.NoRemoteSteal)
	default:
		rt.sched = &fifoScheduler{}
	}

	for i := 0; i < cfg.Workers; i++ {
		w := &worker{rt: rt, id: i, node: -1}
		var aff osched.CoreSet
		switch cfg.BindMode {
		case BindCore:
			if len(cfg.Cores) > 0 {
				w.core = cfg.Cores[i]
			} else {
				w.core = cfg.FirstCore + machine.CoreID(i)
			}
			w.node = m.NodeOfCore(w.core)
			aff = osched.SingleCore(m, w.core)
		case BindNode:
			// Spread workers across nodes proportionally to core counts.
			w.node = nodeForWorker(m, i)
			aff = osched.NodeCores(m, w.node)
		default:
			aff = osched.AllCores(m)
		}
		w.thread = rt.proc.NewThread(fmt.Sprintf("%s-w%d", cfg.Name, i), w, aff)
		rt.workers = append(rt.workers, w)
		rt.byNode[w.node] = append(rt.byNode[w.node], w)
		if ss, ok := rt.sched.(*stealScheduler); ok {
			ss.register(w)
		}
	}
	return rt
}

// nodeForWorker assigns worker i to a node, filling each node up to its
// core count in order.
func nodeForWorker(m *machine.Machine, i int) machine.NodeID {
	for n, nd := range m.Nodes {
		if i < nd.Cores {
			return machine.NodeID(n)
		}
		i -= nd.Cores
	}
	// More workers than cores: wrap around.
	return machine.NodeID(i % m.NumNodes())
}

// Name returns the runtime's label.
func (rt *Runtime) Name() string { return rt.cfg.Name }

// Process exposes the underlying OS process (for load queries).
func (rt *Runtime) Process() *osched.Process { return rt.proc }

// OS returns the hosting simulated OS.
func (rt *Runtime) OS() *osched.OS { return rt.os }

// NewTask builds an unsubmitted task.
func (rt *Runtime) NewTask(name string, gflop, ai float64, data *DataBlock) *Task {
	if gflop < 0 {
		panic("taskrt: negative task size")
	}
	return &Task{Name: name, GFlop: gflop, AI: ai, Data: data, rt: rt}
}

// Submit makes a task eligible to run once its dependencies complete.
// Submitting twice panics.
func (rt *Runtime) Submit(t *Task) {
	if t.rt != rt {
		panic("taskrt: task submitted to a foreign runtime")
	}
	if t.submitted {
		panic("taskrt: task submitted twice")
	}
	t.submitted = true
	rt.outstanding++
	if t.remaining == 0 {
		rt.makeReady(t, nil)
	} else {
		t.state = TaskWaiting
	}
}

// makeReady queues a ready task. from is the worker whose completion
// released it (nil for external submissions); work-stealing keeps such
// tasks on the releasing worker's deque for cache locality.
func (rt *Runtime) makeReady(t *Task, from *worker) {
	t.state = TaskReady
	rt.sched.push(t, from)
	rt.wakeIdleWorker(t.queueNode())
}

// wakeIdleWorker wakes one parked (idle, non-suspended) worker,
// preferring one on the given node.
func (rt *Runtime) wakeIdleWorker(prefer machine.NodeID) {
	var fallback *worker
	for _, w := range rt.workers {
		if !w.idle || w.suspended {
			continue
		}
		if w.node == prefer {
			w.idle = false
			w.thread.Wake()
			return
		}
		if fallback == nil {
			fallback = w
		}
	}
	if fallback != nil {
		fallback.idle = false
		fallback.thread.Wake()
	}
}

// Next implements osched.Runner: it is the worker loop.
func (w *worker) Next(*osched.Thread) osched.Work {
	rt := w.rt
	w.idle = false
	if rt.shouldSuspend(w) {
		w.suspended = true
		return osched.Work{Kind: osched.WorkBlock}
	}
	t := rt.sched.pop(w)
	if t == nil {
		w.idle = true
		return osched.Work{Kind: osched.WorkBlock}
	}
	t.state = TaskRunning
	w.cur = t
	if rt.tracer != nil {
		core, _ := w.thread.LastCore()
		rt.tracer.TaskStart(rt.cfg.Name, t.Name, w.id, core, float64(rt.os.Engine().Now()))
	}
	return osched.Work{
		Kind:    osched.WorkCompute,
		GFlop:   t.GFlop,
		AI:      t.AI,
		MemNode: t.memNode(),
		OnDone:  func() { rt.complete(w) },
	}
}

// shouldSuspend applies the active thread-control option to a worker
// that is between tasks.
func (rt *Runtime) shouldSuspend(w *worker) bool {
	if w.coreBlocked {
		return true
	}
	switch rt.control {
	case controlTotal:
		return rt.activeCount() > rt.targetTotal
	case controlPerNode:
		if w.node < 0 || int(w.node) >= len(rt.targetPerNode) {
			return false
		}
		return rt.activeInNode(w.node) > rt.targetPerNode[w.node]
	}
	return false
}

func (rt *Runtime) activeCount() int {
	n := 0
	for _, w := range rt.workers {
		if !w.suspended {
			n++
		}
	}
	return n
}

func (rt *Runtime) activeInNode(node machine.NodeID) int {
	n := 0
	for _, w := range rt.byNode[node] {
		if !w.suspended {
			n++
		}
	}
	return n
}

// complete finishes the worker's current task: statistics, dependency
// propagation, completion callbacks.
func (rt *Runtime) complete(w *worker) {
	t := w.cur
	w.cur = nil
	t.state = TaskDone
	if c, ok := w.thread.LastCore(); ok {
		t.execCore, t.executed = c, true
	}
	if rt.tracer != nil {
		rt.tracer.TaskEnd(rt.cfg.Name, t.Name, w.id, float64(rt.os.Engine().Now()))
	}
	rt.tasksExecuted++
	rt.outstanding--
	for _, s := range t.succs {
		s.remaining--
		if s.remaining == 0 && s.submitted {
			rt.makeReady(s, w)
		}
	}
	if t.OnComplete != nil {
		t.OnComplete()
	}
	if rt.outstanding == 0 && len(rt.onAllDone) > 0 {
		fns := rt.onAllDone
		rt.onAllDone = nil
		for _, fn := range fns {
			fn()
		}
	}
}

// OnAllDone registers fn to run once when no submitted task remains
// outstanding. If the runtime is already drained it fires immediately.
func (rt *Runtime) OnAllDone(fn func()) {
	if rt.outstanding == 0 {
		fn()
		return
	}
	rt.onAllDone = append(rt.onAllDone, fn)
}

// --- Thread control (the paper's three options) ---

// SetTotalThreads applies option 1: use exactly n worker threads. Idle
// workers beyond the target suspend immediately; busy workers suspend
// as they finish their current task (tasks are never preempted).
// Raising the target resumes randomly chosen suspended workers at once.
func (rt *Runtime) SetTotalThreads(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(rt.workers) {
		n = len(rt.workers)
	}
	rt.control = controlTotal
	rt.targetTotal = n
	// Suspend idle workers first (the paper: inactive threads block
	// first; threads running long tasks keep running).
	for _, w := range rt.workers {
		if rt.activeCount() <= n {
			break
		}
		if w.idle && !w.suspended {
			w.idle = false
			w.suspended = true
		}
	}
	rt.resumeSuspended(func() int { return n - rt.activeCount() })
}

// SetTotalThreadsBalanced applies option 1 but chooses the suspended
// threads so the active ones stay spread evenly across NUMA nodes —
// the extension the paper proposes for NUMA-aware applications ("it
// would be possible to extend it to spread the blocked threads evenly
// across the NUMA nodes"). It requires node- or core-bound workers and
// falls back to plain SetTotalThreads for unbound ones.
func (rt *Runtime) SetTotalThreadsBalanced(n int) {
	if rt.cfg.BindMode == BindNone {
		rt.SetTotalThreads(n)
		return
	}
	m := rt.os.Machine()
	counts := make([]int, m.NumNodes())
	remaining := n
	for remaining > 0 {
		progress := false
		for j := 0; j < m.NumNodes() && remaining > 0; j++ {
			if counts[j] < len(rt.byNode[machine.NodeID(j)]) {
				counts[j]++
				remaining--
				progress = true
			}
		}
		if !progress {
			break // fewer workers than requested
		}
	}
	_ = rt.SetNodeThreads(counts) // bind mode already checked
}

// SetNodeThreads applies option 3: per-NUMA-node thread counts. Workers
// must be node- or core-bound. counts has one entry per node.
func (rt *Runtime) SetNodeThreads(counts []int) error {
	if rt.cfg.BindMode == BindNone {
		return fmt.Errorf("taskrt: SetNodeThreads requires node- or core-bound workers")
	}
	m := rt.os.Machine()
	if len(counts) != m.NumNodes() {
		return fmt.Errorf("taskrt: got %d node counts, machine has %d nodes", len(counts), m.NumNodes())
	}
	rt.control = controlPerNode
	rt.targetPerNode = append([]int(nil), counts...)
	for node, ws := range rt.byNode {
		if node < 0 {
			continue
		}
		target := counts[node]
		for _, w := range ws {
			if rt.activeInNode(node) <= target {
				break
			}
			if w.idle && !w.suspended {
				w.idle = false
				w.suspended = true
			}
		}
		rt.resumeSuspendedInNode(node, func() int { return target - rt.activeInNode(node) })
	}
	return nil
}

// BlockCores applies option 2: block the workers bound to the given
// cores. Requires BindCore. Idle workers block at once, busy workers as
// soon as their task finishes.
func (rt *Runtime) BlockCores(cores []machine.CoreID) error {
	if rt.cfg.BindMode != BindCore {
		return fmt.Errorf("taskrt: BlockCores requires core-bound workers")
	}
	want := map[machine.CoreID]bool{}
	for _, c := range cores {
		want[c] = true
	}
	for _, w := range rt.workers {
		if !want[w.core] {
			continue
		}
		w.coreBlocked = true
		if w.idle && !w.suspended {
			w.idle = false
			w.suspended = true
		}
	}
	return nil
}

// UnblockCores reverses BlockCores for the given cores; resumed workers
// wake almost immediately.
func (rt *Runtime) UnblockCores(cores []machine.CoreID) error {
	if rt.cfg.BindMode != BindCore {
		return fmt.Errorf("taskrt: UnblockCores requires core-bound workers")
	}
	want := map[machine.CoreID]bool{}
	for _, c := range cores {
		want[c] = true
	}
	for _, w := range rt.workers {
		if !want[w.core] || !w.coreBlocked {
			continue
		}
		w.coreBlocked = false
		if w.suspended {
			w.suspended = false
			w.thread.Wake()
		}
	}
	return nil
}

// resumeSuspended wakes randomly selected suspended workers while
// deficit() > 0 (the paper: "these threads are selected randomly").
func (rt *Runtime) resumeSuspended(deficit func() int) {
	rng := rt.os.Engine().Rand()
	for deficit() > 0 {
		var pool []*worker
		for _, w := range rt.workers {
			if w.suspended && !w.coreBlocked {
				pool = append(pool, w)
			}
		}
		if len(pool) == 0 {
			return
		}
		w := pool[rng.Intn(len(pool))]
		w.suspended = false
		w.thread.Wake()
	}
}

func (rt *Runtime) resumeSuspendedInNode(node machine.NodeID, deficit func() int) {
	rng := rt.os.Engine().Rand()
	for deficit() > 0 {
		var pool []*worker
		for _, w := range rt.byNode[node] {
			if w.suspended && !w.coreBlocked {
				pool = append(pool, w)
			}
		}
		if len(pool) == 0 {
			return
		}
		w := pool[rng.Intn(len(pool))]
		w.suspended = false
		w.thread.Wake()
	}
}

// Stats is the runtime's monitoring snapshot, the information the
// paper's agent receives ("number of tasks executed, number of running
// threads, etc.").
type Stats struct {
	// TasksExecuted counts completed tasks.
	TasksExecuted uint64
	// Pending counts ready tasks waiting in queues.
	Pending int
	// Outstanding counts submitted but uncompleted tasks.
	Outstanding int
	// Workers is the total worker-thread count.
	Workers int
	// Suspended counts workers parked by thread control.
	Suspended int
	// Idle counts workers parked for lack of work.
	Idle int
	// Running counts workers currently executing a task.
	Running int
	// GFlopDone is total compute completed.
	GFlopDone float64
	// BusySeconds is total CPU time consumed.
	BusySeconds float64
}

// Stats returns the current snapshot.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		TasksExecuted: rt.tasksExecuted,
		Pending:       rt.sched.pending(),
		Outstanding:   rt.outstanding,
		Workers:       len(rt.workers),
		GFlopDone:     rt.proc.GFlopDone(),
		BusySeconds:   rt.proc.BusySeconds(),
	}
	for _, w := range rt.workers {
		switch {
		case w.suspended:
			s.Suspended++
		case w.idle:
			s.Idle++
		case w.cur != nil:
			s.Running++
		}
	}
	return s
}
