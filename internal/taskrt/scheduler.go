package taskrt

import (
	"math/rand"

	"repro/internal/machine"
)

// SchedulerKind selects the ready-task scheduling policy.
type SchedulerKind int

const (
	// FIFO is a single global queue, NUMA-oblivious.
	FIFO SchedulerKind = iota
	// WorkStealing gives each worker a deque: own tasks LIFO, steals
	// FIFO from random victims.
	WorkStealing
	// NUMAAware keeps one queue per NUMA node; tasks go to their data
	// block's node and workers prefer their own node's queue before
	// stealing from others.
	NUMAAware
)

// String names the scheduler kind.
func (k SchedulerKind) String() string {
	switch k {
	case FIFO:
		return "fifo"
	case WorkStealing:
		return "work-stealing"
	case NUMAAware:
		return "numa-aware"
	default:
		return "scheduler(?)"
	}
}

// scheduler holds ready tasks. Implementations are single-threaded
// (driven by the deterministic simulation) so no locking is needed.
type scheduler interface {
	// push enqueues a ready task. w is the worker that produced it
	// (nil for external submissions).
	push(t *Task, w *worker)
	// pop dequeues a task for worker w, or nil.
	pop(w *worker) *Task
	// pending returns the number of queued tasks.
	pending() int
}

// fifoScheduler is the NUMA-oblivious single queue.
type fifoScheduler struct {
	q []*Task
}

func (s *fifoScheduler) push(t *Task, _ *worker) { s.q = append(s.q, t) }

func (s *fifoScheduler) pop(_ *worker) *Task {
	if len(s.q) == 0 {
		return nil
	}
	t := s.q[0]
	s.q = s.q[1:]
	return t
}

func (s *fifoScheduler) pending() int { return len(s.q) }

// stealScheduler implements per-worker deques with random stealing.
type stealScheduler struct {
	deques map[*worker][]*Task
	global []*Task // external submissions
	order  []*worker
	rng    *rand.Rand
}

func newStealScheduler(rng *rand.Rand) *stealScheduler {
	return &stealScheduler{deques: map[*worker][]*Task{}, rng: rng}
}

func (s *stealScheduler) register(w *worker) {
	s.order = append(s.order, w)
	s.deques[w] = nil
}

func (s *stealScheduler) push(t *Task, w *worker) {
	if w == nil {
		s.global = append(s.global, t)
		return
	}
	s.deques[w] = append(s.deques[w], t)
}

func (s *stealScheduler) pop(w *worker) *Task {
	// Own deque, LIFO (hot cache).
	if d := s.deques[w]; len(d) > 0 {
		t := d[len(d)-1]
		s.deques[w] = d[:len(d)-1]
		return t
	}
	// Global queue next.
	if len(s.global) > 0 {
		t := s.global[0]
		s.global = s.global[1:]
		return t
	}
	// Steal FIFO from a random victim, scanning all once.
	n := len(s.order)
	if n == 0 {
		return nil
	}
	start := s.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := s.order[(start+i)%n]
		if v == w {
			continue
		}
		if d := s.deques[v]; len(d) > 0 {
			t := d[0]
			s.deques[v] = d[1:]
			return t
		}
	}
	return nil
}

func (s *stealScheduler) pending() int {
	n := len(s.global)
	for _, d := range s.deques {
		n += len(d)
	}
	return n
}

// numaScheduler keeps a queue per NUMA node keyed by the task's data
// placement; workers drain their own node before stealing.
type numaScheduler struct {
	m       *machine.Machine
	queues  [][]*Task
	anyQ    []*Task // tasks without placement
	noSteal bool    // strict locality: never take another node's tasks
}

func newNUMAScheduler(m *machine.Machine, noSteal bool) *numaScheduler {
	return &numaScheduler{m: m, queues: make([][]*Task, m.NumNodes()), noSteal: noSteal}
}

func (s *numaScheduler) push(t *Task, _ *worker) {
	n := t.queueNode()
	if n < 0 || int(n) >= len(s.queues) {
		s.anyQ = append(s.anyQ, t)
		return
	}
	s.queues[n] = append(s.queues[n], t)
}

func (s *numaScheduler) pop(w *worker) *Task {
	home := w.node
	if home >= 0 && int(home) < len(s.queues) && len(s.queues[home]) > 0 {
		t := s.queues[home][0]
		s.queues[home] = s.queues[home][1:]
		return t
	}
	if len(s.anyQ) > 0 {
		t := s.anyQ[0]
		s.anyQ = s.anyQ[1:]
		return t
	}
	// Steal from the fullest other node queue: helps drain imbalance
	// while keeping most executions local. Tasks pinned with
	// PreferNode are never stolen — their placement is strict (data
	// migrations rely on this) — and strict-locality schedulers never
	// steal at all.
	if s.noSteal {
		return nil
	}
	best := -1
	for n := range s.queues {
		if machine.NodeID(n) == home || len(s.queues[n]) == 0 {
			continue
		}
		if best < 0 || len(s.queues[n]) > len(s.queues[best]) {
			best = n
		}
	}
	if best >= 0 {
		for i, t := range s.queues[best] {
			if t.hasPrefer {
				continue
			}
			s.queues[best] = append(s.queues[best][:i], s.queues[best][i+1:]...)
			return t
		}
	}
	return nil
}

func (s *numaScheduler) pending() int {
	n := len(s.anyQ)
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}
