package taskrt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
)

func newSim(m *machine.Machine) (*des.Engine, *osched.OS) {
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	return eng, o
}

func TestIndependentTasksComplete(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore})

	const n = 64
	done := 0
	for i := 0; i < n; i++ {
		task := rt.NewTask("t", 0.1, 0, nil) // 10ms each at 10 GFLOPS
		task.OnComplete = func() { done++ }
		rt.Submit(task)
	}
	drained := false
	rt.OnAllDone(func() { drained = true })
	eng.RunUntil(2)
	if done != n {
		t.Errorf("done = %d, want %d", done, n)
	}
	if !drained {
		t.Error("OnAllDone not fired")
	}
	st := rt.Stats()
	if st.TasksExecuted != n || st.Outstanding != 0 || st.Pending != 0 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.GFlopDone-6.4) > 1e-6 {
		t.Errorf("GFlopDone = %v, want 6.4", st.GFlopDone)
	}
	// 64 x 0.1 GFlop on 32 cores at 10 GFLOPS each: two waves of 10 ms.
	if eng.Now() > 2 && done != n {
		t.Error("tasks took too long")
	}
}

func TestParallelSpeedup(t *testing.T) {
	// 32 independent tasks should finish ~32x faster on 32 cores than
	// sequentially; verify they use all cores by elapsed time.
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore})
	var finished des.Time
	for i := 0; i < 32; i++ {
		task := rt.NewTask("t", 1, 0, nil) // 0.1 s each
		rt.Submit(task)
	}
	rt.OnAllDone(func() { finished = eng.Now() })
	eng.RunUntil(5)
	if finished == 0 {
		t.Fatal("tasks never finished")
	}
	if finished > 0.15 {
		t.Errorf("32 tasks on 32 cores took %v, want ~0.1 s", finished)
	}
}

func TestDependencyOrder(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore})

	var order []string
	mk := func(name string) *Task {
		task := rt.NewTask(name, 0.01, 0, nil)
		task.OnComplete = func() { order = append(order, name) }
		return task
	}
	a := mk("a")
	b := mk("b")
	c := mk("c")
	d := mk("d")
	b.DependsOn(a)
	c.DependsOn(a)
	d.DependsOn(b, c)
	for _, task := range []*Task{d, c, b, a} { // submit in reverse
		rt.Submit(task)
	}
	eng.RunUntil(1)
	if len(order) != 4 {
		t.Fatalf("completed %d tasks, want 4 (%v)", len(order), order)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Errorf("dependency order violated: %v", order)
	}
	if a.State() != TaskDone {
		t.Errorf("a state = %v, want done", a.State())
	}
}

func TestDependsOnCompletedTask(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app"})
	a := rt.NewTask("a", 0.01, 0, nil)
	rt.Submit(a)
	eng.RunUntil(0.5)
	if a.State() != TaskDone {
		t.Fatal("a not done")
	}
	b := rt.NewTask("b", 0.01, 0, nil)
	b.DependsOn(a) // satisfied dependency: must not block b
	rt.Submit(b)
	eng.RunUntil(1)
	if b.State() != TaskDone {
		t.Errorf("b state = %v, want done", b.State())
	}
}

func TestSetTotalThreadsThrottles(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore})
	// Continuous task feed: every completion submits a fresh task.
	var feed func()
	submitted := 0
	feed = func() {
		if submitted >= 100000 {
			return
		}
		submitted++
		task := rt.NewTask("t", 0.01, 0, nil)
		task.OnComplete = feed
		rt.Submit(task)
	}
	for i := 0; i < 64; i++ {
		feed()
	}
	rt.SetTotalThreads(8)
	eng.RunUntil(1)
	st := rt.Stats()
	if st.Suspended != 32-8 {
		t.Errorf("suspended = %d, want 24", st.Suspended)
	}
	// Throughput ~ 8 cores * 10 GFLOPS * 1 s = 80 GFlop.
	if math.Abs(st.GFlopDone-80) > 4 {
		t.Errorf("GFlopDone = %.2f, want ~80", st.GFlopDone)
	}

	// Raise the target: random workers resume almost immediately.
	rt.SetTotalThreads(16)
	eng.RunUntil(1.1)
	st = rt.Stats()
	if st.Suspended != 32-16 {
		t.Errorf("after raise suspended = %d, want 16", st.Suspended)
	}
	before := st.GFlopDone
	eng.RunUntil(2.1)
	rate := rt.Stats().GFlopDone - before
	if math.Abs(rate-160) > 8 {
		t.Errorf("throughput after raise = %.2f GFLOPS, want ~160", rate)
	}
}

func TestNoPreemption(t *testing.T) {
	// A long task keeps running even when the target drops to zero;
	// suspension happens only at task boundaries.
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore, Workers: 1})
	var doneAt des.Time
	task := rt.NewTask("long", 5, 0, nil) // 0.5 s on a 10 GFLOPS core
	task.OnComplete = func() { doneAt = eng.Now() }
	rt.Submit(task)
	eng.RunUntil(0.1)
	rt.SetTotalThreads(0)
	eng.RunUntil(1)
	if doneAt == 0 {
		t.Fatal("running task was preempted by SetTotalThreads(0)")
	}
	if doneAt < 0.49 || doneAt > 0.55 {
		t.Errorf("task finished at %v, want ~0.5", doneAt)
	}
	if st := rt.Stats(); st.Suspended != 1 {
		t.Errorf("worker should suspend after finishing: %+v", st)
	}
}

func TestBlockCores(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore})
	var feed func()
	feed = func() {
		task := rt.NewTask("t", 0.01, 0, nil)
		task.OnComplete = feed
		rt.Submit(task)
	}
	for i := 0; i < 64; i++ {
		feed()
	}
	// Block all of node 0's cores.
	if err := rt.BlockCores(m.CoresOfNode(0)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(0.5)
	if st := rt.Stats(); st.Suspended != 8 {
		t.Errorf("suspended = %d, want 8", st.Suspended)
	}
	loads := o.CoreLoads()
	for c := 0; c < 8; c++ {
		// Blocked within the first task (~10 ms); core busy must stay tiny.
		if loads[c] > 0.05 {
			t.Errorf("blocked core %d busy %.3fs, want ~0", c, loads[c])
		}
	}
	if err := rt.UnblockCores(m.CoresOfNode(0)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1)
	if st := rt.Stats(); st.Suspended != 0 {
		t.Errorf("after unblock suspended = %d, want 0", st.Suspended)
	}
	loads = o.CoreLoads()
	for c := 0; c < 8; c++ {
		if loads[c] < 0.3 {
			t.Errorf("unblocked core %d busy %.3fs, want ~0.5", c, loads[c])
		}
	}
}

func TestBlockCoresRequiresBindCore(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindNode})
	if err := rt.BlockCores([]machine.CoreID{0}); err == nil {
		t.Error("expected error for BlockCores without BindCore")
	}
	if err := rt.UnblockCores([]machine.CoreID{0}); err == nil {
		t.Error("expected error for UnblockCores without BindCore")
	}
}

func TestSetNodeThreads(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindNode})
	var feed func()
	feed = func() {
		task := rt.NewTask("t", 0.01, 0, nil)
		task.OnComplete = feed
		rt.Submit(task)
	}
	for i := 0; i < 64; i++ {
		feed()
	}
	// 4 threads on node 0, 2 on node 1, none elsewhere.
	if err := rt.SetNodeThreads([]int{4, 2, 0, 0}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1)
	st := rt.Stats()
	if st.Suspended != 32-6 {
		t.Errorf("suspended = %d, want 26", st.Suspended)
	}
	// Throughput ~6 cores * 10 GFLOPS.
	if math.Abs(st.GFlopDone-60) > 3 {
		t.Errorf("GFlopDone = %.2f, want ~60", st.GFlopDone)
	}
	// Node loads: node 0 ~4 cores busy, node 1 ~2, nodes 2-3 idle.
	loads := o.CoreLoads()
	nodeBusy := make([]float64, 4)
	for c, l := range loads {
		nodeBusy[m.NodeOfCore(machine.CoreID(c))] += l
	}
	if nodeBusy[0] < 3.5 || nodeBusy[1] < 1.5 || nodeBusy[2] > 0.1 || nodeBusy[3] > 0.1 {
		t.Errorf("node busy = %v, want ~[4 2 0 0]", nodeBusy)
	}
}

func TestSetNodeThreadsErrors(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	unbound := New(o, Config{Name: "u", BindMode: BindNone})
	if err := unbound.SetNodeThreads([]int{1, 1, 1, 1}); err == nil {
		t.Error("expected error for unbound workers")
	}
	bound := New(o, Config{Name: "b", BindMode: BindNode})
	if err := bound.SetNodeThreads([]int{1, 1}); err == nil {
		t.Error("expected error for wrong count length")
	}
}

func TestNUMAAwareLocality(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore, Scheduler: NUMAAware})
	blocks := make([]*DataBlock, 4)
	for n := range blocks {
		blocks[n] = &DataBlock{Name: "blk", Node: machine.NodeID(n), SizeGB: 1}
	}
	var tasks []*Task
	for i := 0; i < 128; i++ {
		task := rt.NewTask("t", 0.05, 0.5, blocks[i%4])
		tasks = append(tasks, task)
		rt.Submit(task)
	}
	eng.RunUntil(5)
	local, total := 0, 0
	for i, task := range tasks {
		core, ok := task.ExecutedOn()
		if !ok {
			t.Fatalf("task %d not executed", i)
		}
		total++
		if m.NodeOfCore(core) == blocks[i%4].Node {
			local++
		}
	}
	if frac := float64(local) / float64(total); frac < 0.9 {
		t.Errorf("NUMA-aware locality = %.2f, want >= 0.9", frac)
	}
}

func TestSchedulerKinds(t *testing.T) {
	m := machine.PaperModel()
	for _, kind := range []SchedulerKind{FIFO, WorkStealing, NUMAAware} {
		eng, o := newSim(m)
		rt := New(o, Config{Name: "app", BindMode: BindCore, Scheduler: kind})
		done := 0
		for i := 0; i < 100; i++ {
			task := rt.NewTask("t", 0.01, 0.5, nil)
			task.OnComplete = func() { done++ }
			rt.Submit(task)
		}
		eng.RunUntil(2)
		if done != 100 {
			t.Errorf("%v: done = %d, want 100", kind, done)
		}
	}
	if FIFO.String() != "fifo" || WorkStealing.String() != "work-stealing" || NUMAAware.String() != "numa-aware" {
		t.Error("scheduler names wrong")
	}
}

func TestWorkStealingChains(t *testing.T) {
	// Chains of dependent tasks: completions push successors onto the
	// finishing worker's deque; everything must still finish.
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore, Scheduler: WorkStealing})
	done := 0
	for c := 0; c < 16; c++ {
		var prev *Task
		for i := 0; i < 10; i++ {
			task := rt.NewTask("t", 0.01, 0, nil)
			task.OnComplete = func() { done++ }
			if prev != nil {
				task.DependsOn(prev)
			}
			rt.Submit(task)
			prev = task
		}
	}
	eng.RunUntil(2)
	if done != 160 {
		t.Errorf("done = %d, want 160", done)
	}
}

func TestPanics(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "app"})
	rt2 := New(o, Config{Name: "other"})

	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	task := rt.NewTask("t", 0.01, 0, nil)
	rt.Submit(task)
	expectPanic("double submit", func() { rt.Submit(task) })
	expectPanic("foreign submit", func() { rt2.Submit(rt.NewTask("x", 1, 0, nil)) })
	expectPanic("negative gflop", func() { rt.NewTask("x", -1, 0, nil) })
	expectPanic("deps after submit", func() { task.DependsOn(rt.NewTask("y", 1, 0, nil)) })
	expectPanic("nil dep", func() { rt.NewTask("z", 1, 0, nil).DependsOn(nil) })
	expectPanic("too many core-bound workers", func() {
		New(o, Config{Name: "big", BindMode: BindCore, Workers: 999})
	})
}

func TestStatesAndStrings(t *testing.T) {
	if TaskCreated.String() != "created" || TaskWaiting.String() != "waiting" ||
		TaskReady.String() != "ready" || TaskRunning.String() != "running" || TaskDone.String() != "done" {
		t.Error("task state names wrong")
	}
	if TaskState(9).String() == "" {
		t.Error("unknown state should render")
	}
	if BindNone.String() != "unbound" || BindNode.String() != "node-bound" || BindCore.String() != "core-bound" {
		t.Error("bind mode names wrong")
	}
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "acc"})
	if rt.Name() != "acc" || rt.Process() == nil || rt.OS() != o {
		t.Error("accessors wrong")
	}
}

func TestOnAllDoneImmediateWhenDrained(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "app"})
	fired := false
	rt.OnAllDone(func() { fired = true })
	if !fired {
		t.Error("OnAllDone on drained runtime should fire immediately")
	}
}

func TestMemoryBoundTasksShareBandwidth(t *testing.T) {
	// 8 concurrent memory-bound tasks on node 0 (AI=0.5, demand 20 GB/s
	// each) share 32 GB/s -> 2 GFLOPS per core; 8 tasks of 0.2 GFlop
	// each take ~0.1 s.
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore, Workers: 8})
	blk := &DataBlock{Name: "d", Node: 0}
	var finished des.Time
	for i := 0; i < 8; i++ {
		rt.Submit(rt.NewTask("t", 0.2, 0.5, blk))
	}
	rt.OnAllDone(func() { finished = eng.Now() })
	eng.RunUntil(1)
	if finished < 0.09 || finished > 0.12 {
		t.Errorf("finished at %v, want ~0.1 s", finished)
	}
}

// Property: random DAGs complete fully and never violate dependency
// order.
func TestRandomDAGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine.PaperModel()
		eng, o := newSim(m)
		kind := SchedulerKind(rng.Intn(3))
		rt := New(o, Config{Name: "app", BindMode: BindCore, Scheduler: kind})

		n := 5 + rng.Intn(40)
		tasks := make([]*Task, n)
		doneOrder := make([]int, 0, n)
		for i := 0; i < n; i++ {
			i := i
			tasks[i] = rt.NewTask("t", 0.001+rng.Float64()*0.02, rng.Float64()*2, nil)
			tasks[i].OnComplete = func() { doneOrder = append(doneOrder, i) }
			// Depend on up to 3 earlier tasks (indices < i keep it acyclic).
			for d := 0; d < rng.Intn(4) && i > 0; d++ {
				tasks[i].DependsOn(tasks[rng.Intn(i)])
			}
		}
		for _, task := range tasks {
			rt.Submit(task)
		}
		eng.RunUntil(30)
		if len(doneOrder) != n {
			return false
		}
		pos := make([]int, n)
		for p, id := range doneOrder {
			pos[id] = p
		}
		// Recheck order against recorded successor edges.
		for i, task := range tasks {
			for _, s := range task.succs {
				si := -1
				for j, other := range tasks {
					if other == s {
						si = j
						break
					}
				}
				if si >= 0 && pos[i] > pos[si] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		m := machine.PaperModel()
		eng, o := newSim(m)
		rt := New(o, Config{Name: "app", BindMode: BindNode, Scheduler: WorkStealing})
		var feed func()
		count := 0
		feed = func() {
			if count >= 500 {
				return
			}
			count++
			task := rt.NewTask("t", 0.005, 1, nil)
			task.OnComplete = feed
			rt.Submit(task)
		}
		for i := 0; i < 40; i++ {
			feed()
		}
		rt.SetNodeThreads([]int{4, 4, 2, 2})
		eng.RunUntil(1)
		st := rt.Stats()
		return st.TasksExecuted, st.GFlopDone
	}
	t1, g1 := run()
	t2, g2 := run()
	if t1 != t2 || g1 != g2 {
		t.Errorf("non-deterministic: (%d,%g) vs (%d,%g)", t1, g1, t2, g2)
	}
}
