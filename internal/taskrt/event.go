package taskrt

// Event is an OCR-style synchronization object: a once-satisfiable
// dependency source. Tasks registered on the event stay blocked until
// Satisfy is called, which releases them like a completed dependency.
// Events let application code express control dependencies (phase
// gates, external signals) without a carrier task.
type Event struct {
	rt        *Runtime
	satisfied bool
	waiters   []*Task
	callbacks []func()
}

// OnSatisfy registers fn to run when the event fires; if the event is
// already satisfied, fn runs immediately.
func (e *Event) OnSatisfy(fn func()) {
	if fn == nil {
		panic("taskrt: nil OnSatisfy callback")
	}
	if e.satisfied {
		fn()
		return
	}
	e.callbacks = append(e.callbacks, fn)
}

// NewEvent creates an unsatisfied event.
func (rt *Runtime) NewEvent() *Event {
	return &Event{rt: rt}
}

// Satisfied reports whether the event fired.
func (e *Event) Satisfied() bool { return e.satisfied }

// Satisfy fires the event, releasing every waiting task whose other
// dependencies are already met. Satisfying twice panics, matching the
// OCR once-only event semantics.
func (e *Event) Satisfy() {
	if e.satisfied {
		panic("taskrt: event satisfied twice")
	}
	e.satisfied = true
	waiters := e.waiters
	e.waiters = nil
	for _, t := range waiters {
		t.remaining--
		if t.remaining == 0 && t.submitted {
			e.rt.makeReady(t, nil)
		}
	}
	callbacks := e.callbacks
	e.callbacks = nil
	for _, fn := range callbacks {
		fn()
	}
}

// DependsOnEvents registers the task to wait for events (in addition to
// any task dependencies). Satisfied events are skipped. It panics if
// the task was already submitted or an event belongs to another
// runtime.
func (t *Task) DependsOnEvents(events ...*Event) *Task {
	if t.submitted {
		panic("taskrt: DependsOnEvents after Submit")
	}
	for _, e := range events {
		if e == nil {
			panic("taskrt: nil event")
		}
		if e.rt != t.rt {
			panic("taskrt: event belongs to a different runtime")
		}
		if e.satisfied {
			continue
		}
		e.waiters = append(e.waiters, t)
		t.remaining++
	}
	return t
}

// LatchEvent is an OCR-style latch: it fires once its counter reaches
// zero. Up increments the counter, Down decrements it; the latch
// releases its waiters when a Down brings the counter to zero.
type LatchEvent struct {
	event *Event
	count int
	fired bool
}

// NewLatch creates a latch with the given initial count (must be > 0).
func (rt *Runtime) NewLatch(count int) *LatchEvent {
	if count <= 0 {
		panic("taskrt: latch count must be positive")
	}
	return &LatchEvent{event: rt.NewEvent(), count: count}
}

// Event returns the underlying event for DependsOnEvents.
func (l *LatchEvent) Event() *Event { return l.event }

// Up increments the latch counter; panics after the latch fired.
func (l *LatchEvent) Up() {
	if l.fired {
		panic("taskrt: latch Up after firing")
	}
	l.count++
}

// Down decrements the counter, firing the latch at zero.
func (l *LatchEvent) Down() {
	if l.fired {
		panic("taskrt: latch Down after firing")
	}
	l.count--
	if l.count == 0 {
		l.fired = true
		l.event.Satisfy()
	}
	if l.count < 0 {
		panic("taskrt: latch count went negative")
	}
}
