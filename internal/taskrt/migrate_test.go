package taskrt

import (
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
)

// TestMigrateBlockDurationScalesWithSize: the copy is bandwidth-bound,
// so 4x the volume should take roughly 4x the simulated time.
func TestMigrateBlockDurationScalesWithSize(t *testing.T) {
	elapsed := func(sizeGB float64) des.Time {
		m := machine.PaperModel()
		eng, o := newSim(m)
		rt := New(o, Config{Name: "app", BindMode: BindCore, Scheduler: NUMAAware})
		blk := &DataBlock{Name: "grid", Node: 0, SizeGB: sizeGB}
		var doneAt des.Time
		if _, err := rt.MigrateBlock(blk, 1, func() { doneAt = eng.Now() }); err != nil {
			t.Fatalf("MigrateBlock(%g GB): %v", sizeGB, err)
		}
		eng.RunUntil(600)
		if doneAt == 0 {
			t.Fatalf("%g GB migration did not complete", sizeGB)
		}
		return doneAt
	}
	small, big := elapsed(1), elapsed(4)
	if big <= small {
		t.Errorf("4 GB migration (%v) not slower than 1 GB (%v)", big, small)
	}
	if ratio := float64(big) / float64(small); ratio < 2 || ratio > 8 {
		t.Errorf("duration ratio %.2f for 4x volume; want roughly 4", ratio)
	}
}

func TestMigrateBlockNegativeDestination(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore, Scheduler: NUMAAware})
	if _, err := rt.MigrateBlock(&DataBlock{Name: "b", Node: 0, SizeGB: 1}, -1, nil); err == nil {
		t.Error("negative destination: want error")
	}
}

// TestMigrateBlockRetargetsSubsequentTasks: tasks submitted after the
// flip are homed on the block's new node by the NUMA-aware scheduler.
func TestMigrateBlockRetargetsSubsequentTasks(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "app", BindMode: BindCore, Scheduler: NUMAAware, NoRemoteSteal: true})
	blk := &DataBlock{Name: "grid", Node: 0, SizeGB: 1}

	var after *Task
	_, err := rt.MigrateBlock(blk, 3, func() {
		after = rt.NewTask("reader", 0.001, 1, blk)
		rt.Submit(after)
	})
	if err != nil {
		t.Fatalf("MigrateBlock: %v", err)
	}
	eng.RunUntil(60)
	if after == nil || after.State() != TaskDone {
		t.Fatal("post-migration reader did not run")
	}
	core, ok := after.ExecutedOn()
	if !ok {
		t.Fatal("reader has no execution record")
	}
	if node := m.NodeOfCore(core); node != 3 {
		t.Errorf("reader ran on node %d, want 3 (the block's new home)", node)
	}
}
