package ctrlplane_test

// Chaos suite: a real coopd-shaped daemon (ctrlplane.Server behind
// net/http on a TCP port, registry journaled to a state dir) is stormed
// with injected faults, killed mid-workload, and restarted on the same
// address with the same state dir. The paper's Table I result — the
// uneven (1,1,1,5)-style optimum at ~254 GFLOPS beating the even split
// (140) and node-per-app (128) — must survive the whole ordeal, client
// generations must never regress, and while the daemon is down clients
// must keep serving a cached or locally solved allocation instead of
// erroring. Run via `make chaos` (or the normal test suite; schedules
// are short).

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/ctrlplane/persist"
	"repro/internal/faultinject"
	"repro/internal/machine"
)

// chaosDaemon is a restartable control-plane daemon on a fixed address.
type chaosDaemon struct {
	t     *testing.T
	addr  string
	dir   string
	clock *faultinject.SkewedClock
	ttl   time.Duration

	store *persist.Store
	srv   *ctrlplane.Server
	hs    *http.Server
}

// startChaosDaemon boots (or reboots) the daemon. addr "" picks an
// ephemeral port; pass the previous addr to restart in place.
func startChaosDaemon(t *testing.T, dir, addr string, clock *faultinject.SkewedClock, ttl time.Duration) *chaosDaemon {
	t.Helper()
	store, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("opening state dir: %v", err)
	}
	srv, err := ctrlplane.NewServer(ctrlplane.ServerConfig{
		Machine:    machine.PaperModel(),
		DefaultTTL: ttl,
		Clock:      clock.Now,
		Store:      store,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt > 50 {
			t.Fatalf("listening on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond) // the dying daemon's port lingers briefly
	}
	d := &chaosDaemon{
		t: t, addr: ln.Addr().String(), dir: dir, clock: clock, ttl: ttl,
		store: store, srv: srv,
		hs: &http.Server{Handler: srv.Handler()},
	}
	go d.hs.Serve(ln)
	srv.Start()
	t.Cleanup(d.kill)
	return d
}

// kill simulates a daemon crash: connections are severed and the state
// dir is abandoned WITHOUT a clean store close, so recovery runs off
// the fsynced journal alone.
func (d *chaosDaemon) kill() {
	if d.hs == nil {
		return
	}
	d.hs.Close()
	d.srv.Close()
	d.hs = nil
}

// url is the daemon's base URL (stable across restarts).
func (d *chaosDaemon) url() string { return "http://" + d.addr }

// tableIRequests is the paper's Table I demand mix.
func tableIRequests() []ctrlplane.RegisterRequest {
	return []ctrlplane.RegisterRequest{
		{Name: "mem-a", AI: 0.5},
		{Name: "mem-b", AI: 0.5},
		{Name: "mem-c", AI: 0.5},
		{Name: "comp", AI: 10},
	}
}

// assertTableIRanking checks the reproduced Table I numbers: optimal
// ~254 GFLOPS > even 140 > node-per-app 128.
func assertTableIRanking(t *testing.T, resp *ctrlplane.AllocationsResponse, label string) {
	t.Helper()
	if len(resp.Apps) != 4 {
		t.Fatalf("%s: %d apps in allocation, want 4", label, len(resp.Apps))
	}
	if resp.TotalGFLOPS < 250 || resp.TotalGFLOPS > 260 {
		t.Errorf("%s: total = %g GFLOPS, want ~254", label, resp.TotalGFLOPS)
	}
	ref := resp.Reference
	if ref == nil {
		t.Fatalf("%s: no reference baselines", label)
	}
	if ref.EvenGFLOPS < 135 || ref.EvenGFLOPS > 145 {
		t.Errorf("%s: even = %g GFLOPS, want ~140", label, ref.EvenGFLOPS)
	}
	if ref.NodePerAppGFLOPS < 123 || ref.NodePerAppGFLOPS > 133 {
		t.Errorf("%s: node-per-app = %g GFLOPS, want ~128", label, ref.NodePerAppGFLOPS)
	}
	if !(resp.TotalGFLOPS > ref.EvenGFLOPS && ref.EvenGFLOPS > ref.NodePerAppGFLOPS) {
		t.Errorf("%s: ranking broken: %g / %g / %g", label, resp.TotalGFLOPS, ref.EvenGFLOPS, ref.NodePerAppGFLOPS)
	}
}

// faultyResilient builds a Resilient client whose transport injects a
// seeded fault storm on idempotent paths (register is spared — a blind
// retry there would duplicate the app and change the demand mix).
func faultyResilient(t *testing.T, baseURL string, seed int64) (*client.Resilient, *faultinject.Injector) {
	t.Helper()
	inj := faultinject.NewInjector(faultinject.Seeded(seed, faultinject.Mix{
		Drop:       0.05,
		Latency:    0.20,
		Truncate:   0.05,
		Err5xx:     0.10,
		MaxLatency: 5 * time.Millisecond,
	}))
	c := client.New(baseURL, client.Config{
		HTTPClient: &http.Client{Transport: &faultinject.Transport{
			Inj:    inj,
			Filter: func(r *http.Request) bool { return r.URL.Path != "/v1/register" },
		}},
		MaxAttempts:    6,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	})
	r, err := client.NewResilient(c, client.ResilientConfig{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, inj
}

// TestChaosKillRestartRecovery is the acceptance scenario: register the
// Table I mix under an injected fault storm, kill the daemon
// mid-workload, verify clients degrade to cached/local allocations,
// restart on the same state dir and address, and verify the registry,
// generations, and the 254/140/128 ranking all survive.
func TestChaosKillRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := faultinject.NewSkewedClock(nil)
	d := startChaosDaemon(t, dir, "", clock, 30*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Phase 1: the workload, under faults.
	reqs := tableIRequests()
	apps := make([]*client.Resilient, len(reqs))
	ids := make([]string, len(reqs))
	var inj *faultinject.Injector
	for i, req := range reqs {
		apps[i], inj = faultyResilient(t, d.url(), int64(1000+i))
		resp, err := apps[i].Register(ctx, req)
		if err != nil {
			t.Fatalf("register %s: %v", req.Name, err)
		}
		ids[i] = resp.ID
	}
	for round := 0; round < 3; round++ {
		for i := range apps {
			if _, err := apps[i].Heartbeat(ctx, ctrlplane.HeartbeatRequest{Workers: 4}); err != nil {
				t.Fatalf("heartbeat %s round %d: %v", ids[i], round, err)
			}
		}
	}
	live, src, err := apps[0].Allocations(ctx)
	if err != nil || src != client.SourceLive {
		t.Fatalf("live allocations: src %v, err %v", src, err)
	}
	assertTableIRanking(t, live, "live before crash")
	genBeforeCrash := live.Generation

	// Phase 2: crash. Clients degrade instead of erroring.
	d.kill()
	cached, src, err := apps[0].Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations during outage: %v", err)
	}
	if src != client.SourceCached {
		t.Fatalf("outage source = %v, want cached", src)
	}
	assertTableIRanking(t, cached, "cached during outage")
	if cached.Generation != genBeforeCrash {
		t.Errorf("cached generation = %d, want last-known %d", cached.Generation, genBeforeCrash)
	}

	// A client with no cache degrades to a local solve over the known
	// demand and still reproduces the ranking. (Clean transport: the
	// daemon is already dead, and an injector-synthesized 5xx would
	// correctly read as "server alive" and suppress degradation.)
	fresh, err := client.NewResilient(
		client.New(d.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond}),
		client.ResilientConfig{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	fresh.SetMachine(machine.PaperModel())
	fresh.SetLocalDemand(reqs)
	local, src, err := fresh.Allocations(ctx)
	if err != nil {
		t.Fatalf("local fallback during outage: %v", err)
	}
	if src != client.SourceLocal {
		t.Fatalf("fresh-client outage source = %v, want local", src)
	}
	assertTableIRanking(t, local, "local solve during outage")

	// Phase 3: restart with the same state dir on the same address.
	d2 := startChaosDaemon(t, dir, d.addr, clock, 30*time.Second)
	if d2.srv.RestoredApps() != 4 {
		t.Fatalf("restored %d apps, want 4", d2.srv.RestoredApps())
	}
	// Old IDs keep working: heartbeats land without re-registration.
	for i := range apps {
		if _, err := apps[i].Heartbeat(ctx, ctrlplane.HeartbeatRequest{Workers: 4}); err != nil {
			t.Fatalf("heartbeat %s after restart: %v", ids[i], err)
		}
		if apps[i].ReRegisters() != 0 {
			t.Errorf("app %s re-registered after restart; recovery should have kept its state", ids[i])
		}
	}
	recovered, src, err := apps[0].Allocations(ctx)
	if err != nil || src != client.SourceLive {
		t.Fatalf("allocations after restart: src %v, err %v", src, err)
	}
	assertTableIRanking(t, recovered, "live after restart")
	if recovered.Generation < genBeforeCrash {
		t.Errorf("generation regressed across restart: %d -> %d", genBeforeCrash, recovered.Generation)
	}
	lastGen := recovered.Generation

	// Phase 4: churn after recovery stays monotonic and reallocates.
	if err := apps[3].Deregister(ctx); err != nil {
		t.Fatalf("deregister comp: %v", err)
	}
	after, err := apps[0].Client().WaitForReallocation(ctx, lastGen, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for reallocation: %v", err)
	}
	if after.Generation <= lastGen {
		t.Errorf("generation after deregister = %d, want > %d", after.Generation, lastGen)
	}
	if len(after.Apps) != 3 {
		t.Errorf("%d apps after deregister, want 3", len(after.Apps))
	}

	// The storm must actually have stormed.
	counts := inj.Counts()
	injected := counts[faultinject.KindDrop] + counts[faultinject.KindLatency] +
		counts[faultinject.KindTruncate] + counts[faultinject.Kind5xx]
	if injected == 0 {
		t.Error("fault injector never fired; the chaos test ran without chaos")
	}
}

// TestChaosClockSkewEviction: a clock-skewed TTL expiry evicts a silent
// app; its next heartbeat gets the typed unknown_app error and the
// resilient client transparently re-registers. Generations never
// regress through eviction + re-registration.
func TestChaosClockSkewEviction(t *testing.T) {
	dir := t.TempDir()
	clock := faultinject.NewSkewedClock(nil)
	d := startChaosDaemon(t, dir, "", clock, 500*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	c := client.New(d.url(), client.Config{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	r, err := client.NewResilient(c, client.ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.Register(ctx, ctrlplane.RegisterRequest{Name: "skewed", AI: 1})
	if err != nil {
		t.Fatal(err)
	}
	firstID := reg.ID
	genSeen := reg.Generation

	// Jump the daemon's clock far past the TTL: the app has "missed"
	// its deadline without any real time passing.
	clock.Skew(time.Hour)
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatalf("health during skew: %v", err)
		}
		if h.Apps == 0 {
			if h.Generation < genSeen {
				t.Errorf("generation regressed during eviction: %d -> %d", genSeen, h.Generation)
			}
			genSeen = h.Generation
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the skewed app")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The heartbeat hits unknown_app and auto re-registers.
	if _, err := r.Heartbeat(ctx, ctrlplane.HeartbeatRequest{}); err != nil {
		t.Fatalf("heartbeat across eviction: %v", err)
	}
	if r.ReRegisters() != 1 {
		t.Errorf("re-registers = %d, want 1", r.ReRegisters())
	}
	if r.ID() == firstID || r.ID() == "" {
		t.Errorf("id after eviction = %q, want a fresh one (was %q)", r.ID(), firstID)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Apps != 1 {
		t.Errorf("apps after re-register = %d, want 1", h.Apps)
	}
	if h.Generation < genSeen {
		t.Errorf("generation regressed after re-register: %d -> %d", genSeen, h.Generation)
	}

	// And the re-registered app survives a daemon restart.
	d.kill()
	d2 := startChaosDaemon(t, dir, d.addr, clock, 500*time.Millisecond)
	if d2.srv.RestoredApps() != 1 {
		t.Errorf("restored %d apps, want the re-registered one", d2.srv.RestoredApps())
	}
	h2, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health after restart: %v", err)
	}
	if h2.Generation < h.Generation {
		t.Errorf("generation regressed across restart: %d -> %d", h.Generation, h2.Generation)
	}
}

// TestChaosServerSideFaultStorm: the daemon itself misbehaves (injected
// server-side 5xx bursts, latency, truncation) and the plain client's
// retry + jittered backoff still lands every exchange.
func TestChaosServerSideFaultStorm(t *testing.T) {
	store, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := ctrlplane.NewServer(ctrlplane.ServerConfig{
		Machine: machine.PaperModel(),
		Store:   store,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.NewInjector(faultinject.Seeded(7, faultinject.Mix{
		Drop:       0.08,
		Latency:    0.20,
		Truncate:   0.08,
		Err5xx:     0.14,
		MaxLatency: 5 * time.Millisecond,
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Register is spared, same as on the client side: a server-side drop
	// or truncation after the registry committed would make the client's
	// retry duplicate the app and change the demand mix.
	base := srv.Handler()
	stormy := faultinject.Middleware(inj, base)
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/register" {
			base.ServeHTTP(w, r)
			return
		}
		stormy.ServeHTTP(w, r)
	})}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close(); srv.Close() })

	c := client.New("http://"+ln.Addr().String(), client.Config{
		MaxAttempts: 8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var ids []string
	for _, req := range tableIRequests() {
		resp, err := c.Register(ctx, req)
		if err != nil {
			t.Fatalf("register %s through the storm: %v", req.Name, err)
		}
		ids = append(ids, resp.ID)
	}
	for round := 0; round < 5; round++ {
		for _, id := range ids {
			if _, err := c.Heartbeat(ctx, ctrlplane.HeartbeatRequest{ID: id}); err != nil {
				t.Fatalf("heartbeat %s through the storm: %v", id, err)
			}
		}
	}
	alloc, err := c.Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations through the storm: %v", err)
	}
	assertTableIRanking(t, alloc, "through server-side storm")
	if counts := inj.Counts(); counts[faultinject.Kind5xx] == 0 && counts[faultinject.KindDrop] == 0 {
		t.Errorf("storm too gentle to mean anything: %v", counts)
	}
}
