package ctrlplane

import (
	"net/http"
	"sync/atomic"
)

// Shedder bounds the number of in-flight requests through one handler.
// When the bound is full, excess requests are refused immediately with
// 503 + Retry-After instead of queueing — under overload (e.g. a fleet
// re-registering after a failover) the daemon keeps serving the
// requests it admitted at normal latency and tells the rest when to
// come back, rather than timing out everything equally.
//
// The zero-size Shedder (max <= 0) admits everything.
type Shedder struct {
	sem  chan struct{}
	shed atomic.Uint64
}

// NewShedder builds a shedder admitting at most maxInFlight concurrent
// requests (0 or negative: unbounded).
func NewShedder(maxInFlight int) *Shedder {
	s := &Shedder{}
	if maxInFlight > 0 {
		s.sem = make(chan struct{}, maxInFlight)
	}
	return s
}

// Acquire tries to admit a request; the caller must Release iff it
// returns true. Non-blocking: a full bound refuses, never queues.
func (s *Shedder) Acquire() bool {
	if s.sem == nil {
		return true
	}
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		s.shed.Add(1)
		return false
	}
}

// Release returns an admitted request's slot.
func (s *Shedder) Release() {
	if s.sem != nil {
		<-s.sem
	}
}

// Shed counts refused requests.
func (s *Shedder) Shed() uint64 { return s.shed.Load() }

// shedRetryAfter is the Retry-After hint on refusals. Admitted requests
// complete in well under a second, so "1" is an honest bound; jittered
// client backoff spreads the retries inside it.
const shedRetryAfter = "1"

// refuse writes the 503 + Retry-After refusal body.
func (s *Shedder) refuse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", shedRetryAfter)
	writeErrorCode(w, http.StatusServiceUnavailable, ErrCodeOverloaded,
		"overloaded: in-flight request bound reached, retry after %ss", shedRetryAfter)
}

// Wrap is the standalone middleware form, for embedders composing their
// own handler chains.
func (s *Shedder) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.Acquire() {
			s.refuse(w)
			return
		}
		defer s.Release()
		next.ServeHTTP(w, r)
	})
}
