package ctrlplane_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/adapt"
	"repro/internal/ctrlplane"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// TestReportEndpointGating: without -recalibrate the telemetry
// endpoints answer deliberately (404 with a hint, a disabled drift
// view) rather than pretending to track; with it, reports for unknown
// apps are rejected.
func TestReportEndpointGating(t *testing.T) {
	ctx := context.Background()

	_, off := startServer(t, ctrlplane.ServerConfig{})
	if _, err := off.Report(ctx, ctrlplane.ReportRequest{
		ID: "x", Samples: []ctrlplane.ReportSample{{GFLOPS: 1, GBps: 1}},
	}); err == nil {
		t.Error("report with recalibration off: want an error, got none")
	}
	drift, err := off.Drift(ctx)
	if err != nil {
		t.Fatalf("drift with recalibration off: %v", err)
	}
	if drift.Enabled {
		t.Error("drift view claims the adaptive loop is enabled on a plain server")
	}

	_, on := startServer(t, ctrlplane.ServerConfig{Recalibrate: true})
	if _, err := on.Report(ctx, ctrlplane.ReportRequest{
		ID: "no-such-app", Samples: []ctrlplane.ReportSample{{GFLOPS: 1, GBps: 1}},
	}); err == nil {
		t.Error("report for an unregistered app: want an error, got none")
	}
	reg, err := on.Register(ctx, ctrlplane.RegisterRequest{Name: "a", AI: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := on.Report(ctx, ctrlplane.ReportRequest{ID: reg.ID}); err == nil {
		t.Error("report with no samples: want an error, got none")
	}
}

// TestEndToEndDriftConvergence closes the model<->measurement loop over
// the wire: the Table I mix runs with one app ("mis") declaring the
// memory-bound profile (AI 0.5) while actually behaving compute-bound
// (AI 10). Each reporting round evaluates the paper model under the
// *served* allocation with the apps' true intensities and feeds the
// observed rates back through POST /v1/report. The daemon must detect
// the drift, fit AI 10 online, substitute it into the solver, and
// converge to the Table I 254-GFLOPS optimum — while the three
// truthfully-declared apps never trigger a re-solve.
func TestEndToEndDriftConvergence(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{
		Recalibrate: true,
		// Two-sample windows, two windows to confirm: drift is actionable
		// after two reporting rounds, keeping the test fast while still
		// exercising the hysteresis path.
		Adapt: adapt.Config{Window: 2, ConfirmWindows: 2, Alpha: 0.5},
	})
	ctx := context.Background()

	trueAI := map[string]float64{"mem-a": 0.5, "mem-b": 0.5, "mem-c": 0.5, "mis": 10}
	for _, name := range []string{"mem-a", "mem-b", "mem-c", "mis"} {
		if _, err := c.Register(ctx, ctrlplane.RegisterRequest{Name: name, AI: 0.5}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}

	m := machine.PaperModel()
	const maxRounds = 6
	applied := false
	rounds := 0
	for round := 1; round <= maxRounds && !applied; round++ {
		rounds = round
		alloc, err := c.Allocations(ctx)
		if err != nil {
			t.Fatalf("allocations: %v", err)
		}
		// What the machine actually does this round: the model evaluated
		// with the apps' true intensities under the served thread layout.
		apps := make([]roofline.App, len(alloc.Apps))
		al := roofline.NewAllocation(len(alloc.Apps), len(m.Nodes))
		for i, aa := range alloc.Apps {
			apps[i] = roofline.App{Name: aa.Name, AI: trueAI[aa.Name], Placement: roofline.NUMAPerfect}
			copy(al.Threads[i], aa.PerNode)
		}
		res, err := roofline.Evaluate(m, apps, al)
		if err != nil {
			t.Fatalf("round %d evaluate: %v", round, err)
		}
		for i, aa := range alloc.Apps {
			g := res.AppGFLOPS[i]
			s := ctrlplane.ReportSample{GFLOPS: g, GBps: g / trueAI[aa.Name], Threads: aa.Threads}
			resp, err := c.Report(ctx, ctrlplane.ReportRequest{
				ID:      aa.ID,
				Samples: []ctrlplane.ReportSample{s, s},
			})
			if err != nil {
				t.Fatalf("round %d report %s: %v", round, aa.Name, err)
			}
			if aa.Name == "mis" && resp.Drifted {
				applied = true
			}
		}
	}
	if !applied {
		t.Fatalf("fitted model not applied within %d reporting rounds", maxRounds)
	}
	t.Logf("drift detected, fitted, and applied after %d reporting rounds", rounds)

	// The re-solve with the fitted demand lands on the Table I optimum.
	alloc, err := c.Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations after refit: %v", err)
	}
	if alloc.TotalGFLOPS < 253 || alloc.TotalGFLOPS > 255 {
		t.Errorf("converged to %.1f GFLOPS, want the Table I ~254 optimum", alloc.TotalGFLOPS)
	}

	drift, err := c.Drift(ctx)
	if err != nil {
		t.Fatalf("drift: %v", err)
	}
	if !drift.Enabled {
		t.Fatal("drift view reports the adaptive loop disabled")
	}
	if drift.Cleared != 0 {
		t.Errorf("%d drift clears in a run where the drift never recovers", drift.Cleared)
	}
	for _, app := range drift.Apps {
		if app.Name == "mis" {
			if app.State != "drifted" || !app.Applied {
				t.Errorf("mis: state %s applied %v, want drifted+applied", app.State, app.Applied)
			}
			if math.Abs(app.FittedAI-10) > 0.5 {
				t.Errorf("mis: fitted AI %.2f, want ~10", app.FittedAI)
			}
			if app.Resolves == 0 {
				t.Error("mis: no re-solves recorded for the drifted app")
			}
			continue
		}
		// The acceptance bar: truthful steady apps cause ZERO re-solves.
		if app.State != "steady" || app.Resolves != 0 {
			t.Errorf("%s: state %s with %d re-solves, want steady with none", app.Name, app.State, app.Resolves)
		}
	}
	if len(drift.Apps) != 4 {
		t.Errorf("drift view tracks %d apps, want 4", len(drift.Apps))
	}
}
