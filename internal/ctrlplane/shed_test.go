package ctrlplane_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
)

// TestShedderBound: the standalone middleware admits at most
// maxInFlight concurrent requests; excess requests get an immediate
// 503 with Retry-After and are counted, never queued.
func TestShedderBound(t *testing.T) {
	const bound = 2
	sh := ctrlplane.NewShedder(bound)
	release := make(chan struct{})
	var admitted sync.WaitGroup
	admitted.Add(bound)
	slow := sh.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		admitted.Done()
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	hs := httptest.NewServer(slow)
	defer hs.Close()

	// Fill the bound with parked requests.
	var wg sync.WaitGroup
	for i := 0; i < bound; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(hs.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	admitted.Wait()

	// The next request is shed, not queued.
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	if want := ctrlplane.ErrCodeOverloaded; !strings.Contains(string(body), want) {
		t.Errorf("body %q does not carry code %q", body, want)
	}
	if sh.Shed() != 1 {
		t.Errorf("shed counter = %d, want 1", sh.Shed())
	}

	close(release) // drain the parked handlers
	wg.Wait()
}

// TestShedderUnbounded: the zero bound admits everything.
func TestShedderUnbounded(t *testing.T) {
	sh := ctrlplane.NewShedder(0)
	for i := 0; i < 100; i++ {
		if !sh.Acquire() {
			t.Fatal("unbounded shedder refused a request")
		}
	}
	if sh.Shed() != 0 {
		t.Errorf("shed = %d, want 0", sh.Shed())
	}
}

// TestServerShedsAndCounts: a server with MaxInFlight=1 sheds the
// overlapping request with a typed 503 and surfaces the count in
// /metricsz. The in-flight slot is held deterministically by parking a
// register request mid-body (the admitted handler blocks reading it),
// so the probe on the same endpoint must be shed.
func TestServerShedsAndCounts(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{MaxInFlight: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pr, pw := io.Pipe()
	slowReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL()+"/v1/register", pr)
	if err != nil {
		t.Fatal(err)
	}
	slowReq.Header.Set("Content-Type", "application/json")
	parked := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(slowReq)
		if err == nil {
			resp.Body.Close()
		}
		parked <- err
	}()
	if _, err := pw.Write([]byte(`{"name":"slow`)); err != nil {
		t.Fatal(err)
	}

	// The parked request holds the register endpoint's only slot; a
	// probe register must come back 503 + overloaded once the handler
	// has been admitted (poll for the admission race only).
	var probeErr error
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, probeErr = c.Register(ctx, ctrlplane.RegisterRequest{Name: "probe", AI: 1})
		if client.IsOverloaded(probeErr) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !client.IsOverloaded(probeErr) {
		t.Fatalf("probe register err = %v, want typed overloaded 503", probeErr)
	}

	// Unpark: the held request completes normally — admitted work is
	// served, only the excess was refused.
	if _, err := pw.Write([]byte(`","ai":0.5}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-parked; err != nil {
		t.Fatalf("parked register failed: %v", err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, ep := range m.Endpoints {
		total += ep.Shed
	}
	if total == 0 {
		t.Error("sheds happened but /metricsz shows a zero shed count")
	}
}
