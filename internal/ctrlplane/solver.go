package ctrlplane

import (
	"bytes"
	"container/list"
	"fmt"
	"math"
	"strconv"
	"sync"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// Policy names accepted by NewSolver.
const (
	PolicyRoofline  = "roofline"
	PolicyFairShare = "fairshare"
)

// AppSolution is one application's computed slice, aligned with the
// []AppState passed to Solve.
type AppSolution struct {
	ID      string
	Name    string
	PerNode []int
	GFLOPS  float64
}

// Solution is a full solve outcome. SolveInto reuses its slices, so a
// pooled Solution makes the steady-state serve path allocation-free.
type Solution struct {
	PerApp      []AppSolution
	TotalGFLOPS float64
	// EvenGFLOPS and NodePerAppGFLOPS are the paper's structured
	// baselines for the same demand mix (0 when infeasible).
	EvenGFLOPS       float64
	NodePerAppGFLOPS float64
	// FromCache reports whether the roofline solve was skipped.
	FromCache bool
}

// cachedSolution stores a solve keyed by the sorted demand multiset;
// counts and rates are per demand slot, so any permutation of
// equivalent apps maps onto it. Immutable once inserted (concurrent
// readers copy out of it without the lock).
type cachedSolution struct {
	counts [][]int
	gflops []float64
	total  float64
	even   float64
	npa    float64
}

// cacheEntry is one LRU cell: the key is kept so eviction can delete
// the map entry.
type cacheEntry struct {
	key string
	sol *cachedSolution
}

// flightCall is one in-progress solve; followers of the same key block
// on done instead of re-running the solve (singleflight).
type flightCall struct {
	done chan struct{}
	sol  *cachedSolution
	err  error
}

// solveScratch is the per-request working memory of Solve, pooled so a
// steady-state (cache-hit) solve allocates nothing: demand-key segments
// for every app, the app order, and the assembled cache key.
type solveScratch struct {
	order  []int
	offs   []int // offs[i]:offs[i+1] frames app i's segment in segBuf
	segBuf []byte
	key    []byte
}

// Solver computes per-NUMA-node allocations through the agent's
// policies and memoizes results behind an LRU cache with singleflight
// collapsing of concurrent identical solves. It is safe for concurrent
// use.
type Solver struct {
	policy string
	search *roofline.Search

	mu        sync.Mutex
	entries   map[string]*list.Element // -> *cacheEntry
	lru       *list.List               // front: most recently used
	flight    map[string]*flightCall
	hits      uint64
	misses    uint64
	coalesced uint64
	topoPtr   *machine.Machine // last hashed machine (pointer identity)
	topoHash  uint64

	scratch sync.Pool // *solveScratch

	// testSolveDelay, when set, runs between claiming a flight slot and
	// solving; tests use it to hold the leader while followers pile up.
	testSolveDelay func()
}

// maxCacheEntries bounds the memo; past it the least-recently-used
// entry is evicted, so a demand mix cycling past the bound keeps its
// working set instead of periodically losing everything to a flush.
const maxCacheEntries = 256

// NewSolver creates a solver for the named policy (PolicyRoofline or
// PolicyFairShare).
func NewSolver(policy string) (*Solver, error) {
	switch policy {
	case PolicyRoofline, PolicyFairShare:
	default:
		return nil, fmt.Errorf("ctrlplane: unknown policy %q", policy)
	}
	return &Solver{
		policy:  policy,
		search:  &roofline.Search{},
		entries: map[string]*list.Element{},
		lru:     list.New(),
		flight:  map[string]*flightCall{},
		scratch: sync.Pool{New: func() any { return &solveScratch{} }},
	}, nil
}

// Policy returns the solver's policy name.
func (s *Solver) Policy() string { return s.policy }

// Metrics returns cache hit/miss/coalesce counters and the entry count.
func (s *Solver) Metrics() SolverMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SolverMetrics{Hits: s.hits, Misses: s.misses, Coalesced: s.coalesced, Entries: len(s.entries)}
}

// TopologyHash fingerprints a machine for cache keying; two machines
// with identical topologies (name, nodes, links) share solutions. The
// hash walks the fields directly (FNV-64a) so keying allocates nothing.
func TopologyHash(m *machine.Machine) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for i := 0; i < len(m.Name); i++ {
		h ^= uint64(m.Name[i])
		h *= prime64
	}
	mix(uint64(len(m.Nodes)))
	for _, n := range m.Nodes {
		mix(uint64(n.Cores))
		mix(math.Float64bits(n.PeakGFLOPS))
		mix(math.Float64bits(n.MemBandwidth))
	}
	if m.LinkBandwidth == nil {
		mix(0)
		return h
	}
	mix(1)
	for _, row := range m.LinkBandwidth {
		for _, bw := range row {
			mix(math.Float64bits(bw))
		}
	}
	return h
}

// topologyHashCached returns TopologyHash, memoized by machine pointer:
// the server passes the same *Machine for its whole lifetime, so the
// steady state never re-hashes.
func (s *Solver) topologyHashCached(m *machine.Machine) uint64 {
	s.mu.Lock()
	if s.topoPtr == m {
		h := s.topoHash
		s.mu.Unlock()
		return h
	}
	s.mu.Unlock()
	h := TopologyHash(m)
	s.mu.Lock()
	s.topoPtr, s.topoHash = m, h
	s.mu.Unlock()
	return h
}

// Solve computes the allocation for the registered applications on the
// machine into a fresh Solution. See SolveInto for the reusing variant.
func (s *Solver) Solve(m *machine.Machine, apps []AppState) (*Solution, error) {
	sol := &Solution{}
	if err := s.SolveInto(sol, m, apps); err != nil {
		return nil, err
	}
	return sol, nil
}

// SolveInto computes the allocation for the registered applications on
// the machine, reusing sol's slices. Apps with identical demand keys
// are interchangeable, so the cache lookup sorts the demand set;
// results are mapped back to the callers' order. A cache-hit solve into
// a warm Solution performs no heap allocations.
func (s *Solver) SolveInto(sol *Solution, m *machine.Machine, apps []AppState) error {
	sol.PerApp = sol.PerApp[:0]
	sol.TotalGFLOPS, sol.EvenGFLOPS, sol.NodePerAppGFLOPS = 0, 0, 0
	sol.FromCache = false
	if len(apps) == 0 {
		return nil
	}

	sc := s.scratch.Get().(*solveScratch)
	defer s.scratch.Put(sc)

	n := len(apps)
	// Build every app's demand-key segment once into one buffer.
	sc.segBuf = sc.segBuf[:0]
	sc.offs = resizeInts(sc.offs, n+1)
	sc.offs[0] = 0
	for i := range apps {
		// Effective spec: a fitted (recalibrated) AI replaces the declared
		// one here, so a confirmed drift changes the cache key and the
		// next lookup is naturally a fresh solve.
		spec := apps[i].EffectiveSpec()
		sc.segBuf = appendDemandKey(sc.segBuf, &spec)
		sc.offs[i+1] = len(sc.segBuf)
	}
	seg := func(i int) []byte { return sc.segBuf[sc.offs[i]:sc.offs[i+1]] }

	// Sort app indices into demand-slot order (ID tie-break keeps the
	// mapping deterministic). Insertion sort: no allocation, and the
	// registry's mixes are small and mostly pre-sorted.
	sc.order = resizeInts(sc.order, n)
	for i := range sc.order {
		sc.order[i] = i
	}
	for a := 1; a < n; a++ {
		x := sc.order[a]
		b := a
		for b > 0 {
			p := sc.order[b-1]
			if c := bytes.Compare(seg(p), seg(x)); c < 0 || (c == 0 && apps[p].ID <= apps[x].ID) {
				break
			}
			sc.order[b] = p
			b--
		}
		sc.order[b] = x
	}

	sc.key = sc.key[:0]
	sc.key = append(sc.key, "topo="...)
	sc.key = strconv.AppendUint(sc.key, s.topologyHashCached(m), 16)
	sc.key = append(sc.key, "|policy="...)
	sc.key = append(sc.key, s.policy...)
	for _, idx := range sc.order {
		sc.key = append(sc.key, '|')
		sc.key = append(sc.key, seg(idx)...)
	}

	cached, fromCache, err := s.lookupOrSolve(m, apps, sc)
	if err != nil {
		return err
	}

	sol.TotalGFLOPS = cached.total
	sol.EvenGFLOPS = cached.even
	sol.NodePerAppGFLOPS = cached.npa
	sol.FromCache = fromCache
	if cap(sol.PerApp) < n {
		sol.PerApp = make([]AppSolution, n)
	} else {
		sol.PerApp = sol.PerApp[:n]
	}
	for slot, idx := range sc.order {
		pa := &sol.PerApp[idx]
		pa.ID = apps[idx].ID
		pa.Name = apps[idx].Spec.Name
		pa.PerNode = append(pa.PerNode[:0], cached.counts[slot]...)
		pa.GFLOPS = cached.gflops[slot]
	}
	return nil
}

// lookupOrSolve serves sc.key from the LRU, joins an in-flight solve
// for the same key, or becomes the leader and solves.
func (s *Solver) lookupOrSolve(m *machine.Machine, apps []AppState, sc *solveScratch) (*cachedSolution, bool, error) {
	s.mu.Lock()
	if el, ok := s.entries[string(sc.key)]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		cs := el.Value.(*cacheEntry).sol
		s.mu.Unlock()
		return cs, true, nil
	}
	if fc, ok := s.flight[string(sc.key)]; ok {
		// A solve for this exact key is running; wait for its result
		// instead of duplicating the work (heartbeat storms after a
		// restart all carry the same demand set).
		s.coalesced++
		s.mu.Unlock()
		<-fc.done
		return fc.sol, fc.err == nil, fc.err
	}
	s.misses++
	key := string(sc.key) // the one per-distinct-miss allocation
	fc := &flightCall{done: make(chan struct{})}
	s.flight[key] = fc
	delay := s.testSolveDelay
	s.mu.Unlock()

	if delay != nil {
		delay()
	}
	cs, err := s.solveSlots(m, apps, sc.order)

	s.mu.Lock()
	if err == nil {
		s.insertLocked(key, cs)
	}
	delete(s.flight, key)
	s.mu.Unlock()
	fc.sol, fc.err = cs, err
	close(fc.done)
	return cs, false, err
}

// insertLocked adds a cache entry at the LRU front, evicting from the
// back past maxCacheEntries. Caller holds s.mu.
func (s *Solver) insertLocked(key string, cs *cachedSolution) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).sol = cs
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&cacheEntry{key: key, sol: cs})
	for len(s.entries) > maxCacheEntries {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*cacheEntry).key)
	}
}

func resizeInts(v []int, n int) []int {
	if cap(v) < n {
		return make([]int, n)
	}
	return v[:n]
}

// solveSlots runs the agent policy over the demand slots (apps in
// order) and evaluates the result with the roofline model.
func (s *Solver) solveSlots(m *machine.Machine, apps []AppState, order []int) (*cachedSolution, error) {
	n := len(order)
	rapps := make([]roofline.App, n)
	aspecs := make([]agent.AppSpec, n)
	infos := make([]agent.Info, n)
	for slot, idx := range order {
		spec := apps[idx].EffectiveSpec()
		rapps[slot] = roofline.App{
			Name:      spec.Name,
			AI:        spec.AI,
			Placement: spec.Placement,
			HomeNode:  spec.HomeNode,
		}
		aspecs[slot] = agent.AppSpec{AI: spec.AI, Placement: spec.Placement, HomeNode: spec.HomeNode}
		infos[slot] = agent.Info{Name: spec.Name}
	}

	var cmds []agent.Command
	switch s.policy {
	case PolicyFairShare:
		cmds = agent.FairShare{PerNode: true}.Decide(des.Time(0), m, infos)
	default:
		// Floor 1 guarantees every cooperating app a thread on every
		// node (no starvation) and reproduces the paper's Table I
		// optimum; when the floors alone over-subscribe a node (more
		// apps than cores per node), fall back to the unfloored solve.
		cmds = (&agent.RooflineOptimal{Specs: aspecs, MinPerNode: 1, Search: s.search}).Decide(des.Time(0), m, infos)
		if len(cmds) == 0 {
			cmds = (&agent.RooflineOptimal{Specs: aspecs, Search: s.search}).Decide(des.Time(0), m, infos)
		}
	}
	if len(cmds) == 0 {
		return nil, fmt.Errorf("ctrlplane: policy %s produced no allocation for %d apps", s.policy, n)
	}
	counts := make([][]int, n)
	for _, cmd := range cmds {
		if cmd.Client < 0 || cmd.Client >= n || cmd.PerNode == nil {
			return nil, fmt.Errorf("ctrlplane: policy %s produced an invalid command", s.policy)
		}
		counts[cmd.Client] = append([]int(nil), cmd.PerNode...)
	}
	for slot := range counts {
		if counts[slot] == nil {
			counts[slot] = make([]int, m.NumNodes())
		}
		trimToCap(counts[slot], apps[order[slot]].Spec.MaxThreads)
	}

	al := roofline.Allocation{Threads: counts}
	res, err := roofline.Evaluate(m, rapps, al)
	if err != nil {
		return nil, fmt.Errorf("ctrlplane: evaluating allocation: %w", err)
	}
	cs := &cachedSolution{
		counts: counts,
		gflops: append([]float64(nil), res.AppGFLOPS...),
		total:  res.TotalGFLOPS,
	}
	// Structured baselines (best-effort: 0 when the shape is infeasible
	// for this app count / machine).
	if eal, err := roofline.Even(m, n); err == nil {
		if r, err := roofline.Evaluate(m, rapps, eal); err == nil {
			cs.even = r.TotalGFLOPS
		}
	}
	if nal, err := roofline.NodePerApp(m, n, nil); err == nil {
		if r, err := roofline.Evaluate(m, rapps, nal); err == nil {
			cs.npa = r.TotalGFLOPS
		}
	}
	return cs, nil
}

// trimToCap removes threads round-robin across nodes (from the last
// node backwards) until the total is within the app's requested cap.
// cap <= 0 means uncapped. An application demanding more threads than
// the machine has cores is thus served the solver's optimum, never
// more than exists.
func trimToCap(perNode []int, cap int) {
	if cap <= 0 {
		return
	}
	total := 0
	for _, c := range perNode {
		total += c
	}
	for j := len(perNode) - 1; total > cap; j-- {
		if j < 0 {
			j = len(perNode) - 1
		}
		if perNode[j] > 0 {
			perNode[j]--
			total--
		}
	}
}
