package ctrlplane

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// Policy names accepted by NewSolver.
const (
	PolicyRoofline  = "roofline"
	PolicyFairShare = "fairshare"
)

// AppSolution is one application's computed slice, aligned with the
// []AppState passed to Solve.
type AppSolution struct {
	ID      string
	Name    string
	PerNode []int
	GFLOPS  float64
}

// Solution is a full solve outcome.
type Solution struct {
	PerApp      []AppSolution
	TotalGFLOPS float64
	// EvenGFLOPS and NodePerAppGFLOPS are the paper's structured
	// baselines for the same demand mix (0 when infeasible).
	EvenGFLOPS       float64
	NodePerAppGFLOPS float64
	// FromCache reports whether the roofline solve was skipped.
	FromCache bool
}

// cachedSolution stores a solve keyed by the sorted demand multiset;
// counts and rates are per demand slot, so any permutation of
// equivalent apps maps onto it.
type cachedSolution struct {
	counts [][]int
	gflops []float64
	total  float64
	even   float64
	npa    float64
}

// Solver computes per-NUMA-node allocations through the agent's
// policies and memoizes results. It is safe for concurrent use.
type Solver struct {
	policy string

	mu     sync.Mutex
	cache  map[string]*cachedSolution
	hits   uint64
	misses uint64
}

// maxCacheEntries bounds the memo; past it the cache is flushed (demand
// mixes cycle, they don't grow without bound, so simple is fine).
const maxCacheEntries = 256

// NewSolver creates a solver for the named policy (PolicyRoofline or
// PolicyFairShare).
func NewSolver(policy string) (*Solver, error) {
	switch policy {
	case PolicyRoofline, PolicyFairShare:
	default:
		return nil, fmt.Errorf("ctrlplane: unknown policy %q", policy)
	}
	return &Solver{policy: policy, cache: map[string]*cachedSolution{}}, nil
}

// Policy returns the solver's policy name.
func (s *Solver) Policy() string { return s.policy }

// Metrics returns cache hit/miss counters and the entry count.
func (s *Solver) Metrics() SolverMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SolverMetrics{Hits: s.hits, Misses: s.misses, Entries: len(s.cache)}
}

// TopologyHash fingerprints a machine for cache keying; two machines
// with identical JSON encodings share solutions.
func TopologyHash(m *machine.Machine) uint64 {
	data, err := m.MarshalJSON()
	if err != nil {
		// Unreachable for a validated machine; keep the key usable.
		data = []byte(m.String())
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Solve computes the allocation for the registered applications on the
// machine. Apps with identical demand keys are interchangeable, so the
// cache lookup sorts the demand set; results are mapped back to the
// callers' order.
func (s *Solver) Solve(m *machine.Machine, apps []AppState) (*Solution, error) {
	if len(apps) == 0 {
		return &Solution{}, nil
	}

	// Sort app indices into demand-slot order (ID tie-break keeps the
	// mapping deterministic).
	order := make([]int, len(apps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := apps[order[a]].Spec.demandKey(), apps[order[b]].Spec.demandKey()
		if ka != kb {
			return ka < kb
		}
		return apps[order[a]].ID < apps[order[b]].ID
	})
	key := fmt.Sprintf("topo=%x|policy=%s", TopologyHash(m), s.policy)
	for _, idx := range order {
		key += "|" + apps[idx].Spec.demandKey()
	}

	s.mu.Lock()
	cached, ok := s.cache[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()

	fromCache := ok
	if !ok {
		var err error
		cached, err = s.solveSlots(m, apps, order)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		if len(s.cache) >= maxCacheEntries {
			s.cache = map[string]*cachedSolution{}
		}
		s.cache[key] = cached
		s.mu.Unlock()
	}

	sol := &Solution{
		PerApp:           make([]AppSolution, len(apps)),
		TotalGFLOPS:      cached.total,
		EvenGFLOPS:       cached.even,
		NodePerAppGFLOPS: cached.npa,
		FromCache:        fromCache,
	}
	for slot, idx := range order {
		sol.PerApp[idx] = AppSolution{
			ID:      apps[idx].ID,
			Name:    apps[idx].Spec.Name,
			PerNode: append([]int(nil), cached.counts[slot]...),
			GFLOPS:  cached.gflops[slot],
		}
	}
	return sol, nil
}

// solveSlots runs the agent policy over the demand slots (apps in
// order) and evaluates the result with the roofline model.
func (s *Solver) solveSlots(m *machine.Machine, apps []AppState, order []int) (*cachedSolution, error) {
	n := len(order)
	rapps := make([]roofline.App, n)
	aspecs := make([]agent.AppSpec, n)
	infos := make([]agent.Info, n)
	for slot, idx := range order {
		spec := apps[idx].Spec
		rapps[slot] = roofline.App{
			Name:      spec.Name,
			AI:        spec.AI,
			Placement: spec.Placement,
			HomeNode:  spec.HomeNode,
		}
		aspecs[slot] = agent.AppSpec{AI: spec.AI, Placement: spec.Placement, HomeNode: spec.HomeNode}
		infos[slot] = agent.Info{Name: spec.Name}
	}

	var cmds []agent.Command
	switch s.policy {
	case PolicyFairShare:
		cmds = agent.FairShare{PerNode: true}.Decide(des.Time(0), m, infos)
	default:
		// Floor 1 guarantees every cooperating app a thread on every
		// node (no starvation) and reproduces the paper's Table I
		// optimum; when the floors alone over-subscribe a node (more
		// apps than cores per node), fall back to the unfloored solve.
		cmds = (&agent.RooflineOptimal{Specs: aspecs, MinPerNode: 1}).Decide(des.Time(0), m, infos)
		if len(cmds) == 0 {
			cmds = (&agent.RooflineOptimal{Specs: aspecs}).Decide(des.Time(0), m, infos)
		}
	}
	if len(cmds) == 0 {
		return nil, fmt.Errorf("ctrlplane: policy %s produced no allocation for %d apps", s.policy, n)
	}
	counts := make([][]int, n)
	for _, cmd := range cmds {
		if cmd.Client < 0 || cmd.Client >= n || cmd.PerNode == nil {
			return nil, fmt.Errorf("ctrlplane: policy %s produced an invalid command", s.policy)
		}
		counts[cmd.Client] = append([]int(nil), cmd.PerNode...)
	}
	for slot := range counts {
		if counts[slot] == nil {
			counts[slot] = make([]int, m.NumNodes())
		}
		trimToCap(counts[slot], apps[order[slot]].Spec.MaxThreads)
	}

	al := roofline.Allocation{Threads: counts}
	res, err := roofline.Evaluate(m, rapps, al)
	if err != nil {
		return nil, fmt.Errorf("ctrlplane: evaluating allocation: %w", err)
	}
	cs := &cachedSolution{
		counts: counts,
		gflops: append([]float64(nil), res.AppGFLOPS...),
		total:  res.TotalGFLOPS,
	}
	// Structured baselines (best-effort: 0 when the shape is infeasible
	// for this app count / machine).
	if eal, err := roofline.Even(m, n); err == nil {
		if r, err := roofline.Evaluate(m, rapps, eal); err == nil {
			cs.even = r.TotalGFLOPS
		}
	}
	if nal, err := roofline.NodePerApp(m, n, nil); err == nil {
		if r, err := roofline.Evaluate(m, rapps, nal); err == nil {
			cs.npa = r.TotalGFLOPS
		}
	}
	return cs, nil
}

// trimToCap removes threads round-robin across nodes (from the last
// node backwards) until the total is within the app's requested cap.
// cap <= 0 means uncapped. An application demanding more threads than
// the machine has cores is thus served the solver's optimum, never
// more than exists.
func trimToCap(perNode []int, cap int) {
	if cap <= 0 {
		return
	}
	total := 0
	for _, c := range perNode {
		total += c
	}
	for j := len(perNode) - 1; total > cap; j-- {
		if j < 0 {
			j = len(perNode) - 1
		}
		if perNode[j] > 0 {
			perNode[j]--
			total--
		}
	}
}
