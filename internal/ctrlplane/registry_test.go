package ctrlplane

import (
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
)

// fakeClock is a settable time source for deterministic TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestRegistryLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(time.Second, clk.Now)

	st, gen, err := r.Register(AppSpec{Name: "App One!", AI: 2}, 0)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if st.ID != "app_one_-1" {
		t.Errorf("id = %q, want sanitized name + sequence", st.ID)
	}
	if st.TTL != time.Second {
		t.Errorf("ttl = %v, want registry default", st.TTL)
	}
	if gen != 1 {
		t.Errorf("generation = %d, want 1", gen)
	}

	if err := r.Heartbeat(HeartbeatRequest{ID: st.ID, GFlopRate: 30, GBRate: 10}); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	apps, _ := r.Snapshot()
	if len(apps) != 1 || apps[0].Beats != 1 {
		t.Fatalf("snapshot after heartbeat = %+v", apps)
	}
	if ai := apps[0].ObservedAI(); ai != 3 {
		t.Errorf("observed AI = %g, want 30/10", ai)
	}

	if err := r.Heartbeat(HeartbeatRequest{ID: "nope"}); err != ErrUnknownApp {
		t.Errorf("heartbeat unknown id: err = %v, want ErrUnknownApp", err)
	}
	if r.Deregister("nope") {
		t.Error("deregister unknown id reported success")
	}
	if !r.Deregister(st.ID) {
		t.Error("deregister known id failed")
	}
	if r.Len() != 0 {
		t.Errorf("len after deregister = %d", r.Len())
	}
	if g := r.Generation(); g != 2 {
		t.Errorf("generation after deregister = %d, want 2", g)
	}
}

func TestRegistrySweep(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(time.Second, clk.Now)

	slow, _, _ := r.Register(AppSpec{Name: "slow", AI: 1}, 0)                    // 1s TTL
	patient, _, _ := r.Register(AppSpec{Name: "patient", AI: 1}, 10*time.Second) // own TTL

	if ev := r.Sweep(); len(ev) != 0 {
		t.Fatalf("sweep at t0 evicted %v", ev)
	}
	clk.Advance(1500 * time.Millisecond)
	genBefore := r.Generation()
	ev := r.Sweep()
	if len(ev) != 1 || ev[0] != slow.ID {
		t.Fatalf("sweep at +1.5s evicted %v, want just %s", ev, slow.ID)
	}
	if r.Generation() != genBefore+1 {
		t.Errorf("eviction did not bump the generation")
	}
	if r.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", r.Evictions())
	}

	// A heartbeat resets the deadline.
	clk.Advance(8 * time.Second) // patient at 9.5s idle
	if err := r.Heartbeat(HeartbeatRequest{ID: patient.ID}); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clk.Advance(9 * time.Second) // 9s since beat < 10s TTL
	if ev := r.Sweep(); len(ev) != 0 {
		t.Errorf("sweep evicted %v after a fresh heartbeat", ev)
	}
	clk.Advance(2 * time.Second)
	if ev := r.Sweep(); len(ev) != 1 {
		t.Errorf("sweep after deadline evicted %v, want patient", ev)
	}
	if r.Len() != 0 {
		t.Errorf("len = %d, want empty registry", r.Len())
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"plain":          "plain",
		"MiXeD-Case":     "mixed-case",
		"with spaces/..": "with_spaces___",
		"":               "app",
		"☃☃☃":            "___",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
	if got := sanitizeID("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"); len(got) != 32 {
		t.Errorf("long name not truncated: %d chars", len(got))
	}
}

func TestSolverCacheTopologyChange(t *testing.T) {
	s, err := NewSolver(PolicyRoofline)
	if err != nil {
		t.Fatal(err)
	}
	apps := []AppState{
		{ID: "a", Spec: AppSpec{Name: "a", AI: 0.5}},
		{ID: "b", Spec: AppSpec{Name: "b", AI: 10}},
	}
	m1 := machine.PaperModel()
	if _, err := s.Solve(m1, apps); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve(m1, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.FromCache {
		t.Error("second identical solve missed the cache")
	}

	// A different topology must not reuse the cached solution.
	m2 := machine.Uniform("half", 2, 8, 10, 32, 0)
	sol2, err := s.Solve(m2, apps)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.FromCache {
		t.Error("topology change hit the cache")
	}
	if len(sol2.PerApp[0].PerNode) != 2 {
		t.Errorf("per-node counts = %v, want 2 nodes", sol2.PerApp[0].PerNode)
	}

	mm := s.Metrics()
	if mm.Hits != 1 || mm.Misses != 2 || mm.Entries != 2 {
		t.Errorf("solver metrics = %+v, want 1 hit / 2 misses / 2 entries", mm)
	}
}

func TestSolverCacheSlotMapping(t *testing.T) {
	s, err := NewSolver(PolicyRoofline)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.PaperModel()
	mix := func(ids ...string) []AppState {
		// ids[0] is the compute-bound app; the rest are memory-bound.
		apps := make([]AppState, len(ids))
		for i, id := range ids {
			ai := 0.5
			if i == 0 {
				ai = 10
			}
			apps[i] = AppState{ID: id, Spec: AppSpec{Name: id, AI: ai}}
		}
		return apps
	}
	first, err := s.Solve(m, mix("comp", "m1", "m2", "m3"))
	if err != nil {
		t.Fatal(err)
	}
	// Same demand multiset, different IDs and different caller order: a
	// cache hit whose solution lands on the right apps.
	second, err := s.Solve(m, mix("zz-comp", "aa", "bb", "cc"))
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Fatal("equivalent demand mix missed the cache")
	}
	if second.TotalGFLOPS != first.TotalGFLOPS {
		t.Errorf("cached total = %g, first solve = %g", second.TotalGFLOPS, first.TotalGFLOPS)
	}
	for _, a := range second.PerApp {
		threads := 0
		for _, c := range a.PerNode {
			threads += c
		}
		// The compute-bound app gets 5/node; each memory-bound app 1/node.
		want := 4
		if a.ID == "zz-comp" {
			want = 20
		}
		if threads != want {
			t.Errorf("app %s threads = %d (%v), want %d", a.ID, threads, a.PerNode, want)
		}
	}
}

func TestSolverConcurrent(t *testing.T) {
	s, err := NewSolver(PolicyRoofline)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.PaperModel()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				apps := []AppState{
					{ID: "a", Spec: AppSpec{Name: "a", AI: 0.5 + float64(w%3)}},
					{ID: "b", Spec: AppSpec{Name: "b", AI: 10}},
				}
				if _, err := s.Solve(m, apps); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestTrimToCap(t *testing.T) {
	cases := []struct {
		in   []int
		cap  int
		want []int
	}{
		{[]int{2, 2, 2, 2}, 0, []int{2, 2, 2, 2}}, // uncapped
		{[]int{2, 2, 2, 2}, 8, []int{2, 2, 2, 2}}, // at the cap
		{[]int{2, 2, 2, 2}, 5, []int{2, 1, 1, 1}}, // trims from the back
		{[]int{5, 5, 5, 5}, 3, []int{1, 1, 1, 0}}, // wraps repeatedly
		{[]int{0, 0, 0, 7}, 2, []int{0, 0, 0, 2}}, // skips empty nodes
	}
	for _, c := range cases {
		got := append([]int(nil), c.in...)
		trimToCap(got, c.cap)
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("trimToCap(%v, %d) = %v, want %v", c.in, c.cap, got, c.want)
				break
			}
		}
	}
}

// TestRegistryTTLExactDeadline pins the eviction boundary: an app whose
// idle time equals its TTL exactly is NOT evicted (eviction requires
// idle > TTL), so a heartbeat landing precisely at the deadline always
// wins against a sweep at the same instant.
func TestRegistryTTLExactDeadline(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(time.Second, clk.Now)
	st, _, _ := r.Register(AppSpec{Name: "edge", AI: 1}, 0)

	clk.Advance(time.Second) // idle == TTL, to the nanosecond
	if ev := r.Sweep(); len(ev) != 0 {
		t.Fatalf("sweep at exactly TTL evicted %v; boundary must be exclusive", ev)
	}
	if err := r.Heartbeat(HeartbeatRequest{ID: st.ID}); err != nil {
		t.Fatalf("heartbeat exactly at the deadline: %v", err)
	}

	clk.Advance(time.Second) // again exactly at the (re-armed) deadline
	if ev := r.Sweep(); len(ev) != 0 {
		t.Fatalf("sweep at the re-armed deadline evicted %v", ev)
	}
	clk.Advance(time.Nanosecond) // one tick past
	if ev := r.Sweep(); len(ev) != 1 || ev[0] != st.ID {
		t.Fatalf("sweep one tick past the deadline evicted %v, want %s", ev, st.ID)
	}
}

// TestRegistrySweepRegisterRace hammers Register, Heartbeat, Deregister,
// and Sweep concurrently (run under -race). An app registered while a
// sweep runs must either be absent (registered after) or alive (its
// fresh LastBeat cannot be past any deadline); the generation observed
// by concurrent readers must never decrease.
func TestRegistrySweepRegisterRace(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(50*time.Millisecond, clk.Now)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st, _, err := r.Register(AppSpec{Name: "racer", AI: 1}, 0)
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				r.Heartbeat(HeartbeatRequest{ID: st.ID})
				if i%2 == 0 {
					r.Deregister(st.ID)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // the janitor, with time rushing past deadlines
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.Advance(60 * time.Millisecond)
			r.Sweep()
		}
	}()
	var lastGen uint64
	for i := 0; i < 2000; i++ {
		g := r.Generation()
		if g < lastGen {
			t.Errorf("generation regressed under load: %d -> %d", lastGen, g)
			break
		}
		lastGen = g
		if _, sg := r.Snapshot(); sg < g {
			t.Errorf("snapshot generation %d behind observed %d", sg, g)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestRegistryGenerationMonotonicAcrossEvictions walks the full
// lifecycle — register, evict by sweep, re-register, deregister — and
// checks every generation step is a strict increase: clients gate
// reallocation reads on generation, so any regression or reuse would
// make them miss (or double-apply) an allocation change.
func TestRegistryGenerationMonotonicAcrossEvictions(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(time.Second, clk.Now)
	last := r.Generation()
	step := func(label string) {
		t.Helper()
		g := r.Generation()
		if g <= last {
			t.Fatalf("%s: generation %d, want > %d", label, g, last)
		}
		last = g
	}

	for cycle := 0; cycle < 5; cycle++ {
		st, gen, err := r.Register(AppSpec{Name: "cyclic", AI: 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if gen != r.Generation() {
			t.Fatalf("register returned generation %d, registry at %d", gen, r.Generation())
		}
		step("register")

		if cycle%2 == 0 {
			clk.Advance(1500 * time.Millisecond)
			if ev := r.Sweep(); len(ev) != 1 {
				t.Fatalf("cycle %d: sweep evicted %v", cycle, ev)
			}
			step("evict")
		} else {
			if !r.Deregister(st.ID) {
				t.Fatalf("cycle %d: deregister failed", cycle)
			}
			step("deregister")
		}
	}
	if r.Evictions() != 3 {
		t.Errorf("evictions = %d, want 3", r.Evictions())
	}
}
