package replica

import (
	"sync"

	"repro/internal/ctrlplane/persist"
)

// replLog is the leader's in-memory replication log: a sequence-
// numbered ring of journal records tailed off the persist store's
// observer hook. Followers pull suffixes by sequence number; a follower
// whose cursor predates the retained window (or whose stream epoch is
// stale) gets a full snapshot instead.
type replLog struct {
	mu    sync.Mutex
	epoch uint64
	base  uint64 // sequence of recs[0]; first record ever is seq 1
	recs  []persist.Record
	max   int
}

// newReplLog builds a log retaining at most max records (default 4096).
func newReplLog(max int) *replLog {
	if max <= 0 {
		max = 4096
	}
	return &replLog{base: 1, max: max}
}

// reset empties the log and stamps it with the new leader's epoch.
// Sequence numbering restarts at 1; followers with cursors from the old
// epoch fall back to a snapshot on their next pull.
func (l *replLog) reset(epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epoch = epoch
	l.base = 1
	l.recs = l.recs[:0]
}

// append adds one record, trimming the oldest past the retention bound.
func (l *replLog) append(rec persist.Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, rec)
	if over := len(l.recs) - l.max; over > 0 {
		l.recs = append(l.recs[:0], l.recs[over:]...)
		l.base += uint64(over)
	}
}

// next returns the sequence number the next appended record will get —
// equivalently, one past the last published record.
func (l *replLog) next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.recs))
}

// since returns the records after cursor (i.e. with seq > cursor) for a
// follower on streamEpoch. ok=false means no contiguous suffix exists —
// the cursor predates retention or the epoch changed — and the caller
// must ship a snapshot.
func (l *replLog) since(cursor, streamEpoch uint64) (recs []persist.Record, nextSeq uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	nextSeq = l.base + uint64(len(l.recs))
	if streamEpoch != l.epoch || cursor+1 < l.base || cursor+1 > nextSeq {
		return nil, nextSeq, false
	}
	suffix := l.recs[cursor+1-l.base:]
	return append([]persist.Record(nil), suffix...), nextSeq, true
}
