// Package replica makes the control plane highly available: two or
// more coopd instances form a leader/follower group in which the
// leader serves writes and streams its persistence journal to
// followers, followers serve reads and redirect writes, and a
// lease-based election promotes a follower within one lease TTL of the
// leader going silent.
//
// The design reuses the crash-durability machinery end to end:
//
//   - The persist journal IS the replication stream. Every record the
//     leader fsyncs is also published (via the store's observer hook)
//     to an in-memory replication log; followers pull suffixes from
//     GET /v1/replicate and replay them through the same apply logic
//     that crash recovery uses. A follower too far behind the retained
//     window gets a full snapshot instead.
//   - The lease is persisted through the store: every promotion
//     journals an OpPromote record carrying the new fencing epoch, so
//     neither the epoch nor the generation can regress across a crash
//     of any replica.
//   - The registry's monotonic generations act as fencing tokens. A
//     promotion bumps the generation, every response is stamped with
//     X-Coop-Epoch, and multi-endpoint clients reject any response
//     whose (epoch, generation) regresses — a deposed leader that kept
//     serving through a partition is ignored, not believed.
//
// Split-brain during a partition is tolerated, not prevented (there is
// no quorum with two nodes): the deposed leader's writes are fenced off
// by epoch at the clients, and on heal the deposed leader observes the
// higher epoch, steps down, and resyncs from a snapshot.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/persist"
)

// Role is a replica's position in the group.
type Role int32

const (
	// RoleFollower serves reads from replicated state and redirects
	// writes to the leader.
	RoleFollower Role = iota
	// RoleLeader serves everything and publishes the journal.
	RoleLeader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleLeader {
		return "leader"
	}
	return "follower"
}

// Config tunes a replica Node.
type Config struct {
	// Self is this replica's advertised base URL (how peers and
	// clients reach it), e.g. "http://10.0.0.1:8377". Required.
	Self string
	// Peers are the other replicas' advertised URLs.
	Peers []string
	// Server is the wrapped control plane. Required, and it must have
	// a persist store attached — the lease and the replication stream
	// both live in the journal.
	Server *ctrlplane.Server
	// LeaseTTL is how long the leader may go silent before a follower
	// campaigns (default 2s).
	LeaseTTL time.Duration
	// RenewInterval is the leader's peer-scan period for detecting a
	// higher epoch (default LeaseTTL/4).
	RenewInterval time.Duration
	// PullInterval is the follower's replication poll period — the
	// replication lag bound (default LeaseTTL/8).
	PullInterval time.Duration
	// Bootstrap starts this node as the leader of a fresh group.
	// Exactly one replica bootstraps; the rest join as followers.
	Bootstrap bool
	// LeaderHint seeds a follower's view of the current leader
	// (coopd's -replica-of); discovery via peers fills it otherwise.
	LeaderHint string
	// LogRetention bounds the in-memory replication log (default 4096
	// records); followers further behind resync via snapshot.
	LogRetention int
	// Clock is the time source (nil: time.Now), injectable for tests.
	Clock func() time.Time
	// Transport is the peer-HTTP transport (nil: default). Fault
	// injection (e.g. faultinject.Partition) hooks in here.
	Transport http.RoundTripper
	// Logf, when set, receives role-transition and resync log lines.
	Logf func(format string, args ...any)
}

// Node is one replica: a ctrlplane.Server plus the replication state
// machine. Mount Handler instead of the server's own handler, and call
// Start/Close around the server's lifetime.
type Node struct {
	cfg Config
	reg *ctrlplane.Registry
	st  *persist.Store
	log *replLog
	hc  *http.Client

	mu          sync.Mutex
	role        Role
	epoch       uint64
	leader      string // advertised URL of the current leader ("" unknown)
	leaseUntil  time.Time
	lastPull    time.Time
	streamEpoch uint64 // epoch of the stream lastApplied belongs to
	lastApplied uint64 // last replication seq applied (follower)
	promotions  uint64
	stagger     time.Duration

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewNode validates the configuration and builds the replica. The
// bootstrap node promotes itself immediately (journaling epoch
// restored+1); joiners start as followers and resync on first pull.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Server == nil {
		return nil, errors.New("replica: no server configured")
	}
	if cfg.Server.Store() == nil {
		return nil, errors.New("replica: server has no persist store (HA needs -state-dir: the lease and the replication stream live in the journal)")
	}
	if cfg.Self == "" {
		return nil, errors.New("replica: no advertised self URL configured")
	}
	if _, err := url.Parse(cfg.Self); err != nil {
		return nil, fmt.Errorf("replica: bad self URL: %w", err)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.RenewInterval <= 0 {
		cfg.RenewInterval = cfg.LeaseTTL / 4
	}
	if cfg.PullInterval <= 0 {
		cfg.PullInterval = cfg.LeaseTTL / 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		cfg:  cfg,
		reg:  cfg.Server.Registry(),
		st:   cfg.Server.Store(),
		log:  newReplLog(cfg.LogRetention),
		hc:   &http.Client{Transport: cfg.Transport, Timeout: cfg.LeaseTTL / 2},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Promotion stagger: survivors campaign in a deterministic order
	// (rank among the sorted member URLs) so simultaneous lease expiry
	// does not produce simultaneous equal-epoch leaders.
	members := append([]string{cfg.Self}, cfg.Peers...)
	sort.Strings(members)
	for i, m := range members {
		if m == cfg.Self {
			n.stagger = time.Duration(i) * 2 * cfg.PullInterval
		}
	}
	n.epoch = n.st.Epoch() // never campaign below a persisted epoch
	now := cfg.Clock()
	if cfg.Bootstrap {
		n.promoteLocked("bootstrap")
	} else {
		n.role = RoleFollower
		n.leader = cfg.LeaderHint
		if n.leader == "" && len(cfg.Peers) > 0 {
			n.leader = cfg.Peers[0]
		}
		n.leaseUntil = now.Add(cfg.LeaseTTL)
		n.reg.SetSweepsEnabled(false)
	}
	return n, nil
}

// Start launches the replication loop (leader: peer scans; follower:
// journal pulls and, on lease expiry, a campaign).
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	go n.run()
}

// Close stops the replication loop. The wrapped server and store are
// the caller's to close, in that order, afterwards.
func (n *Node) Close() {
	n.mu.Lock()
	started := n.started
	n.started = false
	n.mu.Unlock()
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	if started {
		<-n.done
	}
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch returns the node's current fencing epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Leader returns the node's view of the current leader's URL.
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// Promotions counts this node's follower-to-leader transitions.
func (n *Node) Promotions() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.promotions
}

// run is the replication loop. One goroutine owns all role
// transitions; HTTP exchanges happen outside the node lock.
func (n *Node) run() {
	defer close(n.done)
	tick := time.NewTicker(n.cfg.PullInterval)
	defer tick.Stop()
	var lastScan time.Time
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
		now := n.cfg.Clock()
		switch n.Role() {
		case RoleLeader:
			if now.Sub(lastScan) >= n.cfg.RenewInterval {
				lastScan = now
				n.scanPeers()
			}
		case RoleFollower:
			n.pull(now)
		}
	}
}

// promoteLocked is the follower->leader transition (mu must be held or
// the node not yet shared). It bumps the epoch, re-enables and re-arms
// TTL eviction, restarts the replication log, and journals the promote
// record — which also bumps the generation clients fence by.
func (n *Node) promoteLocked(why string) {
	n.epoch++
	n.role = RoleLeader
	n.leader = n.cfg.Self
	n.leaseUntil = n.cfg.Clock().Add(n.cfg.LeaseTTL)
	n.promotions++
	n.log.reset(n.epoch)
	n.reg.SetSweepsEnabled(true)
	n.reg.RearmTTLs()
	// Publish every record journaled from here on. Installing the
	// observer (again) is idempotent; followers run with it installed
	// too, so their mirrored journal feeds the log they would serve
	// from if promoted — reset above discards the stale prefix.
	n.st.SetObserver(n.log.append)
	gen := n.reg.Promote(n.epoch)
	n.cfg.Logf("replica: %s promoted to leader (epoch %d, generation %d, %s)", n.cfg.Self, n.epoch, gen, why)
}

// stepDownLocked adopts another replica's leadership (mu must be
// held). The local stream cursor resets so the next pull resyncs from
// a snapshot — any state diverged during a partition is overwritten.
func (n *Node) stepDownLocked(leader string, epoch uint64) {
	if n.role == RoleLeader {
		n.cfg.Logf("replica: %s stepping down (epoch %d -> %d, leader %s)", n.cfg.Self, n.epoch, epoch, leader)
	}
	n.role = RoleFollower
	n.leader = leader
	if epoch > n.epoch {
		n.epoch = epoch
	}
	n.leaseUntil = n.cfg.Clock().Add(n.cfg.LeaseTTL)
	n.streamEpoch = 0 // forces a snapshot resync
	n.lastApplied = 0
	n.reg.SetSweepsEnabled(false)
}

// scanPeers is the leader's renewal duty: ask every peer for its
// status and step down if any reports a higher epoch (we were deposed
// during a partition) or an equal-epoch leader with a smaller URL (the
// deterministic tie-break).
func (n *Node) scanPeers() {
	for _, peer := range n.cfg.Peers {
		st, err := n.peerStatus(peer)
		if err != nil {
			continue
		}
		n.mu.Lock()
		if n.role == RoleLeader {
			switch {
			case st.Epoch > n.epoch && st.Leader != "" && st.Leader != n.cfg.Self:
				n.stepDownLocked(st.Leader, st.Epoch)
			case st.Epoch == n.epoch && st.Role == RoleLeader.String() && st.Self < n.cfg.Self:
				n.stepDownLocked(st.Self, st.Epoch)
			default:
				n.leaseUntil = n.cfg.Clock().Add(n.cfg.LeaseTTL)
			}
		}
		n.mu.Unlock()
	}
}

// pull is one follower replication step: fetch the journal suffix (or
// a snapshot) from the leader, apply it, and renew the lease. A silent
// leader past the lease TTL (plus this node's promotion stagger)
// triggers a campaign.
func (n *Node) pull(now time.Time) {
	n.mu.Lock()
	leader := n.leader
	cursor, streamEpoch := n.lastApplied, n.streamEpoch
	expired := now.After(n.leaseUntil.Add(n.stagger))
	myEpoch := n.epoch
	n.mu.Unlock()

	if leader == "" || leader == n.cfg.Self {
		n.discoverLeader()
		n.mu.Lock()
		leader = n.leader
		n.mu.Unlock()
	}

	var resp *PullResponse
	var err error
	if leader != "" && leader != n.cfg.Self {
		resp, err = n.fetchJournal(leader, cursor, streamEpoch)
	} else {
		err = errors.New("replica: no known leader")
	}
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.Code == ctrlplane.ErrCodeNotLeader && ae.Leader != "" && ae.Leader != n.cfg.Self {
			// The replica we were following stepped down; chase its hint.
			n.mu.Lock()
			n.leader = ae.Leader
			n.mu.Unlock()
		}
		if expired {
			n.mu.Lock()
			// Re-check under the lock: an announce may have landed since.
			promoted := false
			if n.role == RoleFollower && n.cfg.Clock().After(n.leaseUntil.Add(n.stagger)) {
				n.promoteLocked(fmt.Sprintf("lease expired (leader %s silent > %s)", leader, n.cfg.LeaseTTL))
				promoted = true
			}
			n.mu.Unlock()
			if promoted {
				n.announce()
			}
		}
		return
	}
	if resp.Epoch < myEpoch {
		// A stale leader (pre-partition epoch) is not a leader. Forget it
		// and let discovery or the lease decide.
		n.mu.Lock()
		if n.leader == leader {
			n.leader = ""
		}
		n.mu.Unlock()
		return
	}

	// Apply outside the node lock; the registry has its own.
	if resp.Snapshot != nil {
		snap := *resp.Snapshot
		if err := n.reg.ResetFromSnapshot(snap); err != nil {
			n.cfg.Logf("replica: %s snapshot resync from %s failed: %v", n.cfg.Self, leader, err)
			return
		}
		n.cfg.Logf("replica: %s resynced from snapshot (%d apps, generation %d, epoch %d)",
			n.cfg.Self, len(snap.Apps), snap.Generation, resp.Epoch)
	} else {
		for _, rec := range resp.Records {
			if err := n.reg.ApplyRecord(rec); err != nil {
				n.cfg.Logf("replica: %s applying replicated record: %v", n.cfg.Self, err)
				return
			}
		}
	}
	n.mu.Lock()
	n.leader = resp.Leader
	if resp.Epoch > n.epoch {
		n.epoch = resp.Epoch
	}
	n.streamEpoch = resp.Epoch
	if resp.NextSeq > 0 {
		n.lastApplied = resp.NextSeq - 1
	}
	n.lastPull = n.cfg.Clock()
	n.leaseUntil = n.lastPull.Add(n.cfg.LeaseTTL)
	n.mu.Unlock()
}

// discoverLeader asks every peer who it thinks leads and adopts the
// highest-epoch answer.
func (n *Node) discoverLeader() {
	var bestLeader string
	var bestEpoch uint64
	for _, peer := range n.cfg.Peers {
		st, err := n.peerStatus(peer)
		if err != nil || st.Leader == "" {
			continue
		}
		if st.Epoch >= bestEpoch {
			bestEpoch, bestLeader = st.Epoch, st.Leader
		}
	}
	if bestLeader == "" || bestLeader == n.cfg.Self {
		return
	}
	n.mu.Lock()
	if n.role == RoleFollower && bestEpoch >= n.epoch {
		n.leader = bestLeader
		if bestEpoch > n.epoch {
			n.epoch = bestEpoch
		}
	}
	n.mu.Unlock()
}

// announce tells every peer about this node's leadership claim; a peer
// answering with a higher (or tie-winning) claim deposes us again.
func (n *Node) announce() {
	n.mu.Lock()
	epoch, self := n.epoch, n.cfg.Self
	isLeader := n.role == RoleLeader
	n.mu.Unlock()
	if !isLeader {
		return
	}
	for _, peer := range n.cfg.Peers {
		resp, err := n.postAnnounce(peer, announceRequest{Leader: self, Epoch: epoch})
		if err != nil || resp.Accepted {
			continue
		}
		n.mu.Lock()
		if n.role == RoleLeader &&
			(resp.Epoch > n.epoch || (resp.Epoch == n.epoch && resp.Leader != "" && resp.Leader < n.cfg.Self)) {
			n.stepDownLocked(resp.Leader, resp.Epoch)
		}
		n.mu.Unlock()
	}
}

// --- peer HTTP ---

// apiError is a non-2xx reply from a peer, with the decoded wire code.
type apiError struct {
	Status int
	Code   string
	Leader string
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("replica: peer returned %d: %s", e.Status, e.Msg)
}

func (n *Node) peerGet(base, path string, out any) error {
	return n.peerDo(http.MethodGet, base, path, nil, out)
}

func (n *Node) peerDo(method, base, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = strings.NewReader(string(data))
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.hc.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(base, "/")+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		ae := &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
		var er ctrlplane.ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			ae.Msg, ae.Code, ae.Leader = er.Error, er.Code, er.Leader
		}
		return ae
	}
	if out != nil && len(data) > 0 {
		return json.Unmarshal(data, out)
	}
	return nil
}

func (n *Node) peerStatus(base string) (*ctrlplane.ReplicaStatusResponse, error) {
	var st ctrlplane.ReplicaStatusResponse
	if err := n.peerGet(base, "/v1/replica/status", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (n *Node) fetchJournal(base string, cursor, streamEpoch uint64) (*PullResponse, error) {
	var pr PullResponse
	path := fmt.Sprintf("/v1/replicate?after=%d&epoch=%d", cursor, streamEpoch)
	if err := n.peerGet(base, path, &pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

func (n *Node) postAnnounce(base string, req announceRequest) (*announceResponse, error) {
	var ar announceResponse
	if err := n.peerDo(http.MethodPost, base, "/v1/replica/announce", req, &ar); err != nil {
		return nil, err
	}
	return &ar, nil
}
