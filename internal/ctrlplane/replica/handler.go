package replica

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/persist"
)

// PullResponse is the GET /v1/replicate body: either a journal suffix
// (Records) or, when the follower's cursor left the retained window or
// the epoch changed, a full Snapshot. NextSeq is the follower's next
// cursor in both cases; records landing between snapshot cut and
// NextSeq are re-pulled and re-applied (applies are idempotent), so
// delivery is at-least-once, never lossy.
type PullResponse struct {
	Epoch    uint64            `json:"epoch"`
	Leader   string            `json:"leader"`
	NextSeq  uint64            `json:"next_seq"`
	Records  []persist.Record  `json:"records,omitempty"`
	Snapshot *persist.Snapshot `json:"snapshot,omitempty"`
}

// announceRequest is a leadership claim pushed to peers on promotion.
type announceRequest struct {
	Leader string `json:"leader"`
	Epoch  uint64 `json:"epoch"`
}

// announceResponse is the peer's verdict; a rejection carries the
// higher (or tie-winning) claim that deposes the announcer.
type announceResponse struct {
	Accepted bool   `json:"accepted"`
	Epoch    uint64 `json:"epoch"`
	Leader   string `json:"leader,omitempty"`
}

// Handler returns the replica-aware HTTP surface: the wrapped server's
// routes plus /v1/replica/status, /v1/replica/announce and
// /v1/replicate. Every response carries X-Coop-Epoch / X-Coop-Role /
// X-Coop-Leader so clients can discover the leader and fence stale
// replicas; mutations on a follower are redirected with 421 +
// not_leader instead of being served.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/replica/status", n.handleStatus)
	mux.HandleFunc("/v1/replica/announce", n.handleAnnounce)
	mux.HandleFunc("/v1/replicate", n.handleReplicate)
	mux.Handle("/", n.gate(n.cfg.Server.Handler()))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		role, epoch, leader := n.role, n.epoch, n.leader
		n.mu.Unlock()
		h := w.Header()
		h.Set(ctrlplane.HeaderEpoch, strconv.FormatUint(epoch, 10))
		h.Set(ctrlplane.HeaderRole, role.String())
		if leader != "" {
			h.Set(ctrlplane.HeaderLeader, leader)
		}
		mux.ServeHTTP(w, r)
	})
}

// gate redirects mutations away from followers. Reads pass through —
// serving slightly-stale allocations beats serving nothing, and the
// epoch header lets a client that cares insist on the leader.
func (n *Node) gate(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		isWrite := r.Method != http.MethodGet && r.Method != http.MethodHead &&
			strings.HasPrefix(r.URL.Path, "/v1/")
		if isWrite {
			n.mu.Lock()
			role, leader := n.role, n.leader
			n.mu.Unlock()
			if role != RoleLeader {
				writeJSON(w, http.StatusMisdirectedRequest, ctrlplane.ErrorResponse{
					Error:  "not the leader; retry against the leader",
					Code:   ctrlplane.ErrCodeNotLeader,
					Leader: leader,
				})
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
}

// handleStatus serves one replica's view of the group: role, lease,
// epoch, and replication lag. coopctl status renders it; peers use it
// for leader discovery and deposed-leader detection.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	now := n.cfg.Clock()
	n.mu.Lock()
	st := ctrlplane.ReplicaStatusResponse{
		Role:       n.role.String(),
		Self:       n.cfg.Self,
		Leader:     n.leader,
		Epoch:      n.epoch,
		Generation: n.reg.Generation(),
		Promotions: n.promotions,
		Peers:      append([]string(nil), n.cfg.Peers...),
	}
	st.LeaseRemainingMillis = n.leaseUntil.Add(n.stagger).Sub(now).Milliseconds()
	if n.role == RoleLeader {
		st.AppliedSeq = n.log.next() - 1
	} else {
		st.AppliedSeq = n.lastApplied
		if !n.lastPull.IsZero() {
			st.LagMillis = now.Sub(n.lastPull).Milliseconds()
		}
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleAnnounce arbitrates a leadership claim. Higher epochs always
// win; equal epochs go to the lexicographically smaller URL so two
// simultaneous promotions resolve deterministically without a third
// party.
func (n *Node) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req announceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Leader == "" {
		http.Error(w, "invalid announce body", http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	var resp announceResponse
	switch {
	case req.Epoch > n.epoch:
		n.stepDownLocked(req.Leader, req.Epoch)
		resp = announceResponse{Accepted: true, Epoch: n.epoch, Leader: n.leader}
	case req.Epoch == n.epoch && n.role == RoleLeader:
		if req.Leader < n.cfg.Self {
			n.stepDownLocked(req.Leader, req.Epoch)
			resp = announceResponse{Accepted: true, Epoch: n.epoch, Leader: n.leader}
		} else {
			resp = announceResponse{Accepted: false, Epoch: n.epoch, Leader: n.cfg.Self}
		}
	case req.Epoch == n.epoch:
		// Follower hearing an equal-epoch claim: adopt it (our own view
		// may be the stale one) and renew the lease.
		n.leader = req.Leader
		n.leaseUntil = n.cfg.Clock().Add(n.cfg.LeaseTTL)
		resp = announceResponse{Accepted: true, Epoch: n.epoch, Leader: n.leader}
	default:
		resp = announceResponse{Accepted: false, Epoch: n.epoch, Leader: n.leader}
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleReplicate streams the journal to a follower. Only the leader
// publishes; a follower asked to replicate redirects like any other
// misdirected write.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	n.mu.Lock()
	role, epoch, leader := n.role, n.epoch, n.leader
	n.mu.Unlock()
	if role != RoleLeader {
		writeJSON(w, http.StatusMisdirectedRequest, ctrlplane.ErrorResponse{
			Error:  "not the leader; replicate from the leader",
			Code:   ctrlplane.ErrCodeNotLeader,
			Leader: leader,
		})
		return
	}
	q := r.URL.Query()
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	streamEpoch, _ := strconv.ParseUint(q.Get("epoch"), 10, 64)

	resp := PullResponse{Epoch: epoch, Leader: n.cfg.Self}
	recs, nextSeq, ok := n.log.since(after, streamEpoch)
	resp.NextSeq = nextSeq
	if ok {
		resp.Records = recs
	} else {
		// Cursor outside the retained window (or stale epoch): ship a
		// snapshot. nextSeq was captured before the snapshot cut, so any
		// record landing in between is both in the snapshot and re-pulled
		// next time — duplicates, never gaps.
		snap := n.reg.PersistSnapshot()
		snap.Epoch = epoch
		resp.Snapshot = &snap
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
