package replica_test

// Drift-chaos scenario: a mis-declared app streams telemetry through a
// fault-injecting transport, the leader fits and applies its real
// demand online, and is then killed mid-recalibration. The fitted
// model is journaled (OpFitted) and replicated, so the promoted
// follower must keep serving the corrected allocation without a single
// new sample — and when reporting resumes against it, the fresh
// tracker must re-confirm the drift rather than clear the inherited
// fit.

import (
	"context"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/ctrlplane/replica"
	"repro/internal/faultinject"
)

// driftChaosClient is a single-endpoint client whose transport injects
// a seeded fault mix on the telemetry path (register spared — a blind
// retry there would duplicate the app).
func driftChaosClient(url string, seed int64) (*client.Client, *faultinject.Injector) {
	inj := faultinject.NewInjector(faultinject.Seeded(seed, faultinject.Mix{
		Drop:       0.05,
		Latency:    0.20,
		Err5xx:     0.10,
		MaxLatency: 5 * time.Millisecond,
	}))
	return client.New(url, client.Config{
		HTTPClient: &http.Client{Transport: &faultinject.Transport{
			Inj:    inj,
			Filter: func(r *http.Request) bool { return r.URL.Path != "/v1/register" },
		}},
		MaxAttempts:    6,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}), inj
}

// misSample is what the mis-declared app actually does: AI 10, not the
// declared 0.5.
func misSample() ctrlplane.ReportSample {
	return ctrlplane.ReportSample{GFLOPS: 290, GBps: 29, Threads: 29}
}

func TestChaosDriftLeaderKillMidRecalibration(t *testing.T) {
	ttl := 500 * time.Millisecond
	leader, follower := startPair(t, haOpts{
		leaseTTL:    ttl,
		recalibrate: true,
		adaptCfg:    adapt.Config{Window: 2, ConfirmWindows: 2, Alpha: 0.5},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	lc, inj := driftChaosClient(leader.url(), 4100)
	var misID string
	for _, req := range []ctrlplane.RegisterRequest{
		{Name: "mem-a", AI: 0.5},
		{Name: "mem-b", AI: 0.5},
		{Name: "mem-c", AI: 0.5},
		{Name: "mis", AI: 0.5}, // declared memory-bound, behaves compute-bound
	} {
		resp, err := lc.Register(ctx, req)
		if err != nil {
			t.Fatalf("register %s: %v", req.Name, err)
		}
		if req.Name == "mis" {
			misID = resp.ID
		}
	}

	// Telemetry through the fault storm until the leader confirms the
	// drift and applies the fitted model to the solver.
	applied := false
	for i := 0; i < 20 && !applied; i++ {
		resp, err := lc.Report(ctx, ctrlplane.ReportRequest{
			ID:      misID,
			Samples: []ctrlplane.ReportSample{misSample(), misSample()},
		})
		if err != nil {
			continue // injected fault; the next report retries
		}
		applied = resp.Drifted
	}
	if !applied {
		t.Fatal("leader never applied the fitted model through the fault storm")
	}

	// The OpFitted journal record replicates; the follower's app view
	// must mirror the fitted AI before the kill for failover to matter.
	fc := client.New(follower.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	waitFor(t, 5*time.Second, "fitted model to replicate", func() bool {
		apps, err := fc.Apps(ctx)
		if err != nil {
			return false
		}
		for _, a := range apps.Apps {
			if a.ID == misID && a.Drifted && math.Abs(a.FittedAI-10) < 0.5 {
				return true
			}
		}
		return false
	})

	// Kill mid-recalibration: telemetry was still flowing.
	leader.kill()
	waitFor(t, 5*time.Second, "follower promotion", func() bool {
		return follower.node.Role() == replica.RoleLeader
	})

	// The promoted leader serves the corrected Table I allocation from
	// the replicated fit alone — no telemetry has reached it yet.
	alloc, err := fc.Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations from promoted leader: %v", err)
	}
	if alloc.TotalGFLOPS < 250 || alloc.TotalGFLOPS > 260 {
		t.Errorf("promoted leader serves %g GFLOPS, want the corrected ~254 (fitted model lost in failover?)", alloc.TotalGFLOPS)
	}
	drift, err := fc.Drift(ctx)
	if err != nil {
		t.Fatalf("drift from promoted leader: %v", err)
	}
	foundMis := false
	for _, a := range drift.Apps {
		if a.ID == misID {
			foundMis = true
			if !a.Applied || math.Abs(a.AppliedAI-10) > 0.5 {
				t.Errorf("promoted leader drift view: applied %v AI %.2f, want the inherited fit ~10", a.Applied, a.AppliedAI)
			}
		}
	}
	if !foundMis {
		t.Error("promoted leader's drift view does not list the fitted app")
	}

	// Reporting resumes against the survivor: its fresh tracker must
	// re-confirm the drift on the inherited fit, never clear it.
	nc, _ := driftChaosClient(follower.url(), 4200)
	confirmed := false
	for i := 0; i < 20 && !confirmed; i++ {
		resp, err := nc.Report(ctx, ctrlplane.ReportRequest{
			ID:      misID,
			Samples: []ctrlplane.ReportSample{misSample(), misSample()},
		})
		if err != nil {
			continue
		}
		if !resp.Drifted {
			t.Fatal("survivor dropped the fitted model while the app still drifts")
		}
		confirmed = resp.State == "drifted"
	}
	if !confirmed {
		t.Fatal("survivor's tracker never re-confirmed the drift")
	}
	drift, err = fc.Drift(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if drift.Cleared != 0 {
		t.Errorf("%d fitted-model clears on the survivor; the inherited fit must survive re-confirmation", drift.Cleared)
	}
	alloc, err = fc.Allocations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalGFLOPS < 250 || alloc.TotalGFLOPS > 260 {
		t.Errorf("survivor serves %g GFLOPS after resumed telemetry, want ~254", alloc.TotalGFLOPS)
	}

	if counts := inj.Counts(); counts[faultinject.KindDrop]+counts[faultinject.KindLatency]+counts[faultinject.Kind5xx] == 0 {
		t.Error("fault injector never fired; the chaos test ran without chaos")
	}
}
