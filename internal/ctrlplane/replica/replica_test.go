package replica_test

// The HA suite runs real replica pairs — two ctrlplane.Servers behind
// net/http on TCP ports, each with its own state dir, joined through
// internal/ctrlplane/replica — and exercises journal streaming, write
// redirects, leader-kill promotion, partition-induced split brain with
// epoch fencing, and the acceptance scenario: the leader dies during a
// heartbeat storm with fault injection active, a follower promotes
// within one lease TTL, no client observes a regressed generation, and
// the survivor still reproduces the paper's 254/140/128 Table I
// ranking.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/ctrlplane/persist"
	"repro/internal/ctrlplane/replica"
	"repro/internal/faultinject"
	"repro/internal/machine"
)

// haOpts shapes one replica for the harness.
type haOpts struct {
	bootstrap   bool
	leaderHint  string
	peers       []string
	transport   http.RoundTripper
	leaseTTL    time.Duration
	pull        time.Duration
	recalibrate bool
	adaptCfg    adapt.Config
}

// haNode is one live replica: server + node + listener, crash-killable.
type haNode struct {
	t     *testing.T
	addr  string
	dir   string
	self  string
	store *persist.Store
	srv   *ctrlplane.Server
	node  *replica.Node
	hs    *http.Server
}

func listenTCP(t *testing.T, addr string) net.Listener {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if attempt > 50 {
			t.Fatalf("listening on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond) // a killed node's port lingers briefly
	}
}

// startHANode boots one replica on ln. Pass the previous node's dir and
// addr to restart it crash-style (the state dir was never cleanly
// closed).
func startHANode(t *testing.T, dir string, ln net.Listener, o haOpts) *haNode {
	t.Helper()
	store, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("opening state dir: %v", err)
	}
	srv, err := ctrlplane.NewServer(ctrlplane.ServerConfig{
		Machine:     machine.PaperModel(),
		DefaultTTL:  30 * time.Second,
		Store:       store,
		Recalibrate: o.recalibrate,
		Adapt:       o.adaptCfg,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if o.leaseTTL == 0 {
		o.leaseTTL = 500 * time.Millisecond
	}
	if o.pull == 0 {
		o.pull = 25 * time.Millisecond
	}
	self := "http://" + ln.Addr().String()
	node, err := replica.NewNode(replica.Config{
		Self:         self,
		Peers:        o.peers,
		Server:       srv,
		LeaseTTL:     o.leaseTTL,
		PullInterval: o.pull,
		Bootstrap:    o.bootstrap,
		LeaderHint:   o.leaderHint,
		Transport:    o.transport,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	n := &haNode{
		t: t, addr: ln.Addr().String(), dir: dir, self: self,
		store: store, srv: srv, node: node,
		hs: &http.Server{Handler: node.Handler()},
	}
	go n.hs.Serve(ln)
	srv.Start()
	node.Start()
	t.Cleanup(n.kill)
	return n
}

// kill crashes the replica: connections severed, replication loop
// stopped, store abandoned without a clean close.
func (n *haNode) kill() {
	if n.hs == nil {
		return
	}
	n.hs.Close()
	n.node.Close()
	n.srv.Close()
	n.hs = nil
}

func (n *haNode) url() string { return n.self }

// startPair boots a bootstrap leader and a joining follower.
func startPair(t *testing.T, o haOpts) (leader, follower *haNode) {
	t.Helper()
	lnA, lnB := listenTCP(t, ""), listenTCP(t, "")
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	oa, ob := o, o
	oa.bootstrap, oa.peers = true, []string{urlB}
	ob.bootstrap, ob.peers, ob.leaderHint = false, []string{urlA}, urlA
	leader = startHANode(t, t.TempDir(), lnA, oa)
	follower = startHANode(t, t.TempDir(), lnB, ob)
	return leader, follower
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tableIRequests is the paper's Table I demand mix.
func tableIRequests() []ctrlplane.RegisterRequest {
	return []ctrlplane.RegisterRequest{
		{Name: "mem-a", AI: 0.5},
		{Name: "mem-b", AI: 0.5},
		{Name: "mem-c", AI: 0.5},
		{Name: "comp", AI: 10},
	}
}

// assertTableIRanking checks the reproduced Table I numbers: optimal
// ~254 GFLOPS > even ~140 > node-per-app ~128.
func assertTableIRanking(t *testing.T, resp *ctrlplane.AllocationsResponse, label string) {
	t.Helper()
	if len(resp.Apps) != 4 {
		t.Fatalf("%s: %d apps in allocation, want 4", label, len(resp.Apps))
	}
	if resp.TotalGFLOPS < 250 || resp.TotalGFLOPS > 260 {
		t.Errorf("%s: total = %g GFLOPS, want ~254", label, resp.TotalGFLOPS)
	}
	ref := resp.Reference
	if ref == nil {
		t.Fatalf("%s: no reference baselines", label)
	}
	if ref.EvenGFLOPS < 135 || ref.EvenGFLOPS > 145 {
		t.Errorf("%s: even = %g GFLOPS, want ~140", label, ref.EvenGFLOPS)
	}
	if ref.NodePerAppGFLOPS < 123 || ref.NodePerAppGFLOPS > 133 {
		t.Errorf("%s: node-per-app = %g GFLOPS, want ~128", label, ref.NodePerAppGFLOPS)
	}
	if !(resp.TotalGFLOPS > ref.EvenGFLOPS && ref.EvenGFLOPS > ref.NodePerAppGFLOPS) {
		t.Errorf("%s: ranking broken: %g / %g / %g", label, resp.TotalGFLOPS, ref.EvenGFLOPS, ref.NodePerAppGFLOPS)
	}
}

// TestReplicationStreamAndRedirect: writes land on the leader, stream
// to the follower's registry through /v1/replicate, and the follower
// serves the replicated state on reads while redirecting writes with
// 421 + the leader's URL.
func TestReplicationStreamAndRedirect(t *testing.T) {
	leader, follower := startPair(t, haOpts{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	lc := client.New(leader.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	var ids []string
	for _, req := range tableIRequests() {
		resp, err := lc.Register(ctx, req)
		if err != nil {
			t.Fatalf("register on leader: %v", err)
		}
		ids = append(ids, resp.ID)
	}

	// The follower mirrors the registered apps and serves reads.
	fc := client.New(follower.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	waitFor(t, 5*time.Second, "follower to mirror 4 apps", func() bool {
		apps, err := fc.Apps(ctx)
		return err == nil && len(apps.Apps) == 4
	})
	alloc, err := fc.Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations from follower: %v", err)
	}
	assertTableIRanking(t, alloc, "follower read")

	// Replicated IDs are the leader's IDs, so an app can fail over
	// without changing identity.
	apps, err := fc.Apps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, a := range apps.Apps {
		got[a.ID] = true
	}
	for _, id := range ids {
		if !got[id] {
			t.Errorf("follower is missing replicated app %s", id)
		}
	}

	// Writes on the follower are redirected, not served.
	_, err = fc.Heartbeat(ctx, ctrlplane.HeartbeatRequest{ID: ids[0]})
	if !client.IsNotLeader(err) {
		t.Fatalf("heartbeat on follower: err = %v, want not_leader redirect", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Leader != leader.url() {
		t.Errorf("redirect leader hint = %v, want %s", err, leader.url())
	}

	// Deregisters replicate too (including the journal's evict path).
	if err := lc.Deregister(ctx, ids[3]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "deregister to replicate", func() bool {
		apps, err := fc.Apps(ctx)
		return err == nil && len(apps.Apps) == 3
	})

	// Status reflects the pair's shape.
	st, err := fc.ReplicaStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" || st.Leader != leader.url() || st.Epoch != leader.node.Epoch() {
		t.Errorf("follower status = %+v, want follower of %s at epoch %d", st, leader.url(), leader.node.Epoch())
	}
}

// TestLeaderKillPromotion: killing the leader promotes the follower
// within one lease TTL (plus its campaign stagger), with a higher
// fencing epoch and a bumped generation, and the promoted node accepts
// writes under the replicated IDs without re-registration.
func TestLeaderKillPromotion(t *testing.T) {
	ttl := 500 * time.Millisecond
	leader, follower := startPair(t, haOpts{leaseTTL: ttl})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	lc := client.New(leader.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	reg, err := lc.Register(ctx, ctrlplane.RegisterRequest{Name: "survivor", AI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fc := client.New(follower.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	waitFor(t, 5*time.Second, "replication of the app", func() bool {
		apps, err := fc.Apps(ctx)
		return err == nil && len(apps.Apps) == 1
	})
	epochBefore := follower.node.Epoch()
	genBefore := reg.Generation

	killedAt := time.Now()
	leader.kill()
	waitFor(t, 5*time.Second, "follower promotion", func() bool {
		return follower.node.Role() == replica.RoleLeader
	})
	promotedIn := time.Since(killedAt)
	// The follower's lease was renewed no later than the kill, so the
	// promotion bound is TTL + stagger + a few poll ticks; 2x TTL gives
	// measurement slack while still failing if the lease logic stalls.
	if promotedIn > 2*ttl {
		t.Errorf("promotion took %v, want within one lease TTL (%v) of the kill", promotedIn, ttl)
	}
	if e := follower.node.Epoch(); e <= epochBefore {
		t.Errorf("epoch after promotion = %d, want > %d", e, epochBefore)
	}
	if p := follower.node.Promotions(); p != 1 {
		t.Errorf("promotions = %d, want 1", p)
	}

	// The promoted leader accepts writes under the replicated ID, and
	// its generation is above everything the old leader served.
	hb, err := fc.Heartbeat(ctx, ctrlplane.HeartbeatRequest{ID: reg.ID})
	if err != nil {
		t.Fatalf("heartbeat on promoted leader: %v", err)
	}
	if hb.Generation <= genBefore {
		t.Errorf("generation after failover = %d, want > %d (fencing must stay monotonic)", hb.Generation, genBefore)
	}
}

// TestPartitionFencingAndHeal: a partition isolates the leader; the
// follower promotes with a higher epoch (split brain, tolerated). A
// multi-endpoint client that has seen the new epoch fences the stale
// leader's answers instead of believing them, and on heal the deposed
// leader steps down and rejoins as a follower.
func TestPartitionFencingAndHeal(t *testing.T) {
	// Each node gets its own client-edge partition so either side of
	// the link can be cut independently.
	partA, partB := faultinject.NewPartition(), faultinject.NewPartition()
	lnA, lnB := listenTCP(t, ""), listenTCP(t, "")
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	ttl := 500 * time.Millisecond
	a := startHANode(t, t.TempDir(), lnA, haOpts{
		bootstrap: true, peers: []string{urlB}, leaseTTL: ttl, transport: partA.Transport(nil),
	})
	b := startHANode(t, t.TempDir(), lnB, haOpts{
		peers: []string{urlA}, leaderHint: urlA, leaseTTL: ttl, transport: partB.Transport(nil),
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	lc := client.New(a.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	if _, err := lc.Register(ctx, ctrlplane.RegisterRequest{Name: "fenced", AI: 0.5}); err != nil {
		t.Fatal(err)
	}
	fcB := client.New(b.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	waitFor(t, 5*time.Second, "replication before the partition", func() bool {
		apps, err := fcB.Apps(ctx)
		return err == nil && len(apps.Apps) == 1
	})

	// Cut both directions of the A<->B link. A keeps thinking it leads;
	// B's lease expires and it promotes: split brain.
	partA.Isolate(urlB)
	partB.Isolate(urlA)
	waitFor(t, 5*time.Second, "follower promotion during partition", func() bool {
		return b.node.Role() == replica.RoleLeader
	})
	if a.node.Role() != replica.RoleLeader {
		t.Fatalf("partitioned old leader role = %v, want (stale) leader", a.node.Role())
	}
	if b.node.Epoch() <= a.node.Epoch() {
		t.Fatalf("epochs: new %d vs old %d, want new > old", b.node.Epoch(), a.node.Epoch())
	}

	// A multi-endpoint client that saw the new epoch refuses the stale
	// leader: cut its link to B so only A answers, and the response is
	// fenced — degraded to cache, never a regressed generation.
	cpart := faultinject.NewPartition()
	r, err := client.NewResilientEndpoints(
		[]string{b.url(), a.url()},
		client.Config{
			HTTPClient:  &http.Client{Transport: cpart.Transport(nil)},
			MaxAttempts: 2, BaseBackoff: time.Millisecond, RequestTimeout: 2 * time.Second,
		},
		client.ResilientConfig{BreakerThreshold: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	live, src, err := r.Allocations(ctx)
	if err != nil || src != client.SourceLive {
		t.Fatalf("allocations from new leader: src %v, err %v", src, err)
	}
	if r.Epoch() != b.node.Epoch() {
		t.Fatalf("client epoch watermark = %d, want %d", r.Epoch(), b.node.Epoch())
	}
	cpart.Isolate(b.url())
	fenced, src, err := r.Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations with only the stale leader reachable: %v", err)
	}
	if src == client.SourceLive {
		t.Fatalf("stale leader's answer served live; fencing failed")
	}
	if fenced.Generation < live.Generation {
		t.Errorf("generation regressed through the stale leader: %d -> %d", live.Generation, fenced.Generation)
	}
	cpart.Heal(b.url())
	if partA.Drops(urlB)+partB.Drops(urlA) == 0 {
		t.Error("partition never dropped a request; the test partitioned nothing")
	}

	// Heal the replica link: the deposed leader sees the higher epoch
	// and steps down.
	partA.HealAll()
	partB.HealAll()
	waitFor(t, 5*time.Second, "deposed leader to step down", func() bool {
		return a.node.Role() == replica.RoleFollower && a.node.Epoch() == b.node.Epoch()
	})
	st, err := client.New(a.url(), client.Config{}).ReplicaStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" || st.Leader != b.url() {
		t.Errorf("healed old leader status = %+v, want follower of %s", st, b.url())
	}
}

// stormClient builds a multi-endpoint resilient client whose transport
// injects a seeded fault storm on idempotent paths (register spared — a
// blind retry there would duplicate the app and change the demand mix).
func stormClient(t *testing.T, endpoints []string, seed int64) (*client.Resilient, *faultinject.Injector) {
	t.Helper()
	inj := faultinject.NewInjector(faultinject.Seeded(seed, faultinject.Mix{
		Drop:       0.05,
		Latency:    0.20,
		Truncate:   0.05,
		Err5xx:     0.10,
		MaxLatency: 5 * time.Millisecond,
	}))
	ccfg := client.Config{
		HTTPClient: &http.Client{Transport: &faultinject.Transport{
			Inj:    inj,
			Filter: func(r *http.Request) bool { return r.URL.Path != "/v1/register" },
		}},
		MaxAttempts:    6,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}
	r, err := client.NewResilientEndpoints(endpoints, ccfg, client.ResilientConfig{
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
		Rand:             seededRand(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, inj
}

// seededRand is a deterministic jitter source.
func seededRand(seed int64) func() float64 {
	var mu sync.Mutex
	state := uint64(seed)*2862933555777941757 + 3037000493
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		state = state*2862933555777941757 + 3037000493
		return float64(state>>11) / float64(1<<53)
	}
}

// TestChaosLeaderKillDuringHeartbeatStorm is the acceptance scenario:
// the Table I mix heartbeats both replicas through a fault-injecting
// transport, the leader is killed mid-storm, and afterwards (a) the
// follower was promoted within one lease TTL, (b) no client ever
// observed a regressed generation (epoch fencing), and (c) the
// surviving leader still reproduces the 254/140/128 ranking.
func TestChaosLeaderKillDuringHeartbeatStorm(t *testing.T) {
	ttl := 500 * time.Millisecond
	leader, follower := startPair(t, haOpts{leaseTTL: ttl})
	endpoints := []string{leader.url(), follower.url()}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	reqs := tableIRequests()
	apps := make([]*client.Resilient, len(reqs))
	var inj *faultinject.Injector
	for i, req := range reqs {
		apps[i], inj = stormClient(t, endpoints, int64(4000+i))
		if _, err := apps[i].Register(ctx, req); err != nil {
			t.Fatalf("register %s: %v", req.Name, err)
		}
	}
	waitFor(t, 5*time.Second, "replication of the mix", func() bool {
		apps, err := client.New(follower.url(), client.Config{MaxAttempts: 2, BaseBackoff: time.Millisecond}).Apps(ctx)
		return err == nil && len(apps.Apps) == 4
	})

	// The storm: every app heartbeats on a jittered interval; the
	// heartbeat path is under fault injection the whole time. maxGen
	// tracks the highest generation each client observed; it must never
	// regress, through faults, failover, or the stale window.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, len(apps))
	maxGens := make([]uint64, len(apps))
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(apps[i].NextHeartbeatIn(20 * time.Millisecond)):
				}
				hb, err := apps[i].Heartbeat(ctx, ctrlplane.HeartbeatRequest{Workers: 4})
				if err != nil {
					// The kill window legitimately produces transient
					// failures (both endpoints briefly unusable while the
					// follower has not promoted yet); only a regression is
					// fatal, errors just retry on the next beat.
					continue
				}
				if hb.Generation < maxGens[i] {
					errs <- errGenRegressed(i, maxGens[i], hb.Generation)
					return
				}
				maxGens[i] = hb.Generation
			}
		}(i)
	}

	time.Sleep(300 * time.Millisecond) // let the storm run against the original leader
	killedAt := time.Now()
	leader.kill()
	waitFor(t, 5*time.Second, "promotion mid-storm", func() bool {
		return follower.node.Role() == replica.RoleLeader
	})
	promotedIn := time.Since(killedAt)
	if promotedIn > 2*ttl {
		t.Errorf("promotion took %v, want within one lease TTL (%v) of the kill", promotedIn, ttl)
	}
	time.Sleep(500 * time.Millisecond) // storm continues against the promoted leader
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every client failed over and kept beating the survivor.
	for i := range apps {
		if apps[i].Failovers() == 0 {
			t.Errorf("client %d never failed over despite the leader dying", i)
		}
		if maxGens[i] == 0 {
			t.Errorf("client %d never landed a heartbeat", i)
		}
	}

	// The survivor serves the full mix with the Table I ranking intact,
	// at a generation above everything the dead leader issued.
	r, _ := stormClient(t, []string{follower.url()}, 9999)
	alloc, src, err := r.Allocations(ctx)
	if err != nil || src != client.SourceLive {
		t.Fatalf("allocations from survivor: src %v, err %v", src, err)
	}
	assertTableIRanking(t, alloc, "survivor after failover")
	for i := range maxGens {
		if alloc.Generation < maxGens[i] {
			t.Errorf("survivor generation %d below client %d's watermark %d", alloc.Generation, i, maxGens[i])
		}
	}
	if follower.node.Epoch() < 2 {
		t.Errorf("survivor epoch = %d, want >= 2 after promotion", follower.node.Epoch())
	}

	// The storm must actually have stormed.
	counts := inj.Counts()
	injected := counts[faultinject.KindDrop] + counts[faultinject.KindLatency] +
		counts[faultinject.KindTruncate] + counts[faultinject.Kind5xx]
	if injected == 0 {
		t.Error("fault injector never fired; the chaos test ran without chaos")
	}
}

// errGenRegressed formats a generation-regression failure.
func errGenRegressed(i int, from, to uint64) error {
	return fmt.Errorf("client %d observed a generation regression: %d -> %d (fencing broken)", i, from, to)
}
