package ctrlplane

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ctrlplane/persist"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// ErrUnknownApp is returned for heartbeats or deregistrations of an
// application the registry does not know — typically one already
// evicted for missing its heartbeat deadline.
var ErrUnknownApp = errors.New("ctrlplane: unknown application")

// AppSpec is the performance character an application registers with:
// what the roofline solver needs to place it.
type AppSpec struct {
	Name       string
	AI         float64
	Placement  roofline.Placement
	HomeNode   machine.NodeID
	MaxThreads int // 0: uncapped
}

// appendDemandKey appends the spec's canonical demand key — the form
// the solver caches by. Two apps with equal keys are interchangeable to
// the solver, so the cache key is the sorted multiset of demand keys
// (names excluded on purpose). Append-style so the solver's hot path
// builds keys into a reused buffer without fmt or string concatenation.
func appendDemandKey(b []byte, s *AppSpec) []byte {
	b = append(b, "ai="...)
	b = strconv.AppendFloat(b, s.AI, 'g', -1, 64)
	b = append(b, "|pl="...)
	b = strconv.AppendInt(b, int64(s.Placement), 10)
	b = append(b, "|home="...)
	b = strconv.AppendInt(b, int64(s.HomeNode), 10)
	b = append(b, "|max="...)
	b = strconv.AppendInt(b, int64(s.MaxThreads), 10)
	return b
}

// demandKey is appendDemandKey as a string, for tests and diagnostics.
func (s AppSpec) demandKey() string {
	return string(appendDemandKey(nil, &s))
}

// FittedModel is an online-fitted demand model (internal/adapt) that
// the registry substitutes for an application's declared spec once
// drift is confirmed.
type FittedModel struct {
	AI         float64
	PeakGFLOPS float64
	Confidence float64
	UpdatedAt  time.Time
}

// AppState is one registered application's full record.
type AppState struct {
	ID           string
	Spec         AppSpec
	TTL          time.Duration
	RegisteredAt time.Time
	LastBeat     time.Time
	Beats        uint64
	LastStats    HeartbeatRequest
	// Fitted, when non-nil, is the recalibrated demand model currently
	// replacing the declared Spec in the solver (see EffectiveSpec).
	Fitted *FittedModel
}

// EffectiveSpec is the spec the solver should plan with: the declared
// one, with the AI replaced by the fitted model when one is applied.
// Placement, home node, and the thread cap stay declared — the adaptive
// loop recalibrates demand, it does not reinterpret intent.
func (a *AppState) EffectiveSpec() AppSpec {
	spec := a.Spec
	if a.Fitted != nil && a.Fitted.AI > 0 {
		spec.AI = a.Fitted.AI
	}
	return spec
}

// ObservedAI estimates the arithmetic intensity from the last
// heartbeat's rates (0 when no rates were reported).
func (a *AppState) ObservedAI() float64 {
	if a.LastStats.GBRate <= 0 {
		return 0
	}
	return a.LastStats.GFlopRate / a.LastStats.GBRate
}

// Registry is the concurrency-safe application registry. Every change
// to the live set (register, deregister, eviction) bumps the
// generation, which clients use to watch for reallocations.
type Registry struct {
	mu           sync.Mutex
	apps         map[string]*AppState
	gen          uint64
	seq          uint64
	evictions    uint64
	defaultTTL   time.Duration
	clock        func() time.Time
	store        *persist.Store
	persistFails uint64
	// sweepsOff disables TTL eviction: a replication follower mirrors
	// the leader's evict records instead of running its own sweeps, so
	// the two replicas never disagree about who evicted whom.
	sweepsOff bool
}

// NewRegistry creates a registry. defaultTTL is the heartbeat deadline
// for applications that do not request their own; clock is the time
// source (nil: time.Now), injectable for deterministic tests.
func NewRegistry(defaultTTL time.Duration, clock func() time.Time) *Registry {
	if defaultTTL <= 0 {
		defaultTTL = 15 * time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	return &Registry{
		apps:       map[string]*AppState{},
		defaultTTL: defaultTTL,
		clock:      clock,
	}
}

// AttachStore restores the registry from the store's recovered state
// and installs it so every later mutation is journaled. Restored
// applications get a fresh TTL window (LastBeat = now) — after a daemon
// restart each survivor has one full deadline to resume heartbeating
// before it is evicted. The generation, sequence, and eviction counters
// resume from the persisted values so client-visible generations stay
// monotonic across the restart.
func (r *Registry) AttachStore(st *persist.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := st.Restored()
	now := r.clock()
	for _, rec := range snap.Apps {
		a := recordToState(rec)
		a.LastBeat = now
		r.apps[a.ID] = &a
	}
	if snap.Generation > r.gen {
		r.gen = snap.Generation
	}
	if snap.Seq > r.seq {
		r.seq = snap.Seq
	}
	if snap.Evictions > r.evictions {
		r.evictions = snap.Evictions
	}
	r.store = st
}

// stateToRecord converts to the store's persistence-friendly form.
func stateToRecord(a AppState) persist.AppRecord {
	rec := persist.AppRecord{
		ID:           a.ID,
		Name:         a.Spec.Name,
		AI:           a.Spec.AI,
		Placement:    int(a.Spec.Placement),
		HomeNode:     int(a.Spec.HomeNode),
		MaxThreads:   a.Spec.MaxThreads,
		TTLMillis:    a.TTL.Milliseconds(),
		RegisteredAt: a.RegisteredAt.UnixNano(),
		LastBeat:     a.LastBeat.UnixNano(),
		Beats:        a.Beats,
	}
	if a.Fitted != nil {
		rec.FittedAI = a.Fitted.AI
		rec.FittedPeak = a.Fitted.PeakGFLOPS
		rec.FittedConfidence = a.Fitted.Confidence
		rec.FittedAt = a.Fitted.UpdatedAt.UnixNano()
	}
	return rec
}

func recordToState(rec persist.AppRecord) AppState {
	st := AppState{
		ID: rec.ID,
		Spec: AppSpec{
			Name:       rec.Name,
			AI:         rec.AI,
			Placement:  roofline.Placement(rec.Placement),
			HomeNode:   machine.NodeID(rec.HomeNode),
			MaxThreads: rec.MaxThreads,
		},
		TTL:          time.Duration(rec.TTLMillis) * time.Millisecond,
		RegisteredAt: time.Unix(0, rec.RegisteredAt),
		LastBeat:     time.Unix(0, rec.LastBeat),
		Beats:        rec.Beats,
	}
	if rec.FittedAI > 0 {
		st.Fitted = &FittedModel{
			AI:         rec.FittedAI,
			PeakGFLOPS: rec.FittedPeak,
			Confidence: rec.FittedConfidence,
			UpdatedAt:  time.Unix(0, rec.FittedAt),
		}
	}
	return st
}

// Register adds an application and returns its state and the new
// generation. With a store attached the registration is journaled (and
// fsynced) before it is committed, so an acknowledged ID is never lost
// to a daemon crash; a persistence failure rejects the registration.
func (r *Registry) Register(spec AppSpec, ttl time.Duration) (AppState, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ttl <= 0 {
		ttl = r.defaultTTL
	}
	now := r.clock()
	st := &AppState{
		ID:           fmt.Sprintf("%s-%d", sanitizeID(spec.Name), r.seq+1),
		Spec:         spec,
		TTL:          ttl,
		RegisteredAt: now,
		LastBeat:     now,
	}
	if r.store != nil {
		if err := r.store.AppendRegister(stateToRecord(*st), r.gen+1, r.seq+1); err != nil {
			r.persistFails++
			return AppState{}, 0, fmt.Errorf("persisting registration: %w", err)
		}
	}
	r.seq++
	r.apps[st.ID] = st
	r.gen++
	return *st, r.gen, nil
}

// sanitizeID keeps IDs URL-path- and report-safe regardless of what
// the network supplies as a name.
func sanitizeID(name string) string {
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "app"
	}
	const maxLen = 32
	s := b.String()
	if len(s) > maxLen {
		s = s[:maxLen]
	}
	return s
}

// Heartbeat refreshes an application's liveness deadline and records
// its stats. ErrUnknownApp means the app was evicted or never existed.
func (r *Registry) Heartbeat(hb HeartbeatRequest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.apps[hb.ID]
	if !ok {
		return ErrUnknownApp
	}
	st.LastBeat = r.clock()
	st.Beats++
	st.LastStats = hb
	if r.store != nil {
		// Best-effort: a lost heartbeat record costs at most one re-armed
		// TTL window after a restart, never an acknowledged registration.
		if err := r.store.AppendHeartbeat(st.ID, st.LastBeat.UnixNano(), st.Beats); err != nil {
			r.persistFails++
		}
	}
	return nil
}

// Deregister removes an application; it reports whether it was present.
func (r *Registry) Deregister(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.apps[id]; !ok {
		return false
	}
	delete(r.apps, id)
	r.gen++
	if r.store != nil {
		// Best-effort: if this record is lost the app resurrects on
		// restart and is TTL-evicted one window later — cores are
		// reclaimed either way, just more slowly.
		if err := r.store.AppendDeregister(id, r.gen); err != nil {
			r.persistFails++
		}
	}
	return true
}

// App returns one application's state by ID.
func (r *Registry) App(id string) (AppState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.apps[id]
	if !ok {
		return AppState{}, false
	}
	return *st, true
}

// SetFitted substitutes a fitted demand model for the application's
// declared one. The substitution is journaled (and fsynced) before it
// is committed — a recalibration that changed the allocation must
// survive a crash and, via journal streaming, a leader failover. The
// generation bumps so clients watching for reallocation wake up.
func (r *Registry) SetFitted(id string, f FittedModel) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.apps[id]
	if !ok {
		return 0, ErrUnknownApp
	}
	if r.store != nil {
		rec := &persist.FittedRecord{
			AI:         f.AI,
			PeakGFLOPS: f.PeakGFLOPS,
			Confidence: f.Confidence,
			At:         f.UpdatedAt.UnixNano(),
		}
		if err := r.store.AppendFitted(id, rec, r.gen+1); err != nil {
			r.persistFails++
			return 0, fmt.Errorf("persisting fitted model: %w", err)
		}
	}
	// Fresh pointer, never an in-place mutation: snapshots taken by the
	// serve path share the previous pointer concurrently.
	fm := f
	st.Fitted = &fm
	r.gen++
	return r.gen, nil
}

// ClearFitted removes an applied fitted model, returning the app to its
// declared spec. No-op (and no generation bump) when none is applied.
func (r *Registry) ClearFitted(id string) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.apps[id]
	if !ok {
		return 0, ErrUnknownApp
	}
	if st.Fitted == nil {
		return r.gen, nil
	}
	if r.store != nil {
		if err := r.store.AppendFitted(id, nil, r.gen+1); err != nil {
			r.persistFails++
			return 0, fmt.Errorf("persisting fitted-model clear: %w", err)
		}
	}
	st.Fitted = nil
	r.gen++
	return r.gen, nil
}

// Sweep evicts every application whose last heartbeat is older than its
// TTL and returns the evicted IDs. Evictions bump the generation, so
// the next allocation read reflects the reclaimed cores.
func (r *Registry) Sweep() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sweepsOff {
		return nil
	}
	now := r.clock()
	var evicted []string
	for id, st := range r.apps {
		if now.Sub(st.LastBeat) > st.TTL {
			delete(r.apps, id)
			evicted = append(evicted, id)
		}
	}
	if len(evicted) > 0 {
		r.evictions += uint64(len(evicted))
		r.gen++
		sort.Strings(evicted)
		if r.store != nil {
			if err := r.store.AppendEvict(evicted, r.gen, r.evictions); err != nil {
				r.persistFails++
			}
		}
	}
	return evicted
}

// Snapshot returns the live applications (sorted by ID for determinism)
// and the current generation.
func (r *Registry) Snapshot() ([]AppState, uint64) {
	return r.SnapshotInto(nil)
}

// SnapshotInto is Snapshot appending into a caller-owned buffer
// (typically buf[:0] of a pooled slice), so steady-state serve paths
// take their registry view without allocating. The sort is an insertion
// sort: no allocation, and the map iteration feeds it near-random order
// of a small set.
func (r *Registry) SnapshotInto(buf []AppState) ([]AppState, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := buf
	for _, st := range r.apps {
		out = append(out, *st)
	}
	for a := len(buf) + 1; a < len(out); a++ {
		for b := a; b > len(buf) && out[b].ID < out[b-1].ID; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out, r.gen
}

// Len returns the number of live applications.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.apps)
}

// Generation returns the current generation counter.
func (r *Registry) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Evictions returns the total number of liveness evictions.
func (r *Registry) Evictions() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}

// PersistFailures counts best-effort journal appends that failed (a
// registration-append failure instead rejects the registration and is
// also counted here).
func (r *Registry) PersistFailures() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.persistFails
}

// SetSweepsEnabled turns TTL eviction on or off. A replication follower
// disables sweeps (it mirrors the leader's evict records instead); a
// follower promoted to leader re-enables them.
func (r *Registry) SetSweepsEnabled(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepsOff = !on
}

// RearmTTLs resets every application's liveness deadline to a full TTL
// from now. A promoted follower calls this so replication lag in
// (buffered, best-effort) heartbeat records does not read as a fleet of
// missed deadlines the moment sweeping resumes.
func (r *Registry) RearmTTLs() {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	for _, st := range r.apps {
		st.LastBeat = now
	}
}

// Promote marks a leadership change: it bumps the generation (clients
// re-read allocations under the new leader) and journals a promote
// record carrying the new fencing epoch, so neither counter can regress
// across a restart. Returns the new generation.
func (r *Registry) Promote(epoch uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	if r.store != nil {
		if err := r.store.AppendPromote(r.gen, epoch); err != nil {
			r.persistFails++
		}
	}
	return r.gen
}

// ApplyRecord folds one replicated journal record from the leader into
// the registry, keeping the leader's ID/generation/sequence numbering,
// and mirrors it into this replica's own store. This is the follower
// half of journal streaming: the same record stream that makes the
// leader durable makes the follower a replica.
func (r *Registry) ApplyRecord(rec persist.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch rec.Op {
	case persist.OpRegister:
		if rec.App == nil {
			return errors.New("ctrlplane: replicated register without app record")
		}
		a := recordToState(*rec.App)
		r.apps[a.ID] = &a
		r.gen, r.seq = rec.Gen, rec.Seq
	case persist.OpHeartbeat:
		if st, ok := r.apps[rec.ID]; ok {
			st.LastBeat = time.Unix(0, rec.Beat)
			st.Beats = rec.Beats
		}
	case persist.OpDeregister:
		delete(r.apps, rec.ID)
		r.gen = rec.Gen
	case persist.OpEvict:
		for _, id := range rec.IDs {
			delete(r.apps, id)
		}
		r.gen = rec.Gen
		r.evictions = rec.Evictions
	case persist.OpPromote:
		r.gen = rec.Gen
	case persist.OpFitted:
		if st, ok := r.apps[rec.ID]; ok {
			if rec.Fitted != nil {
				st.Fitted = &FittedModel{
					AI:         rec.Fitted.AI,
					PeakGFLOPS: rec.Fitted.PeakGFLOPS,
					Confidence: rec.Fitted.Confidence,
					UpdatedAt:  time.Unix(0, rec.Fitted.At),
				}
			} else {
				st.Fitted = nil
			}
		}
		r.gen = rec.Gen
	default:
		return fmt.Errorf("ctrlplane: unknown replicated op %q", rec.Op)
	}
	if r.store != nil {
		if err := r.store.AppendRecord(rec); err != nil {
			r.persistFails++
		}
	}
	return nil
}

// ResetFromSnapshot replaces the registry's entire state with a
// leader-shipped snapshot (and resets this replica's store to match).
// Used when a follower is too far behind the leader's journal tail for
// a suffix to exist — first sync, or rejoin after a partition.
func (r *Registry) ResetFromSnapshot(snap persist.Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.apps = make(map[string]*AppState, len(snap.Apps))
	for _, rec := range snap.Apps {
		a := recordToState(rec)
		r.apps[a.ID] = &a
	}
	r.gen, r.seq, r.evictions = snap.Generation, snap.Seq, snap.Evictions
	if r.store != nil {
		if err := r.store.ResetTo(snap); err != nil {
			r.persistFails++
			return err
		}
	}
	return nil
}

// PersistSnapshot renders the current registry state in the persist
// wire form — what a leader ships to a follower needing a full sync.
func (r *Registry) PersistSnapshot() persist.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := persist.Snapshot{
		Generation: r.gen,
		Seq:        r.seq,
		Evictions:  r.evictions,
		Apps:       make([]persist.AppRecord, 0, len(r.apps)),
	}
	for _, st := range r.apps {
		snap.Apps = append(snap.Apps, stateToRecord(*st))
	}
	sort.Slice(snap.Apps, func(i, j int) bool { return snap.Apps[i].ID < snap.Apps[j].ID })
	return snap
}
