package ctrlplane

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/roofline"
)

// ErrUnknownApp is returned for heartbeats or deregistrations of an
// application the registry does not know — typically one already
// evicted for missing its heartbeat deadline.
var ErrUnknownApp = errors.New("ctrlplane: unknown application")

// AppSpec is the performance character an application registers with:
// what the roofline solver needs to place it.
type AppSpec struct {
	Name       string
	AI         float64
	Placement  roofline.Placement
	HomeNode   machine.NodeID
	MaxThreads int // 0: uncapped
}

// demandKey canonicalizes the spec for solver-cache lookups. Two apps
// with equal keys are interchangeable to the solver, so the cache key
// is the sorted multiset of demand keys (names excluded on purpose).
func (s AppSpec) demandKey() string {
	return fmt.Sprintf("ai=%g|pl=%d|home=%d|max=%d", s.AI, s.Placement, s.HomeNode, s.MaxThreads)
}

// AppState is one registered application's full record.
type AppState struct {
	ID           string
	Spec         AppSpec
	TTL          time.Duration
	RegisteredAt time.Time
	LastBeat     time.Time
	Beats        uint64
	LastStats    HeartbeatRequest
}

// ObservedAI estimates the arithmetic intensity from the last
// heartbeat's rates (0 when no rates were reported).
func (a *AppState) ObservedAI() float64 {
	if a.LastStats.GBRate <= 0 {
		return 0
	}
	return a.LastStats.GFlopRate / a.LastStats.GBRate
}

// Registry is the concurrency-safe application registry. Every change
// to the live set (register, deregister, eviction) bumps the
// generation, which clients use to watch for reallocations.
type Registry struct {
	mu         sync.Mutex
	apps       map[string]*AppState
	gen        uint64
	seq        uint64
	evictions  uint64
	defaultTTL time.Duration
	clock      func() time.Time
}

// NewRegistry creates a registry. defaultTTL is the heartbeat deadline
// for applications that do not request their own; clock is the time
// source (nil: time.Now), injectable for deterministic tests.
func NewRegistry(defaultTTL time.Duration, clock func() time.Time) *Registry {
	if defaultTTL <= 0 {
		defaultTTL = 15 * time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	return &Registry{
		apps:       map[string]*AppState{},
		defaultTTL: defaultTTL,
		clock:      clock,
	}
}

// Register adds an application and returns its state and the new
// generation.
func (r *Registry) Register(spec AppSpec, ttl time.Duration) (AppState, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ttl <= 0 {
		ttl = r.defaultTTL
	}
	r.seq++
	now := r.clock()
	st := &AppState{
		ID:           fmt.Sprintf("%s-%d", sanitizeID(spec.Name), r.seq),
		Spec:         spec,
		TTL:          ttl,
		RegisteredAt: now,
		LastBeat:     now,
	}
	r.apps[st.ID] = st
	r.gen++
	return *st, r.gen
}

// sanitizeID keeps IDs URL-path- and report-safe regardless of what
// the network supplies as a name.
func sanitizeID(name string) string {
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "app"
	}
	const maxLen = 32
	s := b.String()
	if len(s) > maxLen {
		s = s[:maxLen]
	}
	return s
}

// Heartbeat refreshes an application's liveness deadline and records
// its stats. ErrUnknownApp means the app was evicted or never existed.
func (r *Registry) Heartbeat(hb HeartbeatRequest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.apps[hb.ID]
	if !ok {
		return ErrUnknownApp
	}
	st.LastBeat = r.clock()
	st.Beats++
	st.LastStats = hb
	return nil
}

// Deregister removes an application; it reports whether it was present.
func (r *Registry) Deregister(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.apps[id]; !ok {
		return false
	}
	delete(r.apps, id)
	r.gen++
	return true
}

// Sweep evicts every application whose last heartbeat is older than its
// TTL and returns the evicted IDs. Evictions bump the generation, so
// the next allocation read reflects the reclaimed cores.
func (r *Registry) Sweep() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	var evicted []string
	for id, st := range r.apps {
		if now.Sub(st.LastBeat) > st.TTL {
			delete(r.apps, id)
			evicted = append(evicted, id)
		}
	}
	if len(evicted) > 0 {
		r.evictions += uint64(len(evicted))
		r.gen++
		sort.Strings(evicted)
	}
	return evicted
}

// Snapshot returns the live applications (sorted by ID for determinism)
// and the current generation.
func (r *Registry) Snapshot() ([]AppState, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AppState, 0, len(r.apps))
	for _, st := range r.apps {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, r.gen
}

// Len returns the number of live applications.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.apps)
}

// Generation returns the current generation counter.
func (r *Registry) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Evictions returns the total number of liveness evictions.
func (r *Registry) Evictions() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}
