package ctrlplane

import (
	"testing"

	"repro/internal/machine"
)

// tableIMix is the paper's Table I demand set: three memory-bound apps
// (AI 0.5) and one compute-bound (AI 10).
func tableIMix() []AppState {
	return []AppState{
		{ID: "mem-a-1", Spec: AppSpec{Name: "mem-a", AI: 0.5}},
		{ID: "mem-b-2", Spec: AppSpec{Name: "mem-b", AI: 0.5}},
		{ID: "mem-c-3", Spec: AppSpec{Name: "mem-c", AI: 0.5}},
		{ID: "comp-4", Spec: AppSpec{Name: "comp", AI: 10}},
	}
}

// BenchmarkAllocateCold measures the full roofline solve: every
// iteration uses a fresh solver, so the exhaustive per-node enumeration
// runs each time. Compare with BenchmarkAllocateCached.
func BenchmarkAllocateCold(b *testing.B) {
	m := machine.PaperModel()
	apps := tableIMix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewSolver(PolicyRoofline)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(m, apps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocateCached measures the steady-state serve path: the
// solver has seen the demand mix, so every request is a cache hit plus
// the per-app slot mapping.
func BenchmarkAllocateCached(b *testing.B) {
	m := machine.PaperModel()
	apps := tableIMix()
	s, err := NewSolver(PolicyRoofline)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Solve(m, apps); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := s.Solve(m, apps)
		if err != nil {
			b.Fatal(err)
		}
		if !sol.FromCache {
			b.Fatal("cache miss in the cached benchmark")
		}
	}
}
