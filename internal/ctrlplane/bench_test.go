package ctrlplane

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/roofline"
)

// tableIMix is the paper's Table I demand set: three memory-bound apps
// (AI 0.5) and one compute-bound (AI 10).
func tableIMix() []AppState {
	return []AppState{
		{ID: "mem-a-1", Spec: AppSpec{Name: "mem-a", AI: 0.5}},
		{ID: "mem-b-2", Spec: AppSpec{Name: "mem-b", AI: 0.5}},
		{ID: "mem-c-3", Spec: AppSpec{Name: "mem-c", AI: 0.5}},
		{ID: "comp-4", Spec: AppSpec{Name: "comp", AI: 10}},
	}
}

// BenchmarkAllocateCold measures the full roofline solve: every
// iteration uses a fresh solver, so the exhaustive per-node enumeration
// runs each time. Compare with BenchmarkAllocateCached.
func BenchmarkAllocateCold(b *testing.B) {
	m := machine.PaperModel()
	apps := tableIMix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewSolver(PolicyRoofline)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(m, apps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocateCold8Apps is the cold solve at the ISSUE's scale
// target: eight demand slots on the calibrated 4x20-core topology.
func BenchmarkAllocateCold8Apps(b *testing.B) {
	m := machine.SkylakeQuad()
	apps := eightAppStates()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewSolver(PolicyRoofline)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(m, apps); err != nil {
			b.Fatal(err)
		}
	}
}

// eightAppStates mirrors the roofline package's eight-app benchmark mix
// as registered control-plane applications.
func eightAppStates() []AppState {
	return []AppState{
		{ID: "stream0-1", Spec: AppSpec{Name: "stream0", AI: 1.0 / 32}},
		{ID: "stream1-2", Spec: AppSpec{Name: "stream1", AI: 1.0 / 32}},
		{ID: "stream2-3", Spec: AppSpec{Name: "stream2", AI: 1.0 / 32}},
		{ID: "dgemm0-4", Spec: AppSpec{Name: "dgemm0", AI: 10}},
		{ID: "dgemm1-5", Spec: AppSpec{Name: "dgemm1", AI: 10}},
		{ID: "mixed0-6", Spec: AppSpec{Name: "mixed0", AI: 1}},
		{ID: "mixed1-7", Spec: AppSpec{Name: "mixed1", AI: 1}},
		{ID: "bad0-8", Spec: AppSpec{Name: "bad0", AI: 1.0 / 16, Placement: roofline.NUMABad, HomeNode: 0}},
	}
}

// BenchmarkAllocateCached measures the steady-state serve path: the
// solver has seen the demand mix, so every request is a cache hit plus
// the per-app slot mapping, into a reused Solution — the allocation-free
// path the server's pooled scratch rides.
func BenchmarkAllocateCached(b *testing.B) {
	m := machine.PaperModel()
	apps := tableIMix()
	s, err := NewSolver(PolicyRoofline)
	if err != nil {
		b.Fatal(err)
	}
	sol := &Solution{}
	if err := s.SolveInto(sol, m, apps); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SolveInto(sol, m, apps); err != nil {
			b.Fatal(err)
		}
		if !sol.FromCache {
			b.Fatal("cache miss in the cached benchmark")
		}
	}
}
