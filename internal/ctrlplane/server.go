package ctrlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/ctrlplane/persist"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/roofline"
	"repro/internal/trace"
)

// ServerConfig tunes the control-plane server.
type ServerConfig struct {
	// Machine is the topology allocations are computed over. Required.
	Machine *machine.Machine
	// Policy selects the solver (PolicyRoofline, default, or
	// PolicyFairShare).
	Policy string
	// DefaultTTL is the heartbeat deadline for apps that do not request
	// their own (default 15s).
	DefaultTTL time.Duration
	// SweepInterval is the janitor period for liveness eviction
	// (default DefaultTTL/4). The janitor runs only between Start and
	// Close; read endpoints also sweep lazily, so allocations never
	// include an app past its deadline.
	SweepInterval time.Duration
	// Clock is the time source (nil: time.Now), injectable for tests.
	Clock func() time.Time
	// Store, when set, makes the registry crash-durable: the recovered
	// state is restored into the registry (TTLs re-armed, generation
	// resumed) and every later mutation is journaled. The caller owns
	// the store's lifetime and must Close it after the server.
	Store *persist.Store
	// MaxInFlight bounds concurrently served requests per endpoint;
	// excess requests are shed with 503 + Retry-After (and counted in
	// /metricsz) instead of queueing. 0: unbounded.
	MaxInFlight int
	// Recalibrate enables the adaptive loop (internal/adapt): telemetry
	// ingest on POST /v1/report, online refitting of each app's demand
	// model, and fitted-model substitution into the solver on confirmed
	// drift. Off by default — without it /v1/report is rejected and the
	// declared models are authoritative.
	Recalibrate bool
	// Adapt tunes the adaptive loop (zero fields take the documented
	// adapt defaults). Ignored unless Recalibrate.
	Adapt adapt.Config
}

// Server is the allocation control plane. Create with NewServer, mount
// Handler on any http.Server, and call Start/Close around its lifetime
// to run the eviction janitor.
type Server struct {
	cfg    ServerConfig
	reg    *Registry
	solver *Solver
	adapt  *adapt.Store // nil unless cfg.Recalibrate
	mux    *http.ServeMux
	start  time.Time

	epMu sync.Mutex
	eps  map[string]*endpointStats

	trMu  sync.Mutex
	tr    *trace.Trace
	trSeq atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// serve holds pooled per-request scratch (registry snapshot,
	// solution, response allocation) so the steady-state heartbeat →
	// allocation path does not allocate in the solver or serve layers.
	serve sync.Pool

	restoredApps int
}

// serveScratch is one request's reusable serve-path memory.
type serveScratch struct {
	apps  []AppState
	sol   Solution
	alloc AppAllocation
}

// endpointStats meters one endpoint: request count, error count, and a
// latency series whose Stats() provide the quantiles for /metricsz.
type endpointStats struct {
	mu     sync.Mutex
	count  uint64
	errors uint64
	lat    *metrics.Series
	shed   *Shedder
}

func (e *endpointStats) record(d time.Duration, isErr bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Sample index as the series time keeps appends monotonic under
	// concurrency (wall clocks may tie or regress between goroutines).
	e.lat.Add(float64(e.count), d.Seconds()*1e3)
	e.count++
	if isErr {
		e.errors++
	}
}

func (e *endpointStats) view() EndpointMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.lat.Stats()
	return EndpointMetrics{
		Count:  e.count,
		Errors: e.errors,
		P50Ms:  st.P50,
		P95Ms:  st.P95,
		MaxMs:  st.Max,
		Shed:   e.shed.Shed(),
	}
}

// NewServer validates the configuration and builds the server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Machine == nil {
		return nil, errors.New("ctrlplane: no machine configured")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyRoofline
	}
	solver, err := NewSolver(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = 15 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.DefaultTTL / 4
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Server{
		cfg:    cfg,
		reg:    NewRegistry(cfg.DefaultTTL, cfg.Clock),
		solver: solver,
		mux:    http.NewServeMux(),
		start:  cfg.Clock(),
		eps:    map[string]*endpointStats{},
		tr:     trace.New(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.serve.New = func() any { return &serveScratch{} }
	if cfg.Store != nil {
		s.reg.AttachStore(cfg.Store)
		s.restoredApps = len(cfg.Store.Restored().Apps)
	}
	if cfg.Recalibrate {
		s.adapt = adapt.NewStore(cfg.Adapt)
	}
	s.mux.HandleFunc("POST /v1/register", s.instrument("register", s.handleRegister))
	s.mux.HandleFunc("POST /v1/heartbeat", s.instrument("heartbeat", s.handleHeartbeat))
	s.mux.HandleFunc("POST /v1/report", s.instrument("report", s.handleReport))
	s.mux.HandleFunc("DELETE /v1/apps/{id}", s.instrument("deregister", s.handleDeregister))
	s.mux.HandleFunc("GET /v1/apps", s.instrument("apps", s.handleApps))
	s.mux.HandleFunc("GET /v1/drift", s.instrument("drift", s.handleDrift))
	s.mux.HandleFunc("GET /v1/allocations", s.instrument("allocations", s.handleAllocations))
	s.mux.HandleFunc("GET /v1/machine", s.instrument("machine", s.handleMachine))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metricsz", s.instrument("metricsz", s.handleMetricsz))
	s.mux.HandleFunc("GET /tracez", s.instrument("tracez", s.handleTracez))
	return s, nil
}

// Handler returns the HTTP handler serving the control-plane API.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the application registry (for embedding and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Store exposes the crash-recovery store (nil when not configured);
// the HA replica layer journals and streams through it.
func (s *Server) Store() *persist.Store { return s.cfg.Store }

// Machine exposes the configured topology.
func (s *Server) Machine() *machine.Machine { return s.cfg.Machine }

// Start launches the background eviction janitor.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.SweepInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sweep()
			}
		}
	}()
}

// sweep runs a TTL eviction pass and drops the evicted applications'
// telemetry trackers with it.
func (s *Server) sweep() {
	evicted := s.reg.Sweep()
	if s.adapt != nil && len(evicted) > 0 {
		s.adapt.Remove(evicted...)
	}
}

// Close stops the janitor and waits for it to exit. Safe to call
// multiple times, with or without a prior Start.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request metering and a trace span
// (one lane per request; pid = endpoint name).
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := &endpointStats{
		lat:  metrics.NewSeries(name + ".latency_ms"),
		shed: NewShedder(s.cfg.MaxInFlight),
	}
	s.epMu.Lock()
	s.eps[name] = ep
	s.epMu.Unlock()
	return func(w http.ResponseWriter, r *http.Request) {
		// Load shedding runs before metering: a refusal is a constant-
		// time header write and should not pollute the latency series.
		if !ep.shed.Acquire() {
			ep.shed.refuse(w)
			return
		}
		defer ep.shed.Release()
		t0 := s.cfg.Clock()
		// Each request gets its own trace lane; past maxTraceSpans the
		// span is dropped so a long-lived daemon's trace stays bounded.
		lane := int(s.trSeq.Add(1))
		traced := lane <= maxTraceSpans
		if traced {
			s.trMu.Lock()
			s.tr.Begin(r.Method+" "+r.URL.Path, name, lane, t0.Sub(s.start).Seconds())
			s.trMu.Unlock()
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)

		t1 := s.cfg.Clock()
		if traced {
			s.trMu.Lock()
			s.tr.End(name, lane, t1.Sub(s.start).Seconds())
			s.trMu.Unlock()
		}
		ep.record(t1.Sub(t0), sw.status >= 400)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeErrorCode is writeError with a stable machine-readable code so
// clients can branch on the cause without string-matching the message.
func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// maxBodyBytes bounds request bodies; allocation requests are tiny.
const maxBodyBytes = 1 << 20

// maxTraceSpans bounds the /tracez buffer.
const maxTraceSpans = 4096

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// parsePlacement maps the wire placement string to the model's enum.
func parsePlacement(s string) (roofline.Placement, error) {
	switch s {
	case "", PlacementPerfect:
		return roofline.NUMAPerfect, nil
	case PlacementBad:
		return roofline.NUMABad, nil
	default:
		return 0, fmt.Errorf("unknown placement %q (want %q or %q)", s, PlacementPerfect, PlacementBad)
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		req.Name = "app"
	}
	if req.AI <= 0 {
		writeError(w, http.StatusBadRequest, "ai must be > 0, got %g", req.AI)
		return
	}
	pl, err := parsePlacement(req.Placement)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if pl == roofline.NUMABad && (req.HomeNode < 0 || req.HomeNode >= s.cfg.Machine.NumNodes()) {
		writeError(w, http.StatusBadRequest, "home_node %d out of range (machine has %d nodes)", req.HomeNode, s.cfg.Machine.NumNodes())
		return
	}
	if req.MaxThreads < 0 {
		writeError(w, http.StatusBadRequest, "max_threads must be >= 0, got %d", req.MaxThreads)
		return
	}
	if req.TTLMillis < 0 {
		writeError(w, http.StatusBadRequest, "ttl_ms must be >= 0, got %d", req.TTLMillis)
		return
	}
	st, gen, err := s.reg.Register(AppSpec{
		Name:       req.Name,
		AI:         req.AI,
		Placement:  pl,
		HomeNode:   machine.NodeID(req.HomeNode),
		MaxThreads: req.MaxThreads,
	}, time.Duration(req.TTLMillis)*time.Millisecond)
	if err != nil {
		// Durability is unavailable; 503 invites a retry once the state
		// dir recovers rather than handing out an unpersisted ID.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	sc := s.serve.Get().(*serveScratch)
	defer s.serve.Put(sc)
	alloc, err := s.allocationInto(sc, st.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "solving allocation: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		ID:         st.ID,
		Generation: gen,
		TTLMillis:  st.TTL.Milliseconds(),
		Allocation: alloc,
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.reg.Heartbeat(req); err != nil {
		writeErrorCode(w, http.StatusNotFound, ErrCodeUnknownApp, "%s: %v (evicted after missing its heartbeat deadline, or never registered)", req.ID, err)
		return
	}
	sc := s.serve.Get().(*serveScratch)
	defer s.serve.Put(sc)
	alloc, err := s.allocationInto(sc, req.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "solving allocation: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Generation: s.reg.Generation(), Allocation: alloc})
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.Deregister(id) {
		writeErrorCode(w, http.StatusNotFound, ErrCodeUnknownApp, "%s: %v", id, ErrUnknownApp)
		return
	}
	if s.adapt != nil {
		s.adapt.Remove(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	s.sweep()
	apps, gen := s.reg.Snapshot()
	now := s.cfg.Clock()
	resp := AppsResponse{Generation: gen, Apps: make([]AppView, len(apps))}
	for i, a := range apps {
		resp.Apps[i] = AppView{
			ID:         a.ID,
			Name:       a.Spec.Name,
			AI:         a.Spec.AI,
			Placement:  a.Spec.Placement.String(),
			HomeNode:   int(a.Spec.HomeNode),
			MaxThreads: a.Spec.MaxThreads,
			TTLMillis:  a.TTL.Milliseconds(),
			AgeMillis:  now.Sub(a.RegisteredAt).Milliseconds(),
			IdleMillis: now.Sub(a.LastBeat).Milliseconds(),
			Beats:      a.Beats,
			ObservedAI: a.ObservedAI(),
		}
		if a.Fitted != nil {
			resp.Apps[i].FittedAI = a.Fitted.AI
			resp.Apps[i].Drifted = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAllocations(w http.ResponseWriter, r *http.Request) {
	s.sweep()
	resp, err := s.Allocations()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "solving allocation: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Allocations computes the current machine-wide allocation table (also
// used by embedders that skip HTTP).
func (s *Server) Allocations() (*AllocationsResponse, error) {
	apps, gen := s.reg.Snapshot()
	sol, err := s.solver.Solve(s.cfg.Machine, apps)
	if err != nil {
		return nil, err
	}
	resp := &AllocationsResponse{
		Generation:  gen,
		Machine:     s.cfg.Machine.Name,
		Policy:      s.solver.Policy(),
		Apps:        make([]AppAllocation, len(sol.PerApp)),
		TotalGFLOPS: sol.TotalGFLOPS,
		CacheHit:    sol.FromCache,
	}
	for i, a := range sol.PerApp {
		resp.Apps[i] = appAllocation(a)
	}
	if sol.EvenGFLOPS > 0 || sol.NodePerAppGFLOPS > 0 {
		resp.Reference = &ReferenceAllocations{
			EvenGFLOPS:       sol.EvenGFLOPS,
			NodePerAppGFLOPS: sol.NodePerAppGFLOPS,
		}
	}
	return resp, nil
}

func appAllocation(a AppSolution) AppAllocation {
	threads := 0
	for _, c := range a.PerNode {
		threads += c
	}
	return AppAllocation{
		ID:              a.ID,
		Name:            a.Name,
		PerNode:         a.PerNode,
		Threads:         threads,
		PredictedGFLOPS: a.GFLOPS,
	}
}

// allocationInto solves for the live set and copies one app's slice
// into the scratch's response allocation. The returned pointer aliases
// sc and is only valid until sc goes back to the pool.
func (s *Server) allocationInto(sc *serveScratch, id string) (*AppAllocation, error) {
	sc.apps, _ = s.reg.SnapshotInto(sc.apps[:0])
	if err := s.solver.SolveInto(&sc.sol, s.cfg.Machine, sc.apps); err != nil {
		return nil, err
	}
	for i := range sc.sol.PerApp {
		a := &sc.sol.PerApp[i]
		if a.ID != id {
			continue
		}
		threads := 0
		for _, c := range a.PerNode {
			threads += c
		}
		sc.alloc.ID = a.ID
		sc.alloc.Name = a.Name
		sc.alloc.PerNode = append(sc.alloc.PerNode[:0], a.PerNode...)
		sc.alloc.Threads = threads
		sc.alloc.PredictedGFLOPS = a.GFLOPS
		return &sc.alloc, nil
	}
	return nil, nil // evicted between registration and solve
}

// handleReport ingests an application's telemetry samples into the
// adaptive loop and applies its verdict: on confirmed drift the fitted
// model is substituted for the declared one (journaled, generation
// bump, fresh solve on the next allocation read); on confirmed return
// to declared behaviour the substitution is cleared.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if s.adapt == nil {
		writeError(w, http.StatusNotFound, "adaptive recalibration disabled (start coopd with -recalibrate)")
		return
	}
	var req ReportRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, "missing id")
		return
	}
	if len(req.Samples) == 0 {
		writeError(w, http.StatusBadRequest, "no samples")
		return
	}
	st, ok := s.reg.App(req.ID)
	if !ok {
		writeErrorCode(w, http.StatusNotFound, ErrCodeUnknownApp, "%s: %v", req.ID, ErrUnknownApp)
		return
	}
	appliedAI := 0.0
	if st.Fitted != nil {
		appliedAI = st.Fitted.AI
	}
	samples := make([]adapt.Sample, len(req.Samples))
	for i, sm := range req.Samples {
		samples[i] = adapt.Sample{GFLOPS: sm.GFLOPS, GBps: sm.GBps, Threads: sm.Threads}
	}
	out := s.adapt.Report(req.ID, st.Spec.AI, appliedAI, samples)
	switch out.Action {
	case adapt.ActionSet:
		_, err := s.reg.SetFitted(req.ID, FittedModel{
			AI:         out.FittedAI,
			PeakGFLOPS: out.PeakPerThread,
			Confidence: out.Confidence,
			UpdatedAt:  s.cfg.Clock(),
		})
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "applying fitted model: %v", err)
			return
		}
		appliedAI = out.FittedAI
	case adapt.ActionClear:
		if _, err := s.reg.ClearFitted(req.ID); err != nil {
			writeError(w, http.StatusServiceUnavailable, "clearing fitted model: %v", err)
			return
		}
		appliedAI = 0
	}
	writeJSON(w, http.StatusOK, ReportResponse{
		Generation: s.reg.Generation(),
		State:      out.State.String(),
		FittedAI:   out.FittedAI,
		Confidence: out.Confidence,
		RelErr:     out.RelErr,
		Drifted:    appliedAI > 0,
	})
}

// handleDrift reports the adaptive loop's view of every tracked
// application, joined with the registry's applied fitted models (an app
// can carry a replicated fitted model without local telemetry right
// after a leader failover — it shows here as applied until reporters
// re-establish its tracker).
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if s.adapt == nil {
		writeJSON(w, http.StatusOK, DriftResponse{Enabled: false, Generation: s.reg.Generation()})
		return
	}
	apps, gen := s.reg.Snapshot()
	byID := make(map[string]*AppState, len(apps))
	for i := range apps {
		byID[apps[i].ID] = &apps[i]
	}
	m := s.adapt.Metrics()
	resp := DriftResponse{
		Enabled:      true,
		Generation:   gen,
		Threshold:    s.adapt.Config().DriftThreshold,
		Confirmed:    m.Confirmed,
		Cleared:      m.Cleared,
		Refits:       m.Refits,
		PhaseChanges: m.PhaseChanges,
	}
	seen := map[string]bool{}
	for _, v := range s.adapt.Views() {
		st, ok := byID[v.ID]
		if !ok {
			continue // tracker for an app evicted this instant
		}
		seen[v.ID] = true
		av := DriftAppView{
			ID:         v.ID,
			Name:       st.Spec.Name,
			State:      v.State.String(),
			DeclaredAI: st.Spec.AI,
			FittedAI:   v.FittedAI,
			Confidence: v.Confidence,
			RelErrPct:  v.RelErr * 100,
			Samples:    v.Samples,
			Windows:    v.Windows,
			Resolves:   v.Resolves,
		}
		if st.Fitted != nil {
			av.Applied = true
			av.AppliedAI = st.Fitted.AI
		}
		resp.Apps = append(resp.Apps, av)
	}
	for i := range apps {
		st := &apps[i]
		if st.Fitted == nil || seen[st.ID] {
			continue
		}
		resp.Apps = append(resp.Apps, DriftAppView{
			ID:         st.ID,
			Name:       st.Spec.Name,
			State:      adapt.Drifted.String(),
			DeclaredAI: st.Spec.AI,
			FittedAI:   st.Fitted.AI,
			Confidence: st.Fitted.Confidence,
			Applied:    true,
			AppliedAI:  st.Fitted.AI,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMachine serves the topology so clients can cache it for local
// fallback solves during a daemon outage.
func (s *Server) handleMachine(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MachineResponse{
		Machine:    s.cfg.Machine,
		Policy:     s.solver.Policy(),
		Generation: s.reg.Generation(),
	})
}

// RestoredApps reports how many applications were recovered from the
// state dir at construction (0 without a store).
func (s *Server) RestoredApps() int { return s.restoredApps }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Machine:       s.cfg.Machine.Name,
		UptimeSeconds: s.cfg.Clock().Sub(s.start).Seconds(),
		Apps:          s.reg.Len(),
		Generation:    s.reg.Generation(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{
		UptimeSeconds: s.cfg.Clock().Sub(s.start).Seconds(),
		Apps:          s.reg.Len(),
		Generation:    s.reg.Generation(),
		Evictions:     s.reg.Evictions(),
		Solver:        s.solver.Metrics(),
		Endpoints:     map[string]EndpointMetrics{},
	}
	if s.cfg.Store != nil {
		resp.Persist = &PersistMetrics{
			Enabled:      true,
			RestoredApps: s.restoredApps,
			Failures:     s.reg.PersistFailures(),
			TornRecords:  s.cfg.Store.TornRecords(),
			Compactions:  s.cfg.Store.Compactions(),
		}
		if err := s.cfg.Store.FlushErr(); err != nil {
			resp.Persist.FlushError = err.Error()
		}
	}
	if s.adapt != nil {
		m := s.adapt.Metrics()
		applied := 0
		apps, _ := s.reg.Snapshot()
		for i := range apps {
			if apps[i].Fitted != nil {
				applied++
			}
		}
		resp.Adapt = &AdaptMetrics{
			Enabled:         true,
			Tracked:         m.Tracked,
			Drifted:         m.Drifted,
			Applied:         applied,
			Samples:         m.Samples,
			Windows:         m.Windows,
			DriftsConfirmed: m.Confirmed,
			DriftsCleared:   m.Cleared,
			Refits:          m.Refits,
			PhaseChanges:    m.PhaseChanges,
		}
	}
	s.epMu.Lock()
	for name, ep := range s.eps {
		resp.Endpoints[name] = ep.view()
	}
	s.epMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	s.trMu.Lock()
	data, err := s.tr.ChromeJSON()
	s.trMu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding trace: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
