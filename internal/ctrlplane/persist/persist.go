// Package persist gives the control-plane registry crash durability: a
// JSON snapshot plus an append-only journal in a state directory. On
// open the store loads the snapshot, replays the journal (tolerating a
// torn final record from a mid-write crash), compacts the merged state
// back into a fresh snapshot, and is then ready to log registry
// mutations.
//
// Durability model: mutations of the live application set (register,
// deregister, evict) are fsynced before the append returns, so an
// acknowledged registration survives a kernel crash; heartbeat refreshes
// are written but not individually fsynced (a lost refresh costs at most
// one re-armed TTL window after restart). The WriteBehind option relaxes
// set mutations to the same buffered regime, with a background flusher
// syncing on an interval — higher throughput, bounded loss window.
//
// The store is a single-writer design: exactly one daemon may own a
// state directory at a time.
package persist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Journal and snapshot file names inside the state directory.
const (
	snapshotFile = "snapshot.json"
	journalFile  = "journal.jsonl"
)

// AppRecord is the persisted form of one registered application. It is
// deliberately free of control-plane types so the store has no import
// cycle with package ctrlplane; the registry converts in both
// directions.
type AppRecord struct {
	ID           string  `json:"id"`
	Name         string  `json:"name"`
	AI           float64 `json:"ai"`
	Placement    int     `json:"placement"`
	HomeNode     int     `json:"home_node"`
	MaxThreads   int     `json:"max_threads,omitempty"`
	TTLMillis    int64   `json:"ttl_ms"`
	RegisteredAt int64   `json:"registered_at_unix_ns"`
	LastBeat     int64   `json:"last_beat_unix_ns"`
	Beats        uint64  `json:"beats,omitempty"`

	// Fitted model (adaptive recalibration), present when FittedAI > 0:
	// the online-fitted demand that currently replaces the declared one
	// in the solver.
	FittedAI         float64 `json:"fitted_ai,omitempty"`
	FittedPeak       float64 `json:"fitted_peak,omitempty"`
	FittedConfidence float64 `json:"fitted_confidence,omitempty"`
	FittedAt         int64   `json:"fitted_at_unix_ns,omitempty"`
}

// Snapshot is the full persisted registry state: the live set and the
// counters the registry must resume from so client-visible generations
// stay monotonic across a daemon restart. Epoch is the replication
// fencing epoch (0 for a standalone daemon): it bumps on every leader
// promotion and must never regress, so it is persisted alongside the
// generation.
type Snapshot struct {
	Generation uint64      `json:"generation"`
	Seq        uint64      `json:"seq"`
	Evictions  uint64      `json:"evictions"`
	Epoch      uint64      `json:"epoch,omitempty"`
	Apps       []AppRecord `json:"apps"`
}

// Journal operation names. Exported because Record is also the wire
// format of the replication stream (ctrlplane/replica): a follower
// replays the leader's journal records through the same apply logic.
const (
	OpRegister   = "register"
	OpHeartbeat  = "heartbeat"
	OpDeregister = "deregister"
	OpEvict      = "evict"
	// OpPromote marks a leadership change: the new leader's epoch and
	// the generation bump it performed, journaled so neither can regress
	// across a restart of any replica.
	OpPromote = "promote"
	// OpFitted records an adaptive-recalibration update: the fitted
	// demand model substituted for (or, with a nil Fitted payload,
	// cleared from) one application. Fsynced and replicated like any
	// other set mutation, so a fitted model survives both a crash and a
	// leader failover.
	OpFitted = "fitted"
)

// FittedRecord is the OpFitted payload: the online-fitted demand model
// as of At (unix nanoseconds).
type FittedRecord struct {
	AI         float64 `json:"ai"`
	PeakGFLOPS float64 `json:"peak_gflops,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	At         int64   `json:"at_unix_ns,omitempty"`
}

// Record is one journal line — and one replication-stream element.
type Record struct {
	Op        string        `json:"op"`
	App       *AppRecord    `json:"app,omitempty"`
	ID        string        `json:"id,omitempty"`
	IDs       []string      `json:"ids,omitempty"`
	Beat      int64         `json:"beat_unix_ns,omitempty"`
	Beats     uint64        `json:"beats,omitempty"`
	Fitted    *FittedRecord `json:"fitted,omitempty"`
	Gen       uint64        `json:"gen,omitempty"`
	Seq       uint64        `json:"seq,omitempty"`
	Evictions uint64        `json:"evictions,omitempty"`
	Epoch     uint64        `json:"epoch,omitempty"`
}

// Options tunes a Store.
type Options struct {
	// WriteBehind skips the per-record fsync on set mutations; a
	// background flusher syncs every FlushInterval instead. Buffered
	// writes still reach the OS immediately, so only a kernel or power
	// failure inside the flush window can lose an acknowledged record.
	WriteBehind bool
	// FlushInterval is the write-behind sync period (default 200ms;
	// ignored unless WriteBehind).
	FlushInterval time.Duration
	// CompactEvery is the number of journal records after which the
	// journal is folded into the snapshot and truncated (default 1024).
	CompactEvery int
}

// Store owns one state directory. All methods are safe for concurrent
// use; the registry additionally serializes them under its own lock.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	journal  *os.File
	appended int // journal records since the last compaction
	closed   bool

	// Mirror of the persisted state, kept so compaction never has to
	// re-read the files it is about to replace.
	apps      map[string]AppRecord
	gen       uint64
	seq       uint64
	evictions uint64
	epoch     uint64

	restored    Snapshot
	torn        int
	compactions uint64
	flushErr    error

	// observer, when set, sees every appended record in journal order
	// (called under the store lock — it must not call back into the
	// store). The replication log tails the journal this way.
	observer func(Record)

	// syncFn syncs the journal file; swapped in tests to simulate a
	// failing disk on the write-behind flush path.
	syncFn func(*os.File) error

	stop chan struct{}
	done chan struct{}
}

// Open loads (or creates) the state directory, replays any journal into
// the snapshot, compacts, and returns a store ready for appends. The
// state as of the previous run is available from Restored.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 200 * time.Millisecond
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 1024
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating state dir: %w", err)
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		apps:   map[string]AppRecord{},
		syncFn: (*os.File).Sync,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.restored = s.snapshotLocked()

	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening journal: %w", err)
	}
	s.journal = f
	// Fold the replayed journal into a fresh snapshot so a crash during
	// this run replays only this run's records.
	if err := s.compactLocked(); err != nil {
		f.Close()
		return nil, err
	}
	if opts.WriteBehind {
		go s.flusher()
	} else {
		close(s.done)
	}
	return s, nil
}

// load reads the snapshot and replays the journal into the mirror.
func (s *Store) load() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return fmt.Errorf("persist: reading snapshot: %w", err)
	default:
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("persist: corrupt snapshot %s: %w", snapshotFile, err)
		}
		s.gen, s.seq, s.evictions, s.epoch = snap.Generation, snap.Seq, snap.Evictions, snap.Epoch
		for _, a := range snap.Apps {
			s.apps[a.ID] = a
		}
	}

	jf, err := os.Open(filepath.Join(s.dir, journalFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("persist: reading journal: %w", err)
	}
	defer jf.Close()
	sc := bufio.NewScanner(jf)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final record is the expected signature of a crash
			// mid-append: stop replaying — everything before it is intact.
			s.torn++
			break
		}
		s.applyLocked(rec)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("persist: scanning journal: %w", err)
	}
	return nil
}

// applyLocked folds one journal record into the mirror.
func (s *Store) applyLocked(rec Record) {
	switch rec.Op {
	case OpRegister:
		if rec.App != nil {
			s.apps[rec.App.ID] = *rec.App
		}
		s.gen, s.seq = rec.Gen, rec.Seq
	case OpHeartbeat:
		if a, ok := s.apps[rec.ID]; ok {
			a.LastBeat = rec.Beat
			a.Beats = rec.Beats
			s.apps[rec.ID] = a
		}
	case OpDeregister:
		delete(s.apps, rec.ID)
		s.gen = rec.Gen
	case OpEvict:
		for _, id := range rec.IDs {
			delete(s.apps, id)
		}
		s.gen = rec.Gen
		s.evictions = rec.Evictions
	case OpPromote:
		s.gen = rec.Gen
		if rec.Epoch > s.epoch {
			s.epoch = rec.Epoch
		}
	case OpFitted:
		if a, ok := s.apps[rec.ID]; ok {
			if rec.Fitted != nil {
				a.FittedAI = rec.Fitted.AI
				a.FittedPeak = rec.Fitted.PeakGFLOPS
				a.FittedConfidence = rec.Fitted.Confidence
				a.FittedAt = rec.Fitted.At
			} else {
				a.FittedAI, a.FittedPeak, a.FittedConfidence, a.FittedAt = 0, 0, 0, 0
			}
			s.apps[rec.ID] = a
		}
		s.gen = rec.Gen
	}
}

// snapshotLocked copies the mirror into a Snapshot (apps sorted by ID).
func (s *Store) snapshotLocked() Snapshot {
	snap := Snapshot{
		Generation: s.gen,
		Seq:        s.seq,
		Evictions:  s.evictions,
		Epoch:      s.epoch,
		Apps:       make([]AppRecord, 0, len(s.apps)),
	}
	for _, a := range s.apps {
		snap.Apps = append(snap.Apps, a)
	}
	sort.Slice(snap.Apps, func(i, j int) bool { return snap.Apps[i].ID < snap.Apps[j].ID })
	return snap
}

// Restored returns the state recovered from the directory at Open time.
func (s *Store) Restored() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.restored
	out.Apps = append([]AppRecord(nil), s.restored.Apps...)
	return out
}

// TornRecords reports how many corrupt journal tails were discarded at
// Open (0 or 1 for a single crash).
func (s *Store) TornRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn
}

// Compactions reports how many times the journal was folded into the
// snapshot.
func (s *Store) Compactions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactions
}

// compactLocked writes the mirror as a fresh snapshot (atomically, via a
// temp file rename) and truncates the journal.
func (s *Store) compactLocked() error {
	data, err := json.MarshalIndent(s.snapshotLocked(), "", " ")
	if err != nil {
		return fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("persist: installing snapshot: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	if s.journal != nil {
		if err := s.journal.Truncate(0); err != nil {
			return fmt.Errorf("persist: truncating journal: %w", err)
		}
		if _, err := s.journal.Seek(0, 0); err != nil {
			return fmt.Errorf("persist: rewinding journal: %w", err)
		}
	}
	s.appended = 0
	s.compactions++
	return nil
}

// append writes one record. syncNow forces an fsync before returning
// (ignored under WriteBehind, where the flusher owns syncing — but a
// flusher that has already failed poisons further set mutations, so a
// broken disk turns into rejected registrations, never into silently
// unpersisted acknowledgements).
func (s *Store) append(rec Record, syncNow bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	if syncNow && s.opts.WriteBehind && s.flushErr != nil {
		return fmt.Errorf("persist: write-behind flush failed earlier: %w", s.flushErr)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("persist: encoding journal record: %w", err)
	}
	if _, err := s.journal.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("persist: appending journal: %w", err)
	}
	s.applyLocked(rec)
	s.appended++
	if s.observer != nil {
		s.observer(rec)
	}
	if syncNow && !s.opts.WriteBehind {
		if err := s.syncFn(s.journal); err != nil {
			return fmt.Errorf("persist: syncing journal: %w", err)
		}
	}
	if s.appended >= s.opts.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// AppendRegister durably records a registration together with the
// generation and sequence counters it committed. The registry calls this
// before exposing the new app, so an acknowledged registration is always
// recoverable.
func (s *Store) AppendRegister(app AppRecord, gen, seq uint64) error {
	return s.append(Record{Op: OpRegister, App: &app, Gen: gen, Seq: seq}, true)
}

// AppendHeartbeat records a liveness refresh (buffered, never
// individually fsynced — see the package comment).
func (s *Store) AppendHeartbeat(id string, beatUnixNano int64, beats uint64) error {
	return s.append(Record{Op: OpHeartbeat, ID: id, Beat: beatUnixNano, Beats: beats}, false)
}

// AppendDeregister records an application's departure.
func (s *Store) AppendDeregister(id string, gen uint64) error {
	return s.append(Record{Op: OpDeregister, ID: id, Gen: gen}, true)
}

// AppendEvict records a liveness eviction sweep.
func (s *Store) AppendEvict(ids []string, gen, evictions uint64) error {
	return s.append(Record{Op: OpEvict, IDs: ids, Gen: gen, Evictions: evictions}, true)
}

// AppendFitted durably records a fitted-model substitution (or, with a
// nil f, its clearing) for one application, together with the
// generation it committed.
func (s *Store) AppendFitted(id string, f *FittedRecord, gen uint64) error {
	return s.append(Record{Op: OpFitted, ID: id, Fitted: f, Gen: gen}, true)
}

// AppendPromote records a leadership change: the promoted replica's new
// fencing epoch and the generation bump it performed. Fsynced — a
// leader must never forget its own epoch.
func (s *Store) AppendPromote(gen, epoch uint64) error {
	return s.append(Record{Op: OpPromote, Gen: gen, Epoch: epoch}, true)
}

// AppendRecord journals a replicated record verbatim. A follower uses
// this to mirror the leader's journal into its own store, keeping the
// leader's generation/sequence numbering so a promoted follower resumes
// exactly where the stream left off. Set mutations are fsynced;
// heartbeat refreshes stay buffered, same as the leader's own tiering.
func (s *Store) AppendRecord(rec Record) error {
	return s.append(rec, rec.Op != OpHeartbeat)
}

// SetObserver installs fn to see every appended record in journal
// order. fn runs under the store lock and must not call back into the
// store. Pass nil to remove.
func (s *Store) SetObserver(fn func(Record)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// Snapshot returns the store's current state (not the restored-at-open
// one) — what a replication leader ships to a follower that is too far
// behind the journal tail.
func (s *Store) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// ResetTo replaces the store's entire state with snap and compacts, so
// the on-disk state is exactly snap. A follower uses this when the
// leader ships a full snapshot instead of a journal suffix.
func (s *Store) ResetTo(snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	s.apps = make(map[string]AppRecord, len(snap.Apps))
	for _, a := range snap.Apps {
		s.apps[a.ID] = a
	}
	s.gen, s.seq, s.evictions = snap.Generation, snap.Seq, snap.Evictions
	if snap.Epoch > s.epoch {
		s.epoch = snap.Epoch
	}
	return s.compactLocked()
}

// Epoch returns the highest replication fencing epoch the store has
// persisted (0 for a standalone daemon).
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Sync flushes buffered journal bytes to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.syncFn(s.journal)
}

// flusher is the write-behind sync loop.
func (s *Store) flusher() {
	defer close(s.done)
	t := time.NewTicker(s.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				if err := s.syncFn(s.journal); err != nil && s.flushErr == nil {
					s.flushErr = err
				}
			}
			s.mu.Unlock()
		}
	}
}

// FlushErr returns the first background-flush failure, if any.
func (s *Store) FlushErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushErr
}

// Close compacts, syncs, and releases the journal. The store must not
// be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done

	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.compactLocked()
	if serr := s.syncFn(s.journal); err == nil {
		err = serr
	}
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	return err
}
