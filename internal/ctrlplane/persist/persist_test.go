package persist

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func rec(id string, beats uint64) AppRecord {
	return AppRecord{
		ID: id, Name: id, AI: 0.5, TTLMillis: 1000,
		RegisteredAt: 100, LastBeat: 100, Beats: beats,
	}
}

// TestRoundTrip: registrations, heartbeats, deregistrations, and
// evictions all survive a close/reopen cycle with counters intact.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Restored(); len(got.Apps) != 0 || got.Generation != 0 {
		t.Fatalf("fresh dir restored %+v", got)
	}
	if err := s.AppendRegister(rec("a-1", 0), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("b-2", 0), 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("c-3", 0), 3, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendHeartbeat("a-1", 555, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDeregister("b-2", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvict([]string{"c-3"}, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap := s2.Restored()
	if snap.Generation != 5 || snap.Seq != 3 || snap.Evictions != 1 {
		t.Errorf("restored counters = gen %d seq %d ev %d, want 5/3/1",
			snap.Generation, snap.Seq, snap.Evictions)
	}
	if len(snap.Apps) != 1 || snap.Apps[0].ID != "a-1" {
		t.Fatalf("restored apps = %+v, want just a-1", snap.Apps)
	}
	if snap.Apps[0].LastBeat != 555 || snap.Apps[0].Beats != 7 {
		t.Errorf("heartbeat refresh lost: %+v", snap.Apps[0])
	}
}

// TestTornJournalTail: a crash mid-append leaves a partial final line;
// open discards it and keeps every complete record.
func TestTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("a-1", 0), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("b-2", 0), 2, 2); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: no Close, and a half-written record at the
	// tail of the journal.
	s.Sync()
	jp := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"register","app":{"id":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if s2.TornRecords() != 1 {
		t.Errorf("torn records = %d, want 1", s2.TornRecords())
	}
	snap := s2.Restored()
	if len(snap.Apps) != 2 {
		t.Errorf("restored %d apps, want the 2 intact ones: %+v", len(snap.Apps), snap.Apps)
	}
}

// TestCompaction: past CompactEvery records the journal folds into the
// snapshot and truncates, and the state still round-trips.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("a-1", 0), 1, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.AppendHeartbeat("a-1", int64(1000+i), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Compactions() < 4 {
		t.Errorf("compactions = %d, want several over 41 appends at CompactEvery=8", s.Compactions())
	}
	fi, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 8*1024 {
		t.Errorf("journal is %d bytes after compaction, want small", fi.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap := s2.Restored()
	if len(snap.Apps) != 1 || snap.Apps[0].Beats != 40 {
		t.Errorf("restored after compaction = %+v", snap.Apps)
	}
}

// TestWriteBehind: the relaxed mode still recovers everything after a
// clean close, and the background flusher runs without error.
func TestWriteBehind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{WriteBehind: true, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := s.AppendRegister(rec("app", 0), i, i); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(25 * time.Millisecond) // let the flusher tick
	if err := s.FlushErr(); err != nil {
		t.Fatalf("flusher error: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if snap := s2.Restored(); snap.Generation != 5 || snap.Seq != 5 {
		t.Errorf("restored gen/seq = %d/%d, want 5/5", snap.Generation, snap.Seq)
	}
}

// TestConcurrentAppends: the store serializes concurrent writers (run
// under -race).
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("a-1", 0), 1, 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.AppendHeartbeat("a-1", int64(w*1000+i), 1); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if snap := s2.Restored(); len(snap.Apps) != 1 {
		t.Errorf("restored %d apps, want 1", len(snap.Apps))
	}
}

// TestClosedStoreRejectsAppends: appends after Close fail loudly rather
// than silently dropping records.
func TestClosedStoreRejectsAppends(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("a-1", 0), 1, 1); err == nil {
		t.Error("append on a closed store succeeded")
	}
}

// TestWriteBehindFlushErrorPoisons: once the background flusher fails,
// the relaxed-durability contract is void — further set mutations are
// rejected (persist-or-reject restored) and FlushErr surfaces the cause
// for /metricsz. Buffered heartbeats still pass: losing a liveness
// refresh costs one re-armed TTL window, not registry state.
func TestWriteBehindFlushErrorPoisons(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{WriteBehind: true, FlushInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("a-1", 0), 1, 1); err != nil {
		t.Fatal(err)
	}

	// The disk "dies": every sync now fails.
	diskDied := errors.New("injected: EIO on fsync")
	s.mu.Lock()
	s.syncFn = func(*os.File) error { return diskDied }
	s.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for s.FlushErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("flusher never observed the sync failure")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(s.FlushErr(), diskDied) {
		t.Errorf("FlushErr = %v, want the injected failure", s.FlushErr())
	}

	// Set mutations are refused and name the original failure.
	if err := s.AppendRegister(rec("b-2", 0), 2, 2); !errors.Is(err, diskDied) {
		t.Errorf("register after flush failure: err = %v, want rejection wrapping the flush error", err)
	}
	if err := s.AppendDeregister("a-1", 3); !errors.Is(err, diskDied) {
		t.Errorf("deregister after flush failure: err = %v, want rejection wrapping the flush error", err)
	}
	// Buffered heartbeats still land (documented degradation).
	if err := s.AppendHeartbeat("a-1", 200, 2); err != nil {
		t.Errorf("heartbeat after flush failure: %v (buffered appends should still pass)", err)
	}
	s.Close() // errors expected: the injected syncFn still fails

	// The pre-failure registration survives; the rejected one is absent.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap := s2.Restored()
	if len(snap.Apps) != 1 || snap.Apps[0].ID != "a-1" {
		t.Errorf("restored apps = %+v, want just the pre-failure a-1", snap.Apps)
	}
}

// TestWriteBehindTornTail: torn-record recovery holds under write-
// behind too — a crash leaves buffered bytes plus a half-written final
// line, and reopen (also write-behind) drops only the torn tail.
func TestWriteBehindTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{WriteBehind: true, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("a-1", 0), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRegister(rec("b-2", 0), 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendHeartbeat("a-1", 300, 3); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. Force the OS-buffered bytes out (the "crash"
	// here is of the process, not the kernel), then tear the tail.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	jp := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"heartbeat","id":"a-1","last`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{WriteBehind: true})
	if err != nil {
		t.Fatalf("write-behind open with torn tail: %v", err)
	}
	defer s2.Close()
	if s2.TornRecords() != 1 {
		t.Errorf("torn records = %d, want 1", s2.TornRecords())
	}
	snap := s2.Restored()
	if len(snap.Apps) != 2 {
		t.Fatalf("restored %d apps, want 2: %+v", len(snap.Apps), snap.Apps)
	}
	for _, a := range snap.Apps {
		if a.ID == "a-1" && (a.LastBeat != 300 || a.Beats != 3) {
			t.Errorf("intact heartbeat before the torn one lost: %+v", a)
		}
	}
}

// TestObserverEpochAndResetRoundTrip: the replication substrate — every
// append reaches the observer, promotions persist the fencing epoch,
// and ResetTo replaces the mirror the way a follower snapshot-resync
// does.
func TestObserverEpochAndResetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seen []Record
	s.SetObserver(func(r Record) { seen = append(seen, r) })
	if err := s.AppendRegister(rec("a-1", 0), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPromote(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendHeartbeat("a-1", 400, 4); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0].Op != OpRegister || seen[1].Op != OpPromote || seen[2].Op != OpHeartbeat {
		t.Fatalf("observer saw %+v, want register/promote/heartbeat", seen)
	}
	if seen[1].Epoch != 3 {
		t.Errorf("promote record epoch = %d, want 3", seen[1].Epoch)
	}
	if s.Epoch() != 3 {
		t.Errorf("epoch = %d, want 3", s.Epoch())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The epoch survives restart — a rebooted replica can never campaign
	// below an epoch it already acknowledged.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Epoch() != 3 {
		t.Errorf("restored epoch = %d, want 3", s2.Epoch())
	}

	// ResetTo replaces the mirror wholesale (follower snapshot resync).
	snap := Snapshot{
		Apps:       []AppRecord{rec("z-9", 0)},
		Generation: 10, Seq: 9, Epoch: 5,
	}
	if err := s2.ResetTo(snap); err != nil {
		t.Fatal(err)
	}
	got := s2.Snapshot()
	if len(got.Apps) != 1 || got.Apps[0].ID != "z-9" || got.Generation != 10 || got.Epoch != 5 {
		t.Errorf("after ResetTo: %+v", got)
	}
}
