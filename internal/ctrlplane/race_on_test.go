//go:build race

package ctrlplane

// raceEnabled reports the race detector is active: sync.Pool drops
// items randomly under it, so zero-allocation assertions are skipped.
const raceEnabled = true
