// Package ctrlplane is the networked allocation control plane: an HTTP
// server (stdlib only) where cooperating applications register their
// roofline profile (arithmetic intensity, NUMA placement), heartbeat
// execution statistics, and receive per-NUMA-node thread allocations
// computed by the internal/agent policies over a configured
// internal/machine topology.
//
// It turns the paper's Fig. 1 in-process agent into a service: the
// registry tracks live applications (heartbeat-liveness eviction frees
// a silent application's cores), the solver runs the roofline
// optimization behind a cache keyed by (topology hash, sorted demand
// set), and every register/heartbeat/allocate request is metered
// (internal/metrics) and traced (internal/trace).
//
// The wire protocol is JSON over HTTP:
//
//	POST   /v1/register    RegisterRequest   -> RegisterResponse
//	POST   /v1/heartbeat   HeartbeatRequest  -> HeartbeatResponse
//	POST   /v1/report      ReportRequest     -> ReportResponse
//	DELETE /v1/apps/{id}                     -> 204
//	GET    /v1/apps                          -> AppsResponse
//	GET    /v1/allocations                   -> AllocationsResponse
//	GET    /v1/drift                         -> DriftResponse
//	GET    /v1/machine                       -> MachineResponse
//	GET    /healthz                          -> HealthResponse
//	GET    /metricsz                         -> MetricsResponse
//	GET    /tracez                           -> Chrome trace-event JSON
//
// See internal/ctrlplane/client for the typed Go client.
package ctrlplane

import "repro/internal/machine"

// Placement names used on the wire (roofline.Placement as a string).
const (
	PlacementPerfect = "numa-perfect"
	PlacementBad     = "numa-bad"
)

// RegisterRequest announces an application to the control plane.
type RegisterRequest struct {
	// Name labels the application in allocations and reports.
	Name string `json:"name"`
	// AI is the application's arithmetic intensity (FLOP/byte). > 0.
	AI float64 `json:"ai"`
	// Placement is "numa-perfect" (default) or "numa-bad".
	Placement string `json:"placement,omitempty"`
	// HomeNode holds all data of a numa-bad application.
	HomeNode int `json:"home_node,omitempty"`
	// MaxThreads caps the total threads allocated to this application;
	// 0 means "as many as the solver wants".
	MaxThreads int `json:"max_threads,omitempty"`
	// TTLMillis overrides the server's heartbeat deadline for this
	// application; 0 uses the server default. An application that does
	// not heartbeat within its TTL is evicted and its cores
	// reallocated to the survivors.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

// AppAllocation is one application's slice of the machine.
type AppAllocation struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// PerNode[j] is the thread count on NUMA node j (the paper's
	// thread-control option 3).
	PerNode []int `json:"per_node"`
	// Threads is the machine-wide total (sum of PerNode).
	Threads int `json:"threads"`
	// PredictedGFLOPS is the roofline model's rate for this app under
	// the served allocation.
	PredictedGFLOPS float64 `json:"predicted_gflops"`
}

// RegisterResponse confirms a registration.
type RegisterResponse struct {
	// ID is the handle for heartbeats and deregistration.
	ID string `json:"id"`
	// Generation is the registry generation after this registration;
	// it increases whenever the live application set changes.
	Generation uint64 `json:"generation"`
	// TTLMillis is the effective heartbeat deadline.
	TTLMillis int64 `json:"ttl_ms"`
	// Allocation is this application's slice under the new optimum.
	Allocation *AppAllocation `json:"allocation,omitempty"`
}

// HeartbeatRequest keeps an application alive and reports its stats
// (the runtime monitoring data the paper's agent consumes each period).
type HeartbeatRequest struct {
	ID string `json:"id"`
	// TasksExecuted counts completed tasks since start.
	TasksExecuted uint64 `json:"tasks_executed,omitempty"`
	// Running/Pending/Workers mirror taskrt.Stats.
	Running int `json:"running,omitempty"`
	Pending int `json:"pending,omitempty"`
	Workers int `json:"workers,omitempty"`
	// GFlopRate and GBRate are the observed compute and memory-traffic
	// rates; their ratio is an online AI estimate the server records.
	GFlopRate float64 `json:"gflop_rate,omitempty"`
	GBRate    float64 `json:"gb_rate,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	Generation uint64 `json:"generation"`
	// Allocation is the app's current slice, so a heartbeat doubles as
	// an allocation poll.
	Allocation *AppAllocation `json:"allocation,omitempty"`
}

// AppView is the registry's public record of one application.
type AppView struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	AI         float64 `json:"ai"`
	Placement  string  `json:"placement"`
	HomeNode   int     `json:"home_node"`
	MaxThreads int     `json:"max_threads,omitempty"`
	TTLMillis  int64   `json:"ttl_ms"`
	// AgeMillis and IdleMillis are times since registration and since
	// the last heartbeat.
	AgeMillis  int64  `json:"age_ms"`
	IdleMillis int64  `json:"idle_ms"`
	Beats      uint64 `json:"beats"`
	// ObservedAI is GFlopRate/GBRate from the last heartbeat (0 when
	// the app has not reported rates).
	ObservedAI float64 `json:"observed_ai,omitempty"`
	// FittedAI is the online-recalibrated arithmetic intensity currently
	// substituted for the declared AI in the solver (0: declared model
	// in effect). Set only when the adaptive loop confirmed drift.
	FittedAI float64 `json:"fitted_ai,omitempty"`
	// Drifted reports that a fitted model is applied for this app.
	Drifted bool `json:"drifted,omitempty"`
}

// ReportSample is one observed throughput measurement in a telemetry
// report (the wire form of adapt.Sample).
type ReportSample struct {
	// GFLOPS and GBps are the observed compute and memory-traffic rates
	// over the sampling interval; their ratio is the observed AI.
	GFLOPS float64 `json:"gflops"`
	GBps   float64 `json:"gbps"`
	// Threads is the thread count the rates were observed under (0:
	// unknown).
	Threads int `json:"threads,omitempty"`
}

// ReportRequest delivers an application's telemetry samples to the
// adaptive-recalibration loop (POST /v1/report; requires a coopd
// started with -recalibrate).
type ReportRequest struct {
	ID      string         `json:"id"`
	Samples []ReportSample `json:"samples"`
}

// ReportResponse acknowledges a telemetry report with the app's drift
// status after ingesting the samples.
type ReportResponse struct {
	Generation uint64 `json:"generation"`
	// State is the drift detector's state: "steady", "suspect", or
	// "drifted".
	State string `json:"state"`
	// FittedAI and Confidence are the current streaming fit.
	FittedAI   float64 `json:"fitted_ai,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// RelErr is the fitted-vs-declared relative AI error.
	RelErr float64 `json:"rel_err,omitempty"`
	// Drifted reports whether a fitted model is applied in the solver
	// after this report.
	Drifted bool `json:"drifted,omitempty"`
}

// DriftAppView is one application's adaptive-loop status.
type DriftAppView struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	State      string  `json:"state"`
	DeclaredAI float64 `json:"declared_ai"`
	FittedAI   float64 `json:"fitted_ai,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// RelErrPct is the fitted-vs-declared relative AI error in percent.
	RelErrPct float64 `json:"rel_err_pct,omitempty"`
	Samples   uint64  `json:"samples,omitempty"`
	Windows   uint64  `json:"windows,omitempty"`
	// Resolves counts the re-solves this app triggered (0 for a
	// correctly-declared steady app).
	Resolves uint64 `json:"resolves,omitempty"`
	// Applied reports whether a fitted model currently replaces the
	// declared one in the solver; AppliedAI is its AI.
	Applied   bool    `json:"applied,omitempty"`
	AppliedAI float64 `json:"applied_ai,omitempty"`
}

// DriftResponse is the /v1/drift body: the adaptive loop's view of
// every tracked application.
type DriftResponse struct {
	// Enabled is false when the daemon runs without -recalibrate (the
	// rest of the body is then empty).
	Enabled    bool   `json:"enabled"`
	Generation uint64 `json:"generation"`
	// Threshold is the configured relative-error drift threshold.
	Threshold float64        `json:"threshold,omitempty"`
	Apps      []DriftAppView `json:"apps,omitempty"`
	// Confirmed/Cleared/Refits/PhaseChanges are loop-wide counters.
	Confirmed    uint64 `json:"confirmed,omitempty"`
	Cleared      uint64 `json:"cleared,omitempty"`
	Refits       uint64 `json:"refits,omitempty"`
	PhaseChanges uint64 `json:"phase_changes,omitempty"`
}

// AppsResponse lists registered applications.
type AppsResponse struct {
	Generation uint64    `json:"generation"`
	Apps       []AppView `json:"apps"`
}

// ReferenceAllocations reports the paper's structured baselines for the
// current demand mix, so clients can see what the optimization buys
// (Table I/II: uneven 254 vs even 140 vs one-node-per-app 128 GFLOPS).
type ReferenceAllocations struct {
	// EvenGFLOPS is the "same share of every node" allocation
	// (Fig. 2 b); 0 when infeasible (cores not divisible).
	EvenGFLOPS float64 `json:"even_gflops,omitempty"`
	// NodePerAppGFLOPS dedicates node i to app i (Fig. 2 c); 0 when
	// there are more apps than nodes.
	NodePerAppGFLOPS float64 `json:"node_per_app_gflops,omitempty"`
}

// AllocationsResponse is the machine-wide allocation table.
type AllocationsResponse struct {
	Generation uint64 `json:"generation"`
	// Machine is the topology's display name.
	Machine string `json:"machine"`
	// Policy is the solver policy ("roofline" or "fairshare").
	Policy string          `json:"policy"`
	Apps   []AppAllocation `json:"apps"`
	// TotalGFLOPS is the model's machine-wide prediction.
	TotalGFLOPS float64               `json:"total_gflops"`
	Reference   *ReferenceAllocations `json:"reference,omitempty"`
	// CacheHit reports whether the solver cache served this solve.
	CacheHit bool `json:"cache_hit"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	Machine       string  `json:"machine"`
	UptimeSeconds float64 `json:"uptime_s"`
	Apps          int     `json:"apps"`
	Generation    uint64  `json:"generation"`
}

// EndpointMetrics summarizes one endpoint's request history.
type EndpointMetrics struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Shed counts requests refused by the load shedder (503 +
	// Retry-After) because the endpoint's in-flight bound was full.
	Shed uint64 `json:"shed,omitempty"`
}

// SolverMetrics summarizes the allocation cache.
type SolverMetrics struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Coalesced counts solves that joined an identical in-flight solve
	// (singleflight) instead of running their own.
	Coalesced uint64 `json:"coalesced,omitempty"`
	Entries   int    `json:"entries"`
}

// PersistMetrics summarizes the daemon's crash-recovery store.
type PersistMetrics struct {
	// Enabled reports whether a state dir is configured.
	Enabled bool `json:"enabled"`
	// RestoredApps is how many applications the last restart recovered.
	RestoredApps int `json:"restored_apps,omitempty"`
	// Failures counts journal appends that failed.
	Failures uint64 `json:"failures,omitempty"`
	// TornRecords counts corrupt journal tails discarded at startup.
	TornRecords int `json:"torn_records,omitempty"`
	// Compactions counts journal-into-snapshot folds.
	Compactions uint64 `json:"compactions,omitempty"`
	// FlushError is the first background write-behind flush failure, if
	// any. Once set, further set mutations are rejected (503s) rather
	// than acknowledged unpersisted.
	FlushError string `json:"flush_error,omitempty"`
}

// AdaptMetrics summarizes the adaptive-recalibration loop.
type AdaptMetrics struct {
	// Enabled reports whether the daemon runs with -recalibrate.
	Enabled bool `json:"enabled"`
	// Tracked/Drifted/Applied count apps with telemetry, in the drifted
	// state, and with a fitted model substituted in the solver.
	Tracked int `json:"tracked,omitempty"`
	Drifted int `json:"drifted,omitempty"`
	Applied int `json:"applied,omitempty"`
	// Samples and Windows count ingested telemetry.
	Samples uint64 `json:"samples,omitempty"`
	Windows uint64 `json:"windows,omitempty"`
	// DriftsConfirmed/DriftsCleared/Refits/PhaseChanges count detector
	// events since start.
	DriftsConfirmed uint64 `json:"drifts_confirmed,omitempty"`
	DriftsCleared   uint64 `json:"drifts_cleared,omitempty"`
	Refits          uint64 `json:"refits,omitempty"`
	PhaseChanges    uint64 `json:"phase_changes,omitempty"`
}

// MetricsResponse is the /metricsz body.
type MetricsResponse struct {
	UptimeSeconds float64                    `json:"uptime_s"`
	Apps          int                        `json:"apps"`
	Generation    uint64                     `json:"generation"`
	Evictions     uint64                     `json:"evictions"`
	Solver        SolverMetrics              `json:"solver"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
	Persist       *PersistMetrics            `json:"persist,omitempty"`
	Adapt         *AdaptMetrics              `json:"adapt,omitempty"`
}

// MachineResponse is the /v1/machine body: the topology allocations are
// computed over. Clients cache it so they can run a local fallback
// solve while the daemon is unreachable.
type MachineResponse struct {
	Machine    *machine.Machine `json:"machine"`
	Policy     string           `json:"policy"`
	Generation uint64           `json:"generation"`
}

// Machine-readable error codes carried by ErrorResponse.Code.
const (
	// ErrCodeUnknownApp marks a heartbeat or deregistration for an ID
	// the registry does not know — the client's signal to re-register
	// instead of retrying.
	ErrCodeUnknownApp = "unknown_app"
	// ErrCodeNotLeader marks a write sent to a replication follower.
	// The response's Leader field (and X-Coop-Leader header) carry the
	// current leader's URL; the client should retry there.
	ErrCodeNotLeader = "not_leader"
	// ErrCodeOverloaded marks a request refused by the load shedder;
	// the Retry-After header says when to try again.
	ErrCodeOverloaded = "overloaded"
)

// Replication headers stamped on every response by an HA replica, so
// clients can fence against deposed leaders without new body fields.
const (
	// HeaderEpoch is the replica's fencing epoch (monotonic across
	// leadership changes). A client that has seen epoch E rejects
	// responses from any replica still announcing an older epoch.
	HeaderEpoch = "X-Coop-Epoch"
	// HeaderRole is "leader" or "follower".
	HeaderRole = "X-Coop-Role"
	// HeaderLeader is the current leader's advertised URL, a discovery
	// hint for multi-endpoint clients.
	HeaderLeader = "X-Coop-Leader"
)

// ErrorResponse carries an error message on non-2xx statuses. Code,
// when set, is a stable machine-readable cause (see ErrCode*) so
// clients do not have to string-match messages.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	// Leader is the current leader's URL on not_leader rejections.
	Leader string `json:"leader,omitempty"`
}

// ReplicaStatusResponse is the /v1/replica/status body: one replica's
// view of the HA pair — its role, the lease, and how far behind the
// leader's journal it is.
type ReplicaStatusResponse struct {
	// Role is "leader" or "follower" ("standalone" never serves this
	// endpoint — a plain coopd 404s it).
	Role string `json:"role"`
	// Self is this replica's advertised URL; Leader is its view of the
	// current leader.
	Self   string `json:"self"`
	Leader string `json:"leader,omitempty"`
	// Epoch is the fencing epoch (bumps on every promotion).
	Epoch uint64 `json:"epoch"`
	// Generation mirrors the registry generation.
	Generation uint64 `json:"generation"`
	// LeaseRemainingMillis: leader — time until its lease would expire
	// without renewal; follower — time until it would start campaigning.
	LeaseRemainingMillis int64 `json:"lease_remaining_ms"`
	// AppliedSeq is the last replication-stream record applied
	// (follower) or the last record published (leader).
	AppliedSeq uint64 `json:"applied_seq"`
	// LagMillis is the time since the follower last heard from the
	// leader (0 on the leader itself) — the replication lag bound.
	LagMillis int64 `json:"lag_ms"`
	// Promotions counts this process's follower->leader transitions.
	Promotions uint64 `json:"promotions"`
	// Peers lists the other replicas' advertised URLs.
	Peers []string `json:"peers,omitempty"`
}
