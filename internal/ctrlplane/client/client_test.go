package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ctrlplane"
)

func newTestClient(t *testing.T, h http.HandlerFunc, cfg Config) (*Client, *httptest.Server) {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = time.Millisecond
	}
	return New(hs.URL, cfg), hs
}

// TestRetryOn5xx: transient server errors are retried until success.
func TestRetryOn5xx(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(ctrlplane.HealthResponse{Status: "ok"})
	}, Config{MaxAttempts: 4})

	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health after two 503s: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two failures + success)", got)
	}
}

// TestRetryExhaustion: a persistent 5xx fails after MaxAttempts tries.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}, Config{MaxAttempts: 3})

	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected an error")
	}
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Errorf("err = %v, want wrapped 500 APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want MaxAttempts=3", got)
	}
}

// TestNoRetryOn4xx: client errors are terminal — retrying a rejected
// registration would just be rejected again.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ctrlplane.ErrorResponse{Error: "ai must be > 0"})
	}, Config{MaxAttempts: 4})

	_, err := c.Register(context.Background(), ctrlplane.RegisterRequest{Name: "x"})
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusBadRequest || ae.Message != "ai must be > 0" {
		t.Errorf("err = %v, want 400 APIError with server message", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on 4xx)", got)
	}
}

// TestNotFound: 404s are recognizable through IsNotFound — the
// eviction signal apps react to by re-registering.
func TestNotFound(t *testing.T) {
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ctrlplane.ErrorResponse{Error: "unknown app"})
	}, Config{})
	_, err := c.Heartbeat(context.Background(), ctrlplane.HeartbeatRequest{ID: "ghost"})
	if !IsNotFound(err) {
		t.Errorf("IsNotFound(%v) = false, want true", err)
	}
	if IsNotFound(nil) {
		t.Error("IsNotFound(nil) = true")
	}
}

// TestContextCancelStopsRetries: a canceled context aborts the backoff
// loop instead of sleeping through the remaining attempts.
func TestContextCancelStopsRetries(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}, Config{MaxAttempts: 10, BaseBackoff: time.Hour})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Health(ctx)
		done <- err
	}()
	// Let the first attempt land, then cancel during the 1h backoff.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil || ctx.Err() == nil {
			t.Errorf("err = %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not abort after context cancellation")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (cancel stopped the retries)", got)
	}
}

// TestConnectionRefusedRetries: transport-level failures are retryable;
// with no server at all the client fails only after exhausting them.
func TestConnectionRefusedRetries(t *testing.T) {
	hs := httptest.NewServer(http.NotFoundHandler())
	hs.Close() // nothing listens here any more
	c := New(hs.URL, Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	start := time.Now()
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected connection error")
	}
	if IsNotFound(err) {
		t.Errorf("transport failure classified as 404: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("retries took %v, want quick failure", time.Since(start))
	}
}

// TestRequestTimeoutApplied: with no caller deadline, RequestTimeout
// bounds the exchange.
func TestRequestTimeoutApplied(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		<-block // hold the request until test cleanup
	}, Config{MaxAttempts: 1, RequestTimeout: 50 * time.Millisecond})

	start := time.Now()
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("request returned after %v, want ~RequestTimeout", d)
	}
}

// TestBackoffFullJitter: every delay stays within (0, ceiling] where
// the ceiling doubles from BaseBackoff and saturates at MaxBackoff, and
// the draws are genuinely spread — deterministic backoff would have
// every app of a restarted daemon retry at the same instant.
func TestBackoffFullJitter(t *testing.T) {
	c := New("http://127.0.0.1:0", Config{
		BaseBackoff: 16 * time.Millisecond,
		MaxBackoff:  64 * time.Millisecond,
	})
	ceilings := []time.Duration{
		16 * time.Millisecond, // attempt 1
		32 * time.Millisecond, // attempt 2
		64 * time.Millisecond, // attempt 3
		64 * time.Millisecond, // attempt 4 (128ms capped)
	}
	seen := map[time.Duration]bool{}
	for round := 0; round < 50; round++ {
		for i, ceil := range ceilings {
			got := c.backoff(i + 1)
			if got <= 0 || got > ceil {
				t.Fatalf("backoff(%d) = %v, want in (0, %v]", i+1, got, ceil)
			}
			seen[got] = true
		}
		// Shift overflow must also saturate, not go negative.
		if got := c.backoff(62); got <= 0 || got > 64*time.Millisecond {
			t.Fatalf("backoff(62) = %v, want in (0, cap]", got)
		}
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct delays over 200 draws — jitter looks degenerate", len(seen))
	}
}

// TestBackoffJitterDeterministicWithSeed: the schedule is a pure
// function of the injected randomness (full jitter: rnd * ceiling).
func TestBackoffJitterDeterministicWithSeed(t *testing.T) {
	c := New("http://127.0.0.1:0", Config{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
	})
	c.rnd = func() float64 { return 0.5 }
	want := []time.Duration{
		5 * time.Millisecond,  // 0.5 * 10ms
		10 * time.Millisecond, // 0.5 * 20ms
		20 * time.Millisecond, // 0.5 * 40ms (ceiling saturated)
		20 * time.Millisecond,
	}
	for i, w := range want {
		if got := c.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// A pathological draw near zero floors at 1ms instead of hot-looping.
	c.rnd = func() float64 { return 0 }
	if got := c.backoff(1); got != time.Millisecond {
		t.Errorf("backoff floor = %v, want 1ms", got)
	}
}

// TestUnknownAppSentinel: the wire error code maps onto the typed
// sentinel, with no message string-matching.
func TestUnknownAppSentinel(t *testing.T) {
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ctrlplane.ErrorResponse{
			Error: "ghost-1: some human-readable text",
			Code:  ctrlplane.ErrCodeUnknownApp,
		})
	}, Config{})
	_, err := c.Heartbeat(context.Background(), ctrlplane.HeartbeatRequest{ID: "ghost-1"})
	if !IsUnknownApp(err) {
		t.Errorf("IsUnknownApp(%v) = false, want true", err)
	}
	if !errors.Is(err, ErrUnknownApp) {
		t.Errorf("errors.Is(%v, ErrUnknownApp) = false", err)
	}
	if !IsNotFound(err) {
		t.Errorf("IsNotFound(%v) = false (code should not break status checks)", err)
	}

	// A plain 404 without the code (proxy, wrong URL) is NOT the
	// sentinel: degrading to re-register on any 404 would mask bugs.
	c2, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}, Config{})
	_, err = c2.Heartbeat(context.Background(), ctrlplane.HeartbeatRequest{ID: "ghost-1"})
	if IsUnknownApp(err) {
		t.Errorf("IsUnknownApp(%v) = true for a codeless 404", err)
	}
	if IsUnknownApp(nil) {
		t.Error("IsUnknownApp(nil) = true")
	}
}

func asAPIError(err error, target **APIError) bool {
	return errors.As(err, target)
}
