package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/machine"
)

// fakeClock is a settable time source for deterministic breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestBreakerLifecycle: closed -> open after threshold consecutive
// failures -> half-open after the cooldown (one probe) -> closed on
// probe success / re-open on probe failure.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(3, time.Second, clk.Now)

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("fresh breaker is not closed")
	}
	// Two failures: still closed. Third: trips.
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted during half-open")
	}
	// Probe fails: open again for a full cooldown.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the circuit")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the circuit")
	}
	if b.Trips() != 2 {
		t.Errorf("trips = %d, want 2", b.Trips())
	}

	// A success resets the consecutive-failure count.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Error("failure count survived an intervening success")
	}
}

// flakyServer is a minimal control plane whose availability a test can
// toggle; down means connection-level resets (no HTTP response at all).
type flakyServer struct {
	t    *testing.T
	hs   *httptest.Server
	down atomic.Bool
	gen  atomic.Uint64
}

func newFlakyServer(t *testing.T) *flakyServer {
	f := &flakyServer{t: t}
	f.gen.Store(1)
	f.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			panic(http.ErrAbortHandler) // slam the connection shut
		}
		switch r.URL.Path {
		case "/v1/register":
			json.NewEncoder(w).Encode(ctrlplane.RegisterResponse{ID: "app-1", Generation: f.gen.Load()})
		case "/v1/machine":
			json.NewEncoder(w).Encode(ctrlplane.MachineResponse{Machine: machine.PaperModel(), Policy: ctrlplane.PolicyRoofline})
		case "/v1/allocations":
			json.NewEncoder(w).Encode(ctrlplane.AllocationsResponse{
				Generation: f.gen.Load(),
				Machine:    "paper-model",
				Policy:     ctrlplane.PolicyRoofline,
				Apps: []ctrlplane.AppAllocation{
					{ID: "app-1", Name: "solo", PerNode: []int{5, 5, 5, 5}, Threads: 20, PredictedGFLOPS: 200},
				},
				TotalGFLOPS: 200,
			})
		case "/v1/heartbeat":
			json.NewEncoder(w).Encode(ctrlplane.HeartbeatResponse{Generation: f.gen.Load()})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(f.hs.Close)
	return f
}

func (f *flakyServer) resilient(t *testing.T, cfg ResilientConfig) *Resilient {
	t.Helper()
	c := New(f.hs.URL, Config{MaxAttempts: 2, BaseBackoff: time.Millisecond, RequestTimeout: 2 * time.Second})
	r, err := NewResilient(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestResilientServesCachedWhenDown: after one good read, an outage is
// absorbed — the client serves the last-known-good table and reports
// its source, and the breaker trips open instead of hammering.
func TestResilientServesCachedWhenDown(t *testing.T) {
	f := newFlakyServer(t)
	clk := &fakeClock{now: time.Unix(0, 0)}
	r := f.resilient(t, ResilientConfig{BreakerThreshold: 2, BreakerCooldown: time.Minute, Clock: clk.Now})
	ctx := context.Background()

	if _, err := r.Register(ctx, ctrlplane.RegisterRequest{Name: "solo", AI: 10}); err != nil {
		t.Fatalf("register: %v", err)
	}
	live, src, err := r.Allocations(ctx)
	if err != nil || src != SourceLive {
		t.Fatalf("live read: src %v, err %v", src, err)
	}

	f.down.Store(true)
	// First degraded read trips the breaker partway; keep reading until
	// it is fully open — every answer must still be the cached table.
	for i := 0; i < 4; i++ {
		got, src, err := r.Allocations(ctx)
		if err != nil {
			t.Fatalf("degraded read %d: %v", i, err)
		}
		if src != SourceCached {
			t.Fatalf("degraded read %d source = %v, want cached", i, src)
		}
		if got.TotalGFLOPS != live.TotalGFLOPS || len(got.Apps) != len(live.Apps) {
			t.Fatalf("cached table diverged: %+v", got)
		}
	}
	if r.BreakerState() != BreakerOpen {
		t.Errorf("breaker = %v after repeated transport failures, want open", r.BreakerState())
	}

	// Recovery: cooldown elapses, the half-open probe hits a healthy
	// server, and reads go live again.
	f.down.Store(false)
	clk.Advance(time.Minute)
	_, src, err = r.Allocations(ctx)
	if err != nil || src != SourceLive {
		t.Fatalf("post-recovery read: src %v, err %v", src, err)
	}
	if r.BreakerState() != BreakerClosed {
		t.Errorf("breaker = %v after recovery, want closed", r.BreakerState())
	}
}

// TestResilientLocalSolveWhenNothingCached: daemon dies before the
// first allocation read — the client solves locally over its own known
// demand on the cached topology and reproduces the paper's Table I
// optimum (254 > 140 even > 128 node-per-app).
func TestResilientLocalSolveWhenNothingCached(t *testing.T) {
	f := newFlakyServer(t)
	clk := &fakeClock{now: time.Unix(0, 0)}
	r := f.resilient(t, ResilientConfig{BreakerThreshold: 1, BreakerCooldown: time.Minute, Clock: clk.Now})
	ctx := context.Background()

	if _, err := r.Register(ctx, ctrlplane.RegisterRequest{Name: "comp", AI: 10}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if r.Machine() == nil {
		t.Fatal("register did not cache the topology")
	}
	r.SetLocalDemand([]ctrlplane.RegisterRequest{
		{Name: "mem-a", AI: 0.5},
		{Name: "mem-b", AI: 0.5},
		{Name: "mem-c", AI: 0.5},
		{Name: "comp", AI: 10},
	})

	f.down.Store(true)
	got, src, err := r.Allocations(ctx)
	if err != nil {
		t.Fatalf("local fallback: %v", err)
	}
	if src != SourceLocal {
		t.Fatalf("source = %v, want local", src)
	}
	if got.TotalGFLOPS < 250 || got.TotalGFLOPS > 260 {
		t.Errorf("local solve total = %g GFLOPS, want the ~254 Table I optimum", got.TotalGFLOPS)
	}
	if got.Reference == nil {
		t.Fatal("local solve dropped the reference baselines")
	}
	if !(got.TotalGFLOPS > got.Reference.EvenGFLOPS && got.Reference.EvenGFLOPS > got.Reference.NodePerAppGFLOPS) {
		t.Errorf("ranking broken: optimal %g, even %g, node-per-app %g",
			got.TotalGFLOPS, got.Reference.EvenGFLOPS, got.Reference.NodePerAppGFLOPS)
	}
}

// TestResilientAutoReRegister: an eviction (typed unknown_app on
// heartbeat) triggers transparent re-registration and a retried beat.
func TestResilientAutoReRegister(t *testing.T) {
	var regs atomic.Int32
	var beats atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/register":
			n := regs.Add(1)
			id := "app-1"
			if n > 1 {
				id = "app-2"
			}
			json.NewEncoder(w).Encode(ctrlplane.RegisterResponse{ID: id, Generation: uint64(n)})
		case "/v1/heartbeat":
			var hb ctrlplane.HeartbeatRequest
			json.NewDecoder(r.Body).Decode(&hb)
			beats.Add(1)
			if hb.ID == "app-1" {
				// The first ID was "evicted".
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(ctrlplane.ErrorResponse{Error: "unknown", Code: ctrlplane.ErrCodeUnknownApp})
				return
			}
			json.NewEncoder(w).Encode(ctrlplane.HeartbeatResponse{Generation: 2})
		case "/v1/machine":
			json.NewEncoder(w).Encode(ctrlplane.MachineResponse{Machine: machine.PaperModel()})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(hs.Close)

	c := New(hs.URL, Config{MaxAttempts: 2, BaseBackoff: time.Millisecond})
	r, err := NewResilient(c, ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Register(ctx, ctrlplane.RegisterRequest{Name: "app", AI: 1}); err != nil {
		t.Fatal(err)
	}
	if r.ID() != "app-1" {
		t.Fatalf("initial id = %q", r.ID())
	}
	resp, err := r.Heartbeat(ctx, ctrlplane.HeartbeatRequest{})
	if err != nil {
		t.Fatalf("heartbeat across eviction: %v", err)
	}
	if resp.Generation != 2 {
		t.Errorf("generation = %d, want 2", resp.Generation)
	}
	if r.ID() != "app-2" {
		t.Errorf("id after re-register = %q, want app-2", r.ID())
	}
	if r.ReRegisters() != 1 {
		t.Errorf("re-registers = %d, want 1", r.ReRegisters())
	}
	if got := regs.Load(); got != 2 {
		t.Errorf("server saw %d registrations, want 2", got)
	}
}

// TestResilientNoDegradeOnAPIError: a live server rejecting the request
// (4xx) must surface the error, not silently serve stale cache.
func TestResilientNoDegradeOnAPIError(t *testing.T) {
	var served atomic.Bool
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/allocations" && served.Load() {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(ctrlplane.ErrorResponse{Error: "bad request"})
			return
		}
		served.Store(true)
		json.NewEncoder(w).Encode(ctrlplane.AllocationsResponse{Generation: 1, TotalGFLOPS: 100})
	}))
	t.Cleanup(hs.Close)
	r, err := NewResilient(New(hs.URL, Config{MaxAttempts: 1, BaseBackoff: time.Millisecond}), ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, src, err := r.Allocations(ctx); err != nil || src != SourceLive {
		t.Fatalf("first read: src %v, err %v", src, err)
	}
	_, _, err = r.Allocations(ctx)
	if err == nil {
		t.Fatal("API rejection was masked by the cache")
	}
	if r.BreakerState() != BreakerClosed {
		t.Errorf("breaker = %v, want closed (the daemon IS alive)", r.BreakerState())
	}
}
