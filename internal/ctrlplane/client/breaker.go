package client

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the daemon is presumed down; requests are refused
	// locally until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; a single probe request is
	// in flight to test whether the daemon recovered.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker. It trips open after
// Threshold transport-level failures in a row, refuses further calls
// for Cooldown, then lets exactly one half-open probe through; a
// successful probe closes the circuit, a failed one re-opens it for
// another cooldown. Safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	trips    uint64
}

// NewBreaker builds a breaker. threshold <= 0 defaults to 3 consecutive
// failures; cooldown <= 0 defaults to 2s; clock nil defaults to
// time.Now.
func NewBreaker(threshold int, cooldown time.Duration, clock func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// Allow reports whether a request may be attempted now. In the open
// state it returns false until the cooldown elapses, at which point it
// transitions to half-open and admits a single probe; concurrent
// callers during the probe are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // one probe at a time
	default: // BreakerOpen
		if b.clock().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	}
}

// Record reports the outcome of an attempt admitted by Allow. Success
// closes the circuit; failure counts toward the threshold (closed) or
// re-opens it (half-open probe).
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.clock()
		b.probing = false
		b.trips++
	default:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.clock()
			b.fails = 0
			b.trips++
		}
	}
}

// State returns the current position (open reads as half-open once the
// cooldown has elapsed only after an Allow observes it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts closed/half-open -> open transitions.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
