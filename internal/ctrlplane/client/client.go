// Package client is the typed Go client for the ctrlplane HTTP API:
// registration, heartbeats, deregistration, and allocation reads, with
// exponential-backoff retries and context-based timeouts.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ctrlplane"
)

// ErrUnknownApp is the client-side sentinel for the server's
// "unknown_app" error code: the ID was evicted (or never existed) and
// the application must re-register. Detect it with errors.Is (or the
// IsUnknownApp helper); the Resilient wrapper re-registers on it
// automatically.
var ErrUnknownApp = errors.New("ctrlplane: unknown application (evicted or never registered)")

// APIError is a non-2xx response from the control plane.
type APIError struct {
	Status  int
	Message string
	// Code is the server's machine-readable cause (may be empty for
	// older servers or non-ctrlplane intermediaries).
	Code string
	// Leader is the current leader's URL on not_leader redirects from a
	// replica follower.
	Leader string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("ctrlplane: server returned %d: %s", e.Status, e.Message)
}

// Is lets errors.Is(err, ErrUnknownApp) match responses carrying the
// unknown_app code, without string-matching messages.
func (e *APIError) Is(target error) bool {
	return target == ErrUnknownApp && e.Code == ctrlplane.ErrCodeUnknownApp
}

// IsNotFound reports whether the error is a 404 — for heartbeats, the
// signal that the application was evicted and must re-register.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// IsUnknownApp reports whether the server rejected the request because
// the application ID is not registered (typed via the wire error code,
// so callers never have to parse messages).
func IsUnknownApp(err error) bool {
	return errors.Is(err, ErrUnknownApp)
}

// IsNotLeader reports whether a replica follower redirected the request
// (421 + not_leader). The APIError's Leader field, when set, names
// where to go instead.
func IsNotLeader(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == ctrlplane.ErrCodeNotLeader
}

// IsOverloaded reports whether the server shed the request (503 +
// overloaded); the honest reaction is to back off, not hammer.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == ctrlplane.ErrCodeOverloaded
}

// Config tunes a Client.
type Config struct {
	// HTTPClient is the transport (default: a dedicated http.Client).
	HTTPClient *http.Client
	// MaxAttempts is the total number of tries per request, first
	// included (default 4). Connection failures and 5xx responses are
	// retried; 4xx responses are not.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the delay between attempts (default 2s).
	MaxBackoff time.Duration
	// RequestTimeout bounds each request when the caller's context has
	// no deadline of its own (default 10s).
	RequestTimeout time.Duration
}

// Client talks to one control-plane server. Safe for concurrent use.
type Client struct {
	base string
	cfg  Config
	// rnd is the jitter source (the shared math/rand default); tests
	// swap in a seeded function for deterministic schedules.
	rnd func() float64
	// lastEpoch / lastLeader mirror the X-Coop-Epoch / X-Coop-Leader
	// response headers a replica stamps on every reply; the Resilient
	// multi-endpoint wrapper fences and fails over with them.
	lastEpoch  atomic.Uint64
	lastLeader atomic.Pointer[string]
}

// New creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:8377").
func New(baseURL string, cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), cfg: cfg, rnd: rand.Float64}
}

// do performs one API call with retries. in (may be nil) is marshaled
// as the JSON body; out (may be nil) receives the decoded response.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("ctrlplane: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, c.backoff(attempt)); err != nil {
				return fmt.Errorf("ctrlplane: giving up after %d attempts: %w (last error: %v)", attempt, err, lastErr)
			}
		}
		retryable, err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
	}
	return fmt.Errorf("ctrlplane: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// backoff returns the full-jitter delay before the given attempt:
// uniform over (0, ceiling], where the ceiling doubles from BaseBackoff
// and saturates at MaxBackoff. Deterministic backoff would send every
// app's retry at the same instant when a restarted daemon comes back —
// a synchronized stampede; the jitter spreads the herd.
func (c *Client) backoff(attempt int) time.Duration {
	ceiling := c.cfg.BaseBackoff << (attempt - 1)
	if ceiling > c.cfg.MaxBackoff || ceiling <= 0 {
		ceiling = c.cfg.MaxBackoff
	}
	d := time.Duration(c.rnd() * float64(ceiling))
	if d < time.Millisecond {
		// Floor keeps a tiny draw from turning retries into a hot loop.
		d = time.Millisecond
	}
	if d > ceiling {
		d = ceiling
	}
	return d
}

func sleepBackoff(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// once performs a single HTTP exchange. It reports whether a failure is
// worth retrying (transport errors and 5xx: yes; 4xx: no).
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return false, fmt.Errorf("ctrlplane: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// Transport-level failure (connection refused, reset, timeout):
		// retryable unless the caller's context is done.
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return true, err
	}
	defer resp.Body.Close()
	c.observeReplicaHeaders(resp)
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return true, fmt.Errorf("ctrlplane: reading response: %w", err)
	}
	if resp.StatusCode >= 400 {
		msg := strings.TrimSpace(string(data))
		var code, leader string
		var er ctrlplane.ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
			code = er.Code
			leader = er.Leader
		}
		return resp.StatusCode >= 500, &APIError{Status: resp.StatusCode, Message: msg, Code: code, Leader: leader}
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return false, fmt.Errorf("ctrlplane: decoding response: %w", err)
		}
	}
	return false, nil
}

// observeReplicaHeaders records the replica metadata a HA server stamps
// on every response (standalone servers send neither header).
func (c *Client) observeReplicaHeaders(resp *http.Response) {
	if v := resp.Header.Get(ctrlplane.HeaderEpoch); v != "" {
		if epoch, err := strconv.ParseUint(v, 10, 64); err == nil {
			c.lastEpoch.Store(epoch)
		}
	}
	if v := resp.Header.Get(ctrlplane.HeaderLeader); v != "" {
		c.lastLeader.Store(&v)
	}
}

// LastEpoch returns the fencing epoch from the most recent response (0
// when talking to a standalone server).
func (c *Client) LastEpoch() uint64 { return c.lastEpoch.Load() }

// LastLeader returns the leader URL from the most recent response (""
// when unknown or standalone).
func (c *Client) LastLeader() string {
	if p := c.lastLeader.Load(); p != nil {
		return *p
	}
	return ""
}

// BaseURL returns the endpoint this client targets.
func (c *Client) BaseURL() string { return c.base }

// ReplicaStatus reads /v1/replica/status. A standalone (non-replicated)
// daemon answers 404; callers render that as "standalone".
func (c *Client) ReplicaStatus(ctx context.Context) (*ctrlplane.ReplicaStatusResponse, error) {
	var resp ctrlplane.ReplicaStatusResponse
	if err := c.do(ctx, http.MethodGet, "/v1/replica/status", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Register announces an application and returns its ID and first
// allocation.
func (c *Client) Register(ctx context.Context, req ctrlplane.RegisterRequest) (*ctrlplane.RegisterResponse, error) {
	var resp ctrlplane.RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/v1/register", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Heartbeat refreshes the app's liveness deadline and returns its
// current allocation. IsNotFound(err) means the app was evicted.
func (c *Client) Heartbeat(ctx context.Context, req ctrlplane.HeartbeatRequest) (*ctrlplane.HeartbeatResponse, error) {
	var resp ctrlplane.HeartbeatResponse
	if err := c.do(ctx, http.MethodPost, "/v1/heartbeat", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Report delivers observed throughput samples to the adaptive
// recalibration loop. The response carries the app's drift status after
// the samples. Fails (404) against a daemon running without
// -recalibrate; IsNotFound(err) with code unknown_app means the app was
// evicted.
func (c *Client) Report(ctx context.Context, req ctrlplane.ReportRequest) (*ctrlplane.ReportResponse, error) {
	var resp ctrlplane.ReportResponse
	if err := c.do(ctx, http.MethodPost, "/v1/report", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Drift reads the adaptive loop's per-application drift status.
func (c *Client) Drift(ctx context.Context) (*ctrlplane.DriftResponse, error) {
	var resp ctrlplane.DriftResponse
	if err := c.do(ctx, http.MethodGet, "/v1/drift", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Deregister removes an application, releasing its cores.
func (c *Client) Deregister(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/apps/"+url.PathEscape(id), nil, nil)
}

// Apps lists the registered applications.
func (c *Client) Apps(ctx context.Context) (*ctrlplane.AppsResponse, error) {
	var resp ctrlplane.AppsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/apps", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Allocations reads the machine-wide allocation table.
func (c *Client) Allocations(ctx context.Context) (*ctrlplane.AllocationsResponse, error) {
	var resp ctrlplane.AllocationsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/allocations", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Machine reads the server's topology (for local fallback solves).
func (c *Client) Machine(ctx context.Context) (*ctrlplane.MachineResponse, error) {
	var resp ctrlplane.MachineResponse
	if err := c.do(ctx, http.MethodGet, "/v1/machine", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health reads /healthz.
func (c *Client) Health(ctx context.Context) (*ctrlplane.HealthResponse, error) {
	var resp ctrlplane.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics reads /metricsz.
func (c *Client) Metrics(ctx context.Context) (*ctrlplane.MetricsResponse, error) {
	var resp ctrlplane.MetricsResponse
	if err := c.do(ctx, http.MethodGet, "/metricsz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WaitForReallocation polls until the server's generation differs from
// prev (an app joined, left, or was evicted) and returns the new
// allocation table. It respects ctx for cancellation and deadline.
func (c *Client) WaitForReallocation(ctx context.Context, prev uint64, poll time.Duration) (*ctrlplane.AllocationsResponse, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		resp, err := c.Allocations(ctx)
		if err != nil {
			return nil, err
		}
		if resp.Generation != prev {
			return resp, nil
		}
		if err := sleepBackoff(ctx, poll); err != nil {
			return nil, fmt.Errorf("ctrlplane: waiting for reallocation past generation %d: %w", prev, err)
		}
	}
}
