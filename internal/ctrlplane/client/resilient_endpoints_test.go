package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/ctrlplane"
)

// replicaStub is a scriptable fake replica: it stamps the X-Coop-*
// headers and either serves allocations or redirects like a follower.
type replicaStub struct {
	epoch  uint64
	gen    uint64
	leader string // "" = serve; otherwise 421-redirect there
	hits   int
}

func (s *replicaStub) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.hits++
		w.Header().Set(ctrlplane.HeaderEpoch, strconv.FormatUint(s.epoch, 10))
		if s.leader != "" {
			w.Header().Set(ctrlplane.HeaderRole, "follower")
			w.Header().Set(ctrlplane.HeaderLeader, s.leader)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			json.NewEncoder(w).Encode(ctrlplane.ErrorResponse{
				Error: "not the leader", Code: ctrlplane.ErrCodeNotLeader, Leader: s.leader,
			})
			return
		}
		w.Header().Set(ctrlplane.HeaderRole, "leader")
		json.NewEncoder(w).Encode(ctrlplane.AllocationsResponse{
			Generation: s.gen,
			Machine:    "stub",
			Apps:       []ctrlplane.AppAllocation{{ID: "a-1", PerNode: []int{1}}},
		})
	}
}

func endpointsFixture(t *testing.T, stubs ...*replicaStub) []string {
	t.Helper()
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		hs := httptest.NewServer(s.handler())
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	return urls
}

func newEndpointsResilient(t *testing.T, urls []string, rcfg ResilientConfig) *Resilient {
	t.Helper()
	r, err := NewResilientEndpoints(urls, Config{MaxAttempts: 1, BaseBackoff: time.Millisecond}, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFailoverOnDeadEndpoint: the preferred endpoint is dead; the call
// transparently lands on the next one and it becomes preferred.
func TestFailoverOnDeadEndpoint(t *testing.T) {
	live := &replicaStub{epoch: 1, gen: 5}
	urls := endpointsFixture(t, live)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // port now refuses connections
	r := newEndpointsResilient(t, []string{dead.URL, urls[0]}, ResilientConfig{})

	resp, src, err := r.Allocations(context.Background())
	if err != nil || src != SourceLive {
		t.Fatalf("allocations: src %v, err %v", src, err)
	}
	if resp.Generation != 5 {
		t.Errorf("generation = %d, want 5", resp.Generation)
	}
	if r.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", r.Failovers())
	}
	if got := r.Client().BaseURL(); got != urls[0] {
		t.Errorf("preferred endpoint = %s, want the live one %s", got, urls[0])
	}
	// Subsequent calls go straight to the adopted endpoint.
	before := live.hits
	if _, _, err := r.Allocations(context.Background()); err != nil {
		t.Fatal(err)
	}
	if live.hits != before+1 {
		t.Errorf("live hits = %d, want %d (no detour through the dead endpoint)", live.hits, before+1)
	}
}

// TestNotLeaderRedirectChasing: a follower's 421 names the leader and
// the call is retried there within the same invocation.
func TestNotLeaderRedirectChasing(t *testing.T) {
	leader := &replicaStub{epoch: 3, gen: 9}
	leaderURLs := endpointsFixture(t, leader)
	follower := &replicaStub{epoch: 3, leader: leaderURLs[0]}
	followerURLs := endpointsFixture(t, follower)

	r := newEndpointsResilient(t, []string{followerURLs[0], leaderURLs[0]}, ResilientConfig{})
	resp, src, err := r.Allocations(context.Background())
	if err != nil || src != SourceLive {
		t.Fatalf("allocations: src %v, err %v", src, err)
	}
	if resp.Generation != 9 {
		t.Errorf("generation = %d, want the leader's 9", resp.Generation)
	}
	if follower.hits != 1 || leader.hits == 0 {
		t.Errorf("hits follower=%d leader=%d, want exactly one redirect then the leader", follower.hits, leader.hits)
	}
	if got := r.Client().BaseURL(); got != leaderURLs[0] {
		t.Errorf("preferred endpoint = %s, want the leader %s", got, leaderURLs[0])
	}
}

// TestFencingRejectsStaleEpoch: once the client has seen epoch 2, an
// endpoint still serving epoch 1 (a deposed leader) is fenced — its
// answer is never served live, even when it is the only one reachable.
func TestFencingRejectsStaleEpoch(t *testing.T) {
	stale := &replicaStub{epoch: 1, gen: 7}
	urls := endpointsFixture(t, stale)
	r := newEndpointsResilient(t, urls, ResilientConfig{})
	// Seed the watermark as if this client had already talked to the
	// epoch-2 leader.
	if r.fence(2, 20, true) {
		t.Fatal("seeding the watermark should not read as stale")
	}

	got, src, err := r.Allocations(context.Background())
	if src == SourceLive {
		t.Fatalf("stale replica's answer served live through the fence (gen %d)", got.Generation)
	}
	// With no cache and no topology there is nothing to degrade to, so
	// an error is the correct outcome — a served regression is not.
	if err == nil && got.Generation < 20 {
		t.Errorf("generation regressed: served %d after watermark 20", got.Generation)
	}
	if stale.hits == 0 {
		t.Error("stale endpoint was never consulted; the fence was not exercised")
	}
}

// TestFencingDegradesToCache: with a table cached from the new epoch, a
// stale-only outage degrades to the cache instead of erroring or
// regressing.
func TestFencingDegradesToCache(t *testing.T) {
	fresh := &replicaStub{epoch: 2, gen: 20}
	stale := &replicaStub{epoch: 1, gen: 7}
	freshURLs := endpointsFixture(t, fresh)
	staleURLs := endpointsFixture(t, stale)
	r := newEndpointsResilient(t, []string{freshURLs[0], staleURLs[0]}, ResilientConfig{})

	if _, src, err := r.Allocations(context.Background()); err != nil || src != SourceLive {
		t.Fatalf("first read: src %v, err %v", src, err)
	}
	// The new leader is deposed in spirit: it now redirects to the stale
	// replica, whose epoch-1 answers the fence discards.
	fresh.leader = staleURLs[0]
	fresh.epoch = 1

	resp, src, err := r.Allocations(context.Background())
	if err != nil {
		t.Fatalf("read during stale-only outage: %v", err)
	}
	if src != SourceCached {
		t.Errorf("source = %v, want cached (fenced live answer discarded)", src)
	}
	if resp.Generation != 20 {
		t.Errorf("generation = %d, want the cached 20", resp.Generation)
	}
}

// TestNextHeartbeatInJitter: intervals are uniformly spread over
// [1-j, 1+j] x nominal, deterministic under a seeded source, with an
// extra one-shot splay after a failover.
func TestNextHeartbeatInJitter(t *testing.T) {
	seq := []float64{0, 0.5, 1, 0.25}
	i := 0
	rnd := func() float64 { v := seq[i%len(seq)]; i++; return v }
	r, err := NewResilient(New("http://127.0.0.1:1", Config{}), ResilientConfig{
		HeartbeatJitter: 0.2,
		Rand:            rnd,
	})
	if err != nil {
		t.Fatal(err)
	}
	interval := time.Second
	// rnd=0 -> 0.8x, rnd=0.5 -> 1.0x, rnd=1 -> 1.2x
	for _, want := range []time.Duration{800 * time.Millisecond, time.Second, 1200 * time.Millisecond} {
		if got := r.NextHeartbeatIn(interval); got != want {
			t.Errorf("NextHeartbeatIn = %v, want %v", got, want)
		}
	}
	// A failover arms the desync splay: one extra draw is added once.
	r.adopt(0)
	r.mu.Lock()
	r.desync = true
	r.mu.Unlock()
	i = 0 // draws: 0 -> 0.8x, then splay draw 0.5 -> +0.1x
	if got, want := r.NextHeartbeatIn(interval), 900*time.Millisecond; got != want {
		t.Errorf("post-failover NextHeartbeatIn = %v, want %v (base + splay)", got, want)
	}
	i = 0
	if got, want := r.NextHeartbeatIn(interval), 800*time.Millisecond; got != want {
		t.Errorf("second post-failover NextHeartbeatIn = %v, want %v (splay is one-shot)", got, want)
	}
	// Negative jitter disables.
	r2, _ := NewResilient(New("http://127.0.0.1:1", Config{}), ResilientConfig{HeartbeatJitter: -1})
	if got := r2.NextHeartbeatIn(interval); got != interval {
		t.Errorf("disabled jitter: got %v, want %v", got, interval)
	}
}
