package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// ErrCircuitOpen is returned when the breaker refuses a call and no
// degraded answer (cached or locally solved) is available.
var ErrCircuitOpen = errors.New("ctrlplane: circuit breaker open (daemon unreachable)")

// Source says where a degraded-capable read was answered from.
type Source int

const (
	// SourceLive: the daemon answered.
	SourceLive Source = iota
	// SourceCached: the daemon is unreachable; this is the last-known-
	// good allocation it served.
	SourceCached
	// SourceLocal: the daemon is unreachable and nothing was cached; a
	// local solver run over the client's own demand produced this.
	SourceLocal
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceLive:
		return "live"
	case SourceCached:
		return "cached"
	case SourceLocal:
		return "local"
	default:
		return "unknown"
	}
}

// ResilientConfig tunes a Resilient client.
type ResilientConfig struct {
	// BreakerThreshold is the consecutive transport-failure count that
	// trips the circuit open (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a
	// half-open probe (default 2s).
	BreakerCooldown time.Duration
	// LocalPolicy is the solver policy for local fallback solves
	// (default the server's roofline policy).
	LocalPolicy string
	// Clock is the breaker's time source (nil: time.Now).
	Clock func() time.Time
}

// Resilient wraps Client with graceful degradation: a circuit breaker
// over the transport, the last-known-good allocation and the topology
// it was computed against, a local solver fallback, and automatic
// re-registration when a heartbeat reports the app unknown (evicted, or
// the daemon restarted without this app's state).
//
// During a daemon outage Allocations keeps answering — first from
// cache, else from a local roofline solve over the demand this client
// knows about — instead of erroring, so the application never stalls on
// the control plane.
type Resilient struct {
	c  *Client
	br *Breaker

	solver *ctrlplane.Solver

	mu          sync.Mutex
	machine     *machine.Machine
	lastAlloc   *ctrlplane.AllocationsResponse
	localDemand []ctrlplane.RegisterRequest
	id          string
	regReq      ctrlplane.RegisterRequest
	registered  bool
	reRegisters uint64
}

// NewResilient builds the wrapper around an existing Client.
func NewResilient(c *Client, cfg ResilientConfig) (*Resilient, error) {
	if cfg.LocalPolicy == "" {
		cfg.LocalPolicy = ctrlplane.PolicyRoofline
	}
	solver, err := ctrlplane.NewSolver(cfg.LocalPolicy)
	if err != nil {
		return nil, err
	}
	return &Resilient{
		c:      c,
		br:     NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		solver: solver,
	}, nil
}

// Client returns the wrapped plain client.
func (r *Resilient) Client() *Client { return r.c }

// BreakerState exposes the circuit position for monitoring.
func (r *Resilient) BreakerState() BreakerState { return r.br.State() }

// ID returns the app's current registration ID ("" before Register).
// It changes when an eviction forces a re-registration.
func (r *Resilient) ID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.id
}

// ReRegisters counts automatic re-registrations after eviction.
func (r *Resilient) ReRegisters() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reRegisters
}

// record classifies an outcome for the breaker: any response from the
// server — including 4xx rejections — proves the daemon alive; only
// transport-level failures (after the client's own retries) count
// against the circuit.
func (r *Resilient) record(err error) {
	var ae *APIError
	r.br.Record(err == nil || errors.As(err, &ae))
}

// Register announces the application, remembers the request for later
// automatic re-registration, and caches the machine topology for local
// fallback solves.
func (r *Resilient) Register(ctx context.Context, req ctrlplane.RegisterRequest) (*ctrlplane.RegisterResponse, error) {
	if !r.br.Allow() {
		return nil, ErrCircuitOpen
	}
	resp, err := r.c.Register(ctx, req)
	r.record(err)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.id = resp.ID
	r.regReq = req
	r.registered = true
	if len(r.localDemand) == 0 {
		r.localDemand = []ctrlplane.RegisterRequest{req}
	}
	needMachine := r.machine == nil
	r.mu.Unlock()
	if needMachine {
		if mr, merr := r.c.Machine(ctx); merr == nil && mr.Machine != nil {
			r.mu.Lock()
			r.machine = mr.Machine
			r.mu.Unlock()
		}
	}
	return resp, nil
}

// SetLocalDemand overrides the demand set used by local fallback
// solves. A cooperating application that knows the whole mix (e.g. the
// paper's three memory-bound plus one compute-bound jobs) can thus
// degrade to the same Table I optimum the daemon would have served.
func (r *Resilient) SetLocalDemand(reqs []ctrlplane.RegisterRequest) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.localDemand = append([]ctrlplane.RegisterRequest(nil), reqs...)
}

// SetMachine seeds the cached topology (normally learned from the
// daemon at Register time) so local solves work daemon-never-seen.
func (r *Resilient) SetMachine(m *machine.Machine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.machine = m
}

// Machine returns the cached topology (nil if never learned).
func (r *Resilient) Machine() *machine.Machine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.machine
}

// Heartbeat refreshes liveness. If the daemon reports the app unknown —
// it was evicted, or restarted without this app's state — the wrapper
// re-registers with the remembered spec and retries the heartbeat under
// the new ID, so callers see at most a changed allocation, never an
// "unknown app" error loop.
func (r *Resilient) Heartbeat(ctx context.Context, hb ctrlplane.HeartbeatRequest) (*ctrlplane.HeartbeatResponse, error) {
	if !r.br.Allow() {
		return nil, ErrCircuitOpen
	}
	r.mu.Lock()
	if hb.ID == "" {
		hb.ID = r.id
	}
	req, registered := r.regReq, r.registered
	r.mu.Unlock()

	resp, err := r.c.Heartbeat(ctx, hb)
	r.record(err)
	if err == nil {
		return resp, nil
	}
	if !IsUnknownApp(err) || !registered {
		return nil, err
	}
	// Evicted: re-register and retry once under the fresh ID.
	reg, rerr := r.c.Register(ctx, req)
	r.record(rerr)
	if rerr != nil {
		return nil, fmt.Errorf("re-registering after eviction: %w (original: %v)", rerr, err)
	}
	r.mu.Lock()
	r.id = reg.ID
	r.reRegisters++
	r.mu.Unlock()
	hb.ID = reg.ID
	resp, err = r.c.Heartbeat(ctx, hb)
	r.record(err)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Deregister removes the app (pass-through with breaker accounting).
func (r *Resilient) Deregister(ctx context.Context) error {
	r.mu.Lock()
	id := r.id
	r.registered = false
	r.mu.Unlock()
	if id == "" {
		return nil
	}
	if !r.br.Allow() {
		return ErrCircuitOpen
	}
	err := r.c.Deregister(ctx, id)
	r.record(err)
	return err
}

// Allocations reads the machine-wide allocation table, degrading
// gracefully: live from the daemon when reachable; otherwise the
// last-known-good table; otherwise a local solve over the demand this
// client knows. The Source return says which one answered.
func (r *Resilient) Allocations(ctx context.Context) (*ctrlplane.AllocationsResponse, Source, error) {
	if r.br.Allow() {
		resp, err := r.c.Allocations(ctx)
		r.record(err)
		if err == nil {
			r.mu.Lock()
			r.lastAlloc = copyAllocations(resp)
			r.mu.Unlock()
			return resp, SourceLive, nil
		}
		var ae *APIError
		if errors.As(err, &ae) {
			// The daemon is alive and rejected us; degrading would mask a
			// real error, so surface it.
			return nil, SourceLive, err
		}
	}
	return r.degraded()
}

// LastKnownGood returns the cached allocation table, if any.
func (r *Resilient) LastKnownGood() (*ctrlplane.AllocationsResponse, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastAlloc == nil {
		return nil, false
	}
	return copyAllocations(r.lastAlloc), true
}

// degraded serves an allocation without the daemon.
func (r *Resilient) degraded() (*ctrlplane.AllocationsResponse, Source, error) {
	r.mu.Lock()
	cached := copyAllocations(r.lastAlloc)
	m := r.machine
	demand := append([]ctrlplane.RegisterRequest(nil), r.localDemand...)
	r.mu.Unlock()
	if cached != nil {
		return cached, SourceCached, nil
	}
	if m == nil || len(demand) == 0 {
		return nil, SourceLocal, fmt.Errorf("%w and no cached allocation or topology for a local solve", ErrCircuitOpen)
	}
	resp, err := r.localSolve(m, demand)
	if err != nil {
		return nil, SourceLocal, err
	}
	return resp, SourceLocal, nil
}

// localSolve runs the same solver the daemon would, over the cached
// topology and the locally known demand.
func (r *Resilient) localSolve(m *machine.Machine, demand []ctrlplane.RegisterRequest) (*ctrlplane.AllocationsResponse, error) {
	apps := make([]ctrlplane.AppState, len(demand))
	for i, d := range demand {
		pl := roofline.NUMAPerfect
		if d.Placement == ctrlplane.PlacementBad {
			pl = roofline.NUMABad
		}
		name := d.Name
		if name == "" {
			name = "app"
		}
		apps[i] = ctrlplane.AppState{
			ID: fmt.Sprintf("local-%s-%d", name, i+1),
			Spec: ctrlplane.AppSpec{
				Name:       name,
				AI:         d.AI,
				Placement:  pl,
				HomeNode:   machine.NodeID(d.HomeNode),
				MaxThreads: d.MaxThreads,
			},
		}
	}
	sol, err := r.solver.Solve(m, apps)
	if err != nil {
		return nil, fmt.Errorf("local fallback solve: %w", err)
	}
	resp := &ctrlplane.AllocationsResponse{
		Machine:     m.Name,
		Policy:      "local-" + r.solver.Policy(),
		Apps:        make([]ctrlplane.AppAllocation, len(sol.PerApp)),
		TotalGFLOPS: sol.TotalGFLOPS,
	}
	for i, a := range sol.PerApp {
		threads := 0
		for _, c := range a.PerNode {
			threads += c
		}
		resp.Apps[i] = ctrlplane.AppAllocation{
			ID: a.ID, Name: a.Name, PerNode: a.PerNode,
			Threads: threads, PredictedGFLOPS: a.GFLOPS,
		}
	}
	if sol.EvenGFLOPS > 0 || sol.NodePerAppGFLOPS > 0 {
		resp.Reference = &ctrlplane.ReferenceAllocations{
			EvenGFLOPS:       sol.EvenGFLOPS,
			NodePerAppGFLOPS: sol.NodePerAppGFLOPS,
		}
	}
	return resp, nil
}

// copyAllocations deep-copies a table so cached state can't be mutated
// by callers (nil in, nil out).
func copyAllocations(in *ctrlplane.AllocationsResponse) *ctrlplane.AllocationsResponse {
	if in == nil {
		return nil
	}
	out := *in
	out.Apps = make([]ctrlplane.AppAllocation, len(in.Apps))
	for i, a := range in.Apps {
		out.Apps[i] = a
		out.Apps[i].PerNode = append([]int(nil), a.PerNode...)
	}
	if in.Reference != nil {
		ref := *in.Reference
		out.Reference = &ref
	}
	return &out
}
