package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// ErrCircuitOpen is returned when every endpoint's breaker refuses a
// call and no degraded answer (cached or locally solved) is available.
var ErrCircuitOpen = errors.New("ctrlplane: circuit breaker open (daemon unreachable)")

// ErrStaleReplica marks a response fenced off because its (epoch,
// generation) regressed below what this client has already seen — the
// answering replica is a deposed leader or a lagging follower.
var ErrStaleReplica = errors.New("ctrlplane: stale replica response (fenced by epoch/generation)")

// Source says where a degraded-capable read was answered from.
type Source int

const (
	// SourceLive: the daemon answered.
	SourceLive Source = iota
	// SourceCached: the daemon is unreachable; this is the last-known-
	// good allocation it served.
	SourceCached
	// SourceLocal: the daemon is unreachable and nothing was cached; a
	// local solver run over the client's own demand produced this.
	SourceLocal
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceLive:
		return "live"
	case SourceCached:
		return "cached"
	case SourceLocal:
		return "local"
	default:
		return "unknown"
	}
}

// ResilientConfig tunes a Resilient client.
type ResilientConfig struct {
	// BreakerThreshold is the consecutive transport-failure count that
	// trips an endpoint's circuit open (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a circuit stays open before a
	// half-open probe (default 2s).
	BreakerCooldown time.Duration
	// LocalPolicy is the solver policy for local fallback solves
	// (default the server's roofline policy).
	LocalPolicy string
	// HeartbeatJitter is the fractional spread j applied by
	// NextHeartbeatIn: each interval is drawn uniformly from
	// [1-j, 1+j] x nominal, plus a one-shot desync splay after a
	// failover. Default 0.2; negative disables jitter. Without it,
	// every client that failed over together heartbeats the new leader
	// in lockstep — a thundering herd at exactly the moment the
	// promoted follower is busiest.
	HeartbeatJitter float64
	// Rand is the jitter source (nil: math/rand); tests inject a seeded
	// function for deterministic schedules.
	Rand func() float64
	// Clock is the breakers' time source (nil: time.Now).
	Clock func() time.Time
}

// endpoint is one replica URL with its own client and circuit breaker:
// one replica being down must not poison calls to the others.
type endpoint struct {
	c  *Client
	br *Breaker
}

// Resilient wraps one or more endpoints with graceful degradation: a
// per-endpoint circuit breaker, leader discovery and transparent
// failover across replicas, epoch/generation fencing of stale replicas,
// the last-known-good allocation, a local solver fallback, and
// automatic re-registration when a heartbeat reports the app unknown
// (evicted, daemon restarted, or a fresh leader promoted without this
// app's latest state).
//
// During an outage Allocations keeps answering — first from another
// replica, then from cache, else from a local roofline solve — instead
// of erroring, so the application never stalls on the control plane.
type Resilient struct {
	eps    []*endpoint
	cfg    ResilientConfig
	solver *ctrlplane.Solver
	rnd    func() float64

	mu          sync.Mutex
	cur         int // preferred endpoint (last known good / leader)
	maxEpoch    uint64
	maxGen      uint64
	failovers   uint64
	desync      bool // one extra heartbeat splay pending after failover
	machine     *machine.Machine
	lastAlloc   *ctrlplane.AllocationsResponse
	localDemand []ctrlplane.RegisterRequest
	id          string
	regReq      ctrlplane.RegisterRequest
	registered  bool
	reRegisters uint64
}

// NewResilient builds the wrapper around one existing Client.
func NewResilient(c *Client, cfg ResilientConfig) (*Resilient, error) {
	return newResilient([]*Client{c}, cfg)
}

// NewResilientEndpoints builds the wrapper over a replica group: one
// client+breaker per URL, calls routed to the leader (discovered via
// not_leader redirects and response headers) with transparent failover
// to the next endpoint when the current one dies.
func NewResilientEndpoints(endpoints []string, ccfg Config, rcfg ResilientConfig) (*Resilient, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("ctrlplane: no endpoints configured")
	}
	clients := make([]*Client, len(endpoints))
	for i, e := range endpoints {
		clients[i] = New(e, ccfg)
	}
	return newResilient(clients, rcfg)
}

func newResilient(clients []*Client, cfg ResilientConfig) (*Resilient, error) {
	if cfg.LocalPolicy == "" {
		cfg.LocalPolicy = ctrlplane.PolicyRoofline
	}
	if cfg.HeartbeatJitter == 0 {
		cfg.HeartbeatJitter = 0.2
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	solver, err := ctrlplane.NewSolver(cfg.LocalPolicy)
	if err != nil {
		return nil, err
	}
	r := &Resilient{cfg: cfg, solver: solver, rnd: cfg.Rand}
	for _, c := range clients {
		r.eps = append(r.eps, &endpoint{
			c:  c,
			br: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		})
	}
	return r, nil
}

// Client returns the currently preferred endpoint's plain client.
func (r *Resilient) Client() *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eps[r.cur].c
}

// Endpoints returns the configured endpoint URLs in order.
func (r *Resilient) Endpoints() []string {
	urls := make([]string, len(r.eps))
	for i, ep := range r.eps {
		urls[i] = ep.c.BaseURL()
	}
	return urls
}

// BreakerState exposes the preferred endpoint's circuit position.
func (r *Resilient) BreakerState() BreakerState {
	r.mu.Lock()
	ep := r.eps[r.cur]
	r.mu.Unlock()
	return ep.br.State()
}

// Failovers counts preferred-endpoint switches (leader changes and
// dead-endpoint evictions).
func (r *Resilient) Failovers() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failovers
}

// Epoch returns the highest fencing epoch observed across endpoints (0
// against standalone servers).
func (r *Resilient) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxEpoch
}

// ID returns the app's current registration ID ("" before Register).
// It changes when an eviction forces a re-registration.
func (r *Resilient) ID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.id
}

// ReRegisters counts automatic re-registrations after eviction.
func (r *Resilient) ReRegisters() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reRegisters
}

// NextHeartbeatIn returns how long to wait before the next heartbeat,
// given the nominal interval: uniformly jittered by HeartbeatJitter,
// plus a one-shot extra splay right after a failover so a fleet that
// switched leaders together does not re-synchronize into a thundering
// herd against the freshly promoted follower.
func (r *Resilient) NextHeartbeatIn(interval time.Duration) time.Duration {
	j := r.cfg.HeartbeatJitter
	if j < 0 || interval <= 0 {
		return interval
	}
	r.mu.Lock()
	desync := r.desync
	r.desync = false
	r.mu.Unlock()
	f := 1 - j + 2*j*r.rnd()
	d := time.Duration(f * float64(interval))
	if desync {
		d += time.Duration(j * r.rnd() * float64(interval))
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// fence checks a successful response's (epoch, generation) against the
// high-water mark and advances it. A regression means a stale replica
// answered; the response must be discarded, not believed.
func (r *Resilient) fence(epoch, gen uint64, hasGen bool) (stale bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch < r.maxEpoch {
		return true
	}
	if epoch == r.maxEpoch && hasGen && gen < r.maxGen {
		return true
	}
	if epoch > r.maxEpoch {
		// New leader: generations restart monotonically above the old
		// ones (Promote bumps through the journal), but reset the gen
		// watermark anyway so the epoch is what fences across reigns.
		r.maxEpoch = epoch
		r.maxGen = 0
	}
	if hasGen && gen > r.maxGen {
		r.maxGen = gen
	}
	return false
}

// adopt makes endpoint i the preferred one.
func (r *Resilient) adopt(i int) {
	r.mu.Lock()
	if r.cur != i {
		r.cur = i
		r.failovers++
		r.desync = true
	}
	r.mu.Unlock()
}

// endpointIndex resolves a leader URL (from a not_leader redirect or a
// response header) to a configured endpoint.
func (r *Resilient) endpointIndex(url string) (int, bool) {
	url = strings.TrimRight(url, "/")
	for i, ep := range r.eps {
		if ep.c.BaseURL() == url {
			return i, true
		}
	}
	return 0, false
}

// call runs fn against the replica group: preferred endpoint first,
// failing over on transport errors and open breakers, chasing
// not_leader redirects to the named leader, and fencing stale replicas
// by (epoch, generation). fn returns the response's generation (and
// whether it has one) for the fence. Non-redirect API errors surface
// immediately — the daemon is alive and said no.
func (r *Resilient) call(ctx context.Context, fn func(*Client) (uint64, bool, error)) error {
	r.mu.Lock()
	idx := r.cur
	n := len(r.eps)
	r.mu.Unlock()
	tries := n
	if n > 1 {
		// Extra lap so redirect-chasing (follower -> named leader) can
		// revisit an endpoint already tried as a guess.
		tries = 2 * n
	}
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		ep := r.eps[idx%n]
		if !ep.br.Allow() {
			idx++
			continue
		}
		gen, hasGen, err := fn(ep.c)
		if err == nil {
			ep.br.Record(true)
			if r.fence(ep.c.LastEpoch(), gen, hasGen) {
				lastErr = ErrStaleReplica
				idx++
				continue
			}
			r.adopt(idx % n)
			return nil
		}
		var ae *APIError
		if errors.As(err, &ae) {
			ep.br.Record(true) // alive enough to say no
			if ae.Code == ctrlplane.ErrCodeNotLeader {
				lastErr = err
				if j, ok := r.endpointIndex(ae.Leader); ok && j != idx%n {
					idx = j
				} else {
					idx++
				}
				continue
			}
			return err
		}
		ep.br.Record(false)
		lastErr = err
		idx++
	}
	if lastErr == nil {
		return ErrCircuitOpen
	}
	return lastErr
}

// Register announces the application, remembers the request for later
// automatic re-registration, and caches the machine topology for local
// fallback solves.
func (r *Resilient) Register(ctx context.Context, req ctrlplane.RegisterRequest) (*ctrlplane.RegisterResponse, error) {
	var resp *ctrlplane.RegisterResponse
	err := r.call(ctx, func(c *Client) (uint64, bool, error) {
		rr, err := c.Register(ctx, req)
		if err != nil {
			return 0, false, err
		}
		resp = rr
		return rr.Generation, true, nil
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.id = resp.ID
	r.regReq = req
	r.registered = true
	if len(r.localDemand) == 0 {
		r.localDemand = []ctrlplane.RegisterRequest{req}
	}
	needMachine := r.machine == nil
	r.mu.Unlock()
	if needMachine {
		if mr, merr := r.Client().Machine(ctx); merr == nil && mr.Machine != nil {
			r.mu.Lock()
			r.machine = mr.Machine
			r.mu.Unlock()
		}
	}
	return resp, nil
}

// SetLocalDemand overrides the demand set used by local fallback
// solves. A cooperating application that knows the whole mix (e.g. the
// paper's three memory-bound plus one compute-bound jobs) can thus
// degrade to the same Table I optimum the daemon would have served.
func (r *Resilient) SetLocalDemand(reqs []ctrlplane.RegisterRequest) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.localDemand = append([]ctrlplane.RegisterRequest(nil), reqs...)
}

// SetMachine seeds the cached topology (normally learned from the
// daemon at Register time) so local solves work daemon-never-seen.
func (r *Resilient) SetMachine(m *machine.Machine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.machine = m
}

// Machine returns the cached topology (nil if never learned).
func (r *Resilient) Machine() *machine.Machine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.machine
}

// Heartbeat refreshes liveness. If the daemon reports the app unknown —
// it was evicted, the daemon restarted without this app's state, or a
// freshly promoted leader never saw it — the wrapper re-registers with
// the remembered spec and retries the heartbeat under the new ID, so
// callers see at most a changed allocation, never an "unknown app"
// error loop.
func (r *Resilient) Heartbeat(ctx context.Context, hb ctrlplane.HeartbeatRequest) (*ctrlplane.HeartbeatResponse, error) {
	r.mu.Lock()
	if hb.ID == "" {
		hb.ID = r.id
	}
	req, registered := r.regReq, r.registered
	r.mu.Unlock()

	doHB := func(id string) (*ctrlplane.HeartbeatResponse, error) {
		h := hb
		h.ID = id
		var resp *ctrlplane.HeartbeatResponse
		err := r.call(ctx, func(c *Client) (uint64, bool, error) {
			hr, err := c.Heartbeat(ctx, h)
			if err != nil {
				return 0, false, err
			}
			resp = hr
			return hr.Generation, true, nil
		})
		return resp, err
	}

	resp, err := doHB(hb.ID)
	if err == nil {
		return resp, nil
	}
	if !IsUnknownApp(err) || !registered {
		return nil, err
	}
	// Evicted (or the new leader never knew us): re-register and retry
	// once under the fresh ID.
	var reg *ctrlplane.RegisterResponse
	rerr := r.call(ctx, func(c *Client) (uint64, bool, error) {
		rr, err := c.Register(ctx, req)
		if err != nil {
			return 0, false, err
		}
		reg = rr
		return rr.Generation, true, nil
	})
	if rerr != nil {
		return nil, fmt.Errorf("re-registering after eviction: %w (original: %v)", rerr, err)
	}
	r.mu.Lock()
	r.id = reg.ID
	r.reRegisters++
	r.mu.Unlock()
	return doHB(reg.ID)
}

// Deregister removes the app (pass-through with failover and breaker
// accounting).
func (r *Resilient) Deregister(ctx context.Context) error {
	r.mu.Lock()
	id := r.id
	r.registered = false
	r.mu.Unlock()
	if id == "" {
		return nil
	}
	return r.call(ctx, func(c *Client) (uint64, bool, error) {
		return 0, false, c.Deregister(ctx, id)
	})
}

// Allocations reads the machine-wide allocation table, degrading
// gracefully: live from a reachable, non-stale replica; otherwise the
// last-known-good table; otherwise a local solve over the demand this
// client knows. The Source return says which one answered.
func (r *Resilient) Allocations(ctx context.Context) (*ctrlplane.AllocationsResponse, Source, error) {
	var resp *ctrlplane.AllocationsResponse
	err := r.call(ctx, func(c *Client) (uint64, bool, error) {
		ar, err := c.Allocations(ctx)
		if err != nil {
			return 0, false, err
		}
		resp = ar
		return ar.Generation, true, nil
	})
	if err == nil {
		r.mu.Lock()
		r.lastAlloc = copyAllocations(resp)
		r.mu.Unlock()
		return resp, SourceLive, nil
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.Code != ctrlplane.ErrCodeNotLeader {
		// The daemon is alive and rejected us; degrading would mask a
		// real error, so surface it.
		return nil, SourceLive, err
	}
	return r.degraded()
}

// LastKnownGood returns the cached allocation table, if any.
func (r *Resilient) LastKnownGood() (*ctrlplane.AllocationsResponse, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastAlloc == nil {
		return nil, false
	}
	return copyAllocations(r.lastAlloc), true
}

// degraded serves an allocation without the daemon.
func (r *Resilient) degraded() (*ctrlplane.AllocationsResponse, Source, error) {
	r.mu.Lock()
	cached := copyAllocations(r.lastAlloc)
	m := r.machine
	demand := append([]ctrlplane.RegisterRequest(nil), r.localDemand...)
	r.mu.Unlock()
	if cached != nil {
		return cached, SourceCached, nil
	}
	if m == nil || len(demand) == 0 {
		return nil, SourceLocal, fmt.Errorf("%w and no cached allocation or topology for a local solve", ErrCircuitOpen)
	}
	resp, err := r.localSolve(m, demand)
	if err != nil {
		return nil, SourceLocal, err
	}
	return resp, SourceLocal, nil
}

// localSolve runs the same solver the daemon would, over the cached
// topology and the locally known demand.
func (r *Resilient) localSolve(m *machine.Machine, demand []ctrlplane.RegisterRequest) (*ctrlplane.AllocationsResponse, error) {
	apps := make([]ctrlplane.AppState, len(demand))
	for i, d := range demand {
		pl := roofline.NUMAPerfect
		if d.Placement == ctrlplane.PlacementBad {
			pl = roofline.NUMABad
		}
		name := d.Name
		if name == "" {
			name = "app"
		}
		apps[i] = ctrlplane.AppState{
			ID: fmt.Sprintf("local-%s-%d", name, i+1),
			Spec: ctrlplane.AppSpec{
				Name:       name,
				AI:         d.AI,
				Placement:  pl,
				HomeNode:   machine.NodeID(d.HomeNode),
				MaxThreads: d.MaxThreads,
			},
		}
	}
	sol, err := r.solver.Solve(m, apps)
	if err != nil {
		return nil, fmt.Errorf("local fallback solve: %w", err)
	}
	resp := &ctrlplane.AllocationsResponse{
		Machine:     m.Name,
		Policy:      "local-" + r.solver.Policy(),
		Apps:        make([]ctrlplane.AppAllocation, len(sol.PerApp)),
		TotalGFLOPS: sol.TotalGFLOPS,
	}
	for i, a := range sol.PerApp {
		threads := 0
		for _, c := range a.PerNode {
			threads += c
		}
		resp.Apps[i] = ctrlplane.AppAllocation{
			ID: a.ID, Name: a.Name, PerNode: a.PerNode,
			Threads: threads, PredictedGFLOPS: a.GFLOPS,
		}
	}
	if sol.EvenGFLOPS > 0 || sol.NodePerAppGFLOPS > 0 {
		resp.Reference = &ctrlplane.ReferenceAllocations{
			EvenGFLOPS:       sol.EvenGFLOPS,
			NodePerAppGFLOPS: sol.NodePerAppGFLOPS,
		}
	}
	return resp, nil
}

// copyAllocations deep-copies a table so cached state can't be mutated
// by callers (nil in, nil out).
func copyAllocations(in *ctrlplane.AllocationsResponse) *ctrlplane.AllocationsResponse {
	if in == nil {
		return nil
	}
	out := *in
	out.Apps = make([]ctrlplane.AppAllocation, len(in.Apps))
	for i, a := range in.Apps {
		out.Apps[i] = a
		out.Apps[i].PerNode = append([]int(nil), a.PerNode...)
	}
	if in.Reference != nil {
		ref := *in.Reference
		out.Reference = &ref
	}
	return &out
}
