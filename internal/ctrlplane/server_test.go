package ctrlplane_test

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/machine"
)

// startServer runs a control-plane server on an ephemeral port and
// returns a typed client for it.
func startServer(t *testing.T, cfg ctrlplane.ServerConfig) (*ctrlplane.Server, *client.Client) {
	t.Helper()
	if cfg.Machine == nil {
		cfg.Machine = machine.PaperModel()
	}
	srv, err := ctrlplane.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	srv.Start()
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, client.New(hs.URL, client.Config{
		MaxAttempts: 2,
		BaseBackoff: 5 * time.Millisecond,
	})
}

// registerTableIMix registers the paper's Table I demand mix (three
// memory-bound apps at AI 0.5 and one compute-bound at AI 10) and
// returns the assigned IDs.
func registerTableIMix(t *testing.T, c *client.Client) []string {
	t.Helper()
	ctx := context.Background()
	reqs := []ctrlplane.RegisterRequest{
		{Name: "mem-a", AI: 0.5},
		{Name: "mem-b", AI: 0.5},
		{Name: "mem-c", AI: 0.5},
		{Name: "comp", AI: 10},
	}
	ids := make([]string, len(reqs))
	for i, r := range reqs {
		resp, err := c.Register(ctx, r)
		if err != nil {
			t.Fatalf("register %s: %v", r.Name, err)
		}
		if resp.ID == "" {
			t.Fatalf("register %s: empty id", r.Name)
		}
		ids[i] = resp.ID
	}
	return ids
}

func almost(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("%s = %.6f, want %.6f", what, got, want)
	}
}

// TestEndToEndPaperRanking drives the full loop the issue asks for: the
// server on an ephemeral port serves, through the client, allocations
// that reproduce the paper's uneven=254 / even=140 / node-per-app=128
// GFLOPS ranking for the Table I/II demand mixes.
func TestEndToEndPaperRanking(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{})
	ctx := context.Background()
	ids := registerTableIMix(t, c)

	alloc, err := c.Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations: %v", err)
	}
	// Served allocation = the paper's Table I uneven optimum: 254
	// GFLOPS total, compute-bound app on 5 threads per node.
	almost(t, "served total GFLOPS", alloc.TotalGFLOPS, 254)
	if alloc.Reference == nil {
		t.Fatal("no reference allocations in response")
	}
	almost(t, "even baseline (Table II)", alloc.Reference.EvenGFLOPS, 140)
	almost(t, "node-per-app baseline", alloc.Reference.NodePerAppGFLOPS, 128)
	if !(alloc.TotalGFLOPS > alloc.Reference.EvenGFLOPS &&
		alloc.Reference.EvenGFLOPS > alloc.Reference.NodePerAppGFLOPS) {
		t.Errorf("ranking not reproduced: uneven %.1f, even %.1f, node-per-app %.1f",
			alloc.TotalGFLOPS, alloc.Reference.EvenGFLOPS, alloc.Reference.NodePerAppGFLOPS)
	}

	byID := map[string]ctrlplane.AppAllocation{}
	for _, a := range alloc.Apps {
		byID[a.ID] = a
	}
	for i, id := range ids[:3] {
		a := byID[id]
		if a.Threads != 4 {
			t.Errorf("mem app %d threads = %d (%v), want 4 (1 per node)", i, a.Threads, a.PerNode)
		}
		almost(t, "mem app GFLOPS", a.PredictedGFLOPS, 18) // 4 threads x 4.5 GFLOPS
	}
	comp := byID[ids[3]]
	if comp.Threads != 20 {
		t.Errorf("comp app threads = %d (%v), want 20 (5 per node)", comp.Threads, comp.PerNode)
	}
	almost(t, "comp app GFLOPS", comp.PredictedGFLOPS, 200)

	// The register response itself carries the app's slice.
	resp, err := c.Register(ctx, ctrlplane.RegisterRequest{Name: "late", AI: 0.5})
	if err != nil {
		t.Fatalf("late register: %v", err)
	}
	if resp.Allocation == nil || resp.Allocation.Threads == 0 {
		t.Errorf("late register got no allocation: %+v", resp.Allocation)
	}
}

// TestHeartbeatEviction checks the liveness path end to end: a silent
// app is evicted after its heartbeat deadline and its cores are
// reallocated to the survivor.
func TestHeartbeatEviction(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{
		DefaultTTL:    100 * time.Millisecond,
		SweepInterval: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	comp, err := c.Register(ctx, ctrlplane.RegisterRequest{Name: "survivor", AI: 10})
	if err != nil {
		t.Fatalf("register survivor: %v", err)
	}
	mem, err := c.Register(ctx, ctrlplane.RegisterRequest{Name: "silent", AI: 0.5})
	if err != nil {
		t.Fatalf("register silent: %v", err)
	}

	before, err := c.Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations: %v", err)
	}
	if len(before.Apps) != 2 {
		t.Fatalf("apps before eviction = %d, want 2", len(before.Apps))
	}
	var survivorBefore int
	for _, a := range before.Apps {
		if a.ID == comp.ID {
			survivorBefore = a.Threads
		}
	}

	// Keep the survivor alive; let "silent" miss its deadline.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				c.Heartbeat(ctx, ctrlplane.HeartbeatRequest{ID: comp.ID, Workers: 8})
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	after, err := c.WaitForReallocation(ctx, before.Generation, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for eviction: %v", err)
	}
	if len(after.Apps) != 1 || after.Apps[0].ID != comp.ID {
		t.Fatalf("apps after eviction = %+v, want only %s", after.Apps, comp.ID)
	}
	if after.Apps[0].Threads <= survivorBefore {
		t.Errorf("survivor threads = %d, want > %d (reclaimed the evicted app's cores)",
			after.Apps[0].Threads, survivorBefore)
	}
	// The machine is now all the survivor's: 8 threads on each of the
	// 4 nodes, 320 GFLOPS at peak.
	if after.Apps[0].Threads != 32 {
		t.Errorf("survivor threads = %d, want 32", after.Apps[0].Threads)
	}
	almost(t, "survivor GFLOPS", after.TotalGFLOPS, 320)

	// The evicted app's heartbeat is refused: it must re-register.
	_, err = c.Heartbeat(ctx, ctrlplane.HeartbeatRequest{ID: mem.ID})
	if !client.IsNotFound(err) {
		t.Errorf("heartbeat after eviction: err = %v, want 404", err)
	}
	// A deregister of the evicted app 404s too.
	if err := c.Deregister(ctx, mem.ID); !client.IsNotFound(err) {
		t.Errorf("deregister after eviction: err = %v, want 404", err)
	}
}

// TestZeroApps: an empty registry serves an empty allocation table, not
// an error (the paper's agent panics without clients; the service must
// not).
func TestZeroApps(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{})
	alloc, err := c.Allocations(context.Background())
	if err != nil {
		t.Fatalf("allocations with no apps: %v", err)
	}
	if len(alloc.Apps) != 0 || alloc.TotalGFLOPS != 0 {
		t.Errorf("empty registry allocation = %+v", alloc)
	}
}

// TestMaxThreadsCap: a single app demanding more threads than the
// machine has cores is served the machine, never more; an explicit cap
// trims the allocation.
func TestMaxThreadsCap(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{})
	ctx := context.Background()

	resp, err := c.Register(ctx, ctrlplane.RegisterRequest{Name: "greedy", AI: 10, MaxThreads: 1000})
	if err != nil {
		t.Fatalf("register greedy: %v", err)
	}
	if resp.Allocation.Threads != 32 {
		t.Errorf("greedy threads = %d, want 32 (whole machine, not 1000)", resp.Allocation.Threads)
	}
	if err := c.Deregister(ctx, resp.ID); err != nil {
		t.Fatalf("deregister: %v", err)
	}

	capped, err := c.Register(ctx, ctrlplane.RegisterRequest{Name: "capped", AI: 10, MaxThreads: 3})
	if err != nil {
		t.Fatalf("register capped: %v", err)
	}
	if capped.Allocation.Threads != 3 {
		t.Errorf("capped threads = %d (%v), want 3", capped.Allocation.Threads, capped.Allocation.PerNode)
	}
}

// TestRegisterValidation: bad inputs get 400s, not allocations.
func TestRegisterValidation(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{})
	ctx := context.Background()
	cases := []ctrlplane.RegisterRequest{
		{Name: "no-ai"},
		{Name: "neg-ai", AI: -1},
		{Name: "bad-placement", AI: 1, Placement: "numa-terrible"},
		{Name: "bad-home", AI: 1, Placement: ctrlplane.PlacementBad, HomeNode: 99},
		{Name: "neg-max", AI: 1, MaxThreads: -1},
		{Name: "neg-ttl", AI: 1, TTLMillis: -5},
	}
	for _, req := range cases {
		if _, err := c.Register(ctx, req); err == nil {
			t.Errorf("register %s: expected an error", req.Name)
		}
	}
	if n, err := c.Apps(ctx); err != nil || len(n.Apps) != 0 {
		t.Errorf("registry not empty after rejected registrations: %v apps, err %v", len(n.Apps), err)
	}
}

// TestNUMABadPlacement: a numa-bad app registers with a home node and
// the placement survives to the allocation.
func TestNUMABadPlacement(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{Machine: machine.PaperModelNUMABad()})
	ctx := context.Background()
	_, err := c.Register(ctx, ctrlplane.RegisterRequest{
		Name: "bad", AI: 1, Placement: ctrlplane.PlacementBad, HomeNode: 0,
	})
	if err != nil {
		t.Fatalf("register numa-bad: %v", err)
	}
	apps, err := c.Apps(ctx)
	if err != nil {
		t.Fatalf("apps: %v", err)
	}
	if len(apps.Apps) != 1 || apps.Apps[0].Placement != ctrlplane.PlacementBad {
		t.Errorf("apps = %+v, want one numa-bad app", apps.Apps)
	}
	alloc, err := c.Allocations(ctx)
	if err != nil {
		t.Fatalf("allocations: %v", err)
	}
	if alloc.TotalGFLOPS <= 0 {
		t.Errorf("numa-bad app served %g GFLOPS", alloc.TotalGFLOPS)
	}
}

// TestMetricsAndHealth: the observability endpoints report requests,
// cache activity, and liveness.
func TestMetricsAndHealth(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{})
	ctx := context.Background()
	registerTableIMix(t, c)
	for i := 0; i < 3; i++ {
		if _, err := c.Allocations(ctx); err != nil {
			t.Fatalf("allocations: %v", err)
		}
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Status != "ok" || h.Apps != 4 {
		t.Errorf("health = %+v, want ok with 4 apps", h)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if reg := m.Endpoints["register"]; reg.Count != 4 || reg.Errors != 0 {
		t.Errorf("register endpoint metrics = %+v, want 4 requests, 0 errors", reg)
	}
	if al := m.Endpoints["allocations"]; al.Count != 3 || al.P95Ms < al.P50Ms {
		t.Errorf("allocations endpoint metrics = %+v", al)
	}
	// 4 registers + 3 allocation reads solve the same growing demand
	// sets: at least the repeated allocation reads must hit the cache.
	if m.Solver.Hits < 2 {
		t.Errorf("solver cache hits = %d, want >= 2", m.Solver.Hits)
	}
}

// TestCacheAcrossPermutation: the solver cache is keyed by the sorted
// demand multiset, so registering an equivalent mix in a different
// order is a hit, not a new solve.
func TestCacheAcrossPermutation(t *testing.T) {
	srv, c := startServer(t, ctrlplane.ServerConfig{})
	ctx := context.Background()
	ids := registerTableIMix(t, c)
	if _, err := c.Allocations(ctx); err != nil {
		t.Fatal(err)
	}
	m0, _ := c.Metrics(ctx)

	// Re-register the same mix in reverse order.
	for _, id := range ids {
		if err := c.Deregister(ctx, id); err != nil {
			t.Fatalf("deregister %s: %v", id, err)
		}
	}
	for _, r := range []ctrlplane.RegisterRequest{
		{Name: "comp2", AI: 10},
		{Name: "mem-z", AI: 0.5},
		{Name: "mem-y", AI: 0.5},
		{Name: "mem-x", AI: 0.5},
	} {
		if _, err := c.Register(ctx, r); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	alloc, err := c.Allocations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.CacheHit {
		t.Error("permuted equivalent mix missed the cache")
	}
	almost(t, "permuted mix total", alloc.TotalGFLOPS, 254)
	m1, _ := c.Metrics(ctx)
	// The full 4-app solve happened once: re-registering the permuted
	// mix added no misses for the complete set (intermediate partial
	// sets do miss).
	if m1.Solver.Misses-m0.Solver.Misses > 3 {
		t.Errorf("permuted mix added %d cache misses", m1.Solver.Misses-m0.Solver.Misses)
	}
	_ = srv
}

// TestConcurrentRegistryStress hammers register/heartbeat/deregister
// concurrently through real HTTP; run under -race this is the
// registry's and solver's concurrency certification.
func TestConcurrentRegistryStress(t *testing.T) {
	_, c := startServer(t, ctrlplane.ServerConfig{
		Policy:        ctrlplane.PolicyFairShare, // cheap solves: stress the locking, not the optimizer
		DefaultTTL:    50 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const workers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := c.Register(ctx, ctrlplane.RegisterRequest{
					Name: fmt.Sprintf("stress-%d", w),
					AI:   0.5 + float64(w%4),
				})
				if err != nil {
					errc <- fmt.Errorf("worker %d register: %w", w, err)
					return
				}
				if _, err := c.Heartbeat(ctx, ctrlplane.HeartbeatRequest{ID: resp.ID, Workers: 4}); err != nil && !client.IsNotFound(err) {
					errc <- fmt.Errorf("worker %d heartbeat: %w", w, err)
					return
				}
				if _, err := c.Allocations(ctx); err != nil {
					errc <- fmt.Errorf("worker %d allocations: %w", w, err)
					return
				}
				// Half the apps deregister; the other half go silent
				// and are reaped by the janitor sweeping at 5ms.
				if i%2 == 0 {
					if err := c.Deregister(ctx, resp.ID); err != nil && !client.IsNotFound(err) {
						errc <- fmt.Errorf("worker %d deregister: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Everything left either deregistered or goes silent: the registry
	// must drain to empty once the TTLs pass.
	deadline := time.Now().Add(5 * time.Second)
	for {
		apps, err := c.Apps(ctx)
		if err != nil {
			t.Fatalf("apps: %v", err)
		}
		if len(apps.Apps) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry did not drain: %d apps left", len(apps.Apps))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
