//go:build !race

package ctrlplane

const raceEnabled = false
