package ctrlplane

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
)

// TestSolveCachedNoAllocs pins the allocation-free steady-state serve
// path: once the demand mix is cached, SolveInto into a warm Solution
// must not touch the heap.
func TestSolveCachedNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	m := machine.PaperModel()
	apps := tableIMix()
	s, err := NewSolver(PolicyRoofline)
	if err != nil {
		t.Fatal(err)
	}
	sol := &Solution{}
	if err := s.SolveInto(sol, m, apps); err != nil {
		t.Fatal(err)
	}
	if sol.FromCache {
		t.Fatal("first solve should miss")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.SolveInto(sol, m, apps); err != nil {
			t.Fatal(err)
		}
		if !sol.FromCache {
			t.Fatal("warm solve should hit the cache")
		}
	})
	// < 1 tolerates a stray sync.Pool refill after a GC during the run;
	// systematic allocation would show up as >= 1 per op.
	if allocs >= 1 {
		t.Errorf("cached SolveInto allocates %.2f objects/op, want 0", allocs)
	}
}

// mixForAI is a single-app demand mix whose cache key is unique per AI.
func mixForAI(i int) []AppState {
	return []AppState{{
		ID:   fmt.Sprintf("app-%d", i),
		Spec: AppSpec{Name: "app", AI: 0.25 + float64(i)*0.001},
	}}
}

// TestLRUEviction replaces the old flush-all behaviour test: cycling
// past maxCacheEntries evicts only the least-recently-used keys, and a
// touched entry survives a full wave of inserts that would have flushed
// everything before.
func TestLRUEviction(t *testing.T) {
	m := machine.PaperModel()
	s, err := NewSolver(PolicyRoofline)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(i int) {
		t.Helper()
		if _, err := s.Solve(m, mixForAI(i)); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}

	solve(0) // the entry we keep alive
	for i := 1; i < maxCacheEntries; i++ {
		solve(i)
	}
	if got := s.Metrics().Entries; got != maxCacheEntries {
		t.Fatalf("entries = %d, want %d", got, maxCacheEntries)
	}

	// Touch entry 0, then push maxCacheEntries-1 fresh keys through: the
	// touched entry must survive while the untouched middle is evicted.
	before := s.Metrics()
	solve(0)
	if got := s.Metrics().Hits; got != before.Hits+1 {
		t.Fatalf("touching entry 0 should hit, hits = %d, want %d", got, before.Hits+1)
	}
	for i := maxCacheEntries; i < 2*maxCacheEntries-1; i++ {
		solve(i)
	}
	if got := s.Metrics().Entries; got != maxCacheEntries {
		t.Fatalf("entries after cycling = %d, want %d", got, maxCacheEntries)
	}
	hitsBefore := s.Metrics().Hits
	solve(0)
	if got := s.Metrics().Hits; got != hitsBefore+1 {
		t.Errorf("recently-touched entry was evicted (hits = %d, want %d)", got, hitsBefore+1)
	}
	missesBefore := s.Metrics().Misses
	solve(1) // inserted first after 0, never touched: must be gone
	if got := s.Metrics().Misses; got != missesBefore+1 {
		t.Errorf("LRU entry 1 should have been evicted (misses = %d, want %d)", got, missesBefore+1)
	}
}

// TestSingleflightCoalesces holds the first solve of a key in flight
// while concurrent identical requests arrive: exactly one solve runs,
// the rest join it (Coalesced) and return its result.
func TestSingleflightCoalesces(t *testing.T) {
	m := machine.PaperModel()
	apps := tableIMix()
	s, err := NewSolver(PolicyRoofline)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.testSolveDelay = func() { <-release }

	const followers = 7
	var wg sync.WaitGroup
	results := make([]*Solution, followers+1)
	errs := make([]error, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Solve(m, apps)
		}(i)
	}

	// Wait until every follower has parked on the in-flight call, then
	// release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Coalesced != followers {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d before release", s.Metrics().Coalesced, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	met := s.Metrics()
	if met.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one leader solve)", met.Misses)
	}
	if met.Coalesced != followers {
		t.Errorf("coalesced = %d, want %d", met.Coalesced, followers)
	}
	fromCache := 0
	for i, r := range results {
		if errs[i] != nil {
			t.Fatalf("solve %d: %v", i, errs[i])
		}
		if r.FromCache {
			fromCache++
		}
		if r.TotalGFLOPS != results[0].TotalGFLOPS {
			t.Errorf("solve %d total %v differs from leader %v", i, r.TotalGFLOPS, results[0].TotalGFLOPS)
		}
	}
	if fromCache != followers {
		t.Errorf("%d solves reported FromCache, want %d (all but the leader)", fromCache, followers)
	}
}

// TestTopologyHashStability checks the field-walking hash: identical
// topologies agree, and every field (and the nil-vs-zero link matrix
// distinction) feeds the fingerprint.
func TestTopologyHashStability(t *testing.T) {
	base := func() *machine.Machine { return machine.Uniform("m", 2, 4, 10, 32, 8) }
	if TopologyHash(base()) != TopologyHash(base()) {
		t.Error("identical machines must hash equal")
	}
	seen := map[uint64]string{TopologyHash(base()): "base"}
	variants := map[string]*machine.Machine{
		"renamed":    machine.Uniform("m2", 2, 4, 10, 32, 8),
		"more-cores": machine.Uniform("m", 2, 5, 10, 32, 8),
		"more-peak":  machine.Uniform("m", 2, 4, 11, 32, 8),
		"more-bw":    machine.Uniform("m", 2, 4, 10, 33, 8),
		"more-link":  machine.Uniform("m", 2, 4, 10, 32, 9),
		"no-links":   machine.Uniform("m", 2, 4, 10, 32, 0),
		"3-nodes":    machine.Uniform("m", 3, 4, 10, 32, 8),
	}
	zeroLinks := machine.Uniform("m", 2, 4, 10, 32, 0)
	zeroLinks.LinkBandwidth = [][]float64{{0, 0}, {0, 0}}
	variants["zero-links"] = zeroLinks
	for name, m := range variants {
		h := TopologyHash(m)
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// TestServerServeScratchNoAllocs drives the server's pooled serve path
// directly: with the registry populated and the solver warm, resolving
// an application's allocation into scratch performs no heap allocations.
func TestServerServeScratchNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	srv, err := NewServer(ServerConfig{Machine: machine.PaperModel()})
	if err != nil {
		t.Fatal(err)
	}
	specs := []AppSpec{
		{Name: "mem-a", AI: 0.5},
		{Name: "mem-b", AI: 0.5},
		{Name: "mem-c", AI: 0.5},
		{Name: "comp", AI: 10},
	}
	var lastID string
	for _, spec := range specs {
		st, _, err := srv.reg.Register(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		lastID = st.ID
	}
	sc := srv.serve.Get().(*serveScratch)
	defer srv.serve.Put(sc)
	alloc, err := srv.allocationInto(sc, lastID)
	if err != nil {
		t.Fatal(err)
	}
	if alloc == nil || alloc.Threads == 0 {
		t.Fatalf("warmup allocation = %+v, want a non-empty slice for %s", alloc, lastID)
	}
	allocs := testing.AllocsPerRun(200, func() {
		a, err := srv.allocationInto(sc, lastID)
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			t.Fatal("allocation vanished")
		}
	})
	if allocs >= 1 {
		t.Errorf("warm allocationInto allocates %.2f objects/op, want 0", allocs)
	}
}
