package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d, want 3", e.Fired())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of insertion order: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Errorf("After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
}

func TestCancelDuringRun(t *testing.T) {
	e := NewEngine(1)
	fired := false
	var ev *Event
	e.Schedule(1, func() { e.Cancel(ev) })
	ev = e.Schedule(2, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("fired %v, want events at 1,2,3", fired)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10 (clock advances to target)", e.Now())
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 after Halt", count)
	}
	// Run resumes.
	e.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10 after resumed Run", count)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.Schedule(1, func() {})
}

func TestNilFnPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil fn")
		}
	}()
	e.Schedule(1, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	stop := e.Ticker(2, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 4 {
			// stop is captured below; cancel via closure variable.
		}
	})
	e.Schedule(9, func() { stop() })
	e.Run()
	want := []Time{2, 4, 6, 8}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var stop func()
	stop = e.Ticker(1, func(Time) {
		count++
		if count == 2 {
			stop()
		}
	})
	e.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive ticker period")
		}
	}()
	e.Ticker(0, func(Time) {})
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(42)
		var samples []float64
		e.Ticker(1, func(now Time) {
			samples = append(samples, e.Rand().Float64())
			if now >= 10 {
				e.Halt()
			}
		})
		e.Run()
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events fire in non-decreasing time order regardless of
// insertion order.
func TestMonotonicClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(seed)
		n := 50 + rng.Intn(100)
		times := make([]Time, n)
		for i := range times {
			times[i] = Time(rng.Float64() * 100)
		}
		var fired []Time
		for _, at := range times {
			at := at
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: nested scheduling from inside events preserves ordering.
func TestNestedScheduling(t *testing.T) {
	e := NewEngine(7)
	var fired []Time
	var recurse func(depth int)
	recurse = func(depth int) {
		fired = append(fired, e.Now())
		if depth < 5 {
			e.After(1, func() { recurse(depth + 1) })
			e.After(0.5, func() { fired = append(fired, e.Now()) })
		}
	}
	e.Schedule(0, func() { recurse(0) })
	e.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Errorf("nested events out of order: %v", fired)
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(3, func() {})
	if ev.Time() != 3 {
		t.Errorf("Time = %v, want 3", ev.Time())
	}
	if ev.Cancelled() {
		t.Error("pending event reported cancelled")
	}
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Error("cancelled event not reported cancelled")
	}
}
