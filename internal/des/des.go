// Package des is a small deterministic discrete-event simulation kernel.
// Simulated components schedule callbacks at future simulated times; the
// engine executes them in time order (FIFO among equal times), advancing
// a virtual clock. There are no goroutines: execution is single-threaded
// and fully deterministic, which makes simulation results reproducible
// and race-free by construction.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is simulated time in seconds since the start of the simulation.
type Time float64

// Common durations, in seconds.
const (
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 when not queued
}

// Time returns the simulated time the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 && e.fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation clock and event queue.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewEngine returns an engine at time 0 with a deterministic RNG seeded
// by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Components
// must draw randomness only from here so runs reproduce exactly.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: nil event function")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d seconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a queued event; it is a no-op if the event already
// fired or was cancelled.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.fn = nil
	ev.index = -1
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to t.
// Events scheduled beyond t stay queued.
func (e *Engine) RunUntil(t Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if !e.halted && t > e.now {
		e.now = t
	}
}

// Halt stops Run/RunUntil after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Ticker invokes fn every period until cancelled via the returned stop
// function. fn receives the tick time. The first tick fires one period
// from now.
func (e *Engine) Ticker(period Time, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("des: non-positive ticker period %v", period))
	}
	stopped := false
	var ev *Event
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if !stopped {
			ev = e.After(period, tick)
		}
	}
	ev = e.After(period, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}
