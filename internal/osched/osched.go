// Package osched simulates an operating-system CPU scheduler on a NUMA
// machine, standing in for the Linux scheduler the paper relies on.
//
// Threads are placed on per-core run queues respecting affinity masks.
// Every scheduling quantum each core runs the next thread in its queue
// (round-robin under over-subscription), the memory arbiter splits
// bandwidth among the running threads, and every thread advances through
// its work items at the resulting compute rate. Context switches and
// cross-core migrations cost a configurable slice of the quantum, which
// reproduces the paper's observations: over-subscription adds overhead
// and hurts cache locality, while a one-thread-per-core regime lets
// threads run undisturbed on the same core for long stretches.
//
// The simulation is driven by a des.Engine and is fully deterministic.
package osched

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// WorkKind selects what a work item does.
type WorkKind int

const (
	// WorkCompute executes GFlop floating-point work with arithmetic
	// intensity AI against MemNode's memory.
	WorkCompute WorkKind = iota
	// WorkSleep keeps the thread off the CPU for Duration.
	WorkSleep
	// WorkBlock parks the thread until Thread.Wake is called.
	WorkBlock
	// WorkExit terminates the thread.
	WorkExit
)

// LocalNode as Work.MemNode means "the node of whatever core executes
// the work" — a NUMA-perfect access pattern.
const LocalNode machine.NodeID = -1

// Work is one item of simulated execution.
type Work struct {
	Kind WorkKind
	// GFlop is the compute volume (WorkCompute).
	GFlop float64
	// AI is arithmetic intensity in FLOP/byte. AI <= 0 means the work
	// is compute-only and produces no memory traffic.
	AI float64
	// MemNode is the memory node accessed (WorkCompute); LocalNode
	// means the executing core's own node.
	MemNode machine.NodeID
	// Duration is the sleep length (WorkSleep).
	Duration des.Time
	// OnDone runs when the item completes (WorkCompute/WorkSleep).
	OnDone func()
}

// Runner supplies work items to a thread. Next is called when the
// thread needs a new item: at start, after completing an item, and
// after being woken from a block.
type Runner interface {
	Next(t *Thread) Work
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(t *Thread) Work

// Next implements Runner.
func (f RunnerFunc) Next(t *Thread) Work { return f(t) }

// ThreadState is a thread's scheduling state.
type ThreadState int

const (
	// Ready threads sit on a run queue waiting for their quantum.
	Ready ThreadState = iota
	// Blocked threads wait for Wake.
	Blocked
	// Sleeping threads wait for a timer.
	Sleeping
	// Done threads have exited.
	Done
)

// String names the state.
func (s ThreadState) String() string {
	switch s {
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Sleeping:
		return "sleeping"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config tunes the simulated OS.
type Config struct {
	// Machine is the NUMA machine; required.
	Machine *machine.Machine
	// Quantum is the scheduling and bandwidth-arbitration period.
	// Default 1 ms.
	Quantum des.Time
	// ContextSwitchCost is compute time lost by the incoming thread
	// when a core switches threads. Default 5 µs; negative means zero.
	ContextSwitchCost des.Time
	// MigrationPenalty is extra time lost the first quantum after a
	// thread moves to a different core (cold caches). Default 50 µs;
	// negative means zero.
	MigrationPenalty des.Time
	// LoadBalancePeriod is how often queues are rebalanced within
	// affinity masks. Default 10 ms; negative disables balancing.
	LoadBalancePeriod des.Time
	// RemoteEfficiency is passed to the memory arbiter (see memsim).
	// Default 1.
	RemoteEfficiency float64
	// ContentionEfficiency is passed to the memory arbiter (see
	// memsim): effective bandwidth factor under over-demand. Default 1.
	ContentionEfficiency float64
}

func (c *Config) fillDefaults() {
	if c.Quantum <= 0 {
		c.Quantum = des.Millisecond
	}
	if c.ContextSwitchCost < 0 {
		c.ContextSwitchCost = 0
	} else if c.ContextSwitchCost == 0 {
		c.ContextSwitchCost = 5 * des.Microsecond
	}
	if c.MigrationPenalty < 0 {
		c.MigrationPenalty = 0
	} else if c.MigrationPenalty == 0 {
		c.MigrationPenalty = 50 * des.Microsecond
	}
	if c.LoadBalancePeriod == 0 {
		c.LoadBalancePeriod = 10 * des.Millisecond
	}
}

// Thread is a simulated OS thread.
type Thread struct {
	os       *OS
	proc     *Process
	id       int
	name     string
	state    ThreadState
	affinity CoreSet
	runner   Runner

	queueCore machine.CoreID // home run queue while Ready
	lastCore  machine.CoreID // last core that executed the thread
	hasRun    bool

	work     Work
	haveWork bool
	remain   float64 // GFlop left in current compute item

	busySeconds float64
	gflopDone   float64
	gbMoved     float64
	priority    int
	switches    uint64 // context switches experienced
	migrations  uint64 // cross-core moves
	wakeEvent   *des.Event

	// per-quantum scratch
	effTime    float64 // effective compute time this quantum
	runCore    *core   // core executing the thread this quantum
	arbitrated bool    // current compute item took part in arbitration
}

// ID returns the thread's OS-wide id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's label.
func (t *Thread) Name() string { return t.name }

// State returns the scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// Affinity returns a copy of the affinity mask.
func (t *Thread) Affinity() CoreSet { return t.affinity.Clone() }

// LastCore returns the core that last executed the thread and whether
// it ever ran.
func (t *Thread) LastCore() (machine.CoreID, bool) { return t.lastCore, t.hasRun }

// BusySeconds returns total CPU time consumed.
func (t *Thread) BusySeconds() float64 { return t.busySeconds }

// GFlopDone returns total compute work completed.
func (t *Thread) GFlopDone() float64 { return t.gflopDone }

// GBMoved returns total memory traffic generated (GFlop / AI summed
// over memory-bound work).
func (t *Thread) GBMoved() float64 { return t.gbMoved }

// Priority returns the scheduling priority (0 is normal; higher wins).
func (t *Thread) Priority() int { return t.priority }

// SetPriority changes the scheduling priority, like setpriority(2):
// on every quantum a core runs the highest-priority thread in its
// queue, round-robin among equals; lower-priority threads starve while
// higher ones are runnable (the Section IV lever for keeping
// non-worker threads out of the workers' way).
func (t *Thread) SetPriority(p int) { t.priority = p }

// Switches returns the number of context switches the thread absorbed.
func (t *Thread) Switches() uint64 { return t.switches }

// Migrations returns the number of cross-core moves.
func (t *Thread) Migrations() uint64 { return t.migrations }

// Process groups threads for accounting, like an OS process.
type Process struct {
	os      *OS
	id      int
	name    string
	threads []*Thread

	busySeconds float64
	gflopDone   float64
	gbMoved     float64
}

// ID returns the process id.
func (p *Process) ID() int { return p.id }

// Name returns the process label.
func (p *Process) Name() string { return p.name }

// Threads returns the process's threads.
func (p *Process) Threads() []*Thread { return append([]*Thread(nil), p.threads...) }

// BusySeconds returns total CPU time consumed by all threads.
func (p *Process) BusySeconds() float64 { return p.busySeconds }

// GFlopDone returns total compute work completed by all threads.
func (p *Process) GFlopDone() float64 { return p.gflopDone }

// GBMoved returns total memory traffic generated by all threads.
func (p *Process) GBMoved() float64 { return p.gbMoved }

type core struct {
	id      machine.CoreID
	node    machine.NodeID
	queue   []*Thread // ready threads homed here; queue[0] runs next
	last    *Thread   // thread that ran the previous quantum
	busy    float64   // seconds spent computing
	quantaN uint64
}

// OS is the simulated operating system.
type OS struct {
	eng   *des.Engine
	cfg   Config
	m     *machine.Machine
	arb   *memsim.Arbiter
	cores []*core
	procs []*Process

	nextThreadID int
	started      bool
	stopTicker   func()

	// scratch
	running []*Thread
	reqs    []memsim.Request
	reqIdx  []int
}

// New creates a simulated OS on the engine. It panics if the machine is
// missing or invalid.
func New(eng *des.Engine, cfg Config) *OS {
	if cfg.Machine == nil {
		panic("osched: Config.Machine is required")
	}
	if err := cfg.Machine.Validate(); err != nil {
		panic("osched: " + err.Error())
	}
	cfg.fillDefaults()
	o := &OS{eng: eng, cfg: cfg, m: cfg.Machine}
	o.arb = memsim.NewArbiter(cfg.Machine, cfg.RemoteEfficiency)
	if cfg.ContentionEfficiency > 0 && cfg.ContentionEfficiency <= 1 {
		o.arb.ContentionEfficiency = cfg.ContentionEfficiency
	}
	for i := 0; i < cfg.Machine.TotalCores(); i++ {
		c := machine.CoreID(i)
		o.cores = append(o.cores, &core{id: c, node: cfg.Machine.NodeOfCore(c)})
	}
	return o
}

// Engine returns the driving simulation engine.
func (o *OS) Engine() *des.Engine { return o.eng }

// Machine returns the simulated machine.
func (o *OS) Machine() *machine.Machine { return o.m }

// Quantum returns the scheduling quantum.
func (o *OS) Quantum() des.Time { return o.cfg.Quantum }

// Arbiter exposes the memory arbiter (for statistics).
func (o *OS) Arbiter() *memsim.Arbiter { return o.arb }

// Start begins the scheduling loop. Safe to call once; subsequent calls
// are no-ops.
func (o *OS) Start() {
	if o.started {
		return
	}
	o.started = true
	o.stopTicker = o.eng.Ticker(o.cfg.Quantum, func(des.Time) { o.tick() })
	if o.cfg.LoadBalancePeriod > 0 {
		o.eng.Ticker(o.cfg.LoadBalancePeriod, func(des.Time) { o.loadBalance() })
	}
}

// Stop halts the scheduling loop.
func (o *OS) Stop() {
	if o.stopTicker != nil {
		o.stopTicker()
		o.stopTicker = nil
		o.started = false
	}
}

// NewProcess registers a process.
func (o *OS) NewProcess(name string) *Process {
	p := &Process{os: o, id: len(o.procs), name: name}
	o.procs = append(o.procs, p)
	return p
}

// Processes returns all registered processes.
func (o *OS) Processes() []*Process { return append([]*Process(nil), o.procs...) }

// NewThread creates a thread in the process with the given runner and
// affinity and enqueues it. An empty affinity means all cores.
func (p *Process) NewThread(name string, r Runner, affinity CoreSet) *Thread {
	o := p.os
	if r == nil {
		panic("osched: nil runner")
	}
	if affinity.Empty() {
		affinity = AllCores(o.m)
	}
	t := &Thread{
		os:       o,
		proc:     p,
		id:       o.nextThreadID,
		name:     name,
		state:    Ready,
		affinity: affinity.Clone(),
		runner:   r,
	}
	o.nextThreadID++
	p.threads = append(p.threads, t)
	o.enqueue(t)
	return t
}

// enqueue places a ready thread on the least-loaded allowed core,
// preferring its last core when allowed (cache affinity).
func (o *OS) enqueue(t *Thread) {
	if t.hasRun && t.affinity.Contains(t.lastCore) {
		last := o.cores[t.lastCore]
		if len(last.queue) == 0 {
			last.queue = append(last.queue, t)
			t.queueCore = last.id
			return
		}
	}
	var best *core
	for _, c := range o.cores {
		if !t.affinity.Contains(c.id) {
			continue
		}
		if best == nil || len(c.queue) < len(best.queue) {
			best = c
		}
	}
	if best == nil {
		panic(fmt.Sprintf("osched: thread %q has affinity %v matching no core", t.name, t.affinity))
	}
	best.queue = append(best.queue, t)
	t.queueCore = best.id
}

func (o *OS) dequeue(t *Thread) {
	q := o.cores[t.queueCore].queue
	for i, x := range q {
		if x == t {
			o.cores[t.queueCore].queue = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// Wake makes a blocked thread ready. If the thread decided to block
// this very quantum but the block has not been processed yet (it is
// still Ready with a pending WorkBlock item), the pending block is
// cancelled instead — without this, a wake-up arriving between the
// block decision and its execution would be lost forever. Waking a
// thread in any other state is a no-op, like signalling a condition
// variable nobody waits on.
func (t *Thread) Wake() {
	if t.state == Blocked {
		t.state = Ready
		t.haveWork = false // ask the runner for fresh work
		t.os.enqueue(t)
		return
	}
	if t.state == Ready && t.haveWork && t.work.Kind == WorkBlock {
		t.haveWork = false // cancel the not-yet-processed block
	}
}

// SetAffinity changes the allowed cores. A ready thread on a
// now-forbidden core is re-queued immediately. Panics on an empty mask.
func (t *Thread) SetAffinity(mask CoreSet) {
	if mask.Empty() {
		panic("osched: empty affinity mask")
	}
	t.affinity = mask.Clone()
	if t.state == Ready && !mask.Contains(t.queueCore) {
		t.os.dequeue(t)
		t.os.enqueue(t)
	}
}

// tick advances one scheduling quantum.
func (o *OS) tick() {
	dt := float64(o.cfg.Quantum)

	// 1. Pick the running thread per core: the highest-priority thread
	// in the queue, round-robin among equals (the chosen thread moves
	// to the tail).
	o.running = o.running[:0]
	for _, c := range o.cores {
		if len(c.queue) == 0 {
			c.last = nil
			continue
		}
		idx := 0
		for k := 1; k < len(c.queue); k++ {
			if c.queue[k].priority > c.queue[idx].priority {
				idx = k
			}
		}
		t := c.queue[idx]
		if len(c.queue) > 1 {
			copy(c.queue[idx:], c.queue[idx+1:])
			c.queue[len(c.queue)-1] = t
		}
		o.running = append(o.running, t)
		// Effective compute time after switch/migration costs.
		eff := dt
		if c.last != nil && c.last != t {
			eff -= float64(o.cfg.ContextSwitchCost)
			t.switches++
		}
		if t.hasRun && t.lastCore != c.id {
			eff -= float64(o.cfg.MigrationPenalty)
			t.migrations++
		}
		if eff < 0 {
			eff = 0
		}
		t.runQuantum(c, eff)
		c.last = t
		t.lastCore = c.id
		t.hasRun = true
		c.quantaN++
	}

	// 2. Arbitrate memory among running compute threads.
	o.reqs = o.reqs[:0]
	o.reqIdx = o.reqIdx[:0]
	for i, t := range o.running {
		if !t.haveWork || t.work.Kind != WorkCompute || t.work.AI <= 0 {
			continue
		}
		node := t.work.MemNode
		if node == LocalNode {
			node = o.m.NodeOfCore(t.lastCore)
		}
		peak := o.m.Nodes[o.m.NodeOfCore(t.lastCore)].PeakGFLOPS
		o.reqs = append(o.reqs, memsim.Request{
			Core:   t.lastCore,
			Node:   node,
			Demand: peak / t.work.AI,
		})
		o.reqIdx = append(o.reqIdx, i)
		t.arbitrated = true
	}
	grants := o.arb.Arbitrate(o.reqs, dt)

	// 3. Advance every running thread through its work items.
	rates := make(map[*Thread]float64, len(o.running))
	for k, gi := range o.reqIdx {
		t := o.running[gi]
		peak := o.m.Nodes[o.m.NodeOfCore(t.lastCore)].PeakGFLOPS
		rate := grants[k].BW * t.work.AI
		if rate > peak {
			rate = peak
		}
		rates[t] = rate
	}
	for _, t := range o.running {
		o.advance(t, rates[t])
	}
}

// runQuantum stores the thread's effective time for this quantum and
// pulls a work item if the thread has none.
func (t *Thread) runQuantum(c *core, eff float64) {
	t.effTime = eff
	t.runCore = c
	t.arbitrated = false
	if !t.haveWork {
		t.fetchWork()
	}
}

// fetchWork pulls items from the runner until it gets something
// schedulable (compute/sleep/block/exit).
func (t *Thread) fetchWork() {
	w := t.runner.Next(t)
	t.work = w
	t.haveWork = true
	switch w.Kind {
	case WorkCompute:
		t.remain = w.GFlop
	case WorkSleep, WorkBlock, WorkExit:
		// handled by advance
	default:
		panic(fmt.Sprintf("osched: unknown work kind %d", w.Kind))
	}
}

// advance consumes the thread's effective time at the given compute
// rate, completing as many work items as fit.
func (o *OS) advance(t *Thread, rate float64) {
	timeLeft := t.effTime
	t.effTime = 0
	for timeLeft > 1e-15 && t.haveWork {
		switch t.work.Kind {
		case WorkCompute:
			peak := o.m.Nodes[t.runCore.node].PeakGFLOPS
			r := rate
			if t.work.AI <= 0 {
				r = peak // pure compute: no memory constraint
			} else if !t.arbitrated {
				// A memory-bound item fetched mid-quantum has no
				// bandwidth grant yet; it waits for the next quantum's
				// arbitration (the leftover slice is forfeited, a small
				// dispatch-latency effect).
				return
			}
			if r <= 0 {
				// No bandwidth granted this quantum: the thread stalls
				// (still occupying its core).
				t.busySeconds += timeLeft
				t.proc.busySeconds += timeLeft
				t.runCore.busy += timeLeft
				return
			}
			need := t.remain / r
			if need > timeLeft {
				done := r * timeLeft
				t.remain -= done
				t.gflopDone += done
				t.proc.gflopDone += done
				if t.work.AI > 0 {
					t.gbMoved += done / t.work.AI
					t.proc.gbMoved += done / t.work.AI
				}
				t.busySeconds += timeLeft
				t.proc.busySeconds += timeLeft
				t.runCore.busy += timeLeft
				return
			}
			// Item completes within the quantum.
			t.gflopDone += t.remain
			t.proc.gflopDone += t.remain
			if t.work.AI > 0 {
				t.gbMoved += t.remain / t.work.AI
				t.proc.gbMoved += t.remain / t.work.AI
			}
			t.busySeconds += need
			t.proc.busySeconds += need
			t.runCore.busy += need
			timeLeft -= need
			t.remain = 0
			done := t.work.OnDone
			t.haveWork = false
			if done != nil {
				done()
			}
			if t.state != Ready {
				// OnDone blocked or changed the thread; stop here.
				return
			}
			t.fetchWork()
		case WorkSleep:
			d := t.work.Duration
			onDone := t.work.OnDone
			t.haveWork = false
			t.state = Sleeping
			o.dequeue(t)
			t.wakeEvent = o.eng.After(d, func() {
				t.wakeEvent = nil
				t.state = Ready
				o.enqueue(t)
				if onDone != nil {
					onDone()
				}
			})
			return
		case WorkBlock:
			t.haveWork = false
			t.state = Blocked
			o.dequeue(t)
			return
		case WorkExit:
			t.haveWork = false
			t.state = Done
			o.dequeue(t)
			return
		}
	}
}

// loadBalance evens out queue lengths within affinity constraints: it
// repeatedly moves one thread from the longest to the shortest
// compatible queue while the imbalance exceeds one.
func (o *OS) loadBalance() {
	for iter := 0; iter < len(o.cores); iter++ {
		var longest, shortest *core
		for _, c := range o.cores {
			if longest == nil || len(c.queue) > len(longest.queue) {
				longest = c
			}
		}
		if longest == nil || len(longest.queue) < 2 {
			return
		}
		// Move the tail thread (coldest) if some shorter queue accepts it.
		var candidate *Thread
		for i := len(longest.queue) - 1; i >= 0; i-- {
			t := longest.queue[i]
			shortest = nil
			for _, c := range o.cores {
				if c == longest || !t.affinity.Contains(c.id) {
					continue
				}
				if len(c.queue)+1 >= len(longest.queue) {
					continue // no improvement
				}
				if shortest == nil || len(c.queue) < len(shortest.queue) {
					shortest = c
				}
			}
			if shortest != nil {
				candidate = t
				break
			}
		}
		if candidate == nil {
			return
		}
		o.dequeue(candidate)
		shortest.queue = append(shortest.queue, candidate)
		candidate.queueCore = shortest.id
	}
}

// CoreLoads returns per-core busy seconds.
func (o *OS) CoreLoads() []float64 {
	out := make([]float64, len(o.cores))
	for i, c := range o.cores {
		out[i] = c.busy
	}
	return out
}

// QueueLengths returns per-core ready-queue lengths (including the
// thread that will run next quantum).
func (o *OS) QueueLengths() []int {
	out := make([]int, len(o.cores))
	for i, c := range o.cores {
		out[i] = len(c.queue)
	}
	return out
}

// Utilization returns machine-wide CPU utilization in [0,1] since the
// start, given the current simulated time.
func (o *OS) Utilization() float64 {
	now := float64(o.eng.Now())
	if now <= 0 {
		return 0
	}
	total := 0.0
	for _, c := range o.cores {
		total += c.busy
	}
	return total / (now * float64(len(o.cores)))
}
