package osched

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// CoreSet is an affinity mask over the machine's cores, analogous to a
// Linux cpu_set_t. The zero value is the empty set.
type CoreSet struct {
	bits []uint64
}

// NewCoreSet returns an empty set sized for n cores.
func NewCoreSet(n int) CoreSet {
	return CoreSet{bits: make([]uint64, (n+63)/64)}
}

// AllCores returns the set containing every core of the machine.
func AllCores(m *machine.Machine) CoreSet {
	s := NewCoreSet(m.TotalCores())
	for i := 0; i < m.TotalCores(); i++ {
		s.Add(machine.CoreID(i))
	}
	return s
}

// NodeCores returns the set of cores on one NUMA node.
func NodeCores(m *machine.Machine, n machine.NodeID) CoreSet {
	s := NewCoreSet(m.TotalCores())
	for _, c := range m.CoresOfNode(n) {
		s.Add(c)
	}
	return s
}

// SingleCore returns a set containing only core c.
func SingleCore(m *machine.Machine, c machine.CoreID) CoreSet {
	s := NewCoreSet(m.TotalCores())
	s.Add(c)
	return s
}

// Add inserts a core into the set, growing the mask if needed.
func (s *CoreSet) Add(c machine.CoreID) {
	w := int(c) / 64
	for w >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << (uint(c) % 64)
}

// Remove deletes a core from the set.
func (s *CoreSet) Remove(c machine.CoreID) {
	w := int(c) / 64
	if w < len(s.bits) {
		s.bits[w] &^= 1 << (uint(c) % 64)
	}
}

// Contains reports whether the set includes core c.
func (s CoreSet) Contains(c machine.CoreID) bool {
	w := int(c) / 64
	return w < len(s.bits) && s.bits[w]&(1<<(uint(c)%64)) != 0
}

// Empty reports whether the set has no cores.
func (s CoreSet) Empty() bool {
	for _, b := range s.bits {
		if b != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of cores in the set.
func (s CoreSet) Count() int {
	n := 0
	for _, b := range s.bits {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}

// Clone returns an independent copy.
func (s CoreSet) Clone() CoreSet {
	return CoreSet{bits: append([]uint64(nil), s.bits...)}
}

// Union returns the union of s and t.
func (s CoreSet) Union(t CoreSet) CoreSet {
	n := len(s.bits)
	if len(t.bits) > n {
		n = len(t.bits)
	}
	u := CoreSet{bits: make([]uint64, n)}
	for i := range u.bits {
		if i < len(s.bits) {
			u.bits[i] |= s.bits[i]
		}
		if i < len(t.bits) {
			u.bits[i] |= t.bits[i]
		}
	}
	return u
}

// Intersect returns the intersection of s and t.
func (s CoreSet) Intersect(t CoreSet) CoreSet {
	n := len(s.bits)
	if len(t.bits) < n {
		n = len(t.bits)
	}
	u := CoreSet{bits: make([]uint64, n)}
	for i := range u.bits {
		u.bits[i] = s.bits[i] & t.bits[i]
	}
	return u
}

// Cores lists the members in ascending order.
func (s CoreSet) Cores() []machine.CoreID {
	var out []machine.CoreID
	for w, b := range s.bits {
		for b != 0 {
			bit := b & -b
			idx := 0
			for m := bit; m > 1; m >>= 1 {
				idx++
			}
			out = append(out, machine.CoreID(w*64+idx))
			b &= b - 1
		}
	}
	return out
}

// String renders the set like "cores{0,1,5}".
func (s CoreSet) String() string {
	var parts []string
	for _, c := range s.Cores() {
		parts = append(parts, fmt.Sprintf("%d", c))
	}
	return "cores{" + strings.Join(parts, ",") + "}"
}
