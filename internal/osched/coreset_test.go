package osched

import (
	"testing"

	"repro/internal/machine"
)

func TestCoreSetBasics(t *testing.T) {
	s := NewCoreSet(128)
	if !s.Empty() || s.Count() != 0 {
		t.Error("new set should be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	for _, c := range []machine.CoreID{0, 63, 64, 127} {
		if !s.Contains(c) {
			t.Errorf("Contains(%d) = false", c)
		}
	}
	if s.Contains(1) || s.Contains(65) {
		t.Error("unexpected membership")
	}
	s.Remove(63)
	if s.Contains(63) || s.Count() != 3 {
		t.Error("Remove failed")
	}
	s.Remove(200) // out of range, no-op
}

func TestCoreSetGrows(t *testing.T) {
	var s CoreSet
	s.Add(100)
	if !s.Contains(100) {
		t.Error("Add beyond capacity should grow")
	}
}

func TestCoreSetCores(t *testing.T) {
	s := NewCoreSet(70)
	s.Add(5)
	s.Add(0)
	s.Add(65)
	got := s.Cores()
	want := []machine.CoreID{0, 5, 65}
	if len(got) != len(want) {
		t.Fatalf("Cores = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Cores[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if s.String() != "cores{0,5,65}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestCoreSetSetOps(t *testing.T) {
	a := NewCoreSet(16)
	b := NewCoreSet(16)
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	u := a.Union(b)
	if u.Count() != 3 || !u.Contains(1) || !u.Contains(2) || !u.Contains(3) {
		t.Errorf("Union wrong: %v", u)
	}
	i := a.Intersect(b)
	if i.Count() != 1 || !i.Contains(2) {
		t.Errorf("Intersect wrong: %v", i)
	}
	cp := a.Clone()
	cp.Add(9)
	if a.Contains(9) {
		t.Error("Clone shares storage")
	}
}

func TestMachineSets(t *testing.T) {
	m := machine.PaperModel()
	all := AllCores(m)
	if all.Count() != 32 {
		t.Errorf("AllCores count = %d, want 32", all.Count())
	}
	n1 := NodeCores(m, 1)
	if n1.Count() != 8 || !n1.Contains(8) || !n1.Contains(15) || n1.Contains(7) || n1.Contains(16) {
		t.Errorf("NodeCores(1) wrong: %v", n1)
	}
	s := SingleCore(m, 5)
	if s.Count() != 1 || !s.Contains(5) {
		t.Errorf("SingleCore wrong: %v", s)
	}
}
