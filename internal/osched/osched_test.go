package osched

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// newTestOS builds an OS with zero scheduling costs so results can be
// compared against the analytic model.
func newTestOS(m *machine.Machine) (*des.Engine, *OS) {
	eng := des.NewEngine(1)
	o := New(eng, Config{
		Machine:           m,
		Quantum:           des.Millisecond,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	return eng, o
}

// infiniteCompute returns a runner producing endless compute work.
func infiniteCompute(ai float64, node machine.NodeID) Runner {
	return RunnerFunc(func(*Thread) Work {
		return Work{Kind: WorkCompute, GFlop: 1e12, AI: ai, MemNode: node}
	})
}

func TestComputeBoundAtPeak(t *testing.T) {
	m := machine.PaperModel() // 10 GFLOPS/core
	eng, o := newTestOS(m)
	p := o.NewProcess("app")
	p.NewThread("w", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	eng.RunUntil(1)
	// 1 second at 10 GFLOPS.
	if got := p.GFlopDone(); math.Abs(got-10) > 0.1 {
		t.Errorf("GFlopDone = %.3f, want ~10", got)
	}
	if u := o.Utilization(); u <= 0 {
		t.Errorf("Utilization = %v, want > 0", u)
	}
}

func TestMemoryBoundThrottled(t *testing.T) {
	// AI=0.5 on a 10 GFLOPS core wants 20 GB/s; alone on a 32 GB/s node
	// it gets its full demand -> runs at peak 10 GFLOPS.
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("mem")
	p.NewThread("w", infiniteCompute(0.5, LocalNode), SingleCore(m, 0))
	eng.RunUntil(1)
	if got := p.GFlopDone(); math.Abs(got-10) > 0.1 {
		t.Errorf("solo memory-bound GFlopDone = %.3f, want ~10", got)
	}

	// Eight such threads want 160 GB/s total; node provides 32 ->
	// 4 GB/s each -> 2 GFLOPS each, 16 total.
	eng2, o2 := newTestOS(m)
	p2 := o2.NewProcess("mem8")
	for i := 0; i < 8; i++ {
		p2.NewThread("w", infiniteCompute(0.5, LocalNode), SingleCore(m, machine.CoreID(i)))
	}
	eng2.RunUntil(1)
	if got := p2.GFlopDone(); math.Abs(got-16) > 0.2 {
		t.Errorf("8-thread memory-bound GFlopDone = %.3f, want ~16", got)
	}
}

// TestTableISimulation cross-validates the full scheduler+arbiter stack
// against the analytic model on the paper's Table I scenario.
func TestTableISimulation(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)

	apps := []struct {
		name    string
		ai      float64
		perNode int
	}{
		{"mem1", 0.5, 1}, {"mem2", 0.5, 1}, {"mem3", 0.5, 1}, {"comp", 10, 5},
	}
	procs := make([]*Process, len(apps))
	for i, a := range apps {
		procs[i] = o.NewProcess(a.name)
	}
	for node := 0; node < m.NumNodes(); node++ {
		cores := m.CoresOfNode(machine.NodeID(node))
		next := 0
		for i, a := range apps {
			for k := 0; k < a.perNode; k++ {
				procs[i].NewThread("w", infiniteCompute(a.ai, LocalNode), SingleCore(m, cores[next]))
				next++
			}
		}
	}
	eng.RunUntil(1)

	want := []float64{18, 18, 18, 200} // Table I: 4.5*4, 50*4
	for i, p := range procs {
		if got := p.GFlopDone(); math.Abs(got-want[i]) > want[i]*0.02 {
			t.Errorf("%s: measured %.3f GFLOPS, model %.1f", p.Name(), got, want[i])
		}
	}
}

// TestNUMABadSimulation cross-validates the remote-access path against
// Table III scenario 4 (even allocation, NUMA-bad app homed on node 0).
func TestNUMABadSimulation(t *testing.T) {
	m := machine.SkylakeQuad()
	eng, o := newTestOS(m)

	mems := make([]*Process, 3)
	for i := range mems {
		mems[i] = o.NewProcess("mem")
	}
	bad := o.NewProcess("bad")
	for node := 0; node < m.NumNodes(); node++ {
		cores := m.CoresOfNode(machine.NodeID(node))
		next := 0
		for i := range mems {
			for k := 0; k < 5; k++ {
				mems[i].NewThread("w", infiniteCompute(1.0/32, LocalNode), SingleCore(m, cores[next]))
				next++
			}
		}
		for k := 0; k < 5; k++ {
			bad.NewThread("w", infiniteCompute(1.0/16, 0), SingleCore(m, cores[next]))
			next++
		}
	}
	eng.RunUntil(1)

	model := roofline.MustEvaluate(m, []roofline.App{
		{Name: "m1", AI: 1.0 / 32}, {Name: "m2", AI: 1.0 / 32}, {Name: "m3", AI: 1.0 / 32},
		{Name: "bad", AI: 1.0 / 16, Placement: roofline.NUMABad, HomeNode: 0},
	}, roofline.MustPerNodeCounts(m, []int{5, 5, 5, 5}))

	for i, p := range mems {
		if got, want := p.GFlopDone(), model.AppGFLOPS[i]; math.Abs(got-want) > want*0.02 {
			t.Errorf("mem%d: measured %.4f, model %.4f", i, got, want)
		}
	}
	if got, want := bad.GFlopDone(), model.AppGFLOPS[3]; math.Abs(got-want) > want*0.02 {
		t.Errorf("bad: measured %.4f, model %.4f", got, want)
	}
}

func TestOversubscriptionSharesCore(t *testing.T) {
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := New(eng, Config{Machine: m, ContextSwitchCost: -1, MigrationPenalty: -1, LoadBalancePeriod: -1})
	o.Start()
	a := o.NewProcess("a")
	b := o.NewProcess("b")
	ta := a.NewThread("wa", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	tb := b.NewThread("wb", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	eng.RunUntil(1)
	// Round-robin: each gets ~half the core, 5 GFLOP each.
	if got := a.GFlopDone(); math.Abs(got-5) > 0.2 {
		t.Errorf("a = %.3f, want ~5", got)
	}
	if got := b.GFlopDone(); math.Abs(got-5) > 0.2 {
		t.Errorf("b = %.3f, want ~5", got)
	}
	if ta.Switches() == 0 || tb.Switches() == 0 {
		t.Error("expected context switches under over-subscription")
	}
}

func TestContextSwitchCostReducesThroughput(t *testing.T) {
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := New(eng, Config{Machine: m, ContextSwitchCost: 100 * des.Microsecond, MigrationPenalty: -1, LoadBalancePeriod: -1})
	o.Start()
	a := o.NewProcess("a")
	a.NewThread("w1", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	a.NewThread("w2", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	eng.RunUntil(1)
	// Each 1ms quantum loses 100µs -> ~10% loss vs the 10 GFLOP ideal.
	got := a.GFlopDone()
	if got > 9.2 || got < 8.5 {
		t.Errorf("oversubscribed with switch cost: %.3f GFLOP, want ~9", got)
	}
}

func TestAffinityRespected(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	th := p.NewThread("w", infiniteCompute(0, LocalNode), NodeCores(m, 2))
	eng.RunUntil(0.1)
	core, ran := th.LastCore()
	if !ran {
		t.Fatal("thread never ran")
	}
	if m.NodeOfCore(core) != 2 {
		t.Errorf("thread ran on core %d (node %d), want node 2", core, m.NodeOfCore(core))
	}
}

func TestSetAffinityMovesThread(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	th := p.NewThread("w", infiniteCompute(0, LocalNode), NodeCores(m, 0))
	eng.RunUntil(0.05)
	th.SetAffinity(NodeCores(m, 3))
	eng.RunUntil(0.1)
	core, _ := th.LastCore()
	if m.NodeOfCore(core) != 3 {
		t.Errorf("after SetAffinity thread on node %d, want 3", m.NodeOfCore(core))
	}
	if th.Migrations() == 0 {
		t.Error("expected a migration")
	}
}

func TestSetAffinityEmptyPanics(t *testing.T) {
	m := machine.PaperModel()
	_, o := newTestOS(m)
	p := o.NewProcess("a")
	th := p.NewThread("w", infiniteCompute(0, LocalNode), CoreSet{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty affinity")
		}
	}()
	th.SetAffinity(NewCoreSet(4))
}

func TestSleepAndExit(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	var phase int
	var sleepDone des.Time
	th := p.NewThread("w", RunnerFunc(func(*Thread) Work {
		phase++
		switch phase {
		case 1:
			return Work{Kind: WorkCompute, GFlop: 1, AI: 0} // 0.1 s at 10 GFLOPS
		case 2:
			return Work{Kind: WorkSleep, Duration: 0.5, OnDone: func() { sleepDone = eng.Now() }}
		case 3:
			return Work{Kind: WorkExit}
		}
		t.Fatal("runner called after exit")
		return Work{Kind: WorkExit}
	}), CoreSet{})
	eng.RunUntil(2)
	if th.State() != Done {
		t.Errorf("state = %v, want done", th.State())
	}
	if sleepDone < 0.6 || sleepDone > 0.62 {
		t.Errorf("sleep completed at %v, want ~0.6", sleepDone)
	}
	if math.Abs(th.GFlopDone()-1) > 1e-9 {
		t.Errorf("GFlopDone = %v, want 1", th.GFlopDone())
	}
}

func TestBlockAndWake(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	var calls int
	th := p.NewThread("w", RunnerFunc(func(*Thread) Work {
		calls++
		if calls == 1 {
			return Work{Kind: WorkBlock}
		}
		return Work{Kind: WorkExit}
	}), CoreSet{})
	eng.RunUntil(0.1)
	if th.State() != Blocked {
		t.Fatalf("state = %v, want blocked", th.State())
	}
	// Waking a non-blocked thread is a no-op; wake the blocked one.
	eng.Schedule(0.2, func() { th.Wake() })
	eng.RunUntil(0.5)
	if th.State() != Done {
		t.Errorf("state after wake = %v, want done", th.State())
	}
	th.Wake() // no-op on done thread
	if calls != 2 {
		t.Errorf("runner calls = %d, want 2", calls)
	}
}

func TestOnDoneCallback(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	var doneAt des.Time
	items := 0
	p.NewThread("w", RunnerFunc(func(*Thread) Work {
		items++
		if items == 1 {
			return Work{Kind: WorkCompute, GFlop: 5, AI: 0, OnDone: func() { doneAt = eng.Now() }}
		}
		return Work{Kind: WorkExit}
	}), CoreSet{})
	eng.RunUntil(1)
	// 5 GFLOP at 10 GFLOPS = 0.5 s (quantized to ms).
	if doneAt < 0.49 || doneAt > 0.52 {
		t.Errorf("OnDone at %v, want ~0.5", doneAt)
	}
}

func TestLoadBalancerSpreadsThreads(t *testing.T) {
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := New(eng, Config{Machine: m, ContextSwitchCost: -1, MigrationPenalty: -1, LoadBalancePeriod: 5 * des.Millisecond})
	o.Start()
	p := o.NewProcess("a")
	// 8 threads all allowed on node 0's 8 cores; initial placement may
	// already spread them, but pile-ups must be balanced away.
	for i := 0; i < 8; i++ {
		p.NewThread("w", infiniteCompute(0, LocalNode), NodeCores(m, 0))
	}
	eng.RunUntil(0.5)
	qs := o.QueueLengths()
	for c := 0; c < 8; c++ {
		if qs[c] != 1 {
			t.Errorf("core %d queue length %d, want 1 (balanced)", c, qs[c])
		}
	}
	// Total throughput: 8 cores * 10 GFLOPS * 0.5 s = 40.
	if got := p.GFlopDone(); math.Abs(got-40) > 1 {
		t.Errorf("GFlopDone = %.3f, want ~40", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		m := machine.PaperModel()
		eng, o := newTestOS(m)
		p := o.NewProcess("a")
		for i := 0; i < 12; i++ {
			p.NewThread("w", infiniteCompute(0.7, LocalNode), CoreSet{})
		}
		eng.RunUntil(0.3)
		return p.GFlopDone()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestNewValidation(t *testing.T) {
	eng := des.NewEngine(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for nil machine")
			}
		}()
		New(eng, Config{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for nil runner")
			}
		}()
		o := New(eng, Config{Machine: machine.PaperModel()})
		o.NewProcess("p").NewThread("t", nil, CoreSet{})
	}()
}

func TestStopHaltsScheduling(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	p.NewThread("w", infiniteCompute(0, LocalNode), CoreSet{})
	eng.RunUntil(0.1)
	before := p.GFlopDone()
	o.Stop()
	eng.RunUntil(0.2)
	if p.GFlopDone() != before {
		t.Error("progress after Stop")
	}
	o.Start() // restart works
	eng.RunUntil(0.3)
	if p.GFlopDone() <= before {
		t.Error("no progress after restart")
	}
}

func TestThreadAccessors(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("proc")
	th := p.NewThread("thr", infiniteCompute(0, LocalNode), CoreSet{})
	eng.RunUntil(0.01)
	if th.Name() != "thr" || th.Process() != p || p.Name() != "proc" {
		t.Error("accessor mismatch")
	}
	if th.ID() != 0 || p.ID() != 0 {
		t.Error("id mismatch")
	}
	if th.Affinity().Count() != 32 {
		t.Error("default affinity should cover all cores")
	}
	if len(p.Threads()) != 1 {
		t.Error("Threads() wrong")
	}
	if len(o.Processes()) != 1 {
		t.Error("Processes() wrong")
	}
	if th.BusySeconds() <= 0 {
		t.Error("no busy time accounted")
	}
	if o.Quantum() != des.Millisecond {
		t.Error("Quantum accessor wrong")
	}
	if o.Machine() != m || o.Engine() != eng || o.Arbiter() == nil {
		t.Error("OS accessors wrong")
	}
	if ThreadState(42).String() == "" || Ready.String() != "ready" || Blocked.String() != "blocked" || Sleeping.String() != "sleeping" || Done.String() != "done" {
		t.Error("state strings wrong")
	}
	if len(o.CoreLoads()) != 32 {
		t.Error("CoreLoads length wrong")
	}
}

func TestPriorityScheduling(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	hi := p.NewThread("hi", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	lo := p.NewThread("lo", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	hi.SetPriority(10)
	if hi.Priority() != 10 || lo.Priority() != 0 {
		t.Fatal("priority accessors wrong")
	}
	eng.RunUntil(1)
	// Strict priority: the high-priority thread owns the core, the
	// low-priority one starves.
	if hi.GFlopDone() < 9.5 {
		t.Errorf("high-priority thread did %.2f GFlop, want ~10", hi.GFlopDone())
	}
	if lo.GFlopDone() > 0.1 {
		t.Errorf("low-priority thread did %.2f GFlop, want ~0 (starved)", lo.GFlopDone())
	}
}

func TestEqualPrioritiesShare(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	a := p.NewThread("a", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	bt := p.NewThread("b", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	a.SetPriority(5)
	bt.SetPriority(5)
	eng.RunUntil(1)
	if math.Abs(a.GFlopDone()-bt.GFlopDone()) > 0.5 {
		t.Errorf("equal priorities should share: %.2f vs %.2f", a.GFlopDone(), bt.GFlopDone())
	}
}

func TestGBMovedAccounting(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newTestOS(m)
	p := o.NewProcess("a")
	th := p.NewThread("w", infiniteCompute(0.5, LocalNode), SingleCore(m, 0))
	eng.RunUntil(1)
	// Solo: 10 GFLOPS at AI=0.5 -> 20 GB/s -> ~20 GB in 1 s.
	if math.Abs(th.GBMoved()-20) > 0.5 {
		t.Errorf("thread GBMoved = %.2f, want ~20", th.GBMoved())
	}
	if math.Abs(p.GBMoved()-20) > 0.5 {
		t.Errorf("process GBMoved = %.2f, want ~20", p.GBMoved())
	}
	// Compute-only work moves nothing.
	eng2, o2 := newTestOS(m)
	p2 := o2.NewProcess("b")
	p2.NewThread("w", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	eng2.RunUntil(0.5)
	if p2.GBMoved() != 0 {
		t.Errorf("compute-only GBMoved = %v, want 0", p2.GBMoved())
	}
}

func TestMigrationPenaltyReducesThroughput(t *testing.T) {
	// A thread forced to bounce between cores loses the migration
	// penalty every move.
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := New(eng, Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  200 * des.Microsecond,
		LoadBalancePeriod: -1,
	})
	o.Start()
	p := o.NewProcess("a")
	th := p.NewThread("w", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	// Bounce between cores 0 and 1 every 2 ms.
	onZero := false
	eng.Ticker(2*des.Millisecond, func(des.Time) {
		onZero = !onZero
		if onZero {
			th.SetAffinity(SingleCore(m, 0))
		} else {
			th.SetAffinity(SingleCore(m, 1))
		}
	})
	eng.RunUntil(1)
	// 500 migrations x 200 µs = 0.1 s lost -> ~9 GFlop instead of 10.
	got := p.GFlopDone()
	if got > 9.3 || got < 8.6 {
		t.Errorf("bouncing thread did %.2f GFlop, want ~9", got)
	}
	if th.Migrations() < 400 {
		t.Errorf("migrations = %d, want ~500", th.Migrations())
	}
}

func TestCustomQuantum(t *testing.T) {
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := New(eng, Config{
		Machine:           m,
		Quantum:           5 * des.Millisecond,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	if o.Quantum() != 5*des.Millisecond {
		t.Fatalf("Quantum = %v", o.Quantum())
	}
	p := o.NewProcess("a")
	p.NewThread("w", infiniteCompute(0, LocalNode), SingleCore(m, 0))
	eng.RunUntil(1)
	if got := p.GFlopDone(); math.Abs(got-10) > 0.2 {
		t.Errorf("coarse quantum GFlopDone = %.2f, want ~10", got)
	}
}
