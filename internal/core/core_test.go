package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/roofline"
)

func TestTableIModelValue(t *testing.T) {
	r, err := TableIScenario().RunModel()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalGFLOPS-254) > 1e-9 {
		t.Errorf("Table I model = %.3f, want 254", r.TotalGFLOPS)
	}
}

func TestTableIIModelValue(t *testing.T) {
	r, err := TableIIScenario().RunModel()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalGFLOPS-140) > 1e-9 {
		t.Errorf("Table II model = %.3f, want 140", r.TotalGFLOPS)
	}
}

func TestNodePerAppModelValue(t *testing.T) {
	r, err := NodePerAppScenario().RunModel()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalGFLOPS-128) > 1e-9 {
		t.Errorf("node-per-app model = %.3f, want 128", r.TotalGFLOPS)
	}
}

func TestFig3RankingReversal(t *testing.T) {
	even, npa := Fig3Scenarios()
	re, err := even.RunModel()
	if err != nil {
		t.Fatal(err)
	}
	rn, err := npa.RunModel()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re.TotalGFLOPS-138.75) > 1e-9 {
		t.Errorf("Fig3 even = %.4f, want 138.75", re.TotalGFLOPS)
	}
	if math.Abs(rn.TotalGFLOPS-150) > 1e-9 {
		t.Errorf("Fig3 node-per-app = %.4f, want 150", rn.TotalGFLOPS)
	}
}

func TestTableIIIModelColumn(t *testing.T) {
	for _, row := range TableIIIScenarios() {
		r, err := row.Scenario.RunModel()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.TotalGFLOPS-row.PaperModel) > 0.01 {
			t.Errorf("%s: model = %.4f, paper prints %.2f", row.Name, r.TotalGFLOPS, row.PaperModel)
		}
	}
}

func TestIdealSimMatchesModel(t *testing.T) {
	// With ideal simulation options, the simulated benchmark must land
	// within ~2% of the analytic model on every Table III row.
	for _, row := range TableIIIScenarios() {
		row.Scenario.Sim.Ideal = true
		cmp, err := row.Scenario.Run(row.Name)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(cmp.Sim.TotalGFLOPS-cmp.Model.TotalGFLOPS) / cmp.Model.TotalGFLOPS
		if rel > 0.02 {
			t.Errorf("%s: sim %.4f vs model %.4f (%.1f%% off)",
				row.Name, cmp.Sim.TotalGFLOPS, cmp.Model.TotalGFLOPS, rel*100)
		}
	}
}

func TestRealisticSimTracksPaperShape(t *testing.T) {
	// With realistic costs, the simulation plays the role of the
	// paper's hardware: close to the model, never wildly off, and
	// (like the paper's Table III) below the model on the NUMA-bad
	// rows where the model ignores remote-access inefficiency.
	rows := TableIIIScenarios()
	for i, row := range rows {
		cmp, err := row.Scenario.Run(row.Name)
		if err != nil {
			t.Fatal(err)
		}
		ratio := cmp.Sim.TotalGFLOPS / cmp.Model.TotalGFLOPS
		if ratio < 0.90 || ratio > 1.03 {
			t.Errorf("%s: sim/model = %.3f, want within [0.90, 1.03]", row.Name, ratio)
		}
		if i >= 3 && ratio > 1.0 {
			t.Errorf("%s: NUMA-bad row should fall below the model (ratio %.3f)", row.Name, ratio)
		}
	}
}

func TestSimRankingMatchesModelRanking(t *testing.T) {
	// The headline claim: who wins must be preserved by the simulator.
	// Table III rows 1-3 are ordered uneven > even > node-per-app.
	rows := TableIIIScenarios()[:3]
	var sim []float64
	for _, row := range rows {
		r, err := row.Scenario.RunSim()
		if err != nil {
			t.Fatal(err)
		}
		sim = append(sim, r.TotalGFLOPS)
	}
	if !(sim[0] > sim[1] && sim[1] > sim[2]) {
		t.Errorf("simulated ranking broken: %v", sim)
	}
}

func TestScenarioValidate(t *testing.T) {
	s := &Scenario{}
	if err := s.Validate(); err == nil {
		t.Error("expected error for empty scenario")
	}
	s.Machine = machine.PaperModel()
	if err := s.Validate(); err == nil {
		t.Error("expected error for no apps")
	}
	s.Apps = PaperApps()
	s.Allocation = roofline.NewAllocation(4, 4)
	s.Allocation.Threads[0][0] = 99
	if err := s.Validate(); err == nil {
		t.Error("expected error for over-subscription")
	}
	if _, err := s.RunSim(); err == nil {
		t.Error("RunSim must validate")
	}
}

func TestEmptyAllocationApp(t *testing.T) {
	// An app with zero threads simply measures zero.
	m := machine.PaperModel()
	s := &Scenario{
		Machine:    m,
		Apps:       []AppConfig{{Name: "a", AI: 1}, {Name: "idle", AI: 1}},
		Allocation: roofline.NewAllocation(2, 4).Set(0, 0, 4),
	}
	s.Sim.Duration = 0.2
	r, err := s.RunSim()
	if err != nil {
		t.Fatal(err)
	}
	if r.AppGFLOPS[1] != 0 {
		t.Errorf("idle app measured %.3f, want 0", r.AppGFLOPS[1])
	}
	if r.AppGFLOPS[0] <= 0 {
		t.Error("active app measured nothing")
	}
}

func TestCompareTable(t *testing.T) {
	s := TableIScenario()
	s.Sim.Duration = 0.2
	cmp, err := s.Run("table I")
	if err != nil {
		t.Fatal(err)
	}
	tab := CompareTable("Paper vs repro", []*Comparison{cmp})
	out := tab.String()
	if !strings.Contains(out, "table I") || !strings.Contains(out, "254") {
		t.Errorf("table missing content:\n%s", out)
	}
}

func TestSimResultFields(t *testing.T) {
	s := TableIIScenario()
	s.Sim.Duration = 0.2
	r, err := s.RunSim()
	if err != nil {
		t.Fatal(err)
	}
	if r.TasksExecuted == 0 {
		t.Error("no tasks executed")
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization = %.3f", r.Utilization)
	}
	sum := 0.0
	for _, g := range r.AppGFLOPS {
		sum += g
	}
	if math.Abs(sum-r.TotalGFLOPS) > 1e-9 {
		t.Error("total != sum of apps")
	}
}

func TestDeterministicSim(t *testing.T) {
	run := func() float64 {
		s := TableIScenario()
		s.Sim.Duration = 0.3
		r, err := s.RunSim()
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalGFLOPS
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic sim: %v vs %v", a, b)
	}
}
