package core

import (
	"repro/internal/machine"
	"repro/internal/roofline"
)

// PaperApps returns the four applications of the paper's Tables I/II:
// three memory-bound (AI=0.5) and one compute-bound (AI=10).
func PaperApps() []AppConfig {
	return []AppConfig{
		{Name: "mem1", AI: 0.5},
		{Name: "mem2", AI: 0.5},
		{Name: "mem3", AI: 0.5},
		{Name: "comp", AI: 10},
	}
}

// PaperNUMABadApps returns the Fig. 3 mix: three NUMA-perfect
// memory-bound applications and one NUMA-bad application homed on
// node 0.
func PaperNUMABadApps() []AppConfig {
	return []AppConfig{
		{Name: "mem1", AI: 0.5},
		{Name: "mem2", AI: 0.5},
		{Name: "mem3", AI: 0.5},
		{Name: "bad", AI: 1, Placement: roofline.NUMABad, HomeNode: 0},
	}
}

// TableIIIApps returns the calibrated Skylake applications of
// Section III.B (memory-bound AI=1/32, compute-bound AI=1).
func TableIIIApps() []AppConfig {
	return []AppConfig{
		{Name: "mem1", AI: 1.0 / 32},
		{Name: "mem2", AI: 1.0 / 32},
		{Name: "mem3", AI: 1.0 / 32},
		{Name: "comp", AI: 1},
	}
}

// TableIIIBadApps returns the NUMA-bad mix of Table III rows 4-5
// (memory-bound AI=1/32, NUMA-bad AI=1/16 homed on node 0).
func TableIIIBadApps() []AppConfig {
	return []AppConfig{
		{Name: "mem1", AI: 1.0 / 32},
		{Name: "mem2", AI: 1.0 / 32},
		{Name: "mem3", AI: 1.0 / 32},
		{Name: "bad", AI: 1.0 / 16, Placement: roofline.NUMABad, HomeNode: 0},
	}
}

// TableIScenario is the paper's Table I: uneven allocation (1,1,1,5) on
// the 4x8 model machine. The model yields 254 GFLOPS.
func TableIScenario() *Scenario {
	m := machine.PaperModel()
	return &Scenario{
		Machine:    m,
		Apps:       PaperApps(),
		Allocation: roofline.MustPerNodeCounts(m, []int{1, 1, 1, 5}),
	}
}

// TableIIScenario is the paper's Table II: even allocation (2,2,2,2).
// The model yields 140 GFLOPS.
func TableIIScenario() *Scenario {
	m := machine.PaperModel()
	return &Scenario{
		Machine:    m,
		Apps:       PaperApps(),
		Allocation: roofline.MustPerNodeCounts(m, []int{2, 2, 2, 2}),
	}
}

// NodePerAppScenario is the paper's in-text third allocation: one node
// per application. The model yields 128 GFLOPS.
func NodePerAppScenario() *Scenario {
	m := machine.PaperModel()
	return &Scenario{
		Machine:    m,
		Apps:       PaperApps(),
		Allocation: roofline.MustNodePerApp(m, 4, nil),
	}
}

// Fig2Scenarios returns the three allocation scenarios of the paper's
// Fig. 2 in order (uneven, even, node-per-app).
func Fig2Scenarios() []*Scenario {
	return []*Scenario{TableIScenario(), TableIIScenario(), NodePerAppScenario()}
}

// Fig3Scenarios returns the NUMA-bad comparison of Fig. 3 and the
// surrounding text: even allocation (~138 GFLOPS in the model) versus
// one node per application with the NUMA-bad code on its home node
// (150 GFLOPS) — the ranking reversal.
func Fig3Scenarios() (even, nodePerApp *Scenario) {
	m := machine.PaperModelNUMABad()
	even = &Scenario{
		Machine:    m,
		Apps:       PaperNUMABadApps(),
		Allocation: roofline.MustPerNodeCounts(m, []int{2, 2, 2, 2}),
	}
	nodePerApp = &Scenario{
		Machine:    m.Clone(),
		Apps:       PaperNUMABadApps(),
		Allocation: roofline.MustNodePerApp(m, 4, []machine.NodeID{1, 2, 3, 0}),
	}
	return even, nodePerApp
}

// TableIIIScenario identifies one row of the paper's Table III.
type TableIIIScenario struct {
	Name string
	// PaperModel and PaperReal are the values printed in the paper.
	PaperModel float64
	PaperReal  float64
	Scenario   *Scenario
}

// TableIIIScenarios returns all five rows of the paper's Table III on
// the calibrated Skylake machine.
func TableIIIScenarios() []TableIIIScenario {
	m := machine.SkylakeQuad()
	mk := func(apps []AppConfig, al roofline.Allocation) *Scenario {
		return &Scenario{Machine: m, Apps: apps, Allocation: al}
	}
	return []TableIIIScenario{
		{
			Name: "uneven (1,1,1,17)", PaperModel: 23.20, PaperReal: 22.82,
			Scenario: mk(TableIIIApps(), roofline.MustPerNodeCounts(m, []int{1, 1, 1, 17})),
		},
		{
			Name: "even (5,5,5,5)", PaperModel: 18.12, PaperReal: 18.14,
			Scenario: mk(TableIIIApps(), roofline.MustPerNodeCounts(m, []int{5, 5, 5, 5})),
		},
		{
			Name: "node per app", PaperModel: 15.18, PaperReal: 15.28,
			Scenario: mk(TableIIIApps(), roofline.MustNodePerApp(m, 4, nil)),
		},
		{
			Name: "NUMA-bad cross-node, even", PaperModel: 13.98, PaperReal: 13.25,
			Scenario: mk(TableIIIBadApps(), roofline.MustPerNodeCounts(m, []int{5, 5, 5, 5})),
		},
		{
			Name: "NUMA-bad on-node, node per app", PaperModel: 15.18, PaperReal: 14.52,
			Scenario: mk(TableIIIBadApps(), roofline.MustNodePerApp(m, 4, []machine.NodeID{1, 2, 3, 0})),
		},
	}
}
