// Package core is the library's orchestration facade: it ties the NUMA
// machine model, the analytic roofline evaluator, and the full
// discrete-event simulation stack (OS scheduler, memory arbiter, task
// runtime, synthetic workloads) into one Scenario API.
//
// A Scenario is a machine, a set of applications (arithmetic intensity
// plus NUMA placement), and a per-NUMA-node thread allocation. It can
// be evaluated two ways:
//
//   - RunModel applies the paper's analytic roofline model
//     (Section III.A), and
//   - RunSim executes the equivalent synthetic benchmark on the
//     simulated machine (the stand-in for the paper's real-hardware
//     runs in Section III.B),
//
// so paper-style model-vs-measured tables (Table III) fall out of
// running both.
package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/osched"
	"repro/internal/roofline"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

// AppConfig describes one application in a scenario.
type AppConfig struct {
	// Name labels the application.
	Name string
	// AI is the arithmetic intensity (FLOP/byte).
	AI float64
	// Placement selects NUMA-perfect or NUMA-bad data layout.
	Placement roofline.Placement
	// HomeNode holds a NUMA-bad application's data.
	HomeNode machine.NodeID
	// TaskGFlop is the simulation's task granularity; 0 picks a size
	// giving roughly 20 ms tasks on an uncontended core.
	TaskGFlop float64
}

// App converts the config to the analytic model's application type.
func (a AppConfig) App() roofline.App {
	return roofline.App{Name: a.Name, AI: a.AI, Placement: a.Placement, HomeNode: a.HomeNode}
}

// SimOptions tunes the simulation realism.
type SimOptions struct {
	// Duration is the measured window. Default 1 s.
	Duration des.Time
	// Seed seeds the engine. Default 1.
	Seed int64
	// Ideal zeroes scheduling costs and remote inefficiency so the
	// simulator reproduces the analytic model (used for validation).
	// The default (false) keeps realistic costs, which makes simulated
	// results deviate from the model the way the paper's hardware does.
	Ideal bool
	// RemoteEfficiency overrides the remote-access efficiency factor
	// (0 keeps the default: 1.0 when Ideal, 0.92 otherwise).
	RemoteEfficiency float64
	// Scheduler selects the task-runtime scheduler. Default NUMAAware.
	Scheduler taskrt.SchedulerKind
}

// Scenario couples a machine, applications and an allocation.
type Scenario struct {
	// Machine is the NUMA machine.
	Machine *machine.Machine
	// Apps lists the co-running applications.
	Apps []AppConfig
	// Allocation assigns threads per app per node (no over-subscription).
	Allocation roofline.Allocation
	// Sim tunes the simulation.
	Sim SimOptions
}

// Validate checks the scenario.
func (s *Scenario) Validate() error {
	if s.Machine == nil {
		return fmt.Errorf("core: scenario has no machine")
	}
	if err := s.Machine.Validate(); err != nil {
		return err
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("core: scenario has no applications")
	}
	apps := make([]roofline.App, len(s.Apps))
	for i, a := range s.Apps {
		apps[i] = a.App()
	}
	return s.Allocation.Validate(s.Machine, apps)
}

// RunModel evaluates the analytic roofline model.
func (s *Scenario) RunModel() (*roofline.Result, error) {
	apps := make([]roofline.App, len(s.Apps))
	for i, a := range s.Apps {
		apps[i] = a.App()
	}
	return roofline.Evaluate(s.Machine, apps, s.Allocation)
}

// SimResult is the outcome of a simulated run.
type SimResult struct {
	// AppGFLOPS is each application's measured rate (GFLOP completed
	// divided by the measured window).
	AppGFLOPS []float64
	// TotalGFLOPS sums the applications.
	TotalGFLOPS float64
	// TasksExecuted counts completed tasks across applications.
	TasksExecuted uint64
	// Utilization is machine-wide CPU utilization in [0,1].
	Utilization float64
}

// RunSim executes the scenario's synthetic benchmark on the simulated
// machine: one task runtime per application with workers pinned to the
// allocated cores, saturated by a continuous workload of the
// application's arithmetic intensity and placement.
func (s *Scenario) RunSim() (*SimResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opt := s.Sim
	if opt.Duration <= 0 {
		opt.Duration = des.Second
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	eng := des.NewEngine(opt.Seed)
	osCfg := osched.Config{Machine: s.Machine}
	if opt.Ideal {
		osCfg.ContextSwitchCost = -1
		osCfg.MigrationPenalty = -1
		osCfg.LoadBalancePeriod = -1
		osCfg.RemoteEfficiency = 1
	} else {
		osCfg.RemoteEfficiency = 0.92
	}
	if opt.RemoteEfficiency > 0 {
		osCfg.RemoteEfficiency = opt.RemoteEfficiency
	}
	o := osched.New(eng, osCfg)
	o.Start()

	// Assign concrete cores per application from each node's pool.
	next := make([]int, s.Machine.NumNodes())
	rts := make([]*taskrt.Runtime, len(s.Apps))
	for i, a := range s.Apps {
		var cores []machine.CoreID
		for j := 0; j < s.Machine.NumNodes(); j++ {
			nodeCores := s.Machine.CoresOfNode(machine.NodeID(j))
			for k := 0; k < s.Allocation.Threads[i][j]; k++ {
				cores = append(cores, nodeCores[next[j]])
				next[j]++
			}
		}
		if len(cores) == 0 {
			continue
		}
		rts[i] = taskrt.New(o, taskrt.Config{
			Name:      a.Name,
			BindMode:  taskrt.BindCore,
			Scheduler: opt.Scheduler,
			Cores:     cores,
		})
		gflop := a.TaskGFlop
		if gflop <= 0 {
			// ~20 ms per task on an uncontended core.
			gflop = s.Machine.Nodes[0].PeakGFLOPS * 0.02
		}
		w := &workload.Continuous{
			RT:        rts[i],
			TaskGFlop: gflop,
			AI:        a.AI,
			Placement: a.Placement,
			HomeNode:  a.HomeNode,
		}
		w.Start()
	}

	eng.RunUntil(opt.Duration)

	res := &SimResult{AppGFLOPS: make([]float64, len(s.Apps))}
	for i, rt := range rts {
		if rt == nil {
			continue
		}
		st := rt.Stats()
		res.AppGFLOPS[i] = st.GFlopDone / float64(opt.Duration)
		res.TotalGFLOPS += res.AppGFLOPS[i]
		res.TasksExecuted += st.TasksExecuted
	}
	res.Utilization = o.Utilization()
	return res, nil
}

// Comparison pairs model and simulation outcomes for one scenario.
type Comparison struct {
	Name  string
	Model *roofline.Result
	Sim   *SimResult
}

// Run evaluates both the model and the simulation.
func (s *Scenario) Run(name string) (*Comparison, error) {
	model, err := s.RunModel()
	if err != nil {
		return nil, err
	}
	sim, err := s.RunSim()
	if err != nil {
		return nil, err
	}
	return &Comparison{Name: name, Model: model, Sim: sim}, nil
}

// CompareTable renders comparisons as a paper-style model-vs-measured
// table.
func CompareTable(title string, comparisons []*Comparison) *metrics.Table {
	t := metrics.NewTable(title, "scenario", "model GFLOPS", "simulated GFLOPS", "sim/model")
	for _, c := range comparisons {
		ratio := 0.0
		if c.Model.TotalGFLOPS > 0 {
			ratio = c.Sim.TotalGFLOPS / c.Model.TotalGFLOPS
		}
		t.AddRow(c.Name, c.Model.TotalGFLOPS, c.Sim.TotalGFLOPS, ratio)
	}
	return t
}
