package core

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/roofline"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

// TestLargeMachineScenario scales the model and simulator to a machine
// well beyond the paper's (16 nodes x 32 cores = 512 cores) and checks
// they still agree in ideal mode.
func TestLargeMachineScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("large machine scenario")
	}
	m := machine.Uniform("big", 16, 32, 2, 150, 25)
	apps := []AppConfig{
		{Name: "mem", AI: 0.05},
		{Name: "mid", AI: 0.5},
		{Name: "comp", AI: 50},
		{Name: "bad", AI: 0.2, Placement: roofline.NUMABad, HomeNode: 3},
	}
	al := roofline.MustPerNodeCounts(m, []int{8, 8, 8, 8})
	s := &Scenario{Machine: m, Apps: apps, Allocation: al}
	s.Sim.Ideal = true
	s.Sim.Duration = 0.3
	cmp, err := s.Run("big")
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(cmp.Sim.TotalGFLOPS-cmp.Model.TotalGFLOPS) / cmp.Model.TotalGFLOPS
	if rel > 0.03 {
		t.Errorf("512-core machine: sim %.2f vs model %.2f (%.1f%% off)",
			cmp.Sim.TotalGFLOPS, cmp.Model.TotalGFLOPS, rel*100)
	}
}

// TestManyTasksThroughput pushes 20k tasks through the runtime and
// checks completion and bounded simulation effort.
func TestManyTasksThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("large DAG")
	}
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore, Scheduler: taskrt.WorkStealing})
	done := false
	workload.RandomDAG(rt, workload.DAGSpec{
		Tasks:     20000,
		TaskGFlop: 0.002,
		AI:        0.8,
		MaxDeps:   2,
		Seed:      11,
	}, func() { done = true })
	eng.RunUntil(60)
	if !done {
		t.Fatalf("20k-task DAG incomplete: %d done", rt.Stats().TasksExecuted)
	}
	if rt.Stats().TasksExecuted != 20000 {
		t.Errorf("executed = %d", rt.Stats().TasksExecuted)
	}
}

// TestLongRunDeterminism runs a complex mixed scenario twice for 10
// simulated seconds and requires bit-identical outcomes.
func TestLongRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long determinism run")
	}
	run := func() (float64, uint64) {
		m := machine.SkylakeQuad()
		eng := des.NewEngine(99)
		o := osched.New(eng, osched.Config{Machine: m})
		o.Start()
		a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNode, Scheduler: taskrt.WorkStealing})
		b := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNode, Scheduler: taskrt.NUMAAware})
		(&workload.Continuous{RT: a, TaskGFlop: 0.003, AI: 1.0 / 32}).Start()
		(&workload.Continuous{RT: b, TaskGFlop: 0.003, AI: 1}).Start()
		eng.RunUntil(10)
		return a.Stats().GFlopDone + b.Stats().GFlopDone,
			a.Stats().TasksExecuted + b.Stats().TasksExecuted
	}
	g1, t1 := run()
	g2, t2 := run()
	if g1 != g2 || t1 != t2 {
		t.Errorf("non-deterministic long run: (%v,%v) vs (%v,%v)", g1, t1, g2, t2)
	}
}
