// Package consensus implements the paper's alternative to the central
// agent: "it would also be possible to have the different runtime
// systems cooperatively come to an agreement" on CPU core allocation.
//
// Participants (runtimes) exchange their per-NUMA-node thread demands
// over a simulated message bus with delivery latency. Once a
// participant has seen every demand for the current negotiation epoch,
// it computes a deterministic partition function of the machine —
// identical inputs give identical outputs, so all participants arrive
// at the same plan without a coordinator — applies its own slice via
// thread-control option 3, and broadcasts the plan for cross-checking.
// Disagreements (which would indicate divergent inputs) are counted.
//
// The partition function rotates tie-breaking across NUMA nodes and
// participants, which resolves the hazard the paper warns about: "we
// would not want all runtime systems to decide that ... they will all
// use node 0".
package consensus

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/machine"
)

// Bus is a simulated interconnect between participants with a fixed
// delivery latency (e.g. shared-memory mailboxes or local sockets).
// A DropRate > 0 injects message loss; the protocol tolerates it by
// periodically re-announcing until agreement (see Participant).
type Bus struct {
	eng          *des.Engine
	m            *machine.Machine
	latency      des.Time
	participants []*Participant
	messages     uint64
	dropped      uint64
	dropRate     float64
}

// NewBus creates a bus for the machine with the given one-way delivery
// latency.
func NewBus(eng *des.Engine, m *machine.Machine, latency des.Time) *Bus {
	if latency < 0 {
		panic("consensus: negative latency")
	}
	return &Bus{eng: eng, m: m, latency: latency}
}

// SetDropRate injects failures: each message is lost independently with
// the given probability (0 <= p < 1), drawn from the engine's
// deterministic RNG.
func (b *Bus) SetDropRate(p float64) {
	if p < 0 || p >= 1 {
		panic("consensus: drop rate must be in [0,1)")
	}
	b.dropRate = p
}

// Messages returns the total number of messages delivered.
func (b *Bus) Messages() uint64 { return b.messages }

// Dropped returns the number of injected message losses.
func (b *Bus) Dropped() uint64 { return b.dropped }

// broadcast delivers fn(p) to every participant except the sender
// after the bus latency, subject to injected loss.
func (b *Bus) broadcast(from *Participant, fn func(p *Participant)) {
	for _, p := range b.participants {
		if p == from {
			continue
		}
		if b.dropRate > 0 && b.eng.Rand().Float64() < b.dropRate {
			b.dropped++
			continue
		}
		p := p
		b.messages++
		b.eng.After(b.latency, func() { fn(p) })
	}
}

// send delivers fn(to) after the bus latency, subject to injected loss.
func (b *Bus) send(to *Participant, fn func(p *Participant)) {
	if b.dropRate > 0 && b.eng.Rand().Float64() < b.dropRate {
		b.dropped++
		return
	}
	b.messages++
	b.eng.After(b.latency, func() { fn(to) })
}

// demandMsg is a participant's announced requirement.
type demandMsg struct {
	epoch    int
	id       int
	perNode  []int
	flexible bool
}

// Participant is one runtime taking part in the negotiation.
type Participant struct {
	bus      *Bus
	id       int
	client   agent.Client
	epoch    int
	demand   []int
	flexible bool

	seen      map[int]demandMsg // by participant id, current epoch
	plans     map[int]string    // plan fingerprints by participant id
	decided   bool              // computed a plan for this epoch
	verified  bool              // counted the cross-check for this epoch
	myPlanFP  string
	agreed    uint64
	conflicts uint64
	applied   [][]int // last applied full plan
}

// Join adds a runtime to the bus. demand is the initial per-node thread
// requirement; flexible marks demand that may be relocated to other
// nodes when the preferred ones are contended (NUMA-perfect codes are
// flexible, NUMA-bad codes are not).
func (b *Bus) Join(client agent.Client, demand []int, flexible bool) *Participant {
	if len(demand) != b.m.NumNodes() {
		panic(fmt.Sprintf("consensus: demand has %d nodes, machine has %d", len(demand), b.m.NumNodes()))
	}
	p := &Participant{
		bus:      b,
		id:       len(b.participants),
		client:   client,
		demand:   append([]int(nil), demand...),
		flexible: flexible,
		seen:     map[int]demandMsg{},
		plans:    map[int]string{},
	}
	b.participants = append(b.participants, p)
	return p
}

// Start begins the first negotiation epoch and the participants'
// re-announce timers (which make the protocol robust to message loss).
// Call after all participants joined.
func (b *Bus) Start() {
	for _, p := range b.participants {
		p.announce(1)
	}
	retry := 20 * b.latency
	if retry < des.Millisecond {
		retry = des.Millisecond
	}
	for _, p := range b.participants {
		p := p
		b.eng.Ticker(retry, func(des.Time) { p.retransmit() })
	}
}

// retransmit re-sends state until the epoch fully verifies. The demand
// is always re-announced while unverified — having received everyone
// else's demand does not mean they received ours (losing only our
// message leaves the peer's set incomplete while ours looks done) —
// and the plan fingerprint is re-sent once computed. Duplicates are
// idempotent at the receivers.
func (p *Participant) retransmit() {
	if p.verified {
		return
	}
	msg := demandMsg{epoch: p.epoch, id: p.id, perNode: append([]int(nil), p.demand...), flexible: p.flexible}
	p.bus.broadcast(p, func(q *Participant) { q.receiveDemand(msg) })
	if p.decided {
		fp := p.myPlanFP
		epoch := p.epoch
		p.bus.broadcast(p, func(q *Participant) { q.receivePlan(p.id, epoch, fp) })
	}
}

// SetDemand changes the participant's requirement and triggers a new
// negotiation epoch.
func (p *Participant) SetDemand(perNode []int) {
	if len(perNode) != p.bus.m.NumNodes() {
		panic("consensus: wrong demand length")
	}
	p.demand = append([]int(nil), perNode...)
	next := p.epoch + 1
	p.announce(next)
	// Tell everyone a new epoch started; they re-announce.
	p.bus.broadcast(p, func(q *Participant) {
		if q.epoch < next {
			q.announce(next)
		}
	})
}

// announce enters epoch e and broadcasts the participant's demand.
func (p *Participant) announce(e int) {
	if e <= p.epoch && p.epoch != 0 {
		return
	}
	if e > p.epoch {
		p.epoch = e
		p.seen = map[int]demandMsg{}
		p.plans = map[int]string{}
		p.decided = false
		p.verified = false
	}
	msg := demandMsg{epoch: e, id: p.id, perNode: append([]int(nil), p.demand...), flexible: p.flexible}
	p.receiveDemand(msg) // own demand
	p.bus.broadcast(p, func(q *Participant) { q.receiveDemand(msg) })
}

func (p *Participant) receiveDemand(msg demandMsg) {
	if msg.epoch > p.epoch {
		// A newer epoch started elsewhere: join it and re-announce.
		p.announce(msg.epoch)
		// announce() recorded our own demand; fall through to store
		// the sender's.
	}
	if msg.epoch < p.epoch {
		return // stale
	}
	p.seen[msg.id] = msg
	if !p.decided && len(p.seen) == len(p.bus.participants) {
		p.decide()
	}
	// A verified participant receiving a (re)announcement answers the
	// sender directly with its own demand and plan: the sender is still
	// converging and may have lost our earlier broadcasts, and we will
	// not retransmit on our own anymore.
	if p.verified && msg.id != p.id {
		sender := p.bus.participants[msg.id]
		reply := demandMsg{epoch: p.epoch, id: p.id, perNode: append([]int(nil), p.demand...), flexible: p.flexible}
		fp := p.myPlanFP
		epoch := p.epoch
		from := p.id
		p.bus.send(sender, func(q *Participant) {
			q.receiveDemand(reply)
			q.receivePlan(from, epoch, fp)
		})
	}
}

// decide computes the deterministic partition and applies this
// participant's slice.
func (p *Participant) decide() {
	p.decided = true
	n := len(p.bus.participants)
	demands := make([][]int, n)
	flex := make([]bool, n)
	for id, msg := range p.seen {
		demands[id] = msg.perNode
		flex[id] = msg.flexible
	}
	plan := Partition(p.bus.m, demands, flex)
	p.applied = plan
	if err := p.client.SetNodeThreads(plan[p.id]); err != nil {
		// Fall back to option 1 with the plan's total.
		total := 0
		for _, c := range plan[p.id] {
			total += c
		}
		p.client.SetTotalThreads(total)
	}
	// Cross-check: broadcast the fingerprint of the full plan.
	fp := fingerprint(plan)
	p.myPlanFP = fp
	epoch := p.epoch
	p.receivePlan(p.id, epoch, fp)
	p.bus.broadcast(p, func(q *Participant) { q.receivePlan(p.id, epoch, fp) })
}

func (p *Participant) receivePlan(from, epoch int, fp string) {
	if epoch != p.epoch {
		return
	}
	p.plans[from] = fp
	if !p.verified && len(p.plans) == len(p.bus.participants) {
		p.verified = true
		mine := p.plans[p.id]
		ok := true
		for _, other := range p.plans {
			if other != mine {
				ok = false
				break
			}
		}
		if ok {
			p.agreed++
		} else {
			p.conflicts++
		}
	}
}

// Agreed returns the number of epochs that ended in verified agreement.
func (p *Participant) Agreed() uint64 { return p.agreed }

// Conflicts returns the number of epochs with divergent plans.
func (p *Participant) Conflicts() uint64 { return p.conflicts }

// Epoch returns the current negotiation epoch.
func (p *Participant) Epoch() int { return p.epoch }

// Applied returns the participant's view of the last agreed plan
// (plan[i][j] = threads of participant i on node j), or nil.
func (p *Participant) Applied() [][]int { return p.applied }

func fingerprint(plan [][]int) string {
	return fmt.Sprint(plan)
}

// Partition is the deterministic allocation function all participants
// evaluate. For every node it grants each participant up to its demand
// within the node's core capacity (fair water-filling with round-robin
// remainders rotated by node index, so no participant systematically
// wins ties). Afterwards, unsatisfied demand of flexible participants
// is relocated onto nodes with spare cores, visiting nodes in an order
// rotated by participant id — which spreads relocated applications
// across nodes instead of piling them all onto node 0.
func Partition(m *machine.Machine, demands [][]int, flexible []bool) [][]int {
	n := len(demands)
	nodes := m.NumNodes()
	plan := make([][]int, n)
	for i := range plan {
		plan[i] = make([]int, nodes)
	}
	free := make([]int, nodes)
	shortfall := make([]int, n)

	for j := 0; j < nodes; j++ {
		capacity := m.Nodes[j].Cores
		want := make([]int, n)
		total := 0
		for i := 0; i < n; i++ {
			if j < len(demands[i]) {
				want[i] = demands[i][j]
			}
			total += want[i]
		}
		if total <= capacity {
			for i := 0; i < n; i++ {
				plan[i][j] = want[i]
			}
			free[j] = capacity - total
			continue
		}
		// Water-fill: grant fair share, round-robin the remainder
		// starting at participant (j mod n).
		granted := 0
		fair := capacity / n
		for i := 0; i < n; i++ {
			g := min(want[i], fair)
			plan[i][j] = g
			granted += g
		}
		for k := 0; granted < capacity; k++ {
			i := (j + k) % n
			if k >= 2*n*capacity {
				break // all demands satisfied
			}
			if plan[i][j] < want[i] {
				plan[i][j]++
				granted++
			} else if allSatisfied(plan, want, j) {
				break
			}
		}
		for i := 0; i < n; i++ {
			shortfall[i] += want[i] - plan[i][j]
		}
	}

	// Relocate flexible shortfall onto free cores; participant i starts
	// scanning at node (i mod nodes) to spread placements.
	for i := 0; i < n; i++ {
		if i < len(flexible) && !flexible[i] {
			continue
		}
		for k := 0; k < nodes && shortfall[i] > 0; k++ {
			j := (i + k) % nodes
			take := min(shortfall[i], free[j])
			plan[i][j] += take
			free[j] -= take
			shortfall[i] -= take
		}
	}
	return plan
}

func allSatisfied(plan [][]int, want []int, j int) bool {
	for i := range want {
		if plan[i][j] < want[i] {
			return false
		}
	}
	return true
}
