package consensus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

func newSim(m *machine.Machine) (*des.Engine, *osched.OS) {
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	return eng, o
}

func TestPartitionFitsDemand(t *testing.T) {
	m := machine.PaperModel()
	demands := [][]int{{1, 1, 1, 1}, {2, 2, 2, 2}, {5, 5, 5, 5}}
	plan := Partition(m, demands, []bool{true, true, true})
	for i, row := range plan {
		for j, c := range row {
			if c != demands[i][j] {
				t.Errorf("uncontended partition should equal demand: plan[%d][%d]=%d want %d", i, j, c, demands[i][j])
			}
		}
	}
}

func TestPartitionRespectsCapacity(t *testing.T) {
	m := machine.PaperModel()
	demands := [][]int{{8, 8, 8, 8}, {8, 8, 8, 8}, {8, 8, 8, 8}, {8, 8, 8, 8}}
	plan := Partition(m, demands, []bool{true, true, true, true})
	for j := 0; j < 4; j++ {
		total := 0
		for i := range plan {
			total += plan[i][j]
		}
		if total > 8 {
			t.Errorf("node %d over-subscribed: %d", j, total)
		}
		if total != 8 {
			t.Errorf("node %d under-used: %d (demand saturates)", j, total)
		}
	}
	// Fair: everyone gets 2 per node.
	for i, row := range plan {
		for j, c := range row {
			if c != 2 {
				t.Errorf("plan[%d][%d] = %d, want 2", i, j, c)
			}
		}
	}
}

func TestPartitionNode0Hazard(t *testing.T) {
	// Four flexible apps all prefer node 0 exclusively. Without the
	// rotation remedy they would share node 0's 8 cores and leave 24
	// cores idle; the partition must relocate them across nodes.
	m := machine.PaperModel()
	demands := [][]int{{8, 0, 0, 0}, {8, 0, 0, 0}, {8, 0, 0, 0}, {8, 0, 0, 0}}
	plan := Partition(m, demands, []bool{true, true, true, true})
	for i, row := range plan {
		total := 0
		for _, c := range row {
			total += c
		}
		if total != 8 {
			t.Errorf("app %d got %d cores, want 8 (relocated)", i, total)
		}
	}
	// All machine cores used.
	used := 0
	for _, row := range plan {
		for _, c := range row {
			used += c
		}
	}
	if used != 32 {
		t.Errorf("used = %d cores, want 32", used)
	}
}

func TestPartitionInflexibleNotRelocated(t *testing.T) {
	m := machine.PaperModel()
	// A NUMA-bad app (inflexible, data on node 0) and a flexible app
	// both want all of node 0.
	demands := [][]int{{8, 0, 0, 0}, {8, 0, 0, 0}}
	plan := Partition(m, demands, []bool{false, true})
	// Inflexible app keeps only its node-0 share.
	if plan[0][1]+plan[0][2]+plan[0][3] != 0 {
		t.Errorf("inflexible app relocated: %v", plan[0])
	}
	// Flexible app's shortfall moved elsewhere.
	flexTotal := 0
	for _, c := range plan[1] {
		flexTotal += c
	}
	if flexTotal != 8 {
		t.Errorf("flexible app got %d, want 8", flexTotal)
	}
}

// Property: partitions never over-subscribe a node and never grant a
// participant more on a node than it asked for (plus relocations on
// other nodes only for flexible apps).
func TestPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(4)
		cores := 1 + rng.Intn(8)
		m := machine.Uniform("p", nodes, cores, 1, 1, 0)
		n := 1 + rng.Intn(5)
		demands := make([][]int, n)
		flex := make([]bool, n)
		for i := range demands {
			demands[i] = make([]int, nodes)
			for j := range demands[i] {
				demands[i][j] = rng.Intn(cores + 2)
			}
			flex[i] = rng.Intn(2) == 0
		}
		plan := Partition(m, demands, flex)
		for j := 0; j < nodes; j++ {
			total := 0
			for i := 0; i < n; i++ {
				if plan[i][j] < 0 {
					return false
				}
				total += plan[i][j]
			}
			if total > cores {
				return false
			}
		}
		// Inflexible apps never exceed their per-node demand.
		for i := 0; i < n; i++ {
			if flex[i] {
				continue
			}
			for j := 0; j < nodes; j++ {
				if plan[i][j] > demands[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNegotiationReachesAgreement(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	bus := NewBus(eng, m, des.Millisecond)
	var parts []*Participant
	for i := 0; i < 3; i++ {
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindNode})
		parts = append(parts, bus.Join(rt, []int{4, 4, 4, 4}, true))
	}
	bus.Start()
	eng.RunUntil(0.1)
	for i, p := range parts {
		if p.Agreed() != 1 || p.Conflicts() != 0 {
			t.Errorf("participant %d: agreed=%d conflicts=%d, want 1/0", i, p.Agreed(), p.Conflicts())
		}
		if p.Epoch() != 1 {
			t.Errorf("participant %d epoch = %d, want 1", i, p.Epoch())
		}
	}
	// All participants hold identical plans.
	base := parts[0].Applied()
	for i, p := range parts[1:] {
		got := p.Applied()
		for a := range base {
			for j := range base[a] {
				if got[a][j] != base[a][j] {
					t.Fatalf("participant %d plan differs at [%d][%d]", i+1, a, j)
				}
			}
		}
	}
	// 3 apps x 4 per node over 8-core nodes: total 12 > 8, water-fill
	// grants fair share 2 each + 2 remainder -> node sums = 8.
	for j := 0; j < 4; j++ {
		sum := 0
		for a := range base {
			sum += base[a][j]
		}
		if sum != 8 {
			t.Errorf("node %d allocation sum = %d, want 8", j, sum)
		}
	}
}

func TestNegotiationAppliesToRuntimes(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	bus := NewBus(eng, m, des.Millisecond)
	var rts []*taskrt.Runtime
	for i := 0; i < 2; i++ {
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindNode})
		rts = append(rts, rt)
		bus.Join(rt, []int{8, 8, 8, 8}, true)
	}
	bus.Start()
	eng.RunUntil(0.1)
	for i, rt := range rts {
		st := rt.Stats()
		// Each should end with 16 active workers (half the machine).
		if st.Suspended != 16 {
			t.Errorf("runtime %d suspended = %d, want 16", i, st.Suspended)
		}
	}
}

func TestRenegotiationOnDemandChange(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	bus := NewBus(eng, m, des.Millisecond)
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNode})
	b := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNode})
	pa := bus.Join(a, []int{4, 4, 4, 4}, true)
	pb := bus.Join(b, []int{4, 4, 4, 4}, true)
	bus.Start()
	eng.RunUntil(0.1)
	if pa.Agreed() != 1 {
		t.Fatalf("initial agreement missing")
	}
	// Application a now wants the whole machine.
	eng.Schedule(0.2, func() { pa.SetDemand([]int{8, 8, 8, 8}) })
	eng.RunUntil(0.4)
	if pa.Epoch() != 2 || pb.Epoch() != 2 {
		t.Errorf("epochs = %d/%d, want 2/2", pa.Epoch(), pb.Epoch())
	}
	if pa.Agreed() != 2 || pb.Conflicts() != 0 {
		t.Errorf("agreed=%d conflicts=%d after renegotiation", pa.Agreed(), pb.Conflicts())
	}
	// New plan: a gets 4 + remainder rotation; node sums stay at 8.
	plan := pa.Applied()
	for j := 0; j < 4; j++ {
		if plan[0][j]+plan[1][j] != 8 {
			t.Errorf("node %d sum = %d, want 8", j, plan[0][j]+plan[1][j])
		}
		if plan[0][j] < plan[1][j] {
			t.Errorf("node %d: bigger demand should get at least as much (%d vs %d)", j, plan[0][j], plan[1][j])
		}
	}
	if bus.Messages() == 0 {
		t.Error("no messages counted")
	}
}

func TestJoinValidation(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	bus := NewBus(eng, m, des.Millisecond)
	rt := taskrt.New(o, taskrt.Config{Name: "x", BindMode: taskrt.BindNode})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong demand length")
		}
	}()
	bus.Join(rt, []int{1, 2}, true)
}

func TestNegativeLatencyPanics(t *testing.T) {
	m := machine.PaperModel()
	eng, _ := newSim(m)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBus(eng, m, -1)
}

func TestFallbackToOption1(t *testing.T) {
	// Unbound runtimes reject SetNodeThreads; the participant must fall
	// back to SetTotalThreads with the plan's total.
	m := machine.PaperModel()
	eng, o := newSim(m)
	bus := NewBus(eng, m, des.Millisecond)
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNone})
	b := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNone})
	bus.Join(a, []int{8, 8, 8, 8}, true)
	bus.Join(b, []int{8, 8, 8, 8}, true)
	bus.Start()
	eng.RunUntil(0.1)
	if st := a.Stats(); st.Suspended != 16 {
		t.Errorf("fallback suspended = %d, want 16", st.Suspended)
	}
}

// TestAgreementUnderMessageLoss injects heavy message loss; the
// periodic retransmission must still converge every participant onto
// the same verified plan.
func TestAgreementUnderMessageLoss(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	bus := NewBus(eng, m, des.Millisecond)
	bus.SetDropRate(0.4)
	var parts []*Participant
	for i := 0; i < 4; i++ {
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindNode})
		parts = append(parts, bus.Join(rt, []int{4, 4, 4, 4}, true))
	}
	bus.Start()
	eng.RunUntil(5)
	if bus.Dropped() == 0 {
		t.Fatal("no messages were dropped; injection inactive")
	}
	for i, p := range parts {
		if p.Agreed() != 1 || p.Conflicts() != 0 {
			t.Errorf("participant %d: agreed=%d conflicts=%d under loss", i, p.Agreed(), p.Conflicts())
		}
	}
	// All hold the same plan.
	base := fingerprint(parts[0].Applied())
	for i, p := range parts[1:] {
		if fingerprint(p.Applied()) != base {
			t.Errorf("participant %d diverged", i+1)
		}
	}
}

// TestRenegotiationUnderMessageLoss combines demand changes with loss.
func TestRenegotiationUnderMessageLoss(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	bus := NewBus(eng, m, des.Millisecond)
	bus.SetDropRate(0.3)
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNode})
	b := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNode})
	pa := bus.Join(a, []int{4, 4, 4, 4}, true)
	pb := bus.Join(b, []int{4, 4, 4, 4}, true)
	bus.Start()
	eng.RunUntil(2)
	eng.Schedule(2.5, func() { pa.SetDemand([]int{8, 8, 8, 8}) })
	eng.RunUntil(10)
	if pa.Epoch() != 2 || pb.Epoch() != 2 {
		t.Fatalf("epochs = %d/%d, want 2/2", pa.Epoch(), pb.Epoch())
	}
	if pa.Agreed() != 2 || pb.Agreed() != 2 {
		t.Errorf("agreed = %d/%d, want 2/2", pa.Agreed(), pb.Agreed())
	}
	if pa.Conflicts()+pb.Conflicts() != 0 {
		t.Error("conflicts under loss")
	}
}

func TestBadDropRatePanics(t *testing.T) {
	m := machine.PaperModel()
	eng, _ := newSim(m)
	bus := NewBus(eng, m, des.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	bus.SetDropRate(1)
}
