// Package metrics provides small reporting utilities used across the
// repository: aligned text tables (for the paper-style outputs), CSV
// export, and time series with summary statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them as aligned text or CSV.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with up to
// four significant decimals (trailing zeros trimmed).
func (t *Table) AddRow(values ...any) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = formatCell(v)
	}
	t.rows = append(t.rows, row)
	return t
}

func formatCell(v any) string {
	switch x := v.(type) {
	case float64:
		return FormatFloat(x)
	case float32:
		return FormatFloat(float64(x))
	default:
		return fmt.Sprintf("%v", v)
	}
}

// FormatFloat renders a float with four decimals, trimming zeros.
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 0) {
		if v > 0 {
			return "+Inf"
		}
		return "-Inf"
	}
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
// Cells containing commas, quotes, or line breaks (LF or CR) are
// quoted so the output round-trips through RFC 4180 parsers.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n\r") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Point is one time-series sample.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	points []Point
}

// NewSeries creates a named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample. Samples must be appended in non-decreasing time
// order; out-of-order appends panic.
func (s *Series) Add(t, v float64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		panic(fmt.Sprintf("metrics: out-of-order sample t=%g after %g", t, s.points[n-1].T))
	}
	s.points = append(s.points, Point{t, v})
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.points) }

// Points returns a copy of the samples.
func (s *Series) Points() []Point { return append([]Point(nil), s.points...) }

// Last returns the most recent sample, or zero if empty.
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// Stats summarizes a series.
type Stats struct {
	Count            int
	Min, Max, Mean   float64
	P50, P95, StdDev float64
}

// Stats computes summary statistics over the sample values.
func (s *Series) Stats() Stats {
	n := len(s.points)
	if n == 0 {
		return Stats{}
	}
	vals := make([]float64, n)
	sum := 0.0
	for i, p := range s.points {
		vals[i] = p.V
		sum += p.V
	}
	sort.Float64s(vals)
	mean := sum / float64(n)
	varsum := 0.0
	for _, v := range vals {
		varsum += (v - mean) * (v - mean)
	}
	return Stats{
		Count:  n,
		Min:    vals[0],
		Max:    vals[n-1],
		Mean:   mean,
		P50:    percentile(vals, 0.50),
		P95:    percentile(vals, 0.95),
		StdDev: math.Sqrt(varsum / float64(n)),
	}
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Rate returns the average dV/dT between the first and last samples, or
// 0 with fewer than two samples.
func (s *Series) Rate() float64 {
	n := len(s.points)
	if n < 2 {
		return 0
	}
	dt := s.points[n-1].T - s.points[0].T
	if dt <= 0 {
		return 0
	}
	return (s.points[n-1].V - s.points[0].V) / dt
}

// BarChart renders a horizontal ASCII bar chart: one row per label,
// bars scaled so the maximum value spans width characters.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if i < len(labels) && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxVal > 0 && v > 0 {
			n = int(v/maxVal*float64(width) + 0.5)
		}
		fmt.Fprintf(&b, "%-*s |%-*s %s\n", maxLabel, label, width, strings.Repeat("#", n), FormatFloat(v))
	}
	return b.String()
}
