package metrics

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", 254.0)
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "254") {
		t.Errorf("rendering missing content:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tab.NumRows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow(1)
	if strings.HasPrefix(tab.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestCSV(t *testing.T) {
	tab := NewTable("x", "name", "v")
	tab.AddRow("with,comma", 2.0)
	tab.AddRow("with\"quote", 3.0)
	csv := tab.CSV()
	if !strings.Contains(csv, "\"with,comma\"") {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, "\"with\"\"quote\"") {
		t.Errorf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "name,v\n") {
		t.Errorf("missing header: %s", csv)
	}
}

// TestCSVRoundTrip feeds cells with every special character through
// encoding/csv: a standards-compliant reader must recover them exactly.
// This is the regression test for CR/LF cells breaking row structure.
func TestCSVRoundTrip(t *testing.T) {
	rows := [][]string{
		{"plain", "with,comma"},
		{"with\"quote", "with\nnewline"},
		{"with\rreturn", "crlf\r\nboth"},
		{"", "trailing space "},
	}
	tab := NewTable("x", "a", "b")
	for _, r := range rows {
		tab.AddRow(r[0], r[1])
	}
	rd := csv.NewReader(strings.NewReader(tab.CSV()))
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv rejected our output: %v\n%s", err, tab.CSV())
	}
	want := append([][]string{{"a", "b"}}, rows...)
	if len(got) != len(want) {
		t.Fatalf("row count = %d, want %d (a cell broke row structure):\n%q", len(got), len(want), tab.CSV())
	}
	for i := range want {
		for j := range want[i] {
			g := got[i][j]
			// encoding/csv normalizes \r\n to \n inside quoted cells
			// (RFC 4180 reads both as a line break); compare modulo that.
			if g != want[i][j] && g != strings.ReplaceAll(want[i][j], "\r\n", "\n") {
				t.Errorf("cell [%d][%d] = %q, want %q", i, j, g, want[i][j])
			}
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"}, {254, "254"}, {0, "0"}, {13.984375, "13.9844"},
		{math.NaN(), "NaN"}, {math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
		{-0.0001, "-0.0001"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("gflops")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d", s.Len())
	}
	if last := s.Last(); last.T != 9 || last.V != 18 {
		t.Errorf("Last = %+v", last)
	}
	if r := s.Rate(); math.Abs(r-2) > 1e-12 {
		t.Errorf("Rate = %v, want 2", r)
	}
	st := s.Stats()
	if st.Count != 10 || st.Min != 0 || st.Max != 18 || math.Abs(st.Mean-9) > 1e-12 {
		t.Errorf("Stats = %+v", st)
	}
	if st.P50 != 9 {
		t.Errorf("P50 = %v, want 9", st.P50)
	}
	pts := s.Points()
	pts[0].V = 999
	if s.Points()[0].V == 999 {
		t.Error("Points should return a copy")
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("x")
	if s.Stats().Count != 0 || s.Rate() != 0 || s.Last() != (Point{}) {
		t.Error("empty series should return zeros")
	}
	s.Add(1, 5)
	if s.Rate() != 0 {
		t.Error("single-sample rate should be 0")
	}
	s.Add(1, 6) // same time ok
	if s.Rate() != 0 {
		t.Error("zero-dt rate should be 0")
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-order sample")
		}
	}()
	s.Add(4, 1)
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 10)
	s.Add(1, 20)
	st := s.Stats()
	if math.Abs(st.P50-15) > 1e-12 {
		t.Errorf("P50 = %v, want 15 (interpolated)", st.P50)
	}
	if math.Abs(st.P95-19.5) > 1e-12 {
		t.Errorf("P95 = %v, want 19.5", st.P95)
	}
	if math.Abs(st.StdDev-5) > 1e-12 {
		t.Errorf("StdDev = %v, want 5", st.StdDev)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Chart", []string{"a", "bb"}, []float64{10, 5}, 10)
	if !strings.Contains(out, "Chart") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#####") || strings.Contains(lines[2], "######") {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	// Degenerate inputs render without panicking.
	if BarChart("", nil, []float64{0, -1}, 0) == "" {
		t.Error("empty chart output")
	}
}
