package workload

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/roofline"
	"repro/internal/taskrt"
)

func newSim(m *machine.Machine) (*des.Engine, *osched.OS) {
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	return eng, o
}

func TestContinuousSaturates(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore})
	c := &Continuous{RT: rt, TaskGFlop: 0.05, AI: 0}
	c.Start()
	eng.RunUntil(1)
	// 32 cores * 10 GFLOPS; small per-task dispatch losses allowed.
	if got := c.GFlopDone(); got < 300 || got > 321 {
		t.Errorf("GFlopDone = %.1f, want ~320", got)
	}
	c.Stop()
	eng.RunUntil(1.5)
	after := c.GFlopDone()
	eng.RunUntil(2.5)
	if c.GFlopDone() != after {
		t.Error("workload kept running after Stop (beyond drain)")
	}
}

func TestContinuousNUMABad(t *testing.T) {
	m := machine.SkylakeQuad()
	eng, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "bad", BindMode: taskrt.BindCore})
	c := &Continuous{RT: rt, TaskGFlop: 0.01, AI: 1.0 / 16, Placement: roofline.NUMABad, HomeNode: 0}
	c.Start()
	eng.RunUntil(1)
	// Alone on the machine: remote threads are served first, capped at
	// 10 GB/s per link -> 30 GB/s remote = 1.875 GFLOPS. Node 0 keeps
	// 70 GB/s for its 20 local threads (demand 92.8) -> 3.5 GB/s each
	// -> 4.375 GFLOPS. Total ~6.25. The analytic model agrees.
	model := roofline.MustEvaluate(m,
		[]roofline.App{{Name: "bad", AI: 1.0 / 16, Placement: roofline.NUMABad, HomeNode: 0}},
		roofline.MustPerNodeCounts(m, []int{20}))
	got := c.GFlopDone()
	if got < model.TotalGFLOPS*0.95 || got > model.TotalGFLOPS*1.02 {
		t.Errorf("NUMA-bad solo = %.3f GFLOPS, model %.3f", got, model.TotalGFLOPS)
	}
}

func TestContinuousValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "x"})
	expectPanic("nil RT", func() { (&Continuous{TaskGFlop: 1}).Start() })
	expectPanic("zero gflop", func() { (&Continuous{RT: rt}).Start() })
	c := &Continuous{RT: rt, TaskGFlop: 1}
	c.Start()
	expectPanic("double start", c.Start)
}

func TestPipelineCompletes(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	prod := taskrt.New(o, taskrt.Config{Name: "producer", BindMode: taskrt.BindCore, Workers: 16})
	cons := taskrt.New(o, taskrt.Config{Name: "consumer", BindMode: taskrt.BindCore, Workers: 16})
	p := &Pipeline{
		Producer: prod, Consumer: cons,
		TasksPerIter:      8,
		ProducerTaskGFlop: 0.02,
		ConsumerTaskGFlop: 0.02,
		AI:                0,
		Iterations:        20,
		ItemSizeGB:        0.5,
	}
	var doneAt des.Time
	p.Start(func() { doneAt = eng.Now() })
	eng.RunUntil(10)
	if doneAt == 0 {
		t.Fatal("pipeline never finished")
	}
	if p.ProducedIterations() != 20 || p.ConsumedIterations() != 20 {
		t.Errorf("produced/consumed = %d/%d, want 20/20", p.ProducedIterations(), p.ConsumedIterations())
	}
	if p.QueueDepth() != 0 || p.IntermediateGB() != 0 {
		t.Errorf("queue not drained: depth=%d", p.QueueDepth())
	}
	if p.MaxQueueDepth() < 1 {
		t.Error("expected some queue build-up")
	}
}

func TestPipelineFasterProducerBuildsQueue(t *testing.T) {
	// Producer tasks are 4x lighter than consumer tasks: with equal
	// resources (disjoint core halves) the producer races ahead,
	// building intermediate data.
	m := machine.PaperModel()
	eng, o := newSim(m)
	prod := taskrt.New(o, taskrt.Config{Name: "producer", BindMode: taskrt.BindCore, Workers: 16})
	cons := taskrt.New(o, taskrt.Config{Name: "consumer", BindMode: taskrt.BindCore, Workers: 16, FirstCore: 16})
	p := &Pipeline{
		Producer: prod, Consumer: cons,
		TasksPerIter:      8,
		ProducerTaskGFlop: 0.01,
		ConsumerTaskGFlop: 0.04,
		Iterations:        30,
		ItemSizeGB:        1,
	}
	p.Start(nil)
	eng.RunUntil(10)
	if p.MaxQueueDepth() < 5 {
		t.Errorf("max queue depth = %d, want >= 5 (producer should race ahead)", p.MaxQueueDepth())
	}
	if p.MeanQueueDepth() <= 1 {
		t.Errorf("mean queue depth = %.2f, want > 1", p.MeanQueueDepth())
	}
}

func TestPipelineObservers(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	prod := taskrt.New(o, taskrt.Config{Name: "p", Workers: 8})
	cons := taskrt.New(o, taskrt.Config{Name: "c", Workers: 8})
	var prodIters, consIters []int
	p := &Pipeline{
		Producer: prod, Consumer: cons,
		TasksPerIter: 2, ProducerTaskGFlop: 0.01, ConsumerTaskGFlop: 0.01,
		Iterations:     5,
		OnItemProduced: func(i int) { prodIters = append(prodIters, i) },
		OnItemConsumed: func(i int) { consIters = append(consIters, i) },
	}
	p.Start(nil)
	eng.RunUntil(5)
	if len(prodIters) != 5 || len(consIters) != 5 {
		t.Fatalf("observer counts: %d/%d, want 5/5", len(prodIters), len(consIters))
	}
	for i := 0; i < 5; i++ {
		if prodIters[i] != i || consIters[i] != i {
			t.Errorf("iteration order wrong: %v / %v", prodIters, consIters)
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "x"})
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("missing runtimes", func() { (&Pipeline{TasksPerIter: 1, Iterations: 1}).Start(nil) })
	expectPanic("zero iters", func() {
		(&Pipeline{Producer: rt, Consumer: rt, TasksPerIter: 1}).Start(nil)
	})
	p := &Pipeline{Producer: rt, Consumer: rt, TasksPerIter: 1, Iterations: 1, ProducerTaskGFlop: 0.01, ConsumerTaskGFlop: 0.01}
	p.Start(nil)
	expectPanic("double start", func() { p.Start(nil) })
}

func TestDelegationRounds(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	main := taskrt.New(o, taskrt.Config{Name: "main", BindMode: taskrt.BindCore, Workers: 16})
	lib := taskrt.New(o, taskrt.Config{Name: "lib", BindMode: taskrt.BindCore, Workers: 16})
	var starts, ends []int
	d := &Delegation{
		Main: main, Library: lib,
		PhaseGFlop: 0.1, LibTasks: 8, LibTaskGFlop: 0.05,
		Calls:       5,
		OnCallStart: func(c int) { starts = append(starts, c) },
		OnCallEnd:   func(c int) { ends = append(ends, c) },
	}
	var doneAt des.Time
	d.Start(func() { doneAt = eng.Now() })
	eng.RunUntil(10)
	if doneAt == 0 {
		t.Fatal("delegation never finished")
	}
	if d.CallsDone() != 5 || len(starts) != 5 || len(ends) != 5 {
		t.Errorf("calls = %d starts=%d ends=%d, want 5 each", d.CallsDone(), len(starts), len(ends))
	}
	// Library work actually executed on the library runtime.
	if lib.Stats().GFlopDone < 5*8*0.05-1e-6 {
		t.Errorf("library GFlop = %.3f, want >= 2", lib.Stats().GFlopDone)
	}
	if math.Abs(main.Stats().GFlopDone-0.5) > 0.01 {
		t.Errorf("main GFlop = %.3f, want ~0.5", main.Stats().GFlopDone)
	}
}

func TestDelegationValidation(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "x"})
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("missing runtimes", func() { (&Delegation{Calls: 1, LibTasks: 1}).Start(nil) })
	expectPanic("zero calls", func() { (&Delegation{Main: rt, Library: rt, LibTasks: 1}).Start(nil) })
	d := &Delegation{Main: rt, Library: rt, Calls: 1, LibTasks: 1, PhaseGFlop: 0.01, LibTaskGFlop: 0.01}
	d.Start(nil)
	expectPanic("double start", func() { d.Start(nil) })
}
