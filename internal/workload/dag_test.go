package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/taskrt"
)

func TestRandomDAGCompletes(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore})
	done := false
	tasks := RandomDAG(rt, DAGSpec{Tasks: 200, TaskGFlop: 0.005, MaxDeps: 3, Seed: 7}, func() { done = true })
	eng.RunUntil(10)
	if !done {
		t.Fatal("DAG did not complete")
	}
	for i, task := range tasks {
		if task.State() != taskrt.TaskDone {
			t.Errorf("task %d state %v", i, task.State())
		}
	}
}

func TestForkJoinCompletes(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore})
	var doneAt des.Time
	ForkJoin(rt, 10, 32, 0.05, 0, func() { doneAt = eng.Now() })
	eng.RunUntil(10)
	if doneAt == 0 {
		t.Fatal("fork-join did not complete")
	}
	// 10 levels x 32 tasks x 5 ms on 32 cores: levels serialize, so
	// >= 10 * 5 ms; join barriers make it a bit more.
	if doneAt < 0.05 {
		t.Errorf("fork-join finished too fast (%v): levels must serialize", doneAt)
	}
}

func TestWavefrontCompletes(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore, Scheduler: taskrt.NUMAAware})
	var doneAt des.Time
	Wavefront(rt, m, 16, 0.01, 0.5, true, func() { doneAt = eng.Now() })
	eng.RunUntil(30)
	if doneAt == 0 {
		t.Fatal("wavefront did not complete")
	}
	if got := rt.Stats().TasksExecuted; got != 256 {
		t.Errorf("executed %d tasks, want 256", got)
	}
	// The critical path has 2n-1 = 31 anti-diagonals: at least 31 task
	// latencies must elapse.
	if doneAt < 0.03 {
		t.Errorf("wavefront finished too fast: %v", doneAt)
	}
}

func TestDAGValidation(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "app"})
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty dag", func() { RandomDAG(rt, DAGSpec{}, nil) })
	expectPanic("bad forkjoin", func() { ForkJoin(rt, 0, 1, 1, 0, nil) })
	expectPanic("bad wavefront", func() { Wavefront(rt, m, 0, 1, 0, false, nil) })
	expectPanic("self-dependency", func() {
		a := rt.NewTask("self", 0.001, 0, nil)
		a.DependsOn(a)
	})
	expectPanic("two-task cycle", func() {
		a := rt.NewTask("a", 0.001, 0, nil)
		b := rt.NewTask("b", 0.001, 0, nil)
		b.DependsOn(a)
		a.DependsOn(b)
	})
	expectPanic("transitive cycle", func() {
		a := rt.NewTask("a", 0.001, 0, nil)
		b := rt.NewTask("b", 0.001, 0, nil)
		c := rt.NewTask("c", 0.001, 0, nil)
		b.DependsOn(a)
		c.DependsOn(b)
		a.DependsOn(c)
	})
}

// TestSingleTaskDAG: the degenerate one-node graph still runs and fires
// its completion callback.
func TestSingleTaskDAG(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore})
	done := false
	tasks := RandomDAG(rt, DAGSpec{Tasks: 1, TaskGFlop: 0.001, Seed: 1}, func() { done = true })
	eng.RunUntil(1)
	if !done || len(tasks) != 1 || tasks[0].State() != taskrt.TaskDone {
		t.Fatalf("single-task DAG: done=%v tasks=%d", done, len(tasks))
	}
}

// TestDiamondReuseNoFalseCycle: diamond-shaped sharing (a->b, a->c,
// b,c->d) is a DAG, not a cycle; the cycle guard must not reject it.
func TestDiamondReuseNoFalseCycle(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore})
	a := rt.NewTask("a", 0.001, 0, nil)
	b := rt.NewTask("b", 0.001, 0, nil)
	c := rt.NewTask("c", 0.001, 0, nil)
	d := rt.NewTask("d", 0.001, 0, nil)
	b.DependsOn(a)
	c.DependsOn(a)
	d.DependsOn(b, c)
	for _, task := range []*taskrt.Task{a, b, c, d} {
		rt.Submit(task)
	}
	eng.RunUntil(1)
	if d.State() != taskrt.TaskDone {
		t.Fatalf("diamond did not complete: d state %v", d.State())
	}
}

// TestSchedulersOnDAGs: every scheduler kind completes every generator
// with all dependencies honored; property-tested over random specs.
func TestSchedulersOnDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine.PaperModel()
		eng, o := newSim(m)
		kind := taskrt.SchedulerKind(rng.Intn(3))
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore, Scheduler: kind})
		done := false
		RandomDAG(rt, DAGSpec{
			Tasks:     10 + rng.Intn(100),
			TaskGFlop: 0.001 + rng.Float64()*0.01,
			AI:        rng.Float64() * 2,
			MaxDeps:   rng.Intn(4),
			Seed:      seed,
		}, func() { done = true })
		eng.RunUntil(30)
		return done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestWavefrontNUMAPlacement: with per-diagonal blocks and strict
// locality the wavefront executes mostly on the blocks' nodes.
func TestWavefrontNUMAPlacement(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := taskrt.New(o, taskrt.Config{
		Name: "app", BindMode: taskrt.BindCore,
		Scheduler: taskrt.NUMAAware, NoRemoteSteal: true,
	})
	var doneAt des.Time
	Wavefront(rt, m, 12, 0.01, 0.5, true, func() { doneAt = eng.Now() })
	eng.RunUntil(30)
	if doneAt == 0 {
		t.Fatal("wavefront did not complete")
	}
}
