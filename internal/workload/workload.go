// Package workload builds the synthetic applications used throughout
// the paper's experiments on top of the task runtime:
//
//   - Continuous: a saturating kernel with a chosen arithmetic intensity
//     and NUMA placement (the synthetic benchmark of Section III.B),
//   - Pipeline: the producer-consumer pair of cooperating applications
//     from Section II (one item produced/consumed per iteration, many
//     parallel tasks inside an iteration),
//   - Delegation: the "library application" scenario where a main
//     application periodically hands a job to a second application and
//     waits for the result.
package workload

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/roofline"
	"repro/internal/taskrt"
)

// Continuous keeps a runtime saturated with uniform tasks, emulating
// the paper's synthetic roofline benchmark.
type Continuous struct {
	// RT is the runtime executing the workload.
	RT *taskrt.Runtime
	// TaskGFlop is the compute volume of each task.
	TaskGFlop float64
	// AI is the arithmetic intensity (FLOP/byte).
	AI float64
	// Placement selects NUMA behaviour: NUMAPerfect tasks read the
	// executing core's local memory; NUMABad tasks all read HomeNode.
	Placement roofline.Placement
	// HomeNode holds all data of a NUMABad workload.
	HomeNode machine.NodeID
	// InFlight is the number of tasks kept queued; default is twice
	// the worker count so workers never starve.
	InFlight int

	stopped bool
	started bool
	block   *taskrt.DataBlock
}

// Start begins submitting tasks. Calling Start twice panics.
func (c *Continuous) Start() {
	if c.started {
		panic("workload: Continuous started twice")
	}
	if c.RT == nil {
		panic("workload: Continuous.RT is nil")
	}
	if c.TaskGFlop <= 0 {
		panic("workload: Continuous.TaskGFlop must be positive")
	}
	c.started = true
	if c.InFlight <= 0 {
		c.InFlight = 2 * c.RT.Stats().Workers
	}
	if c.Placement == roofline.NUMABad {
		c.block = &taskrt.DataBlock{Name: "home-data", Node: c.HomeNode}
	}
	for i := 0; i < c.InFlight; i++ {
		c.submitOne()
	}
}

// Stop ends the feed; in-flight tasks drain naturally.
func (c *Continuous) Stop() { c.stopped = true }

func (c *Continuous) submitOne() {
	if c.stopped {
		return
	}
	t := c.RT.NewTask("k", c.TaskGFlop, c.AI, c.block)
	t.OnComplete = c.submitOne
	c.RT.Submit(t)
}

// GFlopDone reports the total compute completed by the workload's
// runtime.
func (c *Continuous) GFlopDone() float64 { return c.RT.Stats().GFlopDone }

// Pipeline is the paper's producer-consumer experiment: the producer
// application emits one data item per iteration, the consumer
// application consumes one item per iteration, and each iteration is
// internally parallel. The queue of produced-but-unconsumed items is
// the "intermediate data" whose size the paper's agent keeps small.
type Pipeline struct {
	// Producer and Consumer are the two cooperating runtimes.
	Producer, Consumer *taskrt.Runtime
	// TasksPerIter is the parallel task count inside one iteration.
	TasksPerIter int
	// ProducerTaskGFlop / ConsumerTaskGFlop size the per-task work.
	ProducerTaskGFlop float64
	ConsumerTaskGFlop float64
	// AI is the arithmetic intensity of both sides' tasks.
	AI float64
	// Iterations is the number of items to produce (and consume).
	Iterations int
	// ItemSizeGB sizes each intermediate item, for the storage metric.
	ItemSizeGB float64
	// OnItemProduced/OnItemConsumed observe progress (may be nil).
	OnItemProduced func(iter int)
	OnItemConsumed func(iter int)

	produced, consumed int
	consumerWaiting    bool
	maxQueueDepth      int
	queueDepthSum      float64 // sum over produced items of depth after production
	finished           func()
	started            bool
}

// Start launches both sides. onFinished (may be nil) runs when the
// consumer finishes the last iteration.
func (p *Pipeline) Start(onFinished func()) {
	if p.started {
		panic("workload: Pipeline started twice")
	}
	if p.Producer == nil || p.Consumer == nil {
		panic("workload: Pipeline requires both runtimes")
	}
	if p.TasksPerIter <= 0 || p.Iterations <= 0 {
		panic("workload: Pipeline needs positive TasksPerIter and Iterations")
	}
	p.started = true
	p.finished = onFinished
	p.startProducerIter()
	p.consumerWaiting = true // consumer waits for the first item
}

// ProducedIterations returns the number of items produced so far.
func (p *Pipeline) ProducedIterations() int { return p.produced }

// ConsumedIterations returns the number of items consumed so far.
func (p *Pipeline) ConsumedIterations() int { return p.consumed }

// QueueDepth returns the current intermediate-item count.
func (p *Pipeline) QueueDepth() int { return p.produced - p.consumed }

// MaxQueueDepth returns the high-water mark of intermediate items.
func (p *Pipeline) MaxQueueDepth() int { return p.maxQueueDepth }

// MeanQueueDepth returns the average depth observed at production
// instants — the paper's "size of intermediate data" effect.
func (p *Pipeline) MeanQueueDepth() float64 {
	if p.produced == 0 {
		return 0
	}
	return p.queueDepthSum / float64(p.produced)
}

// IntermediateGB returns the current intermediate data volume.
func (p *Pipeline) IntermediateGB() float64 {
	return float64(p.QueueDepth()) * p.ItemSizeGB
}

func (p *Pipeline) startProducerIter() {
	iter := p.produced
	barrier := p.Producer.NewTask(fmt.Sprintf("produce-%d", iter), 1e-6, 0, nil)
	for i := 0; i < p.TasksPerIter; i++ {
		t := p.Producer.NewTask("p", p.ProducerTaskGFlop, p.AI, nil)
		barrier.DependsOn(t)
		p.Producer.Submit(t)
	}
	barrier.OnComplete = func() { p.itemProduced(iter) }
	p.Producer.Submit(barrier)
}

func (p *Pipeline) itemProduced(iter int) {
	p.produced++
	depth := p.QueueDepth()
	if depth > p.maxQueueDepth {
		p.maxQueueDepth = depth
	}
	p.queueDepthSum += float64(depth)
	if p.OnItemProduced != nil {
		p.OnItemProduced(iter)
	}
	if p.produced < p.Iterations {
		p.startProducerIter()
	}
	if p.consumerWaiting {
		p.consumerWaiting = false
		p.startConsumerIter()
	}
}

func (p *Pipeline) startConsumerIter() {
	iter := p.consumed
	barrier := p.Consumer.NewTask(fmt.Sprintf("consume-%d", iter), 1e-6, 0, nil)
	for i := 0; i < p.TasksPerIter; i++ {
		t := p.Consumer.NewTask("c", p.ConsumerTaskGFlop, p.AI, nil)
		barrier.DependsOn(t)
		p.Consumer.Submit(t)
	}
	barrier.OnComplete = func() { p.itemConsumed(iter) }
	p.Consumer.Submit(barrier)
}

func (p *Pipeline) itemConsumed(iter int) {
	p.consumed++
	if p.OnItemConsumed != nil {
		p.OnItemConsumed(iter)
	}
	if p.consumed >= p.Iterations {
		if p.finished != nil {
			p.finished()
		}
		return
	}
	if p.QueueDepth() > 0 {
		p.startConsumerIter()
	} else {
		p.consumerWaiting = true
	}
}

// Delegation is the paper's tightly-integrated scenario: a "main"
// application periodically delegates a job to a "library" application
// and waits for its completion; quickly shifting CPU cores to the
// library while it runs improves efficiency.
type Delegation struct {
	// Main and Library are the two runtimes.
	Main, Library *taskrt.Runtime
	// PhaseGFlop is the main application's serial work between calls.
	PhaseGFlop float64
	// PhaseAI is the main phase's arithmetic intensity.
	PhaseAI float64
	// LibTasks and LibTaskGFlop size each delegated job.
	LibTasks     int
	LibTaskGFlop float64
	// LibAI is the library tasks' arithmetic intensity.
	LibAI float64
	// Calls is the number of main-phase/library-call rounds.
	Calls int
	// OnCallStart/OnCallEnd fire around each delegated job; the agent's
	// library-boost policy hooks in here (may be nil).
	OnCallStart func(call int)
	OnCallEnd   func(call int)

	callsDone int
	finished  func()
	started   bool
}

// Start launches the first main phase. onFinished (may be nil) runs
// after the last call returns.
func (d *Delegation) Start(onFinished func()) {
	if d.started {
		panic("workload: Delegation started twice")
	}
	if d.Main == nil || d.Library == nil {
		panic("workload: Delegation requires both runtimes")
	}
	if d.Calls <= 0 || d.LibTasks <= 0 {
		panic("workload: Delegation needs positive Calls and LibTasks")
	}
	d.started = true
	d.finished = onFinished
	d.startPhase()
}

// CallsDone returns the number of completed delegation rounds.
func (d *Delegation) CallsDone() int { return d.callsDone }

func (d *Delegation) startPhase() {
	call := d.callsDone
	t := d.Main.NewTask(fmt.Sprintf("phase-%d", call), d.PhaseGFlop, d.PhaseAI, nil)
	t.OnComplete = func() { d.startCall(call) }
	d.Main.Submit(t)
}

func (d *Delegation) startCall(call int) {
	if d.OnCallStart != nil {
		d.OnCallStart(call)
	}
	barrier := d.Library.NewTask(fmt.Sprintf("lib-done-%d", call), 1e-6, 0, nil)
	for i := 0; i < d.LibTasks; i++ {
		t := d.Library.NewTask("lib", d.LibTaskGFlop, d.LibAI, nil)
		barrier.DependsOn(t)
		d.Library.Submit(t)
	}
	barrier.OnComplete = func() {
		if d.OnCallEnd != nil {
			d.OnCallEnd(call)
		}
		d.callsDone++
		if d.callsDone < d.Calls {
			d.startPhase()
		} else if d.finished != nil {
			d.finished()
		}
	}
	d.Library.Submit(barrier)
}
