package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/machine"
	"repro/internal/taskrt"
)

// DAGSpec configures a generated task graph.
type DAGSpec struct {
	// Tasks is the node count.
	Tasks int
	// TaskGFlop and AI size each task.
	TaskGFlop float64
	AI        float64
	// MaxDeps bounds the per-task dependency count (RandomDAG).
	MaxDeps int
	// Seed drives the generator.
	Seed int64
	// Blocks, when non-empty, assigns each task a data block
	// round-robin (for NUMA placement experiments).
	Blocks []*taskrt.DataBlock
}

// RandomDAG builds and submits an acyclic random graph: task i depends
// on up to MaxDeps uniformly chosen earlier tasks. onDone (may be nil)
// fires when every task completed. It returns the created tasks.
func RandomDAG(rt *taskrt.Runtime, spec DAGSpec, onDone func()) []*taskrt.Task {
	if spec.Tasks <= 0 {
		panic("workload: DAG needs at least one task")
	}
	if spec.MaxDeps < 0 {
		spec.MaxDeps = 0
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	tasks := make([]*taskrt.Task, spec.Tasks)
	remaining := spec.Tasks
	for i := range tasks {
		var blk *taskrt.DataBlock
		if len(spec.Blocks) > 0 {
			blk = spec.Blocks[i%len(spec.Blocks)]
		}
		t := rt.NewTask(fmt.Sprintf("dag-%d", i), spec.TaskGFlop, spec.AI, blk)
		t.OnComplete = func() {
			remaining--
			if remaining == 0 && onDone != nil {
				onDone()
			}
		}
		if i > 0 && spec.MaxDeps > 0 {
			n := rng.Intn(spec.MaxDeps + 1)
			for d := 0; d < n; d++ {
				t.DependsOn(tasks[rng.Intn(i)])
			}
		}
		tasks[i] = t
	}
	for _, t := range tasks {
		rt.Submit(t)
	}
	return tasks
}

// ForkJoin builds levels of parallel tasks separated by join barriers:
// levels x width tasks, every task of level l+1 depending on all of
// level l (a BSP superstep structure). onDone fires after the last
// level.
func ForkJoin(rt *taskrt.Runtime, levels, width int, gflop, ai float64, onDone func()) {
	if levels <= 0 || width <= 0 {
		panic("workload: ForkJoin needs positive levels and width")
	}
	var prev []*taskrt.Task
	total := levels * width
	done := 0
	for l := 0; l < levels; l++ {
		cur := make([]*taskrt.Task, width)
		for w := 0; w < width; w++ {
			t := rt.NewTask(fmt.Sprintf("fj-%d-%d", l, w), gflop, ai, nil)
			t.OnComplete = func() {
				done++
				if done == total && onDone != nil {
					onDone()
				}
			}
			t.DependsOn(prev...)
			cur[w] = t
		}
		prev = cur
		for _, t := range cur {
			rt.Submit(t)
		}
	}
}

// Wavefront builds an n x n dependency grid: cell (i,j) depends on
// (i-1,j) and (i,j-1), the classic dynamic-programming sweep whose
// parallelism grows and shrinks along the anti-diagonals. Each cell's
// data block lives on node (i+j) mod nodes when blocks is true.
func Wavefront(rt *taskrt.Runtime, m *machine.Machine, n int, gflop, ai float64, blocks bool, onDone func()) {
	if n <= 0 {
		panic("workload: Wavefront needs positive n")
	}
	grid := make([][]*taskrt.Task, n)
	var blks []*taskrt.DataBlock
	if blocks {
		for nd := 0; nd < m.NumNodes(); nd++ {
			blks = append(blks, &taskrt.DataBlock{
				Name: fmt.Sprintf("diag-%d", nd), Node: machine.NodeID(nd), SizeGB: 1,
			})
		}
	}
	total := n * n
	done := 0
	for i := 0; i < n; i++ {
		grid[i] = make([]*taskrt.Task, n)
		for j := 0; j < n; j++ {
			var blk *taskrt.DataBlock
			if blocks {
				blk = blks[(i+j)%len(blks)]
			}
			t := rt.NewTask(fmt.Sprintf("wf-%d-%d", i, j), gflop, ai, blk)
			t.OnComplete = func() {
				done++
				if done == total && onDone != nil {
					onDone()
				}
			}
			if i > 0 {
				t.DependsOn(grid[i-1][j])
			}
			if j > 0 {
				t.DependsOn(grid[i][j-1])
			}
			grid[i][j] = t
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rt.Submit(grid[i][j])
		}
	}
}
