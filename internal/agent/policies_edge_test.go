package agent

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/taskrt"
)

// TestPoliciesZeroClients: every policy must cope with an empty client
// list (the control plane's registry can drain to zero between
// decisions) — no panic, no commands.
func TestPoliciesZeroClients(t *testing.T) {
	m := machine.PaperModel()
	policies := []Policy{
		FairShare{},
		FairShare{PerNode: true},
		&RooflineOptimal{},
		&AdaptiveRoofline{Warmup: 1},
		WorkConserving{},
		Static{},
	}
	for _, p := range policies {
		if cmds := p.Decide(0, m, nil); len(cmds) != 0 {
			t.Errorf("%s with zero clients issued %d commands", p.Name(), len(cmds))
		}
	}
}

// TestRooflineOptimalSingleGreedyApp: one compute-bound app gets the
// whole machine and never more — the allocation must fit the cores that
// exist even though the app would happily take any number of threads.
func TestRooflineOptimalSingleGreedyApp(t *testing.T) {
	m := machine.PaperModel()
	p := &RooflineOptimal{Specs: []AppSpec{{AI: 10}}, MinPerNode: 1}
	cmds := p.Decide(0, m, []Info{{Name: "greedy"}})
	if len(cmds) != 1 {
		t.Fatalf("commands = %v, want one", cmds)
	}
	total := 0
	for j, c := range cmds[0].PerNode {
		if c > m.Nodes[j].Cores {
			t.Errorf("node %d allocated %d threads, has %d cores", j, c, m.Nodes[j].Cores)
		}
		total += c
	}
	if total != m.TotalCores() {
		t.Errorf("single compute-bound app got %d threads, want the whole machine (%d)", total, m.TotalCores())
	}
}

// TestRooflineOptimalFloorInfeasible: when the no-starvation floors
// alone over-subscribe a node (more apps than cores per node), the
// policy reports no allocation instead of an invalid one.
func TestRooflineOptimalFloorInfeasible(t *testing.T) {
	m := machine.Uniform("tiny", 2, 2, 10, 32, 0) // 2 cores per node
	specs := make([]AppSpec, 3)                   // 3 apps, floor 1 each: needs 3 cores/node
	infos := make([]Info, 3)
	for i := range specs {
		specs[i] = AppSpec{AI: 1}
	}
	p := &RooflineOptimal{Specs: specs, MinPerNode: 1}
	if cmds := p.Decide(0, m, infos); cmds != nil {
		t.Errorf("infeasible floor produced commands: %v", cmds)
	}
	// Without the floor the same mix allocates fine.
	p2 := &RooflineOptimal{Specs: specs}
	if cmds := p2.Decide(0, m, infos); len(cmds) != 3 {
		t.Errorf("unfloored solve issued %d commands, want 3", len(cmds))
	}
}

// TestRooflineOptimalClientSetMismatch: the policy is computed for a
// fixed client set; if an app deregisters the spec list no longer
// matches and the policy must abstain rather than command the wrong
// clients.
func TestRooflineOptimalClientSetMismatch(t *testing.T) {
	m := machine.PaperModel()
	p := &RooflineOptimal{Specs: []AppSpec{{AI: 0.5}, {AI: 10}}}
	if cmds := p.Decide(0, m, []Info{{Name: "a"}, {Name: "b"}}); len(cmds) != 2 {
		t.Fatalf("initial decide issued %d commands", len(cmds))
	}
	// One app deregistered: 1 info against 2 specs.
	if cmds := p.Decide(0, m, []Info{{Name: "a"}}); cmds != nil {
		t.Errorf("mismatched client set produced commands: %v", cmds)
	}
}

// adaptiveInfo builds an Info reporting steady rates so AdaptiveRoofline
// can estimate the app's AI.
func adaptiveInfo(name string, ai float64) Info {
	return Info{Name: name, GFlopRate: 10 * ai, GBRate: 10}
}

// TestAdaptiveRooflineClientSetResize: an app deregistering (or joining)
// mid-estimation changes len(infos) between Decide calls. The policy
// must restart its accumulators, not index out of range — this is the
// regression test for the resize bug.
func TestAdaptiveRooflineClientSetResize(t *testing.T) {
	m := machine.PaperModel()
	p := &AdaptiveRoofline{Warmup: 2}

	three := []Info{adaptiveInfo("a", 0.5), adaptiveInfo("b", 0.5), adaptiveInfo("c", 10)}
	p.Decide(0, m, three)
	p.Decide(0, m, three)
	if cmds := p.Decide(0, m, three); len(cmds) != 3 {
		t.Fatalf("3-client decide issued %d commands, want 3", len(cmds))
	}

	// App "b" deregisters: the client list shrinks to 2. Before the
	// resize guard this panicked indexing 3-wide accumulators.
	two := []Info{adaptiveInfo("a", 0.5), adaptiveInfo("c", 10)}
	p.Decide(0, m, two) // restart, warming up again
	cmds := p.Decide(0, m, two)
	if len(cmds) != 2 {
		t.Fatalf("2-client decide issued %d commands, want 2", len(cmds))
	}
	for _, c := range cmds {
		if c.Client < 0 || c.Client >= 2 {
			t.Errorf("command addressed client %d of 2", c.Client)
		}
	}

	// And growing back works too (a new app registered).
	p.Decide(0, m, three)
	p.Decide(0, m, three)
	if cmds := p.Decide(0, m, three); len(cmds) != 3 {
		t.Errorf("regrown 3-client decide issued %d commands, want 3", len(cmds))
	}
}

// TestWorkConservingIdleBurst: with every neighbour idle, a single busy
// app gets nearly the whole machine; shares always stay within the
// machine's core count.
func TestWorkConservingIdleBurst(t *testing.T) {
	m := machine.PaperModel()
	p := WorkConserving{}
	infos := []Info{
		{Name: "busy", Stats: taskrt.Stats{Running: 8, Pending: 100, Workers: 32}},
		{Name: "idle", Stats: taskrt.Stats{Workers: 32}},
	}
	cmds := p.Decide(0, m, infos)
	if len(cmds) != 2 {
		t.Fatalf("commands = %d, want 2", len(cmds))
	}
	total := 0
	for _, c := range cmds {
		if c.Total == nil {
			t.Fatalf("work-conserving issued a non-total command: %+v", c)
		}
		total += *c.Total
	}
	if total > m.TotalCores() {
		t.Errorf("shares sum to %d, machine has %d cores", total, m.TotalCores())
	}
	if *cmds[0].Total <= *cmds[1].Total {
		t.Errorf("busy app got %d threads, idle got %d", *cmds[0].Total, *cmds[1].Total)
	}
	if *cmds[1].Total < 1 {
		t.Errorf("idle app starved: %d threads", *cmds[1].Total)
	}
}
