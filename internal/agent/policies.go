package agent

import (
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// FairShare divides the machine's cores evenly among the clients. With
// PerNode it issues per-NUMA-node counts (option 3, an even slice of
// every node); otherwise it issues total thread counts (option 1).
// This is the paper's "simple core allocation strategy ... so that the
// total number of worker threads across all applications is equal to
// the total number of available CPU cores", eliminating
// over-subscription.
type FairShare struct {
	// PerNode selects option 3 instead of option 1.
	PerNode bool
}

// Name implements Policy.
func (FairShare) Name() string { return "fair-share" }

// Decide implements Policy.
func (p FairShare) Decide(_ des.Time, m *machine.Machine, infos []Info) []Command {
	n := len(infos)
	if n == 0 {
		return nil
	}
	var cmds []Command
	if p.PerNode {
		for i := 0; i < n; i++ {
			counts := make([]int, m.NumNodes())
			for j, nd := range m.Nodes {
				counts[j] = nd.Cores / n
				if r := nd.Cores % n; i < r {
					counts[j]++
				}
			}
			cmds = append(cmds, Command{Client: i, PerNode: counts})
		}
		return cmds
	}
	total := m.TotalCores()
	for i := 0; i < n; i++ {
		share := total / n
		if i < total%n {
			share++
		}
		cmds = append(cmds, Command{Client: i, Total: &share})
	}
	return cmds
}

// IterationReporter exposes pipeline progress to the alignment policy.
// *workload.Pipeline implements it.
type IterationReporter interface {
	ProducedIterations() int
	ConsumedIterations() int
}

// Align keeps a producer application only a bounded number of
// iterations ahead of its consumer (the paper's prior-work experiment):
// when the lead exceeds MaxLead, cores shift from producer to consumer;
// when it falls below MinLead they shift back.
type Align struct {
	// Pipeline reports produced/consumed iteration counts.
	Pipeline IterationReporter
	// ProducerClient and ConsumerClient index the agent's client list.
	ProducerClient, ConsumerClient int
	// MinLead..MaxLead is the target band for produced-consumed.
	MinLead, MaxLead int
	// Step is the number of threads moved per decision (default 1).
	Step int
	// MinThreads floors each side's allocation (default 1).
	MinThreads int

	producerShare int // current producer share; 0 = uninitialized
}

// Name implements Policy.
func (*Align) Name() string { return "producer-consumer-align" }

// Decide implements Policy.
func (p *Align) Decide(_ des.Time, m *machine.Machine, infos []Info) []Command {
	if p.Pipeline == nil {
		return nil
	}
	step := p.Step
	if step <= 0 {
		step = 1
	}
	minThreads := p.MinThreads
	if minThreads <= 0 {
		minThreads = 1
	}
	total := m.TotalCores()
	if p.producerShare == 0 {
		p.producerShare = total / 2
	}
	lead := p.Pipeline.ProducedIterations() - p.Pipeline.ConsumedIterations()
	switch {
	case lead > p.MaxLead:
		p.producerShare -= step
	case lead < p.MinLead:
		p.producerShare += step
	default:
		return nil
	}
	if p.producerShare < minThreads {
		p.producerShare = minThreads
	}
	if p.producerShare > total-minThreads {
		p.producerShare = total - minThreads
	}
	prod, cons := p.producerShare, total-p.producerShare
	return []Command{
		{Client: p.ProducerClient, Total: &prod},
		{Client: p.ConsumerClient, Total: &cons},
	}
}

// AppSpec describes one client's performance character for the
// model-driven policy.
type AppSpec struct {
	// AI is the application's arithmetic intensity.
	AI float64
	// Placement and HomeNode describe its NUMA behaviour.
	Placement roofline.Placement
	HomeNode  machine.NodeID
}

// RooflineOptimal allocates per-node thread counts by exhaustively
// optimizing the paper's roofline model over uniform per-node
// allocations (Section III.A) — the NUMA-aware allocation the paper
// argues for. The decision is computed once and re-issued only if a
// client set change invalidates it.
type RooflineOptimal struct {
	// Specs describe the clients, in agent client order.
	Specs []AppSpec
	// Objective scores allocations; nil means total GFLOPS.
	Objective roofline.Objective
	// MinPerNode guarantees every client at least this many threads on
	// every node (no starvation: under pure throughput maximization a
	// memory-bound app's threads contribute nothing once bandwidth is
	// saturated and would be handed to compute-bound neighbours). 0
	// applies no floor; 1 reproduces the paper's Table I optimum.
	MinPerNode int
	// Search, when set, runs the solve through a shared roofline.Search
	// (pooled evaluators); nil uses the package-level default.
	Search *roofline.Search

	counts []int
	failed bool
}

// Name implements Policy.
func (*RooflineOptimal) Name() string { return "roofline-optimal" }

// Decide implements Policy.
func (p *RooflineOptimal) Decide(_ des.Time, m *machine.Machine, infos []Info) []Command {
	if p.failed || len(p.Specs) != len(infos) {
		return nil
	}
	if p.counts == nil {
		apps := make([]roofline.App, len(p.Specs))
		for i, s := range p.Specs {
			apps[i] = roofline.App{Name: infos[i].Name, AI: s.AI, Placement: s.Placement, HomeNode: s.HomeNode}
		}
		var counts []int
		var err error
		if p.Search != nil {
			counts, _, _, err = p.Search.BestPerNodeCountsFloor(m, apps, p.Objective, p.MinPerNode)
		} else {
			counts, _, _, err = roofline.BestPerNodeCountsFloor(m, apps, p.Objective, p.MinPerNode)
		}
		if err != nil {
			p.failed = true
			return nil
		}
		p.counts = counts
	}
	cmds := make([]Command, len(infos))
	for i := range infos {
		perNode := make([]int, m.NumNodes())
		for j := range perNode {
			perNode[j] = p.counts[i]
		}
		cmds[i] = Command{Client: i, PerNode: perNode}
	}
	return cmds
}

// AdaptiveRoofline is RooflineOptimal without the oracle: it estimates
// each application's arithmetic intensity online from the measured
// compute and memory-traffic rates (AI ≈ GFlopRate / GBRate), then
// optimizes the per-node allocation with the roofline model. This is
// the paper's "way to figure out the access patterns" realized from
// OS-level observation alone — no cooperation from the applications.
//
// The policy observes for Warmup periods (during which the paper's
// over-subscribed default or any prior allocation runs), averages the
// AI estimates, optimizes once, and re-optimizes every Reoptimize
// periods if the estimates drift by more than 25%.
type AdaptiveRoofline struct {
	// Warmup is the number of observation periods before the first
	// decision (default 5).
	Warmup int
	// Reoptimize re-estimates every N periods; 0 disables.
	Reoptimize int
	// MaxAI clamps the estimate for compute-only applications whose
	// measured traffic is ~0 (default 1e3).
	MaxAI float64
	// Placements optionally supplies NUMA placements per client
	// (default: all NUMA-perfect). AI is always estimated.
	Placements []AppSpec
	// Search, when set, runs re-optimizations through a shared
	// roofline.Search; nil uses the package-level default.
	Search *roofline.Search

	ticks    int
	sumAI    []float64
	nAI      []int
	lastAI   []float64
	counts   []int
	sinceOpt int
}

// Name implements Policy.
func (*AdaptiveRoofline) Name() string { return "adaptive-roofline" }

// Decide implements Policy.
func (p *AdaptiveRoofline) Decide(_ des.Time, m *machine.Machine, infos []Info) []Command {
	if p.Warmup <= 0 {
		p.Warmup = 5
	}
	if p.MaxAI <= 0 {
		p.MaxAI = 1e3
	}
	if p.sumAI == nil || len(p.sumAI) != len(infos) {
		// First call, or the client set changed under us (an app joined
		// or deregistered mid-reallocation): restart the estimation so
		// the accumulators stay aligned with the client list.
		p.sumAI = make([]float64, len(infos))
		p.nAI = make([]int, len(infos))
		p.lastAI = make([]float64, len(infos))
		p.counts = nil
		p.ticks = 0
	}
	// Accumulate AI estimates from clients that did measurable work.
	for i, in := range infos {
		if in.GFlopRate <= 0 {
			continue
		}
		ai := p.MaxAI
		if in.GBRate > 1e-9 {
			ai = in.GFlopRate / in.GBRate
			if ai > p.MaxAI {
				ai = p.MaxAI
			}
		}
		p.sumAI[i] += ai
		p.nAI[i]++
	}
	p.ticks++
	p.sinceOpt++
	if p.ticks < p.Warmup {
		return nil
	}
	needOpt := p.counts == nil
	if !needOpt && p.Reoptimize > 0 && p.sinceOpt >= p.Reoptimize {
		p.sinceOpt = 0
		for i := range infos {
			if est, ok := p.estimate(i); ok && p.lastAI[i] > 0 {
				if est > p.lastAI[i]*1.25 || est < p.lastAI[i]*0.8 {
					needOpt = true
				}
			}
		}
	}
	if !needOpt {
		return p.commands(m, len(infos))
	}
	apps := make([]roofline.App, len(infos))
	for i := range infos {
		est, ok := p.estimate(i)
		if !ok {
			est = 1 // never observed: neutral guess
		}
		p.lastAI[i] = est
		apps[i] = roofline.App{Name: infos[i].Name, AI: est}
		if i < len(p.Placements) {
			apps[i].Placement = p.Placements[i].Placement
			apps[i].HomeNode = p.Placements[i].HomeNode
		}
		// Reset accumulators so re-optimization sees fresh data.
		p.sumAI[i], p.nAI[i] = 0, 0
	}
	var counts []int
	var err error
	if p.Search != nil {
		counts, _, _, err = p.Search.BestPerNodeCounts(m, apps, nil)
	} else {
		counts, _, _, err = roofline.BestPerNodeCounts(m, apps, nil)
	}
	if err != nil {
		return nil
	}
	p.counts = counts
	return p.commands(m, len(infos))
}

func (p *AdaptiveRoofline) estimate(i int) (float64, bool) {
	if p.nAI[i] == 0 {
		return 0, false
	}
	return p.sumAI[i] / float64(p.nAI[i]), true
}

// EstimatedAI returns the policy's last AI estimate per client (for
// inspection), or nil before the first decision.
func (p *AdaptiveRoofline) EstimatedAI() []float64 {
	return append([]float64(nil), p.lastAI...)
}

func (p *AdaptiveRoofline) commands(m *machine.Machine, n int) []Command {
	cmds := make([]Command, n)
	for i := 0; i < n; i++ {
		perNode := make([]int, m.NumNodes())
		for j := range perNode {
			perNode[j] = p.counts[i]
		}
		cmds[i] = Command{Client: i, PerNode: perNode}
	}
	return cmds
}

// WorkConserving reallocates cores every period in proportion to each
// client's instantaneous demand (running + queued tasks), so an
// application bursts to the whole machine while its neighbours are
// idle and shrinks back when they wake — the paper's Section V
// suggestion of "dynamically shifting resources between" components
// co-located on a node.
type WorkConserving struct {
	// MinThreads floors every client's share (default 1) so a waking
	// application always has a thread to signal demand with.
	MinThreads int
}

// Name implements Policy.
func (WorkConserving) Name() string { return "work-conserving" }

// Decide implements Policy.
func (p WorkConserving) Decide(_ des.Time, m *machine.Machine, infos []Info) []Command {
	minThreads := p.MinThreads
	if minThreads <= 0 {
		minThreads = 1
	}
	total := m.TotalCores()
	n := len(infos)
	demands := make([]int, n)
	sum := 0
	for i, in := range infos {
		d := in.Stats.Running + in.Stats.Pending + in.Stats.Outstanding
		if d > in.Stats.Workers {
			d = in.Stats.Workers
		}
		demands[i] = d
		sum += d
	}
	shares := make([]int, n)
	if sum == 0 {
		// Nobody wants anything: even split keeps everyone responsive.
		for i := range shares {
			shares[i] = total / n
		}
	} else {
		used := 0
		for i, d := range demands {
			shares[i] = total * d / sum
			if shares[i] < minThreads {
				shares[i] = minThreads
			}
			used += shares[i]
		}
		// Trim overshoot caused by the floors, largest share first.
		for used > total {
			max := 0
			for i := range shares {
				if shares[i] > shares[max] {
					max = i
				}
			}
			if shares[max] <= minThreads {
				break
			}
			shares[max]--
			used--
		}
	}
	cmds := make([]Command, n)
	for i := range infos {
		s := shares[i]
		cmds[i] = Command{Client: i, Total: &s, Balanced: true}
	}
	return cmds
}

// Static issues one fixed allocation (per-node counts per client) and
// never changes it; useful as an experimental control.
type Static struct {
	// PerNode[i] is client i's per-node count vector.
	PerNode [][]int
}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Decide implements Policy.
func (p Static) Decide(_ des.Time, m *machine.Machine, infos []Info) []Command {
	var cmds []Command
	for i := range infos {
		if i < len(p.PerNode) && p.PerNode[i] != nil {
			cmds = append(cmds, Command{Client: i, PerNode: p.PerNode[i]})
		}
	}
	return cmds
}
