// Package agent implements the paper's resource-arbitration agent
// (Fig. 1): a coordinator that periodically receives execution
// statistics from the runtimes of cooperating applications (tasks
// executed, running threads), queries the simulated operating system
// for the CPU load the applications actually generate, and issues
// commands instructing each runtime how many worker threads to use —
// in total (option 1) or per NUMA node (option 3).
//
// Policies are pluggable: fair sharing, producer-consumer alignment,
// and a roofline-model-driven optimizer are provided; the library-boost
// mechanism for tightly-integrated "delegation" scenarios is exposed as
// direct agent calls hooked to application events.
package agent

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

// Client is the control interface a runtime exposes to the agent.
// *taskrt.Runtime implements it.
type Client interface {
	// Name labels the application.
	Name() string
	// Stats returns the runtime's monitoring snapshot.
	Stats() taskrt.Stats
	// SetTotalThreads applies thread-control option 1.
	SetTotalThreads(n int)
	// SetNodeThreads applies thread-control option 3.
	SetNodeThreads(counts []int) error
	// Process exposes the OS process for load queries.
	Process() *osched.Process
}

var _ Client = (*taskrt.Runtime)(nil)

// balancedClient is the optional NUMA-balanced variant of option 1.
type balancedClient interface {
	SetTotalThreadsBalanced(n int)
}

var _ balancedClient = (*taskrt.Runtime)(nil)

// Info is the per-client view handed to policies each period.
type Info struct {
	// Name is the client's label.
	Name string
	// Stats is the runtime snapshot.
	Stats taskrt.Stats
	// Load is the CPU load over the last period, in cores (busy-time
	// delta divided by period length) — the "actual CPU load" the
	// paper's agent queries from the operating system.
	Load float64
	// TaskRate is completed tasks per second over the last period.
	TaskRate float64
	// GFlopRate is the compute rate over the last period (GFLOP/s).
	GFlopRate float64
	// GBRate is the memory traffic rate over the last period (GB/s).
	// GFlopRate/GBRate is an online estimate of the application's
	// arithmetic intensity — the paper's "way to figure out the access
	// patterns" without cooperation from the application.
	GBRate float64
}

// Command adjusts one client's thread allocation. Exactly one of Total
// and PerNode should be set.
type Command struct {
	// Client indexes into the agent's client list.
	Client int
	// Total, when non-nil, applies SetTotalThreads (option 1).
	Total *int
	// Balanced upgrades a Total command to SetTotalThreadsBalanced for
	// clients that support it (spreading the active threads across
	// NUMA nodes — the paper's suggested option-1 refinement).
	Balanced bool
	// PerNode, when non-nil, applies SetNodeThreads (option 3).
	PerNode []int
}

// Policy decides thread allocations from periodic observations.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Decide returns commands to apply this period (may be empty).
	Decide(now des.Time, m *machine.Machine, infos []Info) []Command
}

// Config tunes the agent.
type Config struct {
	// Period is the monitoring/decision interval. Default 10 ms.
	Period des.Time
	// DecisionGFlop models a CPU-intensive scheduling algorithm
	// (Section IV): the agent occupies a core computing this much work
	// every period. 0 means the agent's decisions are free.
	DecisionGFlop float64
	// DecisionAffinity restricts the agent's dedicated thread. Empty
	// means any core. Only used when DecisionGFlop > 0.
	DecisionAffinity osched.CoreSet
	// OnError receives command-application errors (nil: counted only).
	OnError func(err error)
}

// Agent is the coordinator process.
type Agent struct {
	os      *osched.OS
	cfg     Config
	policy  Policy
	clients []Client

	prevBusy  []float64
	prevTasks []uint64
	prevGFlop []float64
	prevGB    []float64
	lastCmd   []string // dedup: textual form of last applied command

	loadSeries []*metrics.Series
	rateSeries []*metrics.Series

	decisions uint64
	commands  uint64
	errors    uint64
	stop      func()
}

// New creates an agent coordinating the given clients under the policy.
func New(os *osched.OS, cfg Config, policy Policy, clients ...Client) *Agent {
	if policy == nil {
		panic("agent: nil policy")
	}
	if len(clients) == 0 {
		panic("agent: no clients")
	}
	if cfg.Period <= 0 {
		cfg.Period = 10 * des.Millisecond
	}
	a := &Agent{
		os:        os,
		cfg:       cfg,
		policy:    policy,
		clients:   clients,
		prevBusy:  make([]float64, len(clients)),
		prevTasks: make([]uint64, len(clients)),
		prevGFlop: make([]float64, len(clients)),
		prevGB:    make([]float64, len(clients)),
		lastCmd:   make([]string, len(clients)),
	}
	for _, c := range clients {
		a.loadSeries = append(a.loadSeries, metrics.NewSeries(c.Name()+".load"))
		a.rateSeries = append(a.rateSeries, metrics.NewSeries(c.Name()+".task_rate"))
	}
	return a
}

// Start begins the periodic decision loop (and the dedicated
// decision-cost thread if configured).
func (a *Agent) Start() {
	if a.stop != nil {
		return
	}
	a.stop = a.os.Engine().Ticker(a.cfg.Period, func(now des.Time) { a.tick(now) })
	if a.cfg.DecisionGFlop > 0 {
		proc := a.os.NewProcess("agent")
		period := a.cfg.Period
		gflop := a.cfg.DecisionGFlop
		compute := true
		proc.NewThread("agent-decide", osched.RunnerFunc(func(*osched.Thread) osched.Work {
			if compute {
				compute = false
				return osched.Work{Kind: osched.WorkCompute, GFlop: gflop}
			}
			compute = true
			return osched.Work{Kind: osched.WorkSleep, Duration: period}
		}), a.cfg.DecisionAffinity)
	}
}

// Stop halts the decision loop.
func (a *Agent) Stop() {
	if a.stop != nil {
		a.stop()
		a.stop = nil
	}
}

func (a *Agent) tick(now des.Time) {
	infos := make([]Info, len(a.clients))
	period := float64(a.cfg.Period)
	for i, c := range a.clients {
		st := c.Stats()
		proc := c.Process()
		busy := proc.BusySeconds()
		gflop := proc.GFlopDone()
		gb := proc.GBMoved()
		infos[i] = Info{
			Name:      c.Name(),
			Stats:     st,
			Load:      (busy - a.prevBusy[i]) / period,
			TaskRate:  float64(st.TasksExecuted-a.prevTasks[i]) / period,
			GFlopRate: (gflop - a.prevGFlop[i]) / period,
			GBRate:    (gb - a.prevGB[i]) / period,
		}
		a.prevBusy[i] = busy
		a.prevTasks[i] = st.TasksExecuted
		a.prevGFlop[i] = gflop
		a.prevGB[i] = gb
		a.loadSeries[i].Add(float64(now), infos[i].Load)
		a.rateSeries[i].Add(float64(now), infos[i].TaskRate)
	}
	a.decisions++
	for _, cmd := range a.policy.Decide(now, a.os.Machine(), infos) {
		a.apply(cmd)
	}
}

// apply executes one command, deduplicating repeats.
func (a *Agent) apply(cmd Command) {
	if cmd.Client < 0 || cmd.Client >= len(a.clients) {
		a.fail(fmt.Errorf("agent: command for unknown client %d", cmd.Client))
		return
	}
	key := ""
	switch {
	case cmd.Total != nil:
		key = fmt.Sprintf("total=%d,balanced=%v", *cmd.Total, cmd.Balanced)
	case cmd.PerNode != nil:
		key = fmt.Sprintf("pernode=%v", cmd.PerNode)
	default:
		a.fail(fmt.Errorf("agent: empty command for client %d", cmd.Client))
		return
	}
	if a.lastCmd[cmd.Client] == key {
		return // unchanged
	}
	c := a.clients[cmd.Client]
	if cmd.Total != nil {
		if bc, ok := c.(balancedClient); ok && cmd.Balanced {
			bc.SetTotalThreadsBalanced(*cmd.Total)
		} else {
			c.SetTotalThreads(*cmd.Total)
		}
	} else if err := c.SetNodeThreads(cmd.PerNode); err != nil {
		a.fail(fmt.Errorf("agent: %s: %w", c.Name(), err))
		return
	}
	a.lastCmd[cmd.Client] = key
	a.commands++
}

func (a *Agent) fail(err error) {
	a.errors++
	if a.cfg.OnError != nil {
		a.cfg.OnError(err)
	}
}

// Boost gives one client the whole machine and parks every other
// client's workers, remembering nothing: callers pair it with Restore.
// It is the fast core-shift used by the delegation scenario ("quickly
// shifting resources to the library application when it is called").
func (a *Agent) Boost(client int) {
	for i, c := range a.clients {
		if i == client {
			c.SetTotalThreads(c.Stats().Workers)
		} else {
			c.SetTotalThreads(0)
		}
		a.lastCmd[i] = "" // force future policy commands through
	}
	a.commands++
}

// Restore distributes threads evenly again after a Boost.
func (a *Agent) Restore() {
	n := a.os.Machine().TotalCores() / len(a.clients)
	for i, c := range a.clients {
		c.SetTotalThreads(n)
		a.lastCmd[i] = ""
	}
	a.commands++
}

// Decisions returns the number of decision rounds taken.
func (a *Agent) Decisions() uint64 { return a.decisions }

// Commands returns the number of commands applied (deduplicated).
func (a *Agent) Commands() uint64 { return a.commands }

// Errors returns the number of failed command applications.
func (a *Agent) Errors() uint64 { return a.errors }

// LoadSeries returns the recorded per-client CPU-load history.
func (a *Agent) LoadSeries(client int) *metrics.Series { return a.loadSeries[client] }

// RateSeries returns the recorded per-client task-rate history.
func (a *Agent) RateSeries(client int) *metrics.Series { return a.rateSeries[client] }
