package agent

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/roofline"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

func newSim(m *machine.Machine) (*des.Engine, *osched.OS) {
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	return eng, o
}

func feed(rt *taskrt.Runtime, n int, gflop, ai float64) {
	var one func()
	one = func() {
		t := rt.NewTask("t", gflop, ai, nil)
		t.OnComplete = one
		rt.Submit(t)
	}
	for i := 0; i < n; i++ {
		one()
	}
}

func TestFairShareEliminatesOversubscription(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	// Two applications, both starting with a full set of 32 workers
	// (the paper's over-subscribed default).
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNode})
	b := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNode})
	feed(a, 64, 0.01, 0)
	feed(b, 64, 0.01, 0)

	ag := New(o, Config{Period: 5 * des.Millisecond}, FairShare{}, a, b)
	ag.Start()
	eng.RunUntil(1)

	sa, sb := a.Stats(), b.Stats()
	if sa.Suspended != 16 || sb.Suspended != 16 {
		t.Errorf("suspended = %d/%d, want 16/16", sa.Suspended, sb.Suspended)
	}
	// Total running threads equals the core count: no over-subscription.
	if running := sa.Running + sa.Idle + sb.Running + sb.Idle; running > 32 {
		t.Errorf("active threads = %d, want <= 32", running)
	}
	if ag.Decisions() == 0 || ag.Commands() == 0 {
		t.Error("agent made no decisions/commands")
	}
	// Command deduplication: fair share is stable, so far fewer
	// commands than decisions.
	if ag.Commands() > 4 {
		t.Errorf("commands = %d, want few (deduplicated)", ag.Commands())
	}
}

func TestFairSharePerNode(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNode})
	b := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNode})
	feed(a, 64, 0.01, 0.5)
	feed(b, 64, 0.01, 0.5)
	ag := New(o, Config{Period: 5 * des.Millisecond}, FairShare{PerNode: true}, a, b)
	ag.Start()
	eng.RunUntil(0.5)
	if sa := a.Stats(); sa.Suspended != 16 {
		t.Errorf("a suspended = %d, want 16", sa.Suspended)
	}
	if ag.Errors() != 0 {
		t.Errorf("errors = %d, want 0", ag.Errors())
	}
}

func TestLoadReporting(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindCore, Workers: 8})
	feed(a, 16, 0.01, 0)
	ag := New(o, Config{Period: 10 * des.Millisecond}, Static{}, a)
	ag.Start()
	eng.RunUntil(0.5)
	s := ag.LoadSeries(0)
	if s.Len() == 0 {
		t.Fatal("no load samples")
	}
	// 8 busy workers -> load ~8 cores.
	if st := s.Stats(); math.Abs(st.Mean-8) > 0.5 {
		t.Errorf("mean load = %.2f, want ~8", st.Mean)
	}
	if ag.RateSeries(0).Stats().Mean <= 0 {
		t.Error("task rate should be positive")
	}
}

func TestAlignKeepsLeadBounded(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	prod := taskrt.New(o, taskrt.Config{Name: "producer", BindMode: taskrt.BindNode})
	cons := taskrt.New(o, taskrt.Config{Name: "consumer", BindMode: taskrt.BindNode})
	p := &workload.Pipeline{
		Producer: prod, Consumer: cons,
		TasksPerIter:      16,
		ProducerTaskGFlop: 0.01, // producer is 4x lighter: races ahead
		ConsumerTaskGFlop: 0.04,
		Iterations:        200,
		ItemSizeGB:        1,
	}
	pol := &Align{Pipeline: p, ProducerClient: 0, ConsumerClient: 1, MinLead: 1, MaxLead: 4}
	ag := New(o, Config{Period: 5 * des.Millisecond}, pol, prod, cons)
	ag.Start()
	var done bool
	p.Start(func() { done = true })
	eng.RunUntil(30)
	if !done {
		t.Fatalf("pipeline did not finish: produced %d consumed %d", p.ProducedIterations(), p.ConsumedIterations())
	}
	// The initial transient builds some queue before the policy bites;
	// afterwards the lead stays within the band. 200 uncoordinated
	// iterations would reach depth > 100.
	if p.MaxQueueDepth() > 16 {
		t.Errorf("max queue depth = %d, want bounded (<=16)", p.MaxQueueDepth())
	}
}

func TestAlignReducesIntermediateData(t *testing.T) {
	// The paper's observed benefit: with the agent the intermediate
	// data stays small versus the uncoordinated run.
	run := func(withAgent bool) float64 {
		m := machine.PaperModel()
		eng, o := newSim(m)
		prod := taskrt.New(o, taskrt.Config{Name: "producer", BindMode: taskrt.BindNode})
		cons := taskrt.New(o, taskrt.Config{Name: "consumer", BindMode: taskrt.BindNode})
		p := &workload.Pipeline{
			Producer: prod, Consumer: cons,
			TasksPerIter:      16,
			ProducerTaskGFlop: 0.01,
			ConsumerTaskGFlop: 0.04,
			Iterations:        150,
			ItemSizeGB:        1,
		}
		if withAgent {
			pol := &Align{Pipeline: p, ProducerClient: 0, ConsumerClient: 1, MinLead: 1, MaxLead: 4}
			New(o, Config{Period: 5 * des.Millisecond}, pol, prod, cons).Start()
		}
		p.Start(nil)
		eng.RunUntil(30)
		return p.MeanQueueDepth()
	}
	coordinated := run(true)
	free := run(false)
	if coordinated >= free {
		t.Errorf("agent should reduce intermediate data: coordinated %.1f vs free %.1f", coordinated, free)
	}
}

func TestRooflineOptimalPolicy(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	// Three memory-bound apps and one compute-bound app, node-bound
	// workers, continuously fed.
	specs := []AppSpec{{AI: 0.5}, {AI: 0.5}, {AI: 0.5}, {AI: 10}}
	var rts []*taskrt.Runtime
	var clients []Client
	for i, s := range specs {
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindNode})
		feed(rt, 128, 0.02, s.AI)
		rts = append(rts, rt)
		clients = append(clients, rt)
		_ = i
	}
	pol := &RooflineOptimal{Specs: specs}
	ag := New(o, Config{Period: 10 * des.Millisecond}, pol, clients...)
	ag.Start()
	eng.RunUntil(2)

	// The compute-bound app should have received most threads per node
	// (Table I shape: 1,1,1,5).
	comp := rts[3].Stats()
	mem := rts[0].Stats()
	activeComp := comp.Workers - comp.Suspended
	activeMem := mem.Workers - mem.Suspended
	if activeComp <= activeMem {
		t.Errorf("compute-bound active=%d should exceed memory-bound active=%d", activeComp, activeMem)
	}
	// Aggregate throughput should approach the model's 254 GFLOPS
	// optimum (generously: above the even allocation's 140).
	total := 0.0
	for _, rt := range rts {
		total += rt.Stats().GFlopDone
	}
	total /= 2 // per second (2 s window)
	if total < 200 {
		t.Errorf("aggregate throughput %.1f GFLOPS, want > 200 (even split would give 140)", total)
	}
}

func TestBoostAndRestore(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNode})
	b := taskrt.New(o, taskrt.Config{Name: "b", BindMode: taskrt.BindNode})
	feed(a, 64, 0.01, 0)
	feed(b, 64, 0.01, 0)
	ag := New(o, Config{}, Static{}, a, b)
	eng.RunUntil(0.1)
	ag.Boost(1)
	eng.RunUntil(0.2)
	if sa := a.Stats(); sa.Suspended != 32 {
		t.Errorf("boosted-away client suspended = %d, want 32", sa.Suspended)
	}
	if sb := b.Stats(); sb.Suspended != 0 {
		t.Errorf("boosted client suspended = %d, want 0", sb.Suspended)
	}
	ag.Restore()
	eng.RunUntil(0.3)
	if sa, sb := a.Stats(), b.Stats(); sa.Suspended != 16 || sb.Suspended != 16 {
		t.Errorf("after restore suspended = %d/%d, want 16/16", sa.Suspended, sb.Suspended)
	}
}

func TestDecisionCostOccupiesCore(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindCore, Workers: 1})
	// Heavy decision cost: 0.05 GFlop per 10 ms period = 5 ms of a
	// 10 GFLOPS core every period -> ~0.5 cores of load.
	ag := New(o, Config{Period: 10 * des.Millisecond, DecisionGFlop: 0.05}, Static{}, a)
	ag.Start()
	eng.RunUntil(1)
	var agentProc *osched.Process
	for _, p := range o.Processes() {
		if p.Name() == "agent" {
			agentProc = p
		}
	}
	if agentProc == nil {
		t.Fatal("agent process not created")
	}
	if busy := agentProc.BusySeconds(); busy < 0.3 || busy > 0.7 {
		t.Errorf("agent busy = %.3f s, want ~0.5", busy)
	}
}

func TestAgentErrors(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	// Unbound workers reject SetNodeThreads: the agent must surface it.
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindNone})
	var got error
	ag := New(o, Config{Period: 5 * des.Millisecond, OnError: func(err error) { got = err }},
		FairShare{PerNode: true}, a)
	ag.Start()
	eng.RunUntil(0.1)
	if ag.Errors() == 0 || got == nil {
		t.Error("expected SetNodeThreads errors to be reported")
	}
}

func TestAgentValidation(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	a := taskrt.New(o, taskrt.Config{Name: "a"})
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("nil policy", func() { New(o, Config{}, nil, a) })
	expectPanic("no clients", func() { New(o, Config{}, Static{}) })
}

func TestBadCommands(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	a := taskrt.New(o, taskrt.Config{Name: "a"})
	bad := policyFunc(func(des.Time, *machine.Machine, []Info) []Command {
		return []Command{{Client: 7}, {Client: 0}} // unknown client; empty command
	})
	ag := New(o, Config{Period: 5 * des.Millisecond}, bad, a)
	ag.Start()
	eng.RunUntil(0.02)
	if ag.Errors() < 2 {
		t.Errorf("errors = %d, want >= 2", ag.Errors())
	}
}

// policyFunc adapts a function to Policy for tests.
type policyFunc func(des.Time, *machine.Machine, []Info) []Command

func (policyFunc) Name() string { return "test" }
func (f policyFunc) Decide(now des.Time, m *machine.Machine, infos []Info) []Command {
	return f(now, m, infos)
}

func TestStopHaltsDecisions(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	a := taskrt.New(o, taskrt.Config{Name: "a"})
	ag := New(o, Config{Period: 5 * des.Millisecond}, Static{}, a)
	ag.Start()
	ag.Start() // idempotent
	eng.RunUntil(0.1)
	n := ag.Decisions()
	ag.Stop()
	ag.Stop() // idempotent
	eng.RunUntil(0.2)
	if ag.Decisions() != n {
		t.Error("decisions after Stop")
	}
}

func TestPolicyNames(t *testing.T) {
	if (FairShare{}).Name() == "" || (&Align{}).Name() == "" || (&RooflineOptimal{}).Name() == "" || (Static{}).Name() == "" {
		t.Error("policies must have names")
	}
}

func TestRooflineOptimalMatchesTableI(t *testing.T) {
	// The policy's precomputed counts should equal the exhaustive
	// optimum from the roofline package (1,1,1,5 shape).
	m := machine.PaperModel()
	apps := []roofline.App{{AI: 0.5}, {AI: 0.5}, {AI: 0.5}, {AI: 10}}
	counts, _, res, err := roofline.BestPerNodeCounts(m, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGFLOPS < 254-1e-9 {
		t.Errorf("optimum %.1f < 254", res.TotalGFLOPS)
	}
	if counts[3] < counts[0] {
		t.Errorf("counts %v should favor compute-bound", counts)
	}
}

func TestInfoRates(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	a := taskrt.New(o, taskrt.Config{Name: "a", BindMode: taskrt.BindCore, Workers: 4})
	feed(a, 8, 0.01, 0.5)
	var last Info
	probe := policyFunc(func(_ des.Time, _ *machine.Machine, infos []Info) []Command {
		last = infos[0]
		return nil
	})
	New(o, Config{Period: 10 * des.Millisecond}, probe, a).Start()
	eng.RunUntil(1)
	// 4 threads on node 0 at AI=0.5 demand 80 GB/s of the node's 32:
	// they saturate it -> 32 GB/s moved, 16 GFLOPS computed.
	if math.Abs(last.GFlopRate-16) > 1.5 {
		t.Errorf("GFlopRate = %.2f, want ~16", last.GFlopRate)
	}
	if math.Abs(last.GBRate-32) > 3 {
		t.Errorf("GBRate = %.2f, want ~32", last.GBRate)
	}
	if ai := last.GFlopRate / last.GBRate; math.Abs(ai-0.5) > 0.02 {
		t.Errorf("online AI estimate = %.3f, want 0.5", ai)
	}
}

func TestAdaptiveRooflineConvergesToTableI(t *testing.T) {
	// Like TestRooflineOptimalPolicy, but the policy is never told the
	// applications' arithmetic intensities: it estimates them online.
	m := machine.PaperModel()
	eng, o := newSim(m)
	ais := []float64{0.5, 0.5, 0.5, 10}
	var rts []*taskrt.Runtime
	var clients []Client
	for _, ai := range ais {
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindNode})
		feed(rt, 128, 0.02, ai)
		rts = append(rts, rt)
		clients = append(clients, rt)
	}
	pol := &AdaptiveRoofline{Warmup: 5}
	ag := New(o, Config{Period: 10 * des.Millisecond}, pol, clients...)
	ag.Start()
	eng.RunUntil(2)

	est := pol.EstimatedAI()
	if len(est) != 4 {
		t.Fatalf("no AI estimates: %v", est)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(est[i]-0.5) > 0.1 {
			t.Errorf("estimated AI[%d] = %.3f, want ~0.5", i, est[i])
		}
	}
	if math.Abs(est[3]-10) > 2 {
		t.Errorf("estimated AI[3] = %.3f, want ~10", est[3])
	}
	// Allocation quality: well above the even split's 140 GFLOPS.
	total := 0.0
	for _, rt := range rts {
		total += rt.Stats().GFlopDone
	}
	total /= 2
	if total < 190 {
		t.Errorf("adaptive aggregate = %.1f GFLOPS, want > 190", total)
	}
}

func TestAdaptiveRooflineName(t *testing.T) {
	if (&AdaptiveRoofline{}).Name() == "" {
		t.Error("policy needs a name")
	}
}
