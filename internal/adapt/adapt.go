// Package adapt closes the model↔measurement loop of the control plane:
// instead of trusting the (AI, peak) an application declared at
// registration forever, it ingests the application's observed throughput
// samples, fits an effective demand model online, and decides when the
// fitted model has drifted far enough from the declaration that the
// solver should be re-run on measured reality.
//
// The paper's agent architecture (Fig. 1) already monitors task
// throughput and adapts thread counts each period; this package lifts
// the same feedback to the demand-model level, and lifts the Section
// III.B calibration ("estimate the parameters of the machine from the
// measured performance of the application") from a one-shot offline fit
// to a streaming one. Three cooperating pieces:
//
//   - Telemetry ingest: per-application ring buffers of observed
//     (GFLOPS, GB/s, threads) samples, aggregated into fixed-size
//     windows (a window is the fitting unit; single samples are too
//     noisy to act on).
//   - Online recalibration: exponentially weighted fits of the
//     effective arithmetic intensity (window GFLOPS / window GB/s) and
//     the per-thread peak compute rate, with a confidence score that
//     grows while windows agree with the fit and collapses when a
//     CUSUM-style test detects a phase change (the application's
//     behaviour jumped, so history is evidence about the *old* phase).
//   - Drift detection: a relative-error threshold with hysteresis
//     compares the fitted AI against the declared one. Entry into the
//     drifted state needs ConfirmWindows consecutive windows above
//     DriftThreshold; exit needs ConfirmWindows consecutive windows
//     below ExitRatio×DriftThreshold. Observed throughput flapping
//     around the threshold therefore never oscillates the solver.
//
// The control plane (ctrlplane) feeds this store from POST /v1/report,
// and on a confirmed drift substitutes the fitted AI into the
// application's demand key — which changes the solver cache key and so
// triggers a re-solve — while the fleet rebalancer consumes the drift
// flag for bounded re-placement.
package adapt

// Sample is one observed throughput measurement reported by an
// application (or by the simulated runtimes in internal/taskrt +
// internal/memsim, which produce exactly these rates).
type Sample struct {
	// GFLOPS is the observed compute rate over the sampling interval.
	GFLOPS float64 `json:"gflops"`
	// GBps is the observed memory traffic rate; GFLOPS/GBps is the
	// observed arithmetic intensity. Samples with GBps <= 0 are kept in
	// the telemetry ring but excluded from fitting.
	GBps float64 `json:"gbps"`
	// Threads is the thread count the rates were observed under (0:
	// unknown; the per-thread peak fit skips the sample).
	Threads int `json:"threads,omitempty"`
}

// Config tunes the adaptive loop. The zero value selects the defaults
// noted on each field.
type Config struct {
	// RingSize is the per-application telemetry ring capacity
	// (default 64 samples).
	RingSize int
	// Window is the number of usable samples aggregated into one
	// fitting window (default 4).
	Window int
	// Alpha is the exponential weight of a new window in the fit and
	// the confidence growth rate (default 0.3).
	Alpha float64
	// DriftThreshold is the relative fitted-vs-declared AI error above
	// which a window votes "drifted" (default 0.25).
	DriftThreshold float64
	// ExitRatio scales DriftThreshold for leaving the drifted state:
	// exit requires the error below ExitRatio×DriftThreshold, so entry
	// and exit bands never touch (default 0.5).
	ExitRatio float64
	// ConfirmWindows is the hysteresis depth: consecutive windows
	// needed to confirm entry into — and separately, exit from — the
	// drifted state (default 3).
	ConfirmWindows int
	// PhaseSlack is the CUSUM slack k: per-window relative deviation
	// from the current fit that is absorbed as noise (default 0.1).
	PhaseSlack float64
	// PhaseTrip is the CUSUM decision threshold h: accumulated slack-
	// adjusted deviation that declares a phase change, collapsing
	// confidence and re-anchoring the fit (default 1.0).
	PhaseTrip float64
	// MinConfidence gates publication: a fitted model is only
	// substituted into the solver once its confidence reaches this
	// (default 0.5).
	MinConfidence float64
	// RefitDelta is the minimum relative change of the fitted AI against
	// the currently applied one before a fresh substitution is published
	// — the guard that keeps a drifted app from churning the solver
	// cache key on every report (default 0.05).
	RefitDelta float64
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.25
	}
	if c.ExitRatio <= 0 || c.ExitRatio >= 1 {
		c.ExitRatio = 0.5
	}
	if c.ConfirmWindows <= 0 {
		c.ConfirmWindows = 3
	}
	if c.PhaseSlack <= 0 {
		c.PhaseSlack = 0.1
	}
	if c.PhaseTrip <= 0 {
		c.PhaseTrip = 1.0
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.5
	}
	if c.RefitDelta <= 0 {
		c.RefitDelta = 0.05
	}
	return c
}

// State is the drift detector's hysteresis state for one application.
type State int

const (
	// Steady: the fitted model agrees with the declaration.
	Steady State = iota
	// Suspect: recent windows exceed the threshold but drift is not yet
	// confirmed.
	Suspect
	// Drifted: confirmed — the fitted model replaces the declared one.
	Drifted
)

// String returns the wire name ("steady", "suspect", "drifted").
func (s State) String() string {
	switch s {
	case Suspect:
		return "suspect"
	case Drifted:
		return "drifted"
	default:
		return "steady"
	}
}

// Action tells the control plane how to react to a report.
type Action int

const (
	// ActionNone: keep serving the current model.
	ActionNone Action = iota
	// ActionSet: substitute (or refresh) the fitted model in the
	// registry — the demand key changes and the next solve is fresh.
	ActionSet
	// ActionClear: drift resolved; return to the declared model.
	ActionClear
)
