package adapt

import (
	"math"
	"sort"
	"sync"
)

// Outcome summarizes one report's effect: the tracker's state after the
// samples, the current fit, and the action the control plane should
// take against the registry.
type Outcome struct {
	State         State
	FittedAI      float64
	PeakPerThread float64
	Confidence    float64
	RelErr        float64
	Action        Action
	// Confirmed / Cleared report whether this report closed a window
	// that confirmed (or resolved) drift.
	Confirmed bool
	Cleared   bool
}

// TrackerView is a read-only snapshot of one tracked application, for
// /v1/drift and coopctl.
type TrackerView struct {
	ID            string
	State         State
	DeclaredAI    float64
	FittedAI      float64
	PeakPerThread float64
	Confidence    float64
	RelErr        float64
	RecentGFLOPS  float64
	RecentGBps    float64
	Samples       uint64
	Windows       uint64
	PhaseChanges  uint64
	// Resolves counts the solver re-solves this application triggered
	// (fitted-model substitutions and clears). A correctly declared
	// steady application stays at 0 forever.
	Resolves uint64
}

// Metrics are the store-wide counters for /metricsz.
type Metrics struct {
	Tracked      int
	Drifted      int
	Samples      uint64
	Windows      uint64
	Confirmed    uint64
	Cleared      uint64
	Refits       uint64
	PhaseChanges uint64
}

// Store is the per-application telemetry and drift-tracking state,
// living beside the control-plane registry. Safe for concurrent use.
type Store struct {
	cfg Config

	mu        sync.Mutex
	apps      map[string]*tracker
	confirmed uint64
	cleared   uint64
	refits    uint64
}

// NewStore builds a store with the given tuning (zero fields default).
func NewStore(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), apps: map[string]*tracker{}}
}

// Config returns the effective (defaulted) configuration.
func (st *Store) Config() Config { return st.cfg }

// Report ingests an application's samples. declaredAI is the AI from
// its registration; appliedAI is the fitted AI currently substituted in
// the registry (0 when the declared model is being served). The
// returned Outcome carries the action the caller must apply.
func (st *Store) Report(id string, declaredAI, appliedAI float64, samples []Sample) Outcome {
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.apps[id]
	if !ok {
		t = newTracker(st.cfg)
		st.apps[id] = t
	}
	for _, s := range samples {
		t.observe(declaredAI, s)
	}
	confirmed, cleared := t.confirmed, t.cleared
	t.confirmed, t.cleared = false, false
	if confirmed {
		st.confirmed++
	}
	if cleared {
		st.cleared++
	}

	out := Outcome{
		State:         t.state,
		FittedAI:      t.fit.AI,
		PeakPerThread: t.fit.PeakPerThread,
		Confidence:    t.fit.Confidence,
		RelErr:        t.lastErr,
		Confirmed:     confirmed,
		Cleared:       cleared,
	}
	switch {
	case cleared && appliedAI > 0:
		// Drift resolved with a confirmed exit: serve the declared model
		// again. (A fresh tracker that has not yet re-confirmed — e.g.
		// right after a leader failover — never clears a model it did
		// not itself confirm, so replicated fits survive restarts.)
		out.Action = ActionClear
		t.resolves++
	case t.state == Drifted && t.fit.Confidence >= st.cfg.MinConfidence:
		// Publish the fitted model — but only when it moved enough from
		// the applied one to be worth a fresh solve.
		if appliedAI <= 0 || math.Abs(t.fit.AI-appliedAI)/appliedAI > st.cfg.RefitDelta {
			out.Action = ActionSet
			t.resolves++
			st.refits++
		}
	}
	return out
}

// Remove drops tracking state for departed applications (deregistered
// or evicted); unknown IDs are ignored.
func (st *Store) Remove(ids ...string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, id := range ids {
		delete(st.apps, id)
	}
}

// viewLocked renders one tracker.
func viewLocked(id string, t *tracker) TrackerView {
	g, b := t.recentRates()
	return TrackerView{
		ID:            id,
		State:         t.state,
		DeclaredAI:    t.declaredAI,
		FittedAI:      t.fit.AI,
		PeakPerThread: t.fit.PeakPerThread,
		Confidence:    t.fit.Confidence,
		RelErr:        t.lastErr,
		RecentGFLOPS:  g,
		RecentGBps:    b,
		Samples:       t.samples,
		Windows:       t.windows,
		PhaseChanges:  t.phaseChanges,
		Resolves:      t.resolves,
	}
}

// View returns one application's tracker snapshot.
func (st *Store) View(id string) (TrackerView, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.apps[id]
	if !ok {
		return TrackerView{}, false
	}
	return viewLocked(id, t), true
}

// Views returns every tracked application, sorted by ID.
func (st *Store) Views() []TrackerView {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]TrackerView, 0, len(st.apps))
	for id, t := range st.apps {
		out = append(out, viewLocked(id, t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Metrics returns the store-wide counters.
func (st *Store) Metrics() Metrics {
	st.mu.Lock()
	defer st.mu.Unlock()
	m := Metrics{Tracked: len(st.apps), Confirmed: st.confirmed, Cleared: st.cleared, Refits: st.refits}
	for _, t := range st.apps {
		m.Samples += t.samples
		m.Windows += t.windows
		m.PhaseChanges += t.phaseChanges
		if t.state == Drifted {
			m.Drifted++
		}
	}
	return m
}
