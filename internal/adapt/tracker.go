package adapt

import "math"

// Fit is the streaming estimate of one application's effective demand
// model — the online form of calibrate.FitEvenAllocation's outputs.
type Fit struct {
	// AI is the exponentially weighted effective arithmetic intensity
	// (window GFLOPS / window GB/s).
	AI float64
	// PeakPerThread is the exponentially weighted per-thread compute
	// rate (the paper's "0.29 GFLOPS per thread" parameter, fitted from
	// the samples' GFLOPS/threads).
	PeakPerThread float64
	// Confidence in [0, 1] grows while windows agree with the fit and
	// collapses on a detected phase change.
	Confidence float64
	// Anchored reports whether at least one window has been fitted.
	Anchored bool
}

// tracker is the per-application adaptive state: telemetry ring, window
// accumulator, streaming fit, CUSUM phase test, and the hysteresis
// state machine. Not safe for concurrent use — the Store serializes.
type tracker struct {
	cfg Config

	// Telemetry ring of the most recent samples (diagnostics and
	// windowed rate views; the fit consumes the window accumulator).
	ring    []Sample
	ringLen int
	ringPos int

	// Current window accumulation (usable samples only).
	winN    int
	winG    float64 // summed GFLOPS
	winB    float64 // summed GB/s
	winPeak float64 // max per-thread GFLOPS seen in the window

	fit Fit
	// One-sided CUSUM accumulators over the relative deviation of each
	// window's observed AI from the current fit.
	gPos, gNeg float64

	state  State
	streak int

	declaredAI float64
	lastErr    float64

	samples      uint64
	windows      uint64
	phaseChanges uint64
	resolves     uint64

	// Transient window-close events, drained by the Store per report.
	confirmed bool
	cleared   bool
}

func newTracker(cfg Config) *tracker {
	return &tracker{cfg: cfg, ring: make([]Sample, 0, cfg.RingSize)}
}

// observe folds one sample into the ring and the current window,
// closing the window (and stepping the detector) when it fills.
func (t *tracker) observe(declaredAI float64, s Sample) {
	t.declaredAI = declaredAI
	t.samples++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.ringPos] = s
	}
	t.ringPos = (t.ringPos + 1) % cap(t.ring)
	t.ringLen = len(t.ring)

	if s.GBps <= 0 || s.GFLOPS <= 0 {
		return // no AI information; telemetry only
	}
	t.winN++
	t.winG += s.GFLOPS
	t.winB += s.GBps
	if s.Threads > 0 {
		if pt := s.GFLOPS / float64(s.Threads); pt > t.winPeak {
			t.winPeak = pt
		}
	}
	if t.winN >= t.cfg.Window {
		t.closeWindow()
	}
}

// closeWindow aggregates the window, updates the streaming fit (with
// the CUSUM phase test), and steps the hysteresis state machine.
func (t *tracker) closeWindow() {
	aiObs := t.winG / t.winB
	peak := t.winPeak
	t.winN, t.winG, t.winB, t.winPeak = 0, 0, 0, 0
	t.windows++

	if !t.fit.Anchored {
		t.fit = Fit{AI: aiObs, PeakPerThread: peak, Confidence: t.cfg.Alpha, Anchored: true}
		t.step()
		return
	}

	// CUSUM over the window's relative deviation from the fit: noise
	// within PhaseSlack is absorbed; a sustained (or large one-shot)
	// shift accumulates past PhaseTrip and declares a phase change.
	dev := (aiObs - t.fit.AI) / t.fit.AI
	t.gPos = math.Max(0, t.gPos+dev-t.cfg.PhaseSlack)
	t.gNeg = math.Max(0, t.gNeg-dev-t.cfg.PhaseSlack)
	if t.gPos > t.cfg.PhaseTrip || t.gNeg > t.cfg.PhaseTrip {
		// The application changed behaviour: history belongs to the old
		// phase. Re-anchor the fit on the new window and collapse the
		// confidence so publication waits for fresh agreement.
		t.phaseChanges++
		t.fit.AI = aiObs
		if peak > 0 {
			t.fit.PeakPerThread = peak
		}
		t.fit.Confidence *= 0.25
		t.gPos, t.gNeg = 0, 0
	} else {
		a := t.cfg.Alpha
		t.fit.AI = (1-a)*t.fit.AI + a*aiObs
		if peak > 0 {
			if t.fit.PeakPerThread <= 0 {
				t.fit.PeakPerThread = peak
			} else {
				t.fit.PeakPerThread = (1-a)*t.fit.PeakPerThread + a*peak
			}
		}
		t.fit.Confidence += a * (1 - t.fit.Confidence)
	}
	t.step()
}

// relErr is the relative error of the fitted AI against the declared
// one — the drift signal.
func (t *tracker) relErr() float64 {
	if t.declaredAI <= 0 || !t.fit.Anchored {
		return 0
	}
	return math.Abs(t.fit.AI-t.declaredAI) / t.declaredAI
}

// step advances the hysteresis state machine on a closed window.
// Entry: ConfirmWindows consecutive windows above DriftThreshold.
// Exit: ConfirmWindows consecutive windows below ExitRatio×threshold.
// The dead band between the two keeps threshold flapping from ever
// oscillating the published model.
func (t *tracker) step() {
	e := t.relErr()
	t.lastErr = e
	switch t.state {
	case Steady:
		if e > t.cfg.DriftThreshold {
			t.state, t.streak = Suspect, 1
			if t.streak >= t.cfg.ConfirmWindows {
				t.state, t.streak = Drifted, 0
				t.confirmed = true
			}
		}
	case Suspect:
		if e > t.cfg.DriftThreshold {
			t.streak++
			if t.streak >= t.cfg.ConfirmWindows {
				t.state, t.streak = Drifted, 0
				t.confirmed = true
			}
		} else {
			t.state, t.streak = Steady, 0
		}
	case Drifted:
		if e < t.cfg.ExitRatio*t.cfg.DriftThreshold {
			t.streak++
			if t.streak >= t.cfg.ConfirmWindows {
				t.state, t.streak = Steady, 0
				t.cleared = true
			}
		} else {
			t.streak = 0
		}
	}
}

// recentRates averages the telemetry ring (all samples, usable or not).
func (t *tracker) recentRates() (gflops, gbps float64) {
	if t.ringLen == 0 {
		return 0, 0
	}
	for i := 0; i < t.ringLen; i++ {
		gflops += t.ring[i].GFLOPS
		gbps += t.ring[i].GBps
	}
	n := float64(t.ringLen)
	return gflops / n, gbps / n
}
