package adapt

import (
	"math"
	"math/rand"
	"testing"
)

// testCfg gives deterministic single-sample windows where the fit
// tracks the latest window exactly (Alpha 1), so hysteresis behaviour
// can be driven by a plain sequence of observed AIs.
func testCfg() Config {
	return Config{
		Window:         1,
		Alpha:          1,
		DriftThreshold: 0.25,
		ExitRatio:      0.5,
		ConfirmWindows: 2,
		MinConfidence:  0.5,
	}
}

// sampleAI builds a usable sample with the given observed AI.
func sampleAI(ai float64) Sample {
	return Sample{GFLOPS: ai * 4, GBps: 4, Threads: 4}
}

func TestFitConvergence(t *testing.T) {
	cfg := Config{Window: 2, Alpha: 0.3}.withDefaults()
	tr := newTracker(cfg)
	// Steady behaviour: AI 10, 2.9 GFLOPS on 10 threads.
	for i := 0; i < 40; i++ {
		tr.observe(10, Sample{GFLOPS: 2.9, GBps: 0.29, Threads: 10})
	}
	if !tr.fit.Anchored {
		t.Fatal("fit never anchored")
	}
	if math.Abs(tr.fit.AI-10) > 1e-9 {
		t.Fatalf("fitted AI = %v, want 10", tr.fit.AI)
	}
	if math.Abs(tr.fit.PeakPerThread-0.29) > 1e-9 {
		t.Fatalf("fitted per-thread peak = %v, want 0.29", tr.fit.PeakPerThread)
	}
	if tr.fit.Confidence < 0.9 {
		t.Fatalf("confidence after 20 agreeing windows = %v, want > 0.9", tr.fit.Confidence)
	}
	if tr.state != Steady {
		t.Fatalf("state = %v for a correctly-declared app, want steady", tr.state)
	}
	if tr.windows != 20 || tr.samples != 40 {
		t.Fatalf("windows/samples = %d/%d, want 20/40", tr.windows, tr.samples)
	}
}

func TestUnusableSamplesAreTelemetryOnly(t *testing.T) {
	tr := newTracker(testCfg().withDefaults())
	tr.observe(1, Sample{GFLOPS: 5, GBps: 0}) // no bandwidth: can't fit AI
	tr.observe(1, Sample{GFLOPS: 0, GBps: 5})
	if tr.fit.Anchored || tr.windows != 0 {
		t.Fatalf("unusable samples closed a window (windows=%d anchored=%v)", tr.windows, tr.fit.Anchored)
	}
	if tr.samples != 2 {
		t.Fatalf("samples = %d, want 2 (ring keeps them)", tr.samples)
	}
	g, b := tr.recentRates()
	if g != 2.5 || b != 2.5 {
		t.Fatalf("recentRates = %v/%v, want 2.5/2.5", g, b)
	}
}

func TestPhaseChangeCollapsesConfidence(t *testing.T) {
	cfg := Config{Window: 1, Alpha: 0.3, PhaseSlack: 0.1, PhaseTrip: 0.5}.withDefaults()
	tr := newTracker(cfg)
	for i := 0; i < 20; i++ {
		tr.observe(0.5, sampleAI(0.5))
	}
	before := tr.fit.Confidence
	if before < 0.9 {
		t.Fatalf("confidence before phase change = %v, want high", before)
	}
	// Behaviour jumps 20x: a clear phase change, not noise.
	tr.observe(0.5, sampleAI(10))
	if tr.phaseChanges != 1 {
		t.Fatalf("phaseChanges = %d, want 1", tr.phaseChanges)
	}
	if tr.fit.Confidence >= before/2 {
		t.Fatalf("confidence did not collapse: %v -> %v", before, tr.fit.Confidence)
	}
	if math.Abs(tr.fit.AI-10) > 1e-9 {
		t.Fatalf("fit did not re-anchor on the new phase: AI = %v", tr.fit.AI)
	}
}

func TestPhaseSlackAbsorbsNoise(t *testing.T) {
	cfg := Config{Window: 1, Alpha: 0.3, PhaseSlack: 0.1, PhaseTrip: 1.0}.withDefaults()
	tr := newTracker(cfg)
	// ±8% alternation stays inside the slack band forever.
	for i := 0; i < 50; i++ {
		ai := 1.08
		if i%2 == 1 {
			ai = 0.92
		}
		tr.observe(1, sampleAI(ai))
	}
	if tr.phaseChanges != 0 {
		t.Fatalf("noise tripped the phase test %d times", tr.phaseChanges)
	}
	if tr.fit.Confidence < 0.9 {
		t.Fatalf("confidence = %v, want high under absorbed noise", tr.fit.Confidence)
	}
}

// TestHysteresisNoOscillation is the satellite coverage: observed
// throughput flapping around the drift threshold must never oscillate
// the detector's published state.
func TestHysteresisNoOscillation(t *testing.T) {
	type result struct {
		state     State
		confirms  int
		clears    int
		suspected bool
	}
	run := func(cfg Config, declared float64, seq []float64) result {
		tr := newTracker(cfg.withDefaults())
		var r result
		for _, ai := range seq {
			tr.observe(declared, sampleAI(ai))
			if tr.confirmed {
				r.confirms++
				tr.confirmed = false
			}
			if tr.cleared {
				r.clears++
				tr.cleared = false
			}
			if tr.state == Suspect {
				r.suspected = true
			}
		}
		r.state = tr.state
		return r
	}

	repeat := func(n int, vals ...float64) []float64 {
		var out []float64
		for i := 0; i < n; i++ {
			out = append(out, vals...)
		}
		return out
	}

	cases := []struct {
		name         string
		declared     float64
		seq          []float64
		wantState    State
		wantConfirms int
		wantClears   int
	}{
		{
			// Error flaps 0.30 / 0.20 across the 0.25 threshold: every
			// above-threshold window is followed by a below-threshold one,
			// so drift is never confirmed.
			name:      "flap-across-entry-threshold",
			declared:  1,
			seq:       repeat(20, 1.30, 1.20),
			wantState: Steady,
		},
		{
			// Confirmed drift, then error flaps 0.20 / 0.05 across the
			// exit band (0.125): exit needs consecutive below-band
			// windows, so the drifted state never clears.
			name:         "flap-across-exit-band",
			declared:     1,
			seq:          append(repeat(3, 2.0), repeat(20, 1.20, 1.05)...),
			wantState:    Drifted,
			wantConfirms: 1,
		},
		{
			// Error sits inside the dead band (0.125..0.25) after a
			// confirmed drift: neither re-confirms nor clears.
			name:         "dead-band-holds-state",
			declared:     1,
			seq:          append(repeat(3, 2.0), repeat(20, 1.2)...),
			wantState:    Drifted,
			wantConfirms: 1,
		},
		{
			// Clean drift then clean return: exactly one confirm and one
			// clear, no extras.
			name:         "clean-drift-and-return",
			declared:     1,
			seq:          append(repeat(4, 2.0), repeat(6, 1.0)...),
			wantState:    Steady,
			wantConfirms: 1,
			wantClears:   1,
		},
		{
			// A single outlier window never confirms drift.
			name:      "single-outlier-ignored",
			declared:  1,
			seq:       []float64{1.0, 1.0, 3.0, 1.0, 1.0},
			wantState: Steady,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := run(testCfg(), tc.declared, tc.seq)
			if r.state != tc.wantState {
				t.Fatalf("final state = %v, want %v", r.state, tc.wantState)
			}
			if r.confirms != tc.wantConfirms {
				t.Fatalf("confirms = %d, want %d", r.confirms, tc.wantConfirms)
			}
			if r.clears != tc.wantClears {
				t.Fatalf("clears = %d, want %d", r.clears, tc.wantClears)
			}
		})
	}
}

// TestHysteresisSeededNoise drives the full Store with reproducible
// noisy samples (seeded, faultinject-style): a mis-declared app must
// still confirm exactly once and publish a fit near truth; a truthful
// app in the same store must never trigger a re-solve.
func TestHysteresisSeededNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	noisy := func(trueAI, gflops float64) Sample {
		g := gflops * (1 + 0.08*(rng.Float64()*2-1))
		b := g / trueAI * (1 + 0.08*(rng.Float64()*2-1))
		return Sample{GFLOPS: g, GBps: b, Threads: 8}
	}

	st := NewStore(Config{Window: 2, Alpha: 0.5, ConfirmWindows: 2, RefitDelta: 0.1})
	var sets, clears int
	appliedAI := 0.0
	for round := 0; round < 20; round++ {
		// "mis" declares AI 0.5 but behaves like AI 10.
		var batch []Sample
		for i := 0; i < 4; i++ {
			batch = append(batch, noisy(10, 2.9))
		}
		out := st.Report("mis", 0.5, appliedAI, batch)
		switch out.Action {
		case ActionSet:
			sets++
			appliedAI = out.FittedAI
		case ActionClear:
			clears++
			appliedAI = 0
		}
		// "good" declares AI 10 and behaves like AI 10.
		var goodBatch []Sample
		for i := 0; i < 4; i++ {
			goodBatch = append(goodBatch, noisy(10, 2.9))
		}
		if g := st.Report("good", 10, 0, goodBatch); g.Action != ActionNone {
			t.Fatalf("round %d: truthful app got action %v", round, g.Action)
		}
	}
	if sets == 0 {
		t.Fatal("mis-declared app never published a fitted model")
	}
	if clears != 0 {
		t.Fatalf("noise cleared a genuinely drifted app %d times", clears)
	}
	// RefitDelta must keep a stable drifted fit from churning re-solves.
	if sets > 3 {
		t.Fatalf("fitted model republished %d times under steady noise, want <= 3", sets)
	}
	if math.Abs(appliedAI-10)/10 > 0.15 {
		t.Fatalf("applied fitted AI = %v, want within 15%% of 10", appliedAI)
	}
	mis, ok := st.View("mis")
	if !ok || mis.State != Drifted {
		t.Fatalf("mis view = %+v ok=%v, want drifted", mis, ok)
	}
	good, ok := st.View("good")
	if !ok || good.State != Steady || good.Resolves != 0 {
		t.Fatalf("good view = %+v ok=%v, want steady with 0 resolves", good, ok)
	}
}

func TestStoreClearReturnsToDeclared(t *testing.T) {
	st := NewStore(Config{Window: 1, Alpha: 0.5, ConfirmWindows: 2, PhaseSlack: 0.1, PhaseTrip: 0.5})
	applied := 0.0
	feed := func(ai float64, rounds int) (sets, clears int) {
		for i := 0; i < rounds; i++ {
			out := st.Report("app", 0.5, applied, []Sample{sampleAI(ai)})
			switch out.Action {
			case ActionSet:
				sets++
				applied = out.FittedAI
			case ActionClear:
				clears++
				applied = 0
			}
		}
		return
	}
	sets, _ := feed(10, 6)
	if sets == 0 || applied == 0 {
		t.Fatalf("drifted model never published (sets=%d applied=%v)", sets, applied)
	}
	// Behaviour returns to the declaration: phase change re-anchors near
	// the declared AI and the detector must clear exactly once.
	_, clears := feed(0.5, 10)
	if clears != 1 {
		t.Fatalf("clears = %d, want exactly 1", clears)
	}
	if applied != 0 {
		t.Fatalf("applied AI = %v after clear, want 0 (declared model)", applied)
	}
	v, _ := st.View("app")
	if v.State != Steady {
		t.Fatalf("state after return = %v, want steady", v.State)
	}
}

func TestStoreFreshTrackerKeepsReplicatedFit(t *testing.T) {
	// After a leader failover the new leader has the fitted model (it is
	// journaled and replicated) but a fresh, unconfirmed tracker. A fresh
	// tracker must never clear a fit it did not itself confirm — it
	// re-confirms from live samples instead.
	st := NewStore(Config{Window: 1, Alpha: 0.5, ConfirmWindows: 2})
	for i := 0; i < 4; i++ {
		out := st.Report("app", 0.5, 10, []Sample{sampleAI(10)})
		if out.Action == ActionClear {
			t.Fatalf("report %d: fresh tracker cleared the replicated fit", i)
		}
	}
	v, _ := st.View("app")
	if v.State != Drifted {
		t.Fatalf("state = %v, want drifted (re-confirmed from samples)", v.State)
	}
}

func TestStoreRemoveAndMetrics(t *testing.T) {
	st := NewStore(Config{Window: 1, ConfirmWindows: 1})
	st.Report("a", 1, 0, []Sample{sampleAI(1)})
	st.Report("b", 1, 0, []Sample{sampleAI(5), sampleAI(5)})
	m := st.Metrics()
	if m.Tracked != 2 || m.Samples != 3 || m.Windows != 3 {
		t.Fatalf("metrics = %+v, want 2 tracked / 3 samples / 3 windows", m)
	}
	if m.Drifted != 1 || m.Confirmed != 1 {
		t.Fatalf("metrics = %+v, want 1 drifted / 1 confirmed", m)
	}
	views := st.Views()
	if len(views) != 2 || views[0].ID != "a" || views[1].ID != "b" {
		t.Fatalf("views = %+v, want sorted [a b]", views)
	}
	st.Remove("a", "missing")
	if m := st.Metrics(); m.Tracked != 1 {
		t.Fatalf("tracked after remove = %d, want 1", m.Tracked)
	}
	if _, ok := st.View("a"); ok {
		t.Fatal("removed app still visible")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.RingSize != 64 || c.Window != 4 || c.ConfirmWindows != 3 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.DriftThreshold != 0.25 || c.ExitRatio != 0.5 || c.MinConfidence != 0.5 {
		t.Fatalf("defaults = %+v", c)
	}
	// Explicit values survive.
	c = Config{DriftThreshold: 0.4, Window: 8}.withDefaults()
	if c.DriftThreshold != 0.4 || c.Window != 8 {
		t.Fatalf("explicit config overridden: %+v", c)
	}
}
