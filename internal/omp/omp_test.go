package omp

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
)

func newSim(m *machine.Machine) (*des.Engine, *osched.OS) {
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	return eng, o
}

func TestParallelForStaticCompletes(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "omp"})
	var doneAt des.Time
	rt.ParallelFor(320, Static, 1, 0.01, 0, func() { doneAt = eng.Now() })
	eng.RunUntil(5)
	if doneAt == 0 {
		t.Fatal("loop never finished")
	}
	// 320 iterations x 0.01 GFlop over 32 threads at 10 GFLOPS:
	// 10 iterations each = 0.1 GFlop = 10 ms.
	if doneAt > 0.02 {
		t.Errorf("static loop took %v, want ~0.011 s", doneAt)
	}
	if math.Abs(rt.Process().GFlopDone()-3.2) > 1e-6 {
		t.Errorf("GFlopDone = %v, want 3.2", rt.Process().GFlopDone())
	}
}

func TestParallelForDynamicCompletes(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "omp"})
	done := 0
	rt.ParallelFor(500, Dynamic, 7, 0.005, 0.5, func() { done++ })
	rt.ParallelFor(100, Dynamic, 1, 0.005, 0.5, func() { done++ }) // queued region
	eng.RunUntil(5)
	if done != 2 {
		t.Fatalf("regions done = %d, want 2", done)
	}
}

// TestStaticVsDynamicUnderThreadLoss is the Section IV point: with half
// the team blocked, a statically-scheduled loop stalls on the blocked
// threads' pre-assigned iterations, while dynamic scheduling lets the
// surviving threads take over.
func TestStaticVsDynamicUnderThreadLoss(t *testing.T) {
	run := func(sched Schedule) des.Time {
		m := machine.PaperModel()
		eng, o := newSim(m)
		rt := New(o, Config{Name: "omp"})
		rt.BlockThreads(16) // an agent took half the threads' cores
		var doneAt des.Time
		rt.ParallelFor(320, sched, 1, 0.01, 0, func() { doneAt = eng.Now() })
		eng.RunUntil(60)
		return doneAt
	}
	staticAt := run(Static)
	dynamicAt := run(Dynamic)
	if staticAt == 0 {
		// Static never finishes: blocked threads own unstarted chunks.
		t.Log("static loop stalls entirely with blocked threads (expected)")
	} else if float64(staticAt) < 1.8*float64(dynamicAt) {
		t.Errorf("static %v should be much slower than dynamic %v", staticAt, dynamicAt)
	}
	if dynamicAt == 0 {
		t.Fatal("dynamic loop must finish")
	}
	// Dynamic on 16 threads: 320 x 0.01 GFlop / 16 = 0.2 GFlop each = 20 ms.
	if dynamicAt > 0.04 {
		t.Errorf("dynamic with 16 threads took %v, want ~0.021 s", dynamicAt)
	}
}

// TestTiedTaskStranding is the paper's tied-task hazard: blocking the
// owner thread of a suspended tied task strands it (unsafe mode).
func TestTiedTaskStranding(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "omp", Threads: 4})
	done := false
	h := rt.SubmitTied(0.01, 0.01, 0, func() { done = true })
	eng.RunUntil(0.1) // phase 1 completes, task suspends
	rt.BlockThreads(4)
	eng.RunUntil(0.2)
	h.Release()
	eng.RunUntil(1)
	if done {
		t.Fatal("stranded task completed?")
	}
	if !h.Stranded() || rt.StrandedTasks() != 1 {
		t.Errorf("stranded=%v count=%d, want true/1", h.Stranded(), rt.StrandedTasks())
	}
}

// TestSafeTiedSuspension is the paper's fix ("solved by not suspending
// tied tasks"): the block on the owner thread is deferred until the
// tied task finishes, and applied afterwards.
func TestSafeTiedSuspension(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "omp", Threads: 4, SafeTiedSuspension: true})
	done := false
	h := rt.SubmitTied(0.01, 0.01, 0, func() { done = true })
	eng.RunUntil(0.1)
	rt.BlockThreads(4)
	eng.RunUntil(0.2)
	h.Release()
	eng.RunUntil(1)
	if !done {
		t.Fatal("tied task did not complete in safe mode")
	}
	if rt.StrandedTasks() != 0 {
		t.Errorf("stranded = %d, want 0", rt.StrandedTasks())
	}
	if rt.CompletedTasks() != 1 {
		t.Errorf("completed = %d, want 1", rt.CompletedTasks())
	}
	// The deferred block eventually applied: a new loop makes no
	// progress on the blocked team.
	progressed := false
	rt.ParallelFor(4, Dynamic, 1, 0.01, 0, func() { progressed = true })
	eng.RunUntil(2)
	if progressed {
		t.Error("blocked team should not run new regions")
	}
	rt.UnblockThreads()
	eng.RunUntil(3)
	if !progressed {
		t.Error("unblocked team should finish the region")
	}
}

func TestReleaseBeforePhase1Ends(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "omp", Threads: 2})
	done := false
	h := rt.SubmitTied(0.5, 0.01, 0, func() { done = true }) // phase 1: 50 ms
	h.Release()                                              // released immediately
	eng.RunUntil(1)
	if !done {
		t.Error("early-released tied task should run straight through")
	}
}

func TestUnblockRestoresLoops(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "omp"})
	rt.BlockThreads(32)
	var doneAt des.Time
	rt.ParallelFor(32, Dynamic, 1, 0.01, 0, func() { doneAt = eng.Now() })
	eng.RunUntil(0.5)
	if doneAt != 0 {
		t.Fatal("fully blocked team made progress")
	}
	rt.UnblockThreads()
	eng.RunUntil(1)
	if doneAt == 0 {
		t.Fatal("loop did not finish after unblock")
	}
}

func TestValidationAndAccessors(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "omp", Threads: 6})
	if rt.Threads() != 6 {
		t.Errorf("Threads = %d", rt.Threads())
	}
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Error("schedule names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad loop")
		}
	}()
	rt.ParallelFor(0, Static, 1, 1, 0, nil)
}
