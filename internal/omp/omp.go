// Package omp models an OpenMP-like runtime on the simulated OS, for
// the paper's Section II/IV discussion of codes that are harder to
// govern with dynamic core allocation than task-based runtimes:
//
//   - parallel-for loops with *static* scheduling assume all threads
//     progress at the same rate; slowing some threads (because an agent
//     gave their cores away) stalls the whole loop at its barrier,
//     while *dynamic* scheduling redistributes iterations;
//   - *tied* tasks must resume on the thread that started them
//     (OpenMP's default), so blocking that thread would strand the
//     task forever — "this could be solved by not suspending tied
//     tasks", which the runtime implements as its safe mode.
package omp

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/osched"
)

// Schedule selects the parallel-for iteration scheduling.
type Schedule int

const (
	// Static pre-assigns equal contiguous iteration blocks per thread
	// (OpenMP schedule(static)).
	Static Schedule = iota
	// Dynamic hands out chunks from a shared counter on demand
	// (OpenMP schedule(dynamic, chunk)).
	Dynamic
)

// String names the schedule.
func (s Schedule) String() string {
	if s == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Config configures the runtime.
type Config struct {
	// Name labels the OS process.
	Name string
	// Threads is the team size; 0 means one per core.
	Threads int
	// SafeTiedSuspension defers thread-blocking requests on threads
	// hosting a suspended tied task until the task finishes — the
	// paper's proposed fix. When false, blocking such a thread strands
	// its tied task (detectable via StrandedTasks).
	SafeTiedSuspension bool
}

// loopWork is one active parallel-for region.
type loopWork struct {
	sched     Schedule
	chunk     int
	gflop     float64
	ai        float64
	n         int
	next      int   // dynamic: shared counter
	remaining int   // iterations not yet completed
	static    []int // static: next iteration per thread
	staticEnd []int // static: end bound per thread
	onDone    func()
}

// tiedTask is a two-phase task tied to its starting thread.
type tiedTask struct {
	id       int
	phase1   float64
	phase2   float64
	ai       float64
	owner    int // thread index after phase 1
	resumed  bool
	stranded bool
	done     bool
	onDone   func()
}

// Runtime is the OpenMP-like runtime instance.
type Runtime struct {
	os   *osched.OS
	cfg  Config
	proc *osched.Process

	threads []*ompThread
	loops   []*loopWork // FIFO of regions (one active at a time)

	tiedQueue      []*tiedTask // tasks waiting for phase 1
	resume         [][]*tiedTask
	suspendedIndex map[int][]*tiedTask // suspended tied tasks by owner
	stranded       int
	completed      uint64
}

type ompThread struct {
	rt      *Runtime
	idx     int
	thread  *osched.Thread
	blocked bool // external control wants this thread parked
	pending bool // block deferred by safe tied suspension
	hosting int  // suspended tied tasks owned by this thread
	idle    bool
}

// New creates the runtime with its thread team (threads pinned to
// nodes round-robin like a typical OMP_PLACES=sockets setup).
func New(os *osched.OS, cfg Config) *Runtime {
	m := os.Machine()
	if cfg.Threads <= 0 {
		cfg.Threads = m.TotalCores()
	}
	rt := &Runtime{
		os:     os,
		cfg:    cfg,
		proc:   os.NewProcess(cfg.Name),
		resume: make([][]*tiedTask, cfg.Threads),
	}
	for i := 0; i < cfg.Threads; i++ {
		t := &ompThread{rt: rt, idx: i}
		node := machine.NodeID(i % m.NumNodes())
		t.thread = rt.proc.NewThread(fmt.Sprintf("%s-omp%d", cfg.Name, i), t, osched.NodeCores(m, node))
		rt.threads = append(rt.threads, t)
	}
	return rt
}

// Threads returns the team size.
func (rt *Runtime) Threads() int { return len(rt.threads) }

// Process exposes the OS process.
func (rt *Runtime) Process() *osched.Process { return rt.proc }

// StrandedTasks counts tied tasks whose owner thread was blocked while
// they were suspended (only in unsafe mode).
func (rt *Runtime) StrandedTasks() int { return rt.stranded }

// CompletedTasks counts finished tied tasks.
func (rt *Runtime) CompletedTasks() uint64 { return rt.completed }

// ParallelFor runs n iterations of gflop/ai work across the team with
// the given schedule (chunk used for Dynamic; <=0 means 1). onDone may
// be nil. Regions queue FIFO.
func (rt *Runtime) ParallelFor(n int, sched Schedule, chunk int, gflop, ai float64, onDone func()) {
	if n <= 0 {
		panic("omp: ParallelFor needs positive iteration count")
	}
	if chunk <= 0 {
		chunk = 1
	}
	lw := &loopWork{
		sched: sched, chunk: chunk, gflop: gflop, ai: ai,
		n: n, remaining: n, onDone: onDone,
	}
	if sched == Static {
		T := len(rt.threads)
		lw.static = make([]int, T)
		lw.staticEnd = make([]int, T)
		for t := 0; t < T; t++ {
			lw.static[t] = t * n / T
			lw.staticEnd[t] = (t + 1) * n / T
		}
	}
	rt.loops = append(rt.loops, lw)
	rt.wakeAll()
}

// SubmitTied submits a two-phase tied task: phase 1 runs anywhere,
// then the task suspends (a taskwait-like scheduling point) until
// Release is called on the returned handle; phase 2 must run on the
// same thread that ran phase 1.
func (rt *Runtime) SubmitTied(phase1, phase2, ai float64, onDone func()) *TiedHandle {
	t := &tiedTask{
		id:     len(rt.tiedQueue),
		phase1: phase1, phase2: phase2, ai: ai,
		owner:  -1,
		onDone: onDone,
	}
	rt.tiedQueue = append(rt.tiedQueue, t)
	rt.wakeAll()
	return &TiedHandle{rt: rt, task: t}
}

// TiedHandle releases a suspended tied task's phase 2.
type TiedHandle struct {
	rt   *Runtime
	task *tiedTask
}

// Release makes phase 2 runnable (on the owning thread only).
func (h *TiedHandle) Release() {
	t := h.task
	if t.owner < 0 {
		// Phase 1 not finished yet: mark for immediate resume.
		t.resumed = true
		return
	}
	if t.stranded {
		return
	}
	t.resumed = true
	owner := h.rt.threads[t.owner]
	h.rt.resume[t.owner] = append(h.rt.resume[t.owner], t)
	if !owner.blocked {
		if owner.idle {
			owner.idle = false
			owner.thread.Wake()
		}
	}
}

// Stranded reports whether the task's owner was blocked away.
func (h *TiedHandle) Stranded() bool { return h.task.stranded }

// BlockThreads parks the first n team threads (external thread
// control, like the agent shrinking the application). In unsafe mode,
// threads hosting suspended tied tasks are parked anyway and their
// tasks become stranded; in safe mode the block is deferred until the
// tasks complete.
func (rt *Runtime) BlockThreads(n int) {
	for i := 0; i < n && i < len(rt.threads); i++ {
		t := rt.threads[i]
		if t.hosting > 0 && rt.cfg.SafeTiedSuspension {
			t.pending = true // defer: "not suspending tied tasks"
			continue
		}
		t.blocked = true
		if t.hosting > 0 {
			// Unsafe: every incomplete suspended tied task owned here
			// is stranded — its phase 2 can never run.
			for _, task := range rt.suspendedIndex[t.idx] {
				if !task.done && !task.stranded {
					task.stranded = true
					rt.stranded++
				}
			}
		}
	}
}

// UnblockThreads resumes all externally parked threads.
func (rt *Runtime) UnblockThreads() {
	for _, t := range rt.threads {
		t.blocked = false
		t.pending = false
		if t.idle {
			t.idle = false
		}
		t.thread.Wake()
	}
}

func (rt *Runtime) wakeAll() {
	for _, t := range rt.threads {
		if t.idle && !t.blocked {
			t.idle = false
			t.thread.Wake()
		}
	}
}

// Next implements osched.Runner for a team thread.
func (t *ompThread) Next(*osched.Thread) osched.Work {
	rt := t.rt
	t.idle = false
	if t.blocked {
		return osched.Work{Kind: osched.WorkBlock}
	}
	// 1. Resume a released tied task owned by this thread.
	if q := rt.resume[t.idx]; len(q) > 0 {
		task := q[0]
		rt.resume[t.idx] = q[1:]
		return osched.Work{
			Kind: osched.WorkCompute, GFlop: task.phase2, AI: task.ai,
			MemNode: osched.LocalNode,
			OnDone: func() {
				t.hosting--
				task.done = true
				rt.completed++
				if task.onDone != nil {
					task.onDone()
				}
				rt.maybeApplyDeferredBlock(t)
			},
		}
	}
	// 2. Start a queued tied task's phase 1.
	if len(rt.tiedQueue) > 0 {
		task := rt.tiedQueue[0]
		rt.tiedQueue = rt.tiedQueue[1:]
		return osched.Work{
			Kind: osched.WorkCompute, GFlop: task.phase1, AI: task.ai,
			MemNode: osched.LocalNode,
			OnDone: func() {
				task.owner = t.idx
				t.hosting++
				rt.trackSuspended(t.idx, task)
				if task.resumed {
					// Released before phase 1 ended: resume at once.
					rt.resume[t.idx] = append(rt.resume[t.idx], task)
				}
			},
		}
	}
	// 3. Loop iterations.
	if len(rt.loops) > 0 {
		lw := rt.loops[0]
		if iters, gflop := lw.take(t.idx); iters > 0 {
			return osched.Work{
				Kind: osched.WorkCompute, GFlop: gflop, AI: lw.ai,
				MemNode: osched.LocalNode,
				OnDone: func() {
					lw.remaining -= iters
					if lw.remaining == 0 {
						rt.loops = rt.loops[1:]
						if lw.onDone != nil {
							lw.onDone()
						}
						rt.wakeAll() // next region, if any
					}
				},
			}
		}
		// This thread's share is exhausted (static) or the counter is
		// drained (dynamic); park until the region completes.
	}
	t.idle = true
	return osched.Work{Kind: osched.WorkBlock}
}

// take claims the next batch of iterations for a thread, returning the
// count and total work.
func (lw *loopWork) take(thread int) (int, float64) {
	switch lw.sched {
	case Static:
		if thread >= len(lw.static) {
			return 0, 0
		}
		start, end := lw.static[thread], lw.staticEnd[thread]
		if start >= end {
			return 0, 0
		}
		n := lw.chunk
		if start+n > end {
			n = end - start
		}
		lw.static[thread] = start + n
		return n, float64(n) * lw.gflop
	default:
		if lw.next >= lw.n {
			return 0, 0
		}
		n := lw.chunk
		if lw.next+n > lw.n {
			n = lw.n - lw.next
		}
		lw.next += n
		return n, float64(n) * lw.gflop
	}
}

// maybeApplyDeferredBlock parks the thread if a safe-mode block was
// deferred and no tied work remains on it.
func (rt *Runtime) maybeApplyDeferredBlock(t *ompThread) {
	if t.pending && t.hosting == 0 {
		t.pending = false
		t.blocked = true
	}
}

// trackSuspended records a suspended tied task for strand accounting.
func (rt *Runtime) trackSuspended(owner int, task *tiedTask) {
	if rt.suspendedIndex == nil {
		rt.suspendedIndex = make(map[int][]*tiedTask)
	}
	rt.suspendedIndex[owner] = append(rt.suspendedIndex[owner], task)
}
