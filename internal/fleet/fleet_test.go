package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/machine"
)

// testTTL keeps test apps alive without heartbeats for the whole test.
const testTTL = int64(10 * 60 * 1000)

// newCoopd starts a paper-model coopd over httptest and returns its
// base URL. The server is not Started (no janitor goroutine); reads
// sweep lazily and the long test TTL keeps apps alive regardless.
func newCoopd(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := ctrlplane.NewServer(ctrlplane.ServerConfig{
		Machine:    machine.PaperModel(),
		DefaultTTL: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// fastClients builds an inventory client factory that fails fast (one
// attempt, short timeout) so dead-machine polls do not stall tests.
// rt, when non-nil, wraps the transport (fault injection).
func fastClients(rt http.RoundTripper) func(string) *client.Client {
	return func(endpoint string) *client.Client {
		hc := &http.Client{Timeout: 2 * time.Second}
		if rt != nil {
			hc.Transport = rt
		}
		return client.New(endpoint, client.Config{
			HTTPClient: hc, MaxAttempts: 1, RequestTimeout: 2 * time.Second,
		})
	}
}

// The paper's Table I ingredients: memory-bound (AI 0.5) and
// compute-bound (AI 10) apps, plus a NUMA-bad variant.
func memSpec(name string) AppSpec {
	return AppSpec{Name: name, AI: 0.5, TTLMillis: testTTL}
}

func compSpec(name string) AppSpec {
	return AppSpec{Name: name, AI: 10, TTLMillis: testTTL}
}

func badSpec(name string) AppSpec {
	return AppSpec{Name: name, AI: 0.5, Placement: ctrlplane.PlacementBad, HomeNode: 0, TTLMillis: testTTL}
}

// tableIMixSpecs is the fleet-sized demand: 6 memory-bound + 2
// compute-bound apps, interleaved so placement decisions are exercised
// in a non-trivial order. Greedy marginal scoring lands them as
// {3 mem + 1 comp} on two machines (the Table I mix each) only after a
// machine loss forces a re-pack; initially they spread {mem,comp} /
// {mem,comp} / {4 mem}.
func tableIMixSpecs() []AppSpec {
	return []AppSpec{
		memSpec("mem-1"), memSpec("mem-2"), memSpec("mem-3"),
		compSpec("comp-1"), compSpec("comp-2"),
		memSpec("mem-4"), memSpec("mem-5"), memSpec("mem-6"),
	}
}

// assertTableIRanking asserts a coopd serves the paper's Table I
// numbers for its local demand set: optimal ~254 GFLOPS beating the
// even split ~140 beating node-per-app ~128, strictly ordered.
func assertTableIRanking(t *testing.T, label string, cli *client.Client) {
	t.Helper()
	resp, err := cli.Allocations(context.Background())
	if err != nil {
		t.Fatalf("%s: allocations: %v", label, err)
	}
	if len(resp.Apps) != 4 {
		t.Fatalf("%s: %d apps in allocation, want the Table I mix of 4", label, len(resp.Apps))
	}
	if resp.TotalGFLOPS < 250 || resp.TotalGFLOPS > 260 {
		t.Fatalf("%s: optimal %v GFLOPS, want ~254", label, resp.TotalGFLOPS)
	}
	ref := resp.Reference
	if ref == nil {
		t.Fatalf("%s: no reference allocations", label)
	}
	if ref.EvenGFLOPS < 135 || ref.EvenGFLOPS > 145 {
		t.Fatalf("%s: even split %v GFLOPS, want ~140", label, ref.EvenGFLOPS)
	}
	if ref.NodePerAppGFLOPS < 123 || ref.NodePerAppGFLOPS > 133 {
		t.Fatalf("%s: node-per-app %v GFLOPS, want ~128", label, ref.NodePerAppGFLOPS)
	}
	if !(resp.TotalGFLOPS > ref.EvenGFLOPS && ref.EvenGFLOPS > ref.NodePerAppGFLOPS) {
		t.Fatalf("%s: ranking not strict: optimal %v, even %v, node-per-app %v",
			label, resp.TotalGFLOPS, ref.EvenGFLOPS, ref.NodePerAppGFLOPS)
	}
}

// appsOn returns how many apps machine id hosts according to the
// inventory.
func appsOn(t *testing.T, inv *Inventory, id string) int {
	t.Helper()
	m, ok := inv.Member(id)
	if !ok {
		t.Fatalf("unknown member %s", id)
	}
	return len(m.Apps)
}
