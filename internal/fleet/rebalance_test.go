package fleet

import (
	"context"
	"testing"
)

// twoMachineFleet starts two coopd machines, registers the Table I mix
// (3 mem + 1 comp) entirely on machine a — the worst case a naive
// client fleet produces — and returns a polled inventory plus a
// rebalancer over it.
func twoMachineFleet(t *testing.T, maxMoves int) (*Inventory, *Rebalancer) {
	t.Helper()
	ctx := context.Background()
	a, b := newCoopd(t), newCoopd(t)
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil), FailAfter: 2})
	if err := inv.Add("a", a.URL); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("b", b.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []AppSpec{memSpec("mem-a"), memSpec("mem-b"), memSpec("mem-c"), compSpec("comp")} {
		if _, err := cli.Register(ctx, spec.registerRequest()); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)
	sc := NewScorer()
	reb := &Rebalancer{
		Inv:              inv,
		Placer:           &Placer{Inv: inv, Scorer: sc, Logf: t.Logf},
		Scorer:           sc,
		MaxMovesPerRound: maxMoves,
		Logf:             t.Logf,
	}
	return inv, reb
}

// TestRebalanceClosesImbalanceGap: all four Table I apps piled on one
// machine solve to 254 GFLOPS while the greedy re-pack of the same apps
// over both machines reaches 384 ({comp, mem} at 320 + {mem, mem} at
// 64); the gap exceeds the 0.9 threshold, so the rebalancer moves two
// memory apps over — and the following round finds the fleet inside the
// threshold and leaves it alone (no churn at the fixed point).
func TestRebalanceClosesImbalanceGap(t *testing.T) {
	ctx := context.Background()
	inv, reb := twoMachineFleet(t, 4)

	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !near(plan.CurrentGFLOPS, 254) || !near(plan.RepackGFLOPS, 384) {
		t.Fatalf("current %g / repack %g GFLOPS, want ~254 / ~384",
			plan.CurrentGFLOPS, plan.RepackGFLOPS)
	}
	if len(plan.Moves) != 2 || plan.Deferred != 0 {
		t.Fatalf("planned %d moves (%d deferred), want exactly 2", len(plan.Moves), plan.Deferred)
	}
	for _, mv := range plan.Moves {
		if mv.Reason != ReasonRebalance || mv.From != "a" || mv.To != "b" {
			t.Fatalf("move %+v, want rebalance a -> b", mv)
		}
	}

	inv.Poll(ctx)
	ma, _ := inv.Member("a")
	mb, _ := inv.Member("b")
	if len(ma.Apps) != 2 || len(mb.Apps) != 2 {
		t.Fatalf("apps after rebalance: a=%d b=%d, want 2/2", len(ma.Apps), len(mb.Apps))
	}
	if !near(ma.TotalGFLOPS+mb.TotalGFLOPS, 384) {
		t.Fatalf("aggregate %g after rebalance, want ~384", ma.TotalGFLOPS+mb.TotalGFLOPS)
	}

	again, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Moves) != 0 {
		t.Fatalf("steady state still churns: %+v", again.Moves)
	}
}

// TestRebalanceBoundsMovesPerRound: with the per-round cap at 1, the
// same imbalance is closed one move at a time, reporting the deferred
// remainder.
func TestRebalanceBoundsMovesPerRound(t *testing.T) {
	ctx := context.Background()
	_, reb := twoMachineFleet(t, 1)
	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 || plan.Deferred != 1 {
		t.Fatalf("moves %d / deferred %d, want 1 / 1", len(plan.Moves), plan.Deferred)
	}
}

// TestRebalanceDrainsMarkedMember: draining is urgent — every app on
// the draining member moves off (threshold ignored), targets exclude
// the member, and the moves carry the drain reason.
func TestRebalanceDrainsMarkedMember(t *testing.T) {
	ctx := context.Background()
	inv, reb := twoMachineFleet(t, 4)
	if !inv.SetDraining("a", true) {
		t.Fatal("SetDraining failed")
	}
	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 4 {
		t.Fatalf("planned %d moves, want all 4 apps off the draining member", len(plan.Moves))
	}
	for _, mv := range plan.Moves {
		if mv.Reason != ReasonDrain || mv.From != "a" || mv.To != "b" {
			t.Fatalf("move %+v, want drain a -> b", mv)
		}
	}
	inv.Poll(ctx)
	if n := appsOn(t, inv, "a"); n != 0 {
		t.Fatalf("draining member still hosts %d apps", n)
	}
	if n := appsOn(t, inv, "b"); n != 4 {
		t.Fatalf("survivor hosts %d apps, want 4", n)
	}
	// The drained member receives no new placements while draining.
	pl := reb.Placer
	if d, err := pl.Decide(memSpec("fresh")); err != nil {
		t.Fatal(err)
	} else if d.Member != "b" {
		t.Fatalf("fresh app decided onto draining member %s", d.Member)
	}
}
