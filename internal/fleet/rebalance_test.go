package fleet

import (
	"context"
	"testing"

	"repro/internal/faultinject"
)

// twoMachineFleet starts two coopd machines, registers the Table I mix
// (3 mem + 1 comp) entirely on machine a — the worst case a naive
// client fleet produces — and returns a polled inventory plus a
// rebalancer over it.
func twoMachineFleet(t *testing.T, maxMoves int) (*Inventory, *Rebalancer) {
	t.Helper()
	ctx := context.Background()
	a, b := newCoopd(t), newCoopd(t)
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil), FailAfter: 2})
	if err := inv.Add("a", a.URL); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("b", b.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []AppSpec{memSpec("mem-a"), memSpec("mem-b"), memSpec("mem-c"), compSpec("comp")} {
		if _, err := cli.Register(ctx, spec.registerRequest()); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)
	sc := NewScorer()
	reb := &Rebalancer{
		Inv:              inv,
		Placer:           &Placer{Inv: inv, Scorer: sc, Logf: t.Logf},
		Scorer:           sc,
		MaxMovesPerRound: maxMoves,
		Logf:             t.Logf,
	}
	return inv, reb
}

// TestRebalanceClosesImbalanceGap: all four Table I apps piled on one
// machine solve to 254 GFLOPS while the greedy re-pack of the same apps
// over both machines reaches 384 ({comp, mem} at 320 + {mem, mem} at
// 64); the gap exceeds the 0.9 threshold, so the rebalancer moves two
// memory apps over — and the following round finds the fleet inside the
// threshold and leaves it alone (no churn at the fixed point).
func TestRebalanceClosesImbalanceGap(t *testing.T) {
	ctx := context.Background()
	inv, reb := twoMachineFleet(t, 4)

	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !near(plan.CurrentGFLOPS, 254) || !near(plan.RepackGFLOPS, 384) {
		t.Fatalf("current %g / repack %g GFLOPS, want ~254 / ~384",
			plan.CurrentGFLOPS, plan.RepackGFLOPS)
	}
	if len(plan.Moves) != 2 || plan.Deferred != 0 {
		t.Fatalf("planned %d moves (%d deferred), want exactly 2", len(plan.Moves), plan.Deferred)
	}
	for _, mv := range plan.Moves {
		if mv.Reason != ReasonRebalance || mv.From != "a" || mv.To != "b" {
			t.Fatalf("move %+v, want rebalance a -> b", mv)
		}
	}

	inv.Poll(ctx)
	ma, _ := inv.Member("a")
	mb, _ := inv.Member("b")
	if len(ma.Apps) != 2 || len(mb.Apps) != 2 {
		t.Fatalf("apps after rebalance: a=%d b=%d, want 2/2", len(ma.Apps), len(mb.Apps))
	}
	if !near(ma.TotalGFLOPS+mb.TotalGFLOPS, 384) {
		t.Fatalf("aggregate %g after rebalance, want ~384", ma.TotalGFLOPS+mb.TotalGFLOPS)
	}

	again, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Moves) != 0 {
		t.Fatalf("steady state still churns: %+v", again.Moves)
	}
}

// TestRebalanceBoundsMovesPerRound: with the per-round cap at 1, the
// same imbalance is closed one move at a time, reporting the deferred
// remainder.
func TestRebalanceBoundsMovesPerRound(t *testing.T) {
	ctx := context.Background()
	_, reb := twoMachineFleet(t, 1)
	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 || plan.Deferred != 1 {
		t.Fatalf("moves %d / deferred %d, want 1 / 1", len(plan.Moves), plan.Deferred)
	}
}

// TestRebalanceDrainsMarkedMember: draining is urgent — every app on
// the draining member moves off (threshold ignored), targets exclude
// the member, and the moves carry the drain reason.
func TestRebalanceDrainsMarkedMember(t *testing.T) {
	ctx := context.Background()
	inv, reb := twoMachineFleet(t, 4)
	if err := inv.SetDraining("a", true); err != nil {
		t.Fatalf("SetDraining failed: %v", err)
	}
	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 4 {
		t.Fatalf("planned %d moves, want all 4 apps off the draining member", len(plan.Moves))
	}
	for _, mv := range plan.Moves {
		if mv.Reason != ReasonDrain || mv.From != "a" || mv.To != "b" {
			t.Fatalf("move %+v, want drain a -> b", mv)
		}
	}
	inv.Poll(ctx)
	if n := appsOn(t, inv, "a"); n != 0 {
		t.Fatalf("draining member still hosts %d apps", n)
	}
	if n := appsOn(t, inv, "b"); n != 4 {
		t.Fatalf("survivor hosts %d apps, want 4", n)
	}
	// The drained member receives no new placements while draining.
	pl := reb.Placer
	if d, err := pl.Decide(memSpec("fresh")); err != nil {
		t.Fatal(err)
	} else if d.Member != "b" {
		t.Fatalf("fresh app decided onto draining member %s", d.Member)
	}
}

// TestRebalanceMisconfigDefaults: negative MaxMovesPerRound and
// out-of-range Threshold values are misconfigurations — they fall back
// to the safe defaults and log a warning exactly once, instead of
// silently disabling the churn bound or permanently arming the re-pack.
func TestRebalanceMisconfigDefaults(t *testing.T) {
	var warnings []string
	r := &Rebalancer{
		MaxMovesPerRound: -3,
		Threshold:        1.7,
		Logf: func(format string, args ...any) {
			warnings = append(warnings, format)
		},
	}
	for i := 0; i < 3; i++ {
		if got := r.maxMoves(); got != 4 {
			t.Fatalf("maxMoves() = %d with negative config, want default 4", got)
		}
		if got := r.threshold(); got != 0.9 {
			t.Fatalf("threshold() = %g with out-of-range config, want default 0.9", got)
		}
	}
	if len(warnings) != 2 {
		t.Fatalf("logged %d warnings %q, want exactly one per misconfigured knob", len(warnings), warnings)
	}

	// Zero values are the documented defaults, not misconfigurations:
	// no warning spam from default-constructed rebalancers.
	warnings = nil
	r2 := &Rebalancer{Logf: func(format string, args ...any) {
		warnings = append(warnings, format)
	}}
	if got := r2.maxMoves(); got != 4 {
		t.Fatalf("zero maxMoves() = %d, want 4", got)
	}
	if got := r2.threshold(); got != 0.9 {
		t.Fatalf("zero threshold() = %g, want 0.9", got)
	}
	if len(warnings) != 0 {
		t.Fatalf("zero-value defaults logged warnings: %q", warnings)
	}

	// Negative Threshold also warns (would disable the imbalance pass
	// silently); -1 CooldownRounds disables cooldowns without warning —
	// it is the documented A/B knob.
	r3 := &Rebalancer{Threshold: -0.5, CooldownRounds: -1}
	if got := r3.threshold(); got != 0.9 {
		t.Fatalf("negative threshold() = %g, want default 0.9", got)
	}
	if got := r3.cooldownRounds(); got != 0 {
		t.Fatalf("cooldownRounds() = %d with -1, want 0 (disabled)", got)
	}
	if got := (&Rebalancer{}).cooldownRounds(); got != 2 {
		t.Fatalf("default cooldownRounds() = %d, want 2", got)
	}
}

// TestRebalanceCooldownBlocksRepeatMoves: an app moved by the
// drift/imbalance passes in round k is excluded from those passes for
// rounds k+1..k+CooldownRounds, then becomes movable again. Plan (the
// dry run) must not advance the cooldown clock — only Round does.
func TestRebalanceCooldownBlocksRepeatMoves(t *testing.T) {
	r := &Rebalancer{CooldownRounds: 2}
	r.noteMoved("app")
	r.mu.Lock()
	r.round++ // the move's round completes
	r.mu.Unlock()
	for i := 1; i <= 2; i++ {
		if !r.onCooldown("app") {
			t.Fatalf("round +%d: app escaped its cooldown early", i)
		}
		if cds := r.cooldownView(); cds["app"] != 2-i+1 {
			t.Fatalf("round +%d: cooldownView = %v, want app -> %d", i, cds, 2-i+1)
		}
		r.mu.Lock()
		r.round++
		r.mu.Unlock()
	}
	if r.onCooldown("app") {
		t.Fatal("app still on cooldown after CooldownRounds elapsed")
	}
	if cds := r.cooldownView(); len(cds) != 0 {
		t.Fatalf("expired cooldowns not pruned: %v", cds)
	}

	// Disabled guard: nothing is ever on cooldown.
	off := &Rebalancer{CooldownRounds: -1}
	off.noteMoved("app")
	off.mu.Lock()
	off.round++
	off.mu.Unlock()
	if off.onCooldown("app") {
		t.Fatal("disabled cooldown still blocks moves")
	}
}

// TestRebalanceCooldownDampsImmediateBounce: after the imbalance round
// moves two mem apps a -> b, deregistering one app on b re-opens a gap
// whose greedy re-pack would bounce a just-moved app straight back. The
// cooldown excludes it, so the next round plans no moves for it; once
// the cooldown expires the pass may move it again.
func TestRebalanceCooldownDampsImmediateBounce(t *testing.T) {
	ctx := context.Background()
	inv, reb := twoMachineFleet(t, 4)
	reb.CooldownRounds = 2

	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 2 {
		t.Fatalf("setup round planned %d moves, want 2", len(plan.Moves))
	}
	moved := map[string]bool{}
	for _, mv := range plan.Moves {
		moved[mv.App.Name] = true
	}

	// Perturb: drop the comp app from a so the balance point shifts and
	// a fresh re-pack wants the mem apps consolidated differently.
	ma, _ := inv.Member("a")
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range ma.Apps {
		if app.Name == "comp" {
			if err := cli.Deregister(ctx, app.ID); err != nil {
				t.Fatal(err)
			}
		}
	}

	for round := 0; round < 2; round++ {
		p, err := reb.Round(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, mv := range p.Moves {
			if moved[mv.App.Name] {
				t.Fatalf("round +%d re-moved %s while on cooldown: %+v", round+1, mv.App.Name, mv)
			}
		}
		for name := range moved {
			if _, ok := p.Cooldowns[name]; !ok {
				t.Fatalf("round +%d plan does not report %s cooling down: %v", round+1, name, p.Cooldowns)
			}
		}
	}
}

// TestRebalanceBudgetSharedAcrossPasses: the plan reports the global
// budget and its consumption, and the moves never exceed it even when
// urgent evacuation already claimed part of the round.
func TestRebalanceBudgetSharedAcrossPasses(t *testing.T) {
	ctx := context.Background()
	inv, reb := twoMachineFleet(t, 3)
	if err := inv.SetDraining("a", true); err != nil {
		t.Fatalf("SetDraining failed: %v", err)
	}
	plan, err := reb.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Budget != 3 {
		t.Fatalf("plan budget %d, want 3", plan.Budget)
	}
	if len(plan.Moves) != 3 || plan.Deferred != 1 {
		t.Fatalf("moves %d / deferred %d, want 3 / 1 (4 drain candidates, budget 3)",
			len(plan.Moves), plan.Deferred)
	}
	if plan.BudgetSpent != 3 {
		t.Fatalf("budget spent %d, want 3", plan.BudgetSpent)
	}
}

// stormFleet starts three coopd machines behind a partition fabric:
// a carries three memory-bound apps, b four, c none. Killing a strands
// a third of the fleet's members with un-evacuated apps — exactly one
// over the default 0.25 storm fraction — so the rebalancer's degraded
// mode engages with a small, fully predictable triage.
func stormFleet(t *testing.T) (*Inventory, *faultinject.Partition, []string, *Rebalancer) {
	t.Helper()
	ctx := context.Background()
	part := faultinject.NewPartition()
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(part.Transport(nil)),
		FailAfter: 1,
		Logf:      t.Logf,
	})
	hosts := make([]string, 3)
	for i, id := range []string{"a", "b", "c"} {
		hs := newCoopd(t)
		hosts[i] = hostOf(t, hs.URL)
		if err := inv.Add(id, hs.URL); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)
	register := func(member string, specs ...AppSpec) {
		cli, err := inv.Client(member)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			if _, err := cli.Register(ctx, spec.registerRequest()); err != nil {
				t.Fatal(err)
			}
		}
	}
	register("a", memSpec("s-1"), memSpec("s-2"), memSpec("s-3"))
	register("b", memSpec("t-1"), memSpec("t-2"), memSpec("t-3"), memSpec("t-4"))
	inv.Poll(ctx)
	sc := NewScorer()
	reb := &Rebalancer{
		Inv:              inv,
		Placer:           &Placer{Inv: inv, Scorer: sc, Logf: t.Logf},
		Scorer:           sc,
		MaxMovesPerRound: 2,
		AdmissionCap:     1,
		Logf:             t.Logf,
	}
	return inv, part, hosts, reb
}

// TestRebalanceStormBrakeTriage: when a dies with three apps, degraded
// mode triages the evacuation under the shared round budget and the
// per-survivor admission cap. The highest marginal recovery (the empty
// machine c, +64 GFLOPS) is admitted first; once c hits the cap the
// next evacuation settles for b (marginal 0 on a bandwidth-bound
// machine) instead of piling on; the third is deferred on budget.
// Degraded mode persists until a's backlog drains, then disengages with
// an empty steady-state plan — and the imbalance pass never fires while
// the storm is active.
func TestRebalanceStormBrakeTriage(t *testing.T) {
	ctx := context.Background()
	inv, part, hosts, reb := stormFleet(t)
	part.Isolate(hosts[0])
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Dead {
		t.Fatal("a not dead after the partition")
	}

	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.StormActive {
		t.Fatal("storm brake not engaged with 1/3 members down and apps pending")
	}
	if plan.Budget != 2 || plan.BudgetSpent != 2 || len(plan.Moves) != 2 || plan.Deferred != 1 {
		t.Fatalf("budget %d spent %d, %d moves %d deferred; want 2/2, 2 moves 1 deferred",
			plan.Budget, plan.BudgetSpent, len(plan.Moves), plan.Deferred)
	}
	inbound := map[string]int{}
	for _, mv := range plan.Moves {
		if mv.Reason != ReasonMachineLost || mv.From != "a" {
			t.Fatalf("move %+v, want machine-lost from a", mv)
		}
		inbound[mv.To]++
	}
	if inbound["b"] != 1 || inbound["c"] != 1 {
		t.Fatalf("storm admissions %v, want exactly one per survivor (cap 1)", inbound)
	}
	if mv := plan.Moves[0]; mv.To != "c" || !near(mv.Score, 64) {
		t.Fatalf("first triaged move %+v, want the +64 recovery on empty c", mv)
	}
	if mv := plan.Moves[1]; mv.To != "b" || !near(mv.Score, 0) {
		t.Fatalf("second triaged move %+v, want the marginal-0 fallback on b", mv)
	}

	// Round 2: one app still stranded on a keeps the storm engaged; it
	// lands on c (fewer apps wins the marginal-0 tie).
	plan, err = reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.StormActive || len(plan.Moves) != 1 || plan.Deferred != 0 {
		t.Fatalf("round 2: storm %v, %d moves %d deferred; want active, 1 move",
			plan.StormActive, len(plan.Moves), plan.Deferred)
	}
	if mv := plan.Moves[0]; mv.To != "c" || mv.Reason != ReasonMachineLost {
		t.Fatalf("round 2 move %+v, want machine-lost onto c", mv)
	}

	// Round 3: backlog drained, storm disengages, and the fleet is at
	// the bandwidth-bound optimum — no tail churn.
	plan, err = reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.StormActive {
		t.Fatal("storm still active after the backlog drained")
	}
	if len(plan.Moves) != 0 {
		t.Fatalf("steady state still churns: %+v", plan.Moves)
	}
	if n := appsOn(t, inv, "b"); n != 5 {
		t.Fatalf("b hosts %d apps, want 5", n)
	}
	if n := appsOn(t, inv, "c"); n != 2 {
		t.Fatalf("c hosts %d apps, want 2", n)
	}
}

// TestRebalanceStormBrakeDisabled: the same failure with the brake off
// shows what the triage prevents — the naive urgent pass tie-breaks
// every evacuation onto the emptiest survivor, so c absorbs the whole
// admitted wave while b takes nothing, and only the global budget
// (not admission control) limits the round.
func TestRebalanceStormBrakeDisabled(t *testing.T) {
	ctx := context.Background()
	inv, part, hosts, reb := stormFleet(t)
	reb.DisableStormBrake = true
	part.Isolate(hosts[0])
	inv.Poll(ctx)

	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.StormActive {
		t.Fatal("storm reported active with the brake disabled")
	}
	if len(plan.Moves) != 2 || plan.Deferred != 1 {
		t.Fatalf("%d moves %d deferred, want the global budget to trim 3 to 2",
			len(plan.Moves), plan.Deferred)
	}
	for _, mv := range plan.Moves {
		if mv.To != "c" {
			t.Fatalf("unbraked move %+v, want the herd piled onto c", mv)
		}
	}
	if n := appsOn(t, inv, "c"); n != 2 {
		t.Fatalf("c absorbed %d apps, want 2 (admission cap would have allowed 1)", n)
	}
}
