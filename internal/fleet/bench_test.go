package fleet

import (
	"fmt"
	"testing"

	"repro/internal/machine"
)

// benchMembers builds an n-machine fleet snapshot, every machine the
// paper model with a small resident mix, so each placement decision
// scores the incoming app against n non-trivial demand sets.
func benchMembers(n int) []Member {
	members := make([]Member, n)
	for i := range members {
		id := fmt.Sprintf("m%04d", i)
		members[i] = Member{
			ID:       id,
			Topology: machine.PaperModel(),
			Apps: []PlacedApp{
				{ID: id + "-mem", Name: "mem", AI: 0.5},
				{ID: id + "-comp", Name: "comp", AI: 10},
			},
		}
	}
	return members
}

// benchPlacement measures end-to-end placement throughput: one op is
// candidate construction from the member snapshot plus a full scoring
// decision, i.e. what fleetd does per /v1/fleet/place request (which
// reuses a pooled candidateSet exactly like this loop).
// placements/sec = 1e9 / ns_per_op in BENCH_fleet.json.
func benchPlacement(b *testing.B, nMachines int) {
	members := benchMembers(nMachines)
	sc := NewScorer()
	spec := AppSpec{Name: "incoming", AI: 2}
	var cs candidateSet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := cs.reset(members, true, false)
		if _, _, err := sc.decide(spec, cands); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "placements/s")
}

func BenchmarkPlacement100Machines(b *testing.B) { benchPlacement(b, 100) }

func BenchmarkPlacement1kMachines(b *testing.B) { benchPlacement(b, 1000) }

// BenchmarkPlacement10kMachines is the fleet-scale case the
// equivalence-class memo unlocks: 10k machines collapse into a handful
// of (topology, demand) classes, so a decision is ~10k key builds plus
// one or two solves at most.
func BenchmarkPlacement10kMachines(b *testing.B) { benchPlacement(b, 10000) }

// BenchmarkPlacementGang measures atomic gang planning: one op decides
// a 4-replica spread gang against a 100-machine fleet snapshot —
// candidate construction, four sequential scoring decisions each seeing
// the earlier members' committed demand, and the domain bookkeeping.
// This is the plan phase of PlaceGang (`coopctl fleet place -gang`);
// execution is HTTP registration and is not a scoring cost.
func BenchmarkPlacementGang(b *testing.B) {
	members := benchMembers(100)
	inv := NewInventory(InventoryConfig{})
	for i := range members {
		m := &members[i]
		inv.members[m.ID] = &member{id: m.ID, domain: m.ID, topo: m.Topology, apps: m.Apps}
		inv.order = append(inv.order, m.ID)
	}
	p := &Placer{Inv: inv, Scorer: NewScorer()}
	g := GangSpec{
		Name:     "gang",
		Replicas: 4,
		Policy:   GangSpread,
		App:      AppSpec{Name: "gang", AI: 2, Priority: PriorityLatency},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.planGang(g); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "gangs/s")
}

// BenchmarkPlacementWarm scores against candidates whose baseline
// solves are already cached (the rebalancer's repeated-decision path,
// where one candidate set serves a whole planning round).
func BenchmarkPlacementWarm100Machines(b *testing.B) {
	members := benchMembers(100)
	sc := NewScorer()
	spec := AppSpec{Name: "incoming", AI: 2}
	cands := candidatesFrom(members)
	if _, _, err := sc.decide(spec, cands); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sc.decide(spec, cands); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "placements/s")
}
