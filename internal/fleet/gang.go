package fleet

import (
	"context"
	"fmt"
)

// Gang placement policies: where a gang's replicas may land relative
// to each other.
const (
	// GangPack prefers machines already hosting this gang — replicas
	// co-locate (the paper's cooperating-application mix on one
	// machine), spilling to fresh machines only when the solve rejects
	// the packed bin.
	GangPack = "pack"
	// GangSpread prefers failure domains the gang does not occupy yet,
	// falling back to the least-occupied domain once every domain hosts
	// a member. The default.
	GangSpread = "spread"
	// GangStrictSpread requires a fresh failure domain per member: a
	// gang with more replicas than the fleet has unused domains is
	// rejected whole.
	GangStrictSpread = "strict-spread"
)

// checkGangPolicy validates a wire policy string ("" = spread).
func checkGangPolicy(p string) error {
	switch p {
	case "", GangPack, GangSpread, GangStrictSpread:
		return nil
	}
	return fmt.Errorf("fleet: unknown gang policy %q (want %s, %s, or %s)",
		p, GangPack, GangSpread, GangStrictSpread)
}

// GangSpec asks for N replicas of one app template placed atomically:
// either every member registers, or none do.
type GangSpec struct {
	// Name labels the gang; members are named Name-0 .. Name-(N-1), so
	// they form one cooperating group under groupOf.
	Name string `json:"name"`
	// Replicas is the member count (>= 1).
	Replicas int `json:"replicas"`
	// Policy is one of the Gang* constants ("" = spread).
	Policy string `json:"policy,omitempty"`
	// App is the per-member template; its Name is ignored (derived from
	// the gang's), everything else — AI, placement, priority — applies
	// to every member.
	App AppSpec `json:"app"`
}

func (g GangSpec) policy() string {
	if g.Policy == "" {
		return GangSpread
	}
	return g.Policy
}

// member returns the i-th member's concrete spec.
func (g GangSpec) member(i int) AppSpec {
	spec := g.App
	spec.Name = fmt.Sprintf("%s-%d", g.Name, i)
	return spec
}

func (g GangSpec) validate() error {
	if g.Name == "" {
		return fmt.Errorf("fleet: gang needs a name")
	}
	if g.Replicas < 1 {
		return fmt.Errorf("fleet: gang %s: replicas %d, want >= 1", g.Name, g.Replicas)
	}
	if err := checkGangPolicy(g.Policy); err != nil {
		return err
	}
	_, err := g.member(0).rooflineApp()
	return err
}

// GangPlacement is one admitted gang member.
type GangPlacement struct {
	// App is the registration as recorded fleet-side.
	App PlacedApp `json:"app"`
	// Member is the hosting machine; Score its marginal aggregate at
	// decision time.
	Member string  `json:"member"`
	Score  float64 `json:"score"`
}

// GangResult is a successful atomic admission.
type GangResult struct {
	Name       string          `json:"name"`
	Policy     string          `json:"policy"`
	Placements []GangPlacement `json:"placements"`
	// Preempted lists the lower-class victims moved to make floor room
	// for the gang (executed before the members registered; they are
	// real placements and are not rolled back on gang failure).
	Preempted []Move `json:"preempted,omitempty"`
}

// gangPlan is the decided-but-unregistered form.
type gangPlan struct {
	members []gangMember
	victims []Move
}

type gangMember struct {
	spec   AppSpec
	member string
	score  float64
}

// PlaceGang admits a gang atomically: plan every member against a
// simulated fleet first (committing each decision so later members see
// earlier ones), then execute — preemption victim moves first, then
// member registrations in order. If any member's registration fails,
// every member registered so far is rolled back, so no partial gang
// survives; a rollback deregistration that itself fails is recorded as
// a stale duplicate for the rebalancer's cleanup pass.
//
// Higher-class gangs preempt: when the best bin for a member would
// over-subscribe its floor capacity, the cheapest lower-class apps
// there are re-homed (see planEvictions) before the member lands.
func (p *Placer) PlaceGang(ctx context.Context, g GangSpec) (*GangResult, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	plan, err := p.planGang(g)
	if err != nil {
		return nil, err
	}
	return p.executeGang(ctx, g, plan)
}

// planGang decides every member (and any preemption) against a
// simulated candidate set without touching any machine.
func (p *Placer) planGang(g GangSpec) (*gangPlan, error) {
	members := p.Inv.Snapshot()
	policy := g.policy()
	// Domain state is needed whenever the policy spreads, even if the
	// scorer's global domain tie-break is off.
	spread := p.Scorer.DomainSpread || policy != GangPack
	cs := candSets.Get().(*candidateSet)
	defer candSets.Put(cs)
	cands := cs.reset(members, true, spread)
	if len(cands) == 0 {
		return nil, ErrNoCandidate
	}
	appsByID := make(map[string][]PlacedApp, len(members))
	for i := range members {
		appsByID[members[i].ID] = members[i].Apps
	}
	rank := ClassRank(g.App.Priority)
	var ranks map[string]int

	plan := &gangPlan{}
	chosen := make(map[string]bool, g.Replicas) // member IDs hosting the gang
	domUsed := make(map[string]int, g.Replicas) // gang members per domain
	pool := make([]*candidate, 0, len(cands))   // per-member filtered view
	for i := 0; i < g.Replicas; i++ {
		spec := g.member(i)
		pool = pool[:0]
		switch policy {
		case GangPack:
			for _, c := range cands {
				if chosen[c.id] {
					pool = append(pool, c)
				}
			}
		case GangSpread:
			// Prefer untouched domains; once every domain hosts a member,
			// prefer the least-loaded ones.
			minUsed := -1
			for _, c := range cands {
				if minUsed < 0 || domUsed[c.domain] < minUsed {
					minUsed = domUsed[c.domain]
				}
			}
			for _, c := range cands {
				if domUsed[c.domain] == minUsed {
					pool = append(pool, c)
				}
			}
		case GangStrictSpread:
			for _, c := range cands {
				if domUsed[c.domain] == 0 {
					pool = append(pool, c)
				}
			}
			if len(pool) == 0 {
				return nil, fmt.Errorf("fleet: gang %s: no unused failure domain for member %d of %d (strict-spread)",
					g.Name, i+1, g.Replicas)
			}
		}
		d, c, err := p.Scorer.decide(spec, pool)
		if err != nil && policy == GangPack {
			// Packed bins full (or none yet): spill to the whole fleet.
			d, c, err = p.Scorer.decide(spec, cands)
		}
		if err != nil {
			return nil, fmt.Errorf("fleet: gang %s: member %d of %d: %w", g.Name, i+1, g.Replicas, err)
		}
		if d.Starved && rank > 0 && !p.DisablePreemption {
			// Make floor room: evict the cheapest lower-class apps from
			// the chosen bin, then re-take the decision against it.
			if ranks == nil {
				ranks = hostRanks(members)
			}
			need := len(c.demand) + 1 - FloorCapacity(c.topo)
			if moves := p.Scorer.planEvictions(c, appsByID[c.id], rank, need, cands, ranks, nil); len(moves) > 0 {
				plan.victims = append(plan.victims, moves...)
				if d2, c2, err2 := p.Scorer.decide(spec, []*candidate{c}); err2 == nil {
					d, c = d2, c2
				}
			}
		}
		c.commit(spec)
		chosen[c.id] = true
		if spread {
			domUsed[c.domain]++
		}
		plan.members = append(plan.members, gangMember{spec: spec, member: d.Member, score: d.Score})
	}
	return plan, nil
}

// executeGang applies a plan: victims move first (drain-then-place,
// like the rebalancer), then members register in order, rolling back
// on the first failure.
func (p *Placer) executeGang(ctx context.Context, g GangSpec, plan *gangPlan) (*GangResult, error) {
	res := &GangResult{Name: g.Name, Policy: g.policy()}
	for _, mv := range plan.victims {
		src, err := p.Inv.Client(mv.From)
		if err != nil {
			continue
		}
		if err := src.Deregister(ctx, mv.AppID); err != nil {
			// The victim stays put; the gang proceeds (possibly starved)
			// and the rebalancer's repair pass retries next round.
			p.logf("fleet: gang %s: draining victim %s from %s: %v", g.Name, mv.AppID, mv.From, err)
			continue
		}
		p.Inv.noteDeregistered(mv.From, mv.AppID)
		dst, err := p.Inv.Client(mv.To)
		if err != nil {
			continue
		}
		resp, err := dst.Register(ctx, mv.App.registerRequest())
		if err != nil {
			p.logf("fleet: gang %s: re-homing victim %s to %s: %v", g.Name, mv.AppID, mv.To, err)
			continue
		}
		p.Inv.noteRegistered(mv.To, mv.App.placed(resp.ID))
		if p.OnMoved != nil {
			p.OnMoved(mv.App.Name)
		}
		res.Preempted = append(res.Preempted, mv)
		p.logf("fleet: gang %s: preempted %s (%s) %s -> %s", g.Name, mv.AppID, mv.App.Priority, mv.From, mv.To)
	}

	registered := make([]GangPlacement, 0, len(plan.members))
	rollback := func(cause error) error {
		for _, gp := range registered {
			cli, err := p.Inv.Client(gp.Member)
			if err == nil {
				err = cli.Deregister(ctx, gp.App.ID)
			}
			if err != nil {
				// Unreachable mid-rollback: mark the orphan stale so the
				// rebalancer's duplicate cleanup removes it when the
				// machine answers again.
				p.Inv.noteStale(gp.Member, gp.App.ID)
				p.logf("fleet: gang %s: rollback of %s on %s failed (marked stale): %v",
					g.Name, gp.App.ID, gp.Member, err)
			}
			p.Inv.noteDeregistered(gp.Member, gp.App.ID)
		}
		return fmt.Errorf("fleet: gang %s: admission failed, rolled back %d registered members: %w",
			g.Name, len(registered), cause)
	}
	for _, m := range plan.members {
		cli, err := p.Inv.Client(m.member)
		if err != nil {
			return nil, rollback(err)
		}
		resp, err := cli.Register(ctx, m.spec.registerRequest())
		if err != nil {
			return nil, rollback(fmt.Errorf("registering %q on %s: %w", m.spec.Name, m.member, err))
		}
		placed := m.spec.placed(resp.ID)
		p.Inv.noteRegistered(m.member, placed)
		registered = append(registered, GangPlacement{App: placed, Member: m.member, Score: m.score})
	}
	res.Placements = registered
	for _, gp := range res.Placements {
		p.logf("fleet: gang %s: %s on %s (marginal %+.1f GFLOPS)", g.Name, gp.App.ID, gp.Member, gp.Score)
	}
	return res, nil
}

func (p *Placer) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}
