package fleet

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// newFleetServer wires a fleet server (not Started — tests drive the
// control loop by hand) over the given inventory and serves it via
// httptest, returning a fleet API client for it.
func newFleetServer(t *testing.T, inv *Inventory) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(ServerConfig{Inventory: inv, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, NewClient(hs.URL, nil)
}

// TestServerPlaceAndMachines exercises the fleetd HTTP surface end to
// end against one real coopd: place over HTTP, observe the machine
// view, drain and undo, and the input-validation error paths.
func TestServerPlaceAndMachines(t *testing.T) {
	ctx := context.Background()
	hs := newCoopd(t)
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil)})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	_, fc := newFleetServer(t, inv)

	resp, err := fc.Place(ctx, memSpec("web"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Machine != "a" || resp.ID == "" || !near(resp.Score, 64) {
		t.Fatalf("place response %+v, want machine a, an ID, score ~64", resp)
	}
	if len(resp.Endpoints) == 0 {
		t.Fatal("place response misses the machine's endpoints (clients need them to heartbeat)")
	}

	// The machines view reports last-polled totals; refresh it the way
	// the Started control loop would.
	inv.Poll(ctx)
	ms, err := fc.Machines(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Machines) != 1 {
		t.Fatalf("%d machines, want 1", len(ms.Machines))
	}
	mv := ms.Machines[0]
	if mv.Status != StatusHealthy || len(mv.Apps) != 1 || mv.Machine == "" {
		t.Fatalf("machine view %+v, want healthy with 1 app and a topology name", mv)
	}
	if !near(ms.FleetGFLOPS, 64) {
		t.Fatalf("fleet aggregate %g, want ~64", ms.FleetGFLOPS)
	}

	// A plan over a balanced one-machine fleet is empty, served as a
	// read-only dry run.
	plan, err := fc.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 || len(plan.StaleDeregs) != 0 {
		t.Fatalf("dry-run plan not empty: %+v", plan)
	}

	// Drain round-trip, and 404 for unknown machines.
	dr, err := fc.Drain(ctx, "a", false)
	if err != nil || !dr.Draining {
		t.Fatalf("drain: %+v, %v", dr, err)
	}
	if _, err := fc.Place(ctx, memSpec("while-draining")); err == nil {
		t.Fatal("placement succeeded with every member draining")
	}
	if dr, err = fc.Drain(ctx, "a", true); err != nil || dr.Draining {
		t.Fatalf("undo drain: %+v, %v", dr, err)
	}
	if _, err := fc.Drain(ctx, "ghost", false); err == nil {
		t.Fatal("drain of unknown machine succeeded")
	}

	// Validation: non-positive AI is a client error, not a crash.
	if _, err := fc.Place(ctx, AppSpec{Name: "zero-ai"}); err == nil {
		t.Fatal("zero-AI spec accepted")
	}

	h, err := fc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Machines != 1 || h.Healthy != 1 || h.Apps != 1 {
		t.Fatalf("health %+v, want ok with 1 healthy machine and 1 app", h)
	}
}

// TestServerPlaceNoMembers: an empty fleet refuses placements with a
// service-unavailable error rather than a hang or a panic.
func TestServerPlaceNoMembers(t *testing.T) {
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil)})
	_, fc := newFleetServer(t, inv)
	if _, err := fc.Place(context.Background(), memSpec("homeless")); err == nil {
		t.Fatal("placement succeeded on an empty fleet")
	}
}

// TestServerGangRoundTrip: POST /v1/fleet/gang admits a gang through
// the typed client, the machine view shows every member with its
// priority stamped back, and validation rejects bad specs with 400.
func TestServerGangRoundTrip(t *testing.T) {
	ctx := context.Background()
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil)})
	for _, id := range []string{"a", "b"} {
		if err := inv.Add(id, newCoopd(t).URL); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)
	_, fc := newFleetServer(t, inv)

	res, err := fc.PlaceGang(ctx, GangSpec{
		Name: "web", Replicas: 2, Policy: GangSpread,
		App: AppSpec{AI: 0.5, TTLMillis: testTTL, Priority: PriorityLatency},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 2 || res.Policy != GangSpread {
		t.Fatalf("gang result %+v, want 2 spread placements", res)
	}
	if res.Placements[0].Member == res.Placements[1].Member {
		t.Fatalf("spread gang co-located on %s", res.Placements[0].Member)
	}

	inv.Poll(ctx)
	ms, err := fc.Machines(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, m := range ms.Machines {
		for _, app := range m.Apps {
			seen++
			if app.Priority != PriorityLatency {
				t.Fatalf("member %s lost its class across the poll: %+v", app.Name, app)
			}
		}
	}
	if seen != 2 {
		t.Fatalf("machine view shows %d gang members, want 2", seen)
	}

	for _, bad := range []GangSpec{
		{Name: "", Replicas: 2, App: AppSpec{AI: 0.5}},
		{Name: "x", Replicas: 0, App: AppSpec{AI: 0.5}},
		{Name: "x", Replicas: 2, Policy: "diagonal", App: AppSpec{AI: 0.5}},
		{Name: "x", Replicas: 2, App: AppSpec{AI: -1}},
		{Name: "x", Replicas: 2, App: AppSpec{AI: 0.5, Priority: "urgent"}},
	} {
		if _, err := fc.PlaceGang(ctx, bad); err == nil || !strings.Contains(err.Error(), "400") {
			t.Fatalf("gang %+v admitted, want a 400 validation error (got %v)", bad, err)
		}
	}
}
