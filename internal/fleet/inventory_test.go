package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/ctrlplane/client"
	"repro/internal/faultinject"
)

// hostOf extracts "host:port" from an httptest base URL for
// faultinject.Partition, which keys on hosts.
func hostOf(t *testing.T, base string) string {
	t.Helper()
	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// TestInventoryPollTracksTopologyAndApps: a poll learns the member's
// topology and mirrors its coopd registry, including apps registered
// behind the fleet's back.
func TestInventoryPollTracksTopologyAndApps(t *testing.T) {
	ctx := context.Background()
	hs := newCoopd(t)
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil)})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	if m, _ := inv.Member("a"); m.Healthy() {
		t.Fatal("member healthy before first poll")
	}

	// An app registers directly with the machine's coopd, not via the
	// fleet: the poll must still pick it up.
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Register(ctx, memSpec("loner").registerRequest()); err != nil {
		t.Fatal(err)
	}

	inv.Poll(ctx)
	m, ok := inv.Member("a")
	if !ok || !m.Healthy() {
		t.Fatalf("member not healthy after poll: %+v", m)
	}
	if m.Topology == nil || m.Topology.NumNodes() != 4 {
		t.Fatalf("topology not learned: %v", m.Topology)
	}
	if len(m.Apps) != 1 || m.Apps[0].Name != "loner" {
		t.Fatalf("apps = %+v, want the directly registered app", m.Apps)
	}
	if !near(m.TotalGFLOPS, 64) {
		t.Fatalf("TotalGFLOPS = %g, want the machine's solved ~64", m.TotalGFLOPS)
	}
}

// TestInventoryDeathAndRevival: FailAfter consecutive failed polls
// declare a member dead; one successful poll after the partition heals
// revives it and resets the failure count.
func TestInventoryDeathAndRevival(t *testing.T) {
	ctx := context.Background()
	hs := newCoopd(t)
	part := faultinject.NewPartition()
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(part.Transport(nil)),
		FailAfter: 2,
	})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Healthy() {
		t.Fatal("member not healthy on a clean network")
	}

	part.Isolate(hostOf(t, hs.URL))
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); m.Dead || m.Failures != 1 {
		t.Fatalf("after one failed poll: dead=%v failures=%d, want suspect", m.Dead, m.Failures)
	}
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Dead {
		t.Fatal("member not dead after FailAfter failed polls")
	}

	part.Heal(hostOf(t, hs.URL))
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Healthy() || m.Failures != 0 {
		t.Fatalf("after heal: healthy=%v failures=%d, want revived", m.Healthy(), m.Failures)
	}
}

// TestInventoryEndpointFailover: a member listed with two endpoints (an
// HA pair) stays healthy when the preferred endpoint is down, by
// failing over to the second.
func TestInventoryEndpointFailover(t *testing.T) {
	ctx := context.Background()
	live := newCoopd(t)
	deadHS := newCoopd(t)
	deadURL := deadHS.URL
	deadHS.Close() // refuses connections from here on

	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil)})
	if err := inv.Add("a", deadURL, live.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	m, _ := inv.Member("a")
	if !m.Healthy() {
		t.Fatal("member not healthy despite a live second endpoint")
	}
	// The preferred client must now be the live endpoint, so writes
	// (register/deregister) go where reads succeeded.
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Register(ctx, memSpec("after-failover").registerRequest()); err != nil {
		t.Fatalf("register via preferred client after failover: %v", err)
	}
}

// TestInventoryPollTimeoutBoundsHungMember: one member's coopd hangs
// (injected transport latency far beyond any test budget) while a
// second member is healthy. PollTimeout must cut the hung member's poll
// off so the whole refresh still completes quickly and the healthy
// member — polled *after* the hung one in ID order — is reached. The
// clients deliberately use default (long) request timeouts: the
// per-member deadline is the only guard under test.
func TestInventoryPollTimeoutBoundsHungMember(t *testing.T) {
	ctx := context.Background()
	hung, live := newCoopd(t), newCoopd(t)
	hungHost := hostOf(t, hung.URL)

	// Every request to the hung member's host stalls for a minute;
	// everything else passes through untouched.
	inj := faultinject.NewInjector(func(n uint64) faultinject.Fault {
		return faultinject.Fault{Kind: faultinject.KindLatency, Latency: time.Minute}
	})
	rt := &faultinject.Transport{
		Inj:    inj,
		Filter: func(req *http.Request) bool { return req.URL.Host == hungHost },
	}

	inv := NewInventory(InventoryConfig{
		NewClient: func(endpoint string) *client.Client {
			return client.New(endpoint, client.Config{
				HTTPClient:  &http.Client{Transport: rt},
				MaxAttempts: 1,
			})
		},
		FailAfter:   1,
		PollTimeout: 100 * time.Millisecond,
	})
	// "a-hung" sorts before "b-live": without the per-member deadline the
	// hung member would stall the sequential round before b is reached.
	if err := inv.Add("a-hung", hung.URL); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("b-live", live.URL); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	inv.Poll(ctx)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("poll round took %v despite the 100ms per-member deadline", d)
	}
	if m, _ := inv.Member("a-hung"); !m.Dead {
		t.Fatalf("hung member not declared dead: %+v", m)
	}
	if m, _ := inv.Member("b-live"); !m.Healthy() {
		t.Fatal("healthy member never polled — the hung member stalled the round")
	}
	if got := inj.Requests(); got == 0 {
		t.Fatal("latency injector never saw a request; test wired wrong")
	}
}

// flapFleet builds a one-member inventory with a pinned clock and an
// aggressive flap detector (FailAfter 1, FlapCount 2) behind a
// partition fabric. Returns the inventory, the fabric, the member's
// host, and the clock-advance function.
func flapFleet(t *testing.T) (*Inventory, *faultinject.Partition, string, func(time.Duration)) {
	t.Helper()
	hs := newCoopd(t)
	part := faultinject.NewPartition()
	now := time.Unix(1_000_000, 0)
	inv := NewInventory(InventoryConfig{
		NewClient:         fastClients(part.Transport(nil)),
		FailAfter:         1,
		Clock:             func() time.Time { return now },
		FlapCount:         2,
		FlapWindow:        time.Hour,
		QuarantineBackoff: 30 * time.Second,
		Logf:              t.Logf,
	})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(context.Background())
	return inv, part, hostOf(t, hs.URL), func(d time.Duration) { now = now.Add(d) }
}

// flap kills and revives the member once: one failed poll (FailAfter 1)
// records the alive->dead transition, the healed poll records
// dead->alive.
func flap(t *testing.T, inv *Inventory, part *faultinject.Partition, host string, advance func(time.Duration)) {
	t.Helper()
	ctx := context.Background()
	part.Isolate(host)
	advance(time.Second)
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Dead {
		t.Fatal("member not dead after the cut")
	}
	part.Heal(host)
	advance(time.Second)
	inv.Poll(ctx)
}

// TestInventoryFlapQuarantineEscalationAndForgiveness walks the flap
// detector's whole state machine: two transitions inside the window
// quarantine the member (revived but not a placement target), flapping
// during the quarantine doubles the backoff, and a clean window after
// re-admission forgives the escalation.
func TestInventoryFlapQuarantineEscalationAndForgiveness(t *testing.T) {
	ctx := context.Background()
	inv, part, host, advance := flapFleet(t)

	// One die/revive cycle = 2 transitions = FlapCount: quarantined.
	flap(t, inv, part, host, advance)
	m, _ := inv.Member("a")
	if !m.Quarantined || m.Quarantines != 1 {
		t.Fatalf("after first flap cycle: %+v, want quarantine #1", m)
	}
	if m.Healthy() {
		t.Fatal("quarantined member reports healthy (it must not be a placement target)")
	}
	if !m.Alive() {
		t.Fatal("quarantined-but-answering member reports not alive (stale cleanup needs it)")
	}
	if got, want := m.QuarantineUntil.Sub(inv.cfg.Clock()), 30*time.Second; got != want {
		t.Fatalf("first backoff %v, want %v", got, want)
	}

	// Polls inside the backoff keep it benched.
	advance(10 * time.Second)
	inv.Poll(ctx)
	if m, _ = inv.Member("a"); !m.Quarantined {
		t.Fatal("member re-admitted before the backoff expired")
	}

	// Still flapping during quarantine: the next trigger doubles the
	// backoff.
	flap(t, inv, part, host, advance)
	m, _ = inv.Member("a")
	if !m.Quarantined || m.Quarantines != 2 {
		t.Fatalf("after flapping during quarantine: %+v, want quarantine #2", m)
	}
	if got, want := m.QuarantineUntil.Sub(inv.cfg.Clock()), 60*time.Second; got != want {
		t.Fatalf("escalated backoff %v, want doubled %v", got, want)
	}

	// A quiet backoff: the next successful poll past the deadline
	// re-admits, and the clean window resets the escalation counter.
	advance(61 * time.Second)
	inv.Poll(ctx)
	m, _ = inv.Member("a")
	if m.Quarantined || !m.Healthy() {
		t.Fatalf("member not re-admitted after the backoff: %+v", m)
	}
	if m.Quarantines != 0 {
		t.Fatalf("escalation not forgiven after a clean window: quarantines=%d", m.Quarantines)
	}
}

// TestInventoryQuarantineDisabled: FlapCount < 0 turns the detector off
// — the A/B regression knob — so even a rapid flapper is never benched.
func TestInventoryQuarantineDisabled(t *testing.T) {
	hs := newCoopd(t)
	part := faultinject.NewPartition()
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(part.Transport(nil)),
		FailAfter: 1,
		FlapCount: -1,
	})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	inv.Poll(ctx)
	host := hostOf(t, hs.URL)
	for i := 0; i < 4; i++ {
		part.Isolate(host)
		inv.Poll(ctx)
		part.Heal(host)
		inv.Poll(ctx)
	}
	if m, _ := inv.Member("a"); m.Quarantined || !m.Healthy() {
		t.Fatalf("detector disabled but member benched: %+v", m)
	}
}

// gateRT parks the first request made while gated (releasing it later
// completes it against the real transport) and fails every subsequent
// gated request immediately — the partition-flap race in miniature: a
// poll's response is in flight while a newer poll fails.
type gateRT struct {
	mu      sync.Mutex
	gated   bool
	parked  bool
	started chan struct{}
	release chan struct{}
}

func (g *gateRT) RoundTrip(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	if g.gated {
		if !g.parked {
			g.parked = true
			g.mu.Unlock()
			close(g.started)
			<-g.release
			return http.DefaultTransport.RoundTrip(req)
		}
		g.mu.Unlock()
		return nil, errors.New("injected: partitioned")
	}
	g.mu.Unlock()
	return http.DefaultTransport.RoundTrip(req)
}

// TestInventoryPollRaceStaleSuccess: poll A's response hangs in flight;
// poll B starts, fails, and declares the member dead. When A's stale
// success finally lands it must be discarded — applying it would reset
// the failure count B just recorded and flip a dead member healthy on
// the strength of pre-partition data.
func TestInventoryPollRaceStaleSuccess(t *testing.T) {
	ctx := context.Background()
	hs := newCoopd(t)
	g := &gateRT{started: make(chan struct{}), release: make(chan struct{})}
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(g),
		FailAfter: 1,
		Logf:      t.Logf,
	})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Healthy() {
		t.Fatal("member not healthy on a clean network")
	}

	// Poll A parks mid-flight on its first request.
	g.mu.Lock()
	g.gated = true
	g.mu.Unlock()
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		inv.Poll(ctx)
	}()
	<-g.started

	// Poll B runs while A is parked: its request fails immediately and
	// the member is declared dead.
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Dead || m.Failures != 1 {
		t.Fatalf("after the failed poll: dead=%v failures=%d, want dead", m.Dead, m.Failures)
	}

	// Release A; its remaining requests pass through, so its poll
	// SUCCEEDS — with data from before the failure. The sequence guard
	// must drop it.
	g.mu.Lock()
	g.gated = false
	g.mu.Unlock()
	close(g.release)
	<-aDone
	if m, _ := inv.Member("a"); !m.Dead || m.Failures != 1 {
		t.Fatalf("stale in-flight success resurrected the member: dead=%v failures=%d", m.Dead, m.Failures)
	}

	// A genuinely fresh poll revives it.
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Healthy() {
		t.Fatal("member not revived by a fresh poll")
	}
}

// TestSetDrainingDeadMember: draining a dead member is a typed error
// (its apps are already evacuating as machine-lost); undraining one is
// allowed and clears the flag for its revival.
func TestSetDrainingDeadMember(t *testing.T) {
	ctx := context.Background()
	hs := newCoopd(t)
	part := faultinject.NewPartition()
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(part.Transport(nil)),
		FailAfter: 1,
	})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	part.Isolate(hostOf(t, hs.URL))
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Dead {
		t.Fatal("member not dead after the cut")
	}
	if err := inv.SetDraining("a", true); !errors.Is(err, ErrMemberDead) {
		t.Fatalf("draining a dead member: got %v, want ErrMemberDead", err)
	}
	if err := inv.SetDraining("a", false); err != nil {
		t.Fatalf("undraining a dead member: %v", err)
	}
}

// TestInventoryAddValidation: duplicate IDs and empty members are
// rejected.
func TestInventoryAddValidation(t *testing.T) {
	inv := NewInventory(InventoryConfig{})
	if err := inv.Add("", "http://x"); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := inv.Add("a"); err == nil {
		t.Fatal("member without endpoints accepted")
	}
	if err := inv.Add("a", "http://x"); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("a", "http://y"); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if err := inv.SetDraining("a", true); err != nil {
		t.Fatalf("SetDraining failed for a known member: %v", err)
	}
	if err := inv.SetDraining("ghost", true); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("SetDraining on an unknown member: got %v, want ErrUnknownMember", err)
	}
}
