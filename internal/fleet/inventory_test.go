package fleet

import (
	"context"
	"net/http"
	"net/url"
	"testing"
	"time"

	"repro/internal/ctrlplane/client"
	"repro/internal/faultinject"
)

// hostOf extracts "host:port" from an httptest base URL for
// faultinject.Partition, which keys on hosts.
func hostOf(t *testing.T, base string) string {
	t.Helper()
	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// TestInventoryPollTracksTopologyAndApps: a poll learns the member's
// topology and mirrors its coopd registry, including apps registered
// behind the fleet's back.
func TestInventoryPollTracksTopologyAndApps(t *testing.T) {
	ctx := context.Background()
	hs := newCoopd(t)
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil)})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	if m, _ := inv.Member("a"); m.Healthy() {
		t.Fatal("member healthy before first poll")
	}

	// An app registers directly with the machine's coopd, not via the
	// fleet: the poll must still pick it up.
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Register(ctx, memSpec("loner").registerRequest()); err != nil {
		t.Fatal(err)
	}

	inv.Poll(ctx)
	m, ok := inv.Member("a")
	if !ok || !m.Healthy() {
		t.Fatalf("member not healthy after poll: %+v", m)
	}
	if m.Topology == nil || m.Topology.NumNodes() != 4 {
		t.Fatalf("topology not learned: %v", m.Topology)
	}
	if len(m.Apps) != 1 || m.Apps[0].Name != "loner" {
		t.Fatalf("apps = %+v, want the directly registered app", m.Apps)
	}
	if !near(m.TotalGFLOPS, 64) {
		t.Fatalf("TotalGFLOPS = %g, want the machine's solved ~64", m.TotalGFLOPS)
	}
}

// TestInventoryDeathAndRevival: FailAfter consecutive failed polls
// declare a member dead; one successful poll after the partition heals
// revives it and resets the failure count.
func TestInventoryDeathAndRevival(t *testing.T) {
	ctx := context.Background()
	hs := newCoopd(t)
	part := faultinject.NewPartition()
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(part.Transport(nil)),
		FailAfter: 2,
	})
	if err := inv.Add("a", hs.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Healthy() {
		t.Fatal("member not healthy on a clean network")
	}

	part.Isolate(hostOf(t, hs.URL))
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); m.Dead || m.Failures != 1 {
		t.Fatalf("after one failed poll: dead=%v failures=%d, want suspect", m.Dead, m.Failures)
	}
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Dead {
		t.Fatal("member not dead after FailAfter failed polls")
	}

	part.Heal(hostOf(t, hs.URL))
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Healthy() || m.Failures != 0 {
		t.Fatalf("after heal: healthy=%v failures=%d, want revived", m.Healthy(), m.Failures)
	}
}

// TestInventoryEndpointFailover: a member listed with two endpoints (an
// HA pair) stays healthy when the preferred endpoint is down, by
// failing over to the second.
func TestInventoryEndpointFailover(t *testing.T) {
	ctx := context.Background()
	live := newCoopd(t)
	deadHS := newCoopd(t)
	deadURL := deadHS.URL
	deadHS.Close() // refuses connections from here on

	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil)})
	if err := inv.Add("a", deadURL, live.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	m, _ := inv.Member("a")
	if !m.Healthy() {
		t.Fatal("member not healthy despite a live second endpoint")
	}
	// The preferred client must now be the live endpoint, so writes
	// (register/deregister) go where reads succeeded.
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Register(ctx, memSpec("after-failover").registerRequest()); err != nil {
		t.Fatalf("register via preferred client after failover: %v", err)
	}
}

// TestInventoryPollTimeoutBoundsHungMember: one member's coopd hangs
// (injected transport latency far beyond any test budget) while a
// second member is healthy. PollTimeout must cut the hung member's poll
// off so the whole refresh still completes quickly and the healthy
// member — polled *after* the hung one in ID order — is reached. The
// clients deliberately use default (long) request timeouts: the
// per-member deadline is the only guard under test.
func TestInventoryPollTimeoutBoundsHungMember(t *testing.T) {
	ctx := context.Background()
	hung, live := newCoopd(t), newCoopd(t)
	hungHost := hostOf(t, hung.URL)

	// Every request to the hung member's host stalls for a minute;
	// everything else passes through untouched.
	inj := faultinject.NewInjector(func(n uint64) faultinject.Fault {
		return faultinject.Fault{Kind: faultinject.KindLatency, Latency: time.Minute}
	})
	rt := &faultinject.Transport{
		Inj:    inj,
		Filter: func(req *http.Request) bool { return req.URL.Host == hungHost },
	}

	inv := NewInventory(InventoryConfig{
		NewClient: func(endpoint string) *client.Client {
			return client.New(endpoint, client.Config{
				HTTPClient:  &http.Client{Transport: rt},
				MaxAttempts: 1,
			})
		},
		FailAfter:   1,
		PollTimeout: 100 * time.Millisecond,
	})
	// "a-hung" sorts before "b-live": without the per-member deadline the
	// hung member would stall the sequential round before b is reached.
	if err := inv.Add("a-hung", hung.URL); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("b-live", live.URL); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	inv.Poll(ctx)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("poll round took %v despite the 100ms per-member deadline", d)
	}
	if m, _ := inv.Member("a-hung"); !m.Dead {
		t.Fatalf("hung member not declared dead: %+v", m)
	}
	if m, _ := inv.Member("b-live"); !m.Healthy() {
		t.Fatal("healthy member never polled — the hung member stalled the round")
	}
	if got := inj.Requests(); got == 0 {
		t.Fatal("latency injector never saw a request; test wired wrong")
	}
}

// TestInventoryAddValidation: duplicate IDs and empty members are
// rejected.
func TestInventoryAddValidation(t *testing.T) {
	inv := NewInventory(InventoryConfig{})
	if err := inv.Add("", "http://x"); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := inv.Add("a"); err == nil {
		t.Fatal("member without endpoints accepted")
	}
	if err := inv.Add("a", "http://x"); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("a", "http://y"); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if !inv.SetDraining("a", true) {
		t.Fatal("SetDraining failed for a known member")
	}
	if inv.SetDraining("ghost", true) {
		t.Fatal("SetDraining succeeded for an unknown member")
	}
}
