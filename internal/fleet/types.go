package fleet

// Wire types for the fleetd HTTP API:
//
//	POST /v1/fleet/place    AppSpec          -> PlaceResponse
//	GET  /v1/fleet/machines                  -> MachinesResponse
//	GET  /v1/fleet/plan                      -> Plan (read-only dry run)
//	POST /v1/fleet/drain    DrainRequest     -> DrainResponse
//	GET  /healthz                            -> FleetHealthResponse
//
// Errors reuse ctrlplane.ErrorResponse so the coopd client-side
// decoding conventions carry over unchanged.

// Member status strings reported in MachineView.
const (
	StatusHealthy = "healthy"
	// StatusSuspect marks a member with failed polls that has not yet
	// crossed the FailAfter threshold.
	StatusSuspect = "suspect"
	StatusDead    = "dead"
	// StatusUnknown marks a member never successfully polled.
	StatusUnknown = "unknown"
)

// MachineView is one member machine on the wire.
type MachineView struct {
	ID        string   `json:"id"`
	Endpoints []string `json:"endpoints"`
	// Status is healthy, suspect, dead, or unknown.
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
	// Machine is the topology's display name ("" until known).
	Machine string `json:"machine,omitempty"`
	// Apps is the member's demand set as the fleet last saw it.
	Apps []PlacedApp `json:"apps"`
	// NUMABadApps counts numa-bad registrations (the anti-affinity
	// input).
	NUMABadApps int `json:"numa_bad_apps,omitempty"`
	// TotalGFLOPS and Generation mirror the member's /v1/allocations.
	TotalGFLOPS float64 `json:"total_gflops"`
	Generation  uint64  `json:"generation"`
	// SinceSeenMillis is the time since the last successful poll (-1
	// when never polled).
	SinceSeenMillis int64 `json:"since_seen_ms"`
	Failures        int   `json:"failures,omitempty"`
	// StaleApps lists re-homed app IDs pending cleanup on revival.
	StaleApps []string `json:"stale_apps,omitempty"`
}

// MachinesResponse is the /v1/fleet/machines body.
type MachinesResponse struct {
	Machines []MachineView `json:"machines"`
	// FleetGFLOPS sums healthy members' served aggregates.
	FleetGFLOPS float64 `json:"fleet_gflops"`
}

// PlaceResponse confirms a placement.
type PlaceResponse struct {
	// Machine is the chosen member; ID is the app's handle on that
	// machine's coopd (heartbeats go directly to the machine).
	Machine string `json:"machine"`
	ID      string `json:"id"`
	// Endpoints are the chosen machine's coopd URLs, so the caller can
	// reach its app without a fleet round trip.
	Endpoints []string `json:"endpoints"`
	// Score is the marginal fleet GFLOPS of the placement; After is the
	// machine's predicted aggregate with the app.
	Score float64 `json:"score"`
	After float64 `json:"after"`
}

// DrainRequest asks the rebalancer to empty a member.
type DrainRequest struct {
	Machine string `json:"machine"`
	// Undo re-enables placements instead.
	Undo bool `json:"undo,omitempty"`
}

// DrainResponse acknowledges a drain toggle.
type DrainResponse struct {
	Machine  string `json:"machine"`
	Draining bool   `json:"draining"`
}

// FleetHealthResponse is the fleet /healthz body.
type FleetHealthResponse struct {
	Status   string `json:"status"`
	Machines int    `json:"machines"`
	Healthy  int    `json:"healthy"`
	Dead     int    `json:"dead"`
	Draining int    `json:"draining"`
	Apps     int    `json:"apps"`
}
