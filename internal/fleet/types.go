package fleet

// Wire types for the fleetd HTTP API:
//
//	POST /v1/fleet/place    AppSpec          -> PlaceResponse
//	GET  /v1/fleet/machines                  -> MachinesResponse
//	GET  /v1/fleet/plan                      -> Plan (read-only dry run)
//	POST /v1/fleet/drain    DrainRequest     -> DrainResponse
//	POST /v1/fleet/upgrade  UpgradeRequest   -> UpgradeStatus
//	GET  /v1/fleet/upgrade                   -> UpgradeStatus
//	GET  /healthz                            -> FleetHealthResponse
//
// Errors reuse ctrlplane.ErrorResponse so the coopd client-side
// decoding conventions carry over unchanged.

// Member status strings reported in MachineView.
const (
	StatusHealthy = "healthy"
	// StatusSuspect marks a member with failed polls that has not yet
	// crossed the FailAfter threshold.
	StatusSuspect = "suspect"
	StatusDead    = "dead"
	// StatusUnknown marks a member never successfully polled.
	StatusUnknown = "unknown"
	// StatusQuarantined marks a member the flap detector benched: too
	// many alive<->dead transitions in a short window. It may be
	// answering polls, but it is not a placement target until the
	// quarantine backoff expires.
	StatusQuarantined = "quarantined"
)

// MachineView is one member machine on the wire.
type MachineView struct {
	ID string `json:"id"`
	// Domain is the member's failure domain (rack/zone).
	Domain    string   `json:"domain,omitempty"`
	Endpoints []string `json:"endpoints"`
	// Status is healthy, suspect, dead, quarantined, or unknown.
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
	// QuarantinedForMillis is how much of the quarantine backoff remains
	// (present only while quarantined).
	QuarantinedForMillis int64 `json:"quarantined_for_ms,omitempty"`
	// Machine is the topology's display name ("" until known).
	Machine string `json:"machine,omitempty"`
	// Apps is the member's demand set as the fleet last saw it.
	Apps []PlacedApp `json:"apps"`
	// NUMABadApps counts numa-bad registrations (the anti-affinity
	// input).
	NUMABadApps int `json:"numa_bad_apps,omitempty"`
	// TotalGFLOPS and Generation mirror the member's /v1/allocations.
	TotalGFLOPS float64 `json:"total_gflops"`
	Generation  uint64  `json:"generation"`
	// SinceSeenMillis is the time since the last successful poll (-1
	// when never polled).
	SinceSeenMillis int64 `json:"since_seen_ms"`
	Failures        int   `json:"failures,omitempty"`
	// StaleApps lists re-homed app IDs pending cleanup on revival.
	StaleApps []string `json:"stale_apps,omitempty"`
}

// MachinesResponse is the /v1/fleet/machines body.
type MachinesResponse struct {
	Machines []MachineView `json:"machines"`
	// FleetGFLOPS sums healthy members' served aggregates.
	FleetGFLOPS float64 `json:"fleet_gflops"`
}

// PlaceResponse confirms a placement.
type PlaceResponse struct {
	// Machine is the chosen member; ID is the app's handle on that
	// machine's coopd (heartbeats go directly to the machine).
	Machine string `json:"machine"`
	ID      string `json:"id"`
	// Endpoints are the chosen machine's coopd URLs, so the caller can
	// reach its app without a fleet round trip.
	Endpoints []string `json:"endpoints"`
	// Score is the marginal fleet GFLOPS of the placement; After is the
	// machine's predicted aggregate with the app.
	Score float64 `json:"score"`
	After float64 `json:"after"`
}

// DrainRequest asks the rebalancer to empty a member.
type DrainRequest struct {
	Machine string `json:"machine"`
	// Undo re-enables placements instead.
	Undo bool `json:"undo,omitempty"`
}

// DrainResponse acknowledges a drain toggle.
type DrainResponse struct {
	Machine  string `json:"machine"`
	Draining bool   `json:"draining"`
}

// FleetHealthResponse is the fleet /healthz body.
type FleetHealthResponse struct {
	Status      string `json:"status"`
	Machines    int    `json:"machines"`
	Healthy     int    `json:"healthy"`
	Dead        int    `json:"dead"`
	Quarantined int    `json:"quarantined,omitempty"`
	Draining    int    `json:"draining"`
	Apps        int    `json:"apps"`
}

// UpgradeRequest drives the rolling-upgrade controller
// (POST /v1/fleet/upgrade).
type UpgradeRequest struct {
	// Action is "start" or "abort".
	Action string `json:"action"`
	// Machines is the serial drain order for "start"; empty means every
	// member in ID order.
	Machines []string `json:"machines,omitempty"`
	// HealthFloor aborts the upgrade when the placeable fraction of the
	// fleet (healthy and not draining) falls below it. 0 selects the
	// default (0.5).
	HealthFloor float64 `json:"health_floor,omitempty"`
}

// UpgradeStatus is the controller's wire view (GET /v1/fleet/upgrade
// and the response to every POST).
type UpgradeStatus struct {
	// State is idle, running, done, or aborted.
	State string `json:"state"`
	// Current is the machine draining now ("" between machines).
	Current string `json:"current,omitempty"`
	// Queue lists machines not yet drained; Done lists completed ones.
	Queue []string `json:"queue,omitempty"`
	Done  []string `json:"done,omitempty"`
	// HealthFloor is the abort floor the run was started with.
	HealthFloor float64 `json:"health_floor,omitempty"`
	// Reason explains an aborted state.
	Reason string `json:"reason,omitempty"`
}
