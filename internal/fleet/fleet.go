// Package fleet is the placement layer above many coopd machines: it
// decides *which machine* each cooperating application lands on, using
// the same roofline model coopd uses to decide per-node thread counts
// within one machine.
//
// The paper's model (Section III.A) optimizes a single NUMA machine.
// At fleet scale the objective lifts naturally: the fleet's aggregate
// GFLOPS is the sum of each machine's solved optimum over its local
// demand set, so the placement score of (app, machine) is the marginal
// aggregate GFLOPS of adding the app to that machine's demand set under
// BestPerNodeCountsFloor. Three cooperating pieces implement it:
//
//   - Inventory polls member machines' coopd endpoints (topology,
//     registered apps, solved allocation) and tracks health; a member
//     that fails several consecutive polls is declared dead.
//   - Placer scores an incoming app against every healthy member and
//     registers it on the best bin, with anti-affinity for NUMA-bad
//     apps (two all-data-on-one-node demand sets on one machine fight
//     over home-node bandwidth — the Section III ranking reversal).
//   - Rebalancer turns inventory drift into bounded move plans:
//     machine loss re-places the dead member's apps, draining empties
//     a member, and an imbalance pass compares the fleet's current
//     aggregate against a greedy re-pack and moves apps when the gap
//     exceeds a threshold. Moves per round are capped so a rebalance
//     never storms the fleet.
//
// On top of single-app placement sit gangs — all-or-nothing replica
// sets with pack/spread/strict-spread policies (gang.go) — and
// priority classes (system > latency > batch, priority.go): a higher
// class that cannot be admitted floor-feasibly preempts the cheapest
// lower-class apps (preempt.go), and the placement objective itself is
// pluggable (Scorer.Objective, roofline.ObjectiveSpec).
//
// cmd/fleetd serves the subsystem over HTTP (/v1/fleet/place,
// /v1/fleet/gang, /v1/fleet/machines, /v1/fleet/plan, /v1/fleet/drain)
// and `coopctl fleet` is the CLI.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/machine"
	"repro/internal/roofline"
)

// AppSpec describes an application the fleet should place: the
// roofline profile coopd needs, plus the registration knobs passed
// through to the chosen machine.
type AppSpec struct {
	// Name labels the application (coopd derives the app ID from it).
	Name string `json:"name"`
	// AI is the arithmetic intensity (FLOP/byte). Must be positive.
	AI float64 `json:"ai"`
	// Placement is "numa-perfect" (default) or "numa-bad".
	Placement string `json:"placement,omitempty"`
	// HomeNode holds all data of a numa-bad application.
	HomeNode int `json:"home_node,omitempty"`
	// MaxThreads caps the app's threads on its machine (0: uncapped).
	MaxThreads int `json:"max_threads,omitempty"`
	// TTLMillis overrides the machine's heartbeat deadline (0: its
	// default).
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// Priority is the app's scheduling class: "system", "latency", or
	// "batch" (the default). Higher classes preempt lower ones when
	// they cannot be admitted floor-feasibly, and weigh more under the
	// weighted-priority objective.
	Priority string `json:"priority,omitempty"`
}

// rooflineApp converts the spec for scoring. The placement string uses
// the ctrlplane wire names.
func (s AppSpec) rooflineApp() (roofline.App, error) {
	app := roofline.App{Name: s.Name, AI: s.AI}
	switch s.Placement {
	case "", ctrlplane.PlacementPerfect:
		app.Placement = roofline.NUMAPerfect
	case ctrlplane.PlacementBad:
		app.Placement = roofline.NUMABad
		app.HomeNode = machine.NodeID(s.HomeNode)
	default:
		return roofline.App{}, fmt.Errorf("fleet: unknown placement %q", s.Placement)
	}
	if s.AI <= 0 {
		return roofline.App{}, fmt.Errorf("fleet: app %q has non-positive AI %g", s.Name, s.AI)
	}
	if err := CheckPriority(s.Priority); err != nil {
		return roofline.App{}, err
	}
	// Batch maps to weight zero (scored as 1), so priority-free demand
	// sets stay byte-identical to the pre-priority encoding.
	app.Weight = classWeight(s.Priority)
	return app, nil
}

// numaBad reports whether the spec pins all data to one home node.
func (s AppSpec) numaBad() bool { return s.Placement == ctrlplane.PlacementBad }

// placed returns the PlacedApp to record after registering the spec on
// a machine that assigned it the given ID.
func (s AppSpec) placed(id string) PlacedApp {
	return PlacedApp{
		ID: id, Name: s.Name, AI: s.AI, Placement: s.Placement,
		HomeNode: s.HomeNode, MaxThreads: s.MaxThreads, TTLMillis: s.TTLMillis,
		Priority: s.Priority,
	}
}

// registerRequest converts the spec to the coopd wire form.
func (s AppSpec) registerRequest() ctrlplane.RegisterRequest {
	return ctrlplane.RegisterRequest{
		Name: s.Name, AI: s.AI, Placement: s.Placement, HomeNode: s.HomeNode,
		MaxThreads: s.MaxThreads, TTLMillis: s.TTLMillis,
	}
}

// PlacedApp is one application as placed on a member machine: the spec
// plus the ID the machine's coopd assigned.
type PlacedApp struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	AI         float64 `json:"ai"`
	Placement  string  `json:"placement,omitempty"`
	HomeNode   int     `json:"home_node,omitempty"`
	MaxThreads int     `json:"max_threads,omitempty"`
	TTLMillis  int64   `json:"ttl_ms,omitempty"`
	// FittedAI and Drifted mirror the member coopd's adaptive loop: when
	// Drifted, FittedAI is the online-recalibrated demand currently
	// replacing the declared AI on that machine. Fleet scoring and
	// re-placement use the fitted value — decisions should track what the
	// app does, not what it said.
	FittedAI float64 `json:"fitted_ai,omitempty"`
	Drifted  bool    `json:"drifted,omitempty"`
	// Priority is the app's scheduling class (see AppSpec.Priority).
	// The member coopd does not track it; the Inventory stamps it back
	// onto polled snapshots from its name-keyed priority record.
	Priority string `json:"priority,omitempty"`
}

// Spec strips the machine-local ID, for re-registration elsewhere.
func (a PlacedApp) Spec() AppSpec {
	return AppSpec{
		Name: a.Name, AI: a.AI, Placement: a.Placement, HomeNode: a.HomeNode,
		MaxThreads: a.MaxThreads, TTLMillis: a.TTLMillis, Priority: a.Priority,
	}
}

// EffectiveSpec is Spec with the fitted AI substituted when the app has
// drifted — what re-registration on another machine should declare so
// the destination solves for measured behaviour.
func (a PlacedApp) EffectiveSpec() AppSpec {
	s := a.Spec()
	if a.Drifted && a.FittedAI > 0 {
		s.AI = a.FittedAI
	}
	return s
}

// placedFromView converts a coopd registry record.
func placedFromView(v ctrlplane.AppView) PlacedApp {
	p := PlacedApp{
		ID: v.ID, Name: v.Name, AI: v.AI, HomeNode: v.HomeNode,
		MaxThreads: v.MaxThreads, TTLMillis: v.TTLMillis,
		FittedAI: v.FittedAI, Drifted: v.Drifted,
	}
	if v.Placement != ctrlplane.PlacementPerfect {
		p.Placement = v.Placement
	}
	return p
}

// Member is a read-only snapshot of one fleet machine.
type Member struct {
	// ID names the machine in plans and views.
	ID string
	// Domain is the machine's failure domain (rack/zone); machines
	// sharing a domain are expected to fail together. Defaults to the
	// member's own ID.
	Domain string
	// Endpoints are the machine's coopd base URLs (several for an HA
	// pair); the inventory fails over between them.
	Endpoints []string
	// Topology is the machine's NUMA layout (nil until the first
	// successful poll).
	Topology *machine.Machine
	// Apps is the machine's registered demand set, sorted by ID.
	Apps []PlacedApp
	// TotalGFLOPS and Generation mirror the machine's last
	// /v1/allocations answer.
	TotalGFLOPS float64
	Generation  uint64
	// Failures counts consecutive failed polls; Dead is set once
	// Failures reaches the inventory's FailAfter.
	Failures int
	Dead     bool
	// Draining marks a member that should be emptied by the rebalancer
	// and receive no new placements.
	Draining bool
	// LastSeen is the time of the last successful poll.
	LastSeen time.Time
	// Stale lists app IDs that were re-homed to other machines while
	// this member was dead; if it revives, those registrations are
	// duplicates the rebalancer must clean up.
	Stale []string
	// Quarantined marks a member the flap detector benched: it is not a
	// placement target and its apps are evacuated, even while it answers
	// polls. QuarantineUntil is the earliest re-admission time;
	// Quarantines counts consecutive quarantines (the backoff exponent).
	Quarantined     bool
	QuarantineUntil time.Time
	Quarantines     int
}

// Healthy reports whether the member can accept placements: alive,
// not quarantined, and with a known topology.
func (m *Member) Healthy() bool { return !m.Dead && !m.Quarantined && m.Topology != nil }

// Alive reports whether the member answers polls (its coopd is
// reachable), regardless of quarantine — the gate for control calls
// like stale-duplicate cleanup and drain-style deregistration.
func (m *Member) Alive() bool { return !m.Dead && m.Topology != nil }

// NUMABadApps counts the member's numa-bad registrations — the
// anti-affinity input.
func (m *Member) NUMABadApps() int {
	n := 0
	for _, a := range m.Apps {
		if a.Placement == ctrlplane.PlacementBad {
			n++
		}
	}
	return n
}

// appendDemandSet appends the apps' scoring form to dst — the
// append-style core of Member.demandSet, so hot paths (candidate
// resets, rebalancer passes) rebuild demand sets into reused backing
// arrays. Apps with specs the model rejects (should not happen — coopd
// validated them) are skipped.
func appendDemandSet(dst []roofline.App, apps []PlacedApp) []roofline.App {
	for _, a := range apps {
		ra, err := a.EffectiveSpec().rooflineApp()
		if err != nil {
			continue
		}
		dst = append(dst, ra)
	}
	return dst
}

// demandSet converts the member's apps for scoring into a fresh slice.
func (m *Member) demandSet() []roofline.App {
	return appendDemandSet(make([]roofline.App, 0, len(m.Apps)), m.Apps)
}
