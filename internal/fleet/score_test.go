package fleet

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/roofline"
)

// near checks a GFLOPS value against a hand-derived paper-model figure.
func near(got, want float64) bool { return math.Abs(got-want) < 0.5 }

func mustRoofline(t *testing.T, s AppSpec) roofline.App {
	t.Helper()
	app, err := s.rooflineApp()
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestScorerSolveTotalPaperModel pins the hand-derived optima on the
// paper's 4-node x 8-core machine (peak 10 GFLOPS/core, 32 GB/s/node):
// a lone memory-bound app saturates node bandwidth at 64 GFLOPS, the
// {mem, comp} pair fills each node to its 80 GFLOPS peak, and each
// additional memory-bound app steals a compute core (Table I's mix of
// three of them lands at 254).
func TestScorerSolveTotalPaperModel(t *testing.T) {
	m := machine.PaperModel()
	sc := NewScorer()
	cases := []struct {
		name string
		mem  int
		comp int
		want float64
	}{
		{"empty", 0, 0, 0},
		{"mem", 1, 0, 64},
		{"4mem", 4, 0, 64},
		{"mem+comp", 1, 1, 320},
		{"2mem+comp", 2, 1, 292},
		{"3mem+comp", 3, 1, 254},
		{"4mem+comp", 4, 1, 216},
	}
	for _, tc := range cases {
		var demand []roofline.App
		for i := 0; i < tc.mem; i++ {
			demand = append(demand, mustRoofline(t, memSpec("mem")))
		}
		for i := 0; i < tc.comp; i++ {
			demand = append(demand, mustRoofline(t, compSpec("comp")))
		}
		got, err := sc.SolveTotal(m, demand)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !near(got, tc.want) {
			t.Errorf("%s: solved %g GFLOPS, want ~%g", tc.name, got, tc.want)
		}
	}
}

// TestScorerMarginal checks the placement score is the aggregate delta:
// a compute-bound app arriving on a machine already running one
// memory-bound app is worth +256 (64 -> 320), while a second
// memory-bound app on the same machine is worth nothing (bandwidth is
// already saturated).
func TestScorerMarginal(t *testing.T) {
	m := machine.PaperModel()
	sc := NewScorer()
	base := []roofline.App{mustRoofline(t, memSpec("mem"))}

	marginal, after, err := sc.Marginal(m, base, mustRoofline(t, compSpec("comp")))
	if err != nil {
		t.Fatal(err)
	}
	if !near(marginal, 256) || !near(after, 320) {
		t.Errorf("comp onto {mem}: marginal %g after %g, want ~256 / ~320", marginal, after)
	}

	marginal, after, err = sc.Marginal(m, base, mustRoofline(t, memSpec("mem-2")))
	if err != nil {
		t.Fatal(err)
	}
	if !near(marginal, 0) || !near(after, 64) {
		t.Errorf("mem onto {mem}: marginal %g after %g, want ~0 / ~64", marginal, after)
	}
}

// naiveSolveTotal replicates the fleet solve semantics straight against
// the roofline search, bypassing the Scorer's memo — the reference the
// equivalence-class dedup is checked against.
func naiveSolveTotal(t *testing.T, m *machine.Machine, demand []roofline.App) float64 {
	t.Helper()
	if len(demand) == 0 {
		return 0
	}
	var s roofline.Search
	_, _, res, err := s.BestPerNodeCountsFloor(m, demand, nil, 1)
	if err == roofline.ErrNoAllocation {
		_, _, res, err = s.BestPerNodeCountsFloor(m, demand, nil, 0)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res.TotalGFLOPS
}

// TestDecideMatchesNaivePerMachineScoring checks the equivalence-class
// memoized decide against an unmemoized per-candidate scoring loop: the
// chosen member, score, and after must be bitwise what a cold
// per-machine marginal scan produces. Members deliberately mix repeated
// and unique (topology, demand) classes plus a numa-bad host, and the
// same members are decided twice so the second pass runs entirely from
// the fleet-wide memo.
func TestDecideMatchesNaivePerMachineScoring(t *testing.T) {
	members := []Member{
		{ID: "a", Topology: machine.PaperModel(), Apps: []PlacedApp{
			{ID: "a-1", Name: "mem", AI: 0.5}}},
		{ID: "b", Topology: machine.PaperModel(), Apps: []PlacedApp{ // same class as a
			{ID: "b-1", Name: "mem", AI: 0.5}}},
		{ID: "c", Topology: machine.PaperModel(), Apps: []PlacedApp{ // heavier class
			{ID: "c-1", Name: "mem", AI: 0.5}, {ID: "c-2", Name: "comp", AI: 10}}},
		{ID: "d", Topology: machine.SkylakeQuad(), Apps: []PlacedApp{ // different topo, same demand as a
			{ID: "d-1", Name: "mem", AI: 0.5}}},
		{ID: "e", Topology: machine.PaperModel(), Apps: []PlacedApp{ // numa-bad host
			{ID: "e-1", Name: "bad", AI: 0.5, Placement: "numa-bad", HomeNode: 1}}},
	}
	specs := []AppSpec{
		{Name: "incoming", AI: 2},
		{Name: "incoming-mem", AI: 1.0 / 32},
		{Name: "incoming-bad", AI: 0.25, Placement: "numa-bad", HomeNode: 0},
	}
	for _, spec := range specs {
		// Naive reference: independent solves per candidate, identical
		// selection rule.
		app := mustRoofline(t, spec)
		cands := candidatesFrom(members)
		pool := cands
		if spec.numaBad() {
			var clean []*candidate
			for _, c := range pool {
				if c.bad == 0 {
					clean = append(clean, c)
				}
			}
			if len(clean) > 0 {
				pool = clean
			}
		}
		var want *candidate
		var wantScore, wantAfter float64
		for _, c := range pool {
			if spec.numaBad() && (spec.HomeNode < 0 || spec.HomeNode >= c.topo.NumNodes()) {
				continue
			}
			before := naiveSolveTotal(t, c.topo, c.demand)
			with := append(append([]roofline.App(nil), c.demand...), app)
			after := naiveSolveTotal(t, c.topo, with)
			score := after - before
			switch {
			case want == nil, score > wantScore+scoreTieEps:
				want, wantScore, wantAfter = c, score, after
			case score > wantScore-scoreTieEps && c.apps < want.apps:
				want, wantScore, wantAfter = c, score, after
			}
		}
		if want == nil {
			t.Fatalf("%s: naive scan found no candidate", spec.Name)
		}

		sc := NewScorer()
		for pass := 0; pass < 2; pass++ { // pass 1 runs fully memoized
			d, _, err := sc.decide(spec, candidatesFrom(members))
			if err != nil {
				t.Fatalf("%s pass %d: %v", spec.Name, pass, err)
			}
			if d.Member != want.id || d.Score != wantScore || d.After != wantAfter {
				t.Errorf("%s pass %d: decide chose %s (score %v after %v), naive chose %s (score %v after %v)",
					spec.Name, pass, d.Member, d.Score, d.After, want.id, wantScore, wantAfter)
			}
		}
	}
}

// TestScorerClassDedup pins the memo behaviour decide relies on: a
// fleet of interchangeable machines costs one solve pair on the first
// decision (every further candidate hits the per-decision class map),
// and a repeat decision against the unchanged fleet is solve-free —
// pure LRU hits.
func TestScorerClassDedup(t *testing.T) {
	members := make([]Member, 16)
	for i := range members {
		id := string(rune('a' + i))
		members[i] = Member{ID: "m-" + id, Topology: machine.PaperModel(), Apps: []PlacedApp{
			{ID: id + "-1", Name: "mem", AI: 0.5}}}
	}
	sc := NewScorer()
	spec := AppSpec{Name: "incoming", AI: 2}
	if _, _, err := sc.decide(spec, candidatesFrom(members)); err != nil {
		t.Fatal(err)
	}
	hits, misses := sc.CacheStats()
	if misses != 2 { // one before-solve, one after-solve for the single class
		t.Errorf("first decision: %d memo misses, want 2 (hits %d)", misses, hits)
	}
	if _, _, err := sc.decide(spec, candidatesFrom(members)); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := sc.CacheStats()
	if misses2 != misses {
		t.Errorf("repeat decision re-solved: misses %d -> %d", misses, misses2)
	}
	if hits2 != hits+2 {
		t.Errorf("repeat decision: hits %d -> %d, want +2", hits, hits2)
	}
}
