package fleet

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/roofline"
)

// near checks a GFLOPS value against a hand-derived paper-model figure.
func near(got, want float64) bool { return math.Abs(got-want) < 0.5 }

func mustRoofline(t *testing.T, s AppSpec) roofline.App {
	t.Helper()
	app, err := s.rooflineApp()
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestScorerSolveTotalPaperModel pins the hand-derived optima on the
// paper's 4-node x 8-core machine (peak 10 GFLOPS/core, 32 GB/s/node):
// a lone memory-bound app saturates node bandwidth at 64 GFLOPS, the
// {mem, comp} pair fills each node to its 80 GFLOPS peak, and each
// additional memory-bound app steals a compute core (Table I's mix of
// three of them lands at 254).
func TestScorerSolveTotalPaperModel(t *testing.T) {
	m := machine.PaperModel()
	sc := NewScorer()
	cases := []struct {
		name string
		mem  int
		comp int
		want float64
	}{
		{"empty", 0, 0, 0},
		{"mem", 1, 0, 64},
		{"4mem", 4, 0, 64},
		{"mem+comp", 1, 1, 320},
		{"2mem+comp", 2, 1, 292},
		{"3mem+comp", 3, 1, 254},
		{"4mem+comp", 4, 1, 216},
	}
	for _, tc := range cases {
		var demand []roofline.App
		for i := 0; i < tc.mem; i++ {
			demand = append(demand, mustRoofline(t, memSpec("mem")))
		}
		for i := 0; i < tc.comp; i++ {
			demand = append(demand, mustRoofline(t, compSpec("comp")))
		}
		got, err := sc.SolveTotal(m, demand)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !near(got, tc.want) {
			t.Errorf("%s: solved %g GFLOPS, want ~%g", tc.name, got, tc.want)
		}
	}
}

// TestScorerMarginal checks the placement score is the aggregate delta:
// a compute-bound app arriving on a machine already running one
// memory-bound app is worth +256 (64 -> 320), while a second
// memory-bound app on the same machine is worth nothing (bandwidth is
// already saturated).
func TestScorerMarginal(t *testing.T) {
	m := machine.PaperModel()
	sc := NewScorer()
	base := []roofline.App{mustRoofline(t, memSpec("mem"))}

	marginal, after, err := sc.Marginal(m, base, mustRoofline(t, compSpec("comp")))
	if err != nil {
		t.Fatal(err)
	}
	if !near(marginal, 256) || !near(after, 320) {
		t.Errorf("comp onto {mem}: marginal %g after %g, want ~256 / ~320", marginal, after)
	}

	marginal, after, err = sc.Marginal(m, base, mustRoofline(t, memSpec("mem-2")))
	if err != nil {
		t.Fatal(err)
	}
	if !near(marginal, 0) || !near(after, 64) {
		t.Errorf("mem onto {mem}: marginal %g after %g, want ~0 / ~64", marginal, after)
	}
}
