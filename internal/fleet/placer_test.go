package fleet

import (
	"testing"

	"repro/internal/machine"
)

// emptyMembers builds n healthy paper-model members named a, b, c, ...
func emptyMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: string(rune('a' + i)), Topology: machine.PaperModel()}
	}
	return out
}

// place decides and commits, simulating a placement sequence.
func place(t *testing.T, sc *Scorer, cands []*candidate, spec AppSpec) *Decision {
	t.Helper()
	d, c, err := sc.decide(spec, cands)
	if err != nil {
		t.Fatalf("placing %s: %v", spec.Name, err)
	}
	c.commit(spec)
	return d
}

// TestDecideGreedyMarginalPacking walks the fleet-sized Table I mix
// through three empty machines and checks every individual decision:
// memory-bound apps spread one per machine (equal +64 scores tie-break
// to the emptiest), the compute apps pair up with memory apps to fill
// nodes to peak (+256), and once every machine hosts the {mem, comp}
// pair, further memory apps pile onto one machine where their marginal
// is zero instead of costing -28 elsewhere.
func TestDecideGreedyMarginalPacking(t *testing.T) {
	sc := NewScorer()
	cands := candidatesFrom(emptyMembers(3))
	want := []struct {
		spec   AppSpec
		member string
		score  float64
	}{
		{memSpec("mem-1"), "a", 64},
		{memSpec("mem-2"), "b", 64},
		{memSpec("mem-3"), "c", 64},
		{compSpec("comp-1"), "a", 256},
		{compSpec("comp-2"), "b", 256},
		{memSpec("mem-4"), "c", 0},
		{memSpec("mem-5"), "c", 0},
		{memSpec("mem-6"), "c", 0},
	}
	for _, w := range want {
		d := place(t, sc, cands, w.spec)
		if d.Member != w.member || !near(d.Score, w.score) {
			t.Fatalf("%s: placed on %s (score %g), want %s (~%g)",
				w.spec.Name, d.Member, d.Score, w.member, w.score)
		}
	}
}

// TestDecideAntiAffinity pins the NUMA-bad rule: a machine already
// hosting a NUMA-bad demand set is avoided by the next NUMA-bad app
// even when its raw score ties, and the rule softens — rather than
// rejects — when every machine already hosts one.
func TestDecideAntiAffinity(t *testing.T) {
	sc := NewScorer()
	cands := candidatesFrom(emptyMembers(2))

	d := place(t, sc, cands, badSpec("bad-1"))
	if d.Member != "a" {
		t.Fatalf("first numa-bad app on %s, want a (tie to lowest ID)", d.Member)
	}
	d = place(t, sc, cands, badSpec("bad-2"))
	if d.Member != "b" {
		t.Fatalf("second numa-bad app on %s, want b (anti-affinity)", d.Member)
	}
	// Both machines now host a NUMA-bad set; the rule is soft, so a
	// third still places somewhere instead of erroring.
	if d, _, err := sc.decide(badSpec("bad-3"), cands); err != nil {
		t.Fatalf("soft anti-affinity rejected: %v", err)
	} else if d.Member == "" {
		t.Fatal("no member chosen")
	}
}

// TestDecideSkipsHomeNodeOutOfRange: a NUMA-bad app whose home node
// does not exist on any machine has no candidate.
func TestDecideSkipsHomeNodeOutOfRange(t *testing.T) {
	sc := NewScorer()
	spec := badSpec("bad")
	spec.HomeNode = 99
	if _, _, err := sc.decide(spec, candidatesFrom(emptyMembers(2))); err != ErrNoCandidate {
		t.Fatalf("err = %v, want ErrNoCandidate", err)
	}
}

// TestCandidatesExcludeUnhealthyAndDraining: dead, topology-less, and
// draining members never receive placements.
func TestCandidatesExcludeUnhealthyAndDraining(t *testing.T) {
	members := emptyMembers(3)
	members[0].Dead = true
	members[1].Draining = true
	cands := candidatesFrom(members)
	if len(cands) != 1 || cands[0].id != "c" {
		t.Fatalf("candidates = %v, want only c", cands)
	}
	members[2].Topology = nil // never polled successfully
	if got := candidatesFrom(members); len(got) != 0 {
		t.Fatalf("%d candidates from an all-unplaceable fleet, want 0", len(got))
	}
	sc := NewScorer()
	if _, _, err := sc.decide(memSpec("mem"), nil); err != ErrNoCandidate {
		t.Fatalf("err = %v, want ErrNoCandidate", err)
	}
}

// TestDecideDomainSpreadTieBreak: two empty machines tie on score; with
// domain-spread on, the one whose failure domain hosts fewer of the
// app's cooperating group wins, overriding the lowest-ID rule. With
// spread off the decision is the classic one — the bit-identical
// baseline the equivalence-class cache depends on.
func TestDecideDomainSpreadTieBreak(t *testing.T) {
	members := emptyMembers(3)
	members[0].Domain, members[1].Domain, members[2].Domain = "rack1", "rack1", "rack2"
	// a (rack1) already hosts grp-1, so rack1 is the crowded domain; b
	// (rack1) and c (rack2) are empty and tie at +64.
	members[0].Apps = []PlacedApp{{ID: "x1", Name: "grp-1", AI: 0.5}}

	off := NewScorer()
	d, _, err := off.decide(memSpec("grp-2"), candidatesFrom(members))
	if err != nil {
		t.Fatal(err)
	}
	if d.Member != "b" {
		t.Fatalf("spread off: placed on %s, want b (lowest-ID tie-break)", d.Member)
	}

	on := NewScorer()
	on.DomainSpread = true
	var cs candidateSet
	d, c, err := on.decide(memSpec("grp-2"), cs.reset(members, true, true))
	if err != nil {
		t.Fatal(err)
	}
	if d.Member != "c" || !near(d.Score, 64) {
		t.Fatalf("spread on: placed on %s (score %g), want c in the empty domain (~64)", d.Member, d.Score)
	}
	// An app from a different group ignores grp's domain counts: b wins
	// again once c is committed (b empty at 64 beats everything).
	c.commit(memSpec("grp-2"))
	if d, _, err = on.decide(memSpec("other"), cs.out); err != nil {
		t.Fatal(err)
	}
	if d.Member != "b" {
		t.Fatalf("unrelated app placed on %s, want b (score wins before spread)", d.Member)
	}
}

// TestDecideRejectsInvalidSpec: a non-positive AI cannot be scored.
func TestDecideRejectsInvalidSpec(t *testing.T) {
	sc := NewScorer()
	if _, _, err := sc.decide(AppSpec{Name: "zero"}, candidatesFrom(emptyMembers(1))); err == nil {
		t.Fatal("zero-AI spec accepted")
	}
}
