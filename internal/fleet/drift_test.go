package fleet

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/ctrlplane"
	"repro/internal/machine"
)

// newRecalCoopd is newCoopd with the adaptive loop on and tuned for
// test speed: single-sample windows, two windows to confirm drift.
func newRecalCoopd(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := ctrlplane.NewServer(ctrlplane.ServerConfig{
		Machine:     machine.PaperModel(),
		DefaultTTL:  10 * time.Minute,
		Recalibrate: true,
		Adapt:       adapt.Config{Window: 1, Alpha: 0.5, ConfirmWindows: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// TestRebalanceMovesDriftedApp: an app declared memory-bound (AI 0.5)
// but measured compute-bound (AI 10) is confirmed drifted by its
// machine's coopd; the rebalancer consumes the drift flag from the
// inventory and re-places the app — with its fitted spec — onto the
// machine where the measured behaviour scores best.
func TestRebalanceMovesDriftedApp(t *testing.T) {
	ctx := context.Background()
	a, b := newRecalCoopd(t), newCoopd(t)
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil), FailAfter: 2})
	if err := inv.Add("a", a.URL); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("b", b.URL); err != nil {
		t.Fatal(err)
	}
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []AppSpec{memSpec("mem-a"), memSpec("mem-b"), memSpec("mem-c")} {
		if _, err := cli.Register(ctx, spec.registerRequest()); err != nil {
			t.Fatal(err)
		}
	}
	// The wolf declares memory-bound and measures compute-bound.
	wolf, err := cli.Register(ctx, memSpec("wolf").registerRequest())
	if err != nil {
		t.Fatal(err)
	}
	drifted := false
	for i := 0; i < 10 && !drifted; i++ {
		resp, err := cli.Report(ctx, ctrlplane.ReportRequest{
			ID:      wolf.ID,
			Samples: []ctrlplane.ReportSample{{GFLOPS: 290, GBps: 29, Threads: 29}},
		})
		if err != nil {
			t.Fatal(err)
		}
		drifted = resp.Drifted
	}
	if !drifted {
		t.Fatal("wolf never confirmed drifted")
	}

	sc := NewScorer()
	reb := &Rebalancer{
		Inv:              inv,
		Placer:           &Placer{Inv: inv, Scorer: sc, Logf: t.Logf},
		Scorer:           sc,
		MaxMovesPerRound: 4,
		Logf:             t.Logf,
	}
	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 {
		t.Fatalf("planned %d moves, want exactly the drifted app: %+v", len(plan.Moves), plan.Moves)
	}
	mv := plan.Moves[0]
	if mv.Reason != ReasonDrift || mv.AppID != wolf.ID || mv.From != "a" || mv.To != "b" {
		t.Fatalf("move %+v, want drift %s a -> b", mv, wolf.ID)
	}
	if mv.App.AI != 10 {
		t.Fatalf("re-placed with AI %v, want the fitted 10", mv.App.AI)
	}

	inv.Poll(ctx)
	ma, _ := inv.Member("a")
	mb, _ := inv.Member("b")
	if len(ma.Apps) != 3 || len(mb.Apps) != 1 {
		t.Fatalf("apps after drift move: a=%d b=%d, want 3/1", len(ma.Apps), len(mb.Apps))
	}
	// The wolf alone on b, declared at its measured AI 10, is
	// compute-bound across the whole machine: ~320 GFLOPS.
	if mb.TotalGFLOPS < 315 || mb.TotalGFLOPS > 325 {
		t.Fatalf("b serves %g GFLOPS, want ~320 for the re-declared wolf", mb.TotalGFLOPS)
	}

	// Fixed point: the re-placed wolf declares its measured model, so the
	// next round finds nothing drifted and nothing imbalanced.
	again, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Moves) != 0 {
		t.Fatalf("steady state still churns: %+v", again.Moves)
	}
}

// TestPlanDriftStaysPutWhenNoGain: a drifted app whose best alternative
// placement does not beat keeping it in place is left alone — drift
// alone is not a reason to churn.
func TestPlanDriftStaysPutWhenNoGain(t *testing.T) {
	ctx := context.Background()
	a, b := newRecalCoopd(t), newCoopd(t)
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil), FailAfter: 2})
	if err := inv.Add("a", a.URL); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("b", b.URL); err != nil {
		t.Fatal(err)
	}
	// b is fully loaded with the Table I mix; a hosts only the drifted
	// app, which already has its machine to itself.
	clb, err := inv.Client("b")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []AppSpec{memSpec("mem-a"), memSpec("mem-b"), memSpec("mem-c"), compSpec("comp")} {
		if _, err := clb.Register(ctx, spec.registerRequest()); err != nil {
			t.Fatal(err)
		}
	}
	cla, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	solo, err := cla.Register(ctx, memSpec("solo").registerRequest())
	if err != nil {
		t.Fatal(err)
	}
	drifted := false
	for i := 0; i < 10 && !drifted; i++ {
		resp, err := cla.Report(ctx, ctrlplane.ReportRequest{
			ID:      solo.ID,
			Samples: []ctrlplane.ReportSample{{GFLOPS: 290, GBps: 29, Threads: 29}},
		})
		if err != nil {
			t.Fatal(err)
		}
		drifted = resp.Drifted
	}
	if !drifted {
		t.Fatal("solo never confirmed drifted")
	}

	sc := NewScorer()
	reb := &Rebalancer{
		Inv:              inv,
		Placer:           &Placer{Inv: inv, Scorer: sc, Logf: t.Logf},
		Scorer:           sc,
		MaxMovesPerRound: 4,
		Logf:             t.Logf,
	}
	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range plan.Moves {
		if mv.Reason == ReasonDrift {
			t.Fatalf("gainless drift move planned: %+v", mv)
		}
	}
}
