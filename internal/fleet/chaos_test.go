package fleet

import (
	"context"
	"testing"

	"repro/internal/ctrlplane/client"
	"repro/internal/faultinject"
)

// TestChaosFleetMachineKillAndRevival is the fleet chaos drill behind
// `make fleet-chaos`: a member machine is cut off the network (its
// coopd keeps running — the fleet just cannot reach it), the rebalancer
// re-homes its apps, and then the partition heals. The revived member
// still carries its old registrations, so the fleet must deregister the
// duplicates and re-spread load until the aggregate is back inside the
// imbalance threshold — with every app running exactly once.
func TestChaosFleetMachineKillAndRevival(t *testing.T) {
	ctx := context.Background()
	part := faultinject.NewPartition()
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(part.Transport(nil)),
		FailAfter: 2,
		Logf:      t.Logf,
	})
	coopds := map[string]string{}
	for _, id := range []string{"a", "b", "c"} {
		hs := newCoopd(t)
		coopds[id] = hs.URL
		if err := inv.Add(id, hs.URL); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)
	sc := NewScorer()
	pl := &Placer{Inv: inv, Scorer: sc, Logf: t.Logf}
	reb := &Rebalancer{Inv: inv, Placer: pl, Scorer: sc, MaxMovesPerRound: 4, Logf: t.Logf}

	for _, spec := range tableIMixSpecs() {
		if _, _, err := pl.Place(ctx, spec); err != nil {
			t.Fatalf("placing %s: %v", spec.Name, err)
		}
	}

	// Kill: cut c off. Two failed polls declare it dead; one round then
	// re-homes all four of its apps (cap 4).
	cHost := hostOf(t, coopds["c"])
	part.Isolate(cHost)
	for i := 0; i < 4; i++ {
		if _, err := reb.Round(ctx); err != nil {
			t.Fatalf("kill round %d: %v", i+1, err)
		}
		if c, _ := inv.Member("c"); c.Dead && len(c.Apps) == 0 {
			break
		}
	}
	if part.Drops(cHost) == 0 {
		t.Fatal("partition dropped nothing — the machine was never actually cut off")
	}
	c, _ := inv.Member("c")
	if !c.Dead || len(c.Apps) != 0 || len(c.Stale) != 4 {
		t.Fatalf("after kill rounds: dead=%v apps=%d stale=%d, want evacuated with 4 stale IDs",
			c.Dead, len(c.Apps), len(c.Stale))
	}

	// Heal: c comes back still holding its four old registrations. The
	// next rounds must clean the duplicates and then re-spread until the
	// aggregate is inside the threshold of the re-pack.
	part.Heal(cHost)
	var last *Plan
	cleaned := 0
	for i := 0; i < 10; i++ {
		plan, err := reb.Round(ctx)
		if err != nil {
			t.Fatalf("heal round %d: %v", i+1, err)
		}
		cleaned += len(plan.StaleDeregs)
		last = plan
		t.Logf("heal round %d: %d stale cleaned, %d moves, %d deferred",
			i+1, len(plan.StaleDeregs), len(plan.Moves), plan.Deferred)
		if len(plan.StaleDeregs) == 0 && len(plan.Moves) == 0 && plan.Deferred == 0 {
			break
		}
	}
	if cleaned != 4 {
		t.Fatalf("cleaned %d stale duplicates on the revived member, want 4", cleaned)
	}
	if len(last.Moves) != 0 || last.Deferred != 0 {
		t.Fatalf("fleet did not converge within 10 rounds: %+v", last)
	}

	// Converged state: every app exactly once across the fleet, the
	// revived member back in service, and the aggregate inside the
	// threshold of the optimal three-machine re-pack (~704 GFLOPS).
	inv.Poll(ctx)
	names := map[string]int{}
	apps := 0
	aggregate := 0.0
	for _, m := range inv.Snapshot() {
		if !m.Healthy() {
			t.Fatalf("member %s not healthy after heal: %+v", m.ID, m)
		}
		aggregate += m.TotalGFLOPS
		for _, a := range m.Apps {
			names[a.Name]++
			apps++
		}
	}
	if apps != 8 {
		t.Fatalf("%d apps across the fleet, want exactly 8", apps)
	}
	for name, n := range names {
		if n != 1 {
			t.Fatalf("app %s registered %d times — duplicate survived the cleanup", name, n)
		}
	}
	if aggregate < 0.9*704 {
		t.Fatalf("converged aggregate %g GFLOPS, want within the threshold of the ~704 re-pack", aggregate)
	}

	// Cross-check against each coopd's own registry (the inventory could
	// in principle be lying to us).
	for id, url := range coopds {
		cli := client.New(url, client.Config{})
		resp, err := cli.Apps(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		m, _ := inv.Member(id)
		if len(resp.Apps) != len(m.Apps) {
			t.Fatalf("%s: coopd has %d apps but inventory says %d", id, len(resp.Apps), len(m.Apps))
		}
	}
}
