package fleet

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"errors"
	"math"
	"sync"

	"repro/internal/ctrlplane"
	"repro/internal/machine"
	"repro/internal/roofline"
)

const (
	// appSegBytes is the fixed width of one app's demand-key segment:
	// 8-byte AI float bits, 1 placement byte, 4-byte home node, 8-byte
	// objective weight bits — the fields a solve's optimum can depend
	// on (names and MaxThreads excluded on purpose, see SolveTotal).
	// Weight participates even under the default objective — it is
	// zero for batch apps, so priority-free fleets key exactly as they
	// would without it, while a weighted-objective Scorer can never
	// alias two demand sets differing only in class.
	appSegBytes = 21
	// maxSolveCacheEntries bounds the fleet-wide solve memo. 4096
	// distinct (topology, demand multiset) classes is far beyond what a
	// steady fleet produces in one planning horizon; the LRU keeps the
	// hot classes resident across Placer decisions and Rebalancer
	// rounds.
	maxSolveCacheEntries = 4096
	// maxTopoEntries bounds the pointer-keyed topology-hash memo; past
	// it the map is simply dropped (hashes recompute in microseconds).
	maxTopoEntries = 8192
)

// solveOutcome is one memoized fleet-semantics solve: the aggregate and
// the optimum per-node counts, kept as the warm-start hint for the ±1
// neighbour solves Marginal and decide run next.
type solveOutcome struct {
	total  float64
	counts []int
}

type solveEntry struct {
	key string
	out solveOutcome
}

// scoreScratch is the per-call reusable state of the scoring hot path:
// the key build buffer and the demand+app slice, pooled so a placement
// decision allocates nothing for either.
type scoreScratch struct {
	key  []byte
	with []roofline.App
}

// Scorer computes placement scores with the same solve semantics the
// coopd allocator uses, so the fleet's predicted aggregate matches what
// the machines actually serve: BestPerNodeCountsFloor with a floor of
// one thread per app per node (no starvation), falling back to floor
// zero when the floors alone over-subscribe a node.
//
// Solves are memoized fleet-wide by machine equivalence class — the
// pair (topology hash, sorted demand-key multiset). Two machines with
// identical topologies running interchangeable demand sets share one
// solve, so a homogeneous 10k-machine fleet costs one branch-and-bound
// per *class* per decision, not one per machine. The memo is
// content-addressed: registering or moving an app changes a machine's
// demand multiset and therefore its key, so no explicit invalidation
// exists or is needed — stale classes simply age out of the bounded
// LRU. Cache misses warm-start the branch-and-bound from the memoized
// optimum of the ±1-app neighbour when one is at hand
// (roofline.BestPerNodeCountsFloorFrom), which cannot change the
// result. One Scorer is safe for concurrent use.
type Scorer struct {
	// DomainSpread enables the failure-domain anti-affinity tie-break:
	// when several machines tie on marginal GFLOPS, the decision prefers
	// the one whose failure domain hosts the fewest members of the app's
	// cooperating group (apps sharing a name prefix), so a whole-rack
	// loss never takes the whole group. Domain never outranks score —
	// with the flag off, decisions are bit-identical to the spread-free
	// path, and the solve memo below is domain-free either way (solves
	// depend only on topology and demand, so the PR-8 cache stays
	// sound). Set before use; not safe to flip concurrently with
	// decisions.
	DomainSpread bool

	// Objective selects the per-machine optimization objective; nil
	// means roofline.ObjTotalGFLOPS, which is bit-identical to the
	// historical total-GFLOPS scorer. Under any other objective every
	// solveOutcome.total — and therefore every marginal, placement
	// score, and Plan aggregate — is in that objective's units, and
	// decisions maximize it instead of raw throughput. The solve memo
	// stays sound because one Scorer has one fixed objective and the
	// demand-key segments include the per-app objective weight. Set
	// before use; not safe to flip concurrently with decisions.
	Objective roofline.ObjectiveSpec

	search roofline.Search

	mu      sync.Mutex
	topo    map[*machine.Machine]uint64
	entries map[string]*list.Element
	lru     *list.List // of *solveEntry, front = most recent
	hits    uint64
	misses  uint64

	scratch sync.Pool // of *scoreScratch
}

// NewScorer returns a ready Scorer.
func NewScorer() *Scorer { return &Scorer{} }

// CacheStats reports the solve memo's cumulative hit/miss counters —
// the dedup observability hook for tests and benchmarks.
func (sc *Scorer) CacheStats() (hits, misses uint64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.hits, sc.misses
}

func (sc *Scorer) getScratch() *scoreScratch {
	if s, _ := sc.scratch.Get().(*scoreScratch); s != nil {
		return s
	}
	return &scoreScratch{}
}

func (sc *Scorer) putScratch(s *scoreScratch) { sc.scratch.Put(s) }

// topoHash returns ctrlplane.TopologyHash memoized by machine pointer:
// inventory snapshots hand the same *Machine to every scoring call
// until a re-poll replaces it, so the steady state never re-hashes.
func (sc *Scorer) topoHash(m *machine.Machine) uint64 {
	sc.mu.Lock()
	if h, ok := sc.topo[m]; ok {
		sc.mu.Unlock()
		return h
	}
	sc.mu.Unlock()
	h := ctrlplane.TopologyHash(m)
	sc.mu.Lock()
	if sc.topo == nil {
		sc.topo = make(map[*machine.Machine]uint64)
	} else if len(sc.topo) >= maxTopoEntries {
		clear(sc.topo)
	}
	sc.topo[m] = h
	sc.mu.Unlock()
	return h
}

// appendAppSeg appends app's fixed-width demand-key segment.
func appendAppSeg(b []byte, a *roofline.App) []byte {
	var seg [appSegBytes]byte
	binary.BigEndian.PutUint64(seg[0:8], math.Float64bits(a.AI))
	seg[8] = byte(a.Placement)
	binary.BigEndian.PutUint32(seg[9:13], uint32(int32(a.HomeNode)))
	binary.BigEndian.PutUint64(seg[13:21], math.Float64bits(a.Weight))
	return append(b, seg[:]...)
}

// sortAppSegs sorts concatenated fixed-width segments in place
// (insertion sort: demand sets are small and arrive mostly sorted, and
// fixed-width chunks need no offset bookkeeping).
func sortAppSegs(b []byte) {
	n := len(b) / appSegBytes
	var tmp [appSegBytes]byte
	for i := 1; i < n; i++ {
		copy(tmp[:], b[i*appSegBytes:])
		j := i
		for j > 0 && bytes.Compare(b[(j-1)*appSegBytes:j*appSegBytes], tmp[:]) > 0 {
			copy(b[j*appSegBytes:], b[(j-1)*appSegBytes:j*appSegBytes])
			j--
		}
		copy(b[j*appSegBytes:], tmp[:])
	}
}

// appendSolveKey appends the canonical equivalence-class key of
// (machine, demand): the topology hash followed by the demand segments
// in sorted order. Apps with equal segments are interchangeable to the
// solver, and the solved aggregate is order-independent, so permuted
// demand sets deliberately collide.
func appendSolveKey(dst []byte, topoHash uint64, demand []roofline.App) []byte {
	var h [8]byte
	binary.BigEndian.PutUint64(h[:], topoHash)
	dst = append(dst, h[:]...)
	for i := range demand {
		dst = appendAppSeg(dst, &demand[i])
	}
	sortAppSegs(dst[8:])
	return dst
}

// lookup fetches the memoized outcome for key, refreshing its LRU slot.
func (sc *Scorer) lookup(key []byte) (solveOutcome, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if el, ok := sc.entries[string(key)]; ok {
		sc.lru.MoveToFront(el)
		sc.hits++
		return el.Value.(*solveEntry).out, true
	}
	sc.misses++
	return solveOutcome{}, false
}

// store memoizes out under key, evicting the coldest entries past the
// bound.
func (sc *Scorer) store(key []byte, out solveOutcome) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.entries == nil {
		sc.entries = make(map[string]*list.Element)
		sc.lru = list.New()
	}
	if el, ok := sc.entries[string(key)]; ok {
		el.Value.(*solveEntry).out = out
		sc.lru.MoveToFront(el)
		return
	}
	k := string(key)
	sc.entries[k] = sc.lru.PushFront(&solveEntry{key: k, out: out})
	for sc.lru.Len() > maxSolveCacheEntries {
		el := sc.lru.Back()
		sc.lru.Remove(el)
		delete(sc.entries, el.Value.(*solveEntry).key)
	}
}

// solveDemand is the memoized fleet-semantics solve. hint, when
// non-nil, warm-starts a cache miss from a ±1-app neighbour's optimum
// (it cannot change the result — see BestPerNodeCountsFloorFrom).
// Errors are not cached: they are rare (invalid demand) and re-solving
// keeps the memo free of negative entries.
func (sc *Scorer) solveDemand(m *machine.Machine, demand []roofline.App, hint []int, s *scoreScratch) (solveOutcome, error) {
	if len(demand) == 0 {
		return solveOutcome{}, nil
	}
	s.key = appendSolveKey(s.key[:0], sc.topoHash(m), demand)
	if out, ok := sc.lookup(s.key); ok {
		return out, nil
	}
	spec := sc.Objective
	if spec == nil {
		spec = roofline.ObjTotalGFLOPS
	}
	counts, _, res, err := sc.search.BestPerNodeCountsFloorSpec(spec, hint, m, demand, 1)
	if errors.Is(err, roofline.ErrNoAllocation) {
		counts, _, res, err = sc.search.BestPerNodeCountsFloorSpec(spec, hint, m, demand, 0)
	}
	if err != nil {
		return solveOutcome{}, err
	}
	total := res.TotalGFLOPS
	if spec != roofline.ObjTotalGFLOPS {
		// Non-default objectives score in their own units (weighted
		// GFLOPS, min-app GFLOPS); the default path never builds the
		// closure.
		total = spec.Objective(demand)(res)
	}
	out := solveOutcome{total: total, counts: append([]int(nil), counts...)}
	sc.store(s.key, out)
	return out, nil
}

// SolveTotal returns the machine's aggregate GFLOPS for the demand set
// under the fleet's solve semantics. An empty demand set scores zero.
// Note MaxThreads caps are not applied here: the cap trims a single
// app's share after the solve on the machine itself, while the fleet
// scores the uncapped optimum — a deliberate simplification documented
// in DESIGN.md (caps are rare and machine-local).
func (sc *Scorer) SolveTotal(m *machine.Machine, demand []roofline.App) (float64, error) {
	s := sc.getScratch()
	defer sc.putScratch(s)
	out, err := sc.solveDemand(m, demand, nil, s)
	return out.total, err
}

// Marginal returns the placement score of adding app to a machine with
// the given demand set: solved aggregate after minus before. It can be
// negative — a memory-bound app joining a compute-heavy machine drags
// the optimum down — and the Placer uses exactly that to steer the app
// to the bin where it costs the least (or helps the most).
func (sc *Scorer) Marginal(m *machine.Machine, demand []roofline.App, app roofline.App) (marginal, after float64, err error) {
	s := sc.getScratch()
	defer sc.putScratch(s)
	before, err := sc.solveDemand(m, demand, nil, s)
	if err != nil {
		return 0, 0, err
	}
	s.with = append(append(s.with[:0], demand...), app)
	afterOut, err := sc.solveDemand(m, s.with, before.counts, s)
	if err != nil {
		return 0, 0, err
	}
	return afterOut.total - before.total, afterOut.total, nil
}

// classResult is one equivalence class's scored outcome within a single
// decision: the marginal, the predicted after, or the fact that the
// class's solve failed (its candidates are skipped, matching the
// per-machine error semantics of the unmemoized path).
type classResult struct {
	score  float64
	after  float64
	failed bool
}

// scoreClass computes one class representative's marginal for app.
func (sc *Scorer) scoreClass(m *machine.Machine, demand []roofline.App, app roofline.App, s *scoreScratch) classResult {
	before, err := sc.solveDemand(m, demand, nil, s)
	if err != nil {
		return classResult{failed: true}
	}
	s.with = append(append(s.with[:0], demand...), app)
	after, err := sc.solveDemand(m, s.with, before.counts, s)
	if err != nil {
		return classResult{failed: true}
	}
	return classResult{score: after.total - before.total, after: after.total}
}
