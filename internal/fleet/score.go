package fleet

import (
	"errors"

	"repro/internal/machine"
	"repro/internal/roofline"
)

// Scorer computes placement scores with the same solve semantics the
// coopd allocator uses, so the fleet's predicted aggregate matches what
// the machines actually serve: BestPerNodeCountsFloor with a floor of
// one thread per app per node (no starvation), falling back to floor
// zero when the floors alone over-subscribe a node. One Scorer is safe
// for concurrent use (roofline.Search pools evaluators internally).
type Scorer struct {
	search roofline.Search
}

// NewScorer returns a ready Scorer.
func NewScorer() *Scorer { return &Scorer{} }

// SolveTotal returns the machine's aggregate GFLOPS for the demand set
// under the fleet's solve semantics. An empty demand set scores zero.
// Note MaxThreads caps are not applied here: the cap trims a single
// app's share after the solve on the machine itself, while the fleet
// scores the uncapped optimum — a deliberate simplification documented
// in DESIGN.md (caps are rare and machine-local).
func (sc *Scorer) SolveTotal(m *machine.Machine, demand []roofline.App) (float64, error) {
	if len(demand) == 0 {
		return 0, nil
	}
	_, _, res, err := sc.search.BestPerNodeCountsFloor(m, demand, nil, 1)
	if errors.Is(err, roofline.ErrNoAllocation) {
		_, _, res, err = sc.search.BestPerNodeCountsFloor(m, demand, nil, 0)
	}
	if err != nil {
		return 0, err
	}
	return res.TotalGFLOPS, nil
}

// Marginal returns the placement score of adding app to a machine with
// the given demand set: solved aggregate after minus before. It can be
// negative — a memory-bound app joining a compute-heavy machine drags
// the optimum down — and the Placer uses exactly that to steer the app
// to the bin where it costs the least (or helps the most).
func (sc *Scorer) Marginal(m *machine.Machine, demand []roofline.App, app roofline.App) (marginal, after float64, err error) {
	before, err := sc.SolveTotal(m, demand)
	if err != nil {
		return 0, 0, err
	}
	with := make([]roofline.App, 0, len(demand)+1)
	with = append(with, demand...)
	with = append(with, app)
	after, err = sc.SolveTotal(m, with)
	if err != nil {
		return 0, 0, err
	}
	return after - before, after, nil
}
