package fleet

import (
	"context"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/machine"
)

// gangFleet starts n paper-model machines a, b, c, ... behind a
// partition fabric, assigning domains round-robin over domainCount
// labels (0 = every machine its own domain).
func gangFleet(t *testing.T, n, domainCount int) (*Inventory, *Placer, *faultinject.Partition, []string) {
	t.Helper()
	ctx := context.Background()
	part := faultinject.NewPartition()
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(part.Transport(nil)),
		FailAfter: 1,
		Logf:      t.Logf,
	})
	hosts := make([]string, n)
	for i := 0; i < n; i++ {
		hs := newCoopd(t)
		hosts[i] = hostOf(t, hs.URL)
		id := string(rune('a' + i))
		domain := ""
		if domainCount > 0 {
			domain = "dom-" + string(rune('0'+i%domainCount))
		}
		if err := inv.AddDomain(id, domain, hs.URL); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)
	pl := &Placer{Inv: inv, Scorer: NewScorer(), Logf: t.Logf}
	return inv, pl, part, hosts
}

// TestGangPackCoLocates: a packed gang lands all replicas on one
// machine — the first member's best bin becomes the gang's home.
func TestGangPackCoLocates(t *testing.T) {
	ctx := context.Background()
	inv, pl, _, _ := gangFleet(t, 3, 0)
	res, err := pl.PlaceGang(ctx, GangSpec{
		Name: "coop", Replicas: 3, Policy: GangPack,
		App: AppSpec{AI: 0.5, TTLMillis: testTTL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 3 {
		t.Fatalf("placed %d members, want 3", len(res.Placements))
	}
	home := res.Placements[0].Member
	for _, gp := range res.Placements {
		if gp.Member != home {
			t.Fatalf("pack split the gang across %s and %s", home, gp.Member)
		}
		if !strings.HasPrefix(gp.App.Name, "coop-") {
			t.Fatalf("member named %s, want coop-<i>", gp.App.Name)
		}
	}
	inv.Poll(ctx)
	if n := appsOn(t, inv, home); n != 3 {
		t.Fatalf("home machine hosts %d apps, want the whole gang", n)
	}
}

// TestGangSpreadUsesDistinctDomains: four machines in two domains; a
// two-replica spread gang occupies both domains, and a four-replica one
// wraps around to two members per domain (least-loaded fallback).
func TestGangSpreadUsesDistinctDomains(t *testing.T) {
	ctx := context.Background()
	inv, pl, _, _ := gangFleet(t, 4, 2)
	domainOf := func(member string) string {
		m, ok := inv.Member(member)
		if !ok {
			t.Fatalf("unknown member %s", member)
		}
		return m.Domain
	}
	res, err := pl.PlaceGang(ctx, GangSpec{
		Name: "web", Replicas: 2, Policy: GangSpread,
		App: AppSpec{AI: 0.5, TTLMillis: testTTL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d0, d1 := domainOf(res.Placements[0].Member), domainOf(res.Placements[1].Member); d0 == d1 {
		t.Fatalf("both replicas in domain %s with a second domain free", d0)
	}

	res, err = pl.PlaceGang(ctx, GangSpec{
		Name: "big", Replicas: 4, Policy: GangSpread,
		App: AppSpec{AI: 0.5, TTLMillis: testTTL},
	})
	if err != nil {
		t.Fatal(err)
	}
	perDomain := map[string]int{}
	for _, gp := range res.Placements {
		perDomain[domainOf(gp.Member)]++
	}
	if perDomain["dom-0"] != 2 || perDomain["dom-1"] != 2 {
		t.Fatalf("four replicas spread as %v, want 2 per domain", perDomain)
	}
}

// TestGangStrictSpreadRejectsWhole: three replicas cannot get three
// distinct domains out of two — the gang is rejected and nothing at all
// is registered (atomicity of the reject path).
func TestGangStrictSpreadRejectsWhole(t *testing.T) {
	ctx := context.Background()
	inv, pl, _, _ := gangFleet(t, 4, 2)
	_, err := pl.PlaceGang(ctx, GangSpec{
		Name: "svc", Replicas: 3, Policy: GangStrictSpread,
		App: AppSpec{AI: 0.5, TTLMillis: testTTL},
	})
	if err == nil || !strings.Contains(err.Error(), "no unused failure domain") {
		t.Fatalf("err = %v, want a strict-spread domain exhaustion error", err)
	}
	inv.Poll(ctx)
	for _, id := range []string{"a", "b", "c", "d"} {
		if n := appsOn(t, inv, id); n != 0 {
			t.Fatalf("rejected gang leaked %d registrations onto %s", n, id)
		}
	}
}

// TestGangRollsBackOnMemberDeath is the atomicity differential test:
// machine b is partitioned away after the snapshot poll, so the gang's
// second member dies mid-admission after the first already registered.
// The whole gang must fail and the first member's registration must be
// rolled back — no partial placement survives anywhere in the fleet.
func TestGangRollsBackOnMemberDeath(t *testing.T) {
	ctx := context.Background()
	inv, pl, part, hosts := gangFleet(t, 2, 0)

	// The inventory still believes b is healthy; registration will fail.
	part.Isolate(hosts[1])
	_, err := pl.PlaceGang(ctx, GangSpec{
		Name: "pair", Replicas: 2, Policy: GangSpread,
		App: AppSpec{AI: 0.5, TTLMillis: testTTL},
	})
	if err == nil {
		t.Fatal("gang admitted with a member machine unreachable")
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("err = %v, want a rollback report", err)
	}

	// Heal and verify from the machines themselves: neither coopd holds
	// any gang registration.
	part.Heal(hosts[1])
	inv.Poll(ctx)
	for _, id := range []string{"a", "b"} {
		if n := appsOn(t, inv, id); n != 0 {
			t.Fatalf("partial gang survived: %s hosts %d apps", id, n)
		}
	}
}

// TestGangPreemptsForHigherClass: machines a and b are full of batch
// work at their floor capacity, c is empty. A two-replica latency gang
// spreads: the first member takes c, the second preempts the cheapest
// batch app off a full machine instead of starving there.
func TestGangPreemptsForHigherClass(t *testing.T) {
	ctx := context.Background()
	tiny := func(name string) *machine.Machine { return machine.Uniform(name, 2, 2, 10, 32, 0) }
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil), FailAfter: 2})
	for _, id := range []string{"a", "b", "c"} {
		if err := inv.Add(id, newCoopdOn(t, tiny("tiny-"+id)).URL); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)
	registerWithPriority(t, inv, "a", memSpec("batch-1"))
	registerWithPriority(t, inv, "a", memSpec("batch-2"))
	registerWithPriority(t, inv, "b", memSpec("batch-3"))
	registerWithPriority(t, inv, "b", memSpec("batch-4"))
	inv.Poll(ctx)
	pl := &Placer{Inv: inv, Scorer: NewScorer(), Logf: t.Logf}

	res, err := pl.PlaceGang(ctx, GangSpec{
		Name: "lat", Replicas: 2, Policy: GangSpread,
		App: AppSpec{AI: 0.5, TTLMillis: testTTL, Priority: PriorityLatency},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 2 {
		t.Fatalf("placed %d members, want 2", len(res.Placements))
	}
	if res.Placements[0].Member == res.Placements[1].Member {
		t.Fatalf("spread gang co-located on %s", res.Placements[0].Member)
	}
	if len(res.Preempted) == 0 {
		t.Fatal("no preemption with every non-empty machine at floor capacity")
	}
	for _, mv := range res.Preempted {
		if mv.Reason != ReasonPreempt || mv.App.Priority == PriorityLatency {
			t.Fatalf("victim move %+v, want a batch preempt", mv)
		}
	}

	// Post-state: no machine over its floor capacity of 2, and the gang
	// members kept their class.
	inv.Poll(ctx)
	total := 0
	for _, id := range []string{"a", "b", "c"} {
		m, _ := inv.Member(id)
		if len(m.Apps) > 2 {
			t.Fatalf("%s hosts %d apps, above its floor capacity 2", id, len(m.Apps))
		}
		for _, app := range m.Apps {
			total++
			if strings.HasPrefix(app.Name, "lat-") && app.Priority != PriorityLatency {
				t.Fatalf("gang member %s lost its class: %+v", app.Name, app)
			}
		}
	}
	if total != 6 {
		t.Fatalf("fleet hosts %d apps, want all 6 (4 batch + 2 gang)", total)
	}

	// With preemption disabled the same gang still admits, but starves
	// instead of evicting: no victims move.
	pl2 := &Placer{Inv: inv, Scorer: NewScorer(), DisablePreemption: true, Logf: t.Logf}
	res2, err := pl2.PlaceGang(ctx, GangSpec{
		Name: "lat2", Replicas: 2, Policy: GangSpread,
		App: AppSpec{AI: 0.5, TTLMillis: testTTL, Priority: PriorityLatency},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Preempted) != 0 {
		t.Fatalf("preempted %+v with preemption disabled", res2.Preempted)
	}
}
