package fleet

import "fmt"

// Priority classes, ordered system > latency > batch. The class rides
// on AppSpec/PlacedApp and drives two things: the preemption pass (a
// higher-class app that cannot be admitted floor-feasibly evicts the
// cheapest lower-class victims) and the per-app weight under the
// weighted-priority objective. The member coopd never sees the class —
// priority is a fleet-level scheduling concept, tracked by the
// Inventory across polls.
const (
	// PrioritySystem is fleet-critical work that outranks everything.
	PrioritySystem = "system"
	// PriorityLatency is latency-sensitive serving work: it outranks
	// batch and must not be starved while batch holds floor capacity
	// (the no-priority-inversion property fleetsim checks).
	PriorityLatency = "latency"
	// PriorityBatch is throughput work, the default: preemptible by
	// the classes above, never preempting anything itself.
	PriorityBatch = "batch"
)

// ClassRank orders priority classes for preemption decisions; the empty
// class means batch. Higher outranks lower.
func ClassRank(p string) int {
	switch p {
	case PrioritySystem:
		return 2
	case PriorityLatency:
		return 1
	default:
		return 0
	}
}

// classWeight maps a priority class to the roofline App.Weight used by
// the weighted-priority objective. Batch (and the empty default) maps
// to zero — the "unset" weight, scored as 1 — so priority-free fleets
// produce demand sets, cache keys, and decisions bit-identical to the
// pre-priority code under the default objective.
func classWeight(p string) float64 {
	switch p {
	case PrioritySystem:
		return 16
	case PriorityLatency:
		return 4
	default:
		return 0
	}
}

// CheckPriority validates a wire/CLI priority string.
func CheckPriority(p string) error {
	switch p {
	case "", PriorityBatch, PriorityLatency, PrioritySystem:
		return nil
	}
	return fmt.Errorf("fleet: unknown priority %q (have %s, %s, %s)",
		p, PrioritySystem, PriorityLatency, PriorityBatch)
}
