package fleet

import (
	"context"
	"fmt"
)

// Move reasons, stable strings carried on the wire.
const (
	// ReasonMachineLost re-homes an app whose machine stopped answering.
	ReasonMachineLost = "machine-lost"
	// ReasonDrain empties a member marked draining.
	ReasonDrain = "drain"
	// ReasonRebalance closes an imbalance gap against the greedy re-pack.
	ReasonRebalance = "rebalance"
	// ReasonDrift re-places an app whose measured demand model drifted
	// from its declaration: the placement decision was made on stale
	// inputs, so it is re-taken with the fitted model.
	ReasonDrift = "drift"
)

// Move is one planned app relocation.
type Move struct {
	// AppID is the app's ID on the source machine (its registration
	// there; the target assigns a fresh ID).
	AppID string `json:"app_id"`
	// App is the spec re-registered on the target.
	App AppSpec `json:"app"`
	// From and To are member IDs. From's registration is dropped (or
	// already gone, for a lost machine).
	From string `json:"from"`
	To   string `json:"to"`
	// Reason is one of the Reason* constants.
	Reason string `json:"reason"`
	// Score is the marginal aggregate GFLOPS of the placement on To.
	Score float64 `json:"score"`
}

// StaleDereg is a duplicate registration left on a revived member: the
// app was re-homed while the member was dead, so the old local copy
// must be deregistered.
type StaleDereg struct {
	Member string `json:"member"`
	AppID  string `json:"app_id"`
}

// Plan is one rebalance round's decisions.
type Plan struct {
	Moves []Move `json:"moves,omitempty"`
	// Deferred counts moves the per-round bound pushed to later rounds.
	Deferred int `json:"deferred,omitempty"`
	// StaleDeregs are duplicate cleanups on revived members (not
	// counted against the move bound — they free capacity, never churn
	// it).
	StaleDeregs []StaleDereg `json:"stale_deregs,omitempty"`
	// CurrentGFLOPS is the solved aggregate over healthy members'
	// demand sets; RepackGFLOPS is the aggregate of the greedy
	// from-scratch re-pack the imbalance check compares against.
	CurrentGFLOPS float64 `json:"current_gflops"`
	RepackGFLOPS  float64 `json:"repack_gflops"`
}

// Rebalancer turns inventory drift — dead machines, draining members,
// imbalance — into bounded move plans and executes them.
type Rebalancer struct {
	Inv    *Inventory
	Placer *Placer
	Scorer *Scorer
	// MaxMovesPerRound bounds churn per round (default 4).
	MaxMovesPerRound int
	// Threshold triggers the imbalance pass when the current aggregate
	// falls below Threshold x the greedy re-pack (default 0.9).
	Threshold float64
	// Logf, when set, receives move logs.
	Logf func(format string, args ...any)
}

func (r *Rebalancer) maxMoves() int {
	if r.MaxMovesPerRound > 0 {
		return r.MaxMovesPerRound
	}
	return 4
}

func (r *Rebalancer) threshold() float64 {
	if r.Threshold > 0 {
		return r.Threshold
	}
	return 0.9
}

func (r *Rebalancer) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Plan computes one round's moves from the current inventory snapshot
// without executing anything. Priority order: lost machines first (their
// apps are getting no cores at all), then draining members, then — only
// when nothing urgent is pending — the imbalance pass. Every target
// decision runs against a simulated candidate set that accumulates the
// round's earlier moves, so a plan never over-commits one machine.
func (r *Rebalancer) Plan(ctx context.Context) (*Plan, error) {
	members := r.Inv.Snapshot()
	cands := candidatesFrom(members)
	plan := &Plan{}

	// Duplicate cleanup on revived members: app IDs re-homed while the
	// member was dead that its registry still carries.
	for i := range members {
		m := &members[i]
		if !m.Healthy() || len(m.Stale) == 0 {
			continue
		}
		live := map[string]bool{}
		for _, a := range m.Apps {
			live[a.ID] = true
		}
		for _, id := range m.Stale {
			if live[id] {
				plan.StaleDeregs = append(plan.StaleDeregs, StaleDereg{Member: m.ID, AppID: id})
			}
		}
	}

	// Staleness-aware demand: apps listed in StaleDeregs are duplicates,
	// excluded from move planning and the imbalance aggregate.
	dup := map[string]bool{}
	for _, sd := range plan.StaleDeregs {
		dup[sd.Member+"/"+sd.AppID] = true
	}

	urgent := 0
	for i := range members {
		m := &members[i]
		evacuate := m.Dead || (m.Healthy() && m.Draining)
		if !evacuate {
			continue
		}
		reason := ReasonDrain
		if m.Dead {
			reason = ReasonMachineLost
		}
		for _, app := range m.Apps {
			if dup[m.ID+"/"+app.ID] {
				continue
			}
			d, c, err := r.Scorer.decide(app.Spec(), cands)
			if err != nil {
				r.logf("fleet: cannot re-home %s from %s: %v", app.ID, m.ID, err)
				continue
			}
			plan.Moves = append(plan.Moves, Move{
				AppID: app.ID, App: app.Spec(), From: m.ID, To: d.Member,
				Reason: reason, Score: d.Score,
			})
			c.commit(app.Spec())
			urgent++
		}
	}

	if urgent == 0 {
		// Drift re-placement before the imbalance pass: a drifted app's
		// placement was decided on a wrong model, so it gets first claim on
		// the round's churn budget; the broader re-pack waits a round.
		if r.planDrift(plan, members, dup, cands) == 0 {
			r.planImbalance(plan, members, dup)
		}
	}

	if limit := r.maxMoves(); len(plan.Moves) > limit {
		plan.Deferred = len(plan.Moves) - limit
		plan.Moves = plan.Moves[:limit]
	}
	return plan, ctx.Err()
}

// planDrift emits bounded moves for apps whose member coopd confirmed
// drift (fitted model applied). Each drifted app's placement decision
// is re-taken with its effective (fitted) spec against the other
// members; a move is planned only when the fleet-wide gain — the
// destination's marginal minus what the source loses by releasing the
// app — is meaningfully positive. Returns the number of moves planned.
func (r *Rebalancer) planDrift(plan *Plan, members []Member, dup map[string]bool, cands []*candidate) int {
	moves := 0
	for i := range members {
		m := &members[i]
		if !m.Healthy() || m.Draining {
			continue
		}
		for _, app := range m.Apps {
			if !app.Drifted || app.FittedAI <= 0 || dup[m.ID+"/"+app.ID] {
				continue
			}
			spec := app.EffectiveSpec()
			withApp, err := r.Scorer.SolveTotal(m.Topology, m.demandSet())
			if err != nil {
				r.logf("fleet: scoring %s: %v", m.ID, err)
				continue
			}
			rest := *m
			rest.Apps = make([]PlacedApp, 0, len(m.Apps)-1)
			for _, a := range m.Apps {
				if a.ID != app.ID {
					rest.Apps = append(rest.Apps, a)
				}
			}
			without, err := r.Scorer.SolveTotal(m.Topology, rest.demandSet())
			if err != nil {
				continue
			}
			// Candidate pool excludes the source (pointers shared with the
			// round's other passes, so commits accumulate).
			pool := make([]*candidate, 0, len(cands)-1)
			for _, c := range cands {
				if c.id != m.ID {
					pool = append(pool, c)
				}
			}
			d, c, err := r.Scorer.decide(spec, pool)
			if err != nil {
				continue
			}
			gain := d.Score - (withApp - without)
			if gain <= 0.01*withApp {
				continue // not worth the churn
			}
			plan.Moves = append(plan.Moves, Move{
				AppID: app.ID, App: spec, From: m.ID, To: d.Member,
				Reason: ReasonDrift, Score: d.Score,
			})
			c.commit(spec)
			moves++
			r.logf("fleet: drift re-placement of %s (fitted AI %.3g vs declared %.3g): %s -> %s, gain %+.1f GFLOPS",
				app.ID, app.FittedAI, app.AI, m.ID, d.Member, gain)
		}
	}
	return moves
}

// planImbalance compares the fleet's current solved aggregate with a
// greedy from-scratch re-pack of the same apps and, when the gap
// exceeds the threshold, emits moves for the apps whose re-pack target
// differs from their current machine.
func (r *Rebalancer) planImbalance(plan *Plan, members []Member, dup map[string]bool) {
	type owned struct {
		member string
		app    PlacedApp
	}
	var apps []owned
	current := 0.0
	for i := range members {
		m := &members[i]
		if !m.Healthy() || m.Draining {
			continue
		}
		demand := make([]PlacedApp, 0, len(m.Apps))
		for _, a := range m.Apps {
			if dup[m.ID+"/"+a.ID] {
				continue
			}
			demand = append(demand, a)
			apps = append(apps, owned{member: m.ID, app: a})
		}
		mm := *m
		mm.Apps = demand
		total, err := r.Scorer.SolveTotal(mm.Topology, mm.demandSet())
		if err != nil {
			r.logf("fleet: scoring %s: %v", m.ID, err)
			return
		}
		current += total
	}
	plan.CurrentGFLOPS = current
	if len(apps) == 0 {
		return
	}

	// Greedy re-pack: fresh candidates (empty demand), every app placed
	// from scratch in deterministic (member ID, app ID) order.
	fresh := candidatesFrom(members)
	for _, c := range fresh {
		c.demand, c.apps, c.bad = nil, 0, 0
		c.beforeSet = false
	}
	target := map[string]string{} // "member/appID" -> repack member
	for _, o := range apps {
		d, c, err := r.Scorer.decide(o.app.Spec(), fresh)
		if err != nil {
			return
		}
		target[o.member+"/"+o.app.ID] = d.Member
		c.commit(o.app.Spec())
	}
	repack := 0.0
	for _, c := range fresh {
		total, err := r.Scorer.SolveTotal(c.topo, c.demand)
		if err != nil {
			return
		}
		repack += total
	}
	plan.RepackGFLOPS = repack
	if current >= r.threshold()*repack {
		return
	}

	// The gap is worth churn: move the apps the re-pack homes elsewhere.
	// Targets come from the re-pack simulation itself, so the moves land
	// the fleet at (a bounded prefix of) the re-packed assignment.
	for _, o := range apps {
		if to := target[o.member+"/"+o.app.ID]; to != o.member {
			plan.Moves = append(plan.Moves, Move{
				AppID: o.app.ID, App: o.app.Spec(), From: o.member, To: to,
				Reason: ReasonRebalance,
			})
		}
	}
}

// Execute applies a plan: duplicate cleanups first, then each move as
// drain-then-place — deregister from a live source before registering
// on the target, so the app never counts twice. A lost machine cannot
// be drained; its moves register on the target first and record the old
// ID as stale for cleanup if the machine revives.
func (r *Rebalancer) Execute(ctx context.Context, plan *Plan) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, sd := range plan.StaleDeregs {
		cli, err := r.Inv.Client(sd.Member)
		if err != nil {
			keep(err)
			continue
		}
		if err := cli.Deregister(ctx, sd.AppID); err != nil {
			keep(fmt.Errorf("fleet: cleaning stale %s on %s: %w", sd.AppID, sd.Member, err))
			continue
		}
		r.Inv.clearStale(sd.Member, sd.AppID)
		r.Inv.noteDeregistered(sd.Member, sd.AppID)
		r.logf("fleet: cleaned stale duplicate %s on revived %s", sd.AppID, sd.Member)
	}
	for _, mv := range plan.Moves {
		if mv.Reason != ReasonMachineLost {
			cli, err := r.Inv.Client(mv.From)
			if err != nil {
				keep(err)
				continue
			}
			if err := cli.Deregister(ctx, mv.AppID); err != nil {
				// The source refused the drain; skip the move rather than
				// double-register the app. Next round re-plans.
				keep(fmt.Errorf("fleet: draining %s from %s: %w", mv.AppID, mv.From, err))
				continue
			}
			r.Inv.noteDeregistered(mv.From, mv.AppID)
		}
		cli, err := r.Inv.Client(mv.To)
		if err != nil {
			keep(err)
			continue
		}
		resp, err := cli.Register(ctx, mv.App.registerRequest())
		if err != nil {
			keep(fmt.Errorf("fleet: re-homing %s to %s: %w", mv.AppID, mv.To, err))
			continue
		}
		if mv.Reason == ReasonMachineLost {
			r.Inv.noteDeregistered(mv.From, mv.AppID)
			r.Inv.noteStale(mv.From, mv.AppID)
		}
		r.Inv.noteRegistered(mv.To, PlacedApp{
			ID: resp.ID, Name: mv.App.Name, AI: mv.App.AI, Placement: mv.App.Placement,
			HomeNode: mv.App.HomeNode, MaxThreads: mv.App.MaxThreads, TTLMillis: mv.App.TTLMillis,
		})
		r.logf("fleet: moved %s: %s -> %s as %s (%s, score %+.1f)",
			mv.AppID, mv.From, mv.To, resp.ID, mv.Reason, mv.Score)
	}
	return firstErr
}

// Round runs one control-loop iteration: poll the fleet, plan, execute.
func (r *Rebalancer) Round(ctx context.Context) (*Plan, error) {
	r.Inv.Poll(ctx)
	plan, err := r.Plan(ctx)
	if err != nil {
		return plan, err
	}
	if err := r.Execute(ctx, plan); err != nil {
		return plan, err
	}
	return plan, nil
}
