package fleet

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/roofline"
)

// Move reasons, stable strings carried on the wire.
const (
	// ReasonMachineLost re-homes an app whose machine stopped answering.
	ReasonMachineLost = "machine-lost"
	// ReasonDrain empties a member marked draining.
	ReasonDrain = "drain"
	// ReasonRebalance closes an imbalance gap against the greedy re-pack.
	ReasonRebalance = "rebalance"
	// ReasonDrift re-places an app whose measured demand model drifted
	// from its declaration: the placement decision was made on stale
	// inputs, so it is re-taken with the fitted model.
	ReasonDrift = "drift"
	// ReasonQuarantine evacuates a member the flap detector benched: it
	// may still be answering polls, but it cannot be trusted to keep
	// serving, so its apps are re-homed like a lost machine's.
	ReasonQuarantine = "quarantine"
	// ReasonPreempt evicts a lower-class app from a machine past its
	// floor capacity so a higher class hosted there gets a floor-feasible
	// allocation (see preempt.go).
	ReasonPreempt = "preempt"
)

// Move is one planned app relocation.
type Move struct {
	// AppID is the app's ID on the source machine (its registration
	// there; the target assigns a fresh ID).
	AppID string `json:"app_id"`
	// App is the spec re-registered on the target.
	App AppSpec `json:"app"`
	// From and To are member IDs. From's registration is dropped (or
	// already gone, for a lost machine).
	From string `json:"from"`
	To   string `json:"to"`
	// Reason is one of the Reason* constants.
	Reason string `json:"reason"`
	// Score is the marginal aggregate GFLOPS of the placement on To.
	Score float64 `json:"score"`
}

// evacApp is one urgent evacuation candidate: an app still registered
// on a dead, quarantined, or draining member.
type evacApp struct {
	member string
	app    PlacedApp
	reason string
}

// StaleDereg is a duplicate registration left on a revived member: the
// app was re-homed while the member was dead, so the old local copy
// must be deregistered.
type StaleDereg struct {
	Member string `json:"member"`
	AppID  string `json:"app_id"`
}

// Plan is one rebalance round's decisions.
type Plan struct {
	Moves []Move `json:"moves,omitempty"`
	// Deferred counts moves the per-round bound pushed to later rounds.
	Deferred int `json:"deferred,omitempty"`
	// StaleDeregs are duplicate cleanups on revived members (not
	// counted against the move bound — they free capacity, never churn
	// it).
	StaleDeregs []StaleDereg `json:"stale_deregs,omitempty"`
	// CurrentGFLOPS is the solved aggregate over healthy members'
	// demand sets; RepackGFLOPS is the aggregate of the greedy
	// from-scratch re-pack the imbalance check compares against.
	CurrentGFLOPS float64 `json:"current_gflops"`
	RepackGFLOPS  float64 `json:"repack_gflops"`
	// Budget is the round's global move budget (MaxMovesPerRound after
	// defaults), shared across the urgent, drift, and imbalance passes;
	// BudgetSpent is how much of it this plan consumes.
	Budget      int `json:"budget,omitempty"`
	BudgetSpent int `json:"budget_spent,omitempty"`
	// Cooldowns maps app names still inside their post-move cooldown to
	// the number of upcoming rounds (including the planned one) in which
	// the drift and imbalance passes will not move them again.
	Cooldowns map[string]int `json:"cooldowns,omitempty"`
	// StormActive marks a degraded-mode round: enough members are down
	// with un-evacuated apps that urgent moves were triaged under the
	// storm budget and per-survivor admission cap, and the drift and
	// imbalance passes were skipped.
	StormActive bool `json:"storm_active,omitempty"`
}

// Rebalancer turns inventory drift — dead machines, draining members,
// imbalance — into bounded move plans and executes them.
type Rebalancer struct {
	Inv    *Inventory
	Placer *Placer
	Scorer *Scorer
	// MaxMovesPerRound bounds churn per round (default 4). The bound is
	// global: urgent evacuation, drift re-placement, and the imbalance
	// re-pack all draw from the same per-round budget. A negative value
	// is a misconfiguration (it would disable churn limiting) and falls
	// back to the default with a logged warning.
	MaxMovesPerRound int
	// Threshold triggers the imbalance pass when the current aggregate
	// falls below Threshold x the greedy re-pack (default 0.9). Values
	// outside (0, 1] are misconfigurations — negative or > 1 would arm
	// the re-pack permanently — and fall back to the default with a
	// logged warning.
	Threshold float64
	// StormFraction arms the storm brake: when the fraction of members
	// that are down (dead or quarantined) while still carrying
	// un-evacuated apps exceeds it, the round runs in degraded mode —
	// urgent moves are triaged by the aggregate GFLOPS their
	// re-placement recovers, rate-limited to StormBudget, and no
	// survivor admits more than AdmissionCap storm moves per round.
	// Degraded mode is detected statelessly from the snapshot (Plan
	// stays a side-effect-free dry run) and therefore persists until
	// the evacuation backlog drains. 0 selects the default (0.25);
	// values outside (0, 1] fall back with a logged warning.
	StormFraction float64
	// StormBudget caps urgent moves per degraded round (it can only
	// tighten the global budget, never exceed it). 0 selects the global
	// MaxMovesPerRound; negative falls back with a logged warning.
	StormBudget int
	// AdmissionCap bounds how many storm evacuations a single surviving
	// member admits per round, so a mass failure cannot crush the
	// remaining machines under simultaneous re-registrations. 0 selects
	// the default (2); negative falls back with a logged warning.
	AdmissionCap int
	// DisablePreemption turns the priority-inversion repair pass off:
	// lower-class apps are never evicted to give a higher class a
	// floor-feasible allocation. Only for A/B resilience experiments
	// such as the fleetsim priority-inversion regression, never for
	// production use.
	DisablePreemption bool
	// DisableStormBrake turns mass-failure triage off: urgent
	// evacuation behaves as if the fleet were losing one machine — all
	// moves planned immediately, no admission cap. Only for A/B
	// resilience experiments such as the fleetsim correlated-failure
	// regression, never for production use.
	DisableStormBrake bool
	// CooldownRounds is the anti-thrash guard: an app moved by the
	// drift or imbalance pass may not be moved by those passes again
	// for this many following rounds, and is excluded from the
	// imbalance re-pack's move list while cooling down. Urgent
	// evacuation (machine lost, drain) is never blocked. 0 selects the
	// default (2); negative disables the guard entirely — only for A/B
	// stability experiments such as the fleetsim oscillation
	// regression, never for production use.
	CooldownRounds int
	// Logf, when set, receives move logs.
	Logf func(format string, args ...any)

	// planMu serializes Plan calls: planning reuses the candidate sets
	// and demand buffer below, and Plan (dry-run over HTTP) may race
	// the background Round loop.
	planMu sync.Mutex
	// cands and fresh are the round's reusable candidate sets (current
	// state and the imbalance pass's from-scratch re-pack); demandBuf
	// backs the drift and imbalance passes' per-member demand rebuilds.
	// All three keep their backing arrays across rounds.
	cands     candidateSet
	fresh     candidateSet
	demandBuf []roofline.App

	// mu guards the anti-thrash state below; Plan (dry-run over HTTP)
	// and Round (background loop) may run concurrently.
	mu sync.Mutex
	// round counts completed Round calls; lastMove records, per app
	// name, the round in which its last drift/imbalance move executed.
	// Names key the map because a move re-registers the app under a
	// fresh machine-local ID.
	round    uint64
	lastMove map[string]uint64
	warned   map[string]bool
}

func (r *Rebalancer) maxMoves() int {
	if r.MaxMovesPerRound > 0 {
		return r.MaxMovesPerRound
	}
	if r.MaxMovesPerRound < 0 {
		r.warnOnce("max-moves", "fleet: MaxMovesPerRound %d would disable the churn bound; using default 4",
			r.MaxMovesPerRound)
	}
	return 4
}

func (r *Rebalancer) threshold() float64 {
	if r.Threshold > 0 && r.Threshold <= 1 {
		return r.Threshold
	}
	if r.Threshold != 0 {
		r.warnOnce("threshold", "fleet: Threshold %g outside (0, 1] would mis-arm the imbalance pass; using default 0.9",
			r.Threshold)
	}
	return 0.9
}

func (r *Rebalancer) stormFraction() float64 {
	if r.StormFraction > 0 && r.StormFraction <= 1 {
		return r.StormFraction
	}
	if r.StormFraction != 0 {
		r.warnOnce("storm-fraction", "fleet: StormFraction %g outside (0, 1] would mis-arm the storm brake; using default 0.25",
			r.StormFraction)
	}
	return 0.25
}

func (r *Rebalancer) stormBudget() int {
	if r.StormBudget > 0 {
		return r.StormBudget
	}
	if r.StormBudget < 0 {
		r.warnOnce("storm-budget", "fleet: StormBudget %d would disable degraded-mode churn limiting; using the global budget",
			r.StormBudget)
	}
	return r.maxMoves()
}

func (r *Rebalancer) admissionCap() int {
	if r.AdmissionCap > 0 {
		return r.AdmissionCap
	}
	if r.AdmissionCap < 0 {
		r.warnOnce("admission-cap", "fleet: AdmissionCap %d would disable survivor admission control; using default 2",
			r.AdmissionCap)
	}
	return 2
}

func (r *Rebalancer) cooldownRounds() int {
	switch {
	case r.CooldownRounds > 0:
		return r.CooldownRounds
	case r.CooldownRounds < 0:
		return 0 // explicitly disabled
	}
	return 2
}

// warnOnce logs a misconfiguration warning a single time per key.
func (r *Rebalancer) warnOnce(key, format string, args ...any) {
	r.mu.Lock()
	if r.warned == nil {
		r.warned = map[string]bool{}
	}
	logged := r.warned[key]
	r.warned[key] = true
	r.mu.Unlock()
	if !logged {
		r.logf(format, args...)
	}
}

// onCooldown reports whether the app's last drift/imbalance move is
// recent enough that moving it again would be churn.
func (r *Rebalancer) onCooldown(name string) bool {
	cd := uint64(r.cooldownRounds())
	if cd == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	last, ok := r.lastMove[name]
	// Moved in round k => blocked for rounds k+1 .. k+cd.
	return ok && r.round-last <= cd
}

// noteMoved starts the app's cooldown (called when a drift/imbalance
// move executes).
func (r *Rebalancer) noteMoved(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastMove == nil {
		r.lastMove = map[string]uint64{}
	}
	r.lastMove[name] = r.round
}

// cooldownView snapshots active cooldowns as app name -> rounds left
// (including the next planning round), pruning expired entries.
func (r *Rebalancer) cooldownView() map[string]int {
	cd := uint64(r.cooldownRounds())
	r.mu.Lock()
	defer r.mu.Unlock()
	var out map[string]int
	for name, last := range r.lastMove {
		if cd == 0 || r.round-last > cd {
			delete(r.lastMove, name)
			continue
		}
		if out == nil {
			out = map[string]int{}
		}
		out[name] = int(cd - (r.round - last) + 1)
	}
	return out
}

func (r *Rebalancer) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Plan computes one round's moves from the current inventory snapshot
// without executing anything. Priority order: lost and quarantined
// machines first (their apps are getting no trustworthy cores at all),
// then draining members, then — only when nothing urgent is pending —
// the drift and imbalance passes. When enough members are down at once
// the round degrades into storm-braked triage (see planStorm). Every
// target decision runs against a simulated candidate set that
// accumulates the round's earlier moves, so a plan never over-commits
// one machine.
func (r *Rebalancer) Plan(ctx context.Context) (*Plan, error) {
	r.planMu.Lock()
	defer r.planMu.Unlock()
	members := r.Inv.Snapshot()
	cands := r.cands.reset(members, true, r.Scorer.DomainSpread)
	plan := &Plan{Budget: r.maxMoves(), Cooldowns: r.cooldownView()}

	// Duplicate cleanup on revived members: app IDs re-homed while the
	// member was dead (or quarantined — its coopd still answers, so the
	// duplicate can be deregistered) that its registry still carries.
	for i := range members {
		m := &members[i]
		if !m.Alive() || len(m.Stale) == 0 {
			continue
		}
		live := map[string]bool{}
		for _, a := range m.Apps {
			live[a.ID] = true
		}
		for _, id := range m.Stale {
			if live[id] {
				plan.StaleDeregs = append(plan.StaleDeregs, StaleDereg{Member: m.ID, AppID: id})
			}
		}
	}

	// Staleness-aware demand: apps listed in StaleDeregs are duplicates,
	// excluded from move planning and the imbalance aggregate.
	dup := map[string]bool{}
	for _, sd := range plan.StaleDeregs {
		dup[sd.Member+"/"+sd.AppID] = true
	}

	// Collect the round's evacuations — apps on dead, quarantined, or
	// draining members — and detect a failure storm: the fraction of
	// members down (dead or quarantined) with un-evacuated apps.
	var evacs []evacApp
	downBacklog := 0
	for i := range members {
		m := &members[i]
		if (m.Dead || m.Quarantined) && len(m.Apps) > 0 {
			downBacklog++
		}
		evacuate := m.Dead || m.Quarantined || (m.Healthy() && m.Draining)
		if !evacuate {
			continue
		}
		reason := ReasonDrain
		switch {
		case m.Dead:
			reason = ReasonMachineLost
		case m.Quarantined:
			reason = ReasonQuarantine
		}
		for _, app := range m.Apps {
			if dup[m.ID+"/"+app.ID] {
				continue
			}
			evacs = append(evacs, evacApp{member: m.ID, app: app, reason: reason})
		}
	}
	storm := !r.DisableStormBrake && len(members) > 0 &&
		float64(downBacklog) > r.stormFraction()*float64(len(members))
	plan.StormActive = storm

	// Higher classes evacuate first: under a tight budget the latency
	// app is re-homed before the batch backlog consumes the round. The
	// sort is stable, so all-batch fleets keep the historical order.
	sort.SliceStable(evacs, func(a, b int) bool {
		return ClassRank(evacs[a].app.Priority) > ClassRank(evacs[b].app.Priority)
	})

	urgent := 0
	if !storm {
		for _, e := range evacs {
			spec := e.app.EffectiveSpec()
			d, c, err := r.Scorer.decide(spec, cands)
			if err != nil {
				r.logf("fleet: cannot re-home %s from %s: %v", e.app.ID, e.member, err)
				continue
			}
			plan.Moves = append(plan.Moves, Move{
				AppID: e.app.ID, App: spec, From: e.member, To: d.Member,
				Reason: e.reason, Score: d.Score,
			})
			c.commit(spec)
			urgent++
		}
	} else {
		urgent = r.planStorm(plan, evacs, cands, downBacklog, len(members))
	}

	if urgent == 0 && !storm {
		// Quiet-round passes in priority order, all drawing from one
		// global budget: inversion repair first (a higher class starved
		// under its floor is worse than any efficiency gap), then drift
		// re-placement, then the imbalance re-pack. Each pass runs only
		// when the ones before it planned nothing, so a round stays
		// single-purpose and the combined moves never exceed the bound.
		budget := plan.Budget
		if r.planPreempt(plan, members, dup, cands, &budget) == 0 {
			if r.planDrift(plan, members, dup, cands, &budget) == 0 {
				r.planImbalance(plan, members, dup, &budget)
			}
		}
	}

	if limit := plan.Budget; len(plan.Moves) > limit {
		plan.Deferred += len(plan.Moves) - limit
		plan.Moves = plan.Moves[:limit]
	}
	plan.BudgetSpent = len(plan.Moves)
	return plan, ctx.Err()
}

// planStorm is the degraded-mode urgent pass: a correlated failure has
// taken down enough of the fleet that evacuating everything at once
// would crush the survivors. Evacuations are triaged by the aggregate
// GFLOPS their re-placement recovers (a pre-score against the current
// candidates), then admitted in that order under two limits — the
// storm budget (never above the round's global budget) and a
// per-survivor admission cap. Everything past the limits is deferred
// to later rounds; the backlog-based storm detection keeps degraded
// mode active until it drains. Returns the number of moves planned.
func (r *Rebalancer) planStorm(plan *Plan, evacs []evacApp, cands []*candidate, downBacklog, total int) int {
	budget := plan.Budget
	if sb := r.stormBudget(); sb < budget {
		budget = sb
	}
	capN := r.admissionCap()
	r.logf("fleet: storm brake engaged: %d/%d members down with %d apps pending; triaging (budget %d, admission cap %d)",
		downBacklog, total, len(evacs), budget, capN)

	// Triage order: highest marginal recovery first; (member, app ID)
	// breaks ties deterministically.
	scores := make([]float64, len(evacs))
	for i := range evacs {
		if d, _, err := r.Scorer.decide(evacs[i].app.EffectiveSpec(), cands); err == nil {
			scores[i] = d.Score
		} else {
			scores[i] = math.Inf(-1)
		}
	}
	order := make([]int, len(evacs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		// Class outranks recovered GFLOPS: a latency app is triaged
		// ahead of any batch app, whatever their marginal scores.
		ra, rb := ClassRank(evacs[ia].app.Priority), ClassRank(evacs[ib].app.Priority)
		if ra != rb {
			return ra > rb
		}
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		if evacs[ia].member != evacs[ib].member {
			return evacs[ia].member < evacs[ib].member
		}
		return evacs[ia].app.ID < evacs[ib].app.ID
	})

	moves := 0
	inbound := map[string]int{}
	pool := make([]*candidate, 0, len(cands))
	for _, idx := range order {
		e := evacs[idx]
		if budget <= 0 {
			plan.Deferred++
			continue
		}
		// Survivors at their admission cap leave the pool; the decision
		// re-runs against the committed state, so earlier admissions are
		// visible.
		pool = pool[:0]
		for _, c := range cands {
			if inbound[c.id] < capN {
				pool = append(pool, c)
			}
		}
		spec := e.app.EffectiveSpec()
		d, c, err := r.Scorer.decide(spec, pool)
		if err != nil {
			plan.Deferred++
			continue
		}
		plan.Moves = append(plan.Moves, Move{
			AppID: e.app.ID, App: spec, From: e.member, To: d.Member,
			Reason: e.reason, Score: d.Score,
		})
		c.commit(spec)
		inbound[d.Member]++
		budget--
		moves++
	}
	return moves
}

// planPreempt is the priority-inversion repair pass: a healthy member
// hosting a higher-class app with more apps than its floor capacity
// (some app there is starved of its guaranteed core) gets its cheapest
// lower-class apps evicted until the demand set fits — or until the
// round budget, the victim supply, or cooldowns stop it. Victims are
// re-homed, never dropped, by planEvictions; partial relief is fine
// because evicting every lower-class app already removes the
// *inversion* even if starvation among equals remains. Returns the
// number of moves planned.
func (r *Rebalancer) planPreempt(plan *Plan, members []Member, dup map[string]bool, cands []*candidate, budget *int) int {
	if r.DisablePreemption {
		return 0
	}
	byID := make(map[string]*candidate, len(cands))
	for _, c := range cands {
		byID[c.id] = c
	}
	var ranks map[string]int
	moves := 0
	for i := range members {
		m := &members[i]
		c := byID[m.ID]
		if c == nil {
			continue // not a placement candidate (dead, draining, ...)
		}
		over := len(c.demand) - FloorCapacity(c.topo)
		if over <= 0 {
			continue
		}
		top := 0
		for _, a := range m.Apps {
			if rk := ClassRank(a.Priority); rk > top {
				top = rk
			}
		}
		if top == 0 {
			continue // starved, but all one class: nothing to repair
		}
		if *budget <= 0 {
			plan.Deferred++
			continue
		}
		need := over
		if need > *budget {
			need = *budget
		}
		if ranks == nil {
			ranks = hostRanks(members)
		}
		skip := func(a PlacedApp) bool {
			return dup[m.ID+"/"+a.ID] || r.onCooldown(a.Name)
		}
		planned := r.Scorer.planEvictions(c, m.Apps, top, need, cands, ranks, skip)
		for _, mv := range planned {
			plan.Moves = append(plan.Moves, mv)
			*budget--
			moves++
			r.logf("fleet: preempting %s (%s) off %s -> %s to unstarve class rank %d",
				mv.AppID, mv.App.Priority, mv.From, mv.To, top)
		}
	}
	return moves
}

// planDrift emits bounded moves for apps whose member coopd confirmed
// drift (fitted model applied). Each drifted app's placement decision
// is re-taken with its effective (fitted) spec against the other
// members; a move is planned only when the fleet-wide gain — the
// destination's marginal minus what the source loses by releasing the
// app — is meaningfully positive. Apps inside their post-move cooldown
// are skipped (anti-thrash), and each planned move debits the shared
// round budget; candidates past the budget are deferred, not planned.
// Returns the number of moves planned.
func (r *Rebalancer) planDrift(plan *Plan, members []Member, dup map[string]bool, cands []*candidate, budget *int) int {
	moves := 0
	for i := range members {
		m := &members[i]
		if !m.Healthy() || m.Draining {
			continue
		}
		for _, app := range m.Apps {
			if !app.Drifted || app.FittedAI <= 0 || dup[m.ID+"/"+app.ID] {
				continue
			}
			if r.onCooldown(app.Name) {
				continue
			}
			if *budget <= 0 {
				plan.Deferred++
				continue
			}
			spec := app.EffectiveSpec()
			r.demandBuf = appendDemandSet(r.demandBuf[:0], m.Apps)
			withApp, err := r.Scorer.SolveTotal(m.Topology, r.demandBuf)
			if err != nil {
				r.logf("fleet: scoring %s: %v", m.ID, err)
				continue
			}
			// Same member minus the drifted app, rebuilt into the same
			// reused buffer (SolveTotal never retains the demand slice).
			r.demandBuf = r.demandBuf[:0]
			for _, a := range m.Apps {
				if a.ID == app.ID {
					continue
				}
				if ra, err := a.EffectiveSpec().rooflineApp(); err == nil {
					r.demandBuf = append(r.demandBuf, ra)
				}
			}
			without, err := r.Scorer.SolveTotal(m.Topology, r.demandBuf)
			if err != nil {
				continue
			}
			// Candidate pool excludes the source (pointers shared with the
			// round's other passes, so commits accumulate).
			pool := make([]*candidate, 0, len(cands)-1)
			for _, c := range cands {
				if c.id != m.ID {
					pool = append(pool, c)
				}
			}
			d, c, err := r.Scorer.decide(spec, pool)
			if err != nil {
				continue
			}
			gain := d.Score - (withApp - without)
			if gain <= 0.01*withApp {
				continue // not worth the churn
			}
			plan.Moves = append(plan.Moves, Move{
				AppID: app.ID, App: spec, From: m.ID, To: d.Member,
				Reason: ReasonDrift, Score: d.Score,
			})
			c.commit(spec)
			moves++
			*budget--
			r.logf("fleet: drift re-placement of %s (fitted AI %.3g vs declared %.3g): %s -> %s, gain %+.1f GFLOPS",
				app.ID, app.FittedAI, app.AI, m.ID, d.Member, gain)
		}
	}
	return moves
}

// planImbalance compares the fleet's current solved aggregate with a
// greedy from-scratch re-pack of the same apps and, when the gap
// exceeds the threshold, emits moves for the apps whose re-pack target
// differs from their current machine. Apps inside their post-move
// cooldown are excluded from the move list (oscillation damping: an
// app the previous round just re-homed must not immediately bounce
// back because the load shifted again), and moves stop once the shared
// round budget is spent.
func (r *Rebalancer) planImbalance(plan *Plan, members []Member, dup map[string]bool, budget *int) {
	type owned struct {
		member string
		app    PlacedApp
	}
	var apps []owned
	current := 0.0
	for i := range members {
		m := &members[i]
		if !m.Healthy() || m.Draining {
			continue
		}
		r.demandBuf = r.demandBuf[:0]
		for _, a := range m.Apps {
			if dup[m.ID+"/"+a.ID] {
				continue
			}
			apps = append(apps, owned{member: m.ID, app: a})
			if ra, err := a.EffectiveSpec().rooflineApp(); err == nil {
				r.demandBuf = append(r.demandBuf, ra)
			}
		}
		total, err := r.Scorer.SolveTotal(m.Topology, r.demandBuf)
		if err != nil {
			r.logf("fleet: scoring %s: %v", m.ID, err)
			return
		}
		current += total
	}
	plan.CurrentGFLOPS = current
	if len(apps) == 0 {
		return
	}

	// Greedy re-pack: fresh candidates (empty demand), every app placed
	// from scratch in deterministic (member ID, app ID) order. The set
	// (and its demand backing) is reused across rounds.
	fresh := r.fresh.reset(members, false, r.Scorer.DomainSpread)
	// The re-pack scores with EffectiveSpec — the fitted model when an
	// app has drifted — matching demandSet above. Mixing declared AI
	// into the repack while the current aggregate reflects measured
	// behaviour would mis-arm the trigger in both directions.
	target := map[string]string{} // "member/appID" -> repack member
	for _, o := range apps {
		spec := o.app.EffectiveSpec()
		d, c, err := r.Scorer.decide(spec, fresh)
		if err != nil {
			return
		}
		target[o.member+"/"+o.app.ID] = d.Member
		c.commit(spec)
	}
	repack := 0.0
	for _, c := range fresh {
		total, err := r.Scorer.SolveTotal(c.topo, c.demand)
		if err != nil {
			return
		}
		repack += total
	}
	plan.RepackGFLOPS = repack
	if current >= r.threshold()*repack {
		return
	}

	// The gap is worth churn: move the apps the re-pack homes elsewhere.
	// Targets come from the re-pack simulation itself, so the moves land
	// the fleet at (a bounded prefix of) the re-packed assignment.
	for _, o := range apps {
		to := target[o.member+"/"+o.app.ID]
		if to == o.member {
			continue
		}
		if r.onCooldown(o.app.Name) {
			continue // damped: just moved, let the fleet settle first
		}
		if *budget <= 0 {
			plan.Deferred++
			continue
		}
		plan.Moves = append(plan.Moves, Move{
			AppID: o.app.ID, App: o.app.EffectiveSpec(), From: o.member, To: to,
			Reason: ReasonRebalance,
		})
		*budget--
	}
}

// Execute applies a plan: duplicate cleanups first, then each move as
// drain-then-place — deregister from a live source before registering
// on the target, so the app never counts twice. A lost machine cannot
// be drained; its moves register on the target first and record the old
// ID as stale for cleanup if the machine revives.
func (r *Rebalancer) Execute(ctx context.Context, plan *Plan) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, sd := range plan.StaleDeregs {
		cli, err := r.Inv.Client(sd.Member)
		if err != nil {
			keep(err)
			continue
		}
		if err := cli.Deregister(ctx, sd.AppID); err != nil {
			keep(fmt.Errorf("fleet: cleaning stale %s on %s: %w", sd.AppID, sd.Member, err))
			continue
		}
		r.Inv.clearStale(sd.Member, sd.AppID)
		r.Inv.noteDeregistered(sd.Member, sd.AppID)
		r.logf("fleet: cleaned stale duplicate %s on revived %s", sd.AppID, sd.Member)
	}
	for _, mv := range plan.Moves {
		// Machine-lost and quarantine moves register on the target first:
		// the source is unreachable (lost) or untrusted mid-flap
		// (quarantine), so its copy is marked stale and cleaned up when —
		// or while — the member answers again.
		if mv.Reason != ReasonMachineLost && mv.Reason != ReasonQuarantine {
			cli, err := r.Inv.Client(mv.From)
			if err != nil {
				keep(err)
				continue
			}
			if err := cli.Deregister(ctx, mv.AppID); err != nil {
				// The source refused the drain; skip the move rather than
				// double-register the app. Next round re-plans.
				keep(fmt.Errorf("fleet: draining %s from %s: %w", mv.AppID, mv.From, err))
				continue
			}
			r.Inv.noteDeregistered(mv.From, mv.AppID)
		}
		cli, err := r.Inv.Client(mv.To)
		if err != nil {
			keep(err)
			continue
		}
		resp, err := cli.Register(ctx, mv.App.registerRequest())
		if err != nil {
			keep(fmt.Errorf("fleet: re-homing %s to %s: %w", mv.AppID, mv.To, err))
			continue
		}
		if mv.Reason == ReasonMachineLost || mv.Reason == ReasonQuarantine {
			r.Inv.noteDeregistered(mv.From, mv.AppID)
			r.Inv.noteStale(mv.From, mv.AppID)
		}
		r.Inv.noteRegistered(mv.To, mv.App.placed(resp.ID))
		if mv.Reason == ReasonDrift || mv.Reason == ReasonRebalance || mv.Reason == ReasonPreempt {
			r.noteMoved(mv.App.Name)
		}
		r.logf("fleet: moved %s: %s -> %s as %s (%s, score %+.1f)",
			mv.AppID, mv.From, mv.To, resp.ID, mv.Reason, mv.Score)
	}
	return firstErr
}

// Round runs one control-loop iteration: poll the fleet, plan, execute.
// Rounds advance the cooldown clock — Plan alone (the HTTP dry run)
// never does, so inspecting a plan has no side effects.
func (r *Rebalancer) Round(ctx context.Context) (*Plan, error) {
	r.Inv.Poll(ctx)
	plan, err := r.Plan(ctx)
	if err != nil {
		return plan, err
	}
	err = r.Execute(ctx, plan)
	r.mu.Lock()
	r.round++
	r.mu.Unlock()
	if err != nil {
		return plan, err
	}
	return plan, nil
}
