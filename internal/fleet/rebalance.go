package fleet

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/roofline"
)

// Move reasons, stable strings carried on the wire.
const (
	// ReasonMachineLost re-homes an app whose machine stopped answering.
	ReasonMachineLost = "machine-lost"
	// ReasonDrain empties a member marked draining.
	ReasonDrain = "drain"
	// ReasonRebalance closes an imbalance gap against the greedy re-pack.
	ReasonRebalance = "rebalance"
	// ReasonDrift re-places an app whose measured demand model drifted
	// from its declaration: the placement decision was made on stale
	// inputs, so it is re-taken with the fitted model.
	ReasonDrift = "drift"
)

// Move is one planned app relocation.
type Move struct {
	// AppID is the app's ID on the source machine (its registration
	// there; the target assigns a fresh ID).
	AppID string `json:"app_id"`
	// App is the spec re-registered on the target.
	App AppSpec `json:"app"`
	// From and To are member IDs. From's registration is dropped (or
	// already gone, for a lost machine).
	From string `json:"from"`
	To   string `json:"to"`
	// Reason is one of the Reason* constants.
	Reason string `json:"reason"`
	// Score is the marginal aggregate GFLOPS of the placement on To.
	Score float64 `json:"score"`
}

// StaleDereg is a duplicate registration left on a revived member: the
// app was re-homed while the member was dead, so the old local copy
// must be deregistered.
type StaleDereg struct {
	Member string `json:"member"`
	AppID  string `json:"app_id"`
}

// Plan is one rebalance round's decisions.
type Plan struct {
	Moves []Move `json:"moves,omitempty"`
	// Deferred counts moves the per-round bound pushed to later rounds.
	Deferred int `json:"deferred,omitempty"`
	// StaleDeregs are duplicate cleanups on revived members (not
	// counted against the move bound — they free capacity, never churn
	// it).
	StaleDeregs []StaleDereg `json:"stale_deregs,omitempty"`
	// CurrentGFLOPS is the solved aggregate over healthy members'
	// demand sets; RepackGFLOPS is the aggregate of the greedy
	// from-scratch re-pack the imbalance check compares against.
	CurrentGFLOPS float64 `json:"current_gflops"`
	RepackGFLOPS  float64 `json:"repack_gflops"`
	// Budget is the round's global move budget (MaxMovesPerRound after
	// defaults), shared across the urgent, drift, and imbalance passes;
	// BudgetSpent is how much of it this plan consumes.
	Budget      int `json:"budget,omitempty"`
	BudgetSpent int `json:"budget_spent,omitempty"`
	// Cooldowns maps app names still inside their post-move cooldown to
	// the number of upcoming rounds (including the planned one) in which
	// the drift and imbalance passes will not move them again.
	Cooldowns map[string]int `json:"cooldowns,omitempty"`
}

// Rebalancer turns inventory drift — dead machines, draining members,
// imbalance — into bounded move plans and executes them.
type Rebalancer struct {
	Inv    *Inventory
	Placer *Placer
	Scorer *Scorer
	// MaxMovesPerRound bounds churn per round (default 4). The bound is
	// global: urgent evacuation, drift re-placement, and the imbalance
	// re-pack all draw from the same per-round budget. A negative value
	// is a misconfiguration (it would disable churn limiting) and falls
	// back to the default with a logged warning.
	MaxMovesPerRound int
	// Threshold triggers the imbalance pass when the current aggregate
	// falls below Threshold x the greedy re-pack (default 0.9). Values
	// outside (0, 1] are misconfigurations — negative or > 1 would arm
	// the re-pack permanently — and fall back to the default with a
	// logged warning.
	Threshold float64
	// CooldownRounds is the anti-thrash guard: an app moved by the
	// drift or imbalance pass may not be moved by those passes again
	// for this many following rounds, and is excluded from the
	// imbalance re-pack's move list while cooling down. Urgent
	// evacuation (machine lost, drain) is never blocked. 0 selects the
	// default (2); negative disables the guard entirely — only for A/B
	// stability experiments such as the fleetsim oscillation
	// regression, never for production use.
	CooldownRounds int
	// Logf, when set, receives move logs.
	Logf func(format string, args ...any)

	// planMu serializes Plan calls: planning reuses the candidate sets
	// and demand buffer below, and Plan (dry-run over HTTP) may race
	// the background Round loop.
	planMu sync.Mutex
	// cands and fresh are the round's reusable candidate sets (current
	// state and the imbalance pass's from-scratch re-pack); demandBuf
	// backs the drift and imbalance passes' per-member demand rebuilds.
	// All three keep their backing arrays across rounds.
	cands     candidateSet
	fresh     candidateSet
	demandBuf []roofline.App

	// mu guards the anti-thrash state below; Plan (dry-run over HTTP)
	// and Round (background loop) may run concurrently.
	mu sync.Mutex
	// round counts completed Round calls; lastMove records, per app
	// name, the round in which its last drift/imbalance move executed.
	// Names key the map because a move re-registers the app under a
	// fresh machine-local ID.
	round    uint64
	lastMove map[string]uint64
	warned   map[string]bool
}

func (r *Rebalancer) maxMoves() int {
	if r.MaxMovesPerRound > 0 {
		return r.MaxMovesPerRound
	}
	if r.MaxMovesPerRound < 0 {
		r.warnOnce("max-moves", "fleet: MaxMovesPerRound %d would disable the churn bound; using default 4",
			r.MaxMovesPerRound)
	}
	return 4
}

func (r *Rebalancer) threshold() float64 {
	if r.Threshold > 0 && r.Threshold <= 1 {
		return r.Threshold
	}
	if r.Threshold != 0 {
		r.warnOnce("threshold", "fleet: Threshold %g outside (0, 1] would mis-arm the imbalance pass; using default 0.9",
			r.Threshold)
	}
	return 0.9
}

func (r *Rebalancer) cooldownRounds() int {
	switch {
	case r.CooldownRounds > 0:
		return r.CooldownRounds
	case r.CooldownRounds < 0:
		return 0 // explicitly disabled
	}
	return 2
}

// warnOnce logs a misconfiguration warning a single time per key.
func (r *Rebalancer) warnOnce(key, format string, args ...any) {
	r.mu.Lock()
	if r.warned == nil {
		r.warned = map[string]bool{}
	}
	logged := r.warned[key]
	r.warned[key] = true
	r.mu.Unlock()
	if !logged {
		r.logf(format, args...)
	}
}

// onCooldown reports whether the app's last drift/imbalance move is
// recent enough that moving it again would be churn.
func (r *Rebalancer) onCooldown(name string) bool {
	cd := uint64(r.cooldownRounds())
	if cd == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	last, ok := r.lastMove[name]
	// Moved in round k => blocked for rounds k+1 .. k+cd.
	return ok && r.round-last <= cd
}

// noteMoved starts the app's cooldown (called when a drift/imbalance
// move executes).
func (r *Rebalancer) noteMoved(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastMove == nil {
		r.lastMove = map[string]uint64{}
	}
	r.lastMove[name] = r.round
}

// cooldownView snapshots active cooldowns as app name -> rounds left
// (including the next planning round), pruning expired entries.
func (r *Rebalancer) cooldownView() map[string]int {
	cd := uint64(r.cooldownRounds())
	r.mu.Lock()
	defer r.mu.Unlock()
	var out map[string]int
	for name, last := range r.lastMove {
		if cd == 0 || r.round-last > cd {
			delete(r.lastMove, name)
			continue
		}
		if out == nil {
			out = map[string]int{}
		}
		out[name] = int(cd - (r.round - last) + 1)
	}
	return out
}

func (r *Rebalancer) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Plan computes one round's moves from the current inventory snapshot
// without executing anything. Priority order: lost machines first (their
// apps are getting no cores at all), then draining members, then — only
// when nothing urgent is pending — the imbalance pass. Every target
// decision runs against a simulated candidate set that accumulates the
// round's earlier moves, so a plan never over-commits one machine.
func (r *Rebalancer) Plan(ctx context.Context) (*Plan, error) {
	r.planMu.Lock()
	defer r.planMu.Unlock()
	members := r.Inv.Snapshot()
	cands := r.cands.reset(members, true)
	plan := &Plan{Budget: r.maxMoves(), Cooldowns: r.cooldownView()}

	// Duplicate cleanup on revived members: app IDs re-homed while the
	// member was dead that its registry still carries.
	for i := range members {
		m := &members[i]
		if !m.Healthy() || len(m.Stale) == 0 {
			continue
		}
		live := map[string]bool{}
		for _, a := range m.Apps {
			live[a.ID] = true
		}
		for _, id := range m.Stale {
			if live[id] {
				plan.StaleDeregs = append(plan.StaleDeregs, StaleDereg{Member: m.ID, AppID: id})
			}
		}
	}

	// Staleness-aware demand: apps listed in StaleDeregs are duplicates,
	// excluded from move planning and the imbalance aggregate.
	dup := map[string]bool{}
	for _, sd := range plan.StaleDeregs {
		dup[sd.Member+"/"+sd.AppID] = true
	}

	urgent := 0
	for i := range members {
		m := &members[i]
		evacuate := m.Dead || (m.Healthy() && m.Draining)
		if !evacuate {
			continue
		}
		reason := ReasonDrain
		if m.Dead {
			reason = ReasonMachineLost
		}
		for _, app := range m.Apps {
			if dup[m.ID+"/"+app.ID] {
				continue
			}
			spec := app.EffectiveSpec()
			d, c, err := r.Scorer.decide(spec, cands)
			if err != nil {
				r.logf("fleet: cannot re-home %s from %s: %v", app.ID, m.ID, err)
				continue
			}
			plan.Moves = append(plan.Moves, Move{
				AppID: app.ID, App: spec, From: m.ID, To: d.Member,
				Reason: reason, Score: d.Score,
			})
			c.commit(spec)
			urgent++
		}
	}

	if urgent == 0 {
		// Drift re-placement before the imbalance pass: a drifted app's
		// placement was decided on a wrong model, so it gets first claim on
		// the round's churn budget; the broader re-pack waits a round. Both
		// passes draw from the same global budget, so their combined moves
		// can never exceed the per-round bound.
		budget := plan.Budget
		if r.planDrift(plan, members, dup, cands, &budget) == 0 {
			r.planImbalance(plan, members, dup, &budget)
		}
	}

	if limit := plan.Budget; len(plan.Moves) > limit {
		plan.Deferred += len(plan.Moves) - limit
		plan.Moves = plan.Moves[:limit]
	}
	plan.BudgetSpent = len(plan.Moves)
	return plan, ctx.Err()
}

// planDrift emits bounded moves for apps whose member coopd confirmed
// drift (fitted model applied). Each drifted app's placement decision
// is re-taken with its effective (fitted) spec against the other
// members; a move is planned only when the fleet-wide gain — the
// destination's marginal minus what the source loses by releasing the
// app — is meaningfully positive. Apps inside their post-move cooldown
// are skipped (anti-thrash), and each planned move debits the shared
// round budget; candidates past the budget are deferred, not planned.
// Returns the number of moves planned.
func (r *Rebalancer) planDrift(plan *Plan, members []Member, dup map[string]bool, cands []*candidate, budget *int) int {
	moves := 0
	for i := range members {
		m := &members[i]
		if !m.Healthy() || m.Draining {
			continue
		}
		for _, app := range m.Apps {
			if !app.Drifted || app.FittedAI <= 0 || dup[m.ID+"/"+app.ID] {
				continue
			}
			if r.onCooldown(app.Name) {
				continue
			}
			if *budget <= 0 {
				plan.Deferred++
				continue
			}
			spec := app.EffectiveSpec()
			r.demandBuf = appendDemandSet(r.demandBuf[:0], m.Apps)
			withApp, err := r.Scorer.SolveTotal(m.Topology, r.demandBuf)
			if err != nil {
				r.logf("fleet: scoring %s: %v", m.ID, err)
				continue
			}
			// Same member minus the drifted app, rebuilt into the same
			// reused buffer (SolveTotal never retains the demand slice).
			r.demandBuf = r.demandBuf[:0]
			for _, a := range m.Apps {
				if a.ID == app.ID {
					continue
				}
				if ra, err := a.EffectiveSpec().rooflineApp(); err == nil {
					r.demandBuf = append(r.demandBuf, ra)
				}
			}
			without, err := r.Scorer.SolveTotal(m.Topology, r.demandBuf)
			if err != nil {
				continue
			}
			// Candidate pool excludes the source (pointers shared with the
			// round's other passes, so commits accumulate).
			pool := make([]*candidate, 0, len(cands)-1)
			for _, c := range cands {
				if c.id != m.ID {
					pool = append(pool, c)
				}
			}
			d, c, err := r.Scorer.decide(spec, pool)
			if err != nil {
				continue
			}
			gain := d.Score - (withApp - without)
			if gain <= 0.01*withApp {
				continue // not worth the churn
			}
			plan.Moves = append(plan.Moves, Move{
				AppID: app.ID, App: spec, From: m.ID, To: d.Member,
				Reason: ReasonDrift, Score: d.Score,
			})
			c.commit(spec)
			moves++
			*budget--
			r.logf("fleet: drift re-placement of %s (fitted AI %.3g vs declared %.3g): %s -> %s, gain %+.1f GFLOPS",
				app.ID, app.FittedAI, app.AI, m.ID, d.Member, gain)
		}
	}
	return moves
}

// planImbalance compares the fleet's current solved aggregate with a
// greedy from-scratch re-pack of the same apps and, when the gap
// exceeds the threshold, emits moves for the apps whose re-pack target
// differs from their current machine. Apps inside their post-move
// cooldown are excluded from the move list (oscillation damping: an
// app the previous round just re-homed must not immediately bounce
// back because the load shifted again), and moves stop once the shared
// round budget is spent.
func (r *Rebalancer) planImbalance(plan *Plan, members []Member, dup map[string]bool, budget *int) {
	type owned struct {
		member string
		app    PlacedApp
	}
	var apps []owned
	current := 0.0
	for i := range members {
		m := &members[i]
		if !m.Healthy() || m.Draining {
			continue
		}
		r.demandBuf = r.demandBuf[:0]
		for _, a := range m.Apps {
			if dup[m.ID+"/"+a.ID] {
				continue
			}
			apps = append(apps, owned{member: m.ID, app: a})
			if ra, err := a.EffectiveSpec().rooflineApp(); err == nil {
				r.demandBuf = append(r.demandBuf, ra)
			}
		}
		total, err := r.Scorer.SolveTotal(m.Topology, r.demandBuf)
		if err != nil {
			r.logf("fleet: scoring %s: %v", m.ID, err)
			return
		}
		current += total
	}
	plan.CurrentGFLOPS = current
	if len(apps) == 0 {
		return
	}

	// Greedy re-pack: fresh candidates (empty demand), every app placed
	// from scratch in deterministic (member ID, app ID) order. The set
	// (and its demand backing) is reused across rounds.
	fresh := r.fresh.reset(members, false)
	// The re-pack scores with EffectiveSpec — the fitted model when an
	// app has drifted — matching demandSet above. Mixing declared AI
	// into the repack while the current aggregate reflects measured
	// behaviour would mis-arm the trigger in both directions.
	target := map[string]string{} // "member/appID" -> repack member
	for _, o := range apps {
		spec := o.app.EffectiveSpec()
		d, c, err := r.Scorer.decide(spec, fresh)
		if err != nil {
			return
		}
		target[o.member+"/"+o.app.ID] = d.Member
		c.commit(spec)
	}
	repack := 0.0
	for _, c := range fresh {
		total, err := r.Scorer.SolveTotal(c.topo, c.demand)
		if err != nil {
			return
		}
		repack += total
	}
	plan.RepackGFLOPS = repack
	if current >= r.threshold()*repack {
		return
	}

	// The gap is worth churn: move the apps the re-pack homes elsewhere.
	// Targets come from the re-pack simulation itself, so the moves land
	// the fleet at (a bounded prefix of) the re-packed assignment.
	for _, o := range apps {
		to := target[o.member+"/"+o.app.ID]
		if to == o.member {
			continue
		}
		if r.onCooldown(o.app.Name) {
			continue // damped: just moved, let the fleet settle first
		}
		if *budget <= 0 {
			plan.Deferred++
			continue
		}
		plan.Moves = append(plan.Moves, Move{
			AppID: o.app.ID, App: o.app.EffectiveSpec(), From: o.member, To: to,
			Reason: ReasonRebalance,
		})
		*budget--
	}
}

// Execute applies a plan: duplicate cleanups first, then each move as
// drain-then-place — deregister from a live source before registering
// on the target, so the app never counts twice. A lost machine cannot
// be drained; its moves register on the target first and record the old
// ID as stale for cleanup if the machine revives.
func (r *Rebalancer) Execute(ctx context.Context, plan *Plan) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, sd := range plan.StaleDeregs {
		cli, err := r.Inv.Client(sd.Member)
		if err != nil {
			keep(err)
			continue
		}
		if err := cli.Deregister(ctx, sd.AppID); err != nil {
			keep(fmt.Errorf("fleet: cleaning stale %s on %s: %w", sd.AppID, sd.Member, err))
			continue
		}
		r.Inv.clearStale(sd.Member, sd.AppID)
		r.Inv.noteDeregistered(sd.Member, sd.AppID)
		r.logf("fleet: cleaned stale duplicate %s on revived %s", sd.AppID, sd.Member)
	}
	for _, mv := range plan.Moves {
		if mv.Reason != ReasonMachineLost {
			cli, err := r.Inv.Client(mv.From)
			if err != nil {
				keep(err)
				continue
			}
			if err := cli.Deregister(ctx, mv.AppID); err != nil {
				// The source refused the drain; skip the move rather than
				// double-register the app. Next round re-plans.
				keep(fmt.Errorf("fleet: draining %s from %s: %w", mv.AppID, mv.From, err))
				continue
			}
			r.Inv.noteDeregistered(mv.From, mv.AppID)
		}
		cli, err := r.Inv.Client(mv.To)
		if err != nil {
			keep(err)
			continue
		}
		resp, err := cli.Register(ctx, mv.App.registerRequest())
		if err != nil {
			keep(fmt.Errorf("fleet: re-homing %s to %s: %w", mv.AppID, mv.To, err))
			continue
		}
		if mv.Reason == ReasonMachineLost {
			r.Inv.noteDeregistered(mv.From, mv.AppID)
			r.Inv.noteStale(mv.From, mv.AppID)
		}
		r.Inv.noteRegistered(mv.To, PlacedApp{
			ID: resp.ID, Name: mv.App.Name, AI: mv.App.AI, Placement: mv.App.Placement,
			HomeNode: mv.App.HomeNode, MaxThreads: mv.App.MaxThreads, TTLMillis: mv.App.TTLMillis,
		})
		if mv.Reason == ReasonDrift || mv.Reason == ReasonRebalance {
			r.noteMoved(mv.App.Name)
		}
		r.logf("fleet: moved %s: %s -> %s as %s (%s, score %+.1f)",
			mv.AppID, mv.From, mv.To, resp.ID, mv.Reason, mv.Score)
	}
	return firstErr
}

// Round runs one control-loop iteration: poll the fleet, plan, execute.
// Rounds advance the cooldown clock — Plan alone (the HTTP dry run)
// never does, so inspecting a plan has no side effects.
func (r *Rebalancer) Round(ctx context.Context) (*Plan, error) {
	r.Inv.Poll(ctx)
	plan, err := r.Plan(ctx)
	if err != nil {
		return plan, err
	}
	err = r.Execute(ctx, plan)
	r.mu.Lock()
	r.round++
	r.mu.Unlock()
	if err != nil {
		return plan, err
	}
	return plan, nil
}
