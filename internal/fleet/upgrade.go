package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrUpgradeRunning rejects starting a rolling upgrade while one is
// already in flight.
var ErrUpgradeRunning = errors.New("fleet: upgrade already running")

// Upgrade states.
const (
	UpgradeIdle    = "idle"
	UpgradeRunning = "running"
	UpgradeDone    = "done"
	UpgradeAborted = "aborted"
)

// Upgrader is the rolling-upgrade drain controller: it walks the fleet
// one machine at a time, draining the current machine and advancing
// only after the rebalancer has converged its apps onto the rest of the
// fleet (the member's demand set is empty). A guard rail runs before
// every step: if the placeable fraction of the fleet — healthy, not
// draining — falls below the run's health floor, the upgrade aborts and
// the current drain is undone, so an upgrade never compounds an
// unrelated failure into an outage.
//
// The controller is deliberately passive: Step performs at most one
// action per call and the fleetd control loop ticks it after each
// rebalance round, so drain progress is observed at the same cadence it
// is produced.
type Upgrader struct {
	Inv *Inventory
	// Logf, when set, receives state-transition logs.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	state   string
	queue   []string
	done    []string
	current string
	floor   float64
	reason  string
}

// Start begins a rolling upgrade over machines (empty: every member in
// ID order). floor is the abort health floor; 0 selects the default
// 0.5. Returns ErrUpgradeRunning if a run is in flight and
// ErrUnknownMember if a named machine is not in the inventory.
func (u *Upgrader) Start(machines []string, floor float64) (UpgradeStatus, error) {
	if floor < 0 || floor > 1 {
		return UpgradeStatus{}, fmt.Errorf("fleet: health floor %g outside [0, 1]", floor)
	}
	if floor == 0 {
		floor = 0.5
	}
	members := u.Inv.Snapshot()
	known := make(map[string]bool, len(members))
	for i := range members {
		known[members[i].ID] = true
	}
	if len(machines) == 0 {
		for i := range members {
			machines = append(machines, members[i].ID)
		}
	} else {
		for _, id := range machines {
			if !known[id] {
				return UpgradeStatus{}, fmt.Errorf("%w: %q", ErrUnknownMember, id)
			}
		}
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.state == UpgradeRunning {
		return u.statusLocked(), ErrUpgradeRunning
	}
	u.state = UpgradeRunning
	u.queue = append([]string(nil), machines...)
	u.done = nil
	u.current = ""
	u.floor = floor
	u.reason = ""
	u.logf("fleet: rolling upgrade started over %d machines (health floor %.2f)", len(machines), floor)
	return u.statusLocked(), nil
}

// Abort stops a running upgrade, undraining the current machine.
func (u *Upgrader) Abort(reason string) UpgradeStatus {
	u.mu.Lock()
	if u.state != UpgradeRunning {
		defer u.mu.Unlock()
		return u.statusLocked()
	}
	current := u.current
	u.abortLocked(reason)
	st := u.statusLocked()
	u.mu.Unlock()
	if current != "" {
		// Best effort: a dead machine keeps the cleared flag for revival.
		_ = u.Inv.SetDraining(current, false)
	}
	return st
}

// abortLocked flips the run to aborted. Caller holds u.mu and is
// responsible for undraining the current machine (an inventory call,
// made outside the lock).
func (u *Upgrader) abortLocked(reason string) {
	u.state = UpgradeAborted
	u.reason = reason
	u.logf("fleet: rolling upgrade aborted: %s", reason)
}

// Status reports the controller's wire view.
func (u *Upgrader) Status() UpgradeStatus {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.statusLocked()
}

func (u *Upgrader) statusLocked() UpgradeStatus {
	st := UpgradeStatus{
		State: u.state, Current: u.current,
		Queue:       append([]string(nil), u.queue...),
		Done:        append([]string(nil), u.done...),
		HealthFloor: u.floor, Reason: u.reason,
	}
	if st.State == "" {
		st.State = UpgradeIdle
	}
	return st
}

func (u *Upgrader) logf(format string, args ...any) {
	if u.Logf != nil {
		u.Logf(format, args...)
	}
}

// Step advances a running upgrade by at most one action — abort on a
// broken health floor, undrain a converged machine, or drain the next
// one — and returns a human-readable description of the action ("" when
// it waited or no run is active). The fleetd control loop calls it once
// per rebalance round.
func (u *Upgrader) Step(ctx context.Context) string {
	u.mu.Lock()
	if u.state != UpgradeRunning {
		u.mu.Unlock()
		return ""
	}
	current, floor := u.current, u.floor
	u.mu.Unlock()

	members := u.Inv.Snapshot()
	placeable := 0
	var cur *Member
	for i := range members {
		m := &members[i]
		if m.Healthy() && !m.Draining {
			placeable++
		}
		if m.ID == current {
			cur = m
		}
	}

	// Guard rail: the fleet must keep enough placeable capacity to
	// absorb the current drain. Counting the draining machine out is
	// deliberate — the floor bounds what the rest of the fleet can
	// carry, not what it could carry if the upgrade were rolled back.
	if len(members) > 0 && float64(placeable) < floor*float64(len(members)) {
		reason := fmt.Sprintf("placeable fraction %d/%d below health floor %.2f",
			placeable, len(members), floor)
		return u.abortAndUndrain(current, reason)
	}

	if current != "" {
		switch {
		case cur == nil:
			return u.abortAndUndrain("", fmt.Sprintf("machine %s removed mid-drain", current))
		case cur.Dead || cur.Quarantined:
			// A genuine failure mid-drain is not the upgrade's to roll
			// back: undraining would re-admit the machine as a placement
			// target the moment it revives, racing the urgent evacuation
			// of its own apps. Abort but leave the drain mark in place —
			// the rebalancer's machine-lost pass (and, for correlated
			// failures, the storm brake) owns the apps now.
			return u.abortAndUndrain("", fmt.Sprintf(
				"machine %s failed mid-drain; drain left in place, handing off to urgent evacuation", current))
		case len(cur.Apps) > 0:
			return "" // drain still converging; check again next round
		}
		// Converged: the machine is empty, hand it back and move on.
		if err := u.Inv.SetDraining(current, false); err != nil {
			return u.abortAndUndrain("", fmt.Sprintf("undraining %s: %v", current, err))
		}
		u.mu.Lock()
		u.done = append(u.done, current)
		u.current = ""
		msg := fmt.Sprintf("fleet: upgrade drained %s (%d/%d done)", current, len(u.done), len(u.done)+len(u.queue))
		if len(u.queue) == 0 {
			u.state = UpgradeDone
			msg = fmt.Sprintf("fleet: rolling upgrade complete (%d machines)", len(u.done))
		}
		u.mu.Unlock()
		return msg
	}

	u.mu.Lock()
	if len(u.queue) == 0 {
		u.state = UpgradeDone
		u.mu.Unlock()
		return "fleet: rolling upgrade complete (0 machines)"
	}
	next := u.queue[0]
	u.queue = u.queue[1:]
	u.mu.Unlock()
	if err := u.Inv.SetDraining(next, true); err != nil {
		// A machine that died or vanished while queued cannot be drained;
		// a rolling upgrade does not steamroll a degraded fleet.
		return u.abortAndUndrain("", fmt.Sprintf("draining %s: %v", next, err))
	}
	u.mu.Lock()
	u.current = next
	u.mu.Unlock()
	return fmt.Sprintf("fleet: upgrade draining %s", next)
}

// abortAndUndrain aborts the run and best-effort undrains current.
func (u *Upgrader) abortAndUndrain(current, reason string) string {
	u.mu.Lock()
	u.abortLocked(reason)
	u.mu.Unlock()
	if current != "" {
		_ = u.Inv.SetDraining(current, false)
	}
	return "fleet: rolling upgrade aborted: " + reason
}
