package fleet

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// upgradeFleet starts n paper coopd machines named m0..m(n-1) behind a
// partition fabric and returns the polled inventory plus the fabric.
func upgradeFleet(t *testing.T, n int) (*Inventory, *faultinject.Partition, []string) {
	t.Helper()
	part := faultinject.NewPartition()
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(part.Transport(nil)),
		FailAfter: 1,
		Logf:      t.Logf,
	})
	hosts := make([]string, n)
	for i := 0; i < n; i++ {
		hs := newCoopd(t)
		hosts[i] = hostOf(t, hs.URL)
		id := string(rune('a' + i))
		if err := inv.Add(id, hs.URL); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(context.Background())
	return inv, part, hosts
}

// TestUpgraderRollingDrain walks a three-machine upgrade end to end:
// machines drain one at a time in ID order, a machine still carrying
// apps holds the walk (Step waits), and each machine is undrained
// before the next one starts.
func TestUpgraderRollingDrain(t *testing.T) {
	ctx := context.Background()
	inv, _, _ := upgradeFleet(t, 3)

	// Machine b carries an app, so its drain must wait for the
	// rebalancer (here: the test) to move it off.
	cli, err := inv.Client("b")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := cli.Register(ctx, memSpec("tenant").registerRequest())
	if err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)

	u := &Upgrader{Inv: inv, Logf: t.Logf}
	st, err := u.Start(nil, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != UpgradeRunning || len(st.Queue) != 3 {
		t.Fatalf("start status %+v, want running with 3 queued", st)
	}

	// a is empty: one Step drains it, the next hands it back.
	if msg := u.Step(ctx); !strings.Contains(msg, "draining a") {
		t.Fatalf("step 1 = %q, want draining a", msg)
	}
	if m, _ := inv.Member("a"); !m.Draining {
		t.Fatal("a not draining after step")
	}
	if msg := u.Step(ctx); !strings.Contains(msg, "drained a") {
		t.Fatalf("step 2 = %q, want drained a", msg)
	}
	if m, _ := inv.Member("a"); m.Draining {
		t.Fatal("a still draining after its drain converged")
	}

	// b holds an app: the walk parks until the app is gone.
	if msg := u.Step(ctx); !strings.Contains(msg, "draining b") {
		t.Fatalf("step 3 = %q, want draining b", msg)
	}
	if msg := u.Step(ctx); msg != "" {
		t.Fatalf("step with apps still on b acted: %q", msg)
	}
	if st := u.Status(); st.Current != "b" || st.State != UpgradeRunning {
		t.Fatalf("status while waiting %+v, want current=b running", st)
	}
	if err := cli.Deregister(ctx, reg.ID); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	if msg := u.Step(ctx); !strings.Contains(msg, "drained b") {
		t.Fatalf("step after b emptied = %q, want drained b", msg)
	}

	// c finishes the run.
	if msg := u.Step(ctx); !strings.Contains(msg, "draining c") {
		t.Fatalf("step = %q, want draining c", msg)
	}
	if msg := u.Step(ctx); !strings.Contains(msg, "complete") {
		t.Fatalf("step = %q, want completion", msg)
	}
	st = u.Status()
	if st.State != UpgradeDone || len(st.Done) != 3 || st.Current != "" {
		t.Fatalf("final status %+v, want done with 3 machines", st)
	}
	for _, id := range []string{"a", "b", "c"} {
		if m, _ := inv.Member(id); m.Draining {
			t.Fatalf("machine %s left draining after the run", id)
		}
	}
}

// TestUpgraderAbortsOnHealthFloor: draining one of two machines leaves
// a 0.5 placeable fraction, below a 0.9 floor — the controller aborts
// and rolls the drain back rather than compounding the capacity dip.
func TestUpgraderAbortsOnHealthFloor(t *testing.T) {
	ctx := context.Background()
	inv, _, _ := upgradeFleet(t, 2)
	u := &Upgrader{Inv: inv, Logf: t.Logf}
	if _, err := u.Start(nil, 0.9); err != nil {
		t.Fatal(err)
	}
	if msg := u.Step(ctx); !strings.Contains(msg, "draining a") {
		t.Fatalf("step = %q, want draining a", msg)
	}
	if msg := u.Step(ctx); !strings.Contains(msg, "aborted") {
		t.Fatalf("step = %q, want a floor abort", msg)
	}
	st := u.Status()
	if st.State != UpgradeAborted || !strings.Contains(st.Reason, "health floor") {
		t.Fatalf("status %+v, want aborted on the health floor", st)
	}
	if m, _ := inv.Member("a"); m.Draining {
		t.Fatal("abort did not undrain the current machine")
	}
}

// TestUpgraderAbortsWhenCurrentDies: a machine that dies mid-drain
// aborts the run — its apps are the rebalancer's machine-lost problem
// now, and an upgrade must not walk on through a degraded fleet.
func TestUpgraderAbortsWhenCurrentDies(t *testing.T) {
	ctx := context.Background()
	inv, part, hosts := upgradeFleet(t, 2)
	u := &Upgrader{Inv: inv, Logf: t.Logf}
	if _, err := u.Start([]string{"a"}, 0.1); err != nil {
		t.Fatal(err)
	}
	if msg := u.Step(ctx); !strings.Contains(msg, "draining a") {
		t.Fatalf("step = %q, want draining a", msg)
	}
	part.Isolate(hosts[0])
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); !m.Dead {
		t.Fatal("a not dead after the partition")
	}
	if msg := u.Step(ctx); !strings.Contains(msg, "aborted") {
		t.Fatalf("step = %q, want an abort", msg)
	}
	if st := u.Status(); st.State != UpgradeAborted || !strings.Contains(st.Reason, "failed mid-drain") {
		t.Fatalf("status %+v, want aborted mid-drain", st)
	}
	// The failure hand-off: a dead machine's drain is NOT rolled back —
	// undraining would re-admit it as a placement target on revival,
	// racing the urgent evacuation of its own apps.
	if m, _ := inv.Member("a"); !m.Draining {
		t.Fatal("abort undrained the dead machine; drain must stay for the failure hand-off")
	}
	part.Heal(hosts[0])
	inv.Poll(ctx)
	if m, _ := inv.Member("a"); m.Dead || !m.Draining {
		t.Fatalf("revived machine dead=%v draining=%v, want alive and still draining", m.Dead, m.Draining)
	}
}

// TestUpgraderFailureHandsOffToEvacuation: a machine that dies mid-
// drain while carrying apps aborts the upgrade without undraining, and
// the very next rebalance round evacuates its apps as machine-lost —
// the upgrade steps aside and the failure machinery owns the recovery.
func TestUpgraderFailureHandsOffToEvacuation(t *testing.T) {
	ctx := context.Background()
	inv, part, hosts := upgradeFleet(t, 3)
	cli, err := inv.Client("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []AppSpec{memSpec("ten-1"), memSpec("ten-2")} {
		if _, err := cli.Register(ctx, spec.registerRequest()); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)

	sc := NewScorer()
	reb := &Rebalancer{
		Inv:    inv,
		Placer: &Placer{Inv: inv, Scorer: sc, Logf: t.Logf},
		Scorer: sc,
		Logf:   t.Logf,
	}
	u := &Upgrader{Inv: inv, Logf: t.Logf}
	if _, err := u.Start([]string{"a"}, 0.1); err != nil {
		t.Fatal(err)
	}
	if msg := u.Step(ctx); !strings.Contains(msg, "draining a") {
		t.Fatalf("step = %q, want draining a", msg)
	}
	// The drain is still converging (apps on a) when the machine dies.
	part.Isolate(hosts[0])
	inv.Poll(ctx)
	if msg := u.Step(ctx); !strings.Contains(msg, "handing off") {
		t.Fatalf("step = %q, want the hand-off abort", msg)
	}

	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 2 {
		t.Fatalf("hand-off round planned %d moves, want both stranded apps", len(plan.Moves))
	}
	for _, mv := range plan.Moves {
		if mv.Reason != ReasonMachineLost || mv.From != "a" {
			t.Fatalf("move %+v, want machine-lost from a", mv)
		}
	}
}

// TestUpgraderStartValidation covers the Start error surface: floors
// outside [0,1], unknown machines, and double starts.
func TestUpgraderStartValidation(t *testing.T) {
	inv, _, _ := upgradeFleet(t, 2)
	u := &Upgrader{Inv: inv}
	if _, err := u.Start(nil, 1.5); err == nil {
		t.Fatal("floor 1.5 accepted")
	}
	if _, err := u.Start([]string{"ghost"}, 0); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("unknown machine: got %v, want ErrUnknownMember", err)
	}
	if _, err := u.Start(nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Start(nil, 0); !errors.Is(err, ErrUpgradeRunning) {
		t.Fatalf("double start: got %v, want ErrUpgradeRunning", err)
	}
	if st := u.Abort("test over"); st.State != UpgradeAborted {
		t.Fatalf("abort state %q, want aborted", st.State)
	}
	// An aborted run can be restarted.
	if _, err := u.Start(nil, 0); err != nil {
		t.Fatalf("restart after abort: %v", err)
	}
}

// TestServerUpgradeEndpoint drives the fleetd /v1/fleet/upgrade surface:
// start, status, conflict on double start (409), unknown machines (404),
// and abort; plus the drain endpoint's typed-error mapping (404 unknown,
// 409 dead).
func TestServerUpgradeEndpoint(t *testing.T) {
	ctx := context.Background()
	inv, part, hosts := upgradeFleet(t, 2)
	srv, fc := newFleetServer(t, inv)

	st, err := fc.UpgradeStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != UpgradeIdle {
		t.Fatalf("initial state %q, want idle", st.State)
	}

	if _, err := fc.Upgrade(ctx, UpgradeRequest{Action: "start", Machines: []string{"ghost"}}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("upgrade of unknown machine: %v, want a 404", err)
	}
	st, err = fc.Upgrade(ctx, UpgradeRequest{Action: "start", HealthFloor: 0.3})
	if err != nil || st.State != UpgradeRunning {
		t.Fatalf("start: %+v, %v", st, err)
	}
	if _, err := fc.Upgrade(ctx, UpgradeRequest{Action: "start"}); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("double start: %v, want a 409", err)
	}

	// The server's control loop is not running (newFleetServer never
	// Starts it); tick the controller directly and observe over HTTP.
	srv.Upgrader().Step(ctx)
	st, err = fc.UpgradeStatus(ctx)
	if err != nil || st.Current != "a" {
		t.Fatalf("status mid-run: %+v, %v; want current=a", st, err)
	}

	st, err = fc.Upgrade(ctx, UpgradeRequest{Action: "abort"})
	if err != nil || st.State != UpgradeAborted {
		t.Fatalf("abort: %+v, %v", st, err)
	}
	if m, _ := inv.Member("a"); m.Draining {
		t.Fatal("abort over HTTP did not undrain the current machine")
	}

	// Drain endpoint typed errors: unknown is 404, dead is 409.
	if _, err := fc.Drain(ctx, "ghost", false); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("drain unknown: %v, want a 404", err)
	}
	part.Isolate(hosts[1])
	inv.Poll(ctx)
	if _, err := fc.Drain(ctx, "b", false); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("drain dead: %v, want a 409", err)
	}
	// Undraining a dead machine stays allowed (clears the flag for its
	// eventual revival).
	if _, err := fc.Drain(ctx, "b", true); err != nil {
		t.Fatalf("undrain dead: %v", err)
	}
}
