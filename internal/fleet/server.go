package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/roofline"
)

// ServerConfig tunes a fleet Server.
type ServerConfig struct {
	// Inventory is the member tracker. Required; add members before or
	// after construction.
	Inventory *Inventory
	// PollInterval is the background inventory refresh period between
	// rebalance rounds (default 2s).
	PollInterval time.Duration
	// RebalanceInterval is the control-loop period (default 10s).
	RebalanceInterval time.Duration
	// MaxMovesPerRound and Threshold tune the rebalancer (see
	// Rebalancer; zero values take its defaults).
	MaxMovesPerRound int
	Threshold        float64
	// DomainSpread enables the failure-domain anti-affinity tie-break in
	// placement decisions (see Scorer.DomainSpread).
	DomainSpread bool
	// Objective names the placement objective ("" or "total-gflops" for
	// the default aggregate, "weighted-priority", "max-min"; see
	// roofline.ObjectiveSpecByName).
	Objective string
	// DisablePreemption turns priority preemption off fleet-wide — both
	// the rebalancer's inversion-repair pass and gang-admission
	// eviction. A/B experiments only.
	DisablePreemption bool
	// StormFraction, StormBudget, and AdmissionCap tune the rebalancer's
	// mass-failure storm brake (see Rebalancer; zero values take its
	// defaults).
	StormFraction float64
	StormBudget   int
	AdmissionCap  int
	// Logf, when set, receives placement and rebalance logs.
	Logf func(format string, args ...any)
}

// Server exposes the placement subsystem over HTTP. Create with
// NewServer, mount Handler, and call Start/Close around its lifetime to
// run the background poll + rebalance loop (handlers work without
// Start; /v1/fleet/plan and place poll on demand in tests that drive
// rounds manually).
type Server struct {
	cfg ServerConfig
	inv *Inventory
	pl  *Placer
	reb *Rebalancer
	upg *Upgrader
	mux *http.ServeMux

	// placeMu serializes placement decisions so two concurrent place
	// calls cannot both pick the same "emptiest" machine unseen.
	placeMu sync.Mutex

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewServer builds the server and its Placer/Rebalancer around the
// configured inventory.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Inventory == nil {
		return nil, errors.New("fleet: no inventory configured")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	if cfg.RebalanceInterval <= 0 {
		cfg.RebalanceInterval = 10 * time.Second
	}
	sc := NewScorer()
	sc.DomainSpread = cfg.DomainSpread
	spec, err := roofline.ObjectiveSpecByName(cfg.Objective)
	if err != nil {
		return nil, err
	}
	sc.Objective = spec
	pl := &Placer{Inv: cfg.Inventory, Scorer: sc, DisablePreemption: cfg.DisablePreemption, Logf: cfg.Logf}
	s := &Server{
		cfg: cfg,
		inv: cfg.Inventory,
		pl:  pl,
		reb: &Rebalancer{
			Inv: cfg.Inventory, Placer: pl, Scorer: sc,
			MaxMovesPerRound: cfg.MaxMovesPerRound, Threshold: cfg.Threshold,
			StormFraction: cfg.StormFraction, StormBudget: cfg.StormBudget,
			AdmissionCap:      cfg.AdmissionCap,
			DisablePreemption: cfg.DisablePreemption,
			Logf:              cfg.Logf,
		},
		upg:  &Upgrader{Inv: cfg.Inventory, Logf: cfg.Logf},
		mux:  http.NewServeMux(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Gang-admission preemption victims share the rebalancer's cooldown
	// clock, so an evicted app is damped against follow-up churn.
	pl.OnMoved = s.reb.noteMoved
	s.mux.HandleFunc("/v1/fleet/place", s.handlePlace)
	s.mux.HandleFunc("/v1/fleet/gang", s.handleGang)
	s.mux.HandleFunc("/v1/fleet/machines", s.handleMachines)
	s.mux.HandleFunc("/v1/fleet/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/fleet/drain", s.handleDrain)
	s.mux.HandleFunc("/v1/fleet/upgrade", s.handleUpgrade)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Inventory returns the underlying inventory.
func (s *Server) Inventory() *Inventory { return s.inv }

// Placer returns the underlying placer.
func (s *Server) Placer() *Placer { return s.pl }

// Rebalancer returns the underlying rebalancer.
func (s *Server) Rebalancer() *Rebalancer { return s.reb }

// Upgrader returns the rolling-upgrade controller.
func (s *Server) Upgrader() *Upgrader { return s.upg }

// Start launches the background poll + rebalance loop.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(s.done)
		ctx := context.Background()
		poll := time.NewTicker(s.cfg.PollInterval)
		defer poll.Stop()
		reb := time.NewTicker(s.cfg.RebalanceInterval)
		defer reb.Stop()
		s.inv.Poll(ctx)
		for {
			select {
			case <-s.stop:
				return
			case <-poll.C:
				s.inv.Poll(ctx)
			case <-reb.C:
				s.placeMu.Lock()
				if _, err := s.reb.Round(ctx); err != nil && s.cfg.Logf != nil {
					s.cfg.Logf("fleet: rebalance round: %v", err)
				}
				// The upgrade controller ticks at rebalance cadence: drain
				// progress is produced by rounds, so that is how often it
				// can be observed.
				if msg := s.upg.Step(ctx); msg != "" && s.cfg.Logf != nil {
					s.cfg.Logf("%s", msg)
				}
				s.placeMu.Unlock()
			}
		}
	}()
}

// Close stops the background loop (idempotent; safe without Start).
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ctrlplane.ErrorResponse{Error: msg})
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var spec AppSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if _, err := spec.rooflineApp(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.placeMu.Lock()
	d, placed, err := s.pl.Place(r.Context(), spec)
	s.placeMu.Unlock()
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, ErrNoCandidate) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	member, _ := s.inv.Member(d.Member)
	writeJSON(w, http.StatusOK, PlaceResponse{
		Machine: d.Member, ID: placed.ID, Endpoints: member.Endpoints,
		Score: d.Score, After: d.After,
	})
}

func (s *Server) handleGang(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var g GangSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if err := g.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.placeMu.Lock()
	res, err := s.pl.PlaceGang(r.Context(), g)
	s.placeMu.Unlock()
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, ErrNoCandidate) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.machines())
}

// machines builds the wire view from the current snapshot.
func (s *Server) machines() *MachinesResponse {
	now := time.Now()
	if s.inv.cfg.Clock != nil {
		now = s.inv.cfg.Clock()
	}
	resp := &MachinesResponse{}
	for _, m := range s.inv.Snapshot() {
		v := MachineView{
			ID: m.ID, Domain: m.Domain, Endpoints: m.Endpoints, Draining: m.Draining,
			Apps: m.Apps, NUMABadApps: m.NUMABadApps(),
			TotalGFLOPS: m.TotalGFLOPS, Generation: m.Generation,
			Failures: m.Failures, StaleApps: m.Stale,
			SinceSeenMillis: -1,
		}
		if v.Apps == nil {
			v.Apps = []PlacedApp{}
		}
		if m.Topology != nil {
			v.Machine = m.Topology.Name
		}
		if !m.LastSeen.IsZero() {
			v.SinceSeenMillis = now.Sub(m.LastSeen).Milliseconds()
		}
		switch {
		case m.Quarantined:
			v.Status = StatusQuarantined
			if left := m.QuarantineUntil.Sub(now); left > 0 {
				v.QuarantinedForMillis = left.Milliseconds()
			}
		case m.Dead:
			v.Status = StatusDead
		case m.Topology == nil:
			v.Status = StatusUnknown
		case m.Failures > 0:
			v.Status = StatusSuspect
		default:
			v.Status = StatusHealthy
		}
		if v.Status == StatusHealthy || v.Status == StatusSuspect {
			resp.FleetGFLOPS += m.TotalGFLOPS
		}
		resp.Machines = append(resp.Machines, v)
	}
	return resp
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.inv.Poll(r.Context())
	plan, err := s.reb.Plan(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if plan.Moves == nil {
		plan.Moves = []Move{}
	}
	writeJSON(w, http.StatusOK, plan)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DrainRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if err := s.inv.SetDraining(req.Machine, !req.Undo); err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrUnknownMember):
			status = http.StatusNotFound
		case errors.Is(err, ErrMemberDead):
			status = http.StatusConflict
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, DrainResponse{Machine: req.Machine, Draining: !req.Undo})
}

func (s *Server) handleUpgrade(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.upg.Status())
	case http.MethodPost:
		var req UpgradeRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
			return
		}
		switch req.Action {
		case "start":
			st, err := s.upg.Start(req.Machines, req.HealthFloor)
			if err != nil {
				status := http.StatusBadRequest
				switch {
				case errors.Is(err, ErrUpgradeRunning):
					status = http.StatusConflict
				case errors.Is(err, ErrUnknownMember):
					status = http.StatusNotFound
				}
				writeError(w, status, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, st)
		case "abort":
			writeJSON(w, http.StatusOK, s.upg.Abort("operator abort"))
		default:
			writeError(w, http.StatusBadRequest, "action must be start or abort")
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := FleetHealthResponse{Status: "ok"}
	for _, m := range s.inv.Snapshot() {
		resp.Machines++
		switch {
		case m.Quarantined:
			resp.Quarantined++
		case m.Dead:
			resp.Dead++
		case m.Healthy():
			resp.Healthy++
		}
		if m.Draining {
			resp.Draining++
		}
		resp.Apps += len(m.Apps)
	}
	if resp.Dead > 0 || resp.Quarantined > 0 || resp.Healthy == 0 {
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}
