package fleet

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/ctrlplane/client"
	"repro/internal/roofline"
)

// TestFleetEndToEnd is the PR's acceptance scenario: a fleetd over
// three paper-model coopd machines places the fleet-sized Table I mix
// (6 memory-bound + 2 compute-bound apps) plus two NUMA-bad apps,
// beats the best single-machine packing, honors anti-affinity, and —
// after one machine is killed — re-places its apps within a bounded
// number of rebalance rounds while each survivor still reproduces the
// paper's Table I ranking (optimal ~254 > even ~140 > node-per-app
// ~128).
func TestFleetEndToEnd(t *testing.T) {
	ctx := context.Background()
	machines := map[string]*httptest.Server{
		"a": newCoopd(t), "b": newCoopd(t), "c": newCoopd(t),
	}
	inv := NewInventory(InventoryConfig{
		NewClient: fastClients(nil),
		FailAfter: 2,
		Logf:      t.Logf,
	})
	for _, id := range []string{"a", "b", "c"} {
		if err := inv.Add(id, machines[id].URL); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)
	srv, err := NewServer(ServerConfig{
		Inventory:        inv,
		MaxMovesPerRound: 2,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	fc := NewClient(hs.URL, nil)

	// Phase 1: place the 8-app mix through the fleet API. Greedy
	// marginal scoring spreads it {mem, comp} / {mem, comp} / {4 mem}.
	placedOn := map[string]string{} // app name -> machine
	for _, spec := range tableIMixSpecs() {
		resp, err := fc.Place(ctx, spec)
		if err != nil {
			t.Fatalf("placing %s: %v", spec.Name, err)
		}
		placedOn[spec.Name] = resp.Machine
		t.Logf("placed %s on %s (score %+.1f)", spec.Name, resp.Machine, resp.Score)
	}
	wantOn := map[string]string{
		"mem-1": "a", "mem-2": "b", "mem-3": "c",
		"comp-1": "a", "comp-2": "b",
		"mem-4": "c", "mem-5": "c", "mem-6": "c",
	}
	for name, want := range wantOn {
		if placedOn[name] != want {
			t.Errorf("%s placed on %s, want %s", name, placedOn[name], want)
		}
	}

	// The fleet aggregate must beat the best single-machine packing of
	// the same demand (computed from the model, not hard-coded: one
	// machine must give every app a thread on every node, so the mix
	// solves to ~140 GFLOPS against the fleet's ~704).
	inv.Poll(ctx)
	fleetTotal := 0.0
	var allApps []roofline.App
	for _, m := range inv.Snapshot() {
		fleetTotal += m.TotalGFLOPS
		for _, a := range m.Apps {
			allApps = append(allApps, mustRoofline(t, a.Spec()))
		}
	}
	single, err := NewScorer().SolveTotal(inv.Snapshot()[0].Topology, allApps)
	if err != nil {
		t.Fatal(err)
	}
	if fleetTotal < single {
		t.Fatalf("fleet aggregate %g GFLOPS below single-machine packing %g", fleetTotal, single)
	}
	if !near(fleetTotal, 704) || !near(single, 140) {
		t.Errorf("aggregate %g / single-machine %g, want ~704 / ~140", fleetTotal, single)
	}

	// Phase 2: anti-affinity. Two NUMA-bad apps must land on different
	// machines — two all-data-on-node-0 demand sets on one machine fight
	// over home-node bandwidth.
	bad1, err := fc.Place(ctx, badSpec("bad-1"))
	if err != nil {
		t.Fatal(err)
	}
	bad2, err := fc.Place(ctx, badSpec("bad-2"))
	if err != nil {
		t.Fatal(err)
	}
	if bad1.Machine == bad2.Machine {
		t.Fatalf("both numa-bad apps on %s; anti-affinity violated", bad1.Machine)
	}
	// Clear them out again so the kill phase's Table I accounting stays
	// exact (clients deregister directly with their machine's coopd).
	for _, b := range []*PlaceResponse{bad1, bad2} {
		cli, err := inv.Client(b.Machine)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Deregister(ctx, b.ID); err != nil {
			t.Fatal(err)
		}
	}
	inv.Poll(ctx)

	// Phase 3: kill machine c (it hosts 4 memory-bound apps) and let
	// the rebalancer run. Bounded recovery: FailAfter=2 polls to declare
	// death, then 4 machine-lost moves at 2 per round — everything
	// re-homed within 5 rounds.
	machines["c"].Close()
	reb := srv.Rebalancer()
	rounds, lostMoves := 0, 0
	for i := 0; i < 5; i++ {
		plan, err := reb.Round(ctx)
		if err != nil {
			t.Fatalf("round %d: %v", i+1, err)
		}
		rounds++
		for _, mv := range plan.Moves {
			if mv.Reason != ReasonMachineLost {
				t.Fatalf("round %d: unexpected %s move %+v", i+1, mv.Reason, mv)
			}
			if mv.From != "c" {
				t.Fatalf("round %d: move from %s, want only from the lost machine", i+1, mv.From)
			}
			lostMoves++
		}
		t.Logf("round %d: %d moves, %d deferred", i+1, len(plan.Moves), plan.Deferred)
		if c, _ := inv.Member("c"); c.Dead && len(c.Apps) == 0 && len(plan.Moves) == 0 {
			break
		}
	}
	if lostMoves != 4 {
		t.Fatalf("%d machine-lost moves, want the dead machine's 4 apps", lostMoves)
	}
	if rounds > 5 {
		t.Fatalf("recovery took %d rounds, want bounded", rounds)
	}

	// The fleet view reports the loss.
	ms, err := fc.Machines(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range ms.Machines {
		if mv.ID == "c" && mv.Status != StatusDead {
			t.Fatalf("machine c status %s, want dead", mv.Status)
		}
	}
	if !near(ms.FleetGFLOPS, 508) {
		t.Errorf("post-loss fleet aggregate %g, want ~508 (two Table I machines)", ms.FleetGFLOPS)
	}

	// Phase 4: each survivor now runs exactly the Table I mix (3 mem +
	// 1 comp) and must reproduce the paper's ranking.
	for _, id := range []string{"a", "b"} {
		if n := appsOn(t, inv, id); n != 4 {
			t.Fatalf("survivor %s hosts %d apps, want 4", id, n)
		}
		cli := client.New(machines[id].URL, client.Config{})
		assertTableIRanking(t, "survivor "+id, cli)
	}
}
