package fleet

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/faultinject"
	"repro/internal/machine"
)

// newCoopdOn starts a coopd over an arbitrary machine model — the
// preemption tests use tiny 2-node x 2-core machines so a demand set
// overruns the floor capacity with a handful of apps.
func newCoopdOn(t *testing.T, m *machine.Machine) *httptest.Server {
	t.Helper()
	srv, err := ctrlplane.NewServer(ctrlplane.ServerConfig{
		Machine:    m,
		DefaultTTL: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// registerWithPriority registers the spec on the member through its
// coopd and records the placement fleet-side, the way Placer.Place and
// Rebalancer.Execute do — the only path that teaches the Inventory the
// app's class (member coopds never see priorities).
func registerWithPriority(t *testing.T, inv *Inventory, member string, spec AppSpec) {
	t.Helper()
	cli, err := inv.Client(member)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Register(context.Background(), spec.registerRequest())
	if err != nil {
		t.Fatal(err)
	}
	inv.noteRegistered(member, spec.placed(resp.ID))
}

// preemptFleet builds the canonical inversion: two 2x2-core machines,
// machine a hosting one latency app plus two batch apps — three apps
// against a floor capacity of two, so someone on a is starved of a
// guaranteed core while b sits empty. Threshold is floored so the
// imbalance pass stays quiet and the preemption pass is isolated.
func preemptFleet(t *testing.T) (*Inventory, *Rebalancer) {
	t.Helper()
	ctx := context.Background()
	tiny := func(name string) *machine.Machine { return machine.Uniform(name, 2, 2, 10, 32, 0) }
	a, b := newCoopdOn(t, tiny("tiny-a")), newCoopdOn(t, tiny("tiny-b"))
	inv := NewInventory(InventoryConfig{NewClient: fastClients(nil), FailAfter: 2})
	if err := inv.Add("a", a.URL); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add("b", b.URL); err != nil {
		t.Fatal(err)
	}
	inv.Poll(ctx)
	lat := memSpec("lat")
	lat.Priority = PriorityLatency
	registerWithPriority(t, inv, "a", lat)
	registerWithPriority(t, inv, "a", memSpec("batch-1"))
	registerWithPriority(t, inv, "a", memSpec("batch-2"))
	inv.Poll(ctx)
	sc := NewScorer()
	reb := &Rebalancer{
		Inv:              inv,
		Placer:           &Placer{Inv: inv, Scorer: sc, Logf: t.Logf},
		Scorer:           sc,
		MaxMovesPerRound: 4,
		Threshold:        0.01,
		Logf:             t.Logf,
	}
	return inv, reb
}

// TestPreemptRepairsPriorityInversion: the quiet-round repair pass
// evicts exactly one batch app (the overrun) off the starved latency
// machine onto the empty one, marks it with the preempt reason, starts
// its cooldown, and reaches a steady state with no further churn.
func TestPreemptRepairsPriorityInversion(t *testing.T) {
	ctx := context.Background()
	inv, reb := preemptFleet(t)

	plan, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 {
		t.Fatalf("planned %d moves, want exactly the floor overrun (1): %+v", len(plan.Moves), plan.Moves)
	}
	mv := plan.Moves[0]
	if mv.Reason != ReasonPreempt || mv.From != "a" || mv.To != "b" {
		t.Fatalf("move %+v, want preempt a -> b", mv)
	}
	if mv.App.Priority != "" && mv.App.Priority != PriorityBatch {
		t.Fatalf("preempted the %s-class app %s, want a batch victim", mv.App.Priority, mv.App.Name)
	}
	if !reb.onCooldown(mv.App.Name) {
		t.Fatalf("victim %s not cooling down after its preemption", mv.App.Name)
	}

	inv.Poll(ctx)
	if n := appsOn(t, inv, "a"); n != 2 {
		t.Fatalf("a hosts %d apps after repair, want floor capacity 2", n)
	}
	if n := appsOn(t, inv, "b"); n != 1 {
		t.Fatalf("b hosts %d apps after repair, want the re-homed victim", n)
	}
	ma, _ := inv.Member("a")
	found := false
	for _, app := range ma.Apps {
		if app.Name == "lat" {
			if app.Priority != PriorityLatency {
				t.Fatalf("latency app lost its class across the poll: %+v", app)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("latency app preempted off its own machine")
	}

	again, err := reb.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Moves) != 0 {
		t.Fatalf("steady state still churns: %+v", again.Moves)
	}
}

// TestPreemptDisabledLeavesInversion: the A/B knob — with the pass off,
// the same inversion persists round after round (the regression the
// fleetsim hardening-off scenario demonstrates at scale).
func TestPreemptDisabledLeavesInversion(t *testing.T) {
	ctx := context.Background()
	inv, reb := preemptFleet(t)
	reb.DisablePreemption = true

	for round := 0; round < 2; round++ {
		plan, err := reb.Round(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Moves) != 0 {
			t.Fatalf("round %d planned %+v with preemption disabled, want none", round, plan.Moves)
		}
	}
	if n := appsOn(t, inv, "a"); n != 3 {
		t.Fatalf("a hosts %d apps, want the inversion left in place (3)", n)
	}
}

// TestPreemptRespectsBudgetAndCooldown: with a one-move budget and a
// two-slot overrun, the repair evicts one victim per round; the
// just-moved victim's cooldown does not block the *other* victim next
// round, so the inversion drains incrementally under the churn bound.
func TestPreemptRespectsBudgetAndCooldown(t *testing.T) {
	ctx := context.Background()
	inv, reb := preemptFleet(t)
	reb.MaxMovesPerRound = 1
	// A third batch app makes the overrun 2 against budget 1.
	registerWithPriority(t, inv, "a", memSpec("batch-3"))
	inv.Poll(ctx)

	seen := map[string]bool{}
	for round := 0; round < 2; round++ {
		plan, err := reb.Round(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Moves) != 1 || plan.Moves[0].Reason != ReasonPreempt {
			t.Fatalf("round %d: moves %+v, want one preempt move", round, plan.Moves)
		}
		name := plan.Moves[0].App.Name
		if seen[name] {
			t.Fatalf("round %d re-preempted %s inside its cooldown", round, name)
		}
		seen[name] = true
		inv.Poll(ctx)
	}
	if n := appsOn(t, inv, "a"); n != 2 {
		t.Fatalf("a hosts %d apps after two repair rounds, want 2", n)
	}
}

// TestEvacTriagePrefersHigherClasses: when a member dies carrying a
// latency app registered after a pile of batch apps, both the plain
// urgent pass and the storm triage re-home the latency app first — the
// class outranks registration order and marginal-GFLOPS score alike.
func TestEvacTriagePrefersHigherClasses(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name  string
		storm bool
	}{{"storm", true}, {"plain", false}} {
		t.Run(tc.name, func(t *testing.T) {
			part := faultinject.NewPartition()
			inv := NewInventory(InventoryConfig{
				NewClient: fastClients(part.Transport(nil)),
				FailAfter: 1,
				Logf:      t.Logf,
			})
			hosts := make(map[string]string)
			for _, id := range []string{"a", "b"} {
				hs := newCoopd(t)
				hosts[id] = hostOf(t, hs.URL)
				if err := inv.Add(id, hs.URL); err != nil {
					t.Fatal(err)
				}
			}
			inv.Poll(ctx)
			registerWithPriority(t, inv, "a", memSpec("batch-1"))
			registerWithPriority(t, inv, "a", memSpec("batch-2"))
			lat := memSpec("lat")
			lat.Priority = PriorityLatency
			registerWithPriority(t, inv, "a", lat)
			inv.Poll(ctx)

			sc := NewScorer()
			reb := &Rebalancer{
				Inv:               inv,
				Placer:            &Placer{Inv: inv, Scorer: sc, Logf: t.Logf},
				Scorer:            sc,
				MaxMovesPerRound:  1,
				DisableStormBrake: !tc.storm,
				Logf:              t.Logf,
			}
			part.Isolate(hosts["a"])
			inv.Poll(ctx)
			if m, _ := inv.Member("a"); !m.Dead {
				t.Fatal("a not dead after the partition")
			}
			plan, err := reb.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if plan.StormActive != tc.storm {
				t.Fatalf("StormActive = %v, want %v", plan.StormActive, tc.storm)
			}
			if len(plan.Moves) != 1 {
				t.Fatalf("planned %d moves under budget 1, want 1", len(plan.Moves))
			}
			if mv := plan.Moves[0]; mv.App.Name != "lat" {
				t.Fatalf("first evacuation is %s, want the latency app ahead of the batch backlog", mv.App.Name)
			}
		})
	}
}
