package fleet

import (
	"sort"

	"repro/internal/roofline"
)

// Preemption: when a higher-class app (or gang member) cannot be
// admitted floor-feasibly, the fleet evicts the cheapest lower-class
// victims — by lost aggregate GFLOPS per freed floor slot — from the
// target machine and re-homes them on machines where they cannot cause
// a priority inversion. Two callers share the machinery here:
//
//   - the Rebalancer's planPreempt pass repairs inversions the urgent
//     evacuation left behind (a latency app re-homed onto a full
//     machine during a loss), and
//   - gang admission makes room for a high-class gang member during
//     planning, before anything registers.
//
// Victim moves carry ReasonPreempt, draw from the same per-round move
// budget as every other pass, and start the moved app's cooldown, so
// preemption cannot thrash the fleet any harder than a rebalance can.

// hostRanks returns each member's highest hosted class rank — the
// inversion-avoidance input for victim destinations: pushing a machine
// that hosts a class above the victim's over its floor capacity would
// only move the inversion, not fix it.
func hostRanks(members []Member) map[string]int {
	out := make(map[string]int, len(members))
	for i := range members {
		m := &members[i]
		top := 0
		for _, a := range m.Apps {
			if r := ClassRank(a.Priority); r > top {
				top = r
			}
		}
		out[m.ID] = top
	}
	return out
}

// victimPool lists the indices of apps below rank on one member that
// are eligible for eviction (skip filters apps on cooldown or known to
// be stale duplicates).
func victimPool(apps []PlacedApp, rank int, skip func(PlacedApp) bool) []int {
	var out []int
	for i := range apps {
		if ClassRank(apps[i].Priority) >= rank {
			continue
		}
		if skip != nil && skip(apps[i]) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// planEvictions frees up to need floor slots on candidate c (backed by
// the member's app list) by evicting its cheapest victims below rank.
// Cheapest means smallest aggregate loss on c per freed slot, measured
// by re-solving c's demand without each eligible victim. Each victim is
// re-homed by an ordinary placement decision over the other candidates,
// restricted — when possible — to machines that either have free floor
// capacity or host nothing above the victim's own class, so the
// eviction cannot create a new inversion elsewhere. The victims'
// removal and their destinations' commits are simulated on the
// candidate set, so callers' subsequent decisions see the post-eviction
// fleet. Returns the planned ReasonPreempt moves (nil when no eviction
// is possible).
//
// apps must be the snapshot app list c's demand was built from;
// entries committed to c afterwards (a gang's earlier members) are
// preserved but never chosen as victims.
func (sc *Scorer) planEvictions(c *candidate, apps []PlacedApp, rank, need int,
	cands []*candidate, hostRank map[string]int, skip func(PlacedApp) bool) []Move {
	if need <= 0 || rank <= 0 {
		return nil
	}
	pool := victimPool(apps, rank, skip)
	if len(pool) == 0 {
		return nil
	}
	if need > len(pool) {
		// Evicting every lower-class app still relieves the inversion —
		// whatever starvation remains is among equals.
		need = len(pool)
	}

	// Map app index -> demand index: appendDemandSet appends in app
	// order, skipping specs the model rejects.
	demandIdx := make([]int, len(apps))
	di := 0
	for i := range apps {
		if _, err := apps[i].EffectiveSpec().rooflineApp(); err != nil {
			demandIdx[i] = -1
			continue
		}
		demandIdx[i] = di
		di++
	}

	base, err := sc.SolveTotal(c.topo, c.demand)
	if err != nil {
		return nil
	}
	// Loss of each eligible victim: solved aggregate with it minus
	// without it. One-shot (not re-ranked between evictions) — the
	// solve memo makes each measurement one cached ±1 solve.
	type scored struct {
		appIdx int
		loss   float64
	}
	losses := make([]scored, 0, len(pool))
	scratch := make([]roofline.App, 0, len(c.demand))
	for _, ai := range pool {
		dIdx := demandIdx[ai]
		if dIdx < 0 {
			continue
		}
		rest := append(append(scratch[:0], c.demand[:dIdx]...), c.demand[dIdx+1:]...)
		after, err := sc.SolveTotal(c.topo, rest)
		if err != nil {
			continue
		}
		losses = append(losses, scored{appIdx: ai, loss: base - after})
	}
	if len(losses) == 0 {
		return nil
	}
	sort.Slice(losses, func(a, b int) bool {
		if losses[a].loss != losses[b].loss {
			return losses[a].loss < losses[b].loss
		}
		return apps[losses[a].appIdx].ID < apps[losses[b].appIdx].ID
	})
	if need > len(losses) {
		need = len(losses)
	}

	var moves []Move
	// Evict cheapest-first; demandIdx is re-shifted after each removal
	// so later victims still map to their demand entries.
	chosen := losses[:need]
	for _, v := range chosen {
		victim := apps[v.appIdx]
		vrank := ClassRank(victim.Priority)
		spec := victim.EffectiveSpec()

		// Destination pool: everything but the target, preferring
		// machines where the victim cannot cause an inversion.
		safe := make([]*candidate, 0, len(cands))
		rest := make([]*candidate, 0, len(cands))
		for _, cc := range cands {
			if cc == c {
				continue
			}
			rest = append(rest, cc)
			if len(cc.demand)+1 <= FloorCapacity(cc.topo) || hostRank[cc.id] <= vrank {
				safe = append(safe, cc)
			}
		}
		dst := safe
		if len(dst) == 0 {
			dst = rest
		}
		if len(dst) == 0 {
			break // single-machine fleet: nowhere to put victims
		}
		d, dc, err := sc.decide(spec, dst)
		if err != nil {
			continue
		}
		// Simulate: victim leaves c, lands on dc.
		c.removeDemandAt(demandIdx[v.appIdx], spec)
		for i := range apps {
			if demandIdx[i] > demandIdx[v.appIdx] {
				demandIdx[i]--
			}
		}
		demandIdx[v.appIdx] = -1
		dc.commit(spec)
		moves = append(moves, Move{
			AppID: victim.ID, App: spec, From: c.id, To: d.Member,
			Reason: ReasonPreempt, Score: d.Score,
		})
	}
	return moves
}
