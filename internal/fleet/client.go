package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/ctrlplane"
)

// Client is the typed client for the fleetd HTTP API, used by `coopctl
// fleet` and tests. It is deliberately thinner than the coopd client
// (no retries: fleet operations are operator-driven, and a placement
// retried blindly could double-register).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the fleetd at baseURL. httpClient may
// be nil (a dedicated client with a 10s timeout is used).
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// do performs one API call; in/out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var rd io.Reader
	if in != nil {
		body, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fleet: encoding request: %w", err)
		}
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("fleet: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return fmt.Errorf("fleet: reading response: %w", err)
	}
	if resp.StatusCode >= 400 {
		msg := strings.TrimSpace(string(data))
		var er ctrlplane.ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return fmt.Errorf("fleet: server returned %d: %s", resp.StatusCode, msg)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("fleet: decoding response: %w", err)
		}
	}
	return nil
}

// Place asks the fleet to place an app and returns the chosen machine
// and app ID.
func (c *Client) Place(ctx context.Context, spec AppSpec) (*PlaceResponse, error) {
	var resp PlaceResponse
	if err := c.do(ctx, http.MethodPost, "/v1/fleet/place", spec, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PlaceGang asks the fleet to admit a gang atomically.
func (c *Client) PlaceGang(ctx context.Context, g GangSpec) (*GangResult, error) {
	var resp GangResult
	if err := c.do(ctx, http.MethodPost, "/v1/fleet/gang", g, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Machines lists the fleet's members.
func (c *Client) Machines(ctx context.Context) (*MachinesResponse, error) {
	var resp MachinesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/fleet/machines", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Plan returns the rebalancer's current dry-run plan.
func (c *Client) Plan(ctx context.Context) (*Plan, error) {
	var resp Plan
	if err := c.do(ctx, http.MethodGet, "/v1/fleet/plan", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Drain toggles draining on a member.
func (c *Client) Drain(ctx context.Context, machineID string, undo bool) (*DrainResponse, error) {
	var resp DrainResponse
	req := DrainRequest{Machine: machineID, Undo: undo}
	if err := c.do(ctx, http.MethodPost, "/v1/fleet/drain", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Upgrade starts or aborts a rolling upgrade.
func (c *Client) Upgrade(ctx context.Context, req UpgradeRequest) (*UpgradeStatus, error) {
	var resp UpgradeStatus
	if err := c.do(ctx, http.MethodPost, "/v1/fleet/upgrade", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// UpgradeStatus reads the rolling-upgrade controller's state.
func (c *Client) UpgradeStatus(ctx context.Context) (*UpgradeStatus, error) {
	var resp UpgradeStatus
	if err := c.do(ctx, http.MethodGet, "/v1/fleet/upgrade", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health reads the fleet /healthz.
func (c *Client) Health(ctx context.Context) (*FleetHealthResponse, error) {
	var resp FleetHealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
