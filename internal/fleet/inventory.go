package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ctrlplane/client"
	"repro/internal/machine"
)

// Typed SetDraining outcomes, so callers (fleetd, the upgrade
// controller) can distinguish a member that does not exist from one
// whose drain request is meaningless in its current state.
var (
	// ErrUnknownMember is returned for operations naming a member the
	// inventory has never been told about.
	ErrUnknownMember = errors.New("fleet: unknown member")
	// ErrMemberDead rejects draining a dead member: its apps are already
	// being evacuated as machine-lost, so "drain" would only mask the
	// real state. Undraining a dead member is allowed (it clears a flag
	// for whenever the machine revives).
	ErrMemberDead = errors.New("fleet: member is dead")
)

// InventoryConfig tunes an Inventory.
type InventoryConfig struct {
	// NewClient builds the coopd client for one endpoint. Tests inject
	// fault-injecting transports here. Default: client.New with 2
	// attempts and a 2s request timeout (the inventory poll loop is the
	// retry mechanism; per-request persistence just delays detection).
	NewClient func(endpoint string) *client.Client
	// FailAfter is how many consecutive failed polls declare a member
	// dead (default 3).
	FailAfter int
	// PollTimeout bounds one member's poll (all endpoint attempts
	// combined) so a single hung coopd cannot stall the whole fleet
	// refresh; polling is sequential, so without it one member dripping
	// bytes delays every member after it in ID order. Default 5s;
	// negative disables the bound.
	PollTimeout time.Duration
	// Clock stamps LastSeen (default time.Now); tests pin it.
	Clock func() time.Time
	// FlapCount is the flap detector's trigger: this many alive<->dead
	// transitions within FlapWindow quarantine the member instead of
	// letting it oscillate against the rebalancer. 0 selects the default
	// (4, i.e. two full die/revive cycles); negative disables
	// quarantining entirely — only for A/B regression experiments.
	FlapCount int
	// FlapWindow is the flap detector's sliding window (default 60s).
	FlapWindow time.Duration
	// QuarantineBackoff is the first quarantine's re-admission backoff;
	// each consecutive quarantine doubles it, capped at
	// QuarantineMaxBackoff. Defaults 30s and 10m.
	QuarantineBackoff    time.Duration
	QuarantineMaxBackoff time.Duration
	// Logf, when set, receives state-transition logs.
	Logf func(format string, args ...any)
}

// Inventory tracks the fleet's member machines: their topology, demand
// set, and health, refreshed by polling each member's coopd API. All
// methods are safe for concurrent use; Poll holds no lock during
// network calls, so reads stay fast while a member times out.
type Inventory struct {
	cfg InventoryConfig

	mu      sync.Mutex
	members map[string]*member
	order   []string // member IDs, sorted; polling and snapshots follow it

	// priorities records each app name's scheduling class. Member coopd
	// registries know nothing about priority, so every poll would
	// otherwise erase it; instead the fleet keeps the class here and
	// stamps it back onto polled snapshots. Keyed by name (IDs are
	// machine-local and change on every move) and never pruned — the
	// map is bounded by the number of distinct app names the fleet has
	// ever placed with a non-default class.
	priorities map[string]string
}

// member is the mutable record behind a Member snapshot.
type member struct {
	id        string
	domain    string // failure domain (rack/zone); defaults to the id
	endpoints []string
	clis      []*client.Client
	preferred int // index of the endpoint that last answered

	topo     *machine.Machine
	apps     []PlacedApp
	total    float64
	gen      uint64
	failures int
	dead     bool
	draining bool
	lastSeen time.Time
	stale    []string

	// pollSeq sequences polls of this member: an outcome is applied only
	// if no newer poll has started since, so a stale in-flight success
	// (the response raced a partition cut and a fresher poll already
	// failed) cannot reset the failure counter.
	pollSeq uint64

	// Flap detector state: alive<->dead transition times inside the
	// sliding window, and the quarantine the detector imposed.
	transitions     []time.Time
	quarantined     bool
	quarantineUntil time.Time
	quarantines     int // consecutive quarantines, drives the backoff
}

// NewInventory builds an empty inventory.
func NewInventory(cfg InventoryConfig) *Inventory {
	if cfg.NewClient == nil {
		cfg.NewClient = func(endpoint string) *client.Client {
			return client.New(endpoint, client.Config{MaxAttempts: 2, RequestTimeout: 2 * time.Second})
		}
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.PollTimeout == 0 {
		cfg.PollTimeout = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.FlapCount == 0 {
		cfg.FlapCount = 4
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = time.Minute
	}
	if cfg.QuarantineBackoff <= 0 {
		cfg.QuarantineBackoff = 30 * time.Second
	}
	if cfg.QuarantineMaxBackoff <= 0 {
		cfg.QuarantineMaxBackoff = 10 * time.Minute
	}
	return &Inventory{cfg: cfg, members: map[string]*member{}, priorities: map[string]string{}}
}

func (inv *Inventory) logf(format string, args ...any) {
	if inv.cfg.Logf != nil {
		inv.cfg.Logf(format, args...)
	}
}

// Add registers a member machine by its coopd endpoint(s); several
// endpoints mean an HA pair the inventory fails over between. The
// member starts unknown (not healthy) until its first successful poll.
// Its failure domain defaults to its own ID (every machine its own
// domain); use AddDomain to group machines by rack or zone.
func (inv *Inventory) Add(id string, endpoints ...string) error {
	return inv.AddDomain(id, "", endpoints...)
}

// AddDomain is Add with an explicit failure-domain label (rack, zone,
// power feed — whatever fails together). Machines sharing a domain are
// expected to die together, so domain-spread placement keeps
// cooperating app groups apart and the storm brake treats a whole-domain
// kill as one correlated event. Empty domain defaults to the member ID.
func (inv *Inventory) AddDomain(id, domain string, endpoints ...string) error {
	if id == "" || len(endpoints) == 0 {
		return fmt.Errorf("fleet: member needs an id and at least one endpoint")
	}
	if domain == "" {
		domain = id
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if _, ok := inv.members[id]; ok {
		return fmt.Errorf("fleet: duplicate member %q", id)
	}
	m := &member{id: id, domain: domain, endpoints: append([]string(nil), endpoints...)}
	for _, ep := range endpoints {
		m.clis = append(m.clis, inv.cfg.NewClient(ep))
	}
	inv.members[id] = m
	inv.order = append(inv.order, id)
	sort.Strings(inv.order)
	return nil
}

// Poll refreshes every member, in ID order. One slow member delays the
// others within a round (polling is sequential for determinism) but
// never blocks Snapshot or placement reads.
func (inv *Inventory) Poll(ctx context.Context) {
	inv.mu.Lock()
	ids := append([]string(nil), inv.order...)
	inv.mu.Unlock()
	for _, id := range ids {
		inv.pollMember(ctx, id)
	}
}

// pollMember tries the member's endpoints starting at the last one that
// answered; any endpoint serving the full read set counts as success.
// The whole attempt runs under PollTimeout: a member that hangs
// mid-response burns its own deadline, not the rest of the round's.
func (inv *Inventory) pollMember(ctx context.Context, id string) {
	inv.mu.Lock()
	m, ok := inv.members[id]
	if !ok {
		inv.mu.Unlock()
		return
	}
	m.pollSeq++
	seq := m.pollSeq
	clis, preferred, needTopo := m.clis, m.preferred, m.topo == nil
	inv.mu.Unlock()

	if d := inv.cfg.PollTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	for k := 0; k < len(clis); k++ {
		i := (preferred + k) % len(clis)
		cli := clis[i]
		apps, err := cli.Apps(ctx)
		if err != nil {
			continue
		}
		alloc, err := cli.Allocations(ctx)
		if err != nil {
			continue
		}
		var topo *machine.Machine
		if needTopo {
			mr, err := cli.Machine(ctx)
			if err != nil {
				continue
			}
			topo = mr.Machine
		}
		placed := make([]PlacedApp, 0, len(apps.Apps))
		for _, v := range apps.Apps {
			placed = append(placed, placedFromView(v))
		}
		sort.Slice(placed, func(a, b int) bool { return placed[a].ID < placed[b].ID })

		inv.mu.Lock()
		if m.pollSeq != seq {
			// A newer poll of this member started while this one was in
			// flight; its outcome supersedes ours. Applying this stale
			// success would reset a failure count a fresher poll just
			// recorded (the partition-flap race).
			inv.mu.Unlock()
			return
		}
		if topo != nil {
			m.topo = topo
		}
		for i := range placed {
			if p, ok := inv.priorities[placed[i].Name]; ok {
				placed[i].Priority = p
			}
		}
		m.apps = placed
		m.total = alloc.TotalGFLOPS
		m.gen = alloc.Generation
		m.preferred = i
		m.failures = 0
		now := inv.cfg.Clock()
		m.lastSeen = now
		if m.dead {
			m.dead = false
			inv.logf("fleet: member %s revived (%d apps, %d stale re-homed ids)", id, len(placed), len(m.stale))
			inv.noteTransition(m, now)
		}
		if m.quarantined && !now.Before(m.quarantineUntil) {
			m.quarantined = false
			inv.logf("fleet: member %s re-admitted after quarantine #%d", id, m.quarantines)
		}
		if !m.quarantined && m.quarantines > 0 && !m.dead {
			// Forgiveness: a full flap window with no transitions resets
			// the backoff escalation.
			if n := pruneTransitions(m, now, inv.cfg.FlapWindow); n == 0 {
				m.quarantines = 0
			}
		}
		inv.mu.Unlock()
		return
	}

	inv.mu.Lock()
	if m.pollSeq != seq {
		inv.mu.Unlock()
		return // superseded by a newer poll (see the success path)
	}
	m.failures++
	if !m.dead && m.failures >= inv.cfg.FailAfter {
		m.dead = true
		inv.logf("fleet: member %s dead after %d failed polls (%d apps to re-home)", id, m.failures, len(m.apps))
		inv.noteTransition(m, inv.cfg.Clock())
	}
	inv.mu.Unlock()
}

// pruneTransitions drops transition stamps older than the window and
// returns how many remain. Caller holds inv.mu.
func pruneTransitions(m *member, now time.Time, window time.Duration) int {
	keep := m.transitions[:0]
	for _, t := range m.transitions {
		if now.Sub(t) <= window {
			keep = append(keep, t)
		}
	}
	m.transitions = keep
	return len(keep)
}

// noteTransition records one alive<->dead flip and runs the flap
// detector: FlapCount transitions inside FlapWindow quarantine the
// member with an exponential re-admission backoff, so a machine
// oscillating around the FailAfter threshold stops whipsawing the
// rebalancer — its apps are evacuated once and it is not a placement
// target again until the backoff expires AND a poll succeeds. Caller
// holds inv.mu.
func (inv *Inventory) noteTransition(m *member, now time.Time) {
	if inv.cfg.FlapCount < 0 {
		return // quarantining disabled (A/B regression experiments only)
	}
	pruneTransitions(m, now, inv.cfg.FlapWindow)
	m.transitions = append(m.transitions, now)
	if len(m.transitions) < inv.cfg.FlapCount {
		return
	}
	backoff := inv.cfg.QuarantineBackoff
	for i := 0; i < m.quarantines && backoff < inv.cfg.QuarantineMaxBackoff; i++ {
		backoff *= 2
	}
	if backoff > inv.cfg.QuarantineMaxBackoff {
		backoff = inv.cfg.QuarantineMaxBackoff
	}
	m.quarantines++
	m.quarantined = true
	m.quarantineUntil = now.Add(backoff)
	m.transitions = m.transitions[:0]
	inv.logf("fleet: member %s quarantined for %s after %d health transitions within %s (quarantine #%d)",
		m.id, backoff, inv.cfg.FlapCount, inv.cfg.FlapWindow, m.quarantines)
}

// snapshotLocked copies one member.
func (m *member) snapshot() Member {
	return Member{
		ID:        m.id,
		Domain:    m.domain,
		Endpoints: append([]string(nil), m.endpoints...),
		Topology:  m.topo,
		Apps:      append([]PlacedApp(nil), m.apps...),

		TotalGFLOPS: m.total,
		Generation:  m.gen,
		Failures:    m.failures,
		Dead:        m.dead,
		Draining:    m.draining,
		LastSeen:    m.lastSeen,
		Stale:       append([]string(nil), m.stale...),

		Quarantined:     m.quarantined,
		QuarantineUntil: m.quarantineUntil,
		Quarantines:     m.quarantines,
	}
}

// Snapshot returns every member, sorted by ID.
func (inv *Inventory) Snapshot() []Member {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	out := make([]Member, 0, len(inv.order))
	for _, id := range inv.order {
		out = append(out, inv.members[id].snapshot())
	}
	return out
}

// Member returns one member's snapshot.
func (inv *Inventory) Member(id string) (Member, bool) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	m, ok := inv.members[id]
	if !ok {
		return Member{}, false
	}
	return m.snapshot(), true
}

// SetDraining marks (or unmarks) a member for draining. A draining
// member receives no new placements and the rebalancer moves its apps
// off. Returns ErrUnknownMember for a member the inventory does not
// track, and ErrMemberDead when asked to drain a dead member (whose
// apps are already being evacuated as machine-lost); undraining a dead
// member is allowed.
func (inv *Inventory) SetDraining(id string, draining bool) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	m, ok := inv.members[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	if draining && m.dead {
		return fmt.Errorf("%w: %s", ErrMemberDead, id)
	}
	if m.draining != draining {
		m.draining = draining
		inv.logf("fleet: member %s draining=%v", id, draining)
	}
	return nil
}

// Client returns the member's preferred coopd client, for registration
// and deregistration calls.
func (inv *Inventory) Client(id string) (*client.Client, error) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	m, ok := inv.members[id]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown member %q", id)
	}
	return m.clis[m.preferred], nil
}

// RecordPriority teaches the fleet an app's scheduling class without a
// registration passing through the Placer — the escape hatch for apps
// that arrived behind the fleet's back (registered directly with a
// member's coopd, picked up by the next poll). Member registries never
// carry priority, so without this record such an app would stay batch
// forever. An empty priority erases the record (the app reverts to the
// batch default).
func (inv *Inventory) RecordPriority(name, priority string) error {
	if name == "" {
		return fmt.Errorf("fleet: RecordPriority needs an app name")
	}
	if err := CheckPriority(priority); err != nil {
		return err
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if priority == "" {
		delete(inv.priorities, name)
		return nil
	}
	inv.priorities[name] = priority
	return nil
}

// noteRegistered records an app the fleet just placed on a member, so
// scoring between polls sees it. The next poll overwrites the cache
// with the machine's authoritative registry.
func (inv *Inventory) noteRegistered(id string, app PlacedApp) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	m, ok := inv.members[id]
	if !ok {
		return
	}
	if app.Priority != "" {
		// Remember the class so the next poll (which rebuilds apps from
		// the member's priority-less registry) re-stamps it.
		inv.priorities[app.Name] = app.Priority
	}
	m.apps = append(m.apps, app)
	sort.Slice(m.apps, func(a, b int) bool { return m.apps[a].ID < m.apps[b].ID })
}

// noteDeregistered drops an app from a member's cached demand set.
func (inv *Inventory) noteDeregistered(id, appID string) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	m, ok := inv.members[id]
	if !ok {
		return
	}
	for i, a := range m.apps {
		if a.ID == appID {
			m.apps = append(m.apps[:i], m.apps[i+1:]...)
			break
		}
	}
}

// noteStale records an app ID that was re-homed off a dead member; if
// the member revives, the old registration is a duplicate to clean up.
func (inv *Inventory) noteStale(id, appID string) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if m, ok := inv.members[id]; ok {
		m.stale = append(m.stale, appID)
	}
}

// clearStale drops a cleaned-up stale ID.
func (inv *Inventory) clearStale(id, appID string) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	m, ok := inv.members[id]
	if !ok {
		return
	}
	for i, s := range m.stale {
		if s == appID {
			m.stale = append(m.stale[:i], m.stale[i+1:]...)
			return
		}
	}
}
