package fleet

import (
	"context"
	"fmt"

	"repro/internal/machine"
	"repro/internal/roofline"
)

// scoreTieEps is the margin within which two placement scores count as
// tied; ties break to the candidate with fewer apps, then the lower
// member ID, so repeated placements spread instead of piling onto the
// first machine.
const scoreTieEps = 1e-6

// ErrNoCandidate is returned when no healthy, non-draining member can
// host the app.
var ErrNoCandidate = fmt.Errorf("fleet: no healthy member can host the app")

// candidate is one member's scoring state during a decision. The
// rebalancer reuses candidates across several decisions, appending each
// chosen app so later decisions see earlier simulated moves.
type candidate struct {
	id     string
	topo   *machine.Machine
	demand []roofline.App
	apps   int
	bad    int // numa-bad registrations

	before    float64 // SolveTotal(demand), computed lazily
	beforeSet bool
}

// candidatesFrom builds scoring candidates from healthy, non-draining
// members (ID order is preserved from the snapshot).
func candidatesFrom(members []Member) []*candidate {
	var out []*candidate
	for i := range members {
		m := &members[i]
		if !m.Healthy() || m.Draining {
			continue
		}
		out = append(out, &candidate{
			id:     m.ID,
			topo:   m.Topology,
			demand: m.demandSet(),
			apps:   len(m.Apps),
			bad:    m.NUMABadApps(),
		})
	}
	return out
}

// Decision is the outcome of scoring one app against the fleet.
type Decision struct {
	// Member is the chosen machine.
	Member string
	// Score is the marginal aggregate GFLOPS of the placement (may be
	// negative: the least-bad bin).
	Score float64
	// After is the chosen machine's predicted aggregate with the app.
	After float64
}

// decide scores app against every candidate and picks the best bin.
// Anti-affinity: a numa-bad app avoids machines that already host a
// numa-bad demand set — two such sets on one machine serialize on each
// other's home-node bandwidth (the paper's Section III reversal). The
// rule is soft: if every machine already hosts one, the app still
// places on the best-scoring machine rather than being rejected.
func (sc *Scorer) decide(spec AppSpec, cands []*candidate) (*Decision, *candidate, error) {
	app, err := spec.rooflineApp()
	if err != nil {
		return nil, nil, err
	}
	pool := cands
	if spec.numaBad() {
		var clean []*candidate
		for _, c := range pool {
			if c.bad == 0 {
				clean = append(clean, c)
			}
		}
		if len(clean) > 0 {
			pool = clean
		}
	}
	var best *candidate
	var bestScore, bestAfter float64
	for _, c := range pool {
		if spec.numaBad() && (spec.HomeNode < 0 || spec.HomeNode >= c.topo.NumNodes()) {
			continue // home node does not exist on this machine
		}
		if !c.beforeSet {
			c.before, err = sc.SolveTotal(c.topo, c.demand)
			if err != nil {
				continue
			}
			c.beforeSet = true
		}
		with := make([]roofline.App, 0, len(c.demand)+1)
		with = append(with, c.demand...)
		with = append(with, app)
		after, err := sc.SolveTotal(c.topo, with)
		if err != nil {
			continue
		}
		score := after - c.before
		switch {
		case best == nil, score > bestScore+scoreTieEps:
			best, bestScore, bestAfter = c, score, after
		case score > bestScore-scoreTieEps && c.apps < best.apps:
			// Tied score: prefer the emptier machine (candidates arrive in
			// ID order, so equal-apps ties keep the first, lowest ID).
			best, bestScore, bestAfter = c, score, after
		}
	}
	if best == nil {
		return nil, nil, ErrNoCandidate
	}
	return &Decision{Member: best.id, Score: bestScore, After: bestAfter}, best, nil
}

// commit folds the decided app into the candidate so subsequent
// decisions against the same candidate set see it.
func (c *candidate) commit(spec AppSpec) {
	if app, err := spec.rooflineApp(); err == nil {
		c.demand = append(c.demand, app)
	}
	c.apps++
	if spec.numaBad() {
		c.bad++
	}
	c.beforeSet = false
}

// Placer assigns incoming apps to fleet members.
type Placer struct {
	Inv    *Inventory
	Scorer *Scorer
	// Logf, when set, receives placement logs.
	Logf func(format string, args ...any)
}

// Decide scores the app against the current inventory without
// registering it anywhere (the dry-run behind `coopctl fleet place -n`
// style tooling and the rebalancer's simulations).
func (p *Placer) Decide(spec AppSpec) (*Decision, error) {
	d, _, err := p.Scorer.decide(spec, candidatesFrom(p.Inv.Snapshot()))
	return d, err
}

// Place decides and registers the app on the chosen member's coopd,
// recording the placement in the inventory so immediately following
// decisions score against it.
func (p *Placer) Place(ctx context.Context, spec AppSpec) (*Decision, PlacedApp, error) {
	d, _, err := p.Scorer.decide(spec, candidatesFrom(p.Inv.Snapshot()))
	if err != nil {
		return nil, PlacedApp{}, err
	}
	cli, err := p.Inv.Client(d.Member)
	if err != nil {
		return nil, PlacedApp{}, err
	}
	resp, err := cli.Register(ctx, spec.registerRequest())
	if err != nil {
		return nil, PlacedApp{}, fmt.Errorf("fleet: registering %q on %s: %w", spec.Name, d.Member, err)
	}
	placed := PlacedApp{
		ID: resp.ID, Name: spec.Name, AI: spec.AI, Placement: spec.Placement,
		HomeNode: spec.HomeNode, MaxThreads: spec.MaxThreads, TTLMillis: spec.TTLMillis,
	}
	p.Inv.noteRegistered(d.Member, placed)
	if p.Logf != nil {
		p.Logf("fleet: placed %s on %s (marginal %+.1f GFLOPS, machine now %.1f)",
			resp.ID, d.Member, d.Score, d.After)
	}
	return d, placed, nil
}
