package fleet

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/machine"
	"repro/internal/roofline"
)

// scoreTieEps is the margin within which two placement scores count as
// tied; ties break to the candidate with fewer apps, then the lower
// member ID, so repeated placements spread instead of piling onto the
// first machine.
const scoreTieEps = 1e-6

// ErrNoCandidate is returned when no healthy, non-draining member can
// host the app.
var ErrNoCandidate = fmt.Errorf("fleet: no healthy member can host the app")

// candidate is one member's scoring state during a decision. The
// rebalancer reuses candidates across several decisions, appending each
// chosen app so later decisions see earlier simulated moves.
type candidate struct {
	id     string
	topo   *machine.Machine
	demand []roofline.App
	apps   int
	bad    int // numa-bad registrations

	// domain and groups exist only under domain-spread: the member's
	// failure domain and its per-cooperating-group app counts (group =
	// app name with the trailing "-<n>" replica suffix stripped). nil
	// groups means spread is off and the candidate carries zero extra
	// state.
	domain string
	groups map[string]int

	// keyBuf holds the candidate's equivalence-class key (topology hash
	// + sorted demand segments), built lazily into a reused backing
	// array and truncated on commit — the only invalidation the
	// content-addressed scheme needs. Empty means unset (a real key is
	// never shorter than the 8 topology-hash bytes).
	keyBuf []byte
}

// groupOf derives an app's cooperating-group label from its name: one
// trailing "-<digits>" replica suffix is stripped, so web-0..web-9 form
// group "web". A name without the suffix is its own group.
func groupOf(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// classKey returns the candidate's equivalence-class key, caching it on
// the candidate until the next commit changes the demand set.
func (c *candidate) classKey(sc *Scorer) []byte {
	if len(c.keyBuf) == 0 {
		c.keyBuf = appendSolveKey(c.keyBuf[:0], sc.topoHash(c.topo), c.demand)
	}
	return c.keyBuf
}

// candidateSet owns reusable scoring candidates: reset rebuilds the set
// from a member snapshot while keeping the candidate structs and their
// demand backing arrays, so the per-decision (and per-rebalance-round)
// allocation cost is amortized to zero. A candidateSet is not safe for
// concurrent use; the Placer pools them per call and the Rebalancer
// serializes rounds with planMu.
type candidateSet struct {
	all []*candidate // grown monotonically; structs and demand reused
	out []*candidate
}

// reset rebuilds the set from healthy, non-draining members (ID order
// preserved from the snapshot). withDemand=false leaves every
// candidate's demand set empty — the imbalance re-pack's from-scratch
// starting state. spread additionally loads each candidate's failure
// domain and per-group app counts for the domain-spread tie-break;
// with it off the candidates carry no domain state at all.
func (cs *candidateSet) reset(members []Member, withDemand, spread bool) []*candidate {
	cs.out = cs.out[:0]
	n := 0
	for i := range members {
		m := &members[i]
		if !m.Healthy() || m.Draining {
			continue
		}
		var c *candidate
		if n < len(cs.all) {
			c = cs.all[n]
		} else {
			c = &candidate{}
			cs.all = append(cs.all, c)
		}
		n++
		c.id, c.topo = m.ID, m.Topology
		c.demand, c.keyBuf = c.demand[:0], c.keyBuf[:0]
		c.apps, c.bad = 0, 0
		c.domain, c.groups = "", nil
		if spread {
			c.domain = m.Domain
			if c.domain == "" {
				c.domain = m.ID // every machine its own domain by default
			}
			c.groups = map[string]int{}
		}
		if withDemand {
			c.demand = appendDemandSet(c.demand, m.Apps)
			c.apps = len(m.Apps)
			c.bad = m.NUMABadApps()
			if spread {
				for _, a := range m.Apps {
					c.groups[groupOf(a.Name)]++
				}
			}
		}
		cs.out = append(cs.out, c)
	}
	return cs.out
}

// candSets pools candidate sets for the Placer's one-shot decisions.
var candSets = sync.Pool{New: func() any { return new(candidateSet) }}

// candidatesFrom builds scoring candidates from healthy, non-draining
// members. One-shot form of candidateSet.reset, kept for tests.
func candidatesFrom(members []Member) []*candidate {
	var cs candidateSet
	return cs.reset(members, true, false)
}

// Decision is the outcome of scoring one app against the fleet.
type Decision struct {
	// Member is the chosen machine.
	Member string
	// Score is the marginal aggregate GFLOPS of the placement (may be
	// negative: the least-bad bin).
	Score float64
	// After is the chosen machine's predicted aggregate with the app.
	After float64
	// Starved marks a placement that over-subscribes the machine's
	// floor capacity: the solve fell back from the one-thread-per-node
	// no-starvation floor to floor zero, so some apps there will run
	// with zero threads. The preemption pass uses it as the admission
	// signal for higher-class apps and gangs.
	Starved bool
}

// FloorCapacity is the largest demand-set size the machine can host
// floor-feasibly: floor-1 solves give every app at least one thread on
// every node, so the smallest node's core count is the exact bound —
// one more app and the fleet solve falls back to floor 0 (see
// Scorer.solveDemand).
func FloorCapacity(m *machine.Machine) int {
	c := m.Nodes[0].Cores
	for _, n := range m.Nodes[1:] {
		if n.Cores < c {
			c = n.Cores
		}
	}
	return c
}

// decide scores app against every candidate and picks the best bin.
// Candidates are grouped by equivalence class — (topology hash, demand
// multiset) — and each class is scored once per decision: its marginal
// is identical for every member of the class, so a homogeneous fleet
// costs one solve pair per decision instead of one per machine. The
// class scores themselves come from the Scorer's fleet-wide memo, so
// repeated decisions against an unchanged fleet run solve-free.
//
// Anti-affinity: a numa-bad app avoids machines that already host a
// numa-bad demand set — two such sets on one machine serialize on each
// other's home-node bandwidth (the paper's Section III reversal). The
// rule is soft: if every machine already hosts one, the app still
// places on the best-scoring machine rather than being rejected.
func (sc *Scorer) decide(spec AppSpec, cands []*candidate) (*Decision, *candidate, error) {
	app, err := spec.rooflineApp()
	if err != nil {
		return nil, nil, err
	}
	pool := cands
	if spec.numaBad() {
		var clean []*candidate
		for _, c := range pool {
			if c.bad == 0 {
				clean = append(clean, c)
			}
		}
		if len(clean) > 0 {
			pool = clean
		}
	}
	s := sc.getScratch()
	defer sc.putScratch(s)
	// Domain-spread: count the app's cooperating group per failure
	// domain across the whole fleet (not just the filtered pool — group
	// members on excluded machines still occupy their domain). The
	// counts drive a tie-break only; score always wins first.
	var domCount map[string]int
	var group string
	if sc.DomainSpread {
		group = groupOf(spec.Name)
		domCount = make(map[string]int, 8)
		for _, c := range cands {
			domCount[c.domain] += c.groups[group]
		}
	}
	var classes map[string]classResult
	var dkey []byte // decision-key scratch, only allocated under spread
	var best *candidate
	var bestScore, bestAfter float64
	for _, c := range pool {
		if spec.numaBad() && (spec.HomeNode < 0 || spec.HomeNode >= c.topo.NumNodes()) {
			continue // home node does not exist on this machine
		}
		key := c.classKey(sc)
		if sc.DomainSpread {
			// Under spread the decision-level class includes the domain:
			// two machines with identical (topology, demand) but different
			// domains are no longer interchangeable decisions. The
			// Scorer's solve memo stays domain-free — scores depend only
			// on topology and demand, so the class entries here share the
			// same underlying solves.
			dkey = append(append(dkey[:0], key...), c.domain...)
			key = dkey
		}
		r, ok := classes[string(key)] // byte-to-string map lookup: no alloc
		if !ok {
			r = sc.scoreClass(c.topo, c.demand, app, s)
			if classes == nil {
				classes = make(map[string]classResult, 4)
			}
			classes[string(key)] = r // allocates the key once per class
		}
		if r.failed {
			continue
		}
		score, after := r.score, r.after
		switch {
		case best == nil, score > bestScore+scoreTieEps:
			best, bestScore, bestAfter = c, score, after
		case score > bestScore-scoreTieEps && tieBreakBetter(domCount, c, best):
			// Tied score: under domain-spread prefer the domain hosting
			// the fewest of the app's cooperating group, then the emptier
			// machine (candidates arrive in ID order, so equal ties keep
			// the first, lowest ID).
			best, bestScore, bestAfter = c, score, after
		}
	}
	if best == nil {
		return nil, nil, ErrNoCandidate
	}
	d := &Decision{
		Member: best.id, Score: bestScore, After: bestAfter,
		Starved: len(best.demand)+1 > FloorCapacity(best.topo),
	}
	return d, best, nil
}

// tieBreakBetter decides score ties: under domain-spread (domCount
// non-nil) the candidate whose failure domain hosts fewer of the app's
// cooperating group wins; the fewer-apps rule breaks remaining ties.
// With domCount nil this is exactly the pre-spread tie-break.
func tieBreakBetter(domCount map[string]int, c, best *candidate) bool {
	if domCount != nil {
		cd, bd := domCount[c.domain], domCount[best.domain]
		if cd != bd {
			return cd < bd
		}
	}
	return c.apps < best.apps
}

// removeDemandAt is commit's inverse for the preemption pass: it drops
// the demand entry at index i (the spec describes the app backing it)
// so subsequent decisions against the candidate see the simulated
// eviction. The cached class key is dropped like commit does.
func (c *candidate) removeDemandAt(i int, spec AppSpec) {
	c.demand = append(c.demand[:i], c.demand[i+1:]...)
	c.apps--
	if spec.numaBad() {
		c.bad--
	}
	if c.groups != nil {
		g := groupOf(spec.Name)
		if n := c.groups[g]; n > 1 {
			c.groups[g] = n - 1
		} else {
			delete(c.groups, g)
		}
	}
	c.keyBuf = c.keyBuf[:0]
}

// commit folds the decided app into the candidate so subsequent
// decisions against the same candidate set see it. The cached class key
// is dropped: the demand multiset changed, so the candidate naturally
// re-keys into its new equivalence class.
func (c *candidate) commit(spec AppSpec) {
	if app, err := spec.rooflineApp(); err == nil {
		c.demand = append(c.demand, app)
	}
	c.apps++
	if spec.numaBad() {
		c.bad++
	}
	if c.groups != nil {
		c.groups[groupOf(spec.Name)]++
	}
	c.keyBuf = c.keyBuf[:0]
}

// Placer assigns incoming apps to fleet members.
type Placer struct {
	Inv    *Inventory
	Scorer *Scorer
	// DisablePreemption turns gang-admission preemption off (mirrors
	// Rebalancer.DisablePreemption; fleetd sets both from one flag).
	DisablePreemption bool
	// OnMoved, when set, is called with each preemption victim's name
	// after its move executes — fleetd wires it to the rebalancer's
	// cooldown clock so gang-admission evictions damp follow-up churn
	// exactly like rebalance moves do.
	OnMoved func(name string)
	// Logf, when set, receives placement logs.
	Logf func(format string, args ...any)
}

// Decide scores the app against the current inventory without
// registering it anywhere (the dry-run behind `coopctl fleet place -n`
// style tooling and the rebalancer's simulations).
func (p *Placer) Decide(spec AppSpec) (*Decision, error) {
	cs := candSets.Get().(*candidateSet)
	defer candSets.Put(cs)
	d, _, err := p.Scorer.decide(spec, cs.reset(p.Inv.Snapshot(), true, p.Scorer.DomainSpread))
	return d, err
}

// Place decides and registers the app on the chosen member's coopd,
// recording the placement in the inventory so immediately following
// decisions score against it.
func (p *Placer) Place(ctx context.Context, spec AppSpec) (*Decision, PlacedApp, error) {
	cs := candSets.Get().(*candidateSet)
	defer candSets.Put(cs)
	d, _, err := p.Scorer.decide(spec, cs.reset(p.Inv.Snapshot(), true, p.Scorer.DomainSpread))
	if err != nil {
		return nil, PlacedApp{}, err
	}
	cli, err := p.Inv.Client(d.Member)
	if err != nil {
		return nil, PlacedApp{}, err
	}
	resp, err := cli.Register(ctx, spec.registerRequest())
	if err != nil {
		return nil, PlacedApp{}, fmt.Errorf("fleet: registering %q on %s: %w", spec.Name, d.Member, err)
	}
	placed := spec.placed(resp.ID)
	p.Inv.noteRegistered(d.Member, placed)
	if p.Logf != nil {
		p.Logf("fleet: placed %s on %s (marginal %+.1f GFLOPS, machine now %.1f)",
			resp.ID, d.Member, d.Score, d.After)
	}
	return d, placed, nil
}
