// Package cluster simulates the paper's Section V: a distributed
// (MPI-like) application whose components run across several compute
// nodes while cooperating applications share each node.
//
// Each cluster node hosts its own simulated operating system (on one
// shared discrete-event engine) and task runtime; nodes exchange
// messages with a configurable network latency. Work can be
// distributed statically (fixed chunks per node) or dynamically
// (a central work queue), with tight (barrier-per-round) or loose
// synchronization — the knobs the paper argues determine how much of a
// node-local speedup translates into overall speedup.
package cluster

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

// Config describes the cluster.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// Machine is the per-node NUMA machine (shared template).
	Machine *machine.Machine
	// OS carries per-node scheduler knobs (Machine is overwritten).
	OS osched.Config
	// NetLatency is the one-way message latency between nodes.
	// Default 10 µs.
	NetLatency des.Time
	// Seed seeds the shared simulation engine.
	Seed int64
	// Partition, when set, can cut nodes off the simulated network:
	// messages to an isolated node (see NodeHost for the host names)
	// are silently dropped, exactly like the HTTP transport variant.
	Partition *faultinject.Partition
}

// NodeHost is the host name node i answers to in a Config.Partition
// (Isolate(NodeHost(2)) cuts node 2 off).
func NodeHost(i int) string { return fmt.Sprintf("node%d", i) }

// Cluster is a set of simulated compute nodes on one engine.
type Cluster struct {
	Eng   *des.Engine
	cfg   Config
	nodes []*Node
	sent  uint64
}

// Node is one compute node.
type Node struct {
	Index int
	OS    *osched.OS
}

// New builds the cluster and starts every node's OS.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	if cfg.Machine == nil {
		panic("cluster: nil machine")
	}
	if cfg.NetLatency <= 0 {
		cfg.NetLatency = 10 * des.Microsecond
	}
	c := &Cluster{Eng: des.NewEngine(cfg.Seed), cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		osCfg := cfg.OS
		osCfg.Machine = cfg.Machine
		o := osched.New(c.Eng, osCfg)
		o.Start()
		c.nodes = append(c.nodes, &Node{Index: i, OS: o})
	}
	return c
}

// Node returns the i-th compute node.
func (c *Cluster) Node(i int) *Node {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range", i))
	}
	return c.nodes[i]
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// MessagesSent returns the number of network messages delivered.
func (c *Cluster) MessagesSent() uint64 { return c.sent }

// Send delivers fn on the destination node after the network latency
// (the destination index is informational; all nodes share the engine).
// When the configured partition isolates the destination, the message
// is dropped silently — the sender learns nothing, exactly like a
// network eating packets; protocols that must survive this need their
// own timeouts (see JobConfig.RequestTimeout).
func (c *Cluster) Send(to int, fn func()) {
	if to < 0 || to >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: send to unknown node %d", to))
	}
	if c.cfg.Partition != nil && c.cfg.Partition.Cut(NodeHost(to)) {
		return
	}
	c.sent++
	c.Eng.After(c.cfg.NetLatency, fn)
}

// SyncMode selects cross-node synchronization for static distribution.
type SyncMode int

const (
	// Loose runs every node's chunk list independently.
	Loose SyncMode = iota
	// Barrier synchronizes all nodes after every round (one chunk per
	// node per round), like an iterative code with a global barrier.
	Barrier
)

// String names the mode.
func (s SyncMode) String() string {
	if s == Barrier {
		return "barrier"
	}
	return "loose"
}

// DistMode selects how chunks are assigned to nodes.
type DistMode int

const (
	// Static pre-assigns chunks round-robin.
	Static DistMode = iota
	// Dynamic keeps a central queue on node 0; nodes request the next
	// chunk over the network when they finish one.
	Dynamic
)

// String names the mode.
func (d DistMode) String() string {
	if d == Dynamic {
		return "dynamic"
	}
	return "static"
}

// JobConfig describes a distributed application run.
type JobConfig struct {
	// TotalChunks is the global work-unit count.
	TotalChunks int
	// TasksPerChunk is the intra-node parallelism of one chunk.
	TasksPerChunk int
	// TaskGFlop and AI size each task.
	TaskGFlop float64
	AI        float64
	// Dist selects static or dynamic distribution.
	Dist DistMode
	// Sync selects loose or barrier synchronization (Static only;
	// Dynamic is inherently loose).
	Sync SyncMode
	// RequestTimeout makes the dynamic protocol retry a chunk request
	// that got no reply (dropped by a partition, either direction)
	// after this long. 0 disables retries — the pre-partition behavior
	// — and must exceed the round trip (2 x NetLatency) when set, or
	// every request spuriously retries.
	RequestTimeout des.Time
	// RuntimeConfig tunes each node's task runtime (Name is suffixed
	// with the node index).
	RuntimeConfig taskrt.Config
}

// Job is one distributed application across all cluster nodes.
type Job struct {
	c   *Cluster
	cfg JobConfig
	rts []*taskrt.Runtime

	chunksDone   []int // per node
	nextChunk    int   // dynamic: central counter (lives on node 0)
	round        int   // barrier: current round
	roundPending int   // barrier: nodes still working
	finishedAt   des.Time
	running      int // nodes still executing (loose/dynamic)
	done         bool
	onDone       func()

	// Dynamic-protocol retry state. The coordinator (node 0) remembers
	// the chunk it assigned each node until the node's next request
	// acknowledges it (outstanding; -1 when none), so a lost reply is
	// answered by re-assigning the *same* chunk, never a fresh one. The
	// worker side tags every request with a sequence number and accepts
	// only the reply matching its current one, so a retried request
	// whose original reply was merely delayed cannot execute the chunk
	// twice.
	outstanding []int  // coordinator: per-node assigned-but-unacked chunk
	reqSeq      []int  // worker: current request sequence number
	awaiting    []bool // worker: request in flight, reply not yet accepted
	nodeDone    []bool // worker: no-more-work received
}

// NewJob creates the job's per-node runtimes.
func NewJob(c *Cluster, cfg JobConfig) *Job {
	if cfg.TotalChunks <= 0 || cfg.TasksPerChunk <= 0 {
		panic("cluster: job needs positive chunks and tasks")
	}
	j := &Job{
		c: c, cfg: cfg,
		chunksDone:  make([]int, c.Nodes()),
		outstanding: make([]int, c.Nodes()),
		reqSeq:      make([]int, c.Nodes()),
		awaiting:    make([]bool, c.Nodes()),
		nodeDone:    make([]bool, c.Nodes()),
	}
	for i := range j.outstanding {
		j.outstanding[i] = -1
	}
	for i := 0; i < c.Nodes(); i++ {
		rc := cfg.RuntimeConfig
		rc.Name = fmt.Sprintf("%s-n%d", orDefault(rc.Name, "job"), i)
		j.rts = append(j.rts, taskrt.New(c.Node(i).OS, rc))
	}
	return j
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// Runtime returns the job's runtime on one node, e.g. for a per-node
// agent to control its thread allocation.
func (j *Job) Runtime(node int) *taskrt.Runtime { return j.rts[node] }

// ChunksDone returns per-node completed chunk counts.
func (j *Job) ChunksDone() []int { return append([]int(nil), j.chunksDone...) }

// Done reports completion and the makespan.
func (j *Job) Done() (bool, des.Time) { return j.done, j.finishedAt }

// Run starts the job. onDone (may be nil) fires at completion.
func (j *Job) Run(onDone func()) {
	j.onDone = onDone
	switch j.cfg.Dist {
	case Dynamic:
		j.running = j.c.Nodes()
		for i := 0; i < j.c.Nodes(); i++ {
			j.requestChunk(i, -1)
		}
	default:
		if j.cfg.Sync == Barrier {
			j.startRound()
			return
		}
		j.running = j.c.Nodes()
		for i := 0; i < j.c.Nodes(); i++ {
			j.runStaticList(i)
		}
	}
}

// chunksOf lists the chunk ids statically assigned to a node
// (round-robin).
func (j *Job) chunksOf(node int) []int {
	var out []int
	for c := node; c < j.cfg.TotalChunks; c += j.c.Nodes() {
		out = append(out, c)
	}
	return out
}

// executeChunk runs one chunk's tasks on a node and calls then().
func (j *Job) executeChunk(node, chunk int, then func()) {
	rt := j.rts[node]
	barrier := rt.NewTask(fmt.Sprintf("chunk-%d-done", chunk), 1e-6, 0, nil)
	for i := 0; i < j.cfg.TasksPerChunk; i++ {
		t := rt.NewTask("t", j.cfg.TaskGFlop, j.cfg.AI, nil)
		barrier.DependsOn(t)
		rt.Submit(t)
	}
	barrier.OnComplete = func() {
		j.chunksDone[node]++
		then()
	}
	rt.Submit(barrier)
}

// --- static + loose ---

func (j *Job) runStaticList(node int) {
	chunks := j.chunksOf(node)
	var next func(i int)
	next = func(i int) {
		if i >= len(chunks) {
			j.nodeFinished()
			return
		}
		j.executeChunk(node, chunks[i], func() { next(i + 1) })
	}
	next(0)
}

func (j *Job) nodeFinished() {
	j.running--
	if j.running == 0 {
		j.finish()
	}
}

// --- static + barrier ---

func (j *Job) startRound() {
	base := j.round * j.c.Nodes()
	if base >= j.cfg.TotalChunks {
		j.finish()
		return
	}
	count := j.c.Nodes()
	if base+count > j.cfg.TotalChunks {
		count = j.cfg.TotalChunks - base
	}
	j.roundPending = count
	for i := 0; i < count; i++ {
		node := i
		chunk := base + i
		j.executeChunk(node, chunk, func() {
			// Report to the coordinator (node 0) over the network.
			j.c.Send(0, func() { j.roundDone() })
		})
	}
}

func (j *Job) roundDone() {
	j.roundPending--
	if j.roundPending > 0 {
		return
	}
	j.round++
	// Broadcast "next round" to all nodes (modelled as one latency hop).
	round := j.round
	j.c.Send(0, func() {
		if j.round == round {
			j.startRound()
		}
	})
}

// --- dynamic ---

// requestChunk models the worker->coordinator request plus reply, with
// completed acknowledging the chunk the node just finished (-1 on its
// first request). With RequestTimeout set the request is retried until
// a reply is accepted, which makes the protocol partition-tolerant:
// each chunk is handed out once (re-assignments repeat the same chunk
// until acked) and executed once (stale replies fail the sequence
// check), so the queue drains exactly TotalChunks chunks no matter how
// many messages a partition eats.
func (j *Job) requestChunk(node, completed int) {
	j.reqSeq[node]++
	seq := j.reqSeq[node]
	j.awaiting[node] = true
	j.sendRequest(node, completed, seq)
	if j.cfg.RequestTimeout > 0 {
		j.armRetry(node, completed, seq)
	}
}

// armRetry re-sends the request while it is still the node's current
// one and unanswered.
func (j *Job) armRetry(node, completed, seq int) {
	j.c.Eng.After(j.cfg.RequestTimeout, func() {
		if !j.awaiting[node] || j.reqSeq[node] != seq {
			return
		}
		j.sendRequest(node, completed, seq)
		j.armRetry(node, completed, seq)
	})
}

// sendRequest models the request arriving at the coordinator and the
// reply arriving back at the worker; either leg may be dropped by a
// partition.
func (j *Job) sendRequest(node, completed, seq int) {
	j.c.Send(0, func() { // request arrives at coordinator
		if completed >= 0 && j.outstanding[node] == completed {
			j.outstanding[node] = -1 // ack: the assignment finished
		}
		if j.outstanding[node] < 0 && j.nextChunk < j.cfg.TotalChunks {
			j.outstanding[node] = j.nextChunk
			j.nextChunk++
		}
		chunk := j.outstanding[node] // -1: no more work
		j.c.Send(node, func() {      // reply arrives at worker node
			if !j.awaiting[node] || j.reqSeq[node] != seq {
				return // stale reply (a retry already won this round)
			}
			j.awaiting[node] = false
			if chunk < 0 {
				if !j.nodeDone[node] {
					j.nodeDone[node] = true
					j.nodeFinished()
				}
				return
			}
			j.executeChunk(node, chunk, func() { j.requestChunk(node, chunk) })
		})
	})
}

func (j *Job) finish() {
	if j.done {
		return
	}
	j.done = true
	j.finishedAt = j.c.Eng.Now()
	if j.onDone != nil {
		j.onDone()
	}
}
