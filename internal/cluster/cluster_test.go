package cluster

import (
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

func testConfig(nodes int) Config {
	return Config{
		Nodes:   nodes,
		Machine: machine.PaperModel(),
		OS: osched.Config{
			ContextSwitchCost: -1,
			MigrationPenalty:  -1,
			LoadBalancePeriod: -1,
		},
		NetLatency: 50 * des.Microsecond,
		Seed:       1,
	}
}

func jobConfig(dist DistMode, sync SyncMode) JobConfig {
	return JobConfig{
		TotalChunks:   32,
		TasksPerChunk: 32,
		TaskGFlop:     0.05,
		AI:            0,
		Dist:          dist,
		Sync:          sync,
		RuntimeConfig: taskrt.Config{BindMode: taskrt.BindCore},
	}
}

// runJob runs to completion and returns the makespan.
func runJob(t *testing.T, c *Cluster, j *Job) des.Time {
	t.Helper()
	j.Run(nil)
	c.Eng.RunUntil(60)
	done, at := j.Done()
	if !done {
		t.Fatalf("job did not finish (chunks done: %v)", j.ChunksDone())
	}
	return at
}

func TestStaticLooseCompletes(t *testing.T) {
	c := New(testConfig(4))
	j := NewJob(c, jobConfig(Static, Loose))
	runJob(t, c, j)
	for i, n := range j.ChunksDone() {
		if n != 8 {
			t.Errorf("node %d did %d chunks, want 8", i, n)
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	c := New(testConfig(4))
	j := NewJob(c, jobConfig(Static, Barrier))
	runJob(t, c, j)
	total := 0
	for _, n := range j.ChunksDone() {
		total += n
	}
	if total != 32 {
		t.Errorf("total chunks = %d, want 32", total)
	}
	if c.MessagesSent() == 0 {
		t.Error("barrier mode should exchange messages")
	}
}

func TestDynamicCompletes(t *testing.T) {
	c := New(testConfig(4))
	j := NewJob(c, jobConfig(Dynamic, Loose))
	runJob(t, c, j)
	total := 0
	for _, n := range j.ChunksDone() {
		total += n
	}
	if total != 32 {
		t.Errorf("total chunks = %d, want 32", total)
	}
}

func TestHomogeneousModesComparable(t *testing.T) {
	// With identical nodes, all three schemes have similar makespans.
	mk := func(dist DistMode, sync SyncMode) des.Time {
		c := New(testConfig(4))
		j := NewJob(c, jobConfig(dist, sync))
		return runJob(t, c, j)
	}
	loose := mk(Static, Loose)
	barrier := mk(Static, Barrier)
	dynamic := mk(Dynamic, Loose)
	if barrier < loose || float64(barrier) > float64(loose)*1.3 {
		t.Errorf("homogeneous: barrier %v should be close above loose %v", barrier, loose)
	}
	if float64(dynamic) > float64(loose)*1.3 {
		t.Errorf("homogeneous: dynamic %v should be close to loose %v", dynamic, loose)
	}
}

// TestSectionVSpeedupTranslation reproduces the paper's core Section V
// claim. One node is slow (its job runtime only gets 8 of 32 cores,
// as if a co-located application owns the rest):
//   - with a barrier after every round, speeding up the other nodes
//     barely helps — the makespan tracks the slow node;
//   - with loose synchronization and dynamic distribution, the fast
//     nodes absorb the work and most of the local speedup translates
//     to overall speedup.
func TestSectionVSpeedupTranslation(t *testing.T) {
	run := func(dist DistMode, sync SyncMode, slowNode bool) des.Time {
		c := New(testConfig(4))
		j := NewJob(c, jobConfig(dist, sync))
		if slowNode {
			j.Runtime(0).SetTotalThreads(8) // co-located app owns 24 cores
		}
		return runJob(t, c, j)
	}

	barrierFast := run(Static, Barrier, false)
	barrierSlow := run(Static, Barrier, true)
	dynamicFast := run(Dynamic, Loose, false)
	dynamicSlow := run(Dynamic, Loose, true)

	barrierPenalty := float64(barrierSlow) / float64(barrierFast)
	dynamicPenalty := float64(dynamicSlow) / float64(dynamicFast)

	// The slow node executes chunks ~4x slower. Barrier rounds wait for
	// it (penalty approaching 4x); dynamic rebalancing keeps the
	// penalty small.
	if barrierPenalty < 2 {
		t.Errorf("barrier penalty = %.2fx, want >= 2x (slow node dominates rounds)", barrierPenalty)
	}
	if dynamicPenalty > 1.7 {
		t.Errorf("dynamic penalty = %.2fx, want < 1.7x (work rebalances)", dynamicPenalty)
	}
	if dynamicPenalty >= barrierPenalty {
		t.Errorf("dynamic (%.2fx) should beat barrier (%.2fx) with a slow node", dynamicPenalty, barrierPenalty)
	}

	// Dynamic distribution shifts chunks away from the slow node.
	c := New(testConfig(4))
	j := NewJob(c, jobConfig(Dynamic, Loose))
	j.Runtime(0).SetTotalThreads(8)
	runJob(t, c, j)
	counts := j.ChunksDone()
	if counts[0] >= counts[1] {
		t.Errorf("slow node did %d chunks, fast node %d: dynamic should shift work", counts[0], counts[1])
	}
}

func TestUnevenChunkCounts(t *testing.T) {
	// 10 chunks over 4 nodes: static round-robin gives 3/3/2/2.
	cfg := jobConfig(Static, Loose)
	cfg.TotalChunks = 10
	c := New(testConfig(4))
	j := NewJob(c, cfg)
	runJob(t, c, j)
	want := []int{3, 3, 2, 2}
	for i, n := range j.ChunksDone() {
		if n != want[i] {
			t.Errorf("node %d chunks = %d, want %d", i, n, want[i])
		}
	}
}

func TestBarrierUnevenLastRound(t *testing.T) {
	cfg := jobConfig(Static, Barrier)
	cfg.TotalChunks = 6 // last round uses only 2 of 4 nodes
	c := New(testConfig(4))
	j := NewJob(c, cfg)
	runJob(t, c, j)
	total := 0
	for _, n := range j.ChunksDone() {
		total += n
	}
	if total != 6 {
		t.Errorf("total = %d, want 6", total)
	}
}

func TestSingleNodeCluster(t *testing.T) {
	cfg := jobConfig(Dynamic, Loose)
	cfg.TotalChunks = 4
	c := New(testConfig(1))
	j := NewJob(c, cfg)
	runJob(t, c, j)
	if j.ChunksDone()[0] != 4 {
		t.Errorf("chunks = %d, want 4", j.ChunksDone()[0])
	}
}

func TestValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero nodes", func() { New(Config{Machine: machine.PaperModel()}) })
	expectPanic("nil machine", func() { New(Config{Nodes: 1}) })
	c := New(testConfig(2))
	expectPanic("bad node index", func() { c.Node(5) })
	expectPanic("bad send", func() { c.Send(9, func() {}) })
	expectPanic("bad job", func() { NewJob(c, JobConfig{}) })
	if Loose.String() != "loose" || Barrier.String() != "barrier" || Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Error("mode names wrong")
	}
}
