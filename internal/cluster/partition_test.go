package cluster

import (
	"testing"

	"repro/internal/des"
	"repro/internal/faultinject"
	"repro/internal/taskrt"
)

// partitionedJob runs a dynamic-distribution job while isolating the
// given hosts mid-run and healing them later, and returns the job plus
// the cluster for assertions.
func partitionedJob(t *testing.T, hosts []string, isolateAt, healAt des.Time) (*Job, *Cluster, *faultinject.Partition) {
	t.Helper()
	part := faultinject.NewPartition()
	cfg := testConfig(4)
	cfg.Partition = part
	c := New(cfg)
	j := NewJob(c, JobConfig{
		TotalChunks:   24,
		TasksPerChunk: 16,
		TaskGFlop:     0.05,
		Dist:          Dynamic,
		Sync:          Loose,
		// Well above the 2 x 50 µs round trip, well below the heal gap.
		RequestTimeout: 2 * des.Millisecond,
		RuntimeConfig:  taskrt.Config{BindMode: taskrt.BindCore},
	})
	for n := 0; n < c.Nodes(); n++ {
		j.Runtime(n).SetTotalThreads(32)
	}
	c.Eng.Schedule(isolateAt, func() {
		for _, h := range hosts {
			part.Isolate(h)
		}
	})
	c.Eng.Schedule(healAt, func() {
		for _, h := range hosts {
			part.Heal(h)
		}
	})
	j.Run(nil)
	c.Eng.RunUntil(120)
	return j, c, part
}

// assertDrained checks the work queue fully drained with every chunk
// executed exactly once: per-node counts sum to TotalChunks (a lost
// reply that was re-executed would overshoot; a lost chunk would
// undershoot and hang the job).
func assertDrained(t *testing.T, j *Job) {
	t.Helper()
	done, at := j.Done()
	if !done {
		t.Fatalf("job did not finish after heal; per-node chunks %v", j.ChunksDone())
	}
	total := 0
	for _, n := range j.ChunksDone() {
		total += n
	}
	if total != j.cfg.TotalChunks {
		t.Fatalf("chunks executed %d times across nodes %v, want exactly %d",
			total, j.ChunksDone(), j.cfg.TotalChunks)
	}
	if at <= 0 {
		t.Fatalf("finished at %v, want a positive makespan", at)
	}
}

// TestDynamicDrainsAfterWorkerPartition cuts a worker node off the
// network mid-run: its requests (and the coordinator's replies) vanish
// until heal. The retry protocol must keep the other nodes working,
// re-deliver the stranded node's assignment after heal, and drain the
// queue without executing any chunk twice.
func TestDynamicDrainsAfterWorkerPartition(t *testing.T) {
	j, _, part := partitionedJob(t, []string{NodeHost(2)}, 10*des.Millisecond, 60*des.Millisecond)
	assertDrained(t, j)
	if part.Drops(NodeHost(2)) == 0 {
		t.Fatal("partition dropped nothing — the scenario never cut the node off")
	}
}

// TestDynamicDrainsAfterCoordinatorPartition cuts node 0 — the central
// work queue itself — so every node's requests are eaten. After heal,
// retries must reach the queue and the job must complete exactly.
func TestDynamicDrainsAfterCoordinatorPartition(t *testing.T) {
	j, _, part := partitionedJob(t, []string{NodeHost(0)}, 8*des.Millisecond, 50*des.Millisecond)
	assertDrained(t, j)
	if part.Drops(NodeHost(0)) == 0 {
		t.Fatal("partition dropped nothing — the scenario never cut the coordinator off")
	}
}

// TestDynamicWithoutTimeoutStallsUnderPartition documents why the
// timeout exists: with RequestTimeout zero (the pre-partition protocol)
// a dropped request strands its node forever, and the job never
// finishes even after the network heals.
func TestDynamicWithoutTimeoutStallsUnderPartition(t *testing.T) {
	part := faultinject.NewPartition()
	cfg := testConfig(4)
	cfg.Partition = part
	c := New(cfg)
	j := NewJob(c, JobConfig{
		TotalChunks:   24,
		TasksPerChunk: 16,
		TaskGFlop:     0.05,
		Dist:          Dynamic,
		Sync:          Loose,
		RuntimeConfig: taskrt.Config{BindMode: taskrt.BindCore},
	})
	for n := 0; n < c.Nodes(); n++ {
		j.Runtime(n).SetTotalThreads(32)
	}
	c.Eng.Schedule(10*des.Millisecond, func() { part.Isolate(NodeHost(2)) })
	c.Eng.Schedule(60*des.Millisecond, func() { part.Heal(NodeHost(2)) })
	j.Run(nil)
	c.Eng.RunUntil(120)
	if done, _ := j.Done(); done {
		// The partition window may have missed every message for this
		// node; only fail when nothing was dropped AND the job hung.
		if part.Drops(NodeHost(2)) > 0 {
			t.Skip("partition missed the in-flight window; nothing to document")
		}
		return
	}
	if part.Drops(NodeHost(2)) == 0 {
		t.Fatal("job hung but the partition dropped nothing — some other regression")
	}
}
