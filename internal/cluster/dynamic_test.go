package cluster

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/taskrt"
)

// burstyApp submits a batch of tasks every period, idling in between —
// the co-located component whose quiet phases the job can exploit.
type burstyApp struct {
	rt        *taskrt.Runtime
	batch     int
	taskGFlop float64
	batches   int
	done      int
}

func (b *burstyApp) start(eng *des.Engine, period des.Time) {
	submitted := 0
	eng.Ticker(period, func(des.Time) {
		if submitted >= b.batches {
			return
		}
		submitted++
		for i := 0; i < b.batch; i++ {
			t := b.rt.NewTask("burst", b.taskGFlop, 0, nil)
			t.OnComplete = func() { b.done++ }
			b.rt.Submit(t)
		}
	})
}

// TestDynamicNodeSharing is the paper's Section V proposal end-to-end:
// every cluster node hosts the distributed job plus a bursty co-located
// application. A static half/half core split wastes the co-app's idle
// phases; a per-node work-conserving agent shifts cores to the job
// whenever the co-app sleeps, and back when it bursts.
func TestDynamicNodeSharing(t *testing.T) {
	run := func(dynamic bool) (makespan des.Time, coDone int) {
		c := New(testConfig(4))
		// Fine-grained tasks (128 x 1.25 ms per chunk) so throughput
		// scales smoothly with the worker count instead of quantizing
		// into whole task waves.
		j := NewJob(c, JobConfig{
			TotalChunks:   32,
			TasksPerChunk: 128,
			TaskGFlop:     0.0125,
			Dist:          Dynamic,
			Sync:          Loose,
			RuntimeConfig: taskrt.Config{BindMode: taskrt.BindCore},
		})
		var coApps []*burstyApp
		for n := 0; n < c.Nodes(); n++ {
			co := taskrt.New(c.Node(n).OS, taskrt.Config{Name: "coapp", BindMode: taskrt.BindNode})
			b := &burstyApp{rt: co, batch: 32, taskGFlop: 0.02, batches: 5}
			b.start(c.Eng, 50*des.Millisecond)
			coApps = append(coApps, b)
			if dynamic {
				ag := agent.New(c.Node(n).OS, agent.Config{Period: 5 * des.Millisecond},
					agent.WorkConserving{}, j.Runtime(n), co)
				ag.Start()
			} else {
				j.Runtime(n).SetTotalThreads(16)
				co.SetTotalThreads(16)
			}
		}
		j.Run(nil)
		c.Eng.RunUntil(60)
		done, at := j.Done()
		if !done {
			t.Fatal("job did not finish")
		}
		total := 0
		for _, b := range coApps {
			total += b.done
		}
		return at, total
	}

	staticAt, staticCo := run(false)
	dynAt, dynCo := run(true)

	wantCo := 4 * 5 * 32
	if staticCo != wantCo || dynCo != wantCo {
		t.Fatalf("co-app tasks: static=%d dynamic=%d, want %d", staticCo, dynCo, wantCo)
	}
	// The work-conserving agent must beat the static split clearly.
	if float64(dynAt) > float64(staticAt)*0.8 {
		t.Errorf("dynamic sharing makespan %v, static %v: want >= 20%% faster", dynAt, staticAt)
	}
}
