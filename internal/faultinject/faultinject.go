// Package faultinject is a composable fault-injection harness for the
// control plane's HTTP paths: a client-side http.RoundTripper and a
// server-side middleware that inject connection drops, latency spikes,
// truncated response bodies, and 5xx bursts from a seeded —
// reproducible — schedule, plus a skewable clock for forcing TTL expiry
// without waiting out real deadlines.
//
// Faults are decided per request by a Schedule (a pure function of the
// request ordinal), so a chaos test can replay the exact same storm
// from the same seed. Injected counts are tracked per kind so tests can
// assert the harness actually fired.
package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// KindNone passes the request through untouched.
	KindNone Kind = iota
	// KindDrop severs the connection: the peer sees a transport error,
	// never an HTTP response.
	KindDrop
	// KindLatency delays the exchange by Fault.Latency.
	KindLatency
	// KindTruncate cuts the response body off halfway through.
	KindTruncate
	// Kind5xx replaces the response with a server error (Fault.Status,
	// default 503).
	Kind5xx
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindLatency:
		return "latency"
	case KindTruncate:
		return "truncate"
	case Kind5xx:
		return "5xx"
	default:
		return "unknown"
	}
}

// Fault is one injected failure.
type Fault struct {
	Kind    Kind
	Latency time.Duration // KindLatency
	Status  int           // Kind5xx (default 503)
}

// Schedule decides the fault for the n-th request (n starts at 0). It
// must be safe for concurrent use.
type Schedule func(n uint64) Fault

// None never injects — the identity schedule.
func None() Schedule {
	return func(uint64) Fault { return Fault{} }
}

// Script injects the given faults in order, one per request, then
// nothing. Deterministic by construction; good for targeted tests.
func Script(faults ...Fault) Schedule {
	return func(n uint64) Fault {
		if n < uint64(len(faults)) {
			return faults[n]
		}
		return Fault{}
	}
}

// Burst injects fault f for requests [start, start+length), nothing
// outside the window — an outage with sharp edges.
func Burst(start, length uint64, f Fault) Schedule {
	return func(n uint64) Fault {
		if n >= start && n < start+length {
			return f
		}
		return Fault{}
	}
}

// Mix is the per-request fault probability profile for Seeded. The
// probabilities should sum to at most 1; the remainder passes through.
type Mix struct {
	Drop     float64
	Latency  float64
	Truncate float64
	Err5xx   float64
	// MaxLatency bounds injected delays (default 50ms).
	MaxLatency time.Duration
}

// Seeded draws a fault per request from mix using a deterministic
// seeded source: the same seed replays the same storm.
func Seeded(seed int64, mix Mix) Schedule {
	if mix.MaxLatency <= 0 {
		mix.MaxLatency = 50 * time.Millisecond
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(uint64) Fault {
		mu.Lock()
		u := rng.Float64()
		lat := time.Duration(rng.Int63n(int64(mix.MaxLatency)) + 1)
		mu.Unlock()
		switch {
		case u < mix.Drop:
			return Fault{Kind: KindDrop}
		case u < mix.Drop+mix.Latency:
			return Fault{Kind: KindLatency, Latency: lat}
		case u < mix.Drop+mix.Latency+mix.Truncate:
			return Fault{Kind: KindTruncate}
		case u < mix.Drop+mix.Latency+mix.Truncate+mix.Err5xx:
			return Fault{Kind: Kind5xx}
		default:
			return Fault{}
		}
	}
}

// Injector runs a Schedule over a request stream and counts what fired.
type Injector struct {
	sched Schedule

	mu     sync.Mutex
	n      uint64
	counts map[Kind]uint64
}

// NewInjector wraps a schedule (nil means None).
func NewInjector(sched Schedule) *Injector {
	if sched == nil {
		sched = None()
	}
	return &Injector{sched: sched, counts: map[Kind]uint64{}}
}

// next assigns the fault for the next request in arrival order.
func (i *Injector) next() Fault {
	i.mu.Lock()
	n := i.n
	i.n++
	i.mu.Unlock()
	f := i.sched(n)
	i.mu.Lock()
	i.counts[f.Kind]++
	i.mu.Unlock()
	return f
}

// Counts returns how many faults of each kind have been injected
// (KindNone counts pass-throughs).
func (i *Injector) Counts() map[Kind]uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Kind]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// Requests returns how many requests the injector has classified.
func (i *Injector) Requests() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.n
}

// ErrInjectedDrop is the transport error surfaced by a client-side
// KindDrop — indistinguishable from a connection reset to retry logic,
// but identifiable in test assertions.
var ErrInjectedDrop = errors.New("faultinject: connection dropped")

// Transport is a fault-injecting http.RoundTripper: faults happen on
// the client's path before/around the real exchange over Base.
type Transport struct {
	Base http.RoundTripper // nil: http.DefaultTransport
	Inj  *Injector
	// Filter, when set, limits injection to requests it returns true
	// for; others pass through uncounted. Lets a test storm the
	// idempotent paths while sparing ones whose blind retry would change
	// state (e.g. POST /v1/register duplicating an app).
	Filter func(*http.Request) bool
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Filter != nil && !t.Filter(req) {
		return base.RoundTrip(req)
	}
	f := t.Inj.next()
	switch f.Kind {
	case KindDrop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, ErrInjectedDrop
	case KindLatency:
		select {
		case <-time.After(f.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return base.RoundTrip(req)
	case Kind5xx:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		status := f.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		body := fmt.Sprintf(`{"error":"injected %d"}`, status)
		return &http.Response{
			StatusCode:    status,
			Status:        strconv.Itoa(status) + " injected",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case KindTruncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		// Serve half the bytes, then fail the read mid-body the way a
		// severed connection would.
		resp.Body = io.NopCloser(io.MultiReader(
			bytes.NewReader(data[:len(data)/2]),
			errReader{io.ErrUnexpectedEOF},
		))
		return resp, nil
	default:
		return base.RoundTrip(req)
	}
}

// errReader fails every read with its error.
type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

// Middleware wraps an http.Handler with server-side injection: drops
// abort the connection, latency delays the handler, truncation cuts the
// response body halfway, 5xx short-circuits the handler entirely.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := inj.next()
		switch f.Kind {
		case KindDrop:
			// ErrAbortHandler makes the server sever the connection
			// without completing a response.
			panic(http.ErrAbortHandler)
		case KindLatency:
			select {
			case <-time.After(f.Latency):
			case <-r.Context().Done():
				return
			}
			next.ServeHTTP(w, r)
		case Kind5xx:
			status := f.Status
			if status == 0 {
				status = http.StatusServiceUnavailable
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":"injected %d"}`, status)
		case KindTruncate:
			rec := &bufferingWriter{header: http.Header{}, status: http.StatusOK}
			next.ServeHTTP(rec, r)
			// Declare the full length but send half: the peer reads a
			// short body and the server closes the connection.
			w.Header().Set("Content-Length", strconv.Itoa(rec.buf.Len()))
			if ct := rec.header.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.WriteHeader(rec.status)
			w.Write(rec.buf.Bytes()[:rec.buf.Len()/2])
			panic(http.ErrAbortHandler)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// bufferingWriter captures a response so Middleware can truncate it.
type bufferingWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (w *bufferingWriter) Header() http.Header  { return w.header }
func (w *bufferingWriter) WriteHeader(code int) { w.status = code }
func (w *bufferingWriter) Write(p []byte) (int, error) {
	return w.buf.Write(p)
}

// SkewedClock wraps a time source with an adjustable offset, letting
// chaos tests jump a daemon's notion of time past heartbeat deadlines
// (clock-skewed TTL expiry) without sleeping real seconds.
type SkewedClock struct {
	mu     sync.Mutex
	base   func() time.Time
	offset time.Duration
}

// NewSkewedClock wraps base (nil: time.Now).
func NewSkewedClock(base func() time.Time) *SkewedClock {
	if base == nil {
		base = time.Now
	}
	return &SkewedClock{base: base}
}

// Now is the skewed time source; inject it as a server's Clock.
func (c *SkewedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base().Add(c.offset)
}

// Skew shifts the clock by d (cumulative; negative rewinds).
func (c *SkewedClock) Skew(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.offset += d
}

// Offset reports the accumulated skew.
func (c *SkewedClock) Offset() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offset
}
