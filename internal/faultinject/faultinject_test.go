package faultinject

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","payload":"0123456789abcdef0123456789abcdef"}`)
	})
}

// TestScriptSchedule: faults fire in order, then the line goes clean.
func TestScriptSchedule(t *testing.T) {
	s := Script(Fault{Kind: KindDrop}, Fault{Kind: Kind5xx})
	if s(0).Kind != KindDrop || s(1).Kind != Kind5xx || s(2).Kind != KindNone {
		t.Errorf("script order wrong: %v %v %v", s(0).Kind, s(1).Kind, s(2).Kind)
	}
}

// TestBurstSchedule: faults only inside the window.
func TestBurstSchedule(t *testing.T) {
	s := Burst(2, 3, Fault{Kind: Kind5xx})
	for n := uint64(0); n < 8; n++ {
		want := KindNone
		if n >= 2 && n < 5 {
			want = Kind5xx
		}
		if got := s(n).Kind; got != want {
			t.Errorf("burst(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestSeededDeterminism: the same seed replays the same storm; a
// different seed gives a different one.
func TestSeededDeterminism(t *testing.T) {
	mix := Mix{Drop: 0.2, Latency: 0.2, Truncate: 0.2, Err5xx: 0.2}
	a, b := Seeded(42, mix), Seeded(42, mix)
	other := Seeded(43, mix)
	same, diff := true, false
	for n := uint64(0); n < 64; n++ {
		fa, fb := a(n), b(n)
		if fa.Kind != fb.Kind {
			same = false
		}
		if fa.Kind != other(n).Kind {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different schedules")
	}
	if !diff {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

// TestTransportDrop: the client sees a transport error, not a response.
func TestTransportDrop(t *testing.T) {
	hs := httptest.NewServer(okHandler())
	t.Cleanup(hs.Close)
	inj := NewInjector(Script(Fault{Kind: KindDrop}))
	c := &http.Client{Transport: &Transport{Inj: inj}}
	if _, err := c.Get(hs.URL); err == nil || !strings.Contains(err.Error(), "connection dropped") {
		t.Errorf("dropped request returned err = %v, want injected drop", err)
	}
	// Next request passes through.
	resp, err := c.Get(hs.URL)
	if err != nil {
		t.Fatalf("clean request failed: %v", err)
	}
	resp.Body.Close()
	if got := inj.Counts(); got[KindDrop] != 1 || got[KindNone] != 1 {
		t.Errorf("counts = %v", got)
	}
}

// TestTransport5xx: a synthesized 503 with a JSON body, no server
// round-trip needed.
func TestTransport5xx(t *testing.T) {
	var served int
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	t.Cleanup(hs.Close)
	inj := NewInjector(Script(Fault{Kind: Kind5xx, Status: 502}))
	c := &http.Client{Transport: &Transport{Inj: inj}}
	resp, err := c.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 502 {
		t.Errorf("status = %d, want injected 502", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Errorf("injected body not JSON: %v", err)
	}
	if served != 0 {
		t.Errorf("server saw %d requests, want 0 (5xx synthesized client-side)", served)
	}
}

// TestTransportTruncate: the body read fails partway, as a severed
// connection would.
func TestTransportTruncate(t *testing.T) {
	hs := httptest.NewServer(okHandler())
	t.Cleanup(hs.Close)
	inj := NewInjector(Script(Fault{Kind: KindTruncate}))
	c := &http.Client{Transport: &Transport{Inj: inj}}
	resp, err := c.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != io.ErrUnexpectedEOF {
		t.Errorf("read err = %v, want unexpected EOF", err)
	}
	if len(data) == 0 {
		t.Error("truncation served no bytes at all, want roughly half")
	}
}

// TestTransportLatency: the exchange is delayed but succeeds.
func TestTransportLatency(t *testing.T) {
	hs := httptest.NewServer(okHandler())
	t.Cleanup(hs.Close)
	inj := NewInjector(Script(Fault{Kind: KindLatency, Latency: 30 * time.Millisecond}))
	c := &http.Client{Transport: &Transport{Inj: inj}}
	start := time.Now()
	resp, err := c.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("request took %v, want >= injected 30ms", d)
	}
}

// TestMiddleware: server-side drops, 5xx, and truncation behave like
// real failures to a plain client.
func TestMiddleware(t *testing.T) {
	inj := NewInjector(Script(
		Fault{Kind: KindDrop},
		Fault{Kind: Kind5xx},
		Fault{Kind: KindTruncate},
		Fault{},
	))
	hs := httptest.NewServer(Middleware(inj, okHandler()))
	t.Cleanup(hs.Close)
	c := hs.Client()

	if resp, err := c.Get(hs.URL); err == nil {
		resp.Body.Close()
		t.Error("dropped connection produced a response")
	}
	resp, err := c.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	resp, err = c.Get(hs.URL)
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Error("truncated response read cleanly")
		}
	}
	resp, err = c.Get(hs.URL)
	if err != nil {
		t.Fatalf("clean request failed: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(data), `"ok"`) {
		t.Errorf("clean body = %q", data)
	}
	if inj.Requests() != 4 {
		t.Errorf("injector saw %d requests, want 4", inj.Requests())
	}
}

// TestSkewedClock: offsets accumulate over the base source.
func TestSkewedClock(t *testing.T) {
	base := time.Unix(1000, 0)
	c := NewSkewedClock(func() time.Time { return base })
	if !c.Now().Equal(base) {
		t.Error("fresh clock is skewed")
	}
	c.Skew(time.Hour)
	c.Skew(time.Minute)
	if got := c.Now(); !got.Equal(base.Add(time.Hour + time.Minute)) {
		t.Errorf("skewed now = %v", got)
	}
	if c.Offset() != time.Hour+time.Minute {
		t.Errorf("offset = %v", c.Offset())
	}
}
