package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestPartitionIsolateHeal: requests to an isolated host fail with
// ErrPartitioned without touching the network, are counted, and flow
// again after Heal.
func TestPartitionIsolateHeal(t *testing.T) {
	hs := httptest.NewServer(okHandler())
	defer hs.Close()
	p := NewPartition()
	c := &http.Client{Transport: p.Transport(nil)}

	if resp, err := c.Get(hs.URL); err != nil {
		t.Fatalf("connected request: %v", err)
	} else {
		resp.Body.Close()
	}

	p.Isolate(hs.URL) // base-URL form normalizes to host:port
	if !p.Isolated(hs.URL) {
		t.Fatal("Isolated() false right after Isolate")
	}
	_, err := c.Get(hs.URL)
	if err == nil || !errors.Is(err, ErrPartitioned) {
		t.Fatalf("isolated request err = %v, want ErrPartitioned", err)
	}
	_, _ = c.Get(hs.URL)
	if got := p.Drops(hs.URL); got != 2 {
		t.Errorf("drops = %d, want 2", got)
	}

	p.Heal(hs.URL)
	if resp, err := c.Get(hs.URL); err != nil {
		t.Fatalf("healed request: %v", err)
	} else {
		resp.Body.Close()
	}
	// Healing one host does not heal the accounting.
	if got := p.Drops(hs.URL); got != 2 {
		t.Errorf("drops after heal = %d, want 2 (history kept)", got)
	}

	// Other hosts are never affected.
	other := httptest.NewServer(okHandler())
	defer other.Close()
	p.Isolate(hs.URL)
	if resp, err := c.Get(other.URL); err != nil {
		t.Fatalf("request to unisolated host: %v", err)
	} else {
		resp.Body.Close()
	}
	p.HealAll()
	if p.Isolated(hs.URL) {
		t.Error("Isolated() true after HealAll")
	}
}
