package faultinject

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// ErrPartitioned is the transport error a partitioned host produces —
// indistinguishable, to the caller, from a network that silently eats
// packets (modulo the instant failure; a real partition would time
// out, which tests rarely want to wait for).
var ErrPartitioned = fmt.Errorf("faultinject: host partitioned")

// Partition simulates a network partition at the client edge: requests
// to isolated hosts fail with ErrPartitioned instead of reaching the
// wire. Heal restores connectivity. Safe for concurrent use, so a test
// can cut and heal links while traffic is in flight — the exact
// scenario for exercising stale-leader fencing (isolate the leader,
// let a follower promote, heal, and assert the deposed leader's
// answers are rejected).
type Partition struct {
	mu       sync.Mutex
	isolated map[string]bool
	drops    map[string]uint64
}

// NewPartition builds a fully connected (nothing isolated) partition.
func NewPartition() *Partition {
	return &Partition{isolated: map[string]bool{}, drops: map[string]uint64{}}
}

// hostKey normalizes a host for matching: URL forms ("http://h:p/x")
// reduce to "h:p".
func hostKey(host string) string {
	if i := strings.Index(host, "://"); i >= 0 {
		host = host[i+3:]
	}
	if i := strings.IndexAny(host, "/"); i >= 0 {
		host = host[:i]
	}
	return host
}

// Isolate cuts the link to host (a "host:port" or base URL); requests
// to it fail with ErrPartitioned until Heal.
func (p *Partition) Isolate(host string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isolated[hostKey(host)] = true
}

// Heal restores the link to host.
func (p *Partition) Heal(host string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.isolated, hostKey(host))
}

// HealAll restores every link.
func (p *Partition) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isolated = map[string]bool{}
}

// Isolated reports whether host is currently cut off.
func (p *Partition) Isolated(host string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.isolated[hostKey(host)]
}

// Drops returns how many requests to host the partition has eaten.
func (p *Partition) Drops(host string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops[hostKey(host)]
}

// Cut reports whether host is isolated and, when it is, records the
// dropped delivery. It is the decision point shared by the HTTP
// transport below and non-HTTP fabrics (the cluster simulator's message
// layer), so every dropped message shows up in Drops regardless of the
// transport it rode on.
func (p *Partition) Cut(host string) bool {
	key := hostKey(host)
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.isolated[key] {
		return false
	}
	p.drops[key]++
	return true
}

// Transport wraps base (nil: http.DefaultTransport) with the
// partition: requests to isolated hosts fail before touching the
// network. Compose with Injector.Transport for partitions plus
// per-request fault schedules on the surviving links.
func (p *Partition) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &partitionTransport{p: p, base: base}
}

type partitionTransport struct {
	p    *Partition
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := hostKey(req.URL.Host)
	t.p.mu.Lock()
	cut := t.p.isolated[host]
	if cut {
		t.p.drops[host]++
	}
	t.p.mu.Unlock()
	if cut {
		return nil, ErrPartitioned
	}
	return t.base.RoundTrip(req)
}
