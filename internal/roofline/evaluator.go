package roofline

import (
	"encoding/binary"
	"fmt"

	"repro/internal/machine"
)

// Evaluator is a scratch-reusing, memoizing implementation of the model
// in EvaluateOpts, built for optimizer hot loops that evaluate many
// allocations over one (machine, apps) pair.
//
// It exploits the model's per-node independence: memory node h's
// bandwidth split depends only on
//
//   - the thread counts on h of its local accessors (NUMA-perfect apps
//     plus NUMA-bad apps homed at h), and
//   - the full thread rows of NUMA-bad apps homed at h (their threads
//     elsewhere are h's remote accessors);
//
// NUMA-bad apps homed at other nodes are invisible to h. Each node's
// outcome is therefore memoized under a key built from exactly those
// counts, so a hill-climb move or enumeration step recomputes only the
// touched nodes. Nodes with identical hardware that are nobody's home
// node share one memo class: on a uniform machine a symmetric
// allocation computes one node and reuses it for the rest.
//
// Results are bit-identical to EvaluateOpts: the arithmetic (including
// operation order) is replicated exactly, and memoized outcomes are
// copies of previously computed float64 values. The differential tests
// in evaluator_test.go and the FuzzEvaluatorEquivalence corpus enforce
// this with exact == comparisons.
//
// An Evaluator is NOT safe for concurrent use; Search hands each worker
// goroutine its own.
type Evaluator struct {
	m    *machine.Machine
	apps []App
	opt  Options

	nApps  int
	nNodes int

	// demand[i][j] is apps[i].demandPerThread(Nodes[j].PeakGFLOPS),
	// precomputed so the hot path never divides by AI.
	demand [][]float64

	// localApps[h] lists (in app order) the apps whose threads on h are
	// served by h's local split; homeApps[h] lists the NUMA-bad apps
	// homed at h (their full rows feed h's remote service).
	localApps [][]int32
	homeApps  [][]int32

	// classOf maps a node to its memo class. Home nodes are singleton
	// classes; the rest share by (cores, peak, bandwidth).
	classOf []int
	memo    []map[string]*nodeOutcome

	hits, misses uint64

	// Scratch reused across evaluations.
	keyBuf  []byte
	perLink []float64
	rclaims []evalRemoteClaim
	lclaims []evalLocalClaim
	missOut nodeOutcome
}

// maxMemoEntriesPerClass bounds each memo class; past it the class
// freezes: misses are still computed (into reusable scratch, so they
// cost no allocation) but no longer inserted. Dense enumerations visit
// each key once, so storing past this point is pure churn, while the
// workloads that genuinely revisit keys (within-candidate node dedup,
// hill-climb column reuse) never need more than a fraction of this.
const maxMemoEntriesPerClass = 1 << 13

// nodeOutcome is one memoized node evaluation: the node's bandwidth
// accounting plus every per-app cell it determines. node < 0 in an
// entry means "the node being evaluated" (so hardware-identical nodes
// can share outcomes); remote entries carry absolute node indices and
// only occur in singleton home classes.
type nodeOutcome struct {
	baseline     float64
	remoteServed float64
	localServed  float64
	entries      []outcomeEntry
}

type outcomeEntry struct {
	app  int32
	node int32
	res  AppNodeResult
}

type evalRemoteClaim struct {
	app, node int
	demand    float64
	granted   float64
}

type evalLocalClaim struct {
	app       int
	threads   int
	perThread float64
	granted   float64
}

// NewEvaluator builds an evaluator for the machine and apps with
// default options.
func NewEvaluator(m *machine.Machine, apps []App) (*Evaluator, error) {
	return NewEvaluatorOpts(m, apps, Options{})
}

// NewEvaluatorOpts builds an evaluator with explicit model options.
func NewEvaluatorOpts(m *machine.Machine, apps []App, opt Options) (*Evaluator, error) {
	e := &Evaluator{}
	if err := e.Reset(m, apps, opt); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-targets the evaluator at a new (machine, apps, options)
// tuple, revalidating the inputs, clearing the memo, and reusing the
// allocated scratch. The input validation matches EvaluateOpts.
func (e *Evaluator) Reset(m *machine.Machine, apps []App, opt Options) error {
	if err := m.Validate(); err != nil {
		return err
	}
	for i, a := range apps {
		if a.AI <= 0 {
			return fmt.Errorf("roofline: app %d (%s) has non-positive AI %g", i, a.Name, a.AI)
		}
		if a.Placement == NUMABad {
			if int(a.HomeNode) < 0 || int(a.HomeNode) >= m.NumNodes() {
				return fmt.Errorf("roofline: app %d (%s) home node %d out of range", i, a.Name, a.HomeNode)
			}
		}
	}
	e.m, e.opt = m, opt
	e.nApps, e.nNodes = len(apps), m.NumNodes()
	e.apps = append(e.apps[:0], apps...)
	e.hits, e.misses = 0, 0

	e.demand = resizeGrid(e.demand, e.nApps, e.nNodes)
	for i := range apps {
		for j := 0; j < e.nNodes; j++ {
			e.demand[i][j] = apps[i].demandPerThread(m.Nodes[j].PeakGFLOPS)
		}
	}

	e.localApps = resizeIdxLists(e.localApps, e.nNodes)
	e.homeApps = resizeIdxLists(e.homeApps, e.nNodes)
	for h := 0; h < e.nNodes; h++ {
		for i, a := range apps {
			if a.Placement == NUMABad && int(a.HomeNode) != h {
				continue // h's remote accessor (or another node's local one)
			}
			e.localApps[h] = append(e.localApps[h], int32(i))
		}
	}
	for i, a := range apps {
		if a.Placement == NUMABad {
			e.homeApps[a.HomeNode] = append(e.homeApps[a.HomeNode], int32(i))
		}
	}

	// Memo classes: home nodes are singletons (their keys embed absolute
	// remote coordinates and link bandwidths); other nodes group by
	// hardware, since their outcome depends only on (cores, peak,
	// bandwidth) and the perfect apps' counts on them.
	type hwKey struct {
		cores    int
		peak, bw float64
	}
	if cap(e.classOf) < e.nNodes {
		e.classOf = make([]int, e.nNodes)
	} else {
		e.classOf = e.classOf[:e.nNodes]
	}
	byHW := make(map[hwKey]int, e.nNodes)
	nClasses := 0
	for h := 0; h < e.nNodes; h++ {
		if len(e.homeApps[h]) > 0 {
			e.classOf[h] = nClasses
			nClasses++
			continue
		}
		k := hwKey{cores: m.Nodes[h].Cores, peak: m.Nodes[h].PeakGFLOPS, bw: m.Nodes[h].MemBandwidth}
		c, ok := byHW[k]
		if !ok {
			c = nClasses
			byHW[k] = c
			nClasses++
		}
		e.classOf[h] = c
	}
	for len(e.memo) < nClasses {
		e.memo = append(e.memo, nil)
	}
	e.memo = e.memo[:nClasses]
	for c := range e.memo {
		if e.memo[c] == nil {
			e.memo[c] = make(map[string]*nodeOutcome)
		} else {
			clear(e.memo[c])
		}
	}

	if cap(e.perLink) < e.nNodes {
		e.perLink = make([]float64, e.nNodes)
	} else {
		e.perLink = e.perLink[:e.nNodes]
		for j := range e.perLink {
			e.perLink[j] = 0
		}
	}
	return nil
}

func resizeGrid(g [][]float64, rows, cols int) [][]float64 {
	if cap(g) < rows {
		g = make([][]float64, rows)
	} else {
		g = g[:rows]
	}
	for i := range g {
		if cap(g[i]) < cols {
			g[i] = make([]float64, cols)
		} else {
			g[i] = g[i][:cols]
		}
	}
	return g
}

func resizeIdxLists(l [][]int32, n int) [][]int32 {
	if cap(l) < n {
		l = make([][]int32, n)
	} else {
		l = l[:n]
	}
	for i := range l {
		l[i] = l[i][:0]
	}
	return l
}

// MemoStats returns the per-node memo's hit/miss counters since the
// last Reset.
func (e *Evaluator) MemoStats() (hits, misses uint64) {
	return e.hits, e.misses
}

// Evaluate runs the model into a freshly allocated Result.
func (e *Evaluator) Evaluate(al Allocation) (*Result, error) {
	res := &Result{}
	if err := e.EvaluateInto(res, al); err != nil {
		return nil, err
	}
	return res, nil
}

// EvaluateInto runs the model into a caller-owned Result, resizing and
// zeroing its slices as needed. The Result is fully overwritten and
// owned by the caller; repeated calls with the same Result allocate
// nothing in steady state (memo hits aside).
func (e *Evaluator) EvaluateInto(res *Result, al Allocation) error {
	if err := al.Validate(e.m, e.apps); err != nil {
		return err
	}
	prepareResult(res, e.nApps, e.nNodes)

	for h := 0; h < e.nNodes; h++ {
		out := e.lookup(h, al)
		res.PerNode[h].Baseline = out.baseline
		res.PerNode[h].RemoteServed = out.remoteServed
		res.PerNode[h].LocalServed = out.localServed
		for idx := range out.entries {
			en := &out.entries[idx]
			j := int(en.node)
			if j < 0 {
				j = h
			}
			res.PerApp[en.app][j] = en.res
		}
	}

	// Totals in the reference order: per app, nodes in index order, then
	// the app total folded into the machine total.
	for i := 0; i < e.nApps; i++ {
		for j := 0; j < e.nNodes; j++ {
			g := res.PerApp[i][j].GFLOPS
			res.AppGFLOPS[i] += g
			res.PerNode[j].GFLOPS += g
		}
		res.TotalGFLOPS += res.AppGFLOPS[i]
	}
	return nil
}

func prepareResult(res *Result, nApps, nNodes int) {
	if cap(res.PerApp) < nApps {
		res.PerApp = make([][]AppNodeResult, nApps)
	} else {
		res.PerApp = res.PerApp[:nApps]
	}
	for i := range res.PerApp {
		row := res.PerApp[i]
		if cap(row) < nNodes {
			row = make([]AppNodeResult, nNodes)
		} else {
			row = row[:nNodes]
			for j := range row {
				row[j] = AppNodeResult{}
			}
		}
		res.PerApp[i] = row
	}
	if cap(res.PerNode) < nNodes {
		res.PerNode = make([]NodeResult, nNodes)
	} else {
		res.PerNode = res.PerNode[:nNodes]
		for j := range res.PerNode {
			res.PerNode[j] = NodeResult{}
		}
	}
	if cap(res.AppGFLOPS) < nApps {
		res.AppGFLOPS = make([]float64, nApps)
	} else {
		res.AppGFLOPS = res.AppGFLOPS[:nApps]
		for i := range res.AppGFLOPS {
			res.AppGFLOPS[i] = 0
		}
	}
	res.TotalGFLOPS = 0
}

// nodeKey builds node h's memo key into the reused key buffer: the
// local accessors' counts on h, then (for home nodes) each homed app's
// counts on every other node. Uvarint framing keeps fields
// self-delimiting, so distinct count tuples never collide.
func (e *Evaluator) nodeKey(h int, al Allocation) []byte {
	b := e.keyBuf[:0]
	for _, i := range e.localApps[h] {
		b = binary.AppendUvarint(b, uint64(al.Threads[i][h]))
	}
	for _, i := range e.homeApps[h] {
		row := al.Threads[i]
		for j := 0; j < e.nNodes; j++ {
			if j == h {
				continue // the local count is already in the key
			}
			b = binary.AppendUvarint(b, uint64(row[j]))
		}
	}
	e.keyBuf = b
	return b
}

func (e *Evaluator) lookup(h int, al Allocation) *nodeOutcome {
	key := e.nodeKey(h, al)
	memo := e.memo[e.classOf[h]]
	// string(key) in a map index compiles to a no-allocation lookup.
	if out, ok := memo[string(key)]; ok {
		e.hits++
		return out
	}
	e.misses++
	e.computeNode(&e.missOut, h, al)
	if len(memo) >= maxMemoEntriesPerClass {
		// Frozen class: serve the computed outcome from scratch without
		// storing it. The caller consumes it before the next lookup.
		return &e.missOut
	}
	out := &nodeOutcome{
		baseline:     e.missOut.baseline,
		remoteServed: e.missOut.remoteServed,
		localServed:  e.missOut.localServed,
		entries:      append([]outcomeEntry(nil), e.missOut.entries...),
	}
	memo[string(key)] = out
	return out
}

// computeNode replicates EvaluateOpts' per-node pipeline (remote-first
// service, local baseline + one-round proportional remainder, remote
// fold) with identical operation order, recording every written cell
// into the caller-owned outcome (fully overwritten, entries reused).
func (e *Evaluator) computeNode(out *nodeOutcome, h int, al Allocation) {
	out.baseline, out.remoteServed, out.localServed = 0, 0, 0
	out.entries = out.entries[:0]
	bw := e.m.Nodes[h].MemBandwidth
	if e.opt.LocalFirst {
		local := e.serveLocal(h, bw, al, out)
		out.remoteServed = e.serveRemote(h, bw-local, al)
	} else {
		remote := e.serveRemote(h, bw, al)
		out.remoteServed = remote
		e.serveLocal(h, bw-remote, al, out)
	}
	// Fold the remote grants (kept in e.rclaims by serveRemote) into
	// per-app cells, as the reference's pass 3 does.
	for idx := range e.rclaims {
		c := &e.rclaims[idx]
		th := al.Threads[c.app][c.node]
		a := e.apps[c.app]
		bwPerThread := c.granted / float64(th)
		gPerThread := min(e.m.Nodes[c.node].PeakGFLOPS, bwPerThread*a.AI)
		out.entries = append(out.entries, outcomeEntry{
			app:  int32(c.app),
			node: int32(c.node),
			res: AppNodeResult{
				Threads:         th,
				DemandPerThread: c.demand / float64(th),
				BWPerThread:     bwPerThread,
				GFLOPSPerThread: gPerThread,
				GFLOPS:          gPerThread * float64(th),
				Remote:          true,
			},
		})
	}
}

func (e *Evaluator) serveRemote(h int, avail float64, al Allocation) float64 {
	claims := e.rclaims[:0]
	touched := false
	for _, i := range e.homeApps[h] {
		row := al.Threads[i]
		for j := 0; j < e.nNodes; j++ {
			if j == h {
				continue
			}
			th := row[j]
			if th == 0 {
				continue
			}
			d := float64(th) * e.demand[i][j]
			e.perLink[j] += d
			touched = true
			claims = append(claims, evalRemoteClaim{app: int(i), node: j, demand: d})
		}
	}
	served := 0.0
	for idx := range claims {
		c := &claims[idx]
		link := e.m.Link(machine.NodeID(c.node), machine.NodeID(h))
		if e.perLink[c.node] <= link {
			c.granted = c.demand
		} else {
			c.granted = c.demand * link / e.perLink[c.node]
		}
		served += c.granted
	}
	if served > avail {
		scale := 0.0
		if served > 0 {
			scale = avail / served
		}
		for idx := range claims {
			claims[idx].granted *= scale
		}
		served = avail
	}
	if touched {
		for j := range e.perLink {
			e.perLink[j] = 0
		}
	}
	e.rclaims = claims
	return served
}

func (e *Evaluator) serveLocal(h int, avail float64, al Allocation, out *nodeOutcome) float64 {
	cores := e.m.Nodes[h].Cores
	baseline := avail / float64(cores)
	if e.opt.NoBaseline {
		baseline = 0
	}
	out.baseline = baseline

	claims := e.lclaims[:0]
	for _, i := range e.localApps[h] {
		th := al.Threads[i][h]
		if th == 0 {
			continue
		}
		claims = append(claims, evalLocalClaim{app: int(i), threads: th, perThread: e.demand[i][h]})
	}
	allocated := 0.0
	for idx := range claims {
		c := &claims[idx]
		c.granted = min(c.perThread, baseline)
		allocated += c.granted * float64(c.threads)
	}
	remaining := avail - allocated
	residualTotal := 0.0
	for idx := range claims {
		c := &claims[idx]
		residualTotal += (c.perThread - c.granted) * float64(c.threads)
	}
	if remaining > 1e-12 && residualTotal > 1e-12 {
		share := remaining / residualTotal
		if share > 1 {
			share = 1
		}
		for idx := range claims {
			c := &claims[idx]
			c.granted += (c.perThread - c.granted) * share
		}
	}
	localServed := 0.0
	for idx := range claims {
		c := &claims[idx]
		a := e.apps[c.app]
		gPerThread := min(e.m.Nodes[h].PeakGFLOPS, c.granted*a.AI)
		out.entries = append(out.entries, outcomeEntry{
			app:  int32(c.app),
			node: -1,
			res: AppNodeResult{
				Threads:         c.threads,
				DemandPerThread: c.perThread,
				BWPerThread:     c.granted,
				GFLOPSPerThread: gPerThread,
				GFLOPS:          gPerThread * float64(c.threads),
			},
		})
		localServed += c.granted * float64(c.threads)
	}
	out.localServed = localServed
	e.lclaims = claims
	return localServed
}
