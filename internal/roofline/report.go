package roofline

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// WorkedRow is one row of the paper's Table I/II style worked example:
// a labeled quantity with one value per application.
type WorkedRow struct {
	Label  string
	Values []float64
	// Shared is used instead of Values for rows that have a single
	// machine-wide (or node-wide) value, e.g. "total required bandwidth".
	Shared   float64
	IsShared bool
}

// WorkedTable is the paper's step-by-step derivation for a uniform
// machine and a uniform per-node-count allocation. It exposes every
// intermediate quantity that Tables I and II print.
type WorkedTable struct {
	AppNames []string
	Rows     []WorkedRow
	// TotalPerNode and Total are the bottom summary lines.
	TotalPerNode float64
	Total        float64
}

// Worked reproduces the paper's Table I/II derivation for a uniform
// machine (identical nodes), NUMA-perfect applications, and an
// allocation giving every app the same thread count on every node.
// counts[i] is app i's threads per node.
func Worked(m *machine.Machine, apps []App, counts []int) (*WorkedTable, error) {
	if len(apps) != len(counts) {
		return nil, fmt.Errorf("roofline: %d apps but %d counts", len(apps), len(counts))
	}
	for i, a := range apps {
		if a.Placement != NUMAPerfect {
			return nil, fmt.Errorf("roofline: worked table requires NUMA-perfect apps; app %d is %s", i, a.Placement)
		}
	}
	for j := 1; j < m.NumNodes(); j++ {
		if m.Nodes[j] != m.Nodes[0] {
			return nil, fmt.Errorf("roofline: worked table requires a uniform machine")
		}
	}
	al, err := PerNodeCounts(m, counts)
	if err != nil {
		return nil, err
	}
	res, err := Evaluate(m, apps, al)
	if err != nil {
		return nil, err
	}

	node := m.Nodes[0]
	n := len(apps)
	t := &WorkedTable{}
	for _, a := range apps {
		t.AppNames = append(t.AppNames, a.Name)
	}
	vals := func(f func(i int) float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = f(i)
		}
		return v
	}

	ai := vals(func(i int) float64 { return apps[i].AI })
	perThreadBW := vals(func(i int) float64 { return node.PeakGFLOPS / apps[i].AI })
	perInstBW := vals(func(i int) float64 { return perThreadBW[i] * float64(counts[i]) })
	totalRequired := 0.0
	for i := range apps {
		totalRequired += perInstBW[i]
	}
	baseline := node.MemBandwidth / float64(node.Cores)
	allocBaseline := vals(func(i int) float64 { return min(perThreadBW[i], baseline) })
	allocatedNode := 0.0
	for i := range apps {
		allocatedNode += allocBaseline[i] * float64(counts[i])
	}
	remainingNode := node.MemBandwidth - allocatedNode
	stillPerThread := vals(func(i int) float64 { return perThreadBW[i] - allocBaseline[i] })
	stillTotal := 0.0
	unsatisfied := 0
	for i := range apps {
		stillTotal += stillPerThread[i] * float64(counts[i])
		if stillPerThread[i] > 1e-12 {
			unsatisfied += counts[i]
		}
	}
	remainderPerThread := 0.0
	if unsatisfied > 0 {
		remainderPerThread = remainingNode / float64(unsatisfied)
		if remainingNode > stillTotal {
			remainderPerThread = 0 // everyone satisfied; handled by totals below
		}
	}
	totalPerThread := vals(func(i int) float64 { return res.PerApp[i][0].BWPerThread })
	gflopsPerThread := vals(func(i int) float64 { return res.PerApp[i][0].GFLOPSPerThread })
	gflopsPerApp := vals(func(i int) float64 { return res.PerApp[i][0].GFLOPS })

	t.Rows = []WorkedRow{
		{Label: "arithmetic intensity (AI)", Values: ai},
		{Label: "threads per NUMA node", Values: vals(func(i int) float64 { return float64(counts[i]) })},
		{Label: "peak memory bandwidth per thread (GB/s)", Values: perThreadBW},
		{Label: "peak memory bandwidth per instance (GB/s)", Values: perInstBW},
		{Label: "total required bandwidth (GB/s)", Shared: totalRequired, IsShared: true},
		{Label: "baseline GB/s per thread", Shared: baseline, IsShared: true},
		{Label: "allocated baseline per thread (GB/s)", Values: allocBaseline},
		{Label: "allocated node GB/s", Shared: allocatedNode, IsShared: true},
		{Label: "remaining node GB/s", Shared: remainingNode, IsShared: true},
		{Label: "still required GB/s per thread", Values: stillPerThread},
		{Label: "still required GB/s", Shared: stillTotal, IsShared: true},
		{Label: "remainder given to a thread (GB/s)", Shared: remainderPerThread, IsShared: true},
		{Label: "total allocated to each thread (GB/s)", Values: totalPerThread},
		{Label: "GFLOPS per thread", Values: gflopsPerThread},
		{Label: "GFLOPS per application", Values: gflopsPerApp},
	}
	t.TotalPerNode = res.PerNode[0].GFLOPS
	t.Total = res.TotalGFLOPS
	return t, nil
}

// String renders the worked table as aligned text.
func (t *WorkedTable) String() string {
	var b strings.Builder
	width := 44
	fmt.Fprintf(&b, "%-*s", width, "")
	for _, n := range t.AppNames {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Label)
		if r.IsShared {
			fmt.Fprintf(&b, " %14s", trimFloat(r.Shared))
		} else {
			for _, v := range r.Values {
				fmt.Fprintf(&b, " %14s", trimFloat(v))
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s %14s\n", width, "total GFLOPS per node", trimFloat(t.TotalPerNode))
	fmt.Fprintf(&b, "%-*s %14s\n", width, "total GFLOPS", trimFloat(t.Total))
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// Summary renders a Result as a compact per-app table.
func (r *Result) Summary(apps []App) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-13s %8s %12s\n", "app", "placement", "threads", "GFLOPS")
	for i, a := range apps {
		threads := 0
		for _, pn := range r.PerApp[i] {
			threads += pn.Threads
		}
		fmt.Fprintf(&b, "%-20s %-13s %8d %12.3f\n", a.Name, a.Placement, threads, r.AppGFLOPS[i])
	}
	fmt.Fprintf(&b, "%-20s %-13s %8s %12.3f\n", "TOTAL", "", "", r.TotalGFLOPS)
	return b.String()
}
