package roofline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// diffResults compares two model results field by field with exact
// (bitwise) float64 equality — the Evaluator's contract — returning a
// description of the first difference, or "" when identical.
func diffResults(want, got *Result) string {
	if want.TotalGFLOPS != got.TotalGFLOPS {
		return fmt.Sprintf("TotalGFLOPS: want %v, got %v", want.TotalGFLOPS, got.TotalGFLOPS)
	}
	if len(want.AppGFLOPS) != len(got.AppGFLOPS) {
		return fmt.Sprintf("AppGFLOPS length: want %d, got %d", len(want.AppGFLOPS), len(got.AppGFLOPS))
	}
	for i := range want.AppGFLOPS {
		if want.AppGFLOPS[i] != got.AppGFLOPS[i] {
			return fmt.Sprintf("AppGFLOPS[%d]: want %v, got %v", i, want.AppGFLOPS[i], got.AppGFLOPS[i])
		}
	}
	if len(want.PerNode) != len(got.PerNode) {
		return fmt.Sprintf("PerNode length: want %d, got %d", len(want.PerNode), len(got.PerNode))
	}
	for j := range want.PerNode {
		if want.PerNode[j] != got.PerNode[j] {
			return fmt.Sprintf("PerNode[%d]: want %+v, got %+v", j, want.PerNode[j], got.PerNode[j])
		}
	}
	if len(want.PerApp) != len(got.PerApp) {
		return fmt.Sprintf("PerApp length: want %d, got %d", len(want.PerApp), len(got.PerApp))
	}
	for i := range want.PerApp {
		if len(want.PerApp[i]) != len(got.PerApp[i]) {
			return fmt.Sprintf("PerApp[%d] length: want %d, got %d", i, len(want.PerApp[i]), len(got.PerApp[i]))
		}
		for j := range want.PerApp[i] {
			if want.PerApp[i][j] != got.PerApp[i][j] {
				return fmt.Sprintf("PerApp[%d][%d]: want %+v, got %+v", i, j, want.PerApp[i][j], got.PerApp[i][j])
			}
		}
	}
	return ""
}

// checkEvaluatorMatches asserts the evaluator reproduces the reference
// bitwise on al, twice (the second pass exercises the memo-hit path).
func checkEvaluatorMatches(t *testing.T, label string, m *machine.Machine, apps []App, ev *Evaluator, res *Result, al Allocation, opt Options) {
	t.Helper()
	want, err := EvaluateOpts(m, apps, al, opt)
	if err != nil {
		t.Fatalf("%s: reference Evaluate: %v", label, err)
	}
	for pass := 0; pass < 2; pass++ {
		if err := ev.EvaluateInto(res, al); err != nil {
			t.Fatalf("%s (pass %d): EvaluateInto: %v", label, pass, err)
		}
		if d := diffResults(want, res); d != "" {
			t.Fatalf("%s (pass %d): evaluator diverges from reference: %s", label, pass, d)
		}
	}
}

// TestEvaluatorMatchesPaperTables runs the differential harness over
// the paper's published operating points: the evaluator must reproduce
// Tables I, II, the node-per-app baseline, Fig. 3, and Table III
// bitwise — and those values must still be the paper's numbers.
func TestEvaluatorMatchesPaperTables(t *testing.T) {
	res := &Result{}

	// Tables I/II and node-per-app on the 4x8 model machine.
	m := machine.PaperModel()
	apps := paperApps()
	ev, err := NewEvaluator(m, apps)
	if err != nil {
		t.Fatal(err)
	}
	tableI := MustPerNodeCounts(m, []int{1, 1, 1, 5})
	checkEvaluatorMatches(t, "table I", m, apps, ev, res, tableI, Options{})
	almost(t, "table I total (evaluator)", res.TotalGFLOPS, 254, 1e-9)

	checkEvaluatorMatches(t, "table II", m, apps, ev, res, MustPerNodeCounts(m, []int{2, 2, 2, 2}), Options{})
	almost(t, "table II total (evaluator)", res.TotalGFLOPS, 140, 1e-9)

	checkEvaluatorMatches(t, "node-per-app", m, apps, ev, res, MustNodePerApp(m, 4, nil), Options{})
	almost(t, "node-per-app total (evaluator)", res.TotalGFLOPS, 128, 1e-9)

	hits, misses := ev.MemoStats()
	if hits == 0 || misses == 0 {
		t.Errorf("memo should see both hits and misses on the paper fixtures, got hits=%d misses=%d", hits, misses)
	}

	// Fig. 3: the NUMA-bad mix on the 60 GB/s machine with 10 GB/s links.
	mBad := machine.PaperModelNUMABad()
	badApps := numaBadApps()
	evBad, err := NewEvaluator(mBad, badApps)
	if err != nil {
		t.Fatal(err)
	}
	checkEvaluatorMatches(t, "fig3 even", mBad, badApps, evBad, res, MustPerNodeCounts(mBad, []int{2, 2, 2, 2}), Options{})
	almost(t, "fig3 even total (evaluator)", res.TotalGFLOPS, 138.75, 1e-9)
	checkEvaluatorMatches(t, "fig3 node-per-app", mBad, badApps, evBad, res,
		MustNodePerApp(mBad, 4, []machine.NodeID{1, 2, 3, 0}), Options{})
	almost(t, "fig3 node-per-app total (evaluator)", res.TotalGFLOPS, 150, 1e-9)

	// Table III rows on the calibrated Skylake machine (tolerance 0.005,
	// matching TestTableIIIModel).
	sky := machine.SkylakeQuad()
	evSky, err := NewEvaluator(sky, tableIIIApps())
	if err != nil {
		t.Fatal(err)
	}
	checkEvaluatorMatches(t, "table III uneven", sky, tableIIIApps(), evSky, res, MustPerNodeCounts(sky, []int{1, 1, 1, 17}), Options{})
	almost(t, "table III uneven total (evaluator)", res.TotalGFLOPS, 23.20, 0.005)
	checkEvaluatorMatches(t, "table III even", sky, tableIIIApps(), evSky, res, MustPerNodeCounts(sky, []int{5, 5, 5, 5}), Options{})
	almost(t, "table III even total (evaluator)", res.TotalGFLOPS, 18.12, 0.005)
	checkEvaluatorMatches(t, "table III node-per-app", sky, tableIIIApps(), evSky, res, MustNodePerApp(sky, 4, nil), Options{})
	almost(t, "table III node-per-app total (evaluator)", res.TotalGFLOPS, 15.18, 0.005)

	evSkyBad, err := NewEvaluator(sky, tableIIIBadApps())
	if err != nil {
		t.Fatal(err)
	}
	checkEvaluatorMatches(t, "table III bad even", sky, tableIIIBadApps(), evSkyBad, res, MustPerNodeCounts(sky, []int{5, 5, 5, 5}), Options{})
	almost(t, "table III bad even total (evaluator)", res.TotalGFLOPS, 13.98, 0.005)
	checkEvaluatorMatches(t, "table III bad node-per-app", sky, tableIIIBadApps(), evSkyBad, res,
		MustNodePerApp(sky, 4, []machine.NodeID{1, 2, 3, 0}), Options{})
	almost(t, "table III bad node-per-app total (evaluator)", res.TotalGFLOPS, 15.18, 0.005)
}

// randomMachine draws a machine: 1-4 nodes, possibly heterogeneous,
// possibly link-limited.
func randomMachine(r *rand.Rand) *machine.Machine {
	nNodes := 1 + r.Intn(4)
	m := &machine.Machine{Name: "rand"}
	mkNode := func() machine.Node {
		return machine.Node{
			Cores:        1 + r.Intn(8),
			PeakGFLOPS:   0.25 + 20*r.Float64(),
			MemBandwidth: 5 + 100*r.Float64(),
		}
	}
	base := mkNode()
	hetero := r.Intn(2) == 0
	for i := 0; i < nNodes; i++ {
		if hetero {
			m.Nodes = append(m.Nodes, mkNode())
		} else {
			m.Nodes = append(m.Nodes, base)
		}
	}
	if r.Intn(3) > 0 {
		m.LinkBandwidth = make([][]float64, nNodes)
		for i := range m.LinkBandwidth {
			m.LinkBandwidth[i] = make([]float64, nNodes)
			for j := range m.LinkBandwidth[i] {
				if i != j {
					m.LinkBandwidth[i][j] = 1 + 40*r.Float64()
				}
			}
		}
	}
	return m
}

// randomApps draws 1-5 apps with log-uniform AI; roughly a third are
// NUMA-bad with a random home node.
func randomApps(r *rand.Rand, m *machine.Machine) []App {
	nApps := 1 + r.Intn(5)
	apps := make([]App, nApps)
	for i := range apps {
		apps[i] = App{
			Name: fmt.Sprintf("app%d", i),
			// 2^-5 .. 2^5 FLOP/byte.
			AI: pow2(r.Float64()*10 - 5),
		}
		if r.Intn(3) == 0 {
			apps[i].Placement = NUMABad
			apps[i].HomeNode = machine.NodeID(r.Intn(m.NumNodes()))
		}
	}
	return apps
}

func pow2(x float64) float64 {
	v := 1.0
	for x >= 1 {
		v *= 2
		x--
	}
	for x < 0 {
		v /= 2
		x++
	}
	return v * (1 + x) // piecewise-linear approx is fine for test variety
}

// randomAllocation fills each node up to its core count with random
// per-app shares (possibly zero, possibly leaving cores idle).
func randomAllocation(r *rand.Rand, m *machine.Machine, nApps int) Allocation {
	al := NewAllocation(nApps, m.NumNodes())
	for j := 0; j < m.NumNodes(); j++ {
		remaining := m.Nodes[j].Cores
		for i := 0; i < nApps && remaining > 0; i++ {
			c := r.Intn(remaining + 1)
			if r.Intn(2) == 0 && c > 2 {
				c = 2
			}
			al.Threads[i][j] = c
			remaining -= c
		}
	}
	return al
}

// differentialRound drives one (machine, apps) draw: several random
// allocations, each checked twice (memo-hit path included), under a
// random ablation option set.
func differentialRound(t *testing.T, r *rand.Rand) {
	t.Helper()
	m := randomMachine(r)
	apps := randomApps(r, m)
	opt := Options{NoBaseline: r.Intn(4) == 0, LocalFirst: r.Intn(4) == 0}
	ev, err := NewEvaluatorOpts(m, apps, opt)
	if err != nil {
		t.Fatalf("NewEvaluatorOpts: %v", err)
	}
	res := &Result{}
	var prev *Allocation
	for k := 0; k < 8; k++ {
		al := randomAllocation(r, m, len(apps))
		checkEvaluatorMatchesOpts(t, fmt.Sprintf("random k=%d", k), m, apps, ev, res, al, opt)
		if prev != nil && r.Intn(2) == 0 {
			// Revisit an earlier allocation: pure memo-hit evaluation.
			checkEvaluatorMatchesOpts(t, fmt.Sprintf("random k=%d revisit", k), m, apps, ev, res, *prev, opt)
		}
		prev = &al
	}
}

func checkEvaluatorMatchesOpts(t *testing.T, label string, m *machine.Machine, apps []App, ev *Evaluator, res *Result, al Allocation, opt Options) {
	t.Helper()
	checkEvaluatorMatches(t, label, m, apps, ev, res, al, opt)
}

// TestEvaluatorMatchesReferenceRandomized is the randomized limb of the
// differential harness: heterogeneous machines, NUMA-bad placements,
// link limits, ablation options — all bitwise-identical to the
// reference model.
func TestEvaluatorMatchesReferenceRandomized(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		r := rand.New(rand.NewSource(seed))
		differentialRound(t, r)
	}
}

// TestEvaluatorReset checks a pooled evaluator re-targeted at new
// inputs behaves like a fresh one (stale memo entries must not leak
// between incompatible machines or app mixes).
func TestEvaluatorReset(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	ev, err := NewEvaluator(m, apps)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	checkEvaluatorMatches(t, "before reset", m, apps, ev, res, MustPerNodeCounts(m, []int{1, 1, 1, 5}), Options{})

	mBad := machine.PaperModelNUMABad()
	badApps := numaBadApps()
	if err := ev.Reset(mBad, badApps, Options{}); err != nil {
		t.Fatal(err)
	}
	checkEvaluatorMatches(t, "after reset", mBad, badApps, ev, res, MustPerNodeCounts(mBad, []int{2, 2, 2, 2}), Options{})
	almost(t, "after reset total", res.TotalGFLOPS, 138.75, 1e-9)

	if err := ev.Reset(mBad, []App{{Name: "neg", AI: -1}}, Options{}); err == nil {
		t.Error("Reset should reject non-positive AI")
	}
}

// TestEvaluatorValidation mirrors TestEvaluateErrors for the fast path.
func TestEvaluatorValidation(t *testing.T) {
	m := machine.PaperModel()
	if _, err := NewEvaluator(m, []App{{Name: "bad-home", AI: 1, Placement: NUMABad, HomeNode: 9}}); err == nil {
		t.Error("NewEvaluator should reject out-of-range home node")
	}
	ev, err := NewEvaluator(m, paperApps())
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	if err := ev.EvaluateInto(res, NewAllocation(2, m.NumNodes())); err == nil {
		t.Error("EvaluateInto should reject a wrong-shaped allocation")
	}
	over := NewAllocation(4, m.NumNodes())
	over.Threads[0][0] = m.Nodes[0].Cores + 1
	if err := ev.EvaluateInto(res, over); err == nil {
		t.Error("EvaluateInto should reject over-subscription")
	}
}

// TestEvaluatorSteadyStateAllocs pins the scratch-reuse contract: a
// memo-hit evaluation into a warm Result performs no heap allocations.
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	ev, err := NewEvaluator(m, apps)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	al := MustPerNodeCounts(m, []int{1, 1, 1, 5})
	if err := ev.EvaluateInto(res, al); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := ev.EvaluateInto(res, al); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("memo-hit EvaluateInto allocates %.2f objects/op, want 0", allocs)
	}
}
