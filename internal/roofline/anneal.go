package roofline

import (
	"math"
	"math/rand"

	"repro/internal/machine"
)

// AnnealConfig tunes the simulated-annealing search.
type AnnealConfig struct {
	// Seed drives the deterministic random walk.
	Seed int64
	// Iters is the number of proposal steps (default 20000).
	Iters int
	// StartTemp and EndTemp bound the geometric cooling schedule,
	// in objective units (defaults 10 and 0.01).
	StartTemp, EndTemp float64
}

// Anneal searches the full space of (non-uniform) allocations with
// simulated annealing: random single-thread moves — shifting one
// thread of one application between nodes, reassigning a core to
// another application, adding a thread on a free core, or removing one
// — accepted when they improve the objective or probabilistically when
// they do not. Unlike BestPerNodeCounts it can express asymmetric
// optima (e.g. giving a NUMA-bad application threads only on its home
// node), and unlike Optimize's hill climbing it escapes local optima.
func Anneal(m *machine.Machine, apps []App, obj Objective, cfg AnnealConfig) (Allocation, *Result, error) {
	if obj == nil {
		obj = TotalGFLOPS
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 20000
	}
	if cfg.StartTemp <= 0 {
		cfg.StartTemp = 10
	}
	if cfg.EndTemp <= 0 || cfg.EndTemp >= cfg.StartTemp {
		cfg.EndTemp = cfg.StartTemp / 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nApps, nNodes := len(apps), m.NumNodes()
	if nApps == 0 {
		return Allocation{}, nil, ErrNoAllocation
	}

	cur := FairShare(m, nApps)
	res, err := Evaluate(m, apps, cur)
	if err != nil {
		return Allocation{}, nil, err
	}
	curScore := obj(res)
	best := cur.Clone()
	bestRes := res
	bestScore := curScore

	cooling := math.Pow(cfg.EndTemp/cfg.StartTemp, 1/float64(cfg.Iters))
	temp := cfg.StartTemp

	for it := 0; it < cfg.Iters; it++ {
		temp *= cooling
		// Propose a random single-thread move.
		i := rng.Intn(nApps)
		j := rng.Intn(nNodes)
		undo := func() {}
		switch rng.Intn(4) {
		case 0: // move a thread of app i from node j to node k
			if cur.Threads[i][j] == 0 {
				continue
			}
			k := rng.Intn(nNodes)
			if k == j || cur.NodeThreads(machine.NodeID(k)) >= m.Nodes[k].Cores {
				continue
			}
			cur.Threads[i][j]--
			cur.Threads[i][k]++
			undo = func() { cur.Threads[i][j]++; cur.Threads[i][k]-- }
		case 1: // reassign a core on node j from app i to app i2
			if cur.Threads[i][j] == 0 || nApps < 2 {
				continue
			}
			i2 := rng.Intn(nApps)
			if i2 == i {
				continue
			}
			cur.Threads[i][j]--
			cur.Threads[i2][j]++
			undo = func() { cur.Threads[i][j]++; cur.Threads[i2][j]-- }
		case 2: // grow onto a free core
			if cur.NodeThreads(machine.NodeID(j)) >= m.Nodes[j].Cores {
				continue
			}
			cur.Threads[i][j]++
			undo = func() { cur.Threads[i][j]-- }
		default: // shrink
			if cur.Threads[i][j] == 0 {
				continue
			}
			cur.Threads[i][j]--
			undo = func() { cur.Threads[i][j]++ }
		}
		r2, err := Evaluate(m, apps, cur)
		if err != nil {
			undo()
			continue
		}
		s2 := obj(r2)
		if s2 >= curScore || rng.Float64() < math.Exp((s2-curScore)/temp) {
			curScore, res = s2, r2
			if s2 > bestScore {
				bestScore = s2
				best = cur.Clone()
				bestRes = r2
			}
		} else {
			undo()
		}
	}
	return best, bestRes, nil
}
