package roofline

import (
	"testing"

	"repro/internal/machine"
)

func TestAnnealReachesTableIOptimum(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	_, res, err := Anneal(m, apps, TotalGFLOPS, AnnealConfig{Seed: 1, Iters: 8000})
	if err != nil {
		t.Fatal(err)
	}
	// The unconstrained optimum gives all cores to the compute-bound
	// app (320 GFLOPS); the search must land close.
	if res.TotalGFLOPS < 310 {
		t.Errorf("anneal found %.1f GFLOPS, want >= 310", res.TotalGFLOPS)
	}
}

func TestAnnealFindsAsymmetricOptimum(t *testing.T) {
	// A NUMA-bad app (home node 0) plus one memory-bound app: uniform
	// per-node counts waste the bad app's threads on remote nodes; the
	// annealer should concentrate them on node 0.
	m := machine.SkylakeQuad()
	apps := []App{
		{Name: "mem", AI: 1.0 / 32},
		{Name: "bad", AI: 1.0 / 16, Placement: NUMABad, HomeNode: 0},
	}
	counts, _, uniformRes, err := BestPerNodeCounts(m, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	al, res, err := Anneal(m, apps, TotalGFLOPS, AnnealConfig{Seed: 3, Iters: 15000})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGFLOPS < uniformRes.TotalGFLOPS-1e-9 {
		t.Errorf("anneal %.3f worse than uniform optimum %.3f (counts %v)",
			res.TotalGFLOPS, uniformRes.TotalGFLOPS, counts)
	}
	// The bad app's threads should be concentrated on node 0 (remote
	// threads are link-starved and displace local memory-bound work).
	badRemote := 0
	for j := 1; j < m.NumNodes(); j++ {
		badRemote += al.Threads[1][j]
	}
	if badRemote > al.Threads[1][0] {
		t.Errorf("bad app allocation %v: should concentrate on its home node", al.Threads[1])
	}
}

func TestAnnealDeterministic(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	run := func() float64 {
		_, res, err := Anneal(m, apps, nil, AnnealConfig{Seed: 42, Iters: 2000})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalGFLOPS
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic anneal: %v vs %v", a, b)
	}
}

func TestAnnealValidation(t *testing.T) {
	m := machine.PaperModel()
	if _, _, err := Anneal(m, nil, nil, AnnealConfig{Seed: 1, Iters: 10}); err == nil {
		t.Error("expected error for empty app list")
	}
	// Defaults fill in.
	_, res, err := Anneal(m, []App{{Name: "a", AI: 1}}, nil, AnnealConfig{})
	if err != nil || res == nil {
		t.Errorf("defaults failed: %v", err)
	}
}

func TestAnnealRespectsConstraints(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	al, _, err := Anneal(m, apps, nil, AnnealConfig{Seed: 9, Iters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Validate(m, apps); err != nil {
		t.Errorf("anneal produced invalid allocation: %v", err)
	}
}
