package roofline

import (
	"math"

	"repro/internal/machine"
)

// CurvePoint is one sample of a roofline curve.
type CurvePoint struct {
	// AI is the arithmetic intensity sampled.
	AI float64
	// GFLOPS is the achieved rate at that intensity.
	GFLOPS float64
}

// Curve samples the classic roofline of a machine's node: one thread
// per core of a single application, arithmetic intensity swept
// log-uniformly over [minAI, maxAI] with the given number of points.
// The result shows the bandwidth-limited ramp and the compute plateau,
// with the ridge at peak/bandwidth-per-core.
func Curve(m *machine.Machine, minAI, maxAI float64, points int) []CurvePoint {
	if points < 2 {
		points = 2
	}
	if minAI <= 0 {
		minAI = 1e-3
	}
	if maxAI <= minAI {
		maxAI = minAI * 1000
	}
	out := make([]CurvePoint, points)
	for i := 0; i < points; i++ {
		ai := minAI * math.Pow(maxAI/minAI, float64(i)/float64(points-1))
		app := []App{{Name: "sweep", AI: ai}}
		al := NewAllocation(1, m.NumNodes())
		for j := 0; j < m.NumNodes(); j++ {
			al.Threads[0][j] = m.Nodes[j].Cores
		}
		r := MustEvaluate(m, app, al)
		out[i] = CurvePoint{AI: ai, GFLOPS: r.TotalGFLOPS}
	}
	return out
}

// Ridge returns the machine's ridge point: the arithmetic intensity at
// which a fully-occupied node transitions from bandwidth-bound to
// compute-bound (per-core peak divided by the per-core bandwidth
// share).
func Ridge(m *machine.Machine) float64 {
	n := m.Nodes[0]
	return n.PeakGFLOPS / (n.MemBandwidth / float64(n.Cores))
}

// CrossoverResult describes where two allocation strategies swap rank
// as one application's arithmetic intensity varies.
type CrossoverResult struct {
	// Found reports whether a crossover exists in the scanned range.
	Found bool
	// AI is the intensity where the ranking flips (midpoint of the
	// bracketing interval).
	AI float64
	// BelowWinner and AboveWinner name the strategy that wins below
	// and above the crossover ("A" or "B").
	BelowWinner, AboveWinner string
}

// Crossover scans the arithmetic intensity of app appIdx over
// [minAI, maxAI] (log-uniform, points samples) and finds where
// allocation A stops beating allocation B (or vice versa) on total
// GFLOPS. It generalizes the paper's observation that the best
// allocation depends on the application mix: e.g. even-vs-node-per-app
// flips as the fourth app moves from memory- to compute-bound.
func Crossover(m *machine.Machine, apps []App, appIdx int, alA, alB Allocation, minAI, maxAI float64, points int) (CrossoverResult, error) {
	if points < 2 {
		points = 16
	}
	if appIdx < 0 || appIdx >= len(apps) {
		return CrossoverResult{}, ErrNoAllocation
	}
	name := func(diff float64) string {
		if diff > 0 {
			return "A"
		}
		return "B"
	}
	const tie = 1e-9
	res := CrossoverResult{}
	prevDiff, prevAI := 0.0, 0.0
	for i := 0; i < points; i++ {
		ai := minAI * math.Pow(maxAI/minAI, float64(i)/float64(points-1))
		probe := append([]App(nil), apps...)
		probe[appIdx].AI = ai
		rA, err := Evaluate(m, probe, alA)
		if err != nil {
			return CrossoverResult{}, err
		}
		rB, err := Evaluate(m, probe, alB)
		if err != nil {
			return CrossoverResult{}, err
		}
		diff := rA.TotalGFLOPS - rB.TotalGFLOPS
		if math.Abs(diff) <= tie {
			continue // dead heat: no information
		}
		if prevDiff == 0 {
			prevDiff, prevAI = diff, ai
			res.BelowWinner = name(diff)
			continue
		}
		if (diff > 0) != (prevDiff > 0) {
			res.Found = true
			res.AI = math.Sqrt(prevAI * ai) // log midpoint of the bracket
			res.AboveWinner = name(diff)
			return res, nil
		}
		prevDiff, prevAI = diff, ai
	}
	res.AboveWinner = res.BelowWinner
	return res, nil
}
