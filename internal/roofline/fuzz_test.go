package roofline

import (
	"math/rand"
	"testing"
)

// FuzzEvaluatorEquivalence is the property test behind the fast path:
// for any seeded draw of machine (heterogeneous nodes, optional link
// limits), app mix (including NUMA-bad placements), options ablation,
// and allocation sequence, the incremental Evaluator must be bitwise
// identical to the reference EvaluateOpts. The seed corpus under
// testdata/fuzz is checked in so `go test` replays it on every run;
// `go test -fuzz=FuzzEvaluatorEquivalence ./internal/roofline` explores
// further.
func FuzzEvaluatorEquivalence(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Add(int64(1<<40 + 7))
	f.Add(int64(-12345))
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		differentialRound(t, r)
		// Same seed also drives the floor-search equivalence: NUMA-bad
		// demand under MinPerNode-style floors >= 1 — the scoring path
		// the fleet placer calls for every placement decision.
		floorSearchRound(t, r)
		// And the warm-start equivalence: ±1-app solves seeded from a
		// neighbour's optimum must stay bit-identical to cold solves.
		warmStartRound(t, r)
		// And the objective-spec equivalence: total-GFLOPS through the
		// ObjectiveSpec interface vs the legacy Search, plus pruned vs
		// unpruned solves for every bounded objective (admissibility).
		objectiveRound(t, r)
	})
}
