package roofline

import (
	"fmt"

	"repro/internal/machine"
)

// Even returns the allocation giving every application the same number
// of threads on every node (the paper's Fig. 2 b). It returns an error
// if the cores of any node cannot be divided evenly.
func Even(m *machine.Machine, nApps int) (Allocation, error) {
	al := NewAllocation(nApps, m.NumNodes())
	for j, n := range m.Nodes {
		if n.Cores%nApps != 0 {
			return Allocation{}, fmt.Errorf("roofline: node %d has %d cores, not divisible by %d apps", j, n.Cores, nApps)
		}
		per := n.Cores / nApps
		for i := 0; i < nApps; i++ {
			al.Threads[i][j] = per
		}
	}
	return al, nil
}

// MustEven is Even but panics on error.
func MustEven(m *machine.Machine, nApps int) Allocation {
	al, err := Even(m, nApps)
	if err != nil {
		panic(err)
	}
	return al
}

// PerNodeCounts returns the allocation giving app i counts[i] threads on
// every node (the paper's Fig. 2 a with counts like 1,1,1,5). It returns
// an error if the counts over-subscribe any node.
func PerNodeCounts(m *machine.Machine, counts []int) (Allocation, error) {
	al := NewAllocation(len(counts), m.NumNodes())
	total := 0
	for _, c := range counts {
		if c < 0 {
			return Allocation{}, fmt.Errorf("roofline: negative per-node count %d", c)
		}
		total += c
	}
	for j, n := range m.Nodes {
		if total > n.Cores {
			return Allocation{}, fmt.Errorf("roofline: node %d over-subscribed: %d threads > %d cores", j, total, n.Cores)
		}
	}
	for i, c := range counts {
		for j := 0; j < m.NumNodes(); j++ {
			al.Threads[i][j] = c
		}
	}
	return al, nil
}

// MustPerNodeCounts is PerNodeCounts but panics on error.
func MustPerNodeCounts(m *machine.Machine, counts []int) Allocation {
	al, err := PerNodeCounts(m, counts)
	if err != nil {
		panic(err)
	}
	return al
}

// NodePerApp returns the allocation dedicating node i to application i
// (the paper's Fig. 2 c). nodeOf maps each app to its node; pass nil for
// the identity mapping (app i on node i), which requires at least as
// many nodes as apps.
func NodePerApp(m *machine.Machine, nApps int, nodeOf []machine.NodeID) (Allocation, error) {
	if nodeOf == nil {
		if nApps > m.NumNodes() {
			return Allocation{}, fmt.Errorf("roofline: %d apps but only %d nodes", nApps, m.NumNodes())
		}
		nodeOf = make([]machine.NodeID, nApps)
		for i := range nodeOf {
			nodeOf[i] = machine.NodeID(i)
		}
	}
	if len(nodeOf) != nApps {
		return Allocation{}, fmt.Errorf("roofline: nodeOf has %d entries, want %d", len(nodeOf), nApps)
	}
	al := NewAllocation(nApps, m.NumNodes())
	used := make(map[machine.NodeID]int)
	for i, nd := range nodeOf {
		if int(nd) < 0 || int(nd) >= m.NumNodes() {
			return Allocation{}, fmt.Errorf("roofline: app %d mapped to node %d, out of range", i, nd)
		}
		if prev, ok := used[nd]; ok {
			return Allocation{}, fmt.Errorf("roofline: apps %d and %d both mapped to node %d", prev, i, nd)
		}
		used[nd] = i
		al.Threads[i][nd] = m.Nodes[nd].Cores
	}
	return al, nil
}

// MustNodePerApp is NodePerApp but panics on error.
func MustNodePerApp(m *machine.Machine, nApps int, nodeOf []machine.NodeID) Allocation {
	al, err := NodePerApp(m, nApps, nodeOf)
	if err != nil {
		panic(err)
	}
	return al
}

// FairShare returns an allocation splitting every node's cores as evenly
// as possible among the apps, distributing remainders round-robin with a
// per-node rotating offset so no single app systematically gets the
// extra core on every node.
func FairShare(m *machine.Machine, nApps int) Allocation {
	al := NewAllocation(nApps, m.NumNodes())
	for j, n := range m.Nodes {
		base := n.Cores / nApps
		extra := n.Cores % nApps
		for i := 0; i < nApps; i++ {
			al.Threads[i][j] = base
		}
		for k := 0; k < extra; k++ {
			al.Threads[(j+k)%nApps][j]++
		}
	}
	return al
}
