package roofline

import (
	"repro/internal/machine"
)

// Objective scores a model result; optimizers maximize it.
type Objective func(*Result) float64

// TotalGFLOPS is the default objective: machine-wide throughput.
func TotalGFLOPS(r *Result) float64 { return r.TotalGFLOPS }

// MinAppGFLOPS is a fairness objective: the slowest application's rate.
func MinAppGFLOPS(r *Result) float64 {
	if len(r.AppGFLOPS) == 0 {
		return 0
	}
	m := r.AppGFLOPS[0]
	for _, g := range r.AppGFLOPS[1:] {
		if g < m {
			m = g
		}
	}
	return m
}

// WeightedAppGFLOPS returns an objective computing a weighted sum of
// per-application rates, e.g. to prioritize a latency-critical app.
func WeightedAppGFLOPS(weights []float64) Objective {
	return func(r *Result) float64 {
		s := 0.0
		for i, g := range r.AppGFLOPS {
			w := 1.0
			if i < len(weights) {
				w = weights[i]
			}
			s += w * g
		}
		return s
	}
}

// Optimize searches for the allocation maximizing obj, starting from a
// fair-share allocation and hill-climbing with single-thread moves:
// shifting one thread of one app between two nodes, or reassigning one
// core on a node from one app to another. It also tries the structured
// candidates (even, node-per-app permutations for small app counts) as
// alternative starting points and returns the best local optimum found.
//
// The search is deterministic. maxIters bounds the number of accepted
// improvement moves per start (<=0 means a generous default). All
// starts share one memoizing Evaluator, so a move's score costs only
// the touched nodes.
func Optimize(m *machine.Machine, apps []App, obj Objective, maxIters int) (Allocation, *Result, error) {
	if obj == nil {
		obj = TotalGFLOPS
	}
	if maxIters <= 0 {
		maxIters = 10000
	}
	starts := candidateStarts(m, apps)
	if len(starts) == 0 {
		return Allocation{}, nil, ErrNoAllocation
	}
	ev, err := NewEvaluator(m, apps)
	if err != nil {
		return Allocation{}, nil, ErrNoAllocation
	}
	var bestAl Allocation
	var bestRes *Result
	bestScore := -1.0
	for _, s := range starts {
		al, res, score, err := hillClimb(m, apps, ev, s, obj, maxIters)
		if err != nil {
			continue
		}
		if score > bestScore {
			bestScore, bestAl, bestRes = score, al, res
		}
	}
	if bestRes == nil {
		return Allocation{}, nil, ErrNoAllocation
	}
	return bestAl, bestRes, nil
}

func candidateStarts(m *machine.Machine, apps []App) []Allocation {
	var starts []Allocation
	nApps := len(apps)
	starts = append(starts, FairShare(m, nApps))
	if al, err := Even(m, nApps); err == nil {
		starts = append(starts, al)
	}
	if nApps <= m.NumNodes() {
		// Identity node-per-app plus the rotation placing each app on
		// each node once; full permutations would explode for big inputs.
		for rot := 0; rot < m.NumNodes(); rot++ {
			nodeOf := make([]machine.NodeID, nApps)
			for i := range nodeOf {
				nodeOf[i] = machine.NodeID((i + rot) % m.NumNodes())
			}
			if al, err := NodePerApp(m, nApps, nodeOf); err == nil {
				starts = append(starts, al)
			}
		}
	}
	return starts
}

// hillClimb greedily improves the allocation with single-thread moves
// until a full sweep over (app, node) positions accepts nothing. An
// accepted move continues scanning from the current position instead of
// restarting the sweep — the neighbourhood is position-symmetric, so
// the reachable local optima are the same, without the
// O(moves·apps·nodes) re-scan of already-rejected prefixes.
func hillClimb(m *machine.Machine, apps []App, ev *Evaluator, al Allocation, obj Objective, maxIters int) (Allocation, *Result, float64, error) {
	scratch := &Result{}
	if err := ev.EvaluateInto(scratch, al); err != nil {
		return Allocation{}, nil, 0, err
	}
	score := obj(scratch)
	nApps, nNodes := len(apps), m.NumNodes()
	moves := 0
	for moves < maxIters {
		improved := false
		for i := 0; i < nApps && moves < maxIters; i++ {
			for j := 0; j < nNodes && moves < maxIters; j++ {
				// Move one thread of app i from node j to node k (if k
				// has a free core). An accepted move can empty (i, j), so
				// the inner loops re-check the count.
				for k := 0; k < nNodes && moves < maxIters; k++ {
					if al.Threads[i][j] == 0 {
						break
					}
					if k == j || al.NodeThreads(machine.NodeID(k)) >= m.Nodes[k].Cores {
						continue
					}
					al.Threads[i][j]--
					al.Threads[i][k]++
					if err := ev.EvaluateInto(scratch, al); err == nil {
						if s2 := obj(scratch); s2 > score+1e-9 {
							score, improved = s2, true
							moves++
							continue
						}
					}
					al.Threads[i][j]++
					al.Threads[i][k]--
				}
				// Reassign one of app i's cores on node j to app i2.
				for i2 := 0; i2 < nApps && moves < maxIters; i2++ {
					if al.Threads[i][j] == 0 {
						break
					}
					if i2 == i {
						continue
					}
					al.Threads[i][j]--
					al.Threads[i2][j]++
					if err := ev.EvaluateInto(scratch, al); err == nil {
						if s2 := obj(scratch); s2 > score+1e-9 {
							score, improved = s2, true
							moves++
							continue
						}
					}
					al.Threads[i][j]++
					al.Threads[i2][j]--
				}
			}
		}
		if !improved {
			break
		}
	}
	// Final result through the reference model, so callers always hold
	// reference-bitwise outputs.
	res, err := Evaluate(m, apps, al)
	if err != nil {
		return Allocation{}, nil, 0, err
	}
	return al.Clone(), res, obj(res), nil
}

// EnumeratePerNodeCounts calls fn for every uniform per-node allocation
// (every app gets the same count on all nodes) whose counts sum to at
// most the smallest node's core count. It is exhaustive for the paper's
// small examples. fn returning false stops the enumeration early.
//
// counts is a fresh copy per candidate; al and r are scratch reused
// between candidates and are only valid for the duration of the call.
func EnumeratePerNodeCounts(m *machine.Machine, nApps int, fn func(counts []int, al Allocation, r *Result) bool, apps []App) error {
	return EnumeratePerNodeCountsFloor(m, nApps, 0, fn, apps)
}

// EnumeratePerNodeCountsFloor is EnumeratePerNodeCounts restricted to
// allocations granting every app at least floor threads per node — the
// no-starvation constraint under which the paper's Table I uneven
// allocation (1,1,1,5) is the optimum. Candidates are evaluated with
// the memoizing Evaluator (bit-identical to Evaluate), so symmetric
// siblings share per-node work.
func EnumeratePerNodeCountsFloor(m *machine.Machine, nApps, floor int, fn func(counts []int, al Allocation, r *Result) bool, apps []App) error {
	capCores := m.Nodes[0].Cores
	for _, n := range m.Nodes[1:] {
		if n.Cores < capCores {
			capCores = n.Cores
		}
	}
	if floor < 0 {
		floor = 0
	}
	ev, err := NewEvaluator(m, apps)
	if err != nil {
		return nil // invalid inputs: no candidates, as before
	}
	counts := make([]int, nApps)
	al := NewAllocation(nApps, m.NumNodes())
	res := &Result{}
	var rec func(pos, remaining int) bool
	rec = func(pos, remaining int) bool {
		if pos == nApps {
			if err := ev.EvaluateInto(res, al); err != nil {
				return true
			}
			cp := append([]int(nil), counts...)
			return fn(cp, al, res)
		}
		for c := floor; c <= remaining; c++ {
			counts[pos] = c
			row := al.Threads[pos]
			for j := range row {
				row[j] = c
			}
			if !rec(pos+1, remaining-c) {
				return false
			}
		}
		counts[pos] = 0
		row := al.Threads[pos]
		for j := range row {
			row[j] = 0
		}
		return true
	}
	rec(0, capCores)
	return nil
}

// defaultSearch backs the package-level Best* helpers; sharing it lets
// every caller reuse one Evaluator pool.
var defaultSearch Search

// BestPerNodeCounts exhaustively searches uniform per-node allocations
// and returns the best one under obj.
func BestPerNodeCounts(m *machine.Machine, apps []App, obj Objective) ([]int, Allocation, *Result, error) {
	return defaultSearch.BestPerNodeCounts(m, apps, obj)
}

// BestPerNodeCountsFloor is BestPerNodeCounts with every app guaranteed
// at least floor threads per node. It returns ErrNoAllocation when the
// floors alone over-subscribe a node (more apps than cores). The search
// runs through Search: memoized per-node evaluation, a branch-and-bound
// prune for the total-GFLOPS objective, and parallel top-level branches
// — returning exactly the allocation the exhaustive scan would.
func BestPerNodeCountsFloor(m *machine.Machine, apps []App, obj Objective, floor int) ([]int, Allocation, *Result, error) {
	return defaultSearch.BestPerNodeCountsFloor(m, apps, obj, floor)
}
